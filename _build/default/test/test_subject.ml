module Subject = Idbox_identity.Subject

let parse_simple () =
  let s = Subject.of_string_exn "/O=UnivNowhere/CN=Fred" in
  Alcotest.(check int) "components" 2 (List.length s);
  Alcotest.(check (option string)) "cn" (Some "Fred") (Subject.common_name s);
  Alcotest.(check (option string)) "org" (Some "UnivNowhere") (Subject.organization s)

let roundtrip () =
  List.iter
    (fun text ->
      Alcotest.(check string) text text
        (Subject.to_string (Subject.of_string_exn text)))
    [ "/O=UnivNowhere/CN=Fred"; "/C=US/O=Grid/OU=CS/CN=Jane Doe"; "/CN=solo" ]

let last_cn_wins () =
  let s = Subject.of_string_exn "/CN=proxy/CN=real" in
  Alcotest.(check (option string)) "last CN" (Some "real") (Subject.common_name s)

let malformed () =
  let bad t =
    match Subject.of_string t with
    | Ok _ -> Alcotest.failf "%S should not parse" t
    | Error _ -> ()
  in
  bad "";
  bad "no-leading-slash";
  bad "/";
  bad "/O=X/plain";
  bad "/=value"

let prefix_trust () =
  let org = Subject.of_string_exn "/O=UnivNowhere" in
  let fred = Subject.of_string_exn "/O=UnivNowhere/CN=Fred" in
  let other = Subject.of_string_exn "/O=Elsewhere/CN=Fred" in
  Alcotest.(check bool) "fred under org" true (Subject.is_prefix ~prefix:org fred);
  Alcotest.(check bool) "other not under" false (Subject.is_prefix ~prefix:org other);
  Alcotest.(check bool) "self prefix" true (Subject.is_prefix ~prefix:fred fred);
  Alcotest.(check bool) "longer not prefix of shorter" false
    (Subject.is_prefix ~prefix:fred org)

let append_extends () =
  let org = Subject.of_string_exn "/O=UnivNowhere" in
  let extended = Subject.append org { Subject.attr = "CN"; value = "Fred" } in
  Alcotest.(check string) "extended" "/O=UnivNowhere/CN=Fred"
    (Subject.to_string extended);
  Alcotest.(check bool) "prefix of extension" true
    (Subject.is_prefix ~prefix:org extended)

let values_with_spaces () =
  let s = Subject.of_string_exn "/O=Univ of Nowhere/CN=Fred Jones" in
  Alcotest.(check (option string)) "cn with space" (Some "Fred Jones")
    (Subject.common_name s)

let rdn_gen =
  QCheck.Gen.(
    map2
      (fun attr value -> { Subject.attr; value })
      (oneofl [ "O"; "OU"; "CN"; "C"; "L" ])
      (string_size ~gen:(oneofl [ 'a'; 'b'; 'Z'; '0'; ' '; '-' ]) (int_range 1 8)))

let subject_gen = QCheck.Gen.(list_size (int_range 1 5) rdn_gen)

let prop_roundtrip =
  QCheck.Test.make ~name:"subject to_string/of_string roundtrip" ~count:200
    (QCheck.make subject_gen) (fun s ->
      match Subject.of_string (Subject.to_string s) with
      | Ok s' -> Subject.equal s s'
      | Error _ -> false)

let prop_prefix_reflexive =
  QCheck.Test.make ~name:"is_prefix reflexive" ~count:100 (QCheck.make subject_gen)
    (fun s -> Subject.is_prefix ~prefix:s s)

let suite =
  [
    Alcotest.test_case "parse simple" `Quick parse_simple;
    Alcotest.test_case "roundtrip" `Quick roundtrip;
    Alcotest.test_case "last CN wins" `Quick last_cn_wins;
    Alcotest.test_case "malformed inputs" `Quick malformed;
    Alcotest.test_case "prefix trust" `Quick prefix_trust;
    Alcotest.test_case "append extends" `Quick append_extends;
    Alcotest.test_case "values with spaces" `Quick values_with_spaces;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_prefix_reflexive;
  ]
