module Kernel = Idbox_kernel.Kernel
module Libc = Idbox_kernel.Libc
module Box = Idbox.Box
module Audit = Idbox.Audit
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let joe = Principal.of_string "JoeHacker"

let setup ~audit =
  let k = Kernel.create () in
  let sup = match Kernel.add_user k "alice" with Ok e -> e | Error m -> Alcotest.fail m in
  (match
     Fs.write_file (Kernel.fs k) ~uid:sup.Idbox_kernel.Account.uid ~mode:0o600
       "/home/alice/private" "secret"
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Errno.to_string e));
  let box =
    match
      Box.create k ~supervisor_uid:sup.Idbox_kernel.Account.uid ~identity:joe
        ~audit ()
    with
    | Ok b -> b
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  (k, box)

let run_in (k, box) main =
  let pid = Box.spawn_main box ~main ~args:[ "j" ] in
  Kernel.run k;
  ignore (Kernel.exit_code k pid)

let trail box =
  match Box.audit_trail box with
  | Some t -> t
  | None -> Alcotest.fail "no trail"

let records_allow_and_deny () =
  let k, box = setup ~audit:true in
  let home = Box.home box in
  run_in (k, box) (fun _ ->
      ignore (Libc.write_file (home ^ "/made") ~contents:"x");
      ignore (Libc.read_file "/home/alice/private");
      ignore (Libc.unlink "/home/alice/private");
      0);
  let t = trail box in
  let events = Audit.events t in
  Alcotest.(check bool) "events recorded" true (List.length events >= 3);
  (* The open of the visitor's own file was allowed. *)
  let find op path =
    List.find_opt
      (fun (e : Audit.event) ->
        String.equal e.Audit.ev_op op && String.equal e.Audit.ev_path path)
      events
  in
  (match find "open" (home ^ "/made") with
   | Some e -> Alcotest.(check bool) "own write allowed" true (e.Audit.ev_verdict = Audit.Allowed)
   | None -> Alcotest.fail "own open not recorded");
  (* The attack attempts were denied with EACCES, and say so. *)
  (match find "open" "/home/alice/private" with
   | Some e ->
     Alcotest.(check bool) "snoop denied" true
       (e.Audit.ev_verdict = Audit.Denied Errno.EACCES)
   | None -> Alcotest.fail "snoop not recorded");
  (match find "unlink" "/home/alice/private" with
   | Some e ->
     Alcotest.(check bool) "vandalism denied" true
       (e.Audit.ev_verdict = Audit.Denied Errno.EACCES)
   | None -> Alcotest.fail "vandalism not recorded");
  Alcotest.(check int) "two denials" 2 (List.length (Audit.denied t))

let identity_and_order () =
  let k, box = setup ~audit:true in
  let home = Box.home box in
  run_in (k, box) (fun _ ->
      ignore (Libc.mkdir (home ^ "/a"));
      ignore (Libc.mkdir (home ^ "/b"));
      0);
  let events = Audit.events (trail box) in
  List.iter
    (fun (e : Audit.event) ->
      Alcotest.(check string) "identity stamped" "JoeHacker" e.Audit.ev_identity)
    events;
  let seqs = List.map (fun (e : Audit.event) -> e.Audit.ev_seq) events in
  Alcotest.(check (list int)) "monotonic" (List.sort compare seqs) seqs;
  let times = List.map (fun (e : Audit.event) -> e.Audit.ev_time) events in
  Alcotest.(check bool) "time nondecreasing" true
    (List.for_all2 (fun a b -> Int64.compare a b <= 0)
       (List.filteri (fun i _ -> i < List.length times - 1) times)
       (List.tl times))

let rename_records_both_paths () =
  let k, box = setup ~audit:true in
  let home = Box.home box in
  run_in (k, box) (fun _ ->
      ignore (Libc.write_file (home ^ "/x") ~contents:"1");
      ignore (Libc.rename ~src:(home ^ "/x") ~dst:(home ^ "/y"));
      0);
  let events = Audit.events (trail box) in
  match
    List.find_opt (fun (e : Audit.event) -> String.equal e.Audit.ev_op "rename") events
  with
  | Some e ->
    Alcotest.(check string) "src" (home ^ "/x") e.Audit.ev_path;
    Alcotest.(check (option string)) "dst" (Some (home ^ "/y")) e.Audit.ev_path2
  | None -> Alcotest.fail "rename not recorded"

let touched_paths_summary () =
  let k, box = setup ~audit:true in
  let home = Box.home box in
  run_in (k, box) (fun _ ->
      ignore (Libc.write_file (home ^ "/one") ~contents:"1");
      ignore (Libc.write_file (home ^ "/one") ~contents:"2");
      ignore (Libc.read_file "/home/alice/private");
      0);
  let touched = Audit.touched_paths (trail box) in
  Alcotest.(check bool) "own file listed once" true
    (List.length (List.filter (String.equal (home ^ "/one")) touched) = 1);
  Alcotest.(check bool) "denied object not in touched" true
    (not (List.mem "/home/alice/private" touched))

let fd_traffic_not_logged () =
  let k, box = setup ~audit:true in
  let home = Box.home box in
  run_in (k, box) (fun _ ->
      let fd = Libc.check "open" (Libc.open_file ~flags:Fs.wronly_create (home ^ "/f")) in
      for _ = 1 to 50 do
        ignore (Libc.write fd "chunk")
      done;
      ignore (Libc.close fd);
      0);
  (* One open recorded; the 50 writes are fd-level and excluded. *)
  let events = Audit.events (trail box) in
  Alcotest.(check bool) "small trail" true (List.length events <= 3)

let disabled_by_default () =
  let k, box = setup ~audit:false in
  run_in (k, box) (fun _ -> 0);
  Alcotest.(check bool) "no trail" true (Box.audit_trail box = None)

let clear_resets () =
  let t = Audit.create () in
  Audit.record t ~time:1L ~pid:1 ~identity:"x" ~op:"open" ~path:"/p" Audit.Allowed;
  Alcotest.(check int) "one" 1 (Audit.length t);
  Audit.clear t;
  Alcotest.(check int) "zero" 0 (Audit.length t);
  Alcotest.(check (list string)) "empty" [] (Audit.touched_paths t)

let suite =
  [
    Alcotest.test_case "records allow and deny" `Quick records_allow_and_deny;
    Alcotest.test_case "identity and order" `Quick identity_and_order;
    Alcotest.test_case "rename records both paths" `Quick rename_records_both_paths;
    Alcotest.test_case "touched paths" `Quick touched_paths_summary;
    Alcotest.test_case "fd traffic not logged" `Quick fd_traffic_not_logged;
    Alcotest.test_case "disabled by default" `Quick disabled_by_default;
    Alcotest.test_case "clear resets" `Quick clear_resets;
  ]
