module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Syscall = Idbox_kernel.Syscall
module Trace = Idbox_kernel.Trace
module Clock = Idbox_kernel.Clock
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let errno = Alcotest.testable Errno.pp Errno.equal

let run_main ?(uid = 0) ?(cwd = "/") ?env kernel main =
  let pid = Kernel.spawn_main kernel ?env ~uid ~cwd ~main ~args:[ "test" ] () in
  Kernel.run kernel;
  (pid, Kernel.exit_code kernel pid)

let exit_code_flows () =
  let k = Kernel.create () in
  let _, code = run_main k (fun _ -> 42) in
  Alcotest.(check (option int)) "return value" (Some 42) code;
  let _, code = run_main k (fun _ -> Libc.exit 7) in
  Alcotest.(check (option int)) "explicit exit" (Some 7) code

let pids_and_identity_calls () =
  let k = Kernel.create () in
  let seen = ref (-1, -1, -1) in
  let _, code =
    run_main ~uid:0 k (fun _ ->
        seen := (Libc.getpid (), Libc.getppid (), Libc.getuid ());
        0)
  in
  Alcotest.(check (option int)) "ok" (Some 0) code;
  let pid, ppid, uid = !seen in
  Alcotest.(check bool) "pid positive" true (pid > 0);
  Alcotest.(check int) "host parent" 0 ppid;
  Alcotest.(check int) "uid" 0 uid

let get_user_name_account () =
  let k = Kernel.create () in
  let entry =
    match Account.add (Kernel.accounts k) "dthain" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  let name = ref "" in
  let _, _ = run_main ~uid:entry.Account.uid k (fun _ -> name := Libc.get_user_name (); 0) in
  Alcotest.(check string) "account name" "dthain" !name;
  (* Unknown uid degrades gracefully. *)
  let _, _ = run_main ~uid:4242 k (fun _ -> name := Libc.get_user_name (); 0) in
  Alcotest.(check string) "unknown uid" "uid4242" !name

let spawn_and_wait () =
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () ->
      Program.register "child" (fun args ->
          match args with _ :: code :: _ -> int_of_string code | _ -> 0);
      let fs = Kernel.fs k in
      (match
         Fs.write_file fs ~uid:0 ~mode:0o755 "/bin/child" (Program.marker "child")
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      let result = ref (0, 0) in
      let _, code =
        run_main k (fun _ ->
            let pid = Libc.check "spawn" (Libc.spawn "/bin/child" ~args:[ "child"; "9" ]) in
            result := Libc.check "wait" (Libc.waitpid pid);
            0)
      in
      Alcotest.(check (option int)) "parent ok" (Some 0) code;
      let wpid, status = !result in
      Alcotest.(check bool) "waited right child" true (wpid > 0);
      Alcotest.(check int) "child status" 9 status)

let wait_any_and_echild () =
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () ->
      Program.register "quick" (fun _ -> 1);
      (match
         Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/bin/quick"
           (Program.marker "quick")
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      let observed = ref [] in
      let _, code =
        run_main k (fun _ ->
            let p1 = Libc.check "s1" (Libc.spawn "/bin/quick" ~args:[ "q" ]) in
            let p2 = Libc.check "s2" (Libc.spawn "/bin/quick" ~args:[ "q" ]) in
            let w1 = Libc.check "w1" (Libc.waitpid (-1)) in
            let w2 = Libc.check "w2" (Libc.waitpid (-1)) in
            observed := [ fst w1; fst w2; p1; p2 ];
            (* No children left: ECHILD. *)
            match Libc.waitpid (-1) with
            | Error Errno.ECHILD -> 0
            | Ok _ | Error _ -> 1)
      in
      Alcotest.(check (option int)) "echild path" (Some 0) code;
      match !observed with
      | [ w1; w2; p1; p2 ] ->
        Alcotest.(check bool) "reaped both" true
          (List.sort compare [ w1; w2 ] = List.sort compare [ p1; p2 ])
      | _ -> Alcotest.fail "observation missing")

let waitpid_blocks_until_child_exits () =
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () ->
      Program.register "slow" (fun _ ->
          Libc.compute 5_000_000L;
          3);
      (match
         Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/bin/slow"
           (Program.marker "slow")
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      let _, code =
        run_main k (fun _ ->
            let pid = Libc.check "spawn" (Libc.spawn "/bin/slow" ~args:[ "s" ]) in
            (* The child has not run yet; this wait must block, then
               return its status. *)
            let _, status = Libc.check "wait" (Libc.waitpid pid) in
            status)
      in
      Alcotest.(check (option int)) "status through blocking wait" (Some 3) code)

let spawn_checks_exec () =
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () ->
      Program.register "p" (fun _ -> 0);
      let fs = Kernel.fs k in
      (match Fs.write_file fs ~uid:0 ~mode:0o644 "/bin/noexec" (Program.marker "p") with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      (match Fs.write_file fs ~uid:0 ~mode:0o755 "/bin/garbage" "not a program" with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      let _, code =
        run_main ~uid:1000 k (fun _ ->
            match Libc.spawn "/bin/noexec" ~args:[ "x" ] with
            | Error Errno.EACCES ->
              (match Libc.spawn "/bin/garbage" ~args:[ "x" ] with
               | Error Errno.EINVAL ->
                 (match Libc.spawn "/bin/missing" ~args:[ "x" ] with
                  | Error Errno.ENOENT -> 0
                  | Ok _ | Error _ -> 3)
               | Ok _ | Error _ -> 2)
            | Ok _ | Error _ -> 1)
      in
      Alcotest.(check (option int)) "exec checks" (Some 0) code)

let kill_permissions () =
  let k = Kernel.create () in
  (* The victim yields between many short compute slices, so killers run
     concurrently under the cooperative scheduler. *)
  let victim_main _ =
    for _ = 1 to 10_000 do
      Libc.compute 1_000_000L
    done;
    0
  in
  let victim = Kernel.spawn_main k ~uid:2000 ~main:victim_main ~args:[ "v" ] () in
  let stranger_result = ref None in
  let _ =
    Kernel.spawn_main k ~uid:1000
      ~main:(fun _ ->
        stranger_result := Some (Libc.kill ~pid:victim ~signal:9);
        0)
      ~args:[ "k1" ] ()
  in
  let owner_result = ref None in
  let _ =
    Kernel.spawn_main k ~uid:2000
      ~main:(fun _ ->
        owner_result := Some (Libc.kill ~pid:victim ~signal:9);
        (* Killing a dead process: ESRCH. *)
        (match Libc.kill ~pid:victim ~signal:9 with
         | Error Errno.ESRCH -> ()
         | Ok () | Error _ -> Libc.exit 1);
        0)
      ~args:[ "k2" ] ()
  in
  Kernel.run k;
  (match !stranger_result with
   | Some (Error Errno.EPERM) -> ()
   | _ -> Alcotest.fail "cross-uid kill should be EPERM");
  (match !owner_result with
   | Some (Ok ()) -> ()
   | _ -> Alcotest.fail "owner kill should succeed");
  Alcotest.(check (option int)) "victim died 128+9" (Some 137)
    (Kernel.exit_code k victim)

let fd_lifecycle_and_lseek () =
  let k = Kernel.create () in
  let _, code =
    run_main k (fun _ ->
        let fd = Libc.check "open" (Libc.open_file ~flags:Fs.wronly_create "/tmp/f") in
        ignore (Libc.check "w" (Libc.write fd "abcdef"));
        ignore (Libc.check "close" (Libc.close fd));
        (match Libc.read fd ~len:1 with
         | Error Errno.EBADF -> ()
         | Ok _ | Error _ -> Libc.exit 1);
        let fd = Libc.check "open2" (Libc.open_file "/tmp/f") in
        let pos = Libc.check "seek" (Libc.lseek fd ~off:2 ~whence:Syscall.Seek_set) in
        if pos <> 2 then Libc.exit 2;
        let s = Libc.check "read" (Libc.read fd ~len:2) in
        if not (String.equal s "cd") then Libc.exit 3;
        let pos = Libc.check "seek_cur" (Libc.lseek fd ~off:1 ~whence:Syscall.Seek_cur) in
        if pos <> 5 then Libc.exit 4;
        let pos = Libc.check "seek_end" (Libc.lseek fd ~off:(-1) ~whence:Syscall.Seek_end) in
        if pos <> 5 then Libc.exit 5;
        (match Libc.lseek fd ~off:(-10) ~whence:Syscall.Seek_set with
         | Error Errno.EINVAL -> ()
         | Ok _ | Error _ -> Libc.exit 6);
        (* Writing a read-only fd is EBADF. *)
        (match Libc.write fd "x" with
         | Error Errno.EBADF -> ()
         | Ok _ | Error _ -> Libc.exit 7);
        0)
  in
  Alcotest.(check (option int)) "fd lifecycle" (Some 0) code

let append_mode () =
  let k = Kernel.create () in
  let _, code =
    run_main k (fun _ ->
        ignore (Libc.check "seed" (Libc.write_file "/tmp/log" ~contents:"one\n"));
        let flags =
          { Fs.rd = false; wr = true; creat = false; excl = false; trunc = false;
            append = true }
        in
        let fd = Libc.check "open" (Libc.open_file ~flags "/tmp/log") in
        ignore (Libc.check "append" (Libc.write fd "two\n"));
        ignore (Libc.close fd);
        if String.equal (Libc.check "read" (Libc.read_file "/tmp/log")) "one\ntwo\n"
        then 0 else 1)
  in
  Alcotest.(check (option int)) "append" (Some 0) code

let env_inheritance () =
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () ->
      Program.register "envchild" (fun _ ->
          match Libc.getenv "FLAVOR" with
          | Some "vanilla" -> 0
          | Some _ | None -> 1);
      (match
         Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/bin/envchild"
           (Program.marker "envchild")
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      let _, code =
        run_main k (fun _ ->
            Libc.setenv "FLAVOR" "vanilla";
            let pid = Libc.check "spawn" (Libc.spawn "/bin/envchild" ~args:[ "e" ]) in
            let _, status = Libc.check "wait" (Libc.waitpid pid) in
            status)
      in
      Alcotest.(check (option int)) "child saw env" (Some 0) code)

let cwd_and_chdir () =
  let k = Kernel.create () in
  let _, code =
    run_main k (fun _ ->
        if not (String.equal (Libc.getcwd ()) "/") then Libc.exit 1;
        ignore (Libc.check "mkdir" (Libc.mkdir "/tmp/there"));
        Libc.check "chdir" (Libc.chdir "/tmp/there") |> ignore;
        if not (String.equal (Libc.getcwd ()) "/tmp/there") then Libc.exit 2;
        (* Relative operations resolve against the cwd. *)
        ignore (Libc.check "relwrite" (Libc.write_file "rel.txt" ~contents:"here"));
        (match Libc.read_file "/tmp/there/rel.txt" with
         | Ok "here" -> ()
         | Ok _ | Error _ -> Libc.exit 3);
        (match Libc.chdir "/tmp/there/rel.txt" with
         | Error Errno.ENOTDIR -> ()
         | Ok () | Error _ -> Libc.exit 4);
        0)
  in
  Alcotest.(check (option int)) "cwd" (Some 0) code

let clock_monotone_and_compute () =
  let k = Kernel.create () in
  let t0 = Kernel.now k in
  let _, _ = run_main k (fun _ -> Libc.compute 123_456L; 0) in
  let elapsed = Int64.sub (Kernel.now k) t0 in
  Alcotest.(check bool) "compute charged" true (Int64.compare elapsed 123_456L >= 0)

let stats_accounting () =
  let k = Kernel.create () in
  let s = Kernel.stats k in
  let calls0 = s.Kernel.syscalls in
  let _, _ =
    run_main k (fun _ ->
        for _ = 1 to 10 do
          ignore (Libc.getpid ())
        done;
        Libc.compute 1L;
        0)
  in
  (* 10 getpids are syscalls; compute is not, and a normal return makes
     no exit call. *)
  Alcotest.(check int) "syscall count" 10 (s.Kernel.syscalls - calls0);
  Alcotest.(check int) "nothing trapped" 0 s.Kernel.trapped

let tracer_passthrough_charges () =
  (* A do-nothing tracer must not change results, only cost. *)
  let k_plain = Kernel.create () in
  let k_traced = Kernel.create () in
  let body _ =
    ignore (Libc.check "w" (Libc.write_file "/tmp/x" ~contents:"data"));
    (match Libc.read_file "/tmp/x" with Ok "data" -> 0 | Ok _ | Error _ -> 1)
  in
  let t0 = Kernel.now k_plain in
  let _, plain_code = run_main k_plain body in
  let plain_cost = Int64.sub (Kernel.now k_plain) t0 in
  let pid =
    Kernel.spawn_main k_traced ~uid:0 ~cwd:"/" ~tracer:Trace.pass_through ~main:body
      ~args:[ "t" ] ()
  in
  let t0 = Kernel.now k_traced in
  Kernel.run k_traced;
  let traced_cost = Int64.sub (Kernel.now k_traced) t0 in
  Alcotest.(check (option int)) "same result" plain_code (Kernel.exit_code k_traced pid);
  Alcotest.(check bool) "tracing costs more" true
    (Int64.compare traced_cost plain_cost > 0);
  Alcotest.(check bool) "trap counted" true ((Kernel.stats k_traced).Kernel.trapped > 0)

let tracer_deny_injects_errno () =
  let k = Kernel.create () in
  let deny_unlink =
    {
      Trace.pass_through with
      Trace.on_entry =
        (fun ~pid:_ req ->
          match req with
          | Syscall.Unlink _ -> Trace.Deny Errno.EPERM
          | _ -> Trace.Pass);
    }
  in
  let got = ref None in
  let pid =
    Kernel.spawn_main k ~uid:0 ~cwd:"/" ~tracer:deny_unlink
      ~main:(fun _ ->
        ignore (Libc.write_file "/tmp/f" ~contents:"x");
        (match Libc.unlink "/tmp/f" with
         | Error e -> got := Some e
         | Ok () -> ());
        0)
      ~args:[ "t" ] ()
  in
  Kernel.run k;
  Alcotest.(check (option int)) "exited" (Some 0) (Kernel.exit_code k pid);
  Alcotest.(check (option errno)) "EPERM injected" (Some Errno.EPERM) !got;
  (* The file was NOT unlinked: the call was nullified. *)
  Alcotest.(check bool) "file intact" true (Fs.exists (Kernel.fs k) ~uid:0 "/tmp/f")

let tracer_rewrite_redirects () =
  let k = Kernel.create () in
  (match Fs.write_file (Kernel.fs k) ~uid:0 "/tmp/real" "redirected!" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Errno.to_string e));
  let rewrite =
    {
      Trace.pass_through with
      Trace.on_entry =
        (fun ~pid:_ req ->
          match req with
          | Syscall.Open { path = "/tmp/fake"; flags; mode } ->
            Trace.Rewrite (Syscall.Open { path = "/tmp/real"; flags; mode })
          | _ -> Trace.Pass);
    }
  in
  let content = ref "" in
  let pid =
    Kernel.spawn_main k ~uid:0 ~cwd:"/" ~tracer:rewrite
      ~main:(fun _ ->
        (match Libc.read_file "/tmp/fake" with
         | Ok s -> content := s
         | Error _ -> ());
        0)
      ~args:[ "t" ] ()
  in
  Kernel.run k;
  ignore (Kernel.exit_code k pid);
  Alcotest.(check string) "redirected" "redirected!" !content

let children_inherit_tracer () =
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () ->
      Program.register "grandchild" (fun _ -> 0);
      (match
         Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/bin/grandchild"
           (Program.marker "grandchild")
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      let spawned = ref [] in
      let tracer =
        {
          Trace.pass_through with
          Trace.on_event =
            (fun ev ->
              match ev with
              | Trace.Spawned { pid; _ } -> spawned := pid :: !spawned
              | Trace.Exited _ -> ());
        }
      in
      let pid =
        Kernel.spawn_main k ~uid:0 ~cwd:"/" ~tracer
          ~main:(fun _ ->
            let c = Libc.check "spawn" (Libc.spawn "/bin/grandchild" ~args:[ "g" ]) in
            ignore (Libc.check "wait" (Libc.waitpid c));
            0)
          ~args:[ "t" ] ()
      in
      Kernel.run k;
      ignore pid;
      (* Both the root process and its child hit the Spawned event. *)
      Alcotest.(check int) "two spawn events" 2 (List.length !spawned))

let security_hook_denies () =
  let k = Kernel.create () in
  Kernel.set_security_hook k
    (Some
       (fun ~pid:_ _view req ->
         match req with
         | Syscall.Mkdir _ -> Error Errno.EPERM
         | _ -> Ok ()));
  let _, code =
    run_main k (fun _ ->
        match Libc.mkdir "/tmp/blocked" with
        | Error Errno.EPERM ->
          (* Other calls still work. *)
          (match Libc.write_file "/tmp/ok" ~contents:"y" with
           | Ok () -> 0
           | Error _ -> 2)
        | Ok () | Error _ -> 1)
  in
  Alcotest.(check (option int)) "hook denies mkdir only" (Some 0) code;
  Alcotest.(check bool) "nothing created" false (Fs.exists (Kernel.fs k) ~uid:0 "/tmp/blocked")

let identity_provider_overrides () =
  let k = Kernel.create () in
  Kernel.set_identity_provider k
    (Some (fun pid -> if pid > 0 then Some "globus:/O=X/CN=Hooked" else None));
  let name = ref "" in
  let _, _ = run_main k (fun _ -> name := Libc.get_user_name (); 0) in
  Alcotest.(check string) "provider answers" "globus:/O=X/CN=Hooked" !name

let shared_clock_hosts () =
  let clock = Clock.create () in
  let k1 = Kernel.create ~clock () in
  let k2 = Kernel.create ~clock () in
  let _, _ = run_main k1 (fun _ -> Libc.compute 1000L; 0) in
  Alcotest.(check bool) "k2 sees k1's time" true
    (Int64.compare (Kernel.now k2) 1000L >= 0)

let suite =
  [
    Alcotest.test_case "exit codes" `Quick exit_code_flows;
    Alcotest.test_case "pids and identity calls" `Quick pids_and_identity_calls;
    Alcotest.test_case "get_user_name from accounts" `Quick get_user_name_account;
    Alcotest.test_case "spawn and wait" `Quick spawn_and_wait;
    Alcotest.test_case "wait any / ECHILD" `Quick wait_any_and_echild;
    Alcotest.test_case "blocking waitpid" `Quick waitpid_blocks_until_child_exits;
    Alcotest.test_case "spawn exec checks" `Quick spawn_checks_exec;
    Alcotest.test_case "kill permissions" `Quick kill_permissions;
    Alcotest.test_case "fd lifecycle and lseek" `Quick fd_lifecycle_and_lseek;
    Alcotest.test_case "append mode" `Quick append_mode;
    Alcotest.test_case "env inheritance" `Quick env_inheritance;
    Alcotest.test_case "cwd and chdir" `Quick cwd_and_chdir;
    Alcotest.test_case "clock and compute" `Quick clock_monotone_and_compute;
    Alcotest.test_case "stats accounting" `Quick stats_accounting;
    Alcotest.test_case "tracer passthrough" `Quick tracer_passthrough_charges;
    Alcotest.test_case "tracer deny injects errno" `Quick tracer_deny_injects_errno;
    Alcotest.test_case "tracer rewrite redirects" `Quick tracer_rewrite_redirects;
    Alcotest.test_case "children inherit tracer" `Quick children_inherit_tracer;
    Alcotest.test_case "security hook" `Quick security_hook_denies;
    Alcotest.test_case "identity provider" `Quick identity_provider_overrides;
    Alcotest.test_case "shared clock hosts" `Quick shared_clock_hosts;
  ]
