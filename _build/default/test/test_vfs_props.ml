(* Random-operation invariant tests for the filesystem: whatever a
   random sequence of operations does, structural invariants hold.
   These guard the substrate every security argument rests on. *)

module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode
module Path = Idbox_vfs.Path

type fop =
  | O_write of string * string
  | O_mkdir of string
  | O_unlink of string
  | O_rmdir of string
  | O_rename of string * string
  | O_link of string * string
  | O_symlink of string * string
  | O_truncate of string * int

let paths = [ "/a"; "/b"; "/d"; "/d/x"; "/d/y"; "/d/e"; "/d/e/z"; "/f" ]

let fop_gen =
  let open QCheck.Gen in
  let path = oneofl paths in
  frequency
    [
      (4, map2 (fun p d -> O_write (p, d)) path (oneofl [ ""; "x"; "data" ]));
      (3, map (fun p -> O_mkdir p) path);
      (3, map (fun p -> O_unlink p) path);
      (2, map (fun p -> O_rmdir p) path);
      (2, map2 (fun a b -> O_rename (a, b)) path path);
      (2, map2 (fun t p -> O_link (t, p)) path path);
      (2, map2 (fun t p -> O_symlink (t, p)) path path);
      (1, map2 (fun p n -> O_truncate (p, n)) path (int_range 0 64));
    ]

let apply fs op =
  let ign = function Ok _ -> () | Error _ -> () in
  match op with
  | O_write (p, d) -> ign (Fs.write_file fs ~uid:0 p d)
  | O_mkdir p -> ign (Fs.mkdir fs ~uid:0 ~mode:0o755 p)
  | O_unlink p -> ign (Fs.unlink fs ~uid:0 p)
  | O_rmdir p -> ign (Fs.rmdir fs ~uid:0 p)
  | O_rename (a, b) -> ign (Fs.rename fs ~uid:0 ~src:a ~dst:b)
  | O_link (t, p) -> ign (Fs.link fs ~uid:0 ~target:t p)
  | O_symlink (t, p) -> ign (Fs.symlink fs ~uid:0 ~target:t p)
  | O_truncate (p, n) ->
    ign
      (match Fs.open_file fs ~uid:0 ~flags:{ Fs.rdonly with rd = false; wr = true } ~mode:0 p with
       | Ok ino -> Ok (Inode.truncate ino ~len:n)
       | Error e -> Error e)

(* Walk the live tree, collecting every (path, ino, kind, nlink). *)
let rec walk fs acc path =
  match Fs.lstat fs ~uid:0 path with
  | Error _ -> acc
  | Ok st ->
    let acc = (path, st) :: acc in
    if st.Fs.st_kind = Inode.Directory then
      match Fs.readdir fs ~uid:0 path with
      | Error _ -> acc
      | Ok names ->
        List.fold_left
          (fun acc n ->
            walk fs acc (if String.equal path "/" then "/" ^ n else path ^ "/" ^ n))
          acc names
    else acc

let invariants fs =
  let entries = walk fs [] "/" in
  (* 1. nlink of every regular file equals the number of directory
        entries that reference its inode. *)
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, (st : Fs.stat)) ->
      if st.Fs.st_kind = Inode.Regular then
        Hashtbl.replace counts st.Fs.st_ino
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts st.Fs.st_ino)))
    entries;
  let nlink_ok =
    List.for_all
      (fun (_, (st : Fs.stat)) ->
        st.Fs.st_kind <> Inode.Regular
        || st.Fs.st_nlink = Option.value ~default:0 (Hashtbl.find_opt counts st.Fs.st_ino))
      entries
  in
  (* 2. every reachable object stats and has sane fields. *)
  let sane =
    List.for_all
      (fun (_, (st : Fs.stat)) -> st.Fs.st_size >= 0 && st.Fs.st_nlink >= 1)
      entries
  in
  (* 3. readdir agrees with lookup: every listed name resolves (to
        something; dangling symlinks resolve via lstat). *)
  let listed_resolvable =
    List.for_all
      (fun (path, (st : Fs.stat)) ->
        st.Fs.st_kind <> Inode.Directory
        ||
        match Fs.readdir fs ~uid:0 path with
        | Error _ -> false
        | Ok names ->
          List.for_all
            (fun n ->
              match
                Fs.lstat fs ~uid:0
                  (if String.equal path "/" then "/" ^ n else path ^ "/" ^ n)
              with
              | Ok _ -> true
              | Error _ -> false)
            names)
      entries
  in
  nlink_ok && sane && listed_resolvable

let prop_invariants =
  QCheck.Test.make ~name:"fs invariants under random ops" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 60) fop_gen))
    (fun ops ->
      let fs = Fs.create () in
      List.iter (apply fs) ops;
      invariants fs)

let prop_write_then_read =
  QCheck.Test.make ~name:"last write wins through any op noise" ~count:100
    (QCheck.pair
       (QCheck.make QCheck.Gen.(list_size (int_range 0 30) fop_gen))
       (QCheck.string_of_size (QCheck.Gen.int_range 0 50)))
    (fun (ops, payload) ->
      let fs = Fs.create () in
      List.iter (apply fs) ops;
      (* Whatever happened, a fresh write to an untouched path reads
         back exactly. *)
      match Fs.write_file fs ~uid:0 "/witness" payload with
      | Error _ -> false
      | Ok () ->
        (match Fs.read_file fs ~uid:0 "/witness" with
         | Ok got -> String.equal got payload
         | Error _ -> false))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_invariants;
    QCheck_alcotest.to_alcotest prop_write_then_read;
  ]
