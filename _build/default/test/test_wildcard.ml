module Wildcard = Idbox_identity.Wildcard

let check_match pattern subject expected () =
  Alcotest.(check bool)
    (Printf.sprintf "%S ~ %S" pattern subject)
    expected
    (Wildcard.literal_matches pattern subject)

let literal_exact () =
  check_match "globus:/O=UnivNowhere/CN=Fred" "globus:/O=UnivNowhere/CN=Fred" true ();
  check_match "Freddy" "Freddy" true ();
  check_match "Freddy" "Fredd" false ();
  check_match "Freddy" "FreddyX" false ()

let star_matches_across_components () =
  (* The paper's organization wildcard covers whole subtrees. *)
  check_match "globus:/O=UnivNowhere/*" "globus:/O=UnivNowhere/CN=Fred" true ();
  check_match "globus:/O=UnivNowhere/*" "globus:/O=UnivNowhere/OU=CS/CN=Fred" true ();
  check_match "globus:/O=UnivNowhere/*" "globus:/O=Elsewhere/CN=Fred" false ()

let star_positions () =
  check_match "*" "" true ();
  check_match "*" "anything" true ();
  check_match "a*" "a" true ();
  check_match "*a" "a" true ();
  check_match "a*b" "ab" true ();
  check_match "a*b" "aXXXb" true ();
  check_match "a*b" "aXXX" false ();
  check_match "a**b" "aXb" true ()

let hostname_wildcards () =
  check_match "hostname:*.nowhere.edu" "hostname:laptop.cs.nowhere.edu" true ();
  check_match "hostname:*.nowhere.edu" "hostname:nowhere.edu" false ();
  check_match "hostname:*.nowhere.edu" "hostname:evil.elsewhere.edu" false ()

let question_mark () =
  check_match "grid?" "grid0" true ();
  check_match "grid?" "grid10" false ();
  check_match "grid??" "grid10" true ()

let multiple_stars_backtrack () =
  check_match "*ab*ab*" "abab" true ();
  check_match "*ab*ab*" "aabbaabb" true ();
  check_match "*ab*ab*" "ab" false ()

let is_literal_and_specificity () =
  Alcotest.(check bool) "literal" true (Wildcard.is_literal (Wildcard.compile "abc"));
  Alcotest.(check bool) "star" false (Wildcard.is_literal (Wildcard.compile "a*c"));
  Alcotest.(check bool) "question" false (Wildcard.is_literal (Wildcard.compile "a?c"));
  Alcotest.(check int) "specificity counts literals" 2
    (Wildcard.specificity (Wildcard.compile "a*c"));
  Alcotest.(check int) "empty" 0 (Wildcard.specificity (Wildcard.compile "*"))

let source_roundtrip () =
  let p = "globus:/O=*/CN=??" in
  Alcotest.(check string) "source" p (Wildcard.source (Wildcard.compile p))

(* Properties *)

let subject_gen = QCheck.string_of_size (QCheck.Gen.int_range 0 30)

let prop_literal_matches_self =
  QCheck.Test.make ~name:"a wildcard-free string matches itself" ~count:200
    (QCheck.map
       (String.map (fun c -> if c = '*' || c = '?' then 'x' else c))
       subject_gen)
    (fun s -> Wildcard.literal_matches s s)

let prop_star_matches_everything =
  QCheck.Test.make ~name:"* matches everything" ~count:200 subject_gen (fun s ->
      Wildcard.literal_matches "*" s)

let prop_prefix_star =
  QCheck.Test.make ~name:"p* matches p ^ anything" ~count:200
    (QCheck.pair subject_gen subject_gen)
    (fun (p, s) ->
      let p = String.map (fun c -> if c = '*' || c = '?' then 'x' else c) p in
      Wildcard.literal_matches (p ^ "*") (p ^ s))

let prop_specificity_bounded =
  QCheck.Test.make ~name:"specificity <= pattern length" ~count:200 subject_gen
    (fun p -> Wildcard.specificity (Wildcard.compile p) <= String.length p)

let suite =
  [
    Alcotest.test_case "literal exact" `Quick literal_exact;
    Alcotest.test_case "star across components" `Quick star_matches_across_components;
    Alcotest.test_case "star positions" `Quick star_positions;
    Alcotest.test_case "hostname wildcards" `Quick hostname_wildcards;
    Alcotest.test_case "question mark" `Quick question_mark;
    Alcotest.test_case "multiple stars backtrack" `Quick multiple_stars_backtrack;
    Alcotest.test_case "is_literal / specificity" `Quick is_literal_and_specificity;
    Alcotest.test_case "source roundtrip" `Quick source_roundtrip;
    QCheck_alcotest.to_alcotest prop_literal_matches_self;
    QCheck_alcotest.to_alcotest prop_star_matches_everything;
    QCheck_alcotest.to_alcotest prop_prefix_star;
    QCheck_alcotest.to_alcotest prop_specificity_bounded;
  ]
