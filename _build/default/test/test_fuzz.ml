(* Adversarial property test: a boxed program running a *random*
   sequence of system calls can never (a) modify any object outside the
   areas it was granted, nor (b) observe the contents of any protected
   file.  This is the containment claim of the paper tested not against
   hand-picked attacks (test_security.ml) but against generated ones. *)

module Kernel = Idbox_kernel.Kernel
module Libc = Idbox_kernel.Libc
module Box = Idbox.Box
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode
module Path = Idbox_vfs.Path
module Errno = Idbox_vfs.Errno

(* ------------------------------------------------------------------ *)
(* Attack-program generator.                                            *)
(* ------------------------------------------------------------------ *)

type op =
  | F_write of string * string
  | F_read of string
  | F_mkdir of string
  | F_unlink of string
  | F_rmdir of string
  | F_rename of string * string
  | F_chmod of string * int
  | F_symlink of string * string  (* target, path *)
  | F_link of string * string  (* target, path *)
  | F_setacl of string * string
  | F_truncate of string
  | F_chdir of string
  | F_readdir of string
  | F_spawn_helper
      (** Stage a helper program in the attacker's home and run it: the
          child is traced like its parent, so its own attack attempt
          must fail identically. *)

(* Paths mix protected objects, system areas, the visitor's own home
   (via $HOME), relative escapes, and symlink-laundering components. *)
let path_pool =
  [
    "/protected/secret.txt";
    "/protected";
    "/etc/passwd";
    "/etc";
    "/bin/sh";
    "/home/victim/data";
    "/home/victim";
    "~/own.txt";
    "~/sub";
    "~/sub/deep.txt";
    "../../../protected/secret.txt";
    "../protected";
    "~/alias";
    "/tmp/scratchpad";
  ]

let op_gen =
  let open QCheck.Gen in
  let path = oneofl path_pool in
  let data = oneofl [ "x"; "payload"; String.make 2000 'A' ] in
  frequency
    [
      (3, map2 (fun p d -> F_write (p, d)) path data);
      (3, map (fun p -> F_read p) path);
      (2, map (fun p -> F_mkdir p) path);
      (2, map (fun p -> F_unlink p) path);
      (1, map (fun p -> F_rmdir p) path);
      (2, map2 (fun a b -> F_rename (a, b)) path path);
      (1, map (fun p -> F_chmod (p, 0o777)) path);
      (2, map2 (fun t p -> F_symlink (t, p)) path path);
      (2, map2 (fun t p -> F_link (t, p)) path path);
      (1, map (fun p -> F_setacl (p, "JoeHacker rwlxad")) path);
      (1, map (fun p -> F_truncate p) path);
      (1, map (fun p -> F_chdir p) path);
      (1, map (fun p -> F_readdir p) path);
      (1, return F_spawn_helper);
    ]

let program_gen = QCheck.Gen.(list_size (int_range 5 40) op_gen)

(* ------------------------------------------------------------------ *)
(* Filesystem snapshots.                                                *)
(* ------------------------------------------------------------------ *)

(* Objects under these prefixes legitimately change during a run. *)
(* /tmp is world-writable: any local user may create there, so the
   box makes no promise about it (nobody-fallback Unix semantics).
   Everything the attacker does under /tmp is legitimate. *)
let volatile base path =
  Path.is_prefix ~prefix:base path
  || (Path.is_prefix ~prefix:"/tmp" path && not (String.equal path "/tmp"))

let rec snapshot fs ~base acc path =
  match Fs.lstat fs ~uid:0 path with
  | Error _ -> acc
  | Ok st ->
    let acc =
      if volatile base path then acc
      else
        let content =
          match st.Fs.st_kind with
          | Inode.Regular ->
            (match Fs.read_file fs ~uid:0 path with
             | Ok text -> Digest.string text
             | Error _ -> "?")
          | Inode.Symlink ->
            (match Fs.readlink fs ~uid:0 path with Ok t -> t | Error _ -> "?")
          | Inode.Directory -> "dir"
          | Inode.Fifo -> "fifo"
        in
        (path, (st.Fs.st_kind, st.Fs.st_mode, st.Fs.st_uid, content)) :: acc
    in
    if st.Fs.st_kind = Inode.Directory then
      match Fs.readdir fs ~uid:0 path with
      | Error _ -> acc
      | Ok names ->
        List.fold_left
          (fun acc name ->
            snapshot fs ~base acc
              (if String.equal path "/" then "/" ^ name else path ^ "/" ^ name))
          acc names
    else acc

let take_snapshot fs ~base =
  snapshot fs ~base [] "/" |> List.sort compare

(* ------------------------------------------------------------------ *)
(* The property.                                                        *)
(* ------------------------------------------------------------------ *)

let secret_content = "TOP-SECRET-DO-NOT-LEAK"

let helper_program_name = "fuzz-attack-helper"

let run_attack ops =
  let k = Kernel.create () in
  (* The helper a generated program may stage and spawn: it attacks the
     protected area from a traced child process. *)
  Idbox_kernel.Program.register helper_program_name (fun _ ->
      ignore (Libc.write_file "/protected/from_child" ~contents:"boo");
      ignore (Libc.unlink "/protected/secret.txt");
      match Libc.read_file "/protected/secret.txt" with
      | Ok text when String.equal text secret_content -> 77
      | Ok _ | Error _ -> 0);
  let victim =
    match Kernel.add_user k "victim" with Ok e -> e | Error m -> failwith m
  in
  let fs = Kernel.fs k in
  let seed ctx = function Ok _ -> () | Error e -> failwith (ctx ^ Errno.message e) in
  seed "p" (Fs.mkdir_p fs ~uid:0 "/protected");
  seed "p" (Fs.chmod fs ~uid:0 ~mode:0o700 "/protected");
  seed "p" (Fs.write_file fs ~uid:0 ~mode:0o600 "/protected/secret.txt" secret_content);
  seed "v"
    (Fs.write_file fs ~uid:victim.Idbox_kernel.Account.uid ~mode:0o600
       "/home/victim/data" "victim bytes");
  seed "s" (Fs.mkdir_p fs ~uid:0 ~mode:0o777 "/tmp/scratchpad");
  let box =
    match
      Box.create k ~supervisor_uid:victim.Idbox_kernel.Account.uid
        ~identity:(Principal.of_string "JoeHacker") ()
    with
    | Ok b -> b
    | Error e -> failwith (Errno.message e)
  in
  let before = take_snapshot fs ~base:(Box.base box) in
  let leaked = ref false in
  let expand home p =
    if String.length p >= 1 && p.[0] = '~' then
      home ^ String.sub p 1 (String.length p - 1)
    else p
  in
  let main _args =
    let home = Option.get (Libc.getenv "HOME") in
    let e = expand home in
    List.iter
      (fun op ->
        match op with
        | F_write (p, d) -> ignore (Libc.write_file (e p) ~contents:d)
        | F_read p ->
          (match Libc.read_file (e p) with
           | Ok text -> if String.equal text secret_content then leaked := true
           | Error _ -> ())
        | F_mkdir p -> ignore (Libc.mkdir (e p))
        | F_unlink p -> ignore (Libc.unlink (e p))
        | F_rmdir p -> ignore (Libc.rmdir (e p))
        | F_rename (a, b) -> ignore (Libc.rename ~src:(e a) ~dst:(e b))
        | F_chmod (p, mode) -> ignore (Libc.chmod ~mode (e p))
        | F_symlink (t, p) -> ignore (Libc.symlink ~target:(e t) (e p))
        | F_link (t, p) -> ignore (Libc.link ~target:(e t) (e p))
        | F_setacl (p, entry) -> ignore (Libc.setacl ~path:(e p) ~entry)
        | F_truncate p -> ignore (Libc.truncate ~len:0 (e p))
        | F_chdir p -> ignore (Libc.chdir (e p))
        | F_readdir p ->
          (match Libc.readdir (e p) with
           | Ok names -> if List.mem "secret.txt" names then () else ()
           | Error _ -> ())
        | F_spawn_helper ->
          let exe = home ^ "/helper.exe" in
          ignore
            (Libc.write_file exe
               ~contents:(Idbox_kernel.Program.marker helper_program_name));
          ignore (Libc.chmod ~mode:0o755 exe);
          (match Libc.spawn exe ~args:[ "helper" ] with
           | Ok pid ->
             (match Libc.waitpid pid with
              | Ok (_, 77) -> leaked := true
              | Ok _ | Error _ -> ())
           | Error _ -> ()))
      ops;
    0
  in
  let pid = Box.spawn_main box ~main ~args:[ "attack" ] in
  Kernel.run k;
  (match Kernel.exit_code k pid with
   | Some _ -> ()
   | None -> failwith "attacker stuck");
  let after = take_snapshot fs ~base:(Box.base box) in
  (before = after, !leaked)

let prop_no_external_mutation =
  QCheck.Test.make ~name:"random boxed attacks mutate nothing outside the box"
    ~count:60 (QCheck.make program_gen) (fun ops ->
      let unchanged, _ = run_attack ops in
      unchanged)

let prop_no_secret_leak =
  QCheck.Test.make ~name:"random boxed attacks never read the secret" ~count:60
    (QCheck.make program_gen) (fun ops ->
      let _, leaked = run_attack ops in
      not leaked)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_no_external_mutation;
    QCheck_alcotest.to_alcotest prop_no_secret_leak;
  ]
