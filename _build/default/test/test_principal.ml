module Principal = Idbox_identity.Principal
module Subject = Idbox_identity.Subject

let parse_schemes () =
  let p = Principal.of_string "globus:/O=UnivNowhere/CN=Fred" in
  Alcotest.(check bool) "globus" true (p.Principal.scheme = Some Principal.Globus);
  Alcotest.(check string) "name" "/O=UnivNowhere/CN=Fred" p.Principal.name;
  let k = Principal.of_string "kerberos:fred@nowhere.edu" in
  Alcotest.(check bool) "kerberos" true (k.Principal.scheme = Some Principal.Kerberos);
  let h = Principal.of_string "hostname:laptop.cs.nowhere.edu" in
  Alcotest.(check bool) "hostname" true (h.Principal.scheme = Some Principal.Hostname);
  let u = Principal.of_string "unix:dthain" in
  Alcotest.(check bool) "unix" true (u.Principal.scheme = Some Principal.Unix)

let unqualified_names () =
  let f = Principal.of_string "Freddy" in
  Alcotest.(check bool) "no scheme" true (f.Principal.scheme = None);
  Alcotest.(check string) "roundtrip" "Freddy" (Principal.to_string f);
  (* A DN has no colon: parses unqualified. *)
  let dn = Principal.of_string "/O=UnivNowhere/CN=Fred" in
  Alcotest.(check bool) "dn unqualified" true (dn.Principal.scheme = None)

let unknown_scheme_token () =
  let p = Principal.of_string "ftp:someone" in
  Alcotest.(check bool) "other scheme" true
    (p.Principal.scheme = Some (Principal.Other "ftp"));
  Alcotest.(check string) "roundtrip" "ftp:someone" (Principal.to_string p)

let non_scheme_colon () =
  (* Uppercase before ':' is not a scheme token: whole string is the name. *)
  let p = Principal.of_string "Weird:Name" in
  Alcotest.(check bool) "not scheme" true (p.Principal.scheme = None);
  Alcotest.(check string) "kept whole" "Weird:Name" (Principal.to_string p)

let roundtrip_known () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Principal.to_string (Principal.of_string s)))
    [
      "globus:/O=UnivNowhere/CN=Fred";
      "kerberos:fred@nowhere.edu";
      "hostname:laptop.cs.nowhere.edu";
      "unix:nobody";
      "Anonymous429";
      "MyFriend";
    ]

let distinguished_principals () =
  Alcotest.(check bool) "anonymous" true
    (String.equal (Principal.to_string Principal.anonymous) "anonymous");
  Alcotest.(check bool) "nobody" true
    (String.equal (Principal.to_string Principal.nobody) "unix:nobody")

let equality_and_order () =
  let a = Principal.of_string "unix:alice" and b = Principal.of_string "unix:bob" in
  Alcotest.(check bool) "equal self" true (Principal.equal a a);
  Alcotest.(check bool) "not equal" false (Principal.equal a b);
  Alcotest.(check bool) "order" true (Principal.compare a b < 0)

let pattern_matching () =
  let fred = Principal.of_string "globus:/O=UnivNowhere/CN=Fred" in
  Alcotest.(check bool) "org wildcard" true
    (Principal.matches_pattern ~pattern:"globus:/O=UnivNowhere/*" fred);
  Alcotest.(check bool) "other org" false
    (Principal.matches_pattern ~pattern:"globus:/O=Elsewhere/*" fred)

let make_rejects_empty () =
  Alcotest.check_raises "empty name" (Invalid_argument "Principal.make: empty name")
    (fun () -> ignore (Principal.make ""))

let prop_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:300
    (QCheck.string_of_size (QCheck.Gen.int_range 1 40))
    (fun s ->
      (* Principals are free-form: parsing then printing is the identity
         on every non-empty string. *)
      String.equal (Principal.to_string (Principal.of_string s)) s)

let suite =
  [
    Alcotest.test_case "parse schemes" `Quick parse_schemes;
    Alcotest.test_case "unqualified names" `Quick unqualified_names;
    Alcotest.test_case "unknown scheme token" `Quick unknown_scheme_token;
    Alcotest.test_case "non-scheme colon" `Quick non_scheme_colon;
    Alcotest.test_case "roundtrip known forms" `Quick roundtrip_known;
    Alcotest.test_case "distinguished principals" `Quick distinguished_principals;
    Alcotest.test_case "equality and order" `Quick equality_and_order;
    Alcotest.test_case "pattern matching" `Quick pattern_matching;
    Alcotest.test_case "make rejects empty" `Quick make_rejects_empty;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
