module Remote = Idbox.Remote
module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let not_supported_fails_everything () =
  let d = Remote.not_supported ~describe:"stub" in
  Alcotest.(check string) "describe" "stub" d.Remote.r_describe;
  let is_enosys = function Error Errno.ENOSYS -> true | _ -> false in
  Alcotest.(check bool) "stat" true (is_enosys (d.Remote.r_stat "/x"));
  Alcotest.(check bool) "read" true (is_enosys (d.Remote.r_read "/x"));
  Alcotest.(check bool) "write" true (is_enosys (d.Remote.r_write "/x" "d"));
  Alcotest.(check bool) "mkdir" true (is_enosys (d.Remote.r_mkdir "/x"));
  Alcotest.(check bool) "unlink" true (is_enosys (d.Remote.r_unlink "/x"));
  Alcotest.(check bool) "rmdir" true (is_enosys (d.Remote.r_rmdir "/x"));
  Alcotest.(check bool) "readdir" true (is_enosys (d.Remote.r_readdir "/x"));
  Alcotest.(check bool) "rename" true (is_enosys (d.Remote.r_rename "/a" "/b"));
  Alcotest.(check bool) "getacl" true (is_enosys (d.Remote.r_getacl "/x"));
  Alcotest.(check bool) "setacl" true (is_enosys (d.Remote.r_setacl "/x" "e"))

let loopback_driver_operations () =
  let fs = Fs.create () in
  ok "seed" (Fs.mkdir_p fs ~uid:0 "/data");
  ok "seed2" (Fs.write_file fs ~uid:0 "/data/f" "contents");
  let d = Remote.of_local_fs fs ~uid:0 in
  (* Reads and stats pass through. *)
  Alcotest.(check string) "read" "contents" (ok "read" (d.Remote.r_read "/data/f"));
  let st = ok "stat" (d.Remote.r_stat "/data/f") in
  Alcotest.(check int) "size" 8 st.Fs.st_size;
  Alcotest.(check bool) "kind" true (st.Fs.st_kind = Inode.Regular);
  (* Mutations land in the backing fs. *)
  ok "write" (d.Remote.r_write "/data/new" "fresh");
  Alcotest.(check string) "landed" "fresh" (ok "readback" (Fs.read_file fs ~uid:0 "/data/new"));
  ok "mkdir" (d.Remote.r_mkdir "/data/sub");
  Alcotest.(check bool) "dir exists" true (Fs.exists fs ~uid:0 "/data/sub");
  ok "rename" (d.Remote.r_rename "/data/new" "/data/renamed");
  Alcotest.(check (list string)) "listing" [ "f"; "renamed"; "sub" ]
    (ok "readdir" (d.Remote.r_readdir "/data"));
  ok "unlink" (d.Remote.r_unlink "/data/renamed");
  ok "rmdir" (d.Remote.r_rmdir "/data/sub");
  (* Errors pass through as errnos. *)
  (match d.Remote.r_read "/missing" with
   | Error Errno.ENOENT -> ()
   | Ok _ | Error _ -> Alcotest.fail "missing read");
  (* Permission checks honour the driver uid. *)
  let restricted = Remote.of_local_fs fs ~uid:4444 in
  ok "chmod" (Fs.chmod fs ~uid:0 ~mode:0o600 "/data/f");
  (match restricted.Remote.r_read "/data/f" with
   | Error Errno.EACCES -> ()
   | Ok _ | Error _ -> Alcotest.fail "uid ignored")

let suite =
  [
    Alcotest.test_case "not_supported" `Quick not_supported_fails_everything;
    Alcotest.test_case "loopback driver" `Quick loopback_driver_operations;
  ]
