module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Box = Idbox.Box
module Remote = Idbox.Remote
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let errno = Alcotest.testable Errno.pp Errno.equal

let freddy = Principal.of_string "Freddy"
let fred_dn = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"

(* Substring test for ACL-text assertions. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

(* A host with the supervising user dthain and one private file. *)
let setup () =
  let k = Kernel.create () in
  let dthain =
    match Account.add (Kernel.accounts k) "dthain" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Kernel.refresh_passwd k;
  let fs = Kernel.fs k in
  let root_ok ctx = function
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)
  in
  root_ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/home/dthain");
  root_ok "chown" (Fs.chown fs ~uid:0 ~owner:dthain.Account.uid "/home/dthain");
  root_ok "chmod" (Fs.chmod fs ~uid:0 ~mode:0o700 "/home/dthain");
  root_ok "secret"
    (Fs.write_file fs ~uid:dthain.Account.uid ~mode:0o600 "/home/dthain/secret"
       "top secret");
  (k, dthain.Account.uid)

let make_box ?mounts ?(identity = freddy) (k, uid) =
  match Box.create k ?mounts ~supervisor_uid:uid ~identity () with
  | Ok box -> box
  | Error e -> Alcotest.failf "box create: %s" (Errno.to_string e)

let run_in box main =
  let pid = Box.spawn_main box ~main ~args:[ "job" ] in
  Kernel.run (Box.kernel box);
  match Kernel.exit_code (Box.kernel box) pid with
  | Some code -> code
  | None -> Alcotest.fail "boxed job never exited"

let figure2_session () =
  let host = setup () in
  let box = make_box host in
  let home = Box.home box in
  let code =
    run_in box (fun _ ->
        (* whoami: the high-level identity, not an account. *)
        if not (String.equal (Libc.get_user_name ()) "Freddy") then Libc.exit 1;
        (* The supervisor's secret is denied (no ACL; nobody fallback). *)
        (match Libc.read_file "/home/dthain/secret" with
         | Error Errno.EACCES -> ()
         | Ok _ | Error _ -> Libc.exit 2);
        (* The fresh home works. *)
        (match Libc.write_file (home ^ "/mydata") ~contents:"freddy data" with
         | Ok () -> ()
         | Error _ -> Libc.exit 3);
        (match Libc.read_file (home ^ "/mydata") with
         | Ok "freddy data" -> ()
         | Ok _ | Error _ -> Libc.exit 4);
        (* /etc/passwd is redirected: the first entry names Freddy. *)
        (match Libc.read_file "/etc/passwd" with
         | Ok text ->
           (match String.split_on_char ':' text with
            | "Freddy" :: _ -> ()
            | _ -> Libc.exit 5)
         | Error _ -> Libc.exit 6);
        0)
  in
  Alcotest.(check int) "figure 2 transcript" 0 code

let per_right_enforcement () =
  let host = setup () in
  let box = make_box ~identity:fred_dn host in
  let k, uid = host in
  let fs = Kernel.fs k in
  (* A shared area where Fred holds exactly rl. *)
  (match Fs.mkdir_p fs ~uid:0 "/srv/shared" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Errno.to_string e));
  (match Fs.chown fs ~uid:0 ~owner:uid "/srv/shared" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Errno.to_string e));
  (match
     Fs.write_file fs ~uid "/srv/shared/readable.txt" "public data"
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Errno.to_string e));
  (match
     Box.set_acl box ~dir:"/srv/shared"
       (Acl.of_entries
          [ Entry.make ~pattern:"globus:/O=UnivNowhere/*" (Rights.of_string_exn "rl") ])
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Errno.to_string e));
  let code =
    run_in box (fun _ ->
        (* r: read allowed. *)
        (match Libc.read_file "/srv/shared/readable.txt" with
         | Ok "public data" -> ()
         | Ok _ | Error _ -> Libc.exit 1);
        (* l: list and stat allowed, ACL file hidden. *)
        (match Libc.readdir "/srv/shared" with
         | Ok names ->
           if List.mem ".__acl" names then Libc.exit 2;
           if not (List.mem "readable.txt" names) then Libc.exit 3
         | Error _ -> Libc.exit 4);
        (match Libc.stat "/srv/shared/readable.txt" with
         | Ok _ -> ()
         | Error _ -> Libc.exit 5);
        (* w: denied. *)
        (match Libc.write_file "/srv/shared/newfile" ~contents:"x" with
         | Error Errno.EACCES -> ()
         | Ok () | Error _ -> Libc.exit 6);
        (* overwrite denied too. *)
        (match
           Libc.open_file
             ~flags:{ Fs.rdonly with Fs.rd = false; wr = true }
             "/srv/shared/readable.txt"
         with
         | Error Errno.EACCES -> ()
         | Ok _ | Error _ -> Libc.exit 7);
        (* delete denied. *)
        (match Libc.unlink "/srv/shared/readable.txt" with
         | Error Errno.EACCES -> ()
         | Ok () | Error _ -> Libc.exit 8);
        (* a: setacl denied. *)
        (match Libc.setacl ~path:"/srv/shared" ~entry:"unix:eve rwlxad" with
         | Error Errno.EACCES -> ()
         | Ok () | Error _ -> Libc.exit 9);
        (* getacl allowed with l. *)
        (match Libc.getacl "/srv/shared" with
         | Ok text ->
           if not (String.length text > 0) then Libc.exit 10
         | Error _ -> Libc.exit 11);
        0)
  in
  Alcotest.(check int) "per-right enforcement" 0 code

let reserve_right_mints_namespace () =
  let host = setup () in
  let box = make_box ~identity:fred_dn host in
  let k, uid = host in
  let fs = Kernel.fs k in
  (match Fs.mkdir_p fs ~uid:0 "/srv/pool" with
   | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
  (match Fs.chown fs ~uid:0 ~owner:uid "/srv/pool" with
   | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
  (match
     Box.set_acl box ~dir:"/srv/pool"
       (Acl.of_entries
          [
            Entry.make ~pattern:"globus:/O=UnivNowhere/*"
              ~reserve:(Rights.of_string_exn "rwlax")
              (Rights.of_string_exn "l");
          ])
   with
   | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
  let code =
    run_in box (fun _ ->
        (* No write right — plain create is denied... *)
        (match Libc.write_file "/srv/pool/direct.txt" ~contents:"x" with
         | Error Errno.EACCES -> ()
         | Ok () | Error _ -> Libc.exit 1);
        (* ...but mkdir is allowed via the reserve right. *)
        (match Libc.mkdir "/srv/pool/work" with
         | Ok () -> ()
         | Error _ -> Libc.exit 2);
        (* The fresh directory is fully Fred's. *)
        (match Libc.write_file "/srv/pool/work/sim.cfg" ~contents:"cfg" with
         | Ok () -> ()
         | Error _ -> Libc.exit 3);
        (* Fred can extend rights there (A in the grant). *)
        (match
           Libc.setacl ~path:"/srv/pool/work"
             ~entry:"globus:/O=UnivNowhere/CN=Jane rl"
         with
         | Ok () -> ()
         | Error _ -> Libc.exit 4);
        (match Libc.getacl "/srv/pool/work" with
         | Ok text ->
           if not (String.length text > 0) then Libc.exit 5
         | Error _ -> Libc.exit 6);
        0)
  in
  Alcotest.(check int) "reserve right" 0 code;
  (* The minted ACL names Fred with the reserve grant (no d: grant was rwlax). *)
  let acl_text =
    match Fs.read_file (Kernel.fs k) ~uid:0 "/srv/pool/work/.__acl" with
    | Ok t -> t
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  Alcotest.(check bool) "fred in acl" true
    (contains acl_text "globus:/O=UnivNowhere/CN=Fred")

let mkdir_inherits_parent_acl () =
  let host = setup () in
  let box = make_box ~identity:fred_dn host in
  let home = Box.home box in
  let code =
    run_in box (fun _ ->
        (match Libc.mkdir (home ^ "/sub") with
         | Ok () -> ()
         | Error _ -> Libc.exit 1);
        (* The child directory carries the parent's grants: Fred can
           work there immediately. *)
        (match Libc.write_file (home ^ "/sub/f") ~contents:"x" with
         | Ok () -> ()
         | Error _ -> Libc.exit 2);
        (match Libc.getacl (home ^ "/sub") with
         | Ok text -> if String.length text = 0 then Libc.exit 3
         | Error _ -> Libc.exit 4);
        0)
  in
  Alcotest.(check int) "inherited acl" 0 code

let chdir_and_getcwd_virtualized () =
  let host = setup () in
  let box = make_box host in
  let home = Box.home box in
  let code =
    run_in box (fun _ ->
        (* The box starts the visitor at home. *)
        if not (String.equal (Libc.getcwd ()) home) then Libc.exit 1;
        (match Libc.mkdir (home ^ "/deeper") with
         | Ok () -> () | Error _ -> Libc.exit 2);
        (match Libc.chdir "deeper" with
         | Ok () -> () | Error _ -> Libc.exit 3);
        if not (String.equal (Libc.getcwd ()) (home ^ "/deeper")) then Libc.exit 4;
        (* Relative paths resolve against the virtual cwd. *)
        (match Libc.write_file "rel.txt" ~contents:"rel" with
         | Ok () -> () | Error _ -> Libc.exit 5);
        (match Libc.read_file (home ^ "/deeper/rel.txt") with
         | Ok "rel" -> () | Ok _ | Error _ -> Libc.exit 6);
        (* chdir into an unreadable place is denied. *)
        (match Libc.chdir "/home/dthain" with
         | Error Errno.EACCES -> () | Ok () | Error _ -> Libc.exit 7);
        0)
  in
  Alcotest.(check int) "virtual cwd" 0 code

let spawn_inside_box_needs_x () =
  let host = setup () in
  let k, _uid = host in
  let box = make_box ~identity:fred_dn host in
  let home = Box.home box in
  Kernel.with_fresh_programs (fun () ->
      Idbox_kernel.Program.register "tool" (fun _ -> 11);
      let code =
        run_in box (fun _ ->
            (* Fred stages an executable into his home (x granted by his
               owner ACL) and runs it. *)
            (match
               Libc.write_file (home ^ "/tool.exe")
                 ~contents:(Idbox_kernel.Program.marker "tool")
             with
             | Ok () -> () | Error _ -> Libc.exit 1);
            (match Libc.chmod ~mode:0o755 (home ^ "/tool.exe") with
             | Ok () -> () | Error _ -> Libc.exit 2);
            let pid =
              match Libc.spawn (home ^ "/tool.exe") ~args:[ "tool" ] with
              | Ok pid -> pid
              | Error _ -> Libc.exit 3
            in
            (match Libc.waitpid pid with
             | Ok (_, 11) -> ()
             | Ok _ | Error _ -> Libc.exit 4);
            (* And the child was boxed too: it ran as Fred. *)
            0)
      in
      Alcotest.(check int) "boxed spawn" 0 code;
      ignore k)

let child_runs_under_same_identity () =
  let host = setup () in
  let box = make_box ~identity:fred_dn host in
  let home = Box.home box in
  Kernel.with_fresh_programs (fun () ->
      Idbox_kernel.Program.register "whoami" (fun _ ->
          match Libc.write_file "child_user" ~contents:(Libc.get_user_name ()) with
          | Ok () -> 0
          | Error _ -> 1);
      let code =
        run_in box (fun _ ->
            (match
               Libc.write_file (home ^ "/whoami.exe")
                 ~contents:(Idbox_kernel.Program.marker "whoami")
             with
             | Ok () -> () | Error _ -> Libc.exit 1);
            (match Libc.chmod ~mode:0o755 (home ^ "/whoami.exe") with
             | Ok () -> () | Error _ -> Libc.exit 9);
            let pid =
              match Libc.spawn (home ^ "/whoami.exe") ~args:[ "w" ] with
              | Ok pid -> pid
              | Error _ -> Libc.exit 2
            in
            (match Libc.waitpid pid with
             | Ok (_, 0) -> ()
             | Ok _ | Error _ -> Libc.exit 3);
            (* The child's cwd was inherited (home), so the file is here. *)
            (match Libc.read_file (home ^ "/child_user") with
             | Ok "globus:/O=UnivNowhere/CN=Fred" -> 0
             | Ok _ | Error _ -> Libc.exit 4))
      in
      Alcotest.(check int) "child identity" 0 code)

let bulk_and_small_io_roundtrip () =
  let host = setup () in
  let box = make_box host in
  let home = Box.home box in
  let big = String.init 100_000 (fun i -> Char.chr (i mod 251)) in
  let code =
    run_in box (fun _ ->
        (* Bulk writes cross the I/O channel; reads come back through a
           rewritten pread.  Contents must survive both directions. *)
        (match Libc.write_file (home ^ "/big.bin") ~contents:big with
         | Ok () -> () | Error _ -> Libc.exit 1);
        (match Libc.read_file (home ^ "/big.bin") with
         | Ok data -> if not (String.equal data big) then Libc.exit 2
         | Error _ -> Libc.exit 3);
        (* Small I/O takes the peek/poke path. *)
        (match Libc.write_file (home ^ "/small.txt") ~contents:"tiny" with
         | Ok () -> () | Error _ -> Libc.exit 4);
        (match Libc.read_file (home ^ "/small.txt") with
         | Ok "tiny" -> () | Ok _ | Error _ -> Libc.exit 5);
        0)
  in
  Alcotest.(check int) "io roundtrip" 0 code;
  Alcotest.(check bool) "channel used" true
    ((Kernel.stats (Box.kernel box)).Kernel.channel_bytes > 0)

let lseek_fstat_on_virtual_fds () =
  let host = setup () in
  let box = make_box host in
  let home = Box.home box in
  let code =
    run_in box (fun _ ->
        (match Libc.write_file (home ^ "/f") ~contents:"abcdef" with
         | Ok () -> () | Error _ -> Libc.exit 1);
        let fd =
          match Libc.open_file (home ^ "/f") with
          | Ok fd -> fd
          | Error _ -> Libc.exit 2
        in
        (match Libc.fstat fd with
         | Ok st -> if st.Fs.st_size <> 6 then Libc.exit 3
         | Error _ -> Libc.exit 4);
        (match Libc.lseek fd ~off:3 ~whence:Idbox_kernel.Syscall.Seek_set with
         | Ok 3 -> () | Ok _ | Error _ -> Libc.exit 5);
        (match Libc.read fd ~len:3 with
         | Ok "def" -> () | Ok _ | Error _ -> Libc.exit 6);
        (match Libc.close fd with Ok () -> () | Error _ -> Libc.exit 7);
        (* A bogus fd (e.g. the channel's real number) is EBADF. *)
        (match Libc.read 3 ~len:1 with
         | Error Errno.EBADF -> () | Ok _ | Error _ -> Libc.exit 8);
        0)
  in
  Alcotest.(check int) "vfd semantics" 0 code

let signals_confined_to_box () =
  let host = setup () in
  let k, uid = host in
  let box_a = make_box ~identity:fred_dn host in
  let box_b = make_box ~identity:(Principal.of_string "unix:carol") (k, uid) in
  (* A long-running process in box B. *)
  let victim =
    Box.spawn_main box_b
      ~main:(fun _ ->
        for _ = 1 to 1000 do
          Libc.compute 1_000_000L
        done;
        0)
      ~args:[ "victim" ]
  in
  let result = ref None in
  let _ =
    Box.spawn_main box_a
      ~main:(fun _ ->
        result := Some (Libc.kill ~pid:victim ~signal:9);
        0)
      ~args:[ "killer" ]
  in
  Kernel.run k;
  (* Unix would have allowed it (same account!); the identity box denies
     cross-identity signals. *)
  (match !result with
   | Some (Error Errno.EPERM) -> ()
   | Some (Ok ()) -> Alcotest.fail "cross-box kill succeeded"
   | _ -> Alcotest.fail "kill not attempted");
  Alcotest.(check (option int)) "victim unharmed" (Some 0) (Kernel.exit_code k victim)

let same_box_signals_allowed () =
  let host = setup () in
  let k, _ = host in
  let box = make_box ~identity:fred_dn host in
  let victim =
    Box.spawn_main box
      ~main:(fun _ ->
        for _ = 1 to 100_000 do
          Libc.compute 1_000_000L
        done;
        0)
      ~args:[ "victim" ]
  in
  let result = ref None in
  let _ =
    Box.spawn_main box
      ~main:(fun _ ->
        result := Some (Libc.kill ~pid:victim ~signal:15);
        0)
      ~args:[ "killer" ]
  in
  Kernel.run k;
  (match !result with
   | Some (Ok ()) -> ()
   | _ -> Alcotest.fail "same-identity kill should succeed");
  Alcotest.(check (option int)) "victim terminated" (Some 143)
    (Kernel.exit_code k victim)

let remote_mounts () =
  let host = setup () in
  let k, uid = host in
  (* A loop-back "remote" filesystem mounted at /grid. *)
  let remote_fs = Fs.create () in
  (match Fs.mkdir_p remote_fs ~uid:0 "/store" with
   | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
  (match Fs.write_file remote_fs ~uid:0 "/store/input.dat" "remote bits" with
   | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
  let driver = Remote.of_local_fs remote_fs ~uid:0 in
  let box =
    match
      Box.create k ~supervisor_uid:uid ~identity:fred_dn
        ~mounts:[ ("/grid", driver) ] ()
    with
    | Ok box -> box
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  let code =
    run_in box (fun _ ->
        (match Libc.read_file "/grid/store/input.dat" with
         | Ok "remote bits" -> () | Ok _ | Error _ -> Libc.exit 1);
        (match Libc.readdir "/grid/store" with
         | Ok [ "input.dat" ] -> () | Ok _ | Error _ -> Libc.exit 2);
        (match Libc.stat "/grid/store/input.dat" with
         | Ok st -> if st.Fs.st_size <> 11 then Libc.exit 3
         | Error _ -> Libc.exit 4);
        (match Libc.write_file "/grid/store/output.dat" ~contents:"sent back" with
         | Ok () -> () | Error _ -> Libc.exit 5);
        (match Libc.mkdir "/grid/store/sub" with
         | Ok () -> () | Error _ -> Libc.exit 6);
        (* Hard links across a mount boundary are refused. *)
        (match Libc.link ~target:"/grid/store/input.dat" "/tmp/leak" with
         | Error Errno.EXDEV -> () | Ok () | Error _ -> Libc.exit 7);
        0)
  in
  Alcotest.(check int) "mount operations" 0 code;
  (* The remote write was flushed on close. *)
  (match Fs.read_file remote_fs ~uid:0 "/store/output.dat" with
   | Ok "sent back" -> ()
   | Ok other -> Alcotest.failf "remote got %S" other
   | Error e -> Alcotest.fail (Errno.to_string e))

let member_tracking () =
  let host = setup () in
  let k, _ = host in
  let box = make_box host in
  let pid = Box.spawn_main box ~main:(fun _ -> 0) ~args:[ "m" ] in
  Alcotest.(check bool) "member while alive" true (Box.member box pid);
  Kernel.run k;
  Alcotest.(check bool) "gone after exit" false (Box.member box pid)

let supervisor_grant_api () =
  let host = setup () in
  let box = make_box ~identity:fred_dn host in
  let home = Box.home box in
  (match Box.grant box ~dir:home ~pattern:"unix:jane" (Rights.of_string_exn "rl") with
   | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
  let text =
    match
      Fs.read_file (Kernel.fs (Box.kernel box)) ~uid:0 (home ^ "/.__acl")
    with
    | Ok t -> t
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  Alcotest.(check bool) "jane granted" true (contains text "unix:jane")

let identity_accessors () =
  let host = setup () in
  let box = make_box ~identity:fred_dn host in
  Alcotest.(check string) "identity string" "globus:/O=UnivNowhere/CN=Fred"
    (Box.identity_string box);
  Alcotest.(check bool) "principal equal" true
    (Principal.equal (Box.identity box) fred_dn);
  Alcotest.(check bool) "base under tmp" true
    (Idbox_vfs.Path.is_prefix ~prefix:"/tmp" (Box.base box))

let suite =
  [
    Alcotest.test_case "figure 2 session" `Quick figure2_session;
    Alcotest.test_case "per-right enforcement" `Quick per_right_enforcement;
    Alcotest.test_case "reserve right" `Quick reserve_right_mints_namespace;
    Alcotest.test_case "mkdir inherits acl" `Quick mkdir_inherits_parent_acl;
    Alcotest.test_case "virtual cwd" `Quick chdir_and_getcwd_virtualized;
    Alcotest.test_case "boxed spawn needs x" `Quick spawn_inside_box_needs_x;
    Alcotest.test_case "child identity" `Quick child_runs_under_same_identity;
    Alcotest.test_case "bulk and small io" `Quick bulk_and_small_io_roundtrip;
    Alcotest.test_case "vfd lseek/fstat" `Quick lseek_fstat_on_virtual_fds;
    Alcotest.test_case "signals confined" `Quick signals_confined_to_box;
    Alcotest.test_case "same-box signals" `Quick same_box_signals_allowed;
    Alcotest.test_case "remote mounts" `Quick remote_mounts;
    Alcotest.test_case "member tracking" `Quick member_tracking;
    Alcotest.test_case "supervisor grant" `Quick supervisor_grant_api;
    Alcotest.test_case "identity accessors" `Quick identity_accessors;
  ]
