(* The capstone integration test: a small grid world exercising every
   subsystem together — catalog discovery, CAS-gated admission, two
   Chirp servers, an identity box with the whole grid mounted, the
   simulated shell with pipelines, remote exec, and the audit trail. *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Clock = Idbox_kernel.Clock
module Network = Idbox_net.Network
module Ca = Idbox_auth.Ca
module Cas = Idbox_auth.Cas
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Catalog = Idbox_chirp.Catalog
module Chirp_fs = Idbox_chirp.Chirp_fs
module Shell = Idbox_apps.Shell
module Coreutils = Idbox_apps.Coreutils
module Box = Idbox.Box
module Audit = Idbox.Audit
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Principal = Idbox_identity.Principal
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.message e)

let okm ctx = function Ok v -> v | Error m -> Alcotest.failf "%s: %s" ctx m

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

let a_day_on_the_grid () =
  Kernel.with_fresh_programs (fun () ->
      (* ---- the grid fabric ------------------------------------------ *)
      let clock = Clock.create () in
      let net = Network.create ~clock () in
      let _catalog = Catalog.create net ~addr:"catalog:9097" in
      let ca = Ca.create ~name:"Campus CA" in
      let cas = Cas.create ~name:"plasma-cas" in
      let fred = Principal.of_string "globus:/O=Campus/CN=Fred" in
      Cas.add_member cas ~community:"plasma" fred;

      (* ---- two servers, CAS-gated ----------------------------------- *)
      let make_server host =
        let kernel = Kernel.create ~clock () in
        let owner = okm "user" (Kernel.add_user kernel ("op-" ^ host)) in
        let acceptor =
          Negotiate.acceptor ~trusted_cas:[ ca ]
            ~admit:(Cas.admit cas ~communities:[ "plasma" ] ~now:0L)
            ()
        in
        let root_acl =
          Acl.of_entries
            [
              Entry.make ~pattern:"globus:/O=Campus/*"
                ~reserve:(Rights.of_string_exn "rwlaxd")
                (Rights.of_string_exn "rlx");
            ]
        in
        let server =
          ok "server"
            (Server.create ~kernel ~net ~addr:(host ^ ":9094")
               ~owner_uid:owner.Account.uid
               ~export:("/home/op-" ^ host ^ "/export")
               ~acceptor ~root_acl ())
        in
        okm "register"
          (Catalog.register net ~catalog:"catalog:9097" ~name:host
             ~server_addr:(Server.addr server) ~owner:("unix:op-" ^ host));
        (kernel, server)
      in
      let _alpha = make_server "alpha" in
      let _beta = make_server "beta" in

      (* The simulation program staged onto alpha and exec'd remotely. *)
      Program.register "reduce" (fun _ ->
          let input = Libc.check "in" (Libc.read_file "raw.dat") in
          Libc.compute_us 10_000.;
          Libc.check "out"
            (Libc.write_file "reduced.dat"
               ~contents:
                 (Printf.sprintf "%d bytes reduced by %s" (String.length input)
                    (Libc.get_user_name ())));
          0);

      (* ---- an outsider is refused everywhere ------------------------- *)
      let eve_cert = Ca.issue ca (Subject.of_string_exn "/O=Campus/CN=Eve") in
      (match
         Client.connect net ~addr:"alpha:9094"
           ~credentials:[ Credential.Gsi eve_cert ]
       with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "eve admitted without membership");

      (* ---- Fred's laptop box with the discovered grid mounted -------- *)
      let fred_cert = Ca.issue ca (Subject.of_string_exn "/O=Campus/CN=Fred") in
      let creds = [ Credential.Gsi fred_cert ] in
      let mounts =
        okm "mounts" (Chirp_fs.mounts_from_catalog net ~catalog:"catalog:9097" ~credentials:creds)
      in
      Alcotest.(check int) "both servers admitted fred" 2 (List.length mounts);
      let laptop = Kernel.create ~clock () in
      ok "coreutils" (Coreutils.install laptop);
      ok "shell" (Shell.install laptop);
      let fred_acct = okm "fred" (Kernel.add_user laptop "fred") in
      let box =
        ok "box"
          (Box.create laptop ~supervisor_uid:fred_acct.Account.uid ~identity:fred
             ~mounts ~audit:true ())
      in

      (* Stage data onto alpha from inside the box, via the shell. *)
      let code, transcript =
        ok "session"
          (Shell.run_script laptop
             ~spawn:(fun ~main ~args -> Box.spawn_main box ~main ~args)
             ~output:(Box.home box ^ "/.session")
             [
               "whoami";
               "mkdir /chirp/alpha/run7";
               "echo ion temperatures from run seven > /chirp/alpha/run7/raw.dat";
               "cat /chirp/alpha/run7/raw.dat | wc";
               "mkdir /chirp/beta/backups";
               "cp /chirp/alpha/run7/raw.dat /chirp/beta/backups/backup.dat";
               "cat /home/fred/.bashrc";
               "echo done";
             ])
      in
      Alcotest.(check int) "session ok" 0 code;
      (* whoami shows the visitor's global name (its colon-free passwd
         form: the subject DN). *)
      Alcotest.(check bool) "identity consistent" true
        (contains transcript "/O=Campus/CN=Fred");
      Alcotest.(check bool) "piped count of remote file" true
        (contains transcript "1 5 32 -");
      Alcotest.(check bool) "missing local file reported" true
        (contains transcript "No such file");

      (* ---- remote exec on alpha, output fetched ---------------------- *)
      let c = okm "connect" (Client.connect net ~addr:"alpha:9094" ~credentials:creds) in
      ok "stage exe"
        (Client.put c ~path:"/run7/reduce.exe" ~data:(Program.marker "reduce"));
      Alcotest.(check int) "remote exec" 0
        (ok "exec" (Client.exec c ~path:"/run7/reduce.exe" ~args:[ "reduce" ] ()));
      Alcotest.(check string) "reduced output names fred"
        "32 bytes reduced by globus:/O=Campus/CN=Fred"
        (ok "get" (Client.get c "/run7/reduced.dat"));

      (* Integrity across the two copies. *)
      let beta = okm "connect beta" (Client.connect net ~addr:"beta:9094" ~credentials:creds) in
      Alcotest.(check string) "backup checksum matches"
        (ok "sum a" (Client.checksum c "/run7/raw.dat"))
        (ok "sum b" (Client.checksum beta "/backups/backup.dat"));

      (* ---- the audit trail saw the whole session --------------------- *)
      (match Box.audit_trail box with
       | None -> Alcotest.fail "no audit"
       | Some trail ->
         Alcotest.(check bool) "events recorded" true (Audit.length trail > 5);
         Alcotest.(check bool) "remote paths in trail" true
           (List.exists
              (fun (ev : Audit.event) ->
                contains ev.Audit.ev_path "/chirp/alpha/run7")
              (Audit.events trail))))

let suite = [ Alcotest.test_case "a day on the grid" `Slow a_day_on_the_grid ]
