module Path = Idbox_vfs.Path

let normalize_cases () =
  let cases =
    [
      ("/", "/");
      ("//", "/");
      ("/a//b", "/a/b");
      ("/a/./b", "/a/b");
      ("/a/b/..", "/a");
      ("/a/../..", "/");
      ("/../a", "/a");
      ("/a/b/../../c", "/c");
      ("/tmp/box_1/home/", "/tmp/box_1/home");
    ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Path.normalize input))
    cases

let join_cases () =
  Alcotest.(check string) "relative" "/home/fred/data"
    (Path.join "/home/fred" "data");
  Alcotest.(check string) "absolute wins" "/etc/passwd"
    (Path.join "/home/fred" "/etc/passwd");
  Alcotest.(check string) "dotdot" "/home/out.dat"
    (Path.join "/home/fred" "../out.dat");
  Alcotest.(check string) "from root" "/work" (Path.join "/" "work")

let basename_dirname () =
  Alcotest.(check string) "basename" "c" (Path.basename "/a/b/c");
  Alcotest.(check string) "dirname" "/a/b" (Path.dirname "/a/b/c");
  Alcotest.(check string) "root basename" "/" (Path.basename "/");
  Alcotest.(check string) "root dirname" "/" (Path.dirname "/");
  Alcotest.(check string) "top dirname" "/" (Path.dirname "/a")

let split_cases () =
  (match Path.split "/a/b" with
   | Some (dir, base) ->
     Alcotest.(check string) "dir" "/a" dir;
     Alcotest.(check string) "base" "b" base
   | None -> Alcotest.fail "split failed");
  Alcotest.(check bool) "root split" true (Path.split "/" = None)

let prefixes () =
  Alcotest.(check bool) "prefix" true (Path.is_prefix ~prefix:"/a/b" "/a/b/c");
  Alcotest.(check bool) "equal is prefix" true (Path.is_prefix ~prefix:"/a/b" "/a/b");
  Alcotest.(check bool) "component-wise" false (Path.is_prefix ~prefix:"/a/b" "/a/bc");
  Alcotest.(check bool) "root prefixes all" true (Path.is_prefix ~prefix:"/" "/x");
  Alcotest.(check (option string)) "strip" (Some "/c")
    (Path.strip_prefix ~prefix:"/a/b" "/a/b/c");
  Alcotest.(check (option string)) "strip equal" (Some "/")
    (Path.strip_prefix ~prefix:"/a/b" "/a/b");
  Alcotest.(check (option string)) "strip mismatch" None
    (Path.strip_prefix ~prefix:"/a/b" "/a/x/c")

let components_keep_dotdot () =
  Alcotest.(check (list string)) "dotdot kept" [ "a"; ".."; "b" ]
    (Path.components "/a/../b");
  Alcotest.(check (list string)) "dot dropped" [ "a"; "b" ]
    (Path.components "/a/./b")

let path_gen =
  QCheck.Gen.(
    let comp = oneofl [ "a"; "b"; "cc"; "."; ".."; "home"; "x1" ] in
    map
      (fun comps -> "/" ^ String.concat "/" comps)
      (list_size (int_range 0 6) comp))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize idempotent" ~count:300 (QCheck.make path_gen)
    (fun p -> String.equal (Path.normalize p) (Path.normalize (Path.normalize p)))

let prop_normalize_no_dots =
  QCheck.Test.make ~name:"normalized paths contain no . or .." ~count:300
    (QCheck.make path_gen) (fun p ->
      List.for_all
        (fun c -> not (String.equal c ".") && not (String.equal c ".."))
        (Path.components (Path.normalize p)))

let prop_join_absolute =
  QCheck.Test.make ~name:"join always absolute" ~count:300
    (QCheck.pair (QCheck.make path_gen) (QCheck.make path_gen))
    (fun (base, p) -> Path.is_absolute (Path.join base p))

let suite =
  [
    Alcotest.test_case "normalize" `Quick normalize_cases;
    Alcotest.test_case "join" `Quick join_cases;
    Alcotest.test_case "basename/dirname" `Quick basename_dirname;
    Alcotest.test_case "split" `Quick split_cases;
    Alcotest.test_case "prefixes" `Quick prefixes;
    Alcotest.test_case "components keep dotdot" `Quick components_keep_dotdot;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    QCheck_alcotest.to_alcotest prop_normalize_no_dots;
    QCheck_alcotest.to_alcotest prop_join_absolute;
  ]
