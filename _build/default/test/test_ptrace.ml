module Kernel = Idbox_kernel.Kernel
module Libc = Idbox_kernel.Libc
module Syscall = Idbox_kernel.Syscall
module Trace = Idbox_kernel.Trace
module Fd_table = Idbox_kernel.Fd_table
module Tracer = Idbox_ptrace.Tracer
module Iochannel = Idbox_ptrace.Iochannel
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let channel_stage_collect () =
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  let ch = ok "create" (Iochannel.create k ~supervisor:sup ()) in
  let off = Iochannel.stage ch "payload one" in
  Alcotest.(check string) "staged data readable" "payload one"
    (Iochannel.collect ch ~off ~len:11);
  (* Consecutive stages occupy disjoint ranges. *)
  let off2 = Iochannel.stage ch "second" in
  Alcotest.(check bool) "disjoint" true (off2 >= off + 11);
  Alcotest.(check string) "both intact" "payload one"
    (Iochannel.collect ch ~off ~len:11)

let channel_wraps_at_capacity () =
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  let ch = ok "create" (Iochannel.create k ~supervisor:sup ~size:100 ()) in
  let off1 = Iochannel.stage ch (String.make 60 'a') in
  Alcotest.(check int) "first at origin" 0 off1;
  (* 60 more does not fit after 60: wraps to 0. *)
  let off2 = Iochannel.stage ch (String.make 60 'b') in
  Alcotest.(check int) "wrapped" 0 off2;
  Alcotest.check_raises "oversized transfer"
    (Invalid_argument "Iochannel: transfer of 101 bytes exceeds channel size 100")
    (fun () -> ignore (Iochannel.stage ch (String.make 101 'c')))

let channel_attach_gives_tracee_fd () =
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  let ch = ok "create" (Iochannel.create k ~supervisor:sup ()) in
  let off = Iochannel.stage ch "via fd 3" in
  let seen = ref "" in
  let tracer =
    Tracer.make k
      ~on_entry:(fun ~pid:_ _ -> Trace.Pass)
      ~on_exit:(fun ~pid:_ _ _ -> Trace.Keep)
      ~on_event:(fun ev ->
        match ev with
        | Trace.Spawned { pid; _ } ->
          (match Kernel.process_view k pid with
           | Some view -> Iochannel.attach ch view
           | None -> ())
        | Trace.Exited _ -> ())
      ()
  in
  let pid =
    Kernel.spawn_main k ~uid:0 ~tracer
      ~main:(fun _ ->
        (* The tracee reads staged data through its injected channel fd
           — the coerced pread of Fig. 4. *)
        seen := Libc.check "pread" (Libc.pread Iochannel.channel_fd ~off ~len:8);
        0)
      ~args:[ "t" ] ()
  in
  Kernel.run k;
  Alcotest.(check (option int)) "ok" (Some 0) (Kernel.exit_code k pid);
  Alcotest.(check string) "tracee read the channel" "via fd 3" !seen

let tracer_charges_peek_poke () =
  let k = Kernel.create () in
  let tracer =
    Tracer.make k
      ~on_entry:(fun ~pid:_ _ -> Trace.Pass)
      ~on_exit:(fun ~pid:_ _ _ -> Trace.Keep)
      ()
  in
  let stats = Kernel.stats k in
  let w0 = stats.Kernel.peek_poke_words in
  let pid =
    Kernel.spawn_main k ~uid:0 ~tracer
      ~main:(fun _ ->
        ignore (Libc.stat "/tmp");
        0)
      ~args:[ "t" ] ()
  in
  Kernel.run k;
  ignore pid;
  (* stat's arguments were peeked and its 16-word result poked. *)
  Alcotest.(check bool) "words moved" true (stats.Kernel.peek_poke_words - w0 >= 17)

let deny_pokes_one_word () =
  let k = Kernel.create () in
  let tracer =
    Tracer.make k
      ~on_entry:(fun ~pid:_ req ->
        match req with
        | Syscall.Mkdir _ -> Trace.Deny Errno.EPERM
        | _ -> Trace.Pass)
      ~on_exit:(fun ~pid:_ _ _ -> Trace.Keep)
      ()
  in
  let result = ref None in
  let pid =
    Kernel.spawn_main k ~uid:0 ~tracer
      ~main:(fun _ ->
        result := Some (Libc.mkdir "/tmp/x");
        0)
      ~args:[ "t" ] ()
  in
  Kernel.run k;
  ignore pid;
  (match !result with
   | Some (Error Errno.EPERM) -> ()
   | _ -> Alcotest.fail "deny not injected")

let attach_detach_midstream () =
  let k = Kernel.create () in
  let trapped = ref 0 in
  let tracer =
    Tracer.make k
      ~on_entry:(fun ~pid:_ _ -> incr trapped; Trace.Pass)
      ~on_exit:(fun ~pid:_ _ _ -> Trace.Keep)
      ()
  in
  let pid =
    Kernel.spawn_main k ~uid:0
      ~main:(fun _ ->
        ignore (Libc.getpid ());
        (* Give the host a chance to attach between calls is not
           possible cooperatively; instead attach from the start and
           detach via the host after the run.  Here we just verify
           attach works on a live pid. *)
        ignore (Libc.getpid ());
        0)
      ~args:[ "t" ] ()
  in
  Tracer.attach k pid tracer;
  Kernel.run k;
  Alcotest.(check bool) "calls trapped" true (!trapped >= 2);
  (* Detach on a dead pid is harmless. *)
  Tracer.detach k pid

let suite =
  [
    Alcotest.test_case "channel stage/collect" `Quick channel_stage_collect;
    Alcotest.test_case "channel wraps" `Quick channel_wraps_at_capacity;
    Alcotest.test_case "channel tracee fd" `Quick channel_attach_gives_tracee_fd;
    Alcotest.test_case "peek/poke charged" `Quick tracer_charges_peek_poke;
    Alcotest.test_case "deny pokes one word" `Quick deny_pokes_one_word;
    Alcotest.test_case "attach/detach" `Quick attach_detach_midstream;
  ]
