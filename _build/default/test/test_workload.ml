module Microbench = Idbox_workload.Microbench
module Runner = Idbox_workload.Runner
module Apps = Idbox_workload.Apps
module Spec = Idbox_workload.Spec

(* Small iteration counts / scales: these tests check the *shape* of
   the results, which the deterministic simulation makes exact. *)

let fig5a_order_of_magnitude () =
  let rows = Microbench.fig5a ~iters:200 () in
  Alcotest.(check int) "seven calls" 7 (List.length rows);
  List.iter
    (fun (r : Microbench.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s slowed (x%.1f)" r.Microbench.mb_call r.Microbench.mb_slowdown)
        true
        (r.Microbench.mb_slowdown > 3.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s direct positive" r.Microbench.mb_call)
        true (r.Microbench.mb_direct_us > 0.))
    rows;
  (* Small metadata calls suffer the most; bulk I/O amortizes. *)
  let find name =
    List.find (fun r -> String.equal r.Microbench.mb_call name) rows
  in
  Alcotest.(check bool) "getpid worst-ish" true
    ((find "getpid").Microbench.mb_slowdown
     > (find "read 8 KB").Microbench.mb_slowdown);
  Alcotest.(check bool) "1-byte read worse than 8KB read" true
    ((find "read 1 byte").Microbench.mb_slowdown
     > (find "read 8 KB").Microbench.mb_slowdown)

let fig5a_deterministic () =
  let a = Microbench.fig5a ~iters:100 () in
  let b = Microbench.fig5a ~iters:100 () in
  List.iter2
    (fun (x : Microbench.row) (y : Microbench.row) ->
      Alcotest.(check (float 1e-9)) x.Microbench.mb_call x.Microbench.mb_boxed_us
        y.Microbench.mb_boxed_us)
    a b

let fig4_accounting () =
  let rows = Microbench.fig4 () in
  List.iter
    (fun (r : Microbench.trap_row) ->
      (* Every trapped call pays at least the entry+exit switches. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s context switches >= 4" r.Microbench.tr_call)
        true
        (r.Microbench.tr_context_switches >= 4);
      Alcotest.(check bool)
        (Printf.sprintf "%s peeked/poked" r.Microbench.tr_call)
        true
        (r.Microbench.tr_peek_poke_words > 0))
    rows;
  (* Only the bulk transfers touch the I/O channel. *)
  let channel name =
    (List.find (fun r -> String.equal r.Microbench.tr_call name) rows)
      .Microbench.tr_channel_bytes
  in
  Alcotest.(check int) "getpid no channel" 0 (channel "getpid");
  Alcotest.(check int) "1-byte read no channel" 0 (channel "read 1 byte");
  Alcotest.(check bool) "8KB read uses channel" true (channel "read 8 KB" >= 8192);
  Alcotest.(check bool) "8KB write uses channel" true (channel "write 8 KB" >= 8192)

let app_mix_sanity () =
  List.iter
    (fun spec ->
      let c = spec.Spec.w_counts ~scale:1.0 in
      Alcotest.(check bool)
        (spec.Spec.w_name ^ " has work")
        true
        (Spec.total_syscalls c > 0 && c.Spec.compute_ms > 0.);
      (* Scale 0.5 halves the call counts (within rounding). *)
      let h = spec.Spec.w_counts ~scale:0.5 in
      Alcotest.(check bool)
        (spec.Spec.w_name ^ " scales")
        true
        (abs ((Spec.total_syscalls c / 2) - Spec.total_syscalls h) <= 5))
    Apps.all

let fig5b_shape () =
  (* Tiny scale: the percentages are scale-invariant. *)
  let rows = Runner.fig5b ~scale:0.01 () in
  Alcotest.(check int) "six apps" 6 (List.length rows);
  let find name = List.find (fun c -> String.equal c.Runner.c_app name) rows in
  List.iter
    (fun (c : Runner.comparison) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s boxed slower (%.2f%%)" c.Runner.c_app c.Runner.c_overhead_pct)
        true
        (c.Runner.c_overhead_pct > 0.))
    rows;
  (* The paper's qualitative claims: science apps stay under ~10%, make
     blows past 25%, ibis is the cheapest, make the most expensive. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " under 10%") true
        ((find name).Runner.c_overhead_pct < 10.))
    [ "amanda"; "blast"; "cms"; "hf"; "ibis" ];
  Alcotest.(check bool) "make over 25%" true ((find "make").Runner.c_overhead_pct > 25.);
  let cheapest =
    List.fold_left
      (fun acc c ->
        if c.Runner.c_overhead_pct < acc.Runner.c_overhead_pct then c else acc)
      (List.hd rows) rows
  in
  Alcotest.(check string) "ibis cheapest" "ibis" cheapest.Runner.c_app;
  let dearest =
    List.fold_left
      (fun acc c ->
        if c.Runner.c_overhead_pct > acc.Runner.c_overhead_pct then c else acc)
      (List.hd rows) rows
  in
  Alcotest.(check string) "make dearest" "make" dearest.Runner.c_app

let fig6_kernel_box_cheaper () =
  let rows = Runner.fig6_ablation ~scale:0.01 ~apps:[ Apps.ibis; Apps.make_build ] () in
  List.iter
    (fun (app, boxed_pct, kboxed_pct) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: in-kernel (%.2f%%) < ptrace (%.2f%%)" app kboxed_pct
           boxed_pct)
        true
        (kboxed_pct < boxed_pct && kboxed_pct >= 0.))
    rows

let modes_preserve_results () =
  (* The same workload gives identical *behaviour* (exit code, syscall
     counts at the app level) in all three modes — only time differs. *)
  let spec = Apps.ibis in
  let d = Runner.run spec Runner.Direct ~scale:0.005 in
  let b = Runner.run spec Runner.Boxed ~scale:0.005 in
  let kb = Runner.run spec Runner.Kboxed ~scale:0.005 in
  Alcotest.(check int) "direct exit" 0 d.Runner.m_exit_code;
  Alcotest.(check int) "boxed exit" 0 b.Runner.m_exit_code;
  Alcotest.(check int) "kboxed exit" 0 kb.Runner.m_exit_code;
  Alcotest.(check int) "same syscalls boxed" d.Runner.m_syscalls b.Runner.m_syscalls;
  Alcotest.(check int) "same syscalls kboxed" d.Runner.m_syscalls kb.Runner.m_syscalls;
  Alcotest.(check int) "nothing trapped direct" 0 d.Runner.m_trapped;
  Alcotest.(check int) "everything trapped boxed" b.Runner.m_syscalls b.Runner.m_trapped;
  Alcotest.(check int) "nothing trapped kboxed" 0 kb.Runner.m_trapped

let make_spawns_children () =
  let m = Runner.run Apps.make_build Runner.Direct ~scale:0.01 in
  let c = Apps.make_build.Spec.w_counts ~scale:0.01 in
  (* Each child contributes its own calls on top of the top-level mix. *)
  Alcotest.(check bool) "children added calls" true
    (m.Runner.m_syscalls > Spec.total_syscalls c)

let suite =
  [
    Alcotest.test_case "fig5a order of magnitude" `Quick fig5a_order_of_magnitude;
    Alcotest.test_case "fig5a deterministic" `Quick fig5a_deterministic;
    Alcotest.test_case "fig4 accounting" `Quick fig4_accounting;
    Alcotest.test_case "app mix sanity" `Quick app_mix_sanity;
    Alcotest.test_case "fig5b shape" `Slow fig5b_shape;
    Alcotest.test_case "fig6 in-kernel cheaper" `Slow fig6_kernel_box_cheaper;
    Alcotest.test_case "modes preserve results" `Quick modes_preserve_results;
    Alcotest.test_case "make spawns children" `Quick make_spawns_children;
  ]
