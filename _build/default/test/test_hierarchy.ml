module Hierarchy = Idbox_identity.Hierarchy

let figure6_tree () =
  (* Build exactly the Figure 6 namespace. *)
  let ns = Hierarchy.create () in
  let root = Hierarchy.root ns in
  let dthain = Result.get_ok (Hierarchy.create_child root "dthain") in
  let httpd = Result.get_ok (Hierarchy.create_child dthain "httpd") in
  let grid = Result.get_ok (Hierarchy.create_child dthain "grid") in
  let _webapp = Result.get_ok (Hierarchy.create_child httpd "webapp") in
  let visitor = Result.get_ok (Hierarchy.create_child grid "visitor") in
  let freddy =
    Result.get_ok (Hierarchy.create_child grid "/O=UnivNowhere/CN=Freddy")
  in
  Alcotest.(check string) "full name" "root:dthain:grid:visitor"
    (Hierarchy.full_name visitor);
  Alcotest.(check string) "freddy" "root:dthain:grid:/O=UnivNowhere/CN=Freddy"
    (Hierarchy.full_name freddy);
  Alcotest.(check int) "size" 7 (Hierarchy.size ns)

let find_resolves_full_names () =
  let ns = Hierarchy.create () in
  let root = Hierarchy.root ns in
  let a = Result.get_ok (Hierarchy.create_child root "a") in
  let b = Result.get_ok (Hierarchy.create_child a "b") in
  let same label expected found =
    match found with
    | Some d -> Alcotest.(check bool) label true (d == expected)
    | None -> Alcotest.failf "%s: not found" label
  in
  same "find root" root (Hierarchy.find ns "root");
  same "find a:b" b (Hierarchy.find ns "root:a:b");
  Alcotest.(check bool) "missing" true (Hierarchy.find ns "root:a:zzz" = None);
  Alcotest.(check bool) "wrong root" true (Hierarchy.find ns "boot:a" = None)

let name_validation () =
  let ns = Hierarchy.create () in
  let root = Hierarchy.root ns in
  (match Hierarchy.create_child root "" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty name accepted");
  (match Hierarchy.create_child root "a:b" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "colon accepted");
  ignore (Result.get_ok (Hierarchy.create_child root "dup"));
  (match Hierarchy.create_child root "dup" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate accepted")

let management_relationships () =
  (* "A domain may manage any descendant": the in-kernel analogue of the
     supervising user being root w.r.t. the box. *)
  let ns = Hierarchy.create () in
  let root = Hierarchy.root ns in
  let dthain = Result.get_ok (Hierarchy.create_child root "dthain") in
  let grid = Result.get_ok (Hierarchy.create_child dthain "grid") in
  let visitor = Result.get_ok (Hierarchy.create_child grid "visitor") in
  let other = Result.get_ok (Hierarchy.create_child root "other") in
  Alcotest.(check bool) "ancestor manages" true
    (Hierarchy.can_manage ~actor:dthain ~subject:visitor);
  Alcotest.(check bool) "self manages" true
    (Hierarchy.can_manage ~actor:visitor ~subject:visitor);
  Alcotest.(check bool) "child cannot manage parent" false
    (Hierarchy.can_manage ~actor:visitor ~subject:dthain);
  Alcotest.(check bool) "sibling cannot manage" false
    (Hierarchy.can_manage ~actor:other ~subject:visitor);
  Alcotest.(check bool) "root manages all" true
    (Hierarchy.can_manage ~actor:root ~subject:visitor)

let anonymous_children_fresh () =
  let ns = Hierarchy.create () in
  let root = Hierarchy.root ns in
  let a1 = Hierarchy.create_anonymous root in
  let a2 = Hierarchy.create_anonymous root in
  Alcotest.(check bool) "distinct names" false
    (String.equal (Hierarchy.name a1) (Hierarchy.name a2))

let delete_subtree () =
  let ns = Hierarchy.create () in
  let root = Hierarchy.root ns in
  let a = Result.get_ok (Hierarchy.create_child root "a") in
  let b = Result.get_ok (Hierarchy.create_child a "b") in
  ignore (Result.get_ok (Hierarchy.create_child b "c"));
  Alcotest.(check int) "before" 4 (Hierarchy.size ns);
  (match Hierarchy.delete a with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "after" 1 (Hierarchy.size ns);
  Alcotest.(check bool) "gone" true (Hierarchy.find ns "root:a:b" = None);
  (* The freed name can be reused. *)
  (match Hierarchy.create_child root "a" with
   | Ok _ -> ()
   | Error m -> Alcotest.fail m);
  (* Root cannot be deleted; double delete is an error. *)
  (match Hierarchy.delete root with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "deleted root");
  (match Hierarchy.delete a with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "double delete")

let prop_size_after_n_children =
  QCheck.Test.make ~name:"size counts live domains" ~count:50
    QCheck.(int_range 0 20)
    (fun n ->
      let ns = Hierarchy.create () in
      let root = Hierarchy.root ns in
      for i = 1 to n do
        ignore (Result.get_ok (Hierarchy.create_child root (Printf.sprintf "d%d" i)))
      done;
      Hierarchy.size ns = n + 1)

let suite =
  [
    Alcotest.test_case "figure 6 tree" `Quick figure6_tree;
    Alcotest.test_case "find" `Quick find_resolves_full_names;
    Alcotest.test_case "name validation" `Quick name_validation;
    Alcotest.test_case "management relationships" `Quick management_relationships;
    Alcotest.test_case "anonymous children" `Quick anonymous_children_fresh;
    Alcotest.test_case "delete subtree" `Quick delete_subtree;
    QCheck_alcotest.to_alcotest prop_size_after_n_children;
  ]
