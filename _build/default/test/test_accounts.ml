module Probe = Idbox_accounts.Probe
module Scheme = Idbox_accounts.Scheme
module Account = Idbox_kernel.Account
module Principal = Idbox_identity.Principal

(* The headline test: every derived Figure 1 row equals the paper's. *)
let matrix_matches_paper () =
  List.iter
    (fun scheme ->
      let derived = Probe.evaluate scheme in
      match Probe.paper_row derived.Probe.r_scheme with
      | None -> Alcotest.failf "no paper row for %s" derived.Probe.r_scheme
      | Some expected ->
        let cell label got want =
          Alcotest.(check string)
            (Printf.sprintf "%s / %s" derived.Probe.r_scheme label)
            want got
        in
        cell "privilege"
          (if derived.Probe.r_requires_privilege then "root" else "-")
          (if expected.Probe.r_requires_privilege then "root" else "-");
        cell "protects owner"
          (Probe.verdict_to_string derived.Probe.r_protects_owner)
          (Probe.verdict_to_string expected.Probe.r_protects_owner);
        cell "privacy"
          (Probe.verdict_to_string derived.Probe.r_privacy)
          (Probe.verdict_to_string expected.Probe.r_privacy);
        cell "sharing"
          (Probe.verdict_to_string derived.Probe.r_sharing)
          (Probe.verdict_to_string expected.Probe.r_sharing);
        cell "return"
          (Probe.verdict_to_string derived.Probe.r_return)
          (Probe.verdict_to_string expected.Probe.r_return);
        cell "admin burden" derived.Probe.r_admin_burden expected.Probe.r_admin_burden)
    (Probe.all_schemes ())

let seven_schemes_in_paper_order () =
  Alcotest.(check (list string)) "order"
    [ "single"; "untrusted"; "private"; "group"; "anonymous"; "pool"; "identity box" ]
    (List.map (fun s -> s.Scheme.sc_name) (Probe.all_schemes ()))

let org_extraction () =
  let org p = Scheme.org_of (Principal.of_string p) in
  Alcotest.(check string) "dn" "UnivNowhere" (org "globus:/O=UnivNowhere/CN=Fred");
  Alcotest.(check string) "kerberos" "NOWHERE.EDU" (org "kerberos:fred@NOWHERE.EDU");
  Alcotest.(check string) "plain" "Freddy" (org "Freddy")

let require_root_guard () =
  (match Scheme.require_root ~operator_uid:0 ~what:"x" with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "root denied");
  (match Scheme.require_root ~operator_uid:1000 ~what:"x" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "non-root allowed")

let sanitize_names () =
  Alcotest.(check string) "slashes" "_O_UnivNowhere_CN_Fred"
    (Scheme.sanitize "/O=UnivNowhere/CN=Fred");
  Alcotest.(check bool) "bounded" true
    (String.length (Scheme.sanitize (String.make 200 'a')) <= 48)

let pool_recycling_hazard () =
  (* The classic pool hazard: after V1 logs out, V2 may inherit the
     recycled account and with it V1's leftover files. *)
  let kernel = Idbox_kernel.Kernel.create () in
  let state =
    match Idbox_accounts.Account_pool.scheme.Scheme.sc_setup kernel ~operator_uid:0 with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let v1 =
    match state.Scheme.st_admit (Principal.of_string "unix:v1") with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let wrote =
    v1.Scheme.s_run
      (fun _ ->
        match
          Idbox_kernel.Libc.write_file
            (v1.Scheme.s_workdir ^ "/leftover") ~contents:"oops"
        with
        | Ok () -> 0
        | Error _ -> 1)
      [ "w" ]
  in
  Alcotest.(check int) "v1 wrote" 0 wrote;
  state.Scheme.st_logout v1;
  (* Drain the queue until the recycled account comes around. *)
  let rec admit_until_uid target n =
    if n = 0 then Alcotest.fail "recycled account never reappeared"
    else
      match state.Scheme.st_admit (Principal.of_string "unix:v2") with
      | Ok s when s.Scheme.s_uid = target -> s
      | Ok _ -> admit_until_uid target (n - 1)
      | Error m -> Alcotest.fail m
  in
  let v2 = admit_until_uid v1.Scheme.s_uid 20 in
  let read =
    v2.Scheme.s_run
      (fun _ ->
        match Idbox_kernel.Libc.read_file (v1.Scheme.s_workdir ^ "/leftover") with
        | Ok "oops" -> 0
        | Ok _ | Error _ -> 1)
      [ "r" ]
  in
  Alcotest.(check int) "v2 inherited v1's file (the hazard)" 0 read

let anonymous_leaves_nothing () =
  let kernel = Idbox_kernel.Kernel.create () in
  let state =
    match
      Idbox_accounts.Anonymous_accounts.scheme.Scheme.sc_setup kernel
        ~operator_uid:0
    with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let v =
    match state.Scheme.st_admit (Principal.of_string "unix:visitor") with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  ignore
    (v.Scheme.s_run
       (fun _ ->
         ignore (Idbox_kernel.Libc.write_file (v.Scheme.s_workdir ^ "/f") ~contents:"x");
         0)
       [ "w" ]);
  let accounts_before = Account.count (Idbox_kernel.Kernel.accounts kernel) in
  state.Scheme.st_logout v;
  Alcotest.(check int) "account deleted" (accounts_before - 1)
    (Account.count (Idbox_kernel.Kernel.accounts kernel));
  Alcotest.(check bool) "home gone" false
    (Idbox_vfs.Fs.exists (Idbox_kernel.Kernel.fs kernel) ~uid:0 v.Scheme.s_workdir)

let render_table_shape () =
  let rows = [ Probe.evaluate Idbox_accounts.Single_account.scheme ] in
  let text = Probe.render_table rows in
  Alcotest.(check bool) "has header" true (String.length text > 40);
  Alcotest.(check bool) "mentions scheme" true
    (List.exists
       (fun line -> String.length line > 0 && String.sub line 0 6 = "single")
       (String.split_on_char '\n' text))

let suite =
  [
    Alcotest.test_case "matrix matches paper" `Slow matrix_matches_paper;
    Alcotest.test_case "schemes in order" `Quick seven_schemes_in_paper_order;
    Alcotest.test_case "org extraction" `Quick org_extraction;
    Alcotest.test_case "require_root guard" `Quick require_root_guard;
    Alcotest.test_case "sanitize" `Quick sanitize_names;
    Alcotest.test_case "pool recycling hazard" `Quick pool_recycling_hazard;
    Alcotest.test_case "anonymous leaves nothing" `Quick anonymous_leaves_nothing;
    Alcotest.test_case "render table" `Quick render_table_shape;
  ]
