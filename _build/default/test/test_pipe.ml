module Kernel = Idbox_kernel.Kernel
module Libc = Idbox_kernel.Libc
module Box = Idbox.Box
module Principal = Idbox_identity.Principal
module Errno = Idbox_vfs.Errno

let run_main ?(uid = 0) kernel main =
  let pid = Kernel.spawn_main kernel ~uid ~cwd:"/" ~main ~args:[ "t" ] () in
  Kernel.run kernel;
  Kernel.exit_code kernel pid

let same_process_roundtrip () =
  let k = Kernel.create () in
  let code =
    run_main k (fun _ ->
        let rd, wr = Libc.check "pipe" (Libc.pipe ()) in
        (match Libc.write wr "through the pipe" with
         | Ok 16 -> ()
         | Ok _ | Error _ -> Libc.exit 1);
        (match Libc.read rd ~len:7 with
         | Ok "through" -> ()
         | Ok _ | Error _ -> Libc.exit 2);
        (match Libc.read rd ~len:100 with
         | Ok " the pipe" -> ()
         | Ok _ | Error _ -> Libc.exit 3);
        (* Close the writer: EOF, not a hang. *)
        (match Libc.close wr with Ok () -> () | Error _ -> Libc.exit 4);
        (match Libc.read rd ~len:10 with
         | Ok "" -> ()
         | Ok _ | Error _ -> Libc.exit 5);
        (* Seeking a pipe is illegal. *)
        (match Libc.lseek rd ~off:0 ~whence:Idbox_kernel.Syscall.Seek_set with
         | Error Errno.ESPIPE -> ()
         | Ok _ | Error _ -> Libc.exit 6);
        0)
  in
  Alcotest.(check (option int)) "roundtrip" (Some 0) code

let wrong_direction_rejected () =
  let k = Kernel.create () in
  let code =
    run_main k (fun _ ->
        let rd, wr = Libc.check "pipe" (Libc.pipe ()) in
        (match Libc.write rd "x" with
         | Error Errno.EBADF -> ()
         | Ok _ | Error _ -> Libc.exit 1);
        (match Libc.read wr ~len:1 with
         | Error Errno.EBADF -> ()
         | Ok _ | Error _ -> Libc.exit 2);
        0)
  in
  Alcotest.(check (option int)) "directions" (Some 0) code

let epipe_when_no_readers () =
  let k = Kernel.create () in
  let code =
    run_main k (fun _ ->
        let rd, wr = Libc.check "pipe" (Libc.pipe ()) in
        ignore (Libc.close rd);
        (match Libc.write wr "scream into the void" with
         | Error Errno.EPIPE -> 0
         | Ok _ -> 1
         | Error _ -> 2))
  in
  Alcotest.(check (option int)) "EPIPE" (Some 0) code

let blocking_read_woken_by_child () =
  (* The parent blocks on an empty pipe; its child (which inherited the
     write end) computes, writes, and exits — the blocked read completes
     with the data.  This is the paper's "blocking system calls place the
     calling process into a wait state" in action. *)
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () ->
      Idbox_kernel.Program.register "producer" (fun args ->
          let wr = int_of_string (List.nth args 1) in
          Libc.compute 5_000_000L;
          (match Libc.write wr "produced!" with Ok _ -> () | Error _ -> Libc.exit 9);
          0);
      (match
         Idbox_vfs.Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/bin/producer"
           (Idbox_kernel.Program.marker "producer")
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      let code =
        run_main k (fun _ ->
            let rd, wr = Libc.check "pipe" (Libc.pipe ()) in
            let child =
              Libc.check "spawn"
                (Libc.spawn "/bin/producer" ~args:[ "producer"; string_of_int wr ])
            in
            (* Parent closes its own write end so EOF can ever arrive. *)
            ignore (Libc.close wr);
            (* This read BLOCKS: the child has not run yet. *)
            (match Libc.read rd ~len:64 with
             | Ok "produced!" -> ()
             | Ok _ | Error _ -> Libc.exit 1);
            (* Child exited; its write end dropped: EOF. *)
            (match Libc.read rd ~len:64 with
             | Ok "" -> ()
             | Ok _ | Error _ -> Libc.exit 2);
            (match Libc.waitpid child with
             | Ok (_, 0) -> 0
             | Ok _ | Error _ -> 3))
      in
      Alcotest.(check (option int)) "woken with data" (Some 0) code)

let eof_on_child_exit_without_write () =
  (* The blocked reader is woken by the last writer *exiting*, not
     writing: exit must release pipe ends. *)
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () ->
      Idbox_kernel.Program.register "silent" (fun _ ->
          Libc.compute 1_000_000L;
          0);
      (match
         Idbox_vfs.Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/bin/silent"
           (Idbox_kernel.Program.marker "silent")
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Errno.to_string e));
      let code =
        run_main k (fun _ ->
            let rd, wr = Libc.check "pipe" (Libc.pipe ()) in
            let _child = Libc.check "spawn" (Libc.spawn "/bin/silent" ~args:[ "s" ]) in
            ignore (Libc.close wr);
            match Libc.read rd ~len:8 with
            | Ok "" -> 0
            | Ok _ -> 1
            | Error _ -> 2)
      in
      Alcotest.(check (option int)) "EOF on exit" (Some 0) code)

let pipes_inside_identity_box () =
  (* Producer/consumer across a boxed process tree: IPC works inside the
     box, with every call still trapped. *)
  let k = Kernel.create () in
  let sup = match Kernel.add_user k "dthain" with Ok e -> e | Error m -> Alcotest.fail m in
  let box =
    match
      Box.create k ~supervisor_uid:sup.Idbox_kernel.Account.uid
        ~identity:(Principal.of_string "Freddy") ()
    with
    | Ok b -> b
    | Error e -> Alcotest.fail (Errno.message e)
  in
  Kernel.with_fresh_programs (fun () ->
      Idbox_kernel.Program.register "boxed-producer" (fun args ->
          let wr = int_of_string (List.nth args 1) in
          (* IPC carries the identity's work. *)
          (match Libc.write wr ("from " ^ Libc.get_user_name ()) with
           | Ok _ -> 0
           | Error _ -> 9));
      let home = Box.home box in
      let code =
        let pid =
          Box.spawn_main box
            ~main:(fun _ ->
              (match
                 Libc.write_file (home ^ "/producer.exe")
                   ~contents:(Idbox_kernel.Program.marker "boxed-producer")
               with
               | Ok () -> ()
               | Error _ -> Libc.exit 1);
              (match Libc.chmod ~mode:0o755 (home ^ "/producer.exe") with
               | Ok () -> ()
               | Error _ -> Libc.exit 2);
              let rd, wr = Libc.check "pipe" (Libc.pipe ()) in
              let child =
                match
                  Libc.spawn (home ^ "/producer.exe")
                    ~args:[ "producer"; string_of_int wr ]
                with
                | Ok pid -> pid
                | Error _ -> Libc.exit 3
              in
              ignore (Libc.close wr);
              (match Libc.read rd ~len:64 with
               | Ok "from Freddy" -> ()
               | Ok _ | Error _ -> Libc.exit 4);
              (match Libc.waitpid child with
               | Ok (_, 0) -> 0
               | Ok _ | Error _ -> 5))
            ~args:[ "parent" ]
        in
        Kernel.run k;
        Kernel.exit_code k pid
      in
      Alcotest.(check (option int)) "boxed pipe IPC" (Some 0) code)

let killed_blocked_reader_cleanly_dies () =
  let k = Kernel.create () in
  let reader_pid = ref (-1) in
  let reader =
    Kernel.spawn_main k ~uid:0 ~cwd:"/"
      ~main:(fun _ ->
        reader_pid := Libc.getpid ();
        let rd, _wr = Libc.check "pipe" (Libc.pipe ()) in
        (* Blocks forever: we hold our own write end but never write. *)
        ignore (Libc.read rd ~len:1);
        0)
      ~args:[ "r" ] ()
  in
  let _killer =
    Kernel.spawn_main k ~uid:0 ~cwd:"/"
      ~main:(fun _ ->
        (* Runs after the reader blocked (FIFO scheduling). *)
        (match Libc.kill ~pid:reader ~signal:9 with
         | Ok () -> 0
         | Error _ -> 1))
      ~args:[ "k" ] ()
  in
  Kernel.run k;
  Alcotest.(check (option int)) "killed while blocked" (Some 137)
    (Kernel.exit_code k reader)

let suite =
  [
    Alcotest.test_case "same-process roundtrip" `Quick same_process_roundtrip;
    Alcotest.test_case "wrong direction" `Quick wrong_direction_rejected;
    Alcotest.test_case "EPIPE" `Quick epipe_when_no_readers;
    Alcotest.test_case "blocking read woken by child" `Quick blocking_read_woken_by_child;
    Alcotest.test_case "EOF on silent child exit" `Quick eof_on_child_exit_without_write;
    Alcotest.test_case "pipes inside identity box" `Quick pipes_inside_identity_box;
    Alcotest.test_case "killed blocked reader" `Quick killed_blocked_reader_cleanly_dies;
  ]
