(* Paper §6: the security argument, tested.  One test per Garfinkel
   pitfall plus the containment properties the identity box claims. *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Box = Idbox.Box
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let fred = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

(* A host with a supervisor, a protected area the visitor cannot touch,
   and a shared area where Fred holds rwlx (no admin). *)
let setup () =
  let k = Kernel.create () in
  let sup =
    match Account.add (Kernel.accounts k) "dthain" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Kernel.refresh_passwd k;
  let fs = Kernel.fs k in
  ok "p1" (Fs.mkdir_p fs ~uid:0 "/protected");
  ok "p2" (Fs.chown fs ~uid:0 ~owner:sup.Account.uid "/protected");
  ok "p3" (Fs.chmod fs ~uid:0 ~mode:0o700 "/protected");
  ok "p4"
    (Fs.write_file fs ~uid:sup.Account.uid ~mode:0o600 "/protected/secret.txt"
       "classified");
  ok "s1" (Fs.mkdir_p fs ~uid:0 "/shared");
  ok "s2" (Fs.chown fs ~uid:0 ~owner:sup.Account.uid "/shared");
  let box =
    match Box.create k ~supervisor_uid:sup.Account.uid ~identity:fred () with
    | Ok box -> box
    | Error e -> Alcotest.failf "box: %s" (Errno.to_string e)
  in
  ok "acl"
    (Box.set_acl box ~dir:"/shared"
       (Acl.of_entries
          [ Entry.make ~pattern:"globus:/O=UnivNowhere/*" (Rights.of_string_exn "rwlxd") ]));
  (k, sup.Account.uid, box)

let run_in box main =
  let pid = Box.spawn_main box ~main ~args:[ "attack" ] in
  Kernel.run (Box.kernel box);
  match Kernel.exit_code (Box.kernel box) pid with
  | Some code -> code
  | None -> Alcotest.fail "attacker never exited"

(* Pitfall #2, symlink flavour: planting a symlink in a permissive
   directory must not grant access to a protected target — the box
   checks the TARGET's directory. *)
let symlink_does_not_launder_access () =
  let k, _sup, box = setup () in
  ignore k;
  let code =
    run_in box (fun _ ->
        (* Fred may create the link itself (w in /shared)... *)
        (match Libc.symlink ~target:"/protected/secret.txt" "/shared/alias" with
         | Ok () -> ()
         | Error _ -> Libc.exit 1);
        (* ...but opening through it is judged at the target. *)
        (match Libc.read_file "/shared/alias" with
         | Error Errno.EACCES -> 0
         | Ok _ -> 42
         | Error _ -> 2))
  in
  Alcotest.(check int) "symlink laundering blocked" 0 code

(* Pitfall #2, ancestor flavour (found by the fuzzer in test_fuzz.ml):
   a symlink planted as a *parent directory* must not smuggle
   operations into a protected tree — the lexical parent's ACL is the
   visitor's own home, but the object lives elsewhere. *)
let symlinked_parent_does_not_launder_access () =
  let k, _sup, box = setup () in
  let home = Idbox.Box.home box in
  let code =
    run_in box (fun _ ->
        (* Plant ~/sub -> /protected, then try to create through it. *)
        (match Libc.symlink ~target:"/protected" (home ^ "/sub") with
         | Ok () -> ()
         | Error _ -> Libc.exit 1);
        (match Libc.mkdir (home ^ "/sub/evil") with
         | Error Errno.EACCES -> ()
         | Ok () -> Libc.exit 42
         | Error _ -> Libc.exit 2);
        (match Libc.write_file (home ^ "/sub/evil.txt") ~contents:"x" with
         | Error Errno.EACCES -> ()
         | Ok () -> Libc.exit 43
         | Error _ -> Libc.exit 3);
        (* Reading through it is judged at the target too. *)
        (match Libc.read_file (home ^ "/sub/secret.txt") with
         | Error Errno.EACCES -> 0
         | Ok _ -> 44
         | Error _ -> 4))
  in
  Alcotest.(check int) "parent symlink laundering blocked" 0 code;
  Alcotest.(check bool) "nothing created in /protected" false
    (Fs.exists (Kernel.fs k) ~uid:0 "/protected/evil")

(* Pitfall #2, hard-link flavour: a hard link cannot be traced back to
   its origin, so creating one to an unreadable target is refused
   outright. *)
let hard_link_to_protected_refused () =
  let k, sup, box = setup () in
  let code =
    run_in box (fun _ ->
        match Libc.link ~target:"/protected/secret.txt" "/shared/leak" with
        | Error Errno.EACCES -> 0
        | Ok () -> 42
        | Error _ -> 2)
  in
  Alcotest.(check int) "hard link refused" 0 code;
  (* And to a readable target it is allowed — containment is by access
     control, not by outlawing the interface (pitfall #3). *)
  let fs = Kernel.fs k in
  ok "seed" (Fs.write_file fs ~uid:sup "/shared/public.txt" "fine");
  let code =
    run_in box (fun _ ->
        match Libc.link ~target:"/shared/public.txt" "/shared/mylink" with
        | Ok () -> 0
        | Error _ -> 1)
  in
  Alcotest.(check int) "readable hard link allowed" 0 code

(* Pitfall #3: no interface subsetting — the whole call surface works
   inside a box, against permitted objects. *)
let full_interface_available () =
  let _, _, box = setup () in
  let code =
    run_in box (fun _ ->
        let base = "/shared" in
        ignore (Libc.check "mkdir" (Libc.mkdir (base ^ "/d")));
        ignore (Libc.check "write" (Libc.write_file (base ^ "/d/f") ~contents:"1"));
        ignore (Libc.check "stat" (Libc.stat (base ^ "/d/f")));
        ignore (Libc.check "lstat" (Libc.lstat (base ^ "/d/f")));
        ignore (Libc.check "readdir" (Libc.readdir (base ^ "/d")));
        ignore (Libc.check "rename" (Libc.rename ~src:(base ^ "/d/f") ~dst:(base ^ "/d/g")));
        ignore (Libc.check "symlink" (Libc.symlink ~target:"g" (base ^ "/d/ln")));
        ignore (Libc.check "readlink" (Libc.readlink (base ^ "/d/ln")));
        ignore (Libc.check "read" (Libc.read_file (base ^ "/d/ln")));
        ignore (Libc.check "truncate" (Libc.truncate ~len:0 (base ^ "/d/g")));
        ignore (Libc.check "unlink" (Libc.unlink (base ^ "/d/ln")));
        ignore (Libc.check "unlink2" (Libc.unlink (base ^ "/d/g")));
        ignore (Libc.check "rmdir" (Libc.rmdir (base ^ "/d")));
        ignore (Libc.getpid ());
        ignore (Libc.getuid ());
        ignore (Libc.get_user_name ());
        ignore (Libc.getcwd ());
        Libc.setenv "X" "y";
        (match Libc.getenv "X" with Some "y" -> () | _ -> Libc.exit 9);
        0)
  in
  Alcotest.(check int) "full surface" 0 code

(* Pitfall #5: any return value can be injected, including EACCES — and
   a denied call must have no side effect. *)
let denied_calls_have_no_side_effects () =
  let k, _, box = setup () in
  let code =
    run_in box (fun _ ->
        match Libc.write_file "/protected/intruder" ~contents:"boo" with
        | Error Errno.EACCES -> 0
        | Ok () -> 42
        | Error _ -> 2)
  in
  Alcotest.(check int) "EACCES injected" 0 code;
  Alcotest.(check bool) "nothing created" false
    (Fs.exists (Kernel.fs k) ~uid:0 "/protected/intruder")

(* The ACL files themselves are not reachable through the trapped
   interface: only getacl/setacl may touch them. *)
let acl_files_protected () =
  let _, _, box = setup () in
  let code =
    run_in box (fun _ ->
        (match Libc.read_file "/shared/.__acl" with
         | Error Errno.EACCES -> ()
         | Ok _ | Error _ -> Libc.exit 1);
        (match Libc.write_file "/shared/.__acl" ~contents:"unix:eve rwlxad" with
         | Error Errno.EACCES -> ()
         | Ok () | Error _ -> Libc.exit 2);
        (match Libc.unlink "/shared/.__acl" with
         | Error Errno.EACCES -> ()
         | Ok () | Error _ -> Libc.exit 3);
        (match Libc.rename ~src:"/shared/.__acl" ~dst:"/shared/stolen" with
         | Error Errno.EACCES -> ()
         | Ok () | Error _ -> Libc.exit 4);
        (match Libc.link ~target:"/shared/.__acl" "/shared/laundered" with
         | Error Errno.EACCES -> ()
         | Ok () | Error _ -> Libc.exit 5);
        0)
  in
  Alcotest.(check int) "acl file unreachable" 0 code

(* Without the a right, setacl is denied: Fred cannot grant himself or
   anyone else more rights in /shared. *)
let privilege_escalation_via_setacl_blocked () =
  let _, _, box = setup () in
  let code =
    run_in box (fun _ ->
        match Libc.setacl ~path:"/shared" ~entry:"globus:/O=UnivNowhere/* rwlxad" with
        | Error Errno.EACCES -> 0
        | Ok () -> 42
        | Error _ -> 2)
  in
  Alcotest.(check int) "setacl denied" 0 code

(* Escape via relative paths: climbing out of the cwd with .. is still
   judged by the governing directory's ACL. *)
let dotdot_escape_blocked () =
  let _, _, box = setup () in
  let code =
    run_in box (fun _ ->
        ignore (Libc.check "chdir" (Libc.chdir "/shared"));
        match Libc.read_file "../protected/secret.txt" with
        | Error Errno.EACCES -> 0
        | Ok _ -> 42
        | Error _ -> 2)
  in
  Alcotest.(check int) "dotdot blocked" 0 code

(* The passwd redirection is read-only: the visitor cannot forge
   entries in the private copy the box serves. *)
let passwd_copy_read_only () =
  let _, _, box = setup () in
  let code =
    run_in box (fun _ ->
        match Libc.write_file "/etc/passwd" ~contents:"root::0:0::/:/bin/sh" with
        | Error Errno.EACCES -> 0
        | Ok () -> 42
        | Error _ -> 2)
  in
  Alcotest.(check int) "passwd immutable" 0 code

(* chown inside a box is always denied: ownership is the supervisor's
   business. *)
let chown_denied () =
  let _, _, box = setup () in
  let code =
    run_in box (fun _ ->
        ignore (Libc.check "seed" (Libc.write_file "/shared/mine" ~contents:"x"));
        match Libc.chown ~owner:0 "/shared/mine" with
        | Error Errno.EPERM -> 0
        | Ok () -> 42
        | Error _ -> 2)
  in
  Alcotest.(check int) "chown denied" 0 code

(* Pitfall #1 (state replication): after processes die, the box's
   tables are empty — no stale supervisor state survives its tracees. *)
let no_stale_state_after_exit () =
  let k, _, box = setup () in
  let pids =
    List.init 5 (fun i ->
        Box.spawn_main box
          ~main:(fun _ ->
            ignore (Libc.write_file (Printf.sprintf "f%d" i) ~contents:"x");
            0)
          ~args:[ "p" ])
  in
  Kernel.run k;
  List.iter
    (fun pid ->
      Alcotest.(check bool) "not a member" false (Box.member box pid);
      Alcotest.(check (option int)) "exited cleanly" (Some 0) (Kernel.exit_code k pid))
    pids

(* An exiting process's open writes are flushed, not lost (the
   supervisor owns the real descriptors). *)
let exit_flushes_descriptors () =
  let k, _, box = setup () in
  let home = Box.home box in
  let pid =
    Box.spawn_main box
      ~main:(fun _ ->
        let fd =
          Libc.check "open" (Libc.open_file ~flags:Fs.wronly_create (home ^ "/left_open"))
        in
        ignore (Libc.check "write" (Libc.write fd "persisted"));
        (* exit without close *)
        Libc.exit 0)
      ~args:[ "leaker" ]
  in
  Kernel.run k;
  ignore pid;
  match Fs.read_file (Kernel.fs k) ~uid:0 (home ^ "/left_open") with
  | Ok "persisted" -> ()
  | Ok other -> Alcotest.failf "got %S" other
  | Error e -> Alcotest.fail (Errno.to_string e)

let suite =
  [
    Alcotest.test_case "symlink laundering blocked" `Quick symlink_does_not_launder_access;
    Alcotest.test_case "parent-symlink laundering blocked" `Quick
      symlinked_parent_does_not_launder_access;
    Alcotest.test_case "hard link to protected refused" `Quick hard_link_to_protected_refused;
    Alcotest.test_case "full interface available" `Quick full_interface_available;
    Alcotest.test_case "denied calls side-effect free" `Quick denied_calls_have_no_side_effects;
    Alcotest.test_case "acl files protected" `Quick acl_files_protected;
    Alcotest.test_case "setacl escalation blocked" `Quick privilege_escalation_via_setacl_blocked;
    Alcotest.test_case "dotdot escape blocked" `Quick dotdot_escape_blocked;
    Alcotest.test_case "passwd copy read-only" `Quick passwd_copy_read_only;
    Alcotest.test_case "chown denied" `Quick chown_denied;
    Alcotest.test_case "no stale state after exit" `Quick no_stale_state_after_exit;
    Alcotest.test_case "exit flushes descriptors" `Quick exit_flushes_descriptors;
  ]
