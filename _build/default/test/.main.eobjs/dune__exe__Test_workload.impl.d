test/test_workload.ml: Alcotest Idbox_workload List Printf String
