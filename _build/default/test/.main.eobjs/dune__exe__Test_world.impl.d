test/test_world.ml: Alcotest Idbox Idbox_acl Idbox_apps Idbox_auth Idbox_chirp Idbox_identity Idbox_kernel Idbox_net Idbox_vfs List Printf String
