test/test_net.ml: Alcotest Idbox_kernel Idbox_net Idbox_vfs Int64 String
