test/test_vfs_props.ml: Hashtbl Idbox_vfs List Option QCheck QCheck_alcotest String
