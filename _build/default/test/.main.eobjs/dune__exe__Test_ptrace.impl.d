test/test_ptrace.ml: Alcotest Idbox_kernel Idbox_ptrace Idbox_vfs String
