test/test_accounts.ml: Alcotest Idbox_accounts Idbox_identity Idbox_kernel Idbox_vfs List Printf String
