test/test_path.ml: Alcotest Idbox_vfs List QCheck QCheck_alcotest String
