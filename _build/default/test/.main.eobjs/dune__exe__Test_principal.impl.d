test/test_principal.ml: Alcotest Idbox_identity List QCheck QCheck_alcotest String
