test/test_auth.ml: Alcotest Idbox_auth Idbox_identity Int64 String
