test/test_audit.ml: Alcotest Idbox Idbox_identity Idbox_kernel Idbox_vfs Int64 List String
