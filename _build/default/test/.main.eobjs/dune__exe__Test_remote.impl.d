test/test_remote.ml: Alcotest Idbox Idbox_vfs
