test/test_protocol.ml: Alcotest Idbox_auth Idbox_chirp Idbox_identity Idbox_vfs List QCheck QCheck_alcotest String
