test/test_pipe.ml: Alcotest Idbox Idbox_identity Idbox_kernel Idbox_vfs List
