test/test_acl.ml: Alcotest Idbox_acl Idbox_identity List QCheck QCheck_alcotest Result
