test/test_vfs.ml: Alcotest Bytes Idbox_vfs List QCheck QCheck_alcotest Result String
