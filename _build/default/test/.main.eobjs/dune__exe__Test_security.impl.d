test/test_security.ml: Alcotest Idbox Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs List Printf
