test/test_kernel_units.ml: Alcotest Format Idbox_kernel Idbox_vfs Int64 List String
