test/main.mli:
