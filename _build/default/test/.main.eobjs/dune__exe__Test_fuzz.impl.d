test/test_fuzz.ml: Digest Idbox Idbox_identity Idbox_kernel Idbox_vfs List Option QCheck QCheck_alcotest String
