test/test_subject.ml: Alcotest Idbox_identity List QCheck QCheck_alcotest
