test/test_chirp.ml: Alcotest Char Digest Idbox Idbox_acl Idbox_auth Idbox_chirp Idbox_identity Idbox_kernel Idbox_net Idbox_vfs List String
