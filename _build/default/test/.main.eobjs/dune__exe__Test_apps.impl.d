test/test_apps.ml: Alcotest Idbox Idbox_acl Idbox_apps Idbox_identity Idbox_kernel Idbox_vfs String
