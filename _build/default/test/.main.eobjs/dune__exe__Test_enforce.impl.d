test/test_enforce.ml: Alcotest Idbox Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs Int64 Printf
