test/test_kernel.ml: Alcotest Idbox_kernel Idbox_vfs Int64 List String
