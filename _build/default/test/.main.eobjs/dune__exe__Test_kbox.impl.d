test/test_kbox.ml: Alcotest Idbox Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs String
