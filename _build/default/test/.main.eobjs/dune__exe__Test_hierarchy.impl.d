test/test_hierarchy.ml: Alcotest Idbox_identity Printf QCheck QCheck_alcotest Result String
