test/test_box.ml: Alcotest Char Idbox Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs List String
