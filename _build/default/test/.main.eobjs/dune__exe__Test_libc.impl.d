test/test_libc.ml: Alcotest Char Format Idbox Idbox_identity Idbox_kernel Idbox_vfs Int64 String
