test/test_wildcard.ml: Alcotest Idbox_identity Printf QCheck QCheck_alcotest String
