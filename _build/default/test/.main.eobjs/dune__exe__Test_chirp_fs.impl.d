test/test_chirp_fs.ml: Alcotest Idbox Idbox_acl Idbox_auth Idbox_chirp Idbox_identity Idbox_kernel Idbox_net Idbox_vfs List
