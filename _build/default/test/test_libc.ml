module Kernel = Idbox_kernel.Kernel
module Libc = Idbox_kernel.Libc
module Syscall = Idbox_kernel.Syscall
module Box = Idbox.Box
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let run_main kernel main =
  let pid = Kernel.spawn_main kernel ~uid:0 ~cwd:"/" ~main ~args:[ "t" ] () in
  Kernel.run kernel;
  Kernel.exit_code kernel pid

let check_raises_syscall_failed () =
  let k = Kernel.create () in
  let code =
    run_main k (fun _ ->
        match Libc.check "probe" (Libc.read_file "/nope") with
        | _ -> 1
        | exception Libc.Syscall_failed ("probe", Errno.ENOENT) -> 0
        | exception _ -> 2)
  in
  Alcotest.(check (option int)) "typed failure" (Some 0) code

let with_file_closes_on_both_paths () =
  let k = Kernel.create () in
  let code =
    run_main k (fun _ ->
        ignore (Libc.check "seed" (Libc.write_file "/tmp/f" ~contents:"abc"));
        (* Success path: fd is closed afterwards (the next open reuses
           the lowest number). *)
        let fd_in_use =
          Libc.check "with"
            (Libc.with_file "/tmp/f" (fun fd -> Ok fd))
        in
        let fd_next = Libc.check "open" (Libc.open_file "/tmp/f") in
        if fd_next <> fd_in_use then Libc.exit 1;
        ignore (Libc.close fd_next);
        (* Error path: the callback's error is preserved. *)
        (match Libc.with_file "/tmp/f" (fun _ -> Error Errno.EINVAL) with
         | Error Errno.EINVAL -> ()
         | Ok _ | Error _ -> Libc.exit 2);
        (* And the fd was still closed. *)
        let fd_again = Libc.check "open2" (Libc.open_file "/tmp/f") in
        if fd_again <> fd_in_use then Libc.exit 3;
        0)
  in
  Alcotest.(check (option int)) "with_file" (Some 0) code

let read_all_chunks_across_blocks () =
  let k = Kernel.create () in
  (* Bigger than the 8 KiB block read_all uses internally. *)
  let big = String.init 20_000 (fun i -> Char.chr (33 + (i mod 90))) in
  let code =
    run_main k (fun _ ->
        ignore (Libc.check "seed" (Libc.write_file "/tmp/big" ~contents:big));
        let fd = Libc.check "open" (Libc.open_file "/tmp/big") in
        let all = Libc.check "read_all" (Libc.read_all fd) in
        ignore (Libc.close fd);
        if String.equal all big then 0 else 1)
  in
  Alcotest.(check (option int)) "read_all" (Some 0) code

let compute_us_rounds () =
  let k = Kernel.create () in
  let t0 = Kernel.now k in
  ignore (run_main k (fun _ -> Libc.compute_us 2.5; 0));
  Alcotest.(check bool) "2.5us charged" true
    (Int64.compare (Int64.sub (Kernel.now k) t0) 2500L >= 0)

(* The exact PEEK/POKE vs channel boundary inside a box: a read of
   exactly the threshold takes the cheap path; one byte more crosses
   into the channel. *)
let small_io_threshold_boundary () =
  let k = Kernel.create () in
  let sup = match Kernel.add_user k "s" with Ok e -> e | Error m -> Alcotest.fail m in
  let box =
    match
      Box.create k ~supervisor_uid:sup.Idbox_kernel.Account.uid
        ~identity:(Principal.of_string "V") ~small_io_threshold:100 ()
    with
    | Ok b -> b
    | Error e -> Alcotest.fail (Errno.message e)
  in
  let home = Box.home box in
  let stats = Kernel.stats k in
  let pid =
    Box.spawn_main box
      ~main:(fun _ ->
        ignore (Libc.check "seed" (Libc.write_file (home ^ "/f") ~contents:(String.make 200 'x')));
        let fd = Libc.check "open" (Libc.open_file (home ^ "/f")) in
        (* Exactly at threshold: no channel bytes. *)
        ignore (Libc.check "r100" (Libc.pread fd ~off:0 ~len:100));
        0)
      ~args:[ "a" ]
  in
  Kernel.run k;
  ignore pid;
  (* The 200-byte seed write crossed the channel; the 100-byte read did
     not add to it. *)
  let after_first = stats.Kernel.channel_bytes in
  let pid2 =
    Box.spawn_main box
      ~main:(fun _ ->
        let fd = Libc.check "open" (Libc.open_file (home ^ "/f")) in
        ignore (Libc.check "r101" (Libc.pread fd ~off:0 ~len:101));
        0)
      ~args:[ "b" ]
  in
  Kernel.run k;
  ignore pid2;
  Alcotest.(check int) "one byte over crosses the channel" (after_first + 101)
    stats.Kernel.channel_bytes

let pp_smoke () =
  (* The pretty-printers never raise and say something useful. *)
  let show pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "request" "open"
    (show Syscall.pp_request
       (Syscall.Open { path = "/x"; flags = Fs.rdonly; mode = 0 }));
  Alcotest.(check string) "value data" "<5 bytes>"
    (show Syscall.pp_value (Syscall.Data "12345"));
  Alcotest.(check string) "fd pair" "(rd 3, wr 4)"
    (show Syscall.pp_value (Syscall.Fd_pair { rd = 3; wr = 4 }));
  Alcotest.(check string) "result err" "EACCES"
    (show Syscall.pp_result (Error Errno.EACCES))

let suite =
  [
    Alcotest.test_case "Syscall_failed carries context" `Quick check_raises_syscall_failed;
    Alcotest.test_case "with_file closes" `Quick with_file_closes_on_both_paths;
    Alcotest.test_case "read_all chunks" `Quick read_all_chunks_across_blocks;
    Alcotest.test_case "compute_us" `Quick compute_us_rounds;
    Alcotest.test_case "small-io threshold boundary" `Quick small_io_threshold_boundary;
    Alcotest.test_case "pretty printers" `Quick pp_smoke;
  ]
