module Kernel = Idbox_kernel.Kernel
module Libc = Idbox_kernel.Libc
module Clock = Idbox_kernel.Clock
module Network = Idbox_net.Network
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Catalog = Idbox_chirp.Catalog
module Chirp_fs = Idbox_chirp.Chirp_fs
module Subject = Idbox_identity.Subject
module Principal = Idbox_identity.Principal
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights

let mount_point_shapes () =
  Alcotest.(check string) "port dropped" "/chirp/alpha.grid.edu"
    (Chirp_fs.mount_point ~addr:"alpha.grid.edu:9094");
  Alcotest.(check string) "no port" "/chirp/beta" (Chirp_fs.mount_point ~addr:"beta")

let whole_grid_in_one_box () =
  (* Two servers registered in a catalog; a box mounts everything it can
     reach and a boxed job reads across both under one identity. *)
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let catalog = Catalog.create net ~addr:"cat:1" in
  ignore catalog;
  let ca = Ca.create ~name:"CA" in
  let fred_subject = Subject.of_string_exn "/O=UnivNowhere/CN=Fred" in
  let make_server host seed =
    let kernel = Kernel.create ~clock () in
    let owner =
      match Kernel.add_user kernel "srv" with Ok e -> e | Error m -> Alcotest.fail m
    in
    let root_acl =
      Acl.of_entries
        [ Entry.make ~pattern:"globus:/O=UnivNowhere/*" (Rights.of_string_exn "rwl") ]
    in
    let server =
      match
        Server.create ~kernel ~net ~addr:(host ^ ":9094")
          ~owner_uid:owner.Idbox_kernel.Account.uid ~export:"/home/srv/export"
          ~acceptor:(Negotiate.acceptor ~trusted_cas:[ ca ] ()) ~root_acl ()
      with
      | Ok s -> s
      | Error e -> Alcotest.fail (Idbox_vfs.Errno.message e)
    in
    (match
       Catalog.register net ~catalog:"cat:1" ~name:host
         ~server_addr:(Server.addr server) ~owner:"unix:srv"
     with
     | Ok () -> ()
     | Error m -> Alcotest.fail m);
    (* Seed a file via a direct client session. *)
    let c =
      match
        Client.connect net ~addr:(Server.addr server)
          ~credentials:[ Credential.Gsi (Ca.issue ca fred_subject) ]
      with
      | Ok c -> c
      | Error m -> Alcotest.fail m
    in
    (match Client.put c ~path:"/hello.txt" ~data:seed with
     | Ok () -> ()
     | Error e -> Alcotest.fail (Idbox_vfs.Errno.message e))
  in
  make_server "alpha.grid.edu" "from alpha";
  make_server "beta.grid.edu" "from beta";
  let mounts =
    match
      Chirp_fs.mounts_from_catalog net ~catalog:"cat:1"
        ~credentials:[ Credential.Gsi (Ca.issue ca fred_subject) ]
    with
    | Ok mounts -> mounts
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "both servers mounted" 2 (List.length mounts);
  (* A laptop box with the grid mounted. *)
  let laptop = Kernel.create ~clock () in
  let user =
    match Kernel.add_user laptop "fred" with Ok e -> e | Error m -> Alcotest.fail m
  in
  let box =
    match
      Idbox.Box.create laptop ~supervisor_uid:user.Idbox_kernel.Account.uid
        ~identity:(Principal.of_string "globus:/O=UnivNowhere/CN=Fred")
        ~mounts ()
    with
    | Ok b -> b
    | Error e -> Alcotest.fail (Idbox_vfs.Errno.message e)
  in
  let pid =
    Idbox.Box.spawn_main box
      ~main:(fun _ ->
        (match Libc.read_file "/chirp/alpha.grid.edu/hello.txt" with
         | Ok "from alpha" -> ()
         | Ok _ | Error _ -> Libc.exit 1);
        (match Libc.read_file "/chirp/beta.grid.edu/hello.txt" with
         | Ok "from beta" -> ()
         | Ok _ | Error _ -> Libc.exit 2);
        (* Cross-server copy, all as ordinary file I/O. *)
        (match Libc.read_file "/chirp/alpha.grid.edu/hello.txt" with
         | Ok data ->
           (match
              Libc.write_file "/chirp/beta.grid.edu/copied.txt" ~contents:data
            with
            | Ok () -> 0
            | Error _ -> 3)
         | Error _ -> 4))
      ~args:[ "gridjob" ]
  in
  Kernel.run laptop;
  Alcotest.(check (option int)) "grid job ok" (Some 0) (Kernel.exit_code laptop pid)

let refusing_servers_skipped () =
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let _catalog = Catalog.create net ~addr:"cat:1" in
  let ca = Ca.create ~name:"CA" and rogue_ca = Ca.create ~name:"Rogue" in
  let kernel = Kernel.create ~clock () in
  let owner =
    match Kernel.add_user kernel "srv" with Ok e -> e | Error m -> Alcotest.fail m
  in
  let server =
    match
      Server.create ~kernel ~net ~addr:"only:1"
        ~owner_uid:owner.Idbox_kernel.Account.uid ~export:"/home/srv/export"
        ~acceptor:(Negotiate.acceptor ~trusted_cas:[ ca ] ()) ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Idbox_vfs.Errno.message e)
  in
  (match
     Catalog.register net ~catalog:"cat:1" ~name:"only"
       ~server_addr:(Server.addr server) ~owner:"unix:srv"
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (* Credentials from an untrusted CA: the server refuses, the helper
     skips it rather than failing. *)
  let mounts =
    match
      Chirp_fs.mounts_from_catalog net ~catalog:"cat:1"
        ~credentials:
          [ Credential.Gsi (Ca.issue rogue_ca (Subject.of_string_exn "/O=X/CN=Eve")) ]
    with
    | Ok mounts -> mounts
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "nothing mounted" 0 (List.length mounts);
  (* Unreachable catalog is a hard error. *)
  (match
     Chirp_fs.mounts_from_catalog net ~catalog:"nowhere:9" ~credentials:[]
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing catalog succeeded")

let suite =
  [
    Alcotest.test_case "mount point shapes" `Quick mount_point_shapes;
    Alcotest.test_case "whole grid in one box" `Quick whole_grid_in_one_box;
    Alcotest.test_case "refusing servers skipped" `Quick refusing_servers_skipped;
  ]
