module Kernel = Idbox_kernel.Kernel
module Libc = Idbox_kernel.Libc
module Shell = Idbox_apps.Shell
module Coreutils = Idbox_apps.Coreutils
module Stdio = Idbox_apps.Stdio
module Box = Idbox.Box
module Acl = Idbox_acl.Acl
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.message e)

(* A host with coreutils and the shell installed, plus a user. *)
let host () =
  let k = Kernel.create () in
  Kernel.with_fresh_programs (fun () -> ());
  ok "coreutils" (Coreutils.install k);
  ok "shell" (Shell.install k);
  let user = match Kernel.add_user k "dthain" with Ok e -> e | Error m -> Alcotest.fail m in
  (k, user)

let plain_spawn k user ~main ~args =
  Kernel.spawn_main k ~uid:user.Idbox_kernel.Account.uid
    ~cwd:user.Idbox_kernel.Account.home ~main ~args ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

let shell_session_outside_box () =
  let k, user = host () in
  let code, transcript =
    ok "script"
      (Shell.run_script k
         ~spawn:(plain_spawn k user)
         ~output:"/tmp/session.out"
         [
           "pwd";
           "echo hello world > greeting.txt";
           "cat greeting.txt";
           "ls";
           "mkdir workdir";
           "cp greeting.txt workdir/copy.txt";
           "cat workdir/copy.txt";
           "wc greeting.txt";
           "whoami";
           "rm greeting.txt";
           "ls";
         ])
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "pwd" true (contains transcript "/home/dthain");
  Alcotest.(check bool) "cat output" true (contains transcript "hello world");
  Alcotest.(check bool) "copy output" true (contains transcript "copy.txt");
  Alcotest.(check bool) "whoami outside box" true (contains transcript "dthain");
  Alcotest.(check bool) "wc counts" true (contains transcript "1 2 12 greeting.txt")

let figure2_as_shell_transcript () =
  (* The actual Figure 2: the same commands, inside an identity box. *)
  let k, user = host () in
  ok "secret"
    (Fs.write_file (Kernel.fs k) ~uid:user.Idbox_kernel.Account.uid ~mode:0o600
       (user.Idbox_kernel.Account.home ^ "/secret") "confidential");
  let box =
    match
      Box.create k ~supervisor_uid:user.Idbox_kernel.Account.uid
        ~identity:(Principal.of_string "Freddy") ()
    with
    | Ok b -> b
    | Error e -> Alcotest.fail (Errno.message e)
  in
  let code, transcript =
    ok "script"
      (Shell.run_script k
         ~spawn:(fun ~main ~args -> Box.spawn_main box ~main ~args)
         ~output:(Box.home box ^ "/.session.out")
         [
           "whoami";
           "cat /home/dthain/secret";
           "echo my data > mydata";
           "cat mydata";
           "getacl .";
         ])
  in
  Alcotest.(check int) "session ok" 0 code;
  (* whoami resolves through the redirected passwd copy: Freddy. *)
  Alcotest.(check bool) "whoami says Freddy" true (contains transcript "Freddy\n");
  Alcotest.(check bool) "secret denied" true
    (contains transcript "Permission denied");
  Alcotest.(check bool) "secret not shown" false (contains transcript "confidential");
  Alcotest.(check bool) "own data ok" true (contains transcript "my data");
  Alcotest.(check bool) "acl shown" true (contains transcript "Freddy rwlxad")

let external_commands_confined () =
  (* Children the shell spawns are traced like the shell itself: /bin/cat
     cannot read the protected file either. *)
  let k, user = host () in
  ok "protected"
    (Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o600 "/root_notes" "root only");
  let box =
    match
      Box.create k ~supervisor_uid:user.Idbox_kernel.Account.uid
        ~identity:(Principal.of_string "Visitor") ()
    with
    | Ok b -> b
    | Error e -> Alcotest.fail (Errno.message e)
  in
  let code, transcript =
    ok "script"
      (Shell.run_script k
         ~spawn:(fun ~main ~args -> Box.spawn_main box ~main ~args)
         ~output:(Box.home box ^ "/.out")
         [ "cat /root_notes" ])
  in
  Alcotest.(check bool) "cat failed" true (code <> 0 || contains transcript "Permission denied");
  Alcotest.(check bool) "contents never shown" false (contains transcript "root only")

let shell_builtins_and_exit () =
  let k, user = host () in
  let code, transcript =
    ok "script"
      (Shell.run_script k
         ~spawn:(plain_spawn k user)
         ~output:"/tmp/b.out"
         [ "id"; "cd /tmp"; "pwd"; "nosuchcommand"; "exit 7"; "echo unreachable" ])
  in
  Alcotest.(check int) "exit code" 7 code;
  Alcotest.(check bool) "id output" true (contains transcript "uid=");
  Alcotest.(check bool) "cd took effect" true (contains transcript "$ pwd\n/tmp");
  Alcotest.(check bool) "unknown command reported" true
    (contains transcript "nosuchcommand");
  Alcotest.(check bool) "exit stops script" false (contains transcript "unreachable")

let coreutils_error_paths () =
  let k, user = host () in
  let code, transcript =
    ok "script"
      (Shell.run_script k
         ~spawn:(plain_spawn k user)
         ~output:"/tmp/e.out"
         [
           "cat /does/not/exist";
           "rm /does/not/exist";
           "mv /does/not/exist /tmp/x";
           "head -2 /etc/passwd";
           "ln -s /etc/passwd pwlink";
           "cat pwlink";
         ])
  in
  (* Failures are reported, later commands still run; the symlink works. *)
  Alcotest.(check bool) "cat error" true (contains transcript "cat: /does/not/exist");
  Alcotest.(check bool) "head output" true (contains transcript "root:x:0:0");
  Alcotest.(check bool) "symlink cat works" true (contains transcript "nobody");
  ignore code

let pipelines_through_kernel_pipes () =
  let k, user = host () in
  let code, transcript =
    ok "script"
      (Shell.run_script k
         ~spawn:(plain_spawn k user)
         ~output:"/tmp/p.out"
         [
           "echo alpha beta gamma > words.txt";
           "cat words.txt | wc";
           "cat /etc/passwd | head -1 | wc";
           "cat words.txt | pwd";
           "echo still alive";
         ])
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "two-stage counts" true (contains transcript "1 3 17 -");
  (* Three stages: the first passwd line re-counted. *)
  Alcotest.(check bool) "three-stage ran" true (contains transcript "1 ");
  Alcotest.(check bool) "shell output intact after pipelines" true
    (contains transcript "still alive");
  Alcotest.(check bool) "builtins cannot be piped" true
    (contains transcript "only external commands can be piped")

let pipelines_inside_box () =
  let k, user = host () in
  let box =
    match
      Box.create k ~supervisor_uid:user.Idbox_kernel.Account.uid
        ~identity:(Principal.of_string "Freddy") ()
    with
    | Ok b -> b
    | Error e -> Alcotest.fail (Errno.message e)
  in
  let code, transcript =
    ok "script"
      (Shell.run_script k
         ~spawn:(fun ~main ~args -> Box.spawn_main box ~main ~args)
         ~output:(Box.home box ^ "/.out")
         [ "echo boxed pipeline data > d.txt"; "cat d.txt | wc" ])
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "counted through boxed pipe" true
    (contains transcript "1 3 20 -")

let suite =
  [
    Alcotest.test_case "pipelines through kernel pipes" `Quick pipelines_through_kernel_pipes;
    Alcotest.test_case "pipelines inside box" `Quick pipelines_inside_box;
    Alcotest.test_case "shell session outside box" `Quick shell_session_outside_box;
    Alcotest.test_case "figure 2 as transcript" `Quick figure2_as_shell_transcript;
    Alcotest.test_case "external commands confined" `Quick external_commands_confined;
    Alcotest.test_case "builtins and exit" `Quick shell_builtins_and_exit;
    Alcotest.test_case "coreutils error paths" `Quick coreutils_error_paths;
  ]
