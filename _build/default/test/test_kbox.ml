module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Kbox = Idbox.Kbox
module Box = Idbox.Box
module Enforce = Idbox.Enforce
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let fred = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"
let carol = Principal.of_string "unix:carol"

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let setup () =
  let k = Kernel.create () in
  let sup =
    match Account.add (Kernel.accounts k) "operator" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Kernel.refresh_passwd k;
  let kbox = Kbox.install k ~supervisor_uid:sup.Account.uid () in
  let fs = Kernel.fs k in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/srv/area");
  ok "chown" (Fs.chown fs ~uid:0 ~owner:sup.Account.uid "/srv/area");
  ok "acl"
    (Enforce.write_acl (Kbox.enforcer kbox) ~dir:"/srv/area"
       (Acl.of_entries
          [ Entry.make ~pattern:"globus:/O=UnivNowhere/*" (Rights.of_string_exn "rwlxd") ]));
  (k, kbox)

let enforcement_without_traps () =
  let k, kbox = setup () in
  let trapped0 = (Kernel.stats k).Kernel.trapped in
  let pid =
    Kbox.spawn_main kbox ~identity:fred
      ~main:(fun _ ->
        (* Allowed by the ACL. *)
        (match Libc.write_file "/srv/area/f" ~contents:"x" with
         | Ok () -> () | Error _ -> Libc.exit 1);
        (* Denied: no ACL in /etc, nobody fallback, root-owned 644. *)
        (match Libc.write_file "/etc/intruder" ~contents:"x" with
         | Error Errno.EACCES -> () | Ok () | Error _ -> Libc.exit 2);
        (* get_user_name answers with the identity, in-kernel. *)
        if not (String.equal (Libc.get_user_name ()) "globus:/O=UnivNowhere/CN=Fred")
        then Libc.exit 3;
        0)
      ~args:[ "j" ]
  in
  Kernel.run k;
  Alcotest.(check (option int)) "enforced" (Some 0) (Kernel.exit_code k pid);
  (* The whole point: zero trapped calls. *)
  Alcotest.(check int) "no traps" trapped0 (Kernel.stats k).Kernel.trapped

let identity_inherited_by_children () =
  let k, kbox = setup () in
  Kernel.with_fresh_programs (fun () ->
      Idbox_kernel.Program.register "child" (fun _ ->
          if String.equal (Libc.get_user_name ()) "globus:/O=UnivNowhere/CN=Fred"
          then 0 else 1);
      (match
         Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/srv/area/child.exe"
           (Idbox_kernel.Program.marker "child")
       with
       | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
      let pid =
        Kbox.spawn_main kbox ~identity:fred
          ~main:(fun _ ->
            let c =
              match Libc.spawn "/srv/area/child.exe" ~args:[ "c" ] with
              | Ok c -> c
              | Error _ -> Libc.exit 1
            in
            match Libc.waitpid c with
            | Ok (_, status) -> status
            | Error _ -> 2)
          ~args:[ "parent" ]
      in
      Kernel.run k;
      Alcotest.(check (option int)) "child saw identity" (Some 0)
        (Kernel.exit_code k pid))

let kill_policy_by_identity () =
  let k, kbox = setup () in
  let victim =
    Kbox.spawn_main kbox ~identity:carol
      ~main:(fun _ ->
        for _ = 1 to 1000 do
          Libc.compute 1_000_000L
        done;
        0)
      ~args:[ "victim" ]
  in
  let attacker_result = ref None in
  let _ =
    Kbox.spawn_main kbox ~identity:fred
      ~main:(fun _ ->
        attacker_result := Some (Libc.kill ~pid:victim ~signal:9);
        0)
      ~args:[ "attacker" ]
  in
  Kernel.run k;
  (match !attacker_result with
   | Some (Error Errno.EPERM) -> ()
   | _ -> Alcotest.fail "cross-identity kill not denied");
  Alcotest.(check (option int)) "victim finished" (Some 0) (Kernel.exit_code k victim)

let spawn_checks_execute_right () =
  let k, kbox = setup () in
  Kernel.with_fresh_programs (fun () ->
      Idbox_kernel.Program.register "tool" (fun _ -> 0);
      (match
         Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/srv/area/tool.exe"
           (Idbox_kernel.Program.marker "tool")
       with
       | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
      (* Fred holds x: allowed. *)
      (match Kbox.spawn kbox ~identity:fred ~path:"/srv/area/tool.exe" ~args:[ "t" ] () with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "fred denied: %s" (Errno.to_string e));
      (* Carol holds nothing in the ACL: denied. *)
      (match Kbox.spawn kbox ~identity:carol ~path:"/srv/area/tool.exe" ~args:[ "t" ] () with
       | Error Errno.EACCES -> ()
       | Ok _ -> Alcotest.fail "carol allowed"
       | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
      Kernel.run k)

let identity_of_lookup () =
  let k, kbox = setup () in
  let pid = Kbox.spawn_main kbox ~identity:fred ~main:(fun _ -> 0) ~args:[ "j" ] in
  (match Kbox.identity_of kbox pid with
   | Some p -> Alcotest.(check bool) "fred" true (Principal.equal p fred)
   | None -> Alcotest.fail "identity missing");
  Kernel.run k

let hierarchy_domains_minted () =
  let k, kbox = setup () in
  ignore (Kbox.spawn_main kbox ~identity:fred ~main:(fun _ -> 0) ~args:[ "j" ]);
  ignore (Kbox.spawn_main kbox ~identity:carol ~main:(fun _ -> 0) ~args:[ "j" ]);
  Kernel.run k;
  (match Kbox.domain_of kbox fred with
   | Some d ->
     Alcotest.(check string) "fred's domain"
       "root:operator:grid:globus./O=UnivNowhere/CN=Fred"
       (Idbox_identity.Hierarchy.full_name d)
   | None -> Alcotest.fail "fred has no domain");
  (* Both live under the operator's grid subtree. *)
  Alcotest.(check int) "root + operator + grid + 2 visitors" 5
    (Idbox_identity.Hierarchy.size (Kbox.namespace kbox))

let retire_terminates_subtree () =
  let k, kbox = setup () in
  (* Two long-running visitors. *)
  let long _ =
    for _ = 1 to 100_000 do
      Libc.compute 1_000_000L
    done;
    0
  in
  let fred_pid = Kbox.spawn_main kbox ~identity:fred ~main:long ~args:[ "f" ] in
  let carol_pid = Kbox.spawn_main kbox ~identity:carol ~main:long ~args:[ "c" ] in
  (* Retire only Fred's domain while both are queued. *)
  (match
     Kbox.retire kbox
       ~full_name:"root:operator:grid:globus./O=UnivNowhere/CN=Fred"
   with
   | Ok n -> Alcotest.(check int) "one process killed" 1 n
   | Error m -> Alcotest.fail m);
  Kernel.run k;
  Alcotest.(check (option int)) "fred killed" (Some 137) (Kernel.exit_code k fred_pid);
  Alcotest.(check (option int)) "carol unharmed" (Some 0) (Kernel.exit_code k carol_pid);
  Alcotest.(check bool) "fred's domain gone" true (Kbox.domain_of kbox fred = None);
  (* Retiring the whole grid subtree takes everything else. *)
  let carol2 = Kbox.spawn_main kbox ~identity:carol ~main:long ~args:[ "c2" ] in
  (match Kbox.retire kbox ~full_name:"root:operator:grid" with
   | Ok n -> Alcotest.(check bool) "at least carol" true (n >= 1)
   | Error m -> Alcotest.fail m);
  Kernel.run k;
  Alcotest.(check (option int)) "carol2 killed" (Some 137) (Kernel.exit_code k carol2);
  (match Kbox.retire kbox ~full_name:"root:operator:grid:nonexistent" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "retired a missing domain")

let uninstall_restores () =
  let k, kbox = setup () in
  Kbox.uninstall kbox;
  (* After uninstall the hook no longer denies anything. *)
  let pid =
    Kernel.spawn_main k ~uid:0
      ~main:(fun _ ->
        match Libc.write_file "/etc/after" ~contents:"x" with
        | Ok () -> 0
        | Error _ -> 1)
      ~args:[ "j" ] ()
  in
  Kernel.run k;
  Alcotest.(check (option int)) "hook gone" (Some 0) (Kernel.exit_code k pid)

let suite =
  [
    Alcotest.test_case "enforcement without traps" `Quick enforcement_without_traps;
    Alcotest.test_case "children inherit identity" `Quick identity_inherited_by_children;
    Alcotest.test_case "kill policy" `Quick kill_policy_by_identity;
    Alcotest.test_case "spawn checks x" `Quick spawn_checks_execute_right;
    Alcotest.test_case "identity_of" `Quick identity_of_lookup;
    Alcotest.test_case "hierarchy domains minted" `Quick hierarchy_domains_minted;
    Alcotest.test_case "retire terminates subtree" `Quick retire_terminates_subtree;
    Alcotest.test_case "uninstall" `Quick uninstall_restores;
  ]
