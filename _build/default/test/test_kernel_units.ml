(* Unit coverage for the kernel's small supporting modules. *)

module Clock = Idbox_kernel.Clock
module Cost = Idbox_kernel.Cost
module Account = Idbox_kernel.Account
module Fd_table = Idbox_kernel.Fd_table
module View = Idbox_kernel.View
module Program = Idbox_kernel.Program
module Syscall = Idbox_kernel.Syscall
module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode
module Errno = Idbox_vfs.Errno

(* --- clock ------------------------------------------------------------ *)

let clock_behaviour () =
  let c = Clock.create () in
  Alcotest.(check int64) "starts at zero" 0L (Clock.now c);
  Clock.advance c 1500L;
  Clock.advance c 500L;
  Alcotest.(check int64) "accumulates" 2000L (Clock.now c);
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Clock.advance: negative duration") (fun () ->
      Clock.advance c (-1L));
  let reading = Clock.reading c in
  Clock.advance c 1L;
  Alcotest.(check int64) "reading closure live" 2001L (reading ());
  Alcotest.(check (float 1e-12)) "to_seconds" 2.5 (Clock.to_seconds 2_500_000_000L);
  Alcotest.(check (float 1e-9)) "to_micros" 1.5 (Clock.to_micros 1500L);
  Alcotest.(check int64) "of_micros" 2500L (Clock.of_micros 2.5)

let clock_duration_rendering () =
  let render ns = Format.asprintf "%a" Clock.pp_duration ns in
  Alcotest.(check string) "ns" "500 ns" (render 500L);
  Alcotest.(check string) "us" "1.50 us" (render 1500L);
  Alcotest.(check string) "ms" "2.00 ms" (render 2_000_000L);
  Alcotest.(check string) "s" "3.00 s" (render 3_000_000_000L)

(* --- cost model --------------------------------------------------------- *)

let cost_shapes () =
  let c = Cost.default in
  let direct req res = Cost.direct c req res in
  (* Compute is pure user time: exactly its nanoseconds, no kernel entry. *)
  Alcotest.(check int64) "compute" 12345L
    (direct (Syscall.Compute 12345L) (Ok Syscall.Unit));
  (* Bigger payloads cost more. *)
  let small =
    direct
      (Syscall.Read { fd = 0; len = 1 })
      (Ok (Syscall.Data "x"))
  in
  let big =
    direct
      (Syscall.Read { fd = 0; len = 8192 })
      (Ok (Syscall.Data (String.make 8192 'x')))
  in
  Alcotest.(check bool) "8k read costs more" true (Int64.compare big small > 0);
  (* Deeper paths cost more. *)
  let shallow = direct (Syscall.Stat "/a") (Ok Syscall.Unit) in
  let deep = direct (Syscall.Stat "/a/b/c/d/e") (Ok Syscall.Unit) in
  Alcotest.(check bool) "deep path costs more" true (Int64.compare deep shallow > 0);
  (* Helpers. *)
  Alcotest.(check int64) "peek_poke linear" (Int64.mul 10L c.Cost.peek_poke_word)
    (Cost.peek_poke c ~words:10);
  Alcotest.(check bool) "copy monotone" true
    (Int64.compare (Cost.copy_bytes c 8192) (Cost.copy_bytes c 512) > 0)

let argument_words_shapes () =
  (* Path strings are peeked; write payloads are not (the I/O channel
     carries them). *)
  let with_path =
    Syscall.argument_words (Syscall.Stat "/a/very/long/path/name/here")
  in
  let short_path = Syscall.argument_words (Syscall.Stat "/a") in
  Alcotest.(check bool) "paths counted" true (with_path > short_path);
  let big_write =
    Syscall.argument_words
      (Syscall.Write { fd = 1; data = String.make 100_000 'x' })
  in
  Alcotest.(check bool) "write payload not peeked" true (big_write <= 4);
  Alcotest.(check int) "getpid argless" 0 (Syscall.argument_words Syscall.Getpid)

let result_words_shapes () =
  Alcotest.(check int) "stat is 16 words" 16
    (Syscall.result_words
       (Ok
          (Syscall.Stat_v
             {
               Fs.st_ino = 1; st_kind = Inode.Regular; st_mode = 0o644; st_uid = 0;
               st_nlink = 1; st_size = 0; st_mtime = 0L; st_ctime = 0L;
             })));
  Alcotest.(check int) "errors are one word" 1 (Syscall.result_words (Error Errno.ENOENT));
  Alcotest.(check bool) "bulk data result small" true
    (Syscall.result_words (Ok (Syscall.Data (String.make 8192 'x'))) <= 2)

let metadata_classification () =
  Alcotest.(check bool) "stat is metadata" true (Syscall.is_metadata (Syscall.Stat "/x"));
  Alcotest.(check bool) "read is not" false
    (Syscall.is_metadata (Syscall.Read { fd = 0; len = 1 }));
  Alcotest.(check bool) "compute is not" false
    (Syscall.is_metadata (Syscall.Compute 1L))

(* --- accounts ----------------------------------------------------------- *)

let account_database () =
  let db = Account.create () in
  Alcotest.(check int) "root+nobody" 2 (Account.count db);
  let alice = match Account.add db "alice" with Ok e -> e | Error m -> Alcotest.fail m in
  let bob = match Account.add db "bob" with Ok e -> e | Error m -> Alcotest.fail m in
  Alcotest.(check bool) "distinct uids" true (alice.Account.uid <> bob.Account.uid);
  Alcotest.(check string) "default home" "/home/alice" alice.Account.home;
  (match Account.add db "alice" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate accepted");
  (match Account.add db "" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty accepted");
  Alcotest.(check string) "lookup by uid" "bob" (Account.name_of_uid db bob.Account.uid);
  Alcotest.(check string) "unknown uid" "uid31337" (Account.name_of_uid db 31337);
  (match Account.remove db "root" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "removed root");
  (match Account.remove db "alice" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "gone" true (Account.find db "alice" = None)

let passwd_rendering () =
  let db = Account.create () in
  ignore (Account.add db "zed");
  let text = Account.render_passwd db in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "one line per account" (Account.count db) (List.length lines);
  (* Sorted by uid: root first. *)
  (match lines with
   | first :: _ ->
     Alcotest.(check bool) "root first" true
       (String.length first >= 5 && String.sub first 0 5 = "root:")
   | [] -> Alcotest.fail "no lines");
  List.iter
    (fun line ->
      Alcotest.(check int) "seven fields" 7
        (List.length (String.split_on_char ':' line)))
    lines

(* --- fd table ----------------------------------------------------------- *)

let dummy_file () =
  {
    Fd_table.inode = Inode.make_file ~ino:1 ~uid:0 ~mode:0o644 ~now:0L;
    of_path = "/f";
    flags = Fs.rdonly;
    pos = 0;
  }

let fd_allocation () =
  let t = Fd_table.create () in
  let fd0 = match Fd_table.alloc t (dummy_file ()) with Ok fd -> fd | Error _ -> -1 in
  let fd1 = match Fd_table.alloc t (dummy_file ()) with Ok fd -> fd | Error _ -> -1 in
  Alcotest.(check int) "lowest first" 0 fd0;
  Alcotest.(check int) "then next" 1 fd1;
  (match Fd_table.close t 0 with Ok () -> () | Error _ -> Alcotest.fail "close");
  let fd0' = match Fd_table.alloc t (dummy_file ()) with Ok fd -> fd | Error _ -> -1 in
  Alcotest.(check int) "freed number reused" 0 fd0';
  (match Fd_table.close t 99 with
   | Error Errno.EBADF -> ()
   | Ok () | Error _ -> Alcotest.fail "bad close");
  Fd_table.alloc_at t 7 (dummy_file ());
  Alcotest.(check (list int)) "fds sorted" [ 0; 1; 7 ] (Fd_table.fds t);
  Fd_table.close_all t;
  Alcotest.(check int) "emptied" 0 (Fd_table.count t)

let fd_limit () =
  let t = Fd_table.create () in
  for _ = 1 to Fd_table.limit do
    match Fd_table.alloc t (dummy_file ()) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "premature EMFILE"
  done;
  match Fd_table.alloc t (dummy_file ()) with
  | Error Errno.EMFILE -> ()
  | Ok _ | Error _ -> Alcotest.fail "limit not enforced"

(* --- view / program ------------------------------------------------------ *)

let view_environment () =
  let v = View.make ~uid:7 ~env:[ ("A", "1"); ("B", "2") ] () in
  Alcotest.(check (option string)) "get" (Some "1") (View.getenv v "A");
  View.setenv v "A" "override";
  Alcotest.(check (option string)) "set" (Some "override") (View.getenv v "A");
  Alcotest.(check (option string)) "missing" None (View.getenv v "Z");
  Alcotest.(check (list (pair string string))) "sorted bindings"
    [ ("A", "override"); ("B", "2") ]
    (View.env_bindings v)

let program_registry_and_markers () =
  Idbox_kernel.Kernel.with_fresh_programs (fun () ->
      Program.register "demo" (fun _ -> 0);
      Alcotest.(check bool) "found" true (Program.find "demo" <> None);
      Alcotest.(check bool) "missing" true (Program.find "nope" = None);
      Alcotest.(check (option string)) "marker roundtrip" (Some "demo")
        (Program.of_marker (Program.marker "demo"));
      Alcotest.(check (option string)) "marker without newline" (Some "demo")
        (Program.of_marker "#!idbox-program:demo");
      Alcotest.(check (option string)) "not a marker" None
        (Program.of_marker "#!/bin/sh\necho hi");
      Alcotest.(check (option string)) "empty" None (Program.of_marker ""));
  (* with_fresh_programs restored the outer registry. *)
  Alcotest.(check bool) "restored" true (Program.find "demo" = None)

let suite =
  [
    Alcotest.test_case "clock behaviour" `Quick clock_behaviour;
    Alcotest.test_case "clock rendering" `Quick clock_duration_rendering;
    Alcotest.test_case "cost shapes" `Quick cost_shapes;
    Alcotest.test_case "argument words" `Quick argument_words_shapes;
    Alcotest.test_case "result words" `Quick result_words_shapes;
    Alcotest.test_case "metadata classification" `Quick metadata_classification;
    Alcotest.test_case "account database" `Quick account_database;
    Alcotest.test_case "passwd rendering" `Quick passwd_rendering;
    Alcotest.test_case "fd allocation" `Quick fd_allocation;
    Alcotest.test_case "fd limit" `Quick fd_limit;
    Alcotest.test_case "view environment" `Quick view_environment;
    Alcotest.test_case "program registry" `Quick program_registry_and_markers;
  ]
