module Network = Idbox_net.Network
module Clock = Idbox_kernel.Clock
module Errno = Idbox_vfs.Errno

let fresh ?latency_us ?bandwidth_mbps () =
  let clock = Clock.create () in
  (clock, Network.create ~clock ?latency_us ?bandwidth_mbps ())

let echo payload = "echo:" ^ payload

let call_roundtrip () =
  let _, net = fresh () in
  Network.listen net ~addr:"host:1" echo;
  (match Network.call net ~addr:"host:1" "hello" with
   | Ok "echo:hello" -> ()
   | Ok other -> Alcotest.failf "got %S" other
   | Error e -> Alcotest.fail (Errno.to_string e))

let connection_refused () =
  let _, net = fresh () in
  match Network.call net ~addr:"nobody:9" "x" with
  | Error Errno.ECONNREFUSED -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected ECONNREFUSED"

let unlisten_stops_service () =
  let _, net = fresh () in
  Network.listen net ~addr:"a:1" echo;
  Network.unlisten net ~addr:"a:1";
  match Network.call net ~addr:"a:1" "x" with
  | Error Errno.ECONNREFUSED -> ()
  | Ok _ | Error _ -> Alcotest.fail "unlisten ignored"

let latency_charged_per_direction () =
  let clock, net = fresh ~latency_us:100. ~bandwidth_mbps:100. () in
  Network.listen net ~addr:"a:1" (fun _ -> "");
  let t0 = Clock.now clock in
  ignore (Network.call net ~addr:"a:1" "");
  let elapsed = Int64.sub (Clock.now clock) t0 in
  (* Two empty transfers: exactly two latencies. *)
  Alcotest.(check int64) "2x latency" 200_000L elapsed

let bandwidth_charged_per_byte () =
  let clock, net = fresh ~latency_us:0. ~bandwidth_mbps:8. () in
  (* 8 Mbit/s = 1 byte per microsecond. *)
  Network.listen net ~addr:"a:1" (fun _ -> "");
  let t0 = Clock.now clock in
  ignore (Network.call net ~addr:"a:1" (String.make 1000 'x'));
  let elapsed = Int64.sub (Clock.now clock) t0 in
  Alcotest.(check int64) "1000 bytes = 1ms" 1_000_000L elapsed

let stats_accumulate () =
  let _, net = fresh () in
  Network.listen net ~addr:"a:1" echo;
  ignore (Network.call net ~addr:"a:1" "12345");
  ignore (Network.call net ~addr:"a:1" "1");
  (match Network.stats net ~addr:"a:1" with
   | Some s ->
     Alcotest.(check int) "calls" 2 s.Network.calls;
     Alcotest.(check int) "bytes in" 6 s.Network.bytes_in;
     Alcotest.(check int) "bytes out" 16 s.Network.bytes_out
   | None -> Alcotest.fail "no stats");
  Alcotest.(check int) "messages" 4 (Network.total_messages net);
  Alcotest.(check int) "total bytes" 22 (Network.total_bytes net)

let addresses_sorted () =
  let _, net = fresh () in
  Network.listen net ~addr:"b:2" echo;
  Network.listen net ~addr:"a:1" echo;
  Alcotest.(check (list string)) "sorted" [ "a:1"; "b:2" ] (Network.addresses net)

let suite =
  [
    Alcotest.test_case "call roundtrip" `Quick call_roundtrip;
    Alcotest.test_case "connection refused" `Quick connection_refused;
    Alcotest.test_case "unlisten" `Quick unlisten_stops_service;
    Alcotest.test_case "latency per direction" `Quick latency_charged_per_direction;
    Alcotest.test_case "bandwidth per byte" `Quick bandwidth_charged_per_byte;
    Alcotest.test_case "stats accumulate" `Quick stats_accumulate;
    Alcotest.test_case "addresses sorted" `Quick addresses_sorted;
  ]
