(* Figure 3: identity boxing in a distributed system.

   Fred, holding a GSI credential, discovers a Chirp server through the
   catalog, creates /work under the reserve right, stages in sim.exe,
   executes it remotely inside an identity box annotated with his grid
   identity, and retrieves the output — all without any account existing
   for him on the server.

   Run with:  dune exec examples/chirp_remote_exec.exe *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Clock = Idbox_kernel.Clock
module Network = Idbox_net.Network
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Catalog = Idbox_chirp.Catalog
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject

let say fmt = Printf.printf (fmt ^^ "\n%!")

let ok ctx = function
  | Ok v -> v
  | Error e -> failwith (ctx ^ ": " ^ Idbox_vfs.Errno.message e)

let () =
  (* ---- the grid ----------------------------------------------------- *)
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let _catalog = Catalog.create net ~addr:"catalog.grid.edu:9097" in

  (* ---- the server host, deployed by an ordinary user ---------------- *)
  let server_kernel = Kernel.create ~clock () in
  let owner =
    match Kernel.add_user server_kernel "chirpuser" with
    | Ok e -> e
    | Error m -> failwith m
  in
  let ca = Ca.create ~name:"UnivNowhere CA" in
  (* The paper's root ACL: hostname users may browse; UnivNowhere
     certificate holders may reserve private working directories. *)
  let root_acl =
    Acl.of_entries
      [
        Entry.make ~pattern:"hostname:*.nowhere.edu" (Rights.of_string_exn "rl");
        Entry.make ~pattern:"globus:/O=UnivNowhere/*"
          ~reserve:(Rights.of_string_exn "rwlaxd")
          (Rights.of_string_exn "rl");
      ]
  in
  let acceptor =
    Negotiate.acceptor ~trusted_cas:[ ca ]
      ~host_ok:(fun h -> Idbox_identity.Wildcard.literal_matches "*.nowhere.edu" h)
      ()
  in
  let server =
    ok "server"
      (Server.create ~kernel:server_kernel ~net ~addr:"alpha.grid.edu:9094"
         ~owner_uid:owner.Account.uid ~export:"/home/chirpuser/export" ~acceptor
         ~root_acl ())
  in
  (match
     Catalog.register net ~catalog:"catalog.grid.edu:9097" ~name:"alpha"
       ~server_addr:(Server.addr server) ~owner:"unix:chirpuser"
   with
   | Ok () -> ()
   | Error m -> failwith m);
  say "server: deployed by ordinary user %S, exporting %s"
    "chirpuser" (Server.export server);
  say "server: root ACL:";
  say "    hostname:*.nowhere.edu   rl";
  say "    globus:/O=UnivNowhere/*  rl v(rwlaxd)";
  say "";

  (* ---- the simulation program (shared binary) ----------------------- *)
  Program.register "sim" (fun args ->
      let n = match args with _ :: n :: _ -> int_of_string n | _ -> 3 in
      let input = Libc.check "read input" (Libc.read_file "input.dat") in
      Libc.compute_us 40_000.;
      let result =
        Printf.sprintf "simulated %d steps of %S as %s\n" n input
          (Libc.get_user_name ())
      in
      Libc.check "write output" (Libc.write_file "out.dat" ~contents:result);
      0);

  (* ---- Fred, on his laptop ------------------------------------------ *)
  let fred_cert = Ca.issue ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
  let servers =
    match Catalog.list net ~catalog:"catalog.grid.edu:9097" with
    | Ok entries -> entries
    | Error m -> failwith m
  in
  say "fred: catalog lists %d server(s); first is %S at %s"
    (List.length servers)
    (List.hd servers).Catalog.name
    (List.hd servers).Catalog.server_addr;
  let c =
    match
      Client.connect net ~addr:(List.hd servers).Catalog.server_addr
        ~credentials:[ Credential.Gsi fred_cert ]
    with
    | Ok c -> c
    | Error m -> failwith m
  in
  say "fred: authenticated as %s via %s" (Client.principal c) (Client.auth_method c);

  say "fred: mkdir /work                      (the reserve right mints it)";
  ok "mkdir" (Client.mkdir c "/work");
  say "fred: getacl /work ->";
  print_string (ok "getacl" (Client.getacl c "/work"));

  say "fred: put sim.exe, put input.dat";
  ok "put exe" (Client.put c ~path:"/work/sim.exe" ~data:(Program.marker "sim"));
  ok "put input" (Client.put c ~path:"/work/input.dat" ~data:"galaxy collision");

  say "fred: exec sim.exe 5                   (runs in an identity box)";
  let code = ok "exec" (Client.exec c ~path:"/work/sim.exe" ~args:[ "sim.exe"; "5" ] ()) in
  say "fred: remote process exited %d" code;

  say "fred: get out.dat ->";
  print_string (ok "get" (Client.get c "/work/out.dat"));

  say "fred: cleaning up";
  List.iter (fun f -> ok "rm" (Client.unlink c ("/work/" ^ f)))
    [ "out.dat"; "input.dat"; "sim.exe" ];
  ok "rmdir" (Client.rmdir c "/work");
  say "";
  say "done: %d network messages, %.3f ms simulated, %d remote exec(s)"
    (Network.total_messages net)
    (Int64.to_float (Clock.now clock) /. 1e6)
    (Server.exec_count server)
