(* A campus storage co-op: the sharing story of paper §4.

   One Chirp server, many users, no administrator in the loop:
   - anybody at nowhere.edu (hostname identity) may browse and run
     pre-installed tools (rlx);
   - certificate holders from two departments reserve private
     directories (v) and selectively grant access to collaborators
     across departments with plain setacl calls.

   Run with:  dune exec examples/campus_grid.exe *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Clock = Idbox_kernel.Clock
module Network = Idbox_net.Network
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

let say fmt = Printf.printf (fmt ^^ "\n%!")

let ok ctx = function
  | Ok v -> v
  | Error e -> failwith (ctx ^ ": " ^ Errno.message e)

let () =
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let kernel = Kernel.create ~clock () in
  let owner =
    match Kernel.add_user kernel "coop" with
    | Ok e -> e
    | Error m -> failwith m
  in
  let ca = Ca.create ~name:"Nowhere Campus CA" in
  let root_acl =
    Acl.of_entries
      [
        Entry.make ~pattern:"hostname:*.nowhere.edu" (Rights.of_string_exn "rlx");
        Entry.make ~pattern:"globus:/O=Nowhere/*"
          ~reserve:(Rights.of_string_exn "rwlaxd")
          (Rights.of_string_exn "rlx");
      ]
  in
  let acceptor =
    Negotiate.acceptor ~trusted_cas:[ ca ]
      ~host_ok:(fun h -> Idbox_identity.Wildcard.literal_matches "*.nowhere.edu" h)
      ()
  in
  let _server =
    ok "server"
      (Server.create ~kernel ~net ~addr:"coop.nowhere.edu:9094"
         ~owner_uid:owner.Account.uid ~export:"/home/coop/export" ~acceptor
         ~root_acl ())
  in
  say "co-op server up; the operator now walks away for good.";
  say "";

  (* A pre-installed shared tool anyone on campus may run.  It returns
     the word count as its exit code, so read-only users can use it
     without holding any write right. *)
  Program.register "wordcount" (fun args ->
      let file = match args with _ :: f :: _ -> f | _ -> "input" in
      match Libc.read_file file with
      | Error _ -> 255
      | Ok text ->
        String.split_on_char ' ' text
        |> List.filter (fun w -> w <> "")
        |> List.length);
  let staging =
    ok "staging"
      ((fun () ->
         let sup = Kernel.make_view kernel ~uid:owner.Account.uid () in
         ignore sup;
         Idbox_vfs.Fs.write_file (Kernel.fs kernel) ~uid:owner.Account.uid
           ~mode:0o755 "/home/coop/export/wordcount.exe" (Program.marker "wordcount"))
         ())
  in
  ignore staging;

  let connect creds =
    match Client.connect net ~addr:"coop.nowhere.edu:9094" ~credentials:creds with
    | Ok c -> c
    | Error m -> failwith m
  in
  let physics_chen =
    connect [ Credential.Gsi (Ca.issue ca (Subject.of_string_exn "/O=Nowhere/OU=Physics/CN=Chen")) ]
  in
  let biology_okafor =
    connect [ Credential.Gsi (Ca.issue ca (Subject.of_string_exn "/O=Nowhere/OU=Biology/CN=Okafor")) ]
  in
  let kiosk = connect [ Credential.Host "kiosk.lib.nowhere.edu" ] in

  say "chen   = %s" (Client.principal physics_chen);
  say "okafor = %s" (Client.principal biology_okafor);
  say "kiosk  = %s" (Client.principal kiosk);
  say "";

  (* Chen reserves a project directory and stores a dataset. *)
  ok "mkdir" (Client.mkdir physics_chen "/plasma");
  ok "put"
    (Client.put physics_chen ~path:"/plasma/run7.dat"
       ~data:"ion temperatures for run seven of the plasma study");
  say "chen: created /plasma (reserve right) and stored run7.dat";

  (* Okafor, from another department, cannot see in... *)
  (match Client.get biology_okafor "/plasma/run7.dat" with
   | Error Errno.EACCES -> say "okafor: read /plasma/run7.dat -> EACCES (private by default)"
   | Ok _ -> failwith "privacy hole!"
   | Error e -> failwith (Errno.message e));

  (* ...until Chen grants exactly him, by global name, no admin involved. *)
  ok "grant"
    (Client.setacl physics_chen ~path:"/plasma"
       ~entry:"globus:/O=Nowhere/OU=Biology/CN=Okafor rl");
  say "chen: setacl /plasma 'globus:/O=Nowhere/OU=Biology/CN=Okafor rl'";
  let data = ok "get" (Client.get biology_okafor "/plasma/run7.dat") in
  say "okafor: read /plasma/run7.dat -> %d bytes" (String.length data);

  (* But Okafor still cannot write or extend rights. *)
  (match Client.put biology_okafor ~path:"/plasma/vandalism" ~data:"x" with
   | Error Errno.EACCES -> say "okafor: write into /plasma -> EACCES (rl only)"
   | Ok () -> failwith "write hole!"
   | Error e -> failwith (Errno.message e));
  (match
     Client.setacl biology_okafor ~path:"/plasma" ~entry:"globus:/O=Nowhere/* rwlxad"
   with
   | Error Errno.EACCES -> say "okafor: setacl /plasma -> EACCES (no a right)"
   | Ok () -> failwith "escalation hole!"
   | Error e -> failwith (Errno.message e));
  say "";

  (* The kiosk user runs the pre-installed tool on a public file but
     cannot stage programs in (rlx, no w). *)
  ok "pub" (Client.mkdir physics_chen "/plasma/pub");
  ok "grant pub"
    (Client.setacl physics_chen ~path:"/plasma/pub" ~entry:"hostname:*.nowhere.edu rlx");
  ok "pub data"
    (Client.put physics_chen ~path:"/plasma/pub/abstract.txt"
       ~data:"we report seven runs of the plasma study");
  say "kiosk: exec wordcount.exe on a shared abstract...";
  let count =
    ok "exec"
      (Client.exec kiosk ~path:"/wordcount.exe"
         ~args:[ "wordcount"; "/home/coop/export/plasma/pub/abstract.txt" ]
         ~cwd:"/" ())
  in
  say "kiosk: the abstract has %d words (no write right needed)" count;
  (match Client.put kiosk ~path:"/trojan.exe" ~data:"#!evil" with
   | Error Errno.EACCES -> say "kiosk: staging a program -> EACCES (rlx only)"
   | Ok () -> failwith "kiosk write hole!"
   | Error e -> failwith (Errno.message e));
  say "";
  say "total: %d network messages, %.2f ms simulated, 0 admin interventions"
    (Network.total_messages net)
    (Int64.to_float (Clock.now clock) /. 1e6)
