(* Quickstart: the paper's Figure 2 as a real shell session.

   The Unix user dthain creates an identity box for a visitor called
   Freddy — a name that appears in no account database — and a genuine
   (simulated) shell runs inside it: `whoami` resolves through the
   redirected /etc/passwd, `cat` of dthain's private file is denied,
   and Freddy's fresh home directory carries his ACL.

   Run with:  dune exec examples/quickstart.exe *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Shell = Idbox_apps.Shell
module Coreutils = Idbox_apps.Coreutils
module Box = Idbox.Box
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno
module Principal = Idbox_identity.Principal

let say fmt = Printf.printf (fmt ^^ "\n%!")

let ok ctx = function
  | Ok v -> v
  | Error e -> failwith (ctx ^ ": " ^ Errno.message e)

let () =
  (* A host with a shell, core utilities, and the ordinary user dthain. *)
  let kernel = Kernel.create () in
  ok "coreutils" (Coreutils.install kernel);
  ok "shell" (Shell.install kernel);
  let dthain =
    match Kernel.add_user kernel "dthain" with
    | Ok e -> e
    | Error m -> failwith m
  in
  ok "secret"
    (Fs.write_file (Kernel.fs kernel) ~uid:dthain.Account.uid ~mode:0o600
       "/home/dthain/secret" "dthain's private notes\n");
  say "supervising user: dthain (uid %d)" dthain.Account.uid;
  say "dthain$ echo \"...\" > ~/secret        # mode 0600";
  say "dthain$ parrot_identity_box Freddy sh";
  say "";

  (* The identity box — no root, no useradd, any name at all. *)
  let box =
    match
      Box.create kernel ~supervisor_uid:dthain.Account.uid
        ~identity:(Principal.of_string "Freddy") ()
    with
    | Ok box -> box
    | Error e -> failwith (Errno.message e)
  in
  say "  (box created: home=%s; Freddy appears in no account database)"
    (Box.home box);
  say "";

  (* Freddy's session: a real shell interpreting real commands, every
     system call of the shell AND its child utilities trapped. *)
  let code, transcript =
    ok "session"
      (Shell.run_script kernel
         ~spawn:(fun ~main ~args -> Box.spawn_main box ~main ~args)
         ~output:(Box.home box ^ "/.transcript")
         [
           "whoami";
           "cat /home/dthain/secret";
           "echo my results > mydata";
           "cat mydata";
           "ls";
           "getacl .";
           "head -1 /etc/passwd";
           "cat /etc/passwd | wc";
         ])
  in
  print_string transcript;
  say "";
  say "session exited %d; %d syscalls trapped; simulated time %.3f ms" code
    (Kernel.stats kernel).Kernel.trapped
    (Int64.to_float (Kernel.now kernel) /. 1e6)
