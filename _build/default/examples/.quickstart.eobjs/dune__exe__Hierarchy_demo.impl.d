examples/hierarchy_demo.ml: Format Idbox Idbox_identity Idbox_kernel Idbox_workload List Printf Result
