examples/campus_grid.ml: Idbox_acl Idbox_auth Idbox_chirp Idbox_identity Idbox_kernel Idbox_net Idbox_vfs Int64 List Printf String
