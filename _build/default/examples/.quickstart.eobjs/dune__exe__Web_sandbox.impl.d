examples/web_sandbox.ml: Idbox Idbox_identity Idbox_kernel Idbox_vfs List Option Printf
