examples/web_sandbox.mli:
