examples/campus_grid.mli:
