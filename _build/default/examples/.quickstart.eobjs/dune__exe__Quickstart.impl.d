examples/quickstart.ml: Idbox Idbox_apps Idbox_identity Idbox_kernel Idbox_vfs Int64 Printf
