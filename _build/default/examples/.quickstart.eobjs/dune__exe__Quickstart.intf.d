examples/quickstart.mli:
