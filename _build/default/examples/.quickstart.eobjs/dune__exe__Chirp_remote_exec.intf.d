examples/chirp_remote_exec.mli:
