(* Figure 6: the hierarchical identity namespace the paper proposes as
   future work, plus the in-kernel identity box built on it.

   The demo builds the paper's example tree, shows the management
   relationships it induces, and runs the same small workload under the
   ptrace-style box and the in-kernel box to show what the OS-native
   implementation saves.

   Run with:  dune exec examples/hierarchy_demo.exe *)

module Hierarchy = Idbox_identity.Hierarchy
module Runner = Idbox_workload.Runner
module Apps = Idbox_workload.Apps

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  (* ---- the namespace of Figure 6 ------------------------------------ *)
  let ns = Hierarchy.create () in
  let root = Hierarchy.root ns in
  let dthain = Result.get_ok (Hierarchy.create_child root "dthain") in
  let httpd = Result.get_ok (Hierarchy.create_child dthain "httpd") in
  let grid = Result.get_ok (Hierarchy.create_child dthain "grid") in
  let _webapp = Result.get_ok (Hierarchy.create_child httpd "webapp") in
  let visitor = Result.get_ok (Hierarchy.create_child grid "visitor") in
  let _anon2 = Hierarchy.create_anonymous grid in
  let _anon5 = Hierarchy.create_anonymous grid in
  let freddy =
    Result.get_ok (Hierarchy.create_child grid "/O=UnivNowhere/CN=Freddy")
  in
  let george =
    Result.get_ok (Hierarchy.create_child grid "/O=UnivNowhere/CN=George")
  in
  say "the identity tree (every user can mint domains below their own name):";
  Hierarchy.pp_tree Format.std_formatter ns;
  say "";
  say "management relationships follow the tree:";
  let show actor subject =
    say "  %-24s can manage %-44s %b" (Hierarchy.full_name actor)
      (Hierarchy.full_name subject)
      (Hierarchy.can_manage ~actor ~subject)
  in
  show dthain freddy;
  show grid visitor;
  show visitor dthain;
  show httpd freddy;
  say "";
  say "retiring the grid service retires every visitor under it:";
  (match Hierarchy.delete grid with
   | Ok () -> ()
   | Error m -> failwith m);
  say "  after delete: %d domains remain; freddy resolvable: %b"
    (Hierarchy.size ns)
    (Hierarchy.find ns (Hierarchy.full_name freddy) <> None);
  ignore george;
  say "";

  (* ---- live domains under an in-kernel box --------------------------- *)
  let module Kernel = Idbox_kernel.Kernel in
  let module Kbox = Idbox.Kbox in
  let module Libc = Idbox_kernel.Libc in
  let kernel = Kernel.create () in
  let op =
    match Kernel.add_user kernel "dthain" with Ok e -> e | Error m -> failwith m
  in
  let kbox = Kbox.install kernel ~supervisor_uid:op.Idbox_kernel.Account.uid () in
  let spawn_visitor name =
    Kbox.spawn_main kbox
      ~identity:(Idbox_identity.Principal.of_string name)
      ~main:(fun _ ->
        for _ = 1 to 100_000 do
          Libc.compute 1_000_000L
        done;
        0)
      ~args:[ name ]
  in
  let freddy_pid = spawn_visitor "globus:/O=UnivNowhere/CN=Freddy" in
  let george_pid = spawn_visitor "globus:/O=UnivNowhere/CN=George" in
  say "an in-kernel box minted live protection domains:";
  Hierarchy.pp_tree Format.std_formatter (Kbox.namespace kbox);
  Format.pp_print_flush Format.std_formatter ();
  (match
     Kbox.retire kbox
       ~full_name:"root:dthain:grid:globus./O=UnivNowhere/CN=Freddy"
   with
   | Ok n -> say "retired Freddy's domain: %d process(es) terminated" n
   | Error m -> failwith m);
  Kernel.run kernel;
  say "  freddy exit: %s (SIGKILL=137); george exit: %s (unharmed)"
    (match Kernel.exit_code kernel freddy_pid with
     | Some c -> string_of_int c
     | None -> "?")
    (match Kernel.exit_code kernel george_pid with
     | Some c -> string_of_int c
     | None -> "?");
  say "";

  (* ---- what an in-kernel identity box buys --------------------------- *)
  say "same workload, three ways (scale 0.05 of the paper's runs):";
  say "%-8s %14s %14s" "app" "ptrace box" "in-kernel box";
  List.iter
    (fun spec ->
      let rows = Runner.fig6_ablation ~scale:0.05 ~apps:[ spec ] () in
      List.iter
        (fun (app, boxed, kboxed) ->
          say "%-8s %+13.1f%% %+13.1f%%" app boxed kboxed)
        rows)
    [ Apps.ibis; Apps.hf; Apps.make_build ];
  say "";
  say "the protection is identical; only the mechanism cost differs —";
  say "the paper's case for putting identity boxing in the OS proper."
