(* Untrusted web browsing (paper §9): a program downloaded from the web
   runs in an identity box named by the credentials attached to it —
   here "BigSoftwareCorp" — so the ordinary user can try it without
   trusting it.  The box protects the user's files and confines the
   program to its own namespace, while still letting it do legitimate
   work.

   Run with:  dune exec examples/web_sandbox.exe *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Box = Idbox.Box
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno
module Principal = Idbox_identity.Principal

let say fmt = Printf.printf (fmt ^^ "\n%!")

let ok ctx = function
  | Ok v -> v
  | Error e -> failwith (ctx ^ ": " ^ Errno.message e)

(* The "downloaded" program: does some plausible work, then misbehaves. *)
let installer _args =
  let home = Option.get (Libc.getenv "HOME") in
  let attempt what f =
    match f () with
    | Ok _ -> say "  [installer] %-42s ALLOWED" what
    | Error e ->
      say "  [installer] %-42s DENIED (%s)" what (Errno.to_string e)
  in
  (* Legitimate behaviour. *)
  attempt "create its own config" (fun () ->
      Libc.write_file (home ^ "/.bigcorp.rc") ~contents:"theme=dark\n");
  attempt "read its own config" (fun () -> Libc.read_file (home ^ "/.bigcorp.rc"));
  attempt "make a cache directory" (fun () -> Libc.mkdir (home ^ "/cache"));
  (* Misbehaviour. *)
  attempt "read the user's research notes" (fun () ->
      Libc.read_file "/home/alice/notes.txt");
  attempt "trojan the user's bin directory" (fun () ->
      Libc.write_file "/home/alice/bin/ls" ~contents:"#!evil");
  attempt "read /etc/passwd (gets the box's copy)" (fun () ->
      Libc.read_file "/etc/passwd");
  attempt "plant a setuid-style binary in /bin" (fun () ->
      Libc.write_file "/bin/backdoor" ~contents:"#!evil");
  attempt "grant itself rights on /home/alice" (fun () ->
      Libc.setacl ~path:"/home/alice" ~entry:"BigSoftwareCorp rwlxad");
  0

let () =
  let kernel = Kernel.create () in
  let alice =
    match Account.add (Kernel.accounts kernel) "alice" with
    | Ok e -> e
    | Error m -> failwith m
  in
  Kernel.refresh_passwd kernel;
  let fs = Kernel.fs kernel in
  ok "home" (Fs.mkdir_p fs ~uid:0 "/home/alice");
  ok "chown" (Fs.chown fs ~uid:0 ~owner:alice.Account.uid "/home/alice");
  ok "chmod" (Fs.chmod fs ~uid:0 ~mode:0o755 "/home/alice");
  ok "notes"
    (Fs.write_file fs ~uid:alice.Account.uid ~mode:0o600 "/home/alice/notes.txt"
       "unpublished results");
  ok "bin" (Fs.mkdir_p fs ~uid:0 "/home/alice/bin");
  ok "chown2" (Fs.chown fs ~uid:0 ~owner:alice.Account.uid "/home/alice/bin");
  ok "chmod2" (Fs.chmod fs ~uid:0 ~mode:0o700 "/home/alice/bin");

  say "alice downloads bigcorp-installer.exe, signed by \"BigSoftwareCorp\".";
  say "Rather than trusting it, she runs it in an identity box named after";
  say "the signer:";
  say "";
  say "alice$ parrot_identity_box BigSoftwareCorp ./bigcorp-installer.exe";
  say "";

  let box =
    match
      Box.create kernel ~supervisor_uid:alice.Account.uid
        ~identity:(Principal.of_string "BigSoftwareCorp") ~audit:true ()
    with
    | Ok box -> box
    | Error e -> failwith (Errno.message e)
  in
  let pid = Box.spawn_main box ~main:installer ~args:[ "installer" ] in
  Kernel.run kernel;
  say "";
  say "installer exited %s."
    (match Kernel.exit_code kernel pid with
     | Some c -> string_of_int c
     | None -> "?");
  say "";
  (* The forensic angle from the paper's conclusion: what did the
     contained program actually touch? *)
  say "post-mortem: alice's files are intact —";
  say "  notes.txt: %S" (ok "read" (Fs.read_file fs ~uid:alice.Account.uid "/home/alice/notes.txt"));
  say "  /home/alice/bin/ls exists: %b" (Fs.exists fs ~uid:0 "/home/alice/bin/ls");
  say "  /bin/backdoor exists: %b" (Fs.exists fs ~uid:0 "/bin/backdoor");
  say "and everything the program legitimately made sits in its box home:";
  (match Fs.readdir fs ~uid:0 (Box.home box) with
   | Ok names ->
     List.iter (fun n -> if n <> ".__acl" then say "  %s/%s" (Box.home box) n) names
   | Error e -> say "  (readdir: %s)" (Errno.message e));
  say "";
  (* The forensic record the paper's conclusion proposes: the box saw
     everything the untrusted program tried. *)
  (match Box.audit_trail box with
   | None -> ()
   | Some trail ->
     say "forensic audit trail (what BigSoftwareCorp actually did):";
     List.iter
       (fun (ev : Idbox.Audit.event) ->
         say "  %-8s %-42s %s" ev.Idbox.Audit.ev_op ev.Idbox.Audit.ev_path
           (Idbox.Audit.verdict_to_string ev.Idbox.Audit.ev_verdict))
       (Idbox.Audit.events trail);
     say "denied actions: %d of %d recorded"
       (List.length (Idbox.Audit.denied trail))
       (Idbox.Audit.length trail))
