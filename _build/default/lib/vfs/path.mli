(** Slash-separated path manipulation for the simulated filesystem.

    Paths are plain strings at the API boundary; this module provides the
    lexical operations (normalization, joining, splitting) that the
    filesystem and the interposition agent share.  Lexical normalization
    deliberately does {e not} collapse [".."] across symlinks — the
    filesystem resolves components one at a time — but it is used for
    display and for prefix tests on already-resolved paths. *)

val root : string
(** ["/"]. *)

val is_absolute : string -> bool

val components : string -> string list
(** Non-empty components, ["."] removed, [".."] preserved.
    [components "/a//b/./c"] is [["a"; "b"; "c"]]. *)

val of_components : string list -> string
(** Absolute path from components; [of_components []] is ["/"]. *)

val normalize : string -> string
(** Lexical cleanup of an absolute path: collapse [//] and [.], resolve
    [".."] lexically, never above the root. *)

val join : string -> string -> string
(** [join base p] is [p] when [p] is absolute, else the normalized
    concatenation. *)

val basename : string -> string
(** Final component; ["/"] for the root. *)

val dirname : string -> string
(** All but the final component; ["/"] for the root. *)

val split : string -> (string * string) option
(** [split p] is [Some (dirname, basename)], or [None] for the root. *)

val is_prefix : prefix:string -> string -> bool
(** Component-wise prefix test on normalized absolute paths:
    [is_prefix ~prefix:"/a/b" "/a/b/c"] but not ["/a/bc"]. *)

val strip_prefix : prefix:string -> string -> string option
(** [strip_prefix ~prefix:"/a" "/a/b/c"] is [Some "/b/c"];
    the remainder is ["/"] when the paths are equal. *)

val pp : Format.formatter -> string -> unit
