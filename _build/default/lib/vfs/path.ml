let root = "/"

let is_absolute p = String.length p > 0 && p.[0] = '/'

let components p =
  String.split_on_char '/' p
  |> List.filter (fun c -> String.length c > 0 && not (String.equal c "."))

let of_components = function
  | [] -> root
  | comps -> "/" ^ String.concat "/" comps

let normalize p =
  let resolve acc comp =
    match comp with
    | ".." -> (match acc with [] -> [] | _ :: rest -> rest)
    | c -> c :: acc
  in
  components p |> List.fold_left resolve [] |> List.rev |> of_components

let join base p =
  if is_absolute p then normalize p
  else normalize (base ^ "/" ^ p)

let basename p =
  match List.rev (components p) with
  | [] -> root
  | last :: _ -> last

let dirname p =
  match List.rev (components p) with
  | [] | [ _ ] -> root
  | _ :: rest -> of_components (List.rev rest)

let split p =
  match components p with
  | [] -> None
  | comps ->
    let rev = List.rev comps in
    (match rev with
     | [] -> None
     | last :: parents -> Some (of_components (List.rev parents), last))

let is_prefix ~prefix p =
  let rec go pre cs =
    match (pre, cs) with
    | [], _ -> true
    | _ :: _, [] -> false
    | a :: pre', b :: cs' -> String.equal a b && go pre' cs'
  in
  go (components prefix) (components p)

let strip_prefix ~prefix p =
  let rec go pre cs =
    match (pre, cs) with
    | [], rest -> Some (of_components rest)
    | _ :: _, [] -> None
    | a :: pre', b :: cs' -> if String.equal a b then go pre' cs' else None
  in
  go (components prefix) (components p)

let pp ppf p = Format.pp_print_string ppf p
