type access =
  | R
  | W
  | X

let bit_of = function R -> 4 | W -> 2 | X -> 1

let check ~uid ~owner ~mode access =
  let b = bit_of access in
  if uid = 0 then
    (* Root bypasses permission checks, except execute requires at least
       one execute bit somewhere, as on Linux. *)
    (match access with
     | X -> mode land 0o111 <> 0
     | R | W -> true)
  else
    let cls = if uid = owner then (mode lsr 6) land 7 else mode land 7 in
    cls land b <> 0

let default_file_mode = 0o644

let default_dir_mode = 0o755

let private_file_mode = 0o600

let to_string ~mode =
  let triple shift =
    let bits = (mode lsr shift) land 7 in
    let c b ch = if bits land b <> 0 then ch else '-' in
    Printf.sprintf "%c%c%c" (c 4 'r') (c 2 'w') (c 1 'x')
  in
  triple 6 ^ triple 3 ^ triple 0

let pp ppf mode = Format.pp_print_string ppf (to_string ~mode)
