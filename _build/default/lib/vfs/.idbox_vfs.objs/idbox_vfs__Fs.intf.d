lib/vfs/fs.mli: Errno Inode
