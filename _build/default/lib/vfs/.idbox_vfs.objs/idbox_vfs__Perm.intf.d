lib/vfs/perm.mli: Format
