lib/vfs/inode.ml: Buffer Bytes Hashtbl List String
