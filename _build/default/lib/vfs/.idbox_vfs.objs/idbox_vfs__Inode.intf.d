lib/vfs/inode.mli:
