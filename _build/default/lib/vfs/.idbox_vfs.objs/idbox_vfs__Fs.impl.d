lib/vfs/fs.ml: Errno Inode List Path Perm Result String
