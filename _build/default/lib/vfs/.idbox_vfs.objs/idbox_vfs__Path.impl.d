lib/vfs/path.ml: Format List String
