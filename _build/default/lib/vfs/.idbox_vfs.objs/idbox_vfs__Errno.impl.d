lib/vfs/errno.ml: Format List String
