lib/vfs/perm.ml: Format Printf
