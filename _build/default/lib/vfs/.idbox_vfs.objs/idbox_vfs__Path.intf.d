lib/vfs/path.mli: Format
