(** Unix permission bits and the classic owner/other access check.

    The simulated kernel models owner and other classes (groups are not
    needed by any experiment in the paper; the visiting-user fallback
    treats the visitor as [nobody], which is never the owner).  The
    superuser (uid 0) passes every check except execute on a file with no
    execute bit at all, matching Linux behaviour. *)

type access =
  | R  (** read *)
  | W  (** write *)
  | X  (** execute / search *)

val check : uid:int -> owner:int -> mode:int -> access -> bool
(** [check ~uid ~owner ~mode a]: does [uid] have [a] on a file owned by
    [owner] with permission bits [mode] (e.g. [0o644])? *)

val default_file_mode : int
(** [0o644]. *)

val default_dir_mode : int
(** [0o755]. *)

val private_file_mode : int
(** [0o600]: owner-only, like the supervisor's [secret] file in Fig. 2. *)

val to_string : mode:int -> string
(** Render bits in [ls -l] style, e.g. ["rw-r--r--"]. *)

val pp : Format.formatter -> int -> unit
