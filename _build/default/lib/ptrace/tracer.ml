module Kernel = Idbox_kernel.Kernel
module Syscall = Idbox_kernel.Syscall
module Trace = Idbox_kernel.Trace
module Cost = Idbox_kernel.Cost

let make kernel ~on_entry ~on_exit ?(on_event = fun _ -> ()) () =
  let decode_cost = (Kernel.cost kernel).Cost.supervisor_decode in
  let entry ~pid req =
    (* Entry stop: peek registers and argument memory, then decide. *)
    Kernel.note_peek_poke kernel ~words:(Syscall.argument_words req);
    Kernel.charge kernel decode_cost;
    let action = on_entry ~pid req in
    (match action with
     | Trace.Pass -> ()
     | Trace.Rewrite req' ->
       (* Poke the rewritten registers/arguments into the tracee. *)
       Kernel.note_peek_poke kernel ~words:(Syscall.argument_words req')
     | Trace.Deny _ ->
       (* Nullification pokes just the syscall-number register. *)
       Kernel.note_peek_poke kernel ~words:1);
    action
  in
  let exit ~pid req result =
    let action = on_exit ~pid req result in
    let final =
      match action with Trace.Keep -> result | Trace.Replace r -> r
    in
    (* Exit stop: poke the (possibly replaced) result back. *)
    Kernel.note_peek_poke kernel ~words:(Syscall.result_words final);
    action
  in
  { Trace.on_entry = entry; on_exit = exit; on_event }

let attach kernel pid handler = Kernel.set_tracer kernel pid (Some handler)

let detach kernel pid = Kernel.set_tracer kernel pid None
