(** Building [ptrace]-style supervisors with faithful data-movement
    accounting.

    {!make} wraps user callbacks into a {!Idbox_kernel.Trace.handler}
    that automatically charges what a real debugger-interface supervisor
    pays beyond context switches: PEEKing the tracee's registers and
    argument memory at every entry stop, POKEing rewritten registers and
    results at every exit stop, and a fixed per-call decode cost. *)

val make :
  Idbox_kernel.Kernel.t ->
  on_entry:(pid:int -> Idbox_kernel.Syscall.request -> Idbox_kernel.Trace.entry_action) ->
  on_exit:
    (pid:int ->
    Idbox_kernel.Syscall.request ->
    Idbox_kernel.Syscall.result ->
    Idbox_kernel.Trace.exit_action) ->
  ?on_event:(Idbox_kernel.Trace.event -> unit) ->
  unit ->
  Idbox_kernel.Trace.handler
(** The returned handler charges, per trapped call:
    - {!Idbox_kernel.Syscall.argument_words} PEEKs plus the decode cost
      before invoking [on_entry];
    - POKEs for a rewritten request (its argument words) when [on_entry]
      answers [Rewrite] or [Deny];
    - {!Idbox_kernel.Syscall.result_words} POKEs after [on_exit] decides
      the final result. *)

val attach : Idbox_kernel.Kernel.t -> int -> Idbox_kernel.Trace.handler -> unit
(** Attach a handler to a live process ([Kernel.set_tracer]). *)

val detach : Idbox_kernel.Kernel.t -> int -> unit
(** Stop tracing a process. *)
