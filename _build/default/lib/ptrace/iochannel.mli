(** The I/O channel: the shared buffer through which bulk data moves
    between a tracee and its supervisor (paper §5, Fig. 4b).

    Recent kernels refuse writes to [/proc/pid/mem], so the supervisor
    cannot poke large buffers directly; instead it keeps a small
    in-memory file mapped into its own address space while every tracee
    holds a plain descriptor to it.  A trapped [read] becomes a [pread]
    on the channel after the supervisor stages the data there; a trapped
    [write] becomes a [pwrite] into the channel, which the supervisor
    then copies out.  Each direction costs one extra copy — the term the
    cost model charges via {!Idbox_kernel.Kernel.note_channel_copy}. *)

type t

val channel_fd : int
(** The descriptor number injected into every tracee: 3 (just past the
    stdio trio, as Parrot does). *)

val create :
  Idbox_kernel.Kernel.t ->
  supervisor:Idbox_kernel.View.t ->
  ?size:int ->
  unit ->
  (t, Idbox_vfs.Errno.t) result
(** Create the backing file (under [/tmp], supervisor-owned, mode 0600)
    and open it in the supervisor's descriptor table.  [size] (default
    1 MiB) bounds a single staged transfer. *)

val path : t -> string

val attach : t -> Idbox_kernel.View.t -> unit
(** Install {!channel_fd} in a tracee's descriptor table. *)

val stage : t -> string -> int
(** [stage t data] copies [data] into the channel (supervisor-side
    memcpy: charged as a channel copy, not a syscall) and returns the
    offset at which the tracee should [pread] it.  Transfers larger
    than the channel size raise [Invalid_argument]. *)

val collect : t -> off:int -> len:int -> string
(** Supervisor-side copy out of the channel after a tracee [pwrite]
    (charged as a channel copy). *)

val reserve : t -> int -> int
(** [reserve t len] allocates an offset range for an incoming tracee
    [pwrite] without copying anything. *)
