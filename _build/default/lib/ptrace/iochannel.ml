module Kernel = Idbox_kernel.Kernel
module View = Idbox_kernel.View
module Fd_table = Idbox_kernel.Fd_table
module Syscall = Idbox_kernel.Syscall
module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode

type t = {
  kernel : Kernel.t;
  ch_path : string;
  inode : Inode.t;
  size : int;
  mutable next_off : int;
}

let channel_fd = 3

let counter = ref 0

let create kernel ~supervisor ?(size = 1 lsl 20) () =
  incr counter;
  let ch_path = Printf.sprintf "/tmp/.parrot_channel_%d" !counter in
  let flags =
    { Fs.rd = true; wr = true; creat = true; excl = true; trunc = false;
      append = false }
  in
  match
    Kernel.delegate kernel supervisor
      (Syscall.Open { path = ch_path; flags; mode = 0o600 })
  with
  | Error e -> Error e
  | Ok (Syscall.Int fd) ->
    (match Fd_table.find supervisor.View.fds fd with
     | None -> assert false
     | Some f -> Ok { kernel; ch_path; inode = f.Fd_table.inode; size; next_off = 0 })
  | Ok _ -> assert false

let path t = t.ch_path

let attach t (view : View.t) =
  let flags =
    { Fs.rd = true; wr = true; creat = false; excl = false; trunc = false;
      append = false }
  in
  Fd_table.alloc_at view.View.fds channel_fd
    { Fd_table.inode = t.inode; of_path = t.ch_path; flags; pos = 0 }

let reserve t len =
  if len > t.size then
    invalid_arg
      (Printf.sprintf "Iochannel: transfer of %d bytes exceeds channel size %d" len
         t.size);
  let off = if t.next_off + len > t.size then 0 else t.next_off in
  t.next_off <- off + len;
  off

let stage t data =
  let len = String.length data in
  let off = reserve t len in
  (* The supervisor has the channel mapped: staging is a memcpy, not a
     system call. *)
  ignore (Inode.write t.inode ~off (Bytes.of_string data));
  Kernel.note_channel_copy t.kernel ~bytes:len;
  off

let collect t ~off ~len =
  Kernel.note_channel_copy t.kernel ~bytes:len;
  Bytes.to_string (Inode.read t.inode ~off ~len)
