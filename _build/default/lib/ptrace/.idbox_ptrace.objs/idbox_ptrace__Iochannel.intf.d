lib/ptrace/iochannel.mli: Idbox_kernel Idbox_vfs
