lib/ptrace/tracer.mli: Idbox_kernel
