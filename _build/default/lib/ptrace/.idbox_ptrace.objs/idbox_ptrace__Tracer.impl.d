lib/ptrace/tracer.ml: Idbox_kernel
