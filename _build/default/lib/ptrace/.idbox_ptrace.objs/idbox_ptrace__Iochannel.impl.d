lib/ptrace/iochannel.ml: Bytes Idbox_kernel Idbox_vfs Printf String
