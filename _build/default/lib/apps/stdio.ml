module Libc = Idbox_kernel.Libc
module Fs = Idbox_vfs.Fs

let stdout_fd () =
  match Libc.getenv "STDOUT_FD" with
  | Some text -> int_of_string_opt text
  | None -> None

let print s =
  match stdout_fd () with
  | Some fd -> ignore (Libc.write fd s)
  | None ->
    (match Libc.getenv "STDOUT" with
     | None -> ()
     | Some path ->
       let flags =
         { Fs.rd = false; wr = true; creat = true; excl = false; trunc = false;
           append = true }
       in
       (match Libc.open_file ~flags path with
        | Error _ -> ()
        | Ok fd ->
          ignore (Libc.write fd s);
          ignore (Libc.close fd)))

let read_stdin () =
  match Libc.getenv "STDIN_FD" with
  | None -> None
  | Some fd_text ->
    (match int_of_string_opt fd_text with
     | None -> None
     | Some fd ->
       let buf = Buffer.create 256 in
       let rec loop () =
         match Libc.read fd ~len:8192 with
         | Ok "" | Error _ -> Some (Buffer.contents buf)
         | Ok chunk ->
           Buffer.add_string buf chunk;
           loop ()
       in
       loop ())

let print_line s = print (s ^ "\n")

let printf fmt = Printf.ksprintf print fmt

let read_back kernel path =
  Fs.read_file (Idbox_kernel.Kernel.fs kernel) ~uid:0 path
