(** Standard output for simulated programs.

    The simulated kernel has no terminals; programs direct their output
    to the file named by the [STDOUT] environment variable (append
    mode), which a shell sets for its children and a test reads back
    afterwards.  With no [STDOUT] set, output is discarded — a detached
    job. *)

val print : string -> unit
(** Write a string to the program's output: the descriptor named by
    [STDOUT_FD] when set (a pipeline stage), else append to the
    [STDOUT] file. *)

val read_stdin : unit -> string option
(** Read the whole input stream from the descriptor named by
    [STDIN_FD]; [None] when the program has no standard input. *)

val print_line : string -> unit
(** Append a line. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** [Printf]-style {!print}. *)

val read_back :
  Idbox_kernel.Kernel.t -> string -> (string, Idbox_vfs.Errno.t) result
(** Host-side helper: read a program's output file (as root). *)
