(** Simulated core utilities — the everyday programs the paper reports
    running under Parrot ("a large number of basic utilities such as
    grep, less, cp, mv, ls, and rm").

    Each utility is an ordinary simulated program: it makes system
    calls, honours its environment, writes to {!Stdio}, and returns a
    Unix-style exit code.  [whoami] is deliberately implemented the long
    way — scanning [/etc/passwd] for the caller's uid — because that is
    exactly the path the identity box redirects to make "whoami and
    similar tools produce sensible output" (paper §3). *)

val cat : Idbox_kernel.Program.main
(** [cat FILE...] — concatenate files to stdout. *)

val ls : Idbox_kernel.Program.main
(** [ls [PATH]] — one entry per line, sorted (cwd by default). *)

val cp : Idbox_kernel.Program.main
(** [cp SRC DST]. *)

val mv : Idbox_kernel.Program.main
(** [mv SRC DST]. *)

val rm : Idbox_kernel.Program.main
(** [rm FILE...]. *)

val mkdir : Idbox_kernel.Program.main
(** [mkdir DIR...]. *)

val ln : Idbox_kernel.Program.main
(** [ln [-s] TARGET PATH]. *)

val whoami : Idbox_kernel.Program.main
(** [whoami] — first [/etc/passwd] entry matching the caller's uid. *)

val wc : Idbox_kernel.Program.main
(** [wc FILE] — prints "lines words bytes". *)

val head : Idbox_kernel.Program.main
(** [head -N FILE] (default 10 lines). *)

val names : string list
(** The utilities installed by {!install}, sorted. *)

val install : Idbox_kernel.Kernel.t -> (unit, Idbox_vfs.Errno.t) result
(** Register every utility and write its executable under [/bin] of the
    given host (mode 0755), like a distribution's package. *)
