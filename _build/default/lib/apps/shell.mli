(** A small command shell, as a simulated program — the [tcsh] of
    Figure 2.

    The shell interprets one command per argv element (a scripted
    session).  Built-ins run in-process: [cd], [pwd], [echo] (with [>]
    and [>>] redirection), [getacl], [setacl], [id], [exit].  Anything
    else is resolved against [$PATH] (default [/bin]), spawned as a
    child process — which, inside an identity box, means the child is
    traced and confined exactly like its parent — and waited for.

    Pipelines ([cmd1 | cmd2 | ...]) connect external commands through
    real kernel pipes.  Stages run in order, each buffering into the
    (unbounded) pipe its successor drains — equivalent to streaming for
    batch pipelines, and every write end is closed before the consumer
    runs, so EOF always arrives.  Built-ins cannot appear in a
    pipeline.

    Output goes to {!Stdio} (the [$STDOUT] file), and the shell prints a
    [$ cmd] echo line before each command so a captured transcript reads
    like the paper's Figure 2.  The exit status is that of the last
    command (or the [exit] argument). *)

val main : Idbox_kernel.Program.main

val install : Idbox_kernel.Kernel.t -> (unit, Idbox_vfs.Errno.t) result
(** Register the shell and write [/bin/sh] (mode 0755). *)

val run_script :
  Idbox_kernel.Kernel.t ->
  spawn:(main:Idbox_kernel.Program.main -> args:string list -> int) ->
  output:string ->
  string list ->
  (int * string, Idbox_vfs.Errno.t) result
(** Host-side convenience: run a scripted session through [spawn] (e.g.
    [Box.spawn_main box] or a plain [Kernel.spawn_main]), with transcript
    capture to the simulated file [output]; drives the kernel and returns
    [(exit code, transcript)]. *)
