lib/apps/shell.mli: Idbox_kernel Idbox_vfs
