lib/apps/coreutils.ml: Idbox_kernel Idbox_vfs List Option Stdio String
