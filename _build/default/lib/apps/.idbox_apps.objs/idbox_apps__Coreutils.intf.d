lib/apps/coreutils.mli: Idbox_kernel Idbox_vfs
