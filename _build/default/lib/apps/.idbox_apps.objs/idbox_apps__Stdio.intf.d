lib/apps/stdio.mli: Idbox_kernel Idbox_vfs
