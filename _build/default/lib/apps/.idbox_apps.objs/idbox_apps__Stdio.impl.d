lib/apps/stdio.ml: Buffer Idbox_kernel Idbox_vfs Printf
