module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Kernel = Idbox_kernel.Kernel
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* echo TEXT... [>|>> FILE] *)
let builtin_echo words =
  let rec split_redirect acc = function
    | [ ">"; file ] -> (List.rev acc, Some (file, false))
    | [ ">>"; file ] -> (List.rev acc, Some (file, true))
    | w :: rest -> split_redirect (w :: acc) rest
    | [] -> (List.rev acc, None)
  in
  let text_words, redirect = split_redirect [] words in
  let text = String.concat " " text_words ^ "\n" in
  match redirect with
  | None ->
    Stdio.print text;
    0
  | Some (file, append) ->
    let flags =
      { Fs.rd = false; wr = true; creat = true; excl = false;
        trunc = not append; append }
    in
    (match Libc.open_file ~flags file with
     | Error e ->
       Stdio.printf "sh: %s: %s\n" file (Errno.message e);
       1
     | Ok fd ->
       let r = Libc.write fd text in
       ignore (Libc.close fd);
       (match r with Ok _ -> 0 | Error _ -> 1))

let resolve_command cmd =
  if String.contains cmd '/' then cmd
  else
    let bin = match Libc.getenv "PATH" with Some p -> p | None -> "/bin" in
    bin ^ "/" ^ cmd

(* Run one command with optional pipe ends as its standard streams.
   Children inherit the environment at spawn time, so the fd numbers are
   published through it and cleared afterwards (an unparsable value
   reads as "no stream"). *)
let run_stage ?stdin_fd ?stdout_fd cmd args =
  let publish name fd =
    Libc.setenv name (match fd with Some n -> string_of_int n | None -> "")
  in
  publish "STDIN_FD" stdin_fd;
  publish "STDOUT_FD" stdout_fd;
  let status =
    match Libc.spawn (resolve_command cmd) ~args:(cmd :: args) with
    | Error e ->
      Stdio.printf "sh: %s: %s\n" cmd (Errno.message e);
      127
    | Ok pid ->
      (match Libc.waitpid pid with
       | Ok (_, status) -> status
       | Error _ -> 127)
  in
  publish "STDIN_FD" None;
  publish "STDOUT_FD" None;
  status

let run_external cmd args = run_stage cmd args

(* A pipeline runs its stages in order, each buffering into a kernel
   pipe the next stage drains; for batch pipelines this is equivalent to
   streaming (the pipe is unbounded), and EOF arrives because every
   write end is closed before the consumer runs. *)
let run_pipeline stages =
  let rec loop stdin_fd = function
    | [] -> 0
    | [ (cmd, args) ] ->
      let status = run_stage ?stdin_fd cmd args in
      (match stdin_fd with Some fd -> ignore (Libc.close fd) | None -> ());
      status
    | (cmd, args) :: rest ->
      (match Libc.pipe () with
       | Error e ->
         Stdio.printf "sh: pipe: %s\n" (Errno.message e);
         127
       | Ok (rd, wr) ->
         ignore (run_stage ?stdin_fd ~stdout_fd:wr cmd args);
         ignore (Libc.close wr);
         (match stdin_fd with Some fd -> ignore (Libc.close fd) | None -> ());
         loop (Some rd) rest)
  in
  loop None stages

exception Exit_shell of int

let split_pipeline toks =
  let rec go acc cur = function
    | [] -> List.rev (List.rev cur :: acc)
    | "|" :: rest -> go (List.rev cur :: acc) [] rest
    | tok :: rest -> go acc (tok :: cur) rest
  in
  go [] [] toks

let builtins = [ "cd"; "pwd"; "echo"; "getacl"; "setacl"; "id"; "exit" ]

let execute line =
  let toks = tokens line in
  if List.mem "|" toks then
    let stages = split_pipeline toks in
    if List.exists (function [] -> true | cmd :: _ -> List.mem cmd builtins) stages
    then begin
      Stdio.print_line "sh: only external commands can be piped";
      2
    end
    else
      run_pipeline
        (List.map (function cmd :: args -> (cmd, args) | [] -> assert false) stages)
  else
  match toks with
  | [] -> 0
  | cmd :: args ->
    (match (cmd, args) with
     | "cd", [ dir ] ->
       (match Libc.chdir dir with
        | Ok () -> 0
        | Error e ->
          Stdio.printf "sh: cd: %s: %s\n" dir (Errno.message e);
          1)
     | "pwd", [] ->
       Stdio.print_line (Libc.getcwd ());
       0
     | "echo", words -> builtin_echo words
     | "getacl", [ path ] ->
       (match Libc.getacl path with
        | Ok text ->
          Stdio.print text;
          0
        | Error e ->
          Stdio.printf "sh: getacl: %s\n" (Errno.message e);
          1)
     | "setacl", path :: who :: rights ->
       let entry = who ^ " " ^ String.concat " " rights in
       (match Libc.setacl ~path ~entry with
        | Ok () -> 0
        | Error e ->
          Stdio.printf "sh: setacl: %s\n" (Errno.message e);
          1)
     | "id", [] ->
       Stdio.printf "uid=%d(%s)\n" (Libc.getuid ()) (Libc.get_user_name ());
       0
     | "exit", [] -> raise (Exit_shell 0)
     | "exit", [ code ] ->
       raise (Exit_shell (Option.value ~default:2 (int_of_string_opt code)))
     | _ -> run_external cmd args)

let main args =
  let script = match args with _ :: rest -> rest | [] -> [] in
  try
    List.fold_left
      (fun _last line ->
        Stdio.printf "$ %s\n" line;
        execute line)
      0 script
  with Exit_shell code -> code

let shell_program_name = "sh"

let install kernel =
  Program.register shell_program_name main;
  match
    Fs.write_file (Kernel.fs kernel) ~uid:0 ~mode:0o755 "/bin/sh"
      (Program.marker shell_program_name)
  with
  | Ok () -> Ok ()
  | Error _ as e -> e

let run_script kernel ~spawn ~output script =
  let wrapped _args =
    Libc.setenv "STDOUT" output;
    main ("sh" :: script)
  in
  let pid = spawn ~main:wrapped ~args:("sh" :: script) in
  Kernel.run kernel;
  match Kernel.exit_code kernel pid with
  | None -> Error Errno.EAGAIN
  | Some code ->
    (match Stdio.read_back kernel output with
     | Ok transcript -> Ok (code, transcript)
     | Error Errno.ENOENT -> Ok (code, "")
     | Error e -> Error e)
