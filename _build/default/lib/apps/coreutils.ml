module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Kernel = Idbox_kernel.Kernel
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

(* Exit codes follow the coreutils convention: 0 ok, 1 operational
   failure, 2 usage error. *)

let cat args =
  match args with
  | [ _ ] ->
    (* No operands: copy standard input (a pipeline stage). *)
    (match Stdio.read_stdin () with
     | Some text ->
       Stdio.print text;
       0
     | None -> 2)
  | _ :: (_ :: _ as files) ->
    List.fold_left
      (fun code file ->
        match Libc.read_file file with
        | Ok text ->
          Stdio.print text;
          code
        | Error e ->
          Stdio.printf "cat: %s: %s\n" file (Errno.message e);
          1)
      0 files
  | [] -> 2

let ls args =
  let path = match args with _ :: p :: _ -> p | _ -> "." in
  match Libc.readdir path with
  | Ok names ->
    List.iter Stdio.print_line names;
    0
  | Error Errno.ENOTDIR ->
    (* ls on a file prints the file, as the real one does. *)
    Stdio.print_line path;
    0
  | Error e ->
    Stdio.printf "ls: %s: %s\n" path (Errno.message e);
    1

let cp args =
  match args with
  | [ _; src; dst ] ->
    (match Libc.read_file src with
     | Error e ->
       Stdio.printf "cp: %s: %s\n" src (Errno.message e);
       1
     | Ok data ->
       (match Libc.write_file dst ~contents:data with
        | Ok () -> 0
        | Error e ->
          Stdio.printf "cp: %s: %s\n" dst (Errno.message e);
          1))
  | _ -> 2

let mv args =
  match args with
  | [ _; src; dst ] ->
    (match Libc.rename ~src ~dst with
     | Ok () -> 0
     | Error e ->
       Stdio.printf "mv: %s: %s\n" src (Errno.message e);
       1)
  | _ -> 2

let rm args =
  match args with
  | _ :: (_ :: _ as files) ->
    List.fold_left
      (fun code file ->
        match Libc.unlink file with
        | Ok () -> code
        | Error e ->
          Stdio.printf "rm: %s: %s\n" file (Errno.message e);
          1)
      0 files
  | _ -> 2

let mkdir args =
  match args with
  | _ :: (_ :: _ as dirs) ->
    List.fold_left
      (fun code dir ->
        match Libc.mkdir dir with
        | Ok () -> code
        | Error e ->
          Stdio.printf "mkdir: %s: %s\n" dir (Errno.message e);
          1)
      0 dirs
  | _ -> 2

let ln args =
  let result =
    match args with
    | [ _; "-s"; target; path ] -> Some (Libc.symlink ~target path, target)
    | [ _; target; path ] -> Some (Libc.link ~target path, target)
    | _ -> None
  in
  match result with
  | None -> 2
  | Some (Ok (), _) -> 0
  | Some (Error e, target) ->
    Stdio.printf "ln: %s: %s\n" target (Errno.message e);
    1

(* The paper's whoami path: getuid, then scan /etc/passwd for the first
   matching entry.  Inside a box the scan hits the private copy whose
   first line maps the visiting identity to the supervisor's uid. *)
let whoami _args =
  let uid = Libc.getuid () in
  match Libc.read_file "/etc/passwd" with
  | Error e ->
    Stdio.printf "whoami: /etc/passwd: %s\n" (Errno.message e);
    1
  | Ok text ->
    let entry_matches line =
      match String.split_on_char ':' line with
      | name :: _pw :: uid_text :: _ when int_of_string_opt uid_text = Some uid ->
        Some name
      | _ -> None
    in
    (match List.find_map entry_matches (String.split_on_char '\n' text) with
     | Some name ->
       Stdio.print_line name;
       0
     | None ->
       Stdio.printf "whoami: cannot find name for user ID %d\n" uid;
       1)

let wc args =
  let source =
    match args with
    | [ _; file ] ->
      (match Libc.read_file file with
       | Error e ->
         Stdio.printf "wc: %s: %s\n" file (Errno.message e);
         None
       | Ok text -> Some (file, text))
    | [ _ ] ->
      (match Stdio.read_stdin () with
       | Some text -> Some ("-", text)
       | None -> None)
    | _ -> None
  in
  match source with
  | None -> 1
  | Some (file, text) ->
    let lines =
      String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text
    in
    let words =
      String.split_on_char ' ' (String.map (fun c -> if c = '\n' then ' ' else c) text)
      |> List.filter (fun w -> w <> "")
      |> List.length
    in
    Stdio.printf "%d %d %d %s\n" lines words (String.length text) file;
    0

let head args =
  let parse_count flag =
    if String.length flag > 1 && flag.[0] = '-' then
      int_of_string_opt (String.sub flag 1 (String.length flag - 1))
    else None
  in
  let n, source =
    match args with
    | [ _; flag; file ] when parse_count flag <> None ->
      (Option.get (parse_count flag), `File file)
    | [ _; flag ] when parse_count flag <> None ->
      (Option.get (parse_count flag), `Stdin)
    | [ _; file ] -> (10, `File file)
    | [ _ ] -> (10, `Stdin)
    | _ -> (10, `Usage)
  in
  let emit text =
    let lines = String.split_on_char '\n' text in
    List.iteri (fun i line -> if i < n then Stdio.print_line line) lines;
    0
  in
  match source with
  | `Usage -> 2
  | `Stdin ->
    (match Stdio.read_stdin () with Some text -> emit text | None -> 2)
  | `File file ->
    (match Libc.read_file file with
     | Error e ->
       Stdio.printf "head: %s: %s\n" file (Errno.message e);
       1
     | Ok text -> emit text)

let table : (string * Program.main) list =
  [
    ("cat", cat); ("ls", ls); ("cp", cp); ("mv", mv); ("rm", rm);
    ("mkdir", mkdir); ("ln", ln); ("whoami", whoami); ("wc", wc); ("head", head);
  ]

let names = List.sort String.compare (List.map fst table)

let install kernel =
  let fs = Kernel.fs kernel in
  let rec go = function
    | [] -> Ok ()
    | (name, main) :: rest ->
      Program.register ("coreutils-" ^ name) main;
      (match
         Fs.write_file fs ~uid:0 ~mode:0o755 ("/bin/" ^ name)
           (Program.marker ("coreutils-" ^ name))
       with
       | Ok () -> go rest
       | Error _ as e -> e)
  in
  go table
