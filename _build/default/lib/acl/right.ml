type t =
  | Read
  | Write
  | List
  | Execute
  | Admin
  | Delete

let all = [ Read; Write; List; Execute; Admin; Delete ]

let to_char = function
  | Read -> 'r'
  | Write -> 'w'
  | List -> 'l'
  | Execute -> 'x'
  | Admin -> 'a'
  | Delete -> 'd'

let of_char = function
  | 'r' -> Some Read
  | 'w' -> Some Write
  | 'l' -> Some List
  | 'x' -> Some Execute
  | 'a' -> Some Admin
  | 'd' -> Some Delete
  | _ -> None

let describe = function
  | Read -> "read file contents"
  | Write -> "write or create files"
  | List -> "list directory entries"
  | Execute -> "execute programs"
  | Admin -> "modify the access control list"
  | Delete -> "remove files or directories"

let equal (a : t) b = a = b

let index = function
  | Read -> 0
  | Write -> 1
  | List -> 2
  | Execute -> 3
  | Admin -> 4
  | Delete -> 5

let compare a b = Int.compare (index a) (index b)

let pp ppf t = Format.pp_print_char ppf (to_char t)
