(** Individual access rights, as used in identity-box ACL entries.

    The paper's rights string ["rwlax"] plus the delete right used by
    Chirp.  The reserve right [v(...)] is not a {!t}: it is represented
    structurally on the ACL entry (see {!Entry}), because it carries the
    set of rights to be granted in a reserved namespace. *)

type t =
  | Read  (** [r]: read a file's contents. *)
  | Write  (** [w]: write or create files. *)
  | List  (** [l]: list directory entries and stat files. *)
  | Execute  (** [x]: execute a program. *)
  | Admin  (** [a]: modify the ACL itself. *)
  | Delete  (** [d]: remove files or directories. *)

val all : t list
(** Every right, in canonical [r w l x a d] order. *)

val to_char : t -> char
(** The single-character code used in ACL files. *)

val of_char : char -> t option
(** Inverse of {!to_char}; [None] for unknown characters. *)

val describe : t -> string
(** A short human-readable description, for diagnostics. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
