(** Sets of access rights, with the compact string syntax of ACL files. *)

type t
(** An immutable set of {!Right.t}. *)

val empty : t
val full : t
(** [full] is [rwlxad]: every right. *)

val of_list : Right.t list -> t
val to_list : t -> Right.t list
(** In canonical [r w l x a d] order. *)

val singleton : Right.t -> t
val add : Right.t -> t -> t
val remove : Right.t -> t -> t
val mem : Right.t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] holds when every right of [a] is in [b]. *)

val is_empty : t -> bool
val cardinal : t -> int

val of_string : string -> (t, string) result
(** Parse a rights string such as ["rwlax"].  Order and repetition are
    irrelevant; unknown characters are errors. *)

val of_string_exn : string -> t
(** Like {!of_string}; raises [Invalid_argument] on bad input. *)

val to_string : t -> string
(** Canonical compact form, e.g. ["rwlx"].  The empty set renders as
    ["-"] so ACL files never contain an empty field. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
