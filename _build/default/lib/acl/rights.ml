(* Rights sets are small (six members), so a bitmask is the natural
   representation. *)
type t = int

let bit r = 1 lsl (match r with
  | Right.Read -> 0
  | Right.Write -> 1
  | Right.List -> 2
  | Right.Execute -> 3
  | Right.Admin -> 4
  | Right.Delete -> 5)

let empty = 0

let of_list rs = List.fold_left (fun acc r -> acc lor bit r) 0 rs

let full = of_list Right.all

let to_list t = List.filter (fun r -> t land bit r <> 0) Right.all

let singleton r = bit r

let add r t = t lor bit r

let remove r t = t land lnot (bit r)

let mem r t = t land bit r <> 0

let union = ( lor )

let inter = ( land )

let subset a b = a land b = a

let is_empty t = t = 0

let cardinal t = List.length (to_list t)

let of_string s =
  if String.equal s "-" then Ok empty
  else
    let rec loop i acc =
      if i >= String.length s then Ok acc
      else
        match Right.of_char s.[i] with
        | Some r -> loop (i + 1) (add r acc)
        | None -> Error (Printf.sprintf "unknown right %C in %S" s.[i] s)
    in
    loop 0 empty

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Rights.of_string_exn: " ^ msg)

let to_string t =
  if is_empty t then "-"
  else String.of_seq (List.to_seq (List.map Right.to_char (to_list t)))

let equal (a : t) b = a = b

let pp ppf t = Format.pp_print_string ppf (to_string t)
