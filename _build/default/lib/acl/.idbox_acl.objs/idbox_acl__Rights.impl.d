lib/acl/rights.ml: Format List Printf Right String
