lib/acl/entry.mli: Format Idbox_identity Rights
