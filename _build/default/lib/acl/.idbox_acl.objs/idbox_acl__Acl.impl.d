lib/acl/acl.ml: Entry Format Idbox_identity List Rights String
