lib/acl/acl.mli: Entry Format Idbox_identity Right Rights
