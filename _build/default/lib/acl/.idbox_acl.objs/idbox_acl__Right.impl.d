lib/acl/right.ml: Format Int
