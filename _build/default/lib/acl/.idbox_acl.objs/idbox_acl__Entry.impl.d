lib/acl/entry.ml: Format Idbox_identity List Option Printf Rights String
