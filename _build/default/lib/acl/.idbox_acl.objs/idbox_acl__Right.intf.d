lib/acl/right.mli: Format
