lib/acl/rights.mli: Format Right
