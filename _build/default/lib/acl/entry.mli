(** One line of an ACL: a principal pattern and its granted rights.

    The textual form mirrors the paper's examples:

    {v
    /O=UnivNowhere/CN=Fred   rwlax
    hostname:*.nowhere.edu   rlx
    globus:/O=UnivNowhere/*  v(rwlax)
    v}

    An entry may also combine direct rights with a reserve grant, e.g.
    ["rlx v(rwlax)"]: the holder may read/list/execute here, and a
    [mkdir] mints a fresh directory whose ACL grants the holder [rwlax]. *)

type t = {
  pattern : Idbox_identity.Wildcard.t;
      (** Which principals this entry covers (wildcards allowed). *)
  rights : Rights.t;  (** Rights granted directly in this directory. *)
  reserve : Rights.t option;
      (** [Some g]: the reserve right [v(g)] — a [mkdir] creates a
          directory owned by the caller with rights [g] (paper §4). *)
}

val make : ?reserve:Rights.t -> pattern:string -> Rights.t -> t
(** Build an entry from a pattern string and rights. *)

val covers : t -> Idbox_identity.Principal.t -> bool
(** Does this entry's pattern match the principal's canonical name? *)

val of_line : string -> (t, string) result
(** Parse ["<pattern> <rights>[v(<rights>)]"] with any amount of blank
    separation.  The reserve grant may also stand alone: ["v(rwlax)"]. *)

val to_line : t -> string
(** Render the canonical single-line form. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
