module Principal = Idbox_identity.Principal
module Wildcard = Idbox_identity.Wildcard

type t = Entry.t list

let filename = ".__acl"

let empty = []

let of_entries entries = entries

let entries t = t

let is_empty t = t = []

let rights_of t who =
  List.fold_left
    (fun acc (e : Entry.t) ->
      if Entry.covers e who then Rights.union acc e.rights else acc)
    Rights.empty t

let check t who r = Rights.mem r (rights_of t who)

let reserve_for t who =
  List.fold_left
    (fun acc (e : Entry.t) ->
      if Entry.covers e who then
        match (e.reserve, acc) with
        | None, _ -> acc
        | Some g, None -> Some g
        | Some g, Some prior -> Some (Rights.union g prior)
      else acc)
    None t

let pattern_text (e : Entry.t) = Wildcard.source e.pattern

let set_entry t entry =
  let key = pattern_text entry in
  let replaced = ref false in
  let t' =
    List.map
      (fun e ->
        if String.equal (pattern_text e) key then begin
          replaced := true;
          entry
        end
        else e)
      t
  in
  if !replaced then t' else t' @ [ entry ]

let remove_pattern t pattern =
  List.filter (fun e -> not (String.equal (pattern_text e) pattern)) t

let for_owner who =
  [ Entry.make ~pattern:(Principal.to_string who) Rights.full ]

let grant t ~pattern rights =
  match List.find_opt (fun e -> String.equal (pattern_text e) pattern) t with
  | Some (e : Entry.t) ->
    set_entry t { e with rights = Rights.union e.rights rights }
  | None -> set_entry t (Entry.make ~pattern rights)

let of_string content =
  let lines = String.split_on_char '\n' content in
  let keep line =
    let trimmed = String.trim line in
    String.length trimmed > 0 && trimmed.[0] <> '#'
  in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match Entry.of_line line with
       | Ok e -> build (e :: acc) rest
       | Error msg -> Error msg)
  in
  build [] (List.filter keep lines)

let of_string_exn content =
  match of_string content with
  | Ok t -> t
  | Error msg -> invalid_arg ("Acl.of_string_exn: " ^ msg)

let to_string t =
  String.concat "" (List.map (fun e -> Entry.to_line e ^ "\n") t)

let equal a b = List.length a = List.length b && List.for_all2 Entry.equal a b

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." Entry.pp e) t
