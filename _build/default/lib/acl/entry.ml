module Wildcard = Idbox_identity.Wildcard
module Principal = Idbox_identity.Principal

type t = {
  pattern : Wildcard.t;
  rights : Rights.t;
  reserve : Rights.t option;
}

let make ?reserve ~pattern rights =
  { pattern = Wildcard.compile pattern; rights; reserve }

let covers t principal =
  Wildcard.matches t.pattern (Principal.to_string principal)

(* Parse a rights field: "<chars>" possibly containing "v(<chars>)". *)
let parse_rights_field field =
  match String.index_opt field 'v' with
  | Some i
    when i + 1 < String.length field
         && field.[i + 1] = '('
         && String.length field > 0
         && field.[String.length field - 1] = ')' ->
    let direct = String.sub field 0 i in
    let inner = String.sub field (i + 2) (String.length field - i - 3) in
    (match Rights.of_string (if direct = "" then "-" else direct) with
     | Error msg -> Error msg
     | Ok rights ->
       (match Rights.of_string inner with
        | Error msg -> Error msg
        | Ok grant -> Ok (rights, Some grant)))
  | Some _ | None ->
    (match Rights.of_string field with
     | Ok rights -> Ok (rights, None)
     | Error msg -> Error msg)

let of_line line =
  let fields =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun f -> String.length f > 0)
  in
  match fields with
  | [ pattern; rights_field ] ->
    (match parse_rights_field rights_field with
     | Ok (rights, reserve) ->
       Ok { pattern = Wildcard.compile pattern; rights; reserve }
     | Error msg -> Error msg)
  | [] -> Error "empty ACL line"
  | _ -> Error (Printf.sprintf "malformed ACL line %S (want: <pattern> <rights>)" line)

let to_line t =
  let rights_field =
    match t.reserve with
    | None -> Rights.to_string t.rights
    | Some grant ->
      let direct = if Rights.is_empty t.rights then "" else Rights.to_string t.rights in
      Printf.sprintf "%sv(%s)" direct (Rights.to_string grant)
  in
  Printf.sprintf "%s %s" (Wildcard.source t.pattern) rights_field

let equal a b =
  Wildcard.equal a.pattern b.pattern
  && Rights.equal a.rights b.rights
  && Option.equal Rights.equal a.reserve b.reserve

let pp ppf t = Format.pp_print_string ppf (to_line t)
