(** Identity boxing as an identity-mapping scheme — the paper's new row
    in Figure 1.

    Any user deploys it without privilege; each principal gets a named
    protection domain (an identity box) created on the fly with no
    account database involvement; ACLs give privacy by default, grant
    selective sharing ([setacl]), and persist, so users can return to
    their data. *)

val scheme : Scheme.t
