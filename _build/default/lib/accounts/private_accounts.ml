module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Fs = Idbox_vfs.Fs
module Principal = Idbox_identity.Principal

let gridmap_path = "/etc/gridmap"

let scheme =
  {
    Scheme.sc_name = "private";
    sc_example = "I-WAY, gridmap";
    sc_setup =
      (fun kernel ~operator_uid ->
        match Scheme.require_root ~operator_uid ~what:"creating user accounts" with
        | Error _ as e -> e
        | Ok () ->
          let gridmap : (string, Account.entry) Hashtbl.t = Hashtbl.create 8 in
          let admin_actions = ref 0 in
          let persist_gridmap () =
            let lines =
              Hashtbl.fold
                (fun dn entry acc ->
                  Printf.sprintf "%S %s" dn entry.Account.name :: acc)
                gridmap []
              |> List.sort String.compare
            in
            ignore
              (Fs.write_file (Kernel.fs kernel) ~uid:0 gridmap_path
                 (String.concat "\n" lines ^ "\n"))
          in
          let account_for principal =
            let dn = Principal.to_string principal in
            match Hashtbl.find_opt gridmap dn with
            | Some entry -> Ok entry
            | None ->
              (* A human administrator edits the gridmap and runs
                 useradd: one manual intervention per new user. *)
              incr admin_actions;
              let name = "grid_" ^ Scheme.sanitize dn in
              (match Account.add (Kernel.accounts kernel) name with
               | Error _ as e -> e
               | Ok entry ->
                 Kernel.refresh_passwd kernel;
                 Hashtbl.replace gridmap dn entry;
                 persist_gridmap ();
                 (match
                    Common.ensure_dir kernel ~owner:entry.Account.uid ~mode:0o700
                      entry.Account.home
                  with
                  | Error _ as e -> e
                  | Ok () -> Ok entry))
          in
          let admit principal =
            match account_for principal with
            | Error e -> Error e
            | Ok entry ->
              Ok
                {
                  Scheme.s_principal = principal;
                  s_workdir = entry.Account.home;
                  s_run =
                    (fun main args ->
                      Common.run_as kernel ~uid:entry.Account.uid
                        ~cwd:entry.Account.home main args);
                  s_uid = entry.Account.uid;
                }
          in
          Ok
            {
              Scheme.st_admit = admit;
              st_logout = (fun _ -> ());
              st_share = Common.no_share;
              st_admin_actions = (fun () -> !admin_actions);
            });
  }
