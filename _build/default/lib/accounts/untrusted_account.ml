module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account

let scheme =
  {
    Scheme.sc_name = "untrusted";
    sc_example = "WWW, FTP";
    sc_setup =
      (fun kernel ~operator_uid ->
        (* Dropping privileges into the nobody account is a setuid: the
           service must start as root. *)
        match
          Scheme.require_root ~operator_uid ~what:"running jobs as nobody"
        with
        | Error _ as e -> e
        | Ok () ->
          let workdir = "/srv/untrusted" in
          (match
             Common.ensure_dir kernel ~owner:Account.nobody_uid ~mode:0o755
               workdir
           with
           | Error _ as e -> e
           | Ok () ->
             let admit principal =
               Ok
                 {
                   Scheme.s_principal = principal;
                   s_workdir = workdir;
                   s_run =
                     (fun main args ->
                       Common.run_as kernel ~uid:Account.nobody_uid ~cwd:workdir
                         main args);
                   s_uid = Account.nobody_uid;
                 }
             in
             Ok
               {
                 Scheme.st_admit = admit;
                 st_logout = (fun _ -> ());
                 st_share = Common.always_share;
                 st_admin_actions = (fun () -> 0);
               }));
  }
