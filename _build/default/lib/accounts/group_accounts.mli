(** The group-accounts scheme: one shared account per collaboration,
    with users mapped by their organization (paper §2, "Group Accounts";
    example: Grid3).

    Privacy and sharing are {e fixed} by the static grouping: everything
    is shared within a group and nothing across groups, and no user can
    change either.  Root creates each group account once. *)

val scheme : Scheme.t
