module Kernel = Idbox_kernel.Kernel
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let run_as kernel ~uid ~cwd main args =
  let pid = Kernel.spawn_main kernel ~uid ~cwd ~main ~args () in
  Kernel.run kernel;
  match Kernel.exit_code kernel pid with
  | Some code -> code
  | None -> 255

let ensure_dir kernel ~owner ~mode path =
  let fs = Kernel.fs kernel in
  let ( let* ) r f =
    match r with Ok v -> f v | Error e -> Error (Errno.message e)
  in
  let* () = Fs.mkdir_p fs ~uid:0 path in
  let* () = Fs.chown fs ~uid:0 ~owner path in
  let* () = Fs.chmod fs ~uid:0 ~mode path in
  Ok ()

let no_share ~owner:_ ~peer:_ ~path:_ =
  Error "scheme provides no sharing mechanism"

let always_share ~owner:_ ~peer:_ ~path:_ = Ok ()
