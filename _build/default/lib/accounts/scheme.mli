(** The common shape of identity-mapping schemes (Figure 1).

    Each scheme answers the same question — how does a grid user,
    identified by a principal, get a protection domain on this machine?
    — with a different mechanism: one account for everyone, the
    untrusted account, a private account per user, group accounts,
    throwaway anonymous accounts, an account pool, or an identity box.

    A scheme is a first-class record so the {!Probe} engine can run the
    same scenarios against all of them and {e derive} the paper's
    property matrix rather than assert it.  Scheme implementations are
    honest about privilege: operations that need root on a real system
    (creating accounts, running jobs under another uid) fail unless the
    operator is root. *)

type session = {
  s_principal : Idbox_identity.Principal.t;
  s_workdir : string;
      (** Where this user's data lives under this scheme. *)
  s_run : Idbox_kernel.Program.main -> string list -> int;
      (** Run a job to completion in the user's protection domain and
          return its exit code. *)
  s_uid : int;
      (** The Unix uid the session's jobs run under (informational). *)
}

type state = {
  st_admit : Idbox_identity.Principal.t -> (session, string) result;
      (** Admit (or re-admit) a grid user. *)
  st_logout : session -> unit;
      (** End a session (schemes with throwaway accounts clean up). *)
  st_share :
    owner:session -> peer:Idbox_identity.Principal.t -> path:string ->
    (unit, string) result;
      (** The scheme's mechanism (if any) for [owner] to grant [peer]
          read access to [path]. *)
  st_admin_actions : unit -> int;
      (** Manual root interventions performed so far (the admin-burden
          column). *)
}

type t = {
  sc_name : string;
  sc_example : string;  (** The "example systems" column of Fig. 1. *)
  sc_setup :
    Idbox_kernel.Kernel.t -> operator_uid:int -> (state, string) result;
      (** Deploy the scheme on a host as the given operator. *)
}

val org_of : Idbox_identity.Principal.t -> string
(** The organization a principal belongs to: the subject's [O] component
    for DN-shaped names, else the text before the first ['/'] or ['@'],
    else the whole name.  Group schemes map principals to accounts with
    this. *)

val require_root : operator_uid:int -> what:string -> (unit, string) result
(** The privilege guard scheme implementations share. *)

val sanitize : string -> string
(** Make a principal usable as an account or path fragment. *)
