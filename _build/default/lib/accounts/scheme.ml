module Principal = Idbox_identity.Principal
module Subject = Idbox_identity.Subject

type session = {
  s_principal : Principal.t;
  s_workdir : string;
  s_run : Idbox_kernel.Program.main -> string list -> int;
  s_uid : int;
}

type state = {
  st_admit : Principal.t -> (session, string) result;
  st_logout : session -> unit;
  st_share :
    owner:session -> peer:Principal.t -> path:string -> (unit, string) result;
  st_admin_actions : unit -> int;
}

type t = {
  sc_name : string;
  sc_example : string;
  sc_setup :
    Idbox_kernel.Kernel.t -> operator_uid:int -> (state, string) result;
}

let org_of principal =
  let name = principal.Principal.name in
  match Subject.of_string name with
  | Ok subject ->
    (match Subject.organization subject with
     | Some org -> org
     | None -> name)
  | Error _ ->
    (match String.index_opt name '@' with
     | Some i -> String.sub name (i + 1) (String.length name - i - 1)
     | None ->
       (match String.index_opt name '.' with
        | Some _ -> name
        | None -> name))

let require_root ~operator_uid ~what =
  if operator_uid = 0 then Ok ()
  else Error (Printf.sprintf "%s requires root privilege" what)

let sanitize s =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
        | _ -> '_')
      s
  in
  if String.length mapped > 48 then String.sub mapped 0 48 else mapped
