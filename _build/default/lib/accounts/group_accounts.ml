module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account

let scheme =
  {
    Scheme.sc_name = "group";
    sc_example = "Grid3";
    sc_setup =
      (fun kernel ~operator_uid ->
        match Scheme.require_root ~operator_uid ~what:"creating group accounts" with
        | Error _ as e -> e
        | Ok () ->
          let groups : (string, Account.entry) Hashtbl.t = Hashtbl.create 4 in
          let admin_actions = ref 0 in
          let account_for_org org =
            match Hashtbl.find_opt groups org with
            | Some entry -> Ok entry
            | None ->
              (* The administrator creates one account per collaboration. *)
              incr admin_actions;
              let name = "grp_" ^ Scheme.sanitize org in
              (match Account.add (Kernel.accounts kernel) name with
               | Error _ as e -> e
               | Ok entry ->
                 Kernel.refresh_passwd kernel;
                 Hashtbl.replace groups org entry;
                 (match
                    Common.ensure_dir kernel ~owner:entry.Account.uid ~mode:0o700
                      entry.Account.home
                  with
                  | Error _ as e -> e
                  | Ok () -> Ok entry))
          in
          let admit principal =
            match account_for_org (Scheme.org_of principal) with
            | Error e -> Error e
            | Ok entry ->
              Ok
                {
                  Scheme.s_principal = principal;
                  s_workdir = entry.Account.home;
                  s_run =
                    (fun main args ->
                      Common.run_as kernel ~uid:entry.Account.uid
                        ~cwd:entry.Account.home main args);
                  s_uid = entry.Account.uid;
                }
          in
          let share ~owner ~peer ~path:_ =
            (* Sharing is whatever the static grouping says: groupmates
               already share; outsiders cannot be granted anything. *)
            if String.equal (Scheme.org_of owner.Scheme.s_principal)
                 (Scheme.org_of peer)
            then Ok ()
            else Error "cannot share across group accounts"
          in
          Ok
            {
              Scheme.st_admit = admit;
              st_logout = (fun _ -> ());
              st_share = share;
              st_admin_actions = (fun () -> !admin_actions);
            });
  }
