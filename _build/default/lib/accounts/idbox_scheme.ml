module Kernel = Idbox_kernel.Kernel
module Libc = Idbox_kernel.Libc
module Box = Idbox.Box
module Principal = Idbox_identity.Principal
module Rights = Idbox_acl.Rights
module Path = Idbox_vfs.Path

let scheme =
  {
    Scheme.sc_name = "identity box";
    sc_example = "Parrot";
    sc_setup =
      (fun kernel ~operator_uid ->
        let boxes : (string, Box.t) Hashtbl.t = Hashtbl.create 8 in
        let box_for principal =
          let key = Principal.to_string principal in
          match Hashtbl.find_opt boxes key with
          | Some box -> Ok box
          | None ->
            (match
               Box.create kernel ~supervisor_uid:operator_uid ~identity:principal ()
             with
             | Ok box ->
               Hashtbl.replace boxes key box;
               Ok box
             | Error e -> Error (Idbox_vfs.Errno.message e))
        in
        let admit principal =
          match box_for principal with
          | Error e -> Error e
          | Ok box ->
            Ok
              {
                Scheme.s_principal = principal;
                s_workdir = Box.home box;
                s_run =
                  (fun main args ->
                    let pid = Box.spawn_main box ~main ~args in
                    Kernel.run kernel;
                    (match Kernel.exit_code kernel pid with
                     | Some code -> code
                     | None -> 255));
                s_uid = operator_uid;
              }
        in
        let share ~owner ~peer ~path =
          (* The owner grants access from inside their own box with an
             ordinary setacl — no administrator involved. *)
          match box_for owner.Scheme.s_principal with
          | Error e -> Error e
          | Ok box ->
            let dir = Path.dirname path in
            let entry =
              Printf.sprintf "%s %s" (Principal.to_string peer)
                (Rights.to_string (Rights.of_string_exn "rl"))
            in
            let grant_job _args =
              match Libc.setacl ~path:dir ~entry with
              | Ok () -> 0
              | Error _ -> 1
            in
            let pid = Box.spawn_main box ~main:grant_job ~args:[ "grant" ] in
            Kernel.run kernel;
            (match Kernel.exit_code kernel pid with
             | Some 0 -> Ok ()
             | Some _ -> Error "setacl denied"
             | None -> Error "grant job stuck")
        in
        Ok
          {
            Scheme.st_admit = admit;
            st_logout = (fun _ -> ());
            st_share = share;
            st_admin_actions = (fun () -> 0);
          });
  }
