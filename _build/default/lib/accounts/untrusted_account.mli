(** The untrusted-account scheme: all visiting processes run as
    [nobody] (paper §2, "Untrusted Account"; example: WWW and FTP
    servers).

    Protects the owner, but requires privilege to drop into the
    untrusted account, and gives visitors no privacy from each other —
    everyone is [nobody]. *)

val scheme : Scheme.t
