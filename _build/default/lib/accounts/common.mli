(** Shared plumbing for scheme implementations. *)

val run_as :
  Idbox_kernel.Kernel.t ->
  uid:int ->
  cwd:string ->
  Idbox_kernel.Program.main ->
  string list ->
  int
(** Spawn a job under [uid], drive the host to quiescence, return the
    exit code (255 if it never exited). *)

val ensure_dir :
  Idbox_kernel.Kernel.t ->
  owner:int ->
  mode:int ->
  string ->
  (unit, string) result
(** Create a directory (as root — schemes call this only from contexts
    that already established privilege) and set its owner and mode. *)

val no_share :
  owner:Scheme.session ->
  peer:Idbox_identity.Principal.t ->
  path:string ->
  (unit, string) result
(** The "no mechanism" share implementation most schemes have. *)

val always_share :
  owner:Scheme.session ->
  peer:Idbox_identity.Principal.t ->
  path:string ->
  (unit, string) result
(** Sharing needs no action because everyone is the same account. *)
