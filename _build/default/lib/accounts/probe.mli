(** The Figure 1 probe engine: run identical scenarios against every
    identity-mapping scheme and derive the paper's property matrix.

    Nothing in the output is hard-coded; each cell is the observed
    outcome of an experiment on a fresh simulated host:

    - {e privilege}: deploy the scheme as an ordinary user — does setup
      succeed?
    - {e protects owner}: an admitted visitor's job tries to overwrite a
      file belonging to the service operator.
    - {e privacy}: one visitor stores a 0600 file; a same-organization
      visitor and a foreign visitor try to read it.
    - {e sharing}: the owner invokes the scheme's sharing mechanism for
      a specific peer, who then tries to read.
    - {e return}: a visitor stores data, logs out, is re-admitted under
      the same principal, and tries to read the old path.
    - {e admin burden}: admit six users from four organizations and
      count the manual root interventions the scheme recorded.

    A cell is [Fixed] when the same-organization and cross-organization
    outcomes differ — the static policy of group accounts. *)

type verdict =
  | Yes
  | No
  | Fixed

type row = {
  r_scheme : string;
  r_example : string;
  r_requires_privilege : bool;
  r_protects_owner : verdict;
  r_privacy : verdict;
  r_sharing : verdict;
  r_return : verdict;
  r_admin_burden : string;  (** ["per user"], ["per group"], ["per pool"], ["-"]. *)
}

val verdict_to_string : verdict -> string

val all_schemes : unit -> Scheme.t list
(** The seven rows of Figure 1, in the paper's order. *)

val evaluate : Scheme.t -> row
(** Run the full scenario suite against one scheme (fresh hosts). *)

val rows : unit -> row list

val render_table : row list -> string
(** The Figure 1 table, ready to print. *)

val paper_row : string -> row option
(** The paper's published expectations for a scheme name — what
    EXPERIMENTS.md compares against. *)
