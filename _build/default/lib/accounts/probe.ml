module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Fs = Idbox_vfs.Fs
module Principal = Idbox_identity.Principal

type verdict =
  | Yes
  | No
  | Fixed

type row = {
  r_scheme : string;
  r_example : string;
  r_requires_privilege : bool;
  r_protects_owner : verdict;
  r_privacy : verdict;
  r_sharing : verdict;
  r_return : verdict;
  r_admin_burden : string;
}

let verdict_to_string = function
  | Yes -> "yes"
  | No -> "no"
  | Fixed -> "fixed"

let all_schemes () =
  [
    Single_account.scheme;
    Untrusted_account.scheme;
    Private_accounts.scheme;
    Group_accounts.scheme;
    Anonymous_accounts.scheme;
    Account_pool.scheme;
    Idbox_scheme.scheme;
  ]

(* ------------------------------------------------------------------ *)
(* Probe jobs: programs run inside the scheme's protection domain.     *)
(* ------------------------------------------------------------------ *)

let write_job ~path ~mode : Idbox_kernel.Program.main =
 fun _args ->
  let flags = Fs.wronly_create in
  match Libc.open_file ~flags ~mode path with
  | Error _ -> 1
  | Ok fd ->
    let r = Libc.write fd "probe data" in
    ignore (Libc.close fd);
    (match r with Ok _ -> 0 | Error _ -> 1)

let overwrite_job ~path : Idbox_kernel.Program.main =
 fun _args ->
  (* Overwrite without creating: the victim file must already exist. *)
  let flags =
    { Fs.rd = false; wr = true; creat = false; excl = false; trunc = false;
      append = false }
  in
  match Libc.open_file ~flags path with
  | Error _ -> 1
  | Ok fd ->
    let r = Libc.write fd "defaced" in
    ignore (Libc.close fd);
    (match r with Ok _ -> 0 | Error _ -> 1)

let read_job ~path : Idbox_kernel.Program.main =
 fun _args ->
  match Libc.read_file path with Ok _ -> 0 | Error _ -> 1

(* ------------------------------------------------------------------ *)
(* Scenario plumbing.                                                  *)
(* ------------------------------------------------------------------ *)

let alice = Principal.of_string "globus:/O=OrgA/CN=Alice"
let bob = Principal.of_string "globus:/O=OrgA/CN=Bob"
let carol = Principal.of_string "globus:/O=OrgB/CN=Carol"
let dave = Principal.of_string "globus:/O=OrgC/CN=Dave"

let fresh_host () =
  let kernel = Kernel.create () in
  let operator =
    match Account.add (Kernel.accounts kernel) "operator" with
    | Ok e -> e
    | Error m -> invalid_arg m
  in
  Kernel.refresh_passwd kernel;
  (kernel, operator.Account.uid)

let setup_for_probes (scheme : Scheme.t) =
  let kernel, operator_uid = fresh_host () in
  match scheme.Scheme.sc_setup kernel ~operator_uid with
  | Ok state -> (kernel, operator_uid, state, false)
  | Error _ ->
    (* The scheme needs privilege: deploy as root instead. *)
    (match scheme.Scheme.sc_setup kernel ~operator_uid:0 with
     | Ok state -> (kernel, 0, state, true)
     | Error m ->
       invalid_arg (Printf.sprintf "%s: setup failed even as root: %s"
                      scheme.Scheme.sc_name m))

let admit state principal =
  match state.Scheme.st_admit principal with
  | Ok session -> session
  | Error m -> invalid_arg ("admit failed: " ^ m)

let succeeded session job = session.Scheme.s_run job [ "probe" ] = 0

(* ------------------------------------------------------------------ *)
(* The probes.                                                         *)
(* ------------------------------------------------------------------ *)

let probe_privilege (scheme : Scheme.t) =
  let kernel, operator_uid = fresh_host () in
  match scheme.Scheme.sc_setup kernel ~operator_uid with
  | Ok _ -> false
  | Error _ -> true

let probe_matrix (scheme : Scheme.t) =
  let kernel, operator_uid, state, _privileged = setup_for_probes scheme in
  let fs = Kernel.fs kernel in
  (* The service operator's pre-existing file. *)
  let owner_file = "/tmp/owner_secret" in
  (match Fs.write_file fs ~uid:0 ~mode:0o644 owner_file "owner data" with
   | Ok () -> ()
   | Error e -> invalid_arg (Idbox_vfs.Errno.message e));
  (match Fs.chown fs ~uid:0 ~owner:(max operator_uid 1) owner_file with
   | Ok () -> ()
   | Error e -> invalid_arg (Idbox_vfs.Errno.message e));
  let sa = admit state alice in
  let sb = admit state bob in
  let sc = admit state carol in
  (* Protects owner: Alice tries to overwrite the operator's file. *)
  let protects_owner =
    if succeeded sa (overwrite_job ~path:owner_file) then No else Yes
  in
  (* Privacy: Alice stores a 0600 file; Bob (same org) and Carol
     (foreign) try to read it. *)
  let private_path = sa.Scheme.s_workdir ^ "/alice_private" in
  assert (succeeded sa (write_job ~path:private_path ~mode:0o600));
  let intra_read = succeeded sb (read_job ~path:private_path) in
  let cross_read = succeeded sc (read_job ~path:private_path) in
  let privacy =
    match (intra_read, cross_read) with
    | false, false -> Yes
    | true, false -> Fixed
    | _, true -> No
  in
  (* Sharing: Alice grants Carol (arbitrary peer), then Bob (groupmate). *)
  let share_path = sa.Scheme.s_workdir ^ "/alice_shared" in
  assert (succeeded sa (write_job ~path:share_path ~mode:0o600));
  let try_share peer reader =
    match state.Scheme.st_share ~owner:sa ~peer ~path:share_path with
    | Ok () -> succeeded reader (read_job ~path:share_path)
    | Error _ -> false
  in
  let share_arbitrary = try_share carol sc in
  let share_intra = try_share bob sb in
  let sharing =
    match (share_arbitrary, share_intra) with
    | true, _ -> Yes
    | false, true -> Fixed
    | false, false -> No
  in
  (* Return: Dave stores data, logs out, is re-admitted, reads back. *)
  let sd = admit state dave in
  let persist_path = sd.Scheme.s_workdir ^ "/dave_persist" in
  assert (succeeded sd (write_job ~path:persist_path ~mode:0o600));
  state.Scheme.st_logout sd;
  let sd' = admit state dave in
  let return_ok = succeeded sd' (read_job ~path:persist_path) in
  (protects_owner, privacy, sharing, (if return_ok then Yes else No))

let probe_admin_burden (scheme : Scheme.t) =
  let kernel, operator_uid = fresh_host () in
  let state =
    match scheme.Scheme.sc_setup kernel ~operator_uid with
    | Ok state -> state
    | Error _ ->
      (match scheme.Scheme.sc_setup kernel ~operator_uid:0 with
       | Ok state -> state
       | Error m -> invalid_arg m)
  in
  let users =
    [
      "globus:/O=OrgA/CN=U1"; "globus:/O=OrgA/CN=U2"; "globus:/O=OrgB/CN=U3";
      "globus:/O=OrgB/CN=U4"; "globus:/O=OrgC/CN=U5"; "globus:/O=OrgD/CN=U6";
    ]
  in
  List.iter (fun u -> ignore (admit state (Principal.of_string u))) users;
  let n_users = List.length users and n_orgs = 4 in
  match state.Scheme.st_admin_actions () with
  | n when n >= n_users -> "per user"
  | n when n >= n_orgs -> "per group"
  | n when n >= 1 -> "per pool"
  | _ -> "-"

let evaluate (scheme : Scheme.t) =
  let r_requires_privilege = probe_privilege scheme in
  let protects_owner, privacy, sharing, return_v = probe_matrix scheme in
  {
    r_scheme = scheme.Scheme.sc_name;
    r_example = scheme.Scheme.sc_example;
    r_requires_privilege;
    r_protects_owner = protects_owner;
    r_privacy = privacy;
    r_sharing = sharing;
    r_return = return_v;
    r_admin_burden = probe_admin_burden scheme;
  }

let rows () = List.map evaluate (all_schemes ())

let render_table rows =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-14s %-10s %-8s %-8s %-8s %-7s %-10s %s" "Account Type" "Privilege"
    "Protect" "Privacy" "Sharing" "Return" "Admin" "Example";
  line "%s" (String.make 88 '-');
  List.iter
    (fun r ->
      line "%-14s %-10s %-8s %-8s %-8s %-7s %-10s %s" r.r_scheme
        (if r.r_requires_privilege then "root" else "-")
        (verdict_to_string r.r_protects_owner)
        (verdict_to_string r.r_privacy)
        (verdict_to_string r.r_sharing)
        (verdict_to_string r.r_return)
        r.r_admin_burden r.r_example)
    rows;
  Buffer.contents buf

let paper_row name =
  let mk scheme example priv owner privacy sharing return_v admin =
    {
      r_scheme = scheme;
      r_example = example;
      r_requires_privilege = priv;
      r_protects_owner = owner;
      r_privacy = privacy;
      r_sharing = sharing;
      r_return = return_v;
      r_admin_burden = admin;
    }
  in
  let table =
    [
      mk "single" "Personal GASS" false No No Yes Yes "-";
      mk "untrusted" "WWW, FTP" true Yes No Yes Yes "-";
      mk "private" "I-WAY, gridmap" true Yes Yes No Yes "per user";
      mk "group" "Grid3" true Yes Fixed Fixed Yes "per group";
      mk "anonymous" "Condor on NT" true Yes Yes No No "-";
      mk "pool" "Globus, Legion" true Yes Yes No No "per pool";
      mk "identity box" "Parrot" false Yes Yes Yes Yes "-";
    ]
  in
  List.find_opt (fun r -> String.equal r.r_scheme name) table
