lib/accounts/probe.mli: Scheme
