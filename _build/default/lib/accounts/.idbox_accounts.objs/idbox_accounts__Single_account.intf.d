lib/accounts/single_account.mli: Scheme
