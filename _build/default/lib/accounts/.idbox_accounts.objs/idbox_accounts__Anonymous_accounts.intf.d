lib/accounts/anonymous_accounts.mli: Scheme
