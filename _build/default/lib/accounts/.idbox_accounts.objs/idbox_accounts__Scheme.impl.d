lib/accounts/scheme.ml: Idbox_identity Idbox_kernel Printf String
