lib/accounts/idbox_scheme.ml: Hashtbl Idbox Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs Printf Scheme
