lib/accounts/group_accounts.mli: Scheme
