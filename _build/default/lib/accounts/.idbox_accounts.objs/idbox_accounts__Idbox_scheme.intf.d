lib/accounts/idbox_scheme.mli: Scheme
