lib/accounts/single_account.ml: Common Idbox_kernel Idbox_vfs Scheme
