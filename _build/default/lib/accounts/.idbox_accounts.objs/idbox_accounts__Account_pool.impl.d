lib/accounts/account_pool.ml: Common Idbox_kernel Printf Queue Scheme
