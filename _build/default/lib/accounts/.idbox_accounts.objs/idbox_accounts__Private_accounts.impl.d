lib/accounts/private_accounts.ml: Common Hashtbl Idbox_identity Idbox_kernel Idbox_vfs List Printf Scheme String
