lib/accounts/account_pool.mli: Scheme
