lib/accounts/scheme.mli: Idbox_identity Idbox_kernel
