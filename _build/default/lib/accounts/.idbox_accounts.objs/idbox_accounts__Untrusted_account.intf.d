lib/accounts/untrusted_account.mli: Scheme
