lib/accounts/common.mli: Idbox_identity Idbox_kernel Scheme
