lib/accounts/anonymous_accounts.ml: Common Idbox_kernel Idbox_vfs List Printf Scheme
