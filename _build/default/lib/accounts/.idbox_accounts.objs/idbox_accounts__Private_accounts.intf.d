lib/accounts/private_accounts.mli: Scheme
