lib/accounts/group_accounts.ml: Common Hashtbl Idbox_kernel Scheme String
