lib/accounts/common.ml: Idbox_kernel Idbox_vfs
