lib/accounts/untrusted_account.ml: Common Idbox_kernel Scheme
