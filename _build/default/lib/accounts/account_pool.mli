(** The account-pool scheme: the administrator pre-creates a pool of
    anonymous accounts ([grid0]..[gridN]) that a resource manager leases
    to jobs on the fly (paper §2, "Account Pools"; examples: Globus,
    Legion).

    One admin action sets up the whole pool; owners and users are
    protected from each other; but "a given user might be grid9 today
    and grid33 tomorrow" — no return, and a recycled account may expose
    a sloppy predecessor's files to its next tenant. *)

val scheme : Scheme.t

val pool_size : int
(** Accounts created at setup (8). *)
