module Kernel = Idbox_kernel.Kernel

let scheme =
  {
    Scheme.sc_name = "single";
    sc_example = "Personal GASS";
    sc_setup =
      (fun kernel ~operator_uid ->
        (* Any user can run a single-account service: everything happens
           as themselves.  The shared workspace lives under /tmp so no
           privilege is needed to create it. *)
        let workdir = "/tmp/single_service" in
        (match
           Idbox_vfs.Fs.mkdir_p (Kernel.fs kernel) ~uid:operator_uid workdir
         with
         | Error e -> Error (Idbox_vfs.Errno.message e)
         | Ok () ->
           let admit principal =
             Ok
               {
                 Scheme.s_principal = principal;
                 s_workdir = workdir;
                 s_run =
                   (fun main args ->
                     Common.run_as kernel ~uid:operator_uid ~cwd:workdir main args);
                 s_uid = operator_uid;
               }
           in
           Ok
             {
               Scheme.st_admit = admit;
               st_logout = (fun _ -> ());
               st_share = Common.always_share;
               st_admin_actions = (fun () -> 0);
             }));
  }
