module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Fs = Idbox_vfs.Fs

(* Recursively remove a directory as root: the cleanup a real system
   performs when it destroys a temporary account. *)
let rec remove_tree kernel path =
  let fs = Kernel.fs kernel in
  match Fs.readdir fs ~uid:0 path with
  | Error _ -> ignore (Fs.unlink fs ~uid:0 path)
  | Ok names ->
    List.iter (fun name -> remove_tree kernel (path ^ "/" ^ name)) names;
    ignore (Fs.rmdir fs ~uid:0 path)

let scheme =
  {
    Scheme.sc_name = "anonymous";
    sc_example = "Condor on NT";
    sc_setup =
      (fun kernel ~operator_uid ->
        match
          Scheme.require_root ~operator_uid ~what:"creating temporary accounts"
        with
        | Error _ as e -> e
        | Ok () ->
          let counter = ref 0 in
          let admit principal =
            incr counter;
            let name = Printf.sprintf "anon%d" !counter in
            match Account.add (Kernel.accounts kernel) name with
            | Error _ as e -> e
            | Ok entry ->
              Kernel.refresh_passwd kernel;
              (match
                 Common.ensure_dir kernel ~owner:entry.Account.uid ~mode:0o700
                   entry.Account.home
               with
               | Error _ as e -> e
               | Ok () ->
                 Ok
                   {
                     Scheme.s_principal = principal;
                     s_workdir = entry.Account.home;
                     s_run =
                       (fun main args ->
                         Common.run_as kernel ~uid:entry.Account.uid
                           ~cwd:entry.Account.home main args);
                     s_uid = entry.Account.uid;
                   })
          in
          let logout session =
            (* The account evaporates with the job: home removed, entry
               deleted.  Nothing to return to. *)
            remove_tree kernel session.Scheme.s_workdir;
            (match Account.find_uid (Kernel.accounts kernel) session.Scheme.s_uid with
             | Some entry ->
               ignore (Account.remove (Kernel.accounts kernel) entry.Account.name);
               Kernel.refresh_passwd kernel
             | None -> ())
          in
          Ok
            {
              Scheme.st_admit = admit;
              st_logout = logout;
              st_share = Common.no_share;
              st_admin_actions = (fun () -> 0);
            });
  }
