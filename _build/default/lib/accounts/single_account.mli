(** The single-account scheme: every visiting process runs in the
    service operator's own account (paper §2, "Single Account";
    example: a personal GASS server).

    Needs no privilege and allows everyone to share everything — which
    is exactly its failure mode: it neither protects the owner nor
    offers visitors any privacy. *)

val scheme : Scheme.t
