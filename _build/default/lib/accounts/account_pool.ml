module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account

let pool_size = 8

let scheme =
  {
    Scheme.sc_name = "pool";
    sc_example = "Globus, Legion";
    sc_setup =
      (fun kernel ~operator_uid ->
        match Scheme.require_root ~operator_uid ~what:"creating the account pool" with
        | Error _ as e -> e
        | Ok () ->
          let free = Queue.create () in
          let admin_actions = ref 1 in
          (* One admin intervention creates the whole pool. *)
          let rec build i =
            if i >= pool_size then Ok ()
            else
              match Account.add (Kernel.accounts kernel) (Printf.sprintf "grid%d" i) with
              | Error _ as e -> e
              | Ok entry ->
                (match
                   Common.ensure_dir kernel ~owner:entry.Account.uid ~mode:0o700
                     entry.Account.home
                 with
                 | Error _ as e -> e
                 | Ok () ->
                   Queue.push entry free;
                   build (i + 1))
          in
          (match build 0 with
           | Error e -> Error e
           | Ok () ->
             Kernel.refresh_passwd kernel;
             let admit principal =
               match Queue.take_opt free with
               | None -> Error "account pool exhausted"
               | Some entry ->
                 Ok
                   {
                     Scheme.s_principal = principal;
                     s_workdir = entry.Account.home;
                     s_run =
                       (fun main args ->
                         Common.run_as kernel ~uid:entry.Account.uid
                           ~cwd:entry.Account.home main args);
                     s_uid = entry.Account.uid;
                   }
             in
             let logout session =
               (* The lease ends; the account returns to the pool.  Files
                  are deliberately left in place — the classic recycled-
                  account hazard the probe demonstrates. *)
               match
                 Account.find_uid (Kernel.accounts kernel) session.Scheme.s_uid
               with
               | Some entry -> Queue.push entry free
               | None -> ()
             in
             Ok
               {
                 Scheme.st_admit = admit;
                 st_logout = logout;
                 st_share = Common.no_share;
                 st_admin_actions = (fun () -> !admin_actions);
               }));
  }
