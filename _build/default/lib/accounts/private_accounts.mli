(** The private-accounts scheme: a distinct local account per grid user,
    mapped through a gridmap file (paper §2, "Private Accounts";
    example: I-WAY and today's gridmap deployments).

    Full privacy and return, but every new user costs a manual root
    intervention to extend the gridmap and create the account, and there
    is no selective sharing between accounts. *)

val scheme : Scheme.t

val gridmap_path : string
(** Where the scheme writes its gridmap ([/etc/gridmap]) — the mapping
    table the paper wants to abolish. *)
