(** The anonymous-accounts scheme: a brand-new throwaway account for
    every job, destroyed afterwards (paper §2, "Anonymous Accounts";
    example: Condor on Windows NT).

    Automatic — no per-user human step — but an identity means nothing
    after logout: the account and its home are gone, so a user can never
    return to stored data. *)

val scheme : Scheme.t
