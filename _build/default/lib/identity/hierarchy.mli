(** Hierarchical user identity namespace (paper §9, Figure 6).

    The paper's future-work proposal: an operating system in which every
    user can create protection domains below their own name on the fly,
    forming a tree such as

    {v
    root
     └─ dthain
         ├─ httpd ── webapp
         └─ grid ──  visitor, anon2, anon5, /O=UnivNowhere/CN=Freddy
    v}

    rendered as colon-joined names: ["root:dthain:grid:visitor"].  A
    domain may manage (create, delete, signal) any descendant domain, much
    as the supervising user is "root with respect to" the users inside an
    identity box.  This module implements the namespace; the in-kernel
    identity-box variant ({!Idbox.Kbox}) builds on it for the Figure 6
    ablation. *)

type t
(** A namespace: a mutable tree of domains rooted at ["root"]. *)

type domain
(** A node in the tree. *)

val create : unit -> t
(** A fresh namespace containing only the root domain. *)

val root : t -> domain
(** The root domain, named ["root"]. *)

val name : domain -> string
(** The local (single-component) name of a domain. *)

val full_name : domain -> string
(** Colon-joined path from the root, e.g. ["root:dthain:grid:visitor"]. *)

val parent : domain -> domain option
(** [None] only for the root. *)

val children : domain -> domain list
(** Child domains in creation order. *)

val create_child : domain -> string -> (domain, string) result
(** [create_child d name] mints a new protection domain under [d] — an
    operation any domain may perform on itself, with no privilege and no
    account database.  Errors if [name] is empty, contains [':'], or
    already exists under [d]. *)

val create_anonymous : domain -> domain
(** [create_anonymous d] creates a child with a fresh name [anonN],
    the hierarchical analogue of anonymous account creation. *)

val find : t -> string -> domain option
(** [find t full] resolves a colon-joined full name from the root. *)

val is_ancestor : ancestor:domain -> domain -> bool
(** [is_ancestor ~ancestor d] holds when [ancestor] lies on the path from
    the root to [d], strictly above it.  Ancestors hold managerial rights
    over descendants. *)

val can_manage : actor:domain -> subject:domain -> bool
(** [can_manage ~actor ~subject]: a domain manages itself and all of its
    descendants; nothing else. *)

val delete : domain -> (unit, string) result
(** Remove a domain and its whole subtree.  The root cannot be deleted. *)

val size : t -> int
(** Total number of live domains, root included. *)

val fold : t -> init:'a -> f:('a -> domain -> 'a) -> 'a
(** Pre-order fold over all live domains. *)

val pp_tree : Format.formatter -> t -> unit
(** Render the tree in the indented style of Figure 6. *)
