lib/identity/principal.mli: Format
