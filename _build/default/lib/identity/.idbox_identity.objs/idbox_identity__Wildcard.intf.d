lib/identity/wildcard.mli: Format
