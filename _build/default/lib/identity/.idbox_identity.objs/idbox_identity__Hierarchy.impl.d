lib/identity/hierarchy.ml: Format List Printf String
