lib/identity/subject.mli: Format
