lib/identity/wildcard.ml: Array Format List String
