lib/identity/hierarchy.mli: Format
