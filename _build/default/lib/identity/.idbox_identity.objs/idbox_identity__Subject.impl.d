lib/identity/subject.ml: Format List Option Printf String
