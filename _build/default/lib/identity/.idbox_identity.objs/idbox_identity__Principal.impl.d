lib/identity/principal.ml: Format String Wildcard
