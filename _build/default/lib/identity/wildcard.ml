type token =
  | Star
  | Any_char
  | Literal of char

type t = {
  src : string;
  tokens : token array;
}

let tokenize src =
  let n = String.length src in
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      let tok =
        match src.[i] with
        | '*' -> Star
        | '?' -> Any_char
        | c -> Literal c
      in
      (* Collapse runs of consecutive stars: they are equivalent to one. *)
      match (tok, acc) with
      | Star, Star :: _ -> loop (i + 1) acc
      | _ -> loop (i + 1) (tok :: acc)
  in
  Array.of_list (loop 0 [])

let compile src = { src; tokens = tokenize src }

let source t = t.src

(* Classic two-pointer glob match with backtracking to the last star.
   Linear in practice; worst case O(|pattern| * |subject|). *)
let matches t s =
  let p = t.tokens in
  let np = Array.length p and ns = String.length s in
  let rec go pi si star_pi star_si =
    if si < ns then
      if pi < np then
        match p.(pi) with
        | Star -> go (pi + 1) si pi si
        | Any_char -> go (pi + 1) (si + 1) star_pi star_si
        | Literal c ->
          if s.[si] = c then go (pi + 1) (si + 1) star_pi star_si
          else if star_pi >= 0 then
            go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
          else false
      else if star_pi >= 0 then go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
      else false
    else
      (* Subject exhausted: only trailing stars may remain. *)
      let rec only_stars i = i >= np || (p.(i) = Star && only_stars (i + 1)) in
      only_stars pi
  in
  go 0 0 (-1) 0

let is_literal t =
  Array.for_all (function Literal _ -> true | Star | Any_char -> false) t.tokens

let literal_matches pattern s = matches (compile pattern) s

let specificity t =
  Array.fold_left
    (fun acc tok -> match tok with Literal _ -> acc + 1 | Star | Any_char -> acc)
    0 t.tokens

let pp ppf t = Format.pp_print_string ppf t.src

let equal a b = String.equal a.src b.src
