(** X.509-style subject distinguished names, as used by GSI identities.

    A subject is an ordered sequence of relative distinguished names
    (attribute/value pairs) rendered in the slash form used throughout
    the grid: ["/O=UnivNowhere/CN=Fred"]. *)

type rdn = {
  attr : string;  (** Attribute type, e.g. ["O"], ["OU"], ["CN"]. *)
  value : string;  (** Attribute value; may contain any non-['/'] text. *)
}

type t = rdn list
(** A subject DN, outermost component first. *)

val of_string : string -> (t, string) result
(** [of_string s] parses the slash form.  Errors on empty input, missing
    leading slash, or a component without ['=']. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Canonical slash-form rendering. *)

val common_name : t -> string option
(** The value of the last [CN] component, if any. *)

val organization : t -> string option
(** The value of the first [O] component, if any. *)

val is_prefix : prefix:t -> t -> bool
(** [is_prefix ~prefix t] holds when [t] extends [prefix] component-wise:
    the basis of organization-level trust ("anyone under /O=X/"). *)

val append : t -> rdn -> t
(** [append t rdn] adds a component at the end (innermost position). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
