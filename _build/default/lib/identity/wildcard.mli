(** Glob-style wildcard patterns over identity strings.

    ACL entries in an identity box may name principals by pattern, e.g.
    ["globus:/O=UnivNowhere/*"] matches every identity issued under that
    organization.  Patterns support ['*'] (any substring, including none)
    and ['?'] (any single character).  All other characters match
    themselves.  Matching is case-sensitive, as grid subject names are. *)

type t
(** A compiled wildcard pattern. *)

val compile : string -> t
(** [compile pattern] parses [pattern] into a matcher.  Never fails:
    every string is a valid pattern. *)

val source : t -> string
(** [source t] returns the original pattern text. *)

val matches : t -> string -> bool
(** [matches t s] is [true] iff [s] is matched by the pattern. *)

val is_literal : t -> bool
(** [is_literal t] is [true] when the pattern contains no wildcard
    characters and therefore matches exactly one string. *)

val literal_matches : string -> string -> bool
(** [literal_matches pattern s] is a one-shot [matches (compile pattern) s]. *)

val specificity : t -> int
(** [specificity t] counts the literal (non-wildcard) characters of the
    pattern.  Used to order ACL entries from most to least specific. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print the pattern source. *)

val equal : t -> t -> bool
(** Structural equality on the pattern source. *)
