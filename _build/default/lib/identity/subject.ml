type rdn = {
  attr : string;
  value : string;
}

type t = rdn list

let parse_component comp =
  match String.index_opt comp '=' with
  | None -> Error (Printf.sprintf "subject component %S lacks '='" comp)
  | Some 0 -> Error (Printf.sprintf "subject component %S has empty attribute" comp)
  | Some i ->
    Ok
      {
        attr = String.sub comp 0 i;
        value = String.sub comp (i + 1) (String.length comp - i - 1);
      }

let of_string s =
  if String.length s = 0 then Error "empty subject"
  else if s.[0] <> '/' then Error "subject must begin with '/'"
  else
    let comps =
      String.split_on_char '/' (String.sub s 1 (String.length s - 1))
      |> List.filter (fun c -> String.length c > 0)
    in
    if comps = [] then Error "subject has no components"
    else
      let rec build acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest ->
          (match parse_component c with
           | Ok rdn -> build (rdn :: acc) rest
           | Error _ as e -> e)
      in
      build [] comps

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Subject.of_string_exn: " ^ msg)

let to_string t =
  String.concat "" (List.map (fun { attr; value } -> "/" ^ attr ^ "=" ^ value) t)

let common_name t =
  List.fold_left
    (fun acc rdn -> if String.equal rdn.attr "CN" then Some rdn.value else acc)
    None t

let organization t =
  List.find_opt (fun rdn -> String.equal rdn.attr "O") t
  |> Option.map (fun rdn -> rdn.value)

let rdn_equal a b = String.equal a.attr b.attr && String.equal a.value b.value

let rec is_prefix ~prefix t =
  match (prefix, t) with
  | [], _ -> true
  | _ :: _, [] -> false
  | p :: ps, x :: xs -> rdn_equal p x && is_prefix ~prefix:ps xs

let append t rdn = t @ [ rdn ]

let equal a b = List.length a = List.length b && List.for_all2 rdn_equal a b

let compare a b = String.compare (to_string a) (to_string b)

let pp ppf t = Format.pp_print_string ppf (to_string t)
