type domain = {
  dname : string;
  dparent : domain option;
  mutable dchildren : domain list;  (* reverse creation order *)
  mutable dlive : bool;
  dns : t;
}

and t = {
  mutable droot : domain option;
  mutable anon_counter : int;
}

let create () =
  let ns = { droot = None; anon_counter = 0 } in
  let root = { dname = "root"; dparent = None; dchildren = []; dlive = true; dns = ns } in
  ns.droot <- Some root;
  ns

let root t =
  match t.droot with
  | Some r -> r
  | None -> assert false

let name d = d.dname

let full_name d =
  let rec parts d acc =
    match d.dparent with
    | None -> d.dname :: acc
    | Some p -> parts p (d.dname :: acc)
  in
  String.concat ":" (parts d [])

let parent d = d.dparent

let children d = List.rev (List.filter (fun c -> c.dlive) d.dchildren)

let valid_name n =
  String.length n > 0 && not (String.contains n ':')

let create_child d n =
  if not d.dlive then Error "parent domain has been deleted"
  else if not (valid_name n) then
    Error (Printf.sprintf "invalid domain name %S (empty or contains ':')" n)
  else if List.exists (fun c -> c.dlive && String.equal c.dname n) d.dchildren then
    Error (Printf.sprintf "domain %S already exists under %s" n (full_name d))
  else begin
    let child = { dname = n; dparent = Some d; dchildren = []; dlive = true; dns = d.dns } in
    d.dchildren <- child :: d.dchildren;
    Ok child
  end

let create_anonymous d =
  let rec fresh () =
    d.dns.anon_counter <- d.dns.anon_counter + 1;
    let n = Printf.sprintf "anon%d" d.dns.anon_counter in
    match create_child d n with
    | Ok c -> c
    | Error _ -> fresh ()
  in
  fresh ()

let find t full =
  match String.split_on_char ':' full with
  | [] -> None
  | first :: rest ->
    let r = root t in
    if not (String.equal first r.dname) then None
    else
      let step d n =
        match d with
        | None -> None
        | Some d ->
          List.find_opt (fun c -> c.dlive && String.equal c.dname n) d.dchildren
      in
      List.fold_left step (Some r) rest

let rec is_ancestor ~ancestor d =
  match d.dparent with
  | None -> false
  | Some p -> p == ancestor || is_ancestor ~ancestor p

let can_manage ~actor ~subject = actor == subject || is_ancestor ~ancestor:actor subject

let rec mark_dead d =
  d.dlive <- false;
  List.iter mark_dead d.dchildren

let delete d =
  match d.dparent with
  | None -> Error "cannot delete the root domain"
  | Some _ when not d.dlive -> Error "domain already deleted"
  | Some _ ->
    mark_dead d;
    Ok ()

let fold t ~init ~f =
  let rec go acc d = List.fold_left go (f acc d) (children d) in
  go init (root t)

let size t = fold t ~init:0 ~f:(fun n _ -> n + 1)

let pp_tree ppf t =
  let rec go indent d =
    Format.fprintf ppf "%s%s@." indent d.dname;
    List.iter (go (indent ^ "  ")) (children d)
  in
  go "" (root t)
