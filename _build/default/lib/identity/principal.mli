(** Principal names: the high-level identities that label identity boxes.

    A principal is a free-form text string, optionally qualified by the
    authentication scheme that established it, in the [scheme:name] form
    used by Chirp:

    - ["globus:/O=UnivNowhere/CN=Fred"]
    - ["kerberos:fred@nowhere.edu"]
    - ["hostname:laptop.cs.nowhere.edu"]
    - ["unix:dthain"]
    - ["Freddy"] (an unqualified, supervisor-chosen name)

    The supervising user may choose absolutely any name for a visitor, so
    every string denotes a valid principal. *)

type scheme =
  | Globus  (** GSI public-key identity: a certificate subject DN. *)
  | Kerberos  (** A Kerberos user\@realm name. *)
  | Hostname  (** A reverse-DNS hostname identity. *)
  | Unix  (** A local Unix account name. *)
  | Other of string  (** Any other lowercase scheme token. *)

type t = {
  scheme : scheme option;  (** [None] for unqualified names. *)
  name : string;  (** The name proper, without the scheme prefix. *)
}

val make : ?scheme:scheme -> string -> t
(** [make ?scheme name] builds a principal.  Raises [Invalid_argument]
    if [name] is empty. *)

val of_string : string -> t
(** [of_string s] parses [scheme:name] if the text before the first [':']
    is a known scheme token or a lowercase alphabetic word; otherwise the
    whole string is an unqualified name.  Subject DNs such as
    ["/O=X/CN=Y"] contain no [':'] and parse as unqualified. *)

val to_string : t -> string
(** [to_string t] renders the canonical [scheme:name] (or bare name) form. *)

val scheme_to_string : scheme -> string
(** The lowercase wire token for a scheme. *)

val scheme_of_string : string -> scheme option
(** [scheme_of_string s] recognizes a scheme token; [None] when [s] is not
    a plausible scheme (empty, or containing non-token characters). *)

val equal : t -> t -> bool
(** Principals are equal when their canonical strings are equal. *)

val compare : t -> t -> int
(** Total order on canonical strings. *)

val anonymous : t
(** The distinguished principal ["anonymous"] used before authentication. *)

val nobody : t
(** The distinguished principal ["unix:nobody"]: the identity under which
    un-ACL'd resources are evaluated for visitors. *)

val matches_pattern : pattern:string -> t -> bool
(** [matches_pattern ~pattern t] is wildcard matching of the canonical
    string against [pattern] (see {!Wildcard}). *)

val pp : Format.formatter -> t -> unit
(** Pretty-print the canonical form. *)
