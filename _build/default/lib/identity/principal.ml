type scheme =
  | Globus
  | Kerberos
  | Hostname
  | Unix
  | Other of string

type t = {
  scheme : scheme option;
  name : string;
}

let scheme_to_string = function
  | Globus -> "globus"
  | Kerberos -> "kerberos"
  | Hostname -> "hostname"
  | Unix -> "unix"
  | Other s -> s

let is_scheme_token s =
  String.length s > 0
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_' || c = '-') s

let scheme_of_string s =
  match s with
  | "globus" -> Some Globus
  | "kerberos" -> Some Kerberos
  | "hostname" -> Some Hostname
  | "unix" -> Some Unix
  | _ -> if is_scheme_token s then Some (Other s) else None

let make ?scheme name =
  if String.length name = 0 then invalid_arg "Principal.make: empty name";
  { scheme; name }

let of_string s =
  match String.index_opt s ':' with
  | None -> { scheme = None; name = s }
  | Some i ->
    let prefix = String.sub s 0 i in
    (match scheme_of_string prefix with
     | Some scheme when i + 1 < String.length s ->
       { scheme = Some scheme; name = String.sub s (i + 1) (String.length s - i - 1) }
     | Some _ | None -> { scheme = None; name = s })

let to_string t =
  match t.scheme with
  | None -> t.name
  | Some scheme -> scheme_to_string scheme ^ ":" ^ t.name

let equal a b = String.equal (to_string a) (to_string b)

let compare a b = String.compare (to_string a) (to_string b)

let anonymous = { scheme = None; name = "anonymous" }

let nobody = { scheme = Some Unix; name = "nobody" }

let matches_pattern ~pattern t = Wildcard.literal_matches pattern (to_string t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
