type entry = {
  name : string;
  uid : int;
  gecos : string;
  home : string;
  shell : string;
}

type t = {
  by_name : (string, entry) Hashtbl.t;
  by_uid : (int, entry) Hashtbl.t;
  mutable next_uid : int;
}

let root_uid = 0
let nobody_uid = 65534

let insert t e =
  Hashtbl.replace t.by_name e.name e;
  Hashtbl.replace t.by_uid e.uid e

let create () =
  let t = { by_name = Hashtbl.create 16; by_uid = Hashtbl.create 16; next_uid = 1000 } in
  insert t { name = "root"; uid = root_uid; gecos = "superuser"; home = "/root"; shell = "/bin/sh" };
  insert t
    { name = "nobody"; uid = nobody_uid; gecos = "unprivileged"; home = "/"; shell = "/bin/false" };
  t

let add t ?(gecos = "") ?home ?(shell = "/bin/sh") name =
  if String.length name = 0 then Error "empty account name"
  else if Hashtbl.mem t.by_name name then
    Error (Printf.sprintf "account %S already exists" name)
  else begin
    let uid = t.next_uid in
    t.next_uid <- uid + 1;
    let home = match home with Some h -> h | None -> "/home/" ^ name in
    let e = { name; uid; gecos; home; shell } in
    insert t e;
    Ok e
  end

let remove t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> Error (Printf.sprintf "no account %S" name)
  | Some e when e.uid = root_uid || e.uid = nobody_uid ->
    Error (Printf.sprintf "account %S cannot be removed" name)
  | Some e ->
    Hashtbl.remove t.by_name name;
    Hashtbl.remove t.by_uid e.uid;
    Ok ()

let find t name = Hashtbl.find_opt t.by_name name

let find_uid t uid = Hashtbl.find_opt t.by_uid uid

let name_of_uid t uid =
  match find_uid t uid with
  | Some e -> e.name
  | None -> Printf.sprintf "uid%d" uid

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.by_uid []
  |> List.sort (fun a b -> Int.compare a.uid b.uid)

let count t = Hashtbl.length t.by_uid

let render_entry e =
  Printf.sprintf "%s:x:%d:%d:%s:%s:%s" e.name e.uid e.uid e.gecos e.home e.shell

let render_passwd t =
  String.concat "" (List.map (fun e -> render_entry e ^ "\n") (entries t))

let pp ppf t = Format.pp_print_string ppf (render_passwd t)
