lib/kernel/trace.ml: Idbox_vfs Syscall
