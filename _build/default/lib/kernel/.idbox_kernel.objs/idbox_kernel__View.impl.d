lib/kernel/view.ml: Fd_table Hashtbl List String
