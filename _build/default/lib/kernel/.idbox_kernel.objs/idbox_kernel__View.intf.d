lib/kernel/view.mli: Fd_table Hashtbl
