lib/kernel/fd_table.mli: Idbox_vfs
