lib/kernel/account.ml: Format Hashtbl Int List Printf String
