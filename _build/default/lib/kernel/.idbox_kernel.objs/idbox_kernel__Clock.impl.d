lib/kernel/clock.ml: Format Int64
