lib/kernel/kernel.ml: Account Bytes Clock Cost Effect Fd_table Fun Hashtbl Idbox_vfs Int Int64 List Proc Program Queue String Syscall Trace View
