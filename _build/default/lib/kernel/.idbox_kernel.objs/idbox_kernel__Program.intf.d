lib/kernel/program.mli: Effect Syscall
