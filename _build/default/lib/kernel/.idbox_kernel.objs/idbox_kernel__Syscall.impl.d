lib/kernel/syscall.ml: Format Idbox_vfs List Stdlib String
