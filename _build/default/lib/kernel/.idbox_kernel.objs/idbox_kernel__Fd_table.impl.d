lib/kernel/fd_table.ml: Hashtbl Idbox_vfs Int List
