lib/kernel/proc.mli: Effect Program Syscall Trace View
