lib/kernel/account.mli: Format
