lib/kernel/cost.mli: Syscall
