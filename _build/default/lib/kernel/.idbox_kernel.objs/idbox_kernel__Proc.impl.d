lib/kernel/proc.ml: Effect Program Syscall Trace View
