lib/kernel/cost.ml: Float Idbox_vfs Int64 List Syscall
