lib/kernel/program.ml: Effect Hashtbl List String Syscall
