lib/kernel/clock.mli: Format
