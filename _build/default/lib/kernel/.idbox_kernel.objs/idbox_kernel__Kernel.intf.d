lib/kernel/kernel.mli: Account Clock Cost Idbox_vfs Program Syscall Trace View
