lib/kernel/libc.mli: Idbox_vfs Syscall
