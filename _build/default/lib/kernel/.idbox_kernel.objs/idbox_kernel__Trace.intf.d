lib/kernel/trace.mli: Idbox_vfs Syscall
