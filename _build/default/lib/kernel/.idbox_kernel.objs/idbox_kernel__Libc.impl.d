lib/kernel/libc.ml: Buffer Idbox_vfs Int64 Program String Syscall
