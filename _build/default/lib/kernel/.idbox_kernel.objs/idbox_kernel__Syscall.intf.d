lib/kernel/syscall.mli: Format Idbox_vfs Stdlib
