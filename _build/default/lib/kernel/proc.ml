type continuation = (Syscall.result, unit) Effect.Deep.continuation

type run_state =
  | Not_started of Program.main * string list
  | Deliver of continuation * Syscall.result
  | Running
  | Waiting of { wk : continuation; wreq : Syscall.request }
  | Zombie of int
  | Reaped of int

type t = {
  pid : int;
  parent : int;
  view : View.t;
  mutable run : run_state;
  mutable pending : (Syscall.request * continuation) option;
  mutable tracer : Trace.handler option;
  mutable children : int list;
}

let make ~pid ~parent ~uid ~cwd ~env ~main ~args =
  {
    pid;
    parent;
    view = View.make ~uid ~cwd ~env ();
    run = Not_started (main, args);
    pending = None;
    tracer = None;
    children = [];
  }

let is_alive t =
  match t.run with
  | Zombie _ | Reaped _ -> false
  | Not_started _ | Deliver _ | Running | Waiting _ -> true

let exit_status t =
  match t.run with
  | Zombie code | Reaped code -> Some code
  | Not_started _ | Deliver _ | Running | Waiting _ -> None

let state_name t =
  match t.run with
  | Not_started _ -> "new"
  | Deliver _ -> "runnable"
  | Running -> "running"
  | Waiting _ -> "waiting"
  | Zombie _ -> "zombie"
  | Reaped _ -> "reaped"
