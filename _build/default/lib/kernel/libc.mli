(** The C-library veneer: convenient typed wrappers around the raw
    {!Program.Sys} effect, for use inside simulated programs.

    Functions come in two flavours: [result]-returning wrappers mapping
    errno faithfully, and [_exn] conveniences that raise [Failure] with
    a readable message — handy in workload programs where an error is a
    bug in the experiment, not a condition to handle. *)

type 'a r := ('a, Idbox_vfs.Errno.t) result

val getpid : unit -> int
val getppid : unit -> int
val getuid : unit -> int

val get_user_name : unit -> string
(** The paper's new system call: the caller's high-level identity
    (inside an identity box) or local account name (outside). *)

val getcwd : unit -> string
val chdir : string -> unit r

val open_file : ?flags:Idbox_vfs.Fs.open_flags -> ?mode:int -> string -> int r
val close : int -> unit r
val read : int -> len:int -> string r
val write : int -> string -> int r
val pread : int -> off:int -> len:int -> string r
val pwrite : int -> off:int -> string -> int r
val lseek : int -> off:int -> whence:Syscall.whence -> int r
val stat : string -> Idbox_vfs.Fs.stat r
val lstat : string -> Idbox_vfs.Fs.stat r
val fstat : int -> Idbox_vfs.Fs.stat r
val mkdir : ?mode:int -> string -> unit r
val rmdir : string -> unit r
val unlink : string -> unit r
val link : target:string -> string -> unit r
val symlink : target:string -> string -> unit r
val readlink : string -> string r
val rename : src:string -> dst:string -> unit r
val readdir : string -> string list r
val chmod : mode:int -> string -> unit r
val chown : owner:int -> string -> unit r
val truncate : len:int -> string -> unit r
val pipe : unit -> (int * int) r
(** [(read_fd, write_fd)].  Children inherit both ends; close the one
    you don't use, as on Unix, or EOF never arrives. *)

val spawn : string -> args:string list -> int r
val waitpid : int -> (int * int) r
(** [(pid, status)]. Pass [-1] for "any child". *)

val exit : int -> 'a
(** Terminate the calling process. *)

val kill : pid:int -> signal:int -> unit r
val getenv : string -> string option
val setenv : string -> string -> unit
val getacl : string -> string r
(** Identity-box call: the ACL text governing a path ([ENOSYS] outside). *)

val setacl : path:string -> entry:string -> unit r
(** Identity-box call: install one ACL entry line (needs the [a] right). *)

val compute : int64 -> unit
(** Burn the given nanoseconds of user-mode CPU. *)

val compute_us : float -> unit
(** Burn microseconds of user-mode CPU. *)

(** {1 Whole-file conveniences} *)

val read_all : int -> string r
(** Read from the current position to end-of-file in 8 KB blocks. *)

val write_string : int -> string -> unit r
(** Write the whole string (our [write] never short-writes, but this
    checks and converts the count). *)

val read_file : string -> string r
val write_file : string -> contents:string -> unit r
val with_file :
  ?flags:Idbox_vfs.Fs.open_flags -> ?mode:int -> string -> (int -> 'a r) -> 'a r

(** {1 Exception-raising variants} *)

exception Syscall_failed of string * Idbox_vfs.Errno.t

val check : string -> 'a r -> 'a
(** [check what r] unwraps or raises {!Syscall_failed}[ (what, errno)]. *)
