(** Per-process (and per-supervisor) file descriptor tables.

    Both simulated processes and interposition agents own one of these:
    the agent keeps the {e real} descriptors, while its tracees hold only
    virtual numbers that the agent maps (paper §3: Parrot "keep[s] tables
    of open files"). *)

type open_file = {
  inode : Idbox_vfs.Inode.t;
  of_path : string;  (** The absolute path the file was opened by. *)
  flags : Idbox_vfs.Fs.open_flags;
  mutable pos : int;  (** Current file offset. *)
}

type t

val create : unit -> t

val limit : int
(** Maximum simultaneously open descriptors per table (256). *)

val alloc : t -> open_file -> (int, Idbox_vfs.Errno.t) result
(** Lowest free descriptor, or [EMFILE]. *)

val alloc_at : t -> int -> open_file -> unit
(** Install at a specific number (used to inject the I/O channel fd);
    replaces any previous entry. *)

val find : t -> int -> open_file option

val close : t -> int -> (unit, Idbox_vfs.Errno.t) result
(** [EBADF] when not open. *)

val close_all : t -> unit

val count : t -> int

val fds : t -> int list
(** Open descriptor numbers, sorted. *)
