(** The mutable execution context a system call runs against: uid,
    working directory, descriptor table, environment.

    Both simulated processes (via their PCB) and host-level supervisors
    (the interposition agent's own descriptor table and credentials) own
    a view; {!Kernel.execute} implements file-level system calls against
    any view, which is exactly how a delegating supervisor makes "its
    own" system calls on behalf of a tracee. *)

type t = {
  mutable uid : int;
  mutable cwd : string;
  fds : Fd_table.t;
  env : (string, string) Hashtbl.t;
}

val make : uid:int -> ?cwd:string -> ?env:(string * string) list -> unit -> t

val getenv : t -> string -> string option
val setenv : t -> string -> string -> unit
val env_bindings : t -> (string * string) list
(** Sorted by name. *)
