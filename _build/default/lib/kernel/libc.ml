module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let sys = Program.sys

exception Syscall_failed of string * Errno.t

let check what = function
  | Ok v -> v
  | Error e -> raise (Syscall_failed (what, e))

let expect_int what = function
  | Ok (Syscall.Int n) -> Ok n
  | Ok _ -> invalid_arg (what ^ ": unexpected result shape")
  | Error e -> Error e

let expect_unit what = function
  | Ok Syscall.Unit -> Ok ()
  | Ok _ -> invalid_arg (what ^ ": unexpected result shape")
  | Error e -> Error e

let expect_str what = function
  | Ok (Syscall.Str s) -> Ok s
  | Ok _ -> invalid_arg (what ^ ": unexpected result shape")
  | Error e -> Error e

let expect_data what = function
  | Ok (Syscall.Data d) -> Ok d
  | Ok _ -> invalid_arg (what ^ ": unexpected result shape")
  | Error e -> Error e

let expect_stat what = function
  | Ok (Syscall.Stat_v st) -> Ok st
  | Ok _ -> invalid_arg (what ^ ": unexpected result shape")
  | Error e -> Error e

let getpid () = check "getpid" (expect_int "getpid" (sys Syscall.Getpid))
let getppid () = check "getppid" (expect_int "getppid" (sys Syscall.Getppid))
let getuid () = check "getuid" (expect_int "getuid" (sys Syscall.Getuid))

let get_user_name () =
  check "get_user_name" (expect_str "get_user_name" (sys Syscall.Get_user_name))

let getcwd () = check "getcwd" (expect_str "getcwd" (sys Syscall.Getcwd))

let chdir path = expect_unit "chdir" (sys (Syscall.Chdir path))

let open_file ?(flags = Fs.rdonly) ?(mode = 0o644) path =
  expect_int "open" (sys (Syscall.Open { path; flags; mode }))

let close fd = expect_unit "close" (sys (Syscall.Close fd))

let read fd ~len = expect_data "read" (sys (Syscall.Read { fd; len }))

let write fd data = expect_int "write" (sys (Syscall.Write { fd; data }))

let pread fd ~off ~len = expect_data "pread" (sys (Syscall.Pread { fd; off; len }))

let pwrite fd ~off data =
  expect_int "pwrite" (sys (Syscall.Pwrite { fd; off; data }))

let lseek fd ~off ~whence =
  expect_int "lseek" (sys (Syscall.Lseek { fd; off; whence }))

let stat path = expect_stat "stat" (sys (Syscall.Stat path))
let lstat path = expect_stat "lstat" (sys (Syscall.Lstat path))
let fstat fd = expect_stat "fstat" (sys (Syscall.Fstat fd))

let mkdir ?(mode = 0o755) path = expect_unit "mkdir" (sys (Syscall.Mkdir { path; mode }))

let rmdir path = expect_unit "rmdir" (sys (Syscall.Rmdir path))
let unlink path = expect_unit "unlink" (sys (Syscall.Unlink path))

let link ~target path = expect_unit "link" (sys (Syscall.Link { target; path }))

let symlink ~target path =
  expect_unit "symlink" (sys (Syscall.Symlink { target; path }))

let readlink path = expect_str "readlink" (sys (Syscall.Readlink path))

let rename ~src ~dst = expect_unit "rename" (sys (Syscall.Rename { src; dst }))

let readdir path =
  match sys (Syscall.Readdir path) with
  | Ok (Syscall.Names names) -> Ok names
  | Ok _ -> invalid_arg "readdir: unexpected result shape"
  | Error e -> Error e

let chmod ~mode path = expect_unit "chmod" (sys (Syscall.Chmod { path; mode }))
let chown ~owner path = expect_unit "chown" (sys (Syscall.Chown { path; owner }))

let truncate ~len path = expect_unit "truncate" (sys (Syscall.Truncate { path; len }))

let pipe () =
  match sys Syscall.Pipe with
  | Ok (Syscall.Fd_pair { rd; wr }) -> Ok (rd, wr)
  | Ok _ -> invalid_arg "pipe: unexpected result shape"
  | Error e -> Error e

let spawn path ~args = expect_int "spawn" (sys (Syscall.Spawn { path; args }))

let waitpid pid =
  match sys (Syscall.Waitpid pid) with
  | Ok (Syscall.Wait_v { pid; status }) -> Ok (pid, status)
  | Ok _ -> invalid_arg "waitpid: unexpected result shape"
  | Error e -> Error e

let exit code =
  ignore (sys (Syscall.Exit code));
  (* The kernel never resumes an exiting process. *)
  assert false

let kill ~pid ~signal = expect_unit "kill" (sys (Syscall.Kill { pid; signal }))

let getenv name =
  match sys (Syscall.Getenv name) with
  | Ok (Syscall.Str v) -> Some v
  | Ok _ -> invalid_arg "getenv: unexpected result shape"
  | Error _ -> None

let setenv name value =
  check "setenv" (expect_unit "setenv" (sys (Syscall.Setenv { name; value })))

let getacl path = expect_str "getacl" (sys (Syscall.Getacl path))

let setacl ~path ~entry = expect_unit "setacl" (sys (Syscall.Setacl { path; entry }))

let compute ns = check "compute" (expect_unit "compute" (sys (Syscall.Compute ns)))

let compute_us us = compute (Int64.of_float (us *. 1e3))

let block_size = 8192

let read_all fd =
  let buf = Buffer.create block_size in
  let rec loop () =
    match read fd ~len:block_size with
    | Error e -> Error e
    | Ok "" -> Ok (Buffer.contents buf)
    | Ok chunk ->
      Buffer.add_string buf chunk;
      loop ()
  in
  loop ()

let write_string fd s =
  match write fd s with
  | Error e -> Error e
  | Ok n -> if n = String.length s then Ok () else Error Errno.ENOSPC

let with_file ?(flags = Fs.rdonly) ?(mode = 0o644) path f =
  match open_file ~flags ~mode path with
  | Error e -> Error e
  | Ok fd ->
    let result = f fd in
    (match close fd with
     | Ok () -> result
     | Error e -> (match result with Ok _ -> Error e | Error _ -> result))

let read_file path = with_file path read_all

let write_file path ~contents =
  with_file ~flags:Fs.wronly_create path (fun fd -> write_string fd contents)
