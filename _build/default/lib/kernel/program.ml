type main = string list -> int

type _ Effect.t += Sys : Syscall.request -> Syscall.result Effect.t

let sys req = Effect.perform (Sys req)

exception Exited of int

exception Killed of int

let registry : (string, main) Hashtbl.t = Hashtbl.create 32

let register name main = Hashtbl.replace registry name main

let find name = Hashtbl.find_opt registry name

let prefix = "#!idbox-program:"

let marker name = prefix ^ name ^ "\n"

let of_marker contents =
  if String.length contents > String.length prefix
     && String.equal (String.sub contents 0 (String.length prefix)) prefix
  then
    let rest = String.sub contents (String.length prefix)
        (String.length contents - String.length prefix) in
    match String.index_opt rest '\n' with
    | Some i -> Some (String.sub rest 0 i)
    | None -> Some rest
  else None

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let snapshot () = Hashtbl.fold (fun name main acc -> (name, main) :: acc) registry []

let restore entries =
  Hashtbl.reset registry;
  List.iter (fun (name, main) -> Hashtbl.replace registry name main) entries
