(** Process control blocks for the simulated kernel.

    A process is an OCaml fiber (an effect-handled computation) plus the
    classic PCB state: pid, parent, a {!View.t} (uid, cwd, descriptors,
    environment), and its scheduler state.  Continuations are one-shot;
    the PCB owns the suspended continuation whenever the process is not
    on the scheduler's stack. *)

type continuation = (Syscall.result, unit) Effect.Deep.continuation

type run_state =
  | Not_started of Program.main * string list
      (** Queued but never run. *)
  | Deliver of continuation * Syscall.result
      (** Ready: resume by delivering the stored syscall result. *)
  | Running  (** Currently executing on the scheduler's stack. *)
  | Waiting of { wk : continuation; wreq : Syscall.request }
      (** Blocked in a syscall (e.g. [waitpid] with no zombie child). *)
  | Zombie of int  (** Exited with status, not yet reaped. *)
  | Reaped of int  (** Exited and collected; status kept for queries. *)

type t = {
  pid : int;
  parent : int;
  view : View.t;
  mutable run : run_state;
  mutable pending : (Syscall.request * continuation) option;
      (** Set by the effect handler when the fiber performs a syscall;
          consumed by the scheduler immediately after the fiber yields. *)
  mutable tracer : Trace.handler option;
  mutable children : int list;  (** Live and zombie child pids. *)
}

val make :
  pid:int ->
  parent:int ->
  uid:int ->
  cwd:string ->
  env:(string * string) list ->
  main:Program.main ->
  args:string list ->
  t

val is_alive : t -> bool
(** Not a zombie and not reaped. *)

val exit_status : t -> int option
(** The status of a zombie or reaped process. *)

val state_name : t -> string
(** For diagnostics: ["runnable"], ["waiting"], ["zombie"], ... *)
