type entry_action =
  | Pass
  | Rewrite of Syscall.request
  | Deny of Idbox_vfs.Errno.t

type exit_action =
  | Keep
  | Replace of Syscall.result

type event =
  | Spawned of { pid : int; parent : int }
  | Exited of { pid : int; code : int }

type handler = {
  on_entry : pid:int -> Syscall.request -> entry_action;
  on_exit : pid:int -> Syscall.request -> Syscall.result -> exit_action;
  on_event : event -> unit;
}

let pass_through =
  {
    on_entry = (fun ~pid:_ _ -> Pass);
    on_exit = (fun ~pid:_ _ _ -> Keep);
    on_event = (fun _ -> ());
  }
