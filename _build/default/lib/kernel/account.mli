(** The local Unix account database — the thing identity boxing makes
    irrelevant for visitors, and the thing every classical mapping scheme
    (Figure 1) must modify as root.

    Accounts live both here (the kernel's authoritative table) and as a
    rendered [/etc/passwd] file in the filesystem, because the paper's
    identity box redirects [/etc/passwd] reads to a private copy with the
    visiting identity prepended. *)

type entry = {
  name : string;
  uid : int;
  gecos : string;  (** Free-text description field. *)
  home : string;
  shell : string;
}

type t

val create : unit -> t
(** A database containing [root] (uid 0) and [nobody] (uid 65534). *)

val add : t -> ?gecos:string -> ?home:string -> ?shell:string -> string -> (entry, string) result
(** [add t name] allocates the next free uid.  Errors if the name is
    taken or empty. *)

val remove : t -> string -> (unit, string) result
(** Remove an account.  [root] and [nobody] cannot be removed. *)

val find : t -> string -> entry option
val find_uid : t -> int -> entry option
val name_of_uid : t -> int -> string
(** Account name, or ["uid<N>"] for unknown uids. *)

val entries : t -> entry list
(** All entries, sorted by uid. *)

val count : t -> int

val root_uid : int
val nobody_uid : int

val render_passwd : t -> string
(** The classic colon-separated [/etc/passwd] text. *)

val render_entry : entry -> string
(** One passwd line, no newline. *)

val pp : Format.formatter -> t -> unit
