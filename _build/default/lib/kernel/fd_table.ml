type open_file = {
  inode : Idbox_vfs.Inode.t;
  of_path : string;
  flags : Idbox_vfs.Fs.open_flags;
  mutable pos : int;
}

type t = (int, open_file) Hashtbl.t

let limit = 256

let create () = Hashtbl.create 8

let alloc t file =
  if Hashtbl.length t >= limit then Error Idbox_vfs.Errno.EMFILE
  else begin
    let rec first_free fd = if Hashtbl.mem t fd then first_free (fd + 1) else fd in
    let fd = first_free 0 in
    Hashtbl.replace t fd file;
    Ok fd
  end

let alloc_at t fd file = Hashtbl.replace t fd file

let find t fd = Hashtbl.find_opt t fd

let close t fd =
  if Hashtbl.mem t fd then begin
    Hashtbl.remove t fd;
    Ok ()
  end
  else Error Idbox_vfs.Errno.EBADF

let close_all t = Hashtbl.reset t

let count t = Hashtbl.length t

let fds t = Hashtbl.fold (fun fd _ acc -> fd :: acc) t [] |> List.sort Int.compare
