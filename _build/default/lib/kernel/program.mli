(** Programs: the code that simulated processes run, and the effect
    through which they make system calls.

    A program's [main] receives its argument vector and returns an exit
    code; inside it, every interaction with the world happens by
    performing the {!Sys} effect (via {!Libc}'s wrappers).  Executable
    files in the simulated filesystem carry a one-line marker naming a
    registered program — the moral equivalent of a [#!] interpreter
    line — so that staging a binary onto a Chirp server and [exec]ing it
    works exactly as in Figure 3. *)

type main = string list -> int
(** A program entry point: argv (including argv0) to exit code. *)

type _ Effect.t += Sys : Syscall.request -> Syscall.result Effect.t
(** The system call effect.  Performed only from inside a process fiber;
    performing it elsewhere raises [Effect.Unhandled]. *)

val sys : Syscall.request -> Syscall.result
(** [sys req] performs {!Sys}. *)

exception Exited of int
(** Raised by [Libc.exit] to unwind a fiber; the kernel turns it into a
    normal process exit. *)

exception Killed of int
(** Injected by the kernel into a fiber whose process was killed; the
    argument is the signal number. *)

(** {1 The program registry}

    A global name → [main] table, playing the role of the binaries
    installed on every machine.  It is global (shared by all simulated
    kernels) just as the same binary can be staged onto any host. *)

val register : string -> main -> unit
(** [register name main] installs or replaces a program. *)

val find : string -> main option

val marker : string -> string
(** [marker name] is the executable-file contents that names a
    registered program: ["#!idbox-program:NAME\n"]. *)

val of_marker : string -> string option
(** Parse the program name out of executable-file contents. *)

val names : unit -> string list
(** Registered program names, sorted. *)

val snapshot : unit -> (string * main) list
(** The registry's current contents (for save/restore in tests). *)

val restore : (string * main) list -> unit
(** Replace the registry's contents with a snapshot. *)
