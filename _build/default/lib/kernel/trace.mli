(** The kernel's tracing hook: the simulated analogue of [ptrace]'s
    syscall-stop protocol.

    A traced process stops at every system call entry and exit; the
    tracer may rewrite the call at entry (in particular, {e nullify} it
    into a harmless [getpid], the canonical interposition move of
    Fig. 4) and replace the result at exit.  Children of a traced
    process are traced by the same handler, so nothing escapes the box
    by forking.

    The handler callbacks are host-level code; the context-switch and
    data-movement prices a real userspace supervisor would pay are
    charged to the simulated clock by the kernel and by the
    {!Idbox_ptrace} veneer. *)

type entry_action =
  | Pass  (** Let the original call proceed. *)
  | Rewrite of Syscall.request
      (** Replace the call — e.g. nullify to [Getpid], or redirect a
          [read] into the I/O channel. *)
  | Deny of Idbox_vfs.Errno.t
      (** Nullify and fail with the given errno without executing
          anything (the "side effects of denying" pitfall: any return
          value, including [EACCES], can be injected). *)

type exit_action =
  | Keep  (** Keep the executed call's result. *)
  | Replace of Syscall.result  (** Inject a different result. *)

type event =
  | Spawned of { pid : int; parent : int }
      (** A traced process created [pid]; it is traced too. *)
  | Exited of { pid : int; code : int }

type handler = {
  on_entry : pid:int -> Syscall.request -> entry_action;
  on_exit : pid:int -> Syscall.request -> Syscall.result -> exit_action;
  on_event : event -> unit;
}

val pass_through : handler
(** A do-nothing tracer: every call passes, every result keeps.  Useful
    for measuring bare trap overhead. *)
