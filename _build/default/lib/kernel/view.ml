type t = {
  mutable uid : int;
  mutable cwd : string;
  fds : Fd_table.t;
  env : (string, string) Hashtbl.t;
}

let make ~uid ?(cwd = "/") ?(env = []) () =
  let table = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace table k v) env;
  { uid; cwd; fds = Fd_table.create (); env = table }

let getenv t name = Hashtbl.find_opt t.env name

let setenv t name value = Hashtbl.replace t.env name value

let env_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.env []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
