module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Clock = Idbox_kernel.Clock
module Box = Idbox.Box
module Acl = Idbox_acl.Acl
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno
module Principal = Idbox_identity.Principal

type row = {
  mb_call : string;
  mb_direct_us : float;
  mb_boxed_us : float;
  mb_slowdown : float;
}

type trap_row = {
  tr_call : string;
  tr_context_switches : int;
  tr_peek_poke_words : int;
  tr_delegated : int;
  tr_channel_bytes : int;
}

type call =
  | Getpid
  | Stat
  | Open_close
  | Read of int
  | Write of int

let call_name = function
  | Getpid -> "getpid"
  | Stat -> "stat"
  | Open_close -> "open/close"
  | Read 1 -> "read 1 byte"
  | Read n -> Printf.sprintf "read %d KB" (n / 1024)
  | Write 1 -> "write 1 byte"
  | Write n -> Printf.sprintf "write %d KB" (n / 1024)

let bench_calls =
  [ Getpid; Stat; Open_close; Read 1; Read 8192; Write 1; Write 8192 ]

let identity = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"

let workdir = "/srv/bench"
let data_path = workdir ^ "/data.dat"

(* The measured loop: one process performing [iters] instances of the
   call against a pre-opened, cached file. *)
let loop_main call ~iters : Idbox_kernel.Program.main =
 fun _args ->
  (match call with
   | Getpid ->
     for _ = 1 to iters do
       ignore (Libc.getpid ())
     done
   | Stat ->
     for _ = 1 to iters do
       ignore (Libc.check "stat" (Libc.stat data_path))
     done
   | Open_close ->
     for _ = 1 to iters do
       let fd = Libc.check "open" (Libc.open_file data_path) in
       ignore (Libc.check "close" (Libc.close fd))
     done
   | Read len ->
     let fd = Libc.check "open" (Libc.open_file data_path) in
     for _ = 1 to iters do
       ignore (Libc.check "read" (Libc.pread fd ~off:0 ~len))
     done;
     ignore (Libc.close fd)
   | Write len ->
     let flags =
       { Fs.rd = false; wr = true; creat = false; excl = false; trunc = false;
         append = false }
     in
     let fd = Libc.check "open" (Libc.open_file ~flags data_path) in
     let block = String.make len 'b' in
     for _ = 1 to iters do
       ignore (Libc.check "write" (Libc.pwrite fd ~off:0 block))
     done;
     ignore (Libc.close fd));
  0

let fail_errno ctx = function
  | Ok v -> v
  | Error e -> invalid_arg (ctx ^ ": " ^ Errno.message e)

let fresh_host ?cost () =
  let kernel = Kernel.create ?cost () in
  let operator =
    match Account.add (Kernel.accounts kernel) "operator" with
    | Ok e -> e
    | Error m -> invalid_arg m
  in
  Kernel.refresh_passwd kernel;
  let fs = Kernel.fs kernel in
  fail_errno "bench mkdir" (Fs.mkdir_p fs ~uid:0 workdir);
  fail_errno "bench chown" (Fs.chown fs ~uid:0 ~owner:operator.Account.uid workdir);
  fail_errno "bench data"
    (Fs.write_file fs ~uid:operator.Account.uid data_path (String.make 16384 'd'));
  (kernel, operator.Account.uid)

let measure ?cost ?small_io_threshold ~boxed call ~iters =
  let kernel, owner_uid = fresh_host ?cost () in
  let main = loop_main call ~iters in
  let spawn () =
    if boxed then begin
      let box =
        match
          Box.create kernel ~supervisor_uid:owner_uid ~identity
            ?small_io_threshold ()
        with
        | Ok box -> box
        | Error e -> invalid_arg (Errno.message e)
      in
      fail_errno "bench acl" (Box.set_acl box ~dir:workdir (Acl.for_owner identity));
      Box.spawn_main box ~main ~args:[ "bench" ]
    end
    else Kernel.spawn_main kernel ~uid:owner_uid ~cwd:workdir ~main ~args:[ "bench" ] ()
  in
  let pid = spawn () in
  let t0 = Kernel.now kernel in
  Kernel.run kernel;
  (match Kernel.exit_code kernel pid with
   | Some 0 -> ()
   | Some n -> invalid_arg (Printf.sprintf "bench %s exited %d" (call_name call) n)
   | None -> invalid_arg "bench never exited");
  let elapsed = Int64.sub (Kernel.now kernel) t0 in
  Clock.to_micros elapsed /. float_of_int iters

let fig5a ?(iters = 2000) () =
  List.map
    (fun call ->
      let mb_direct_us = measure ~boxed:false call ~iters in
      let mb_boxed_us = measure ~boxed:true call ~iters in
      {
        mb_call = call_name call;
        mb_direct_us;
        mb_boxed_us;
        mb_slowdown = mb_boxed_us /. mb_direct_us;
      })
    bench_calls

let boxed_read_us ?cost ?small_io_threshold ~bytes () =
  measure ?cost ?small_io_threshold ~boxed:true (Read bytes) ~iters:500

let fig4 () =
  List.map
    (fun call ->
      let kernel, owner_uid = fresh_host () in
      let box =
        match Box.create kernel ~supervisor_uid:owner_uid ~identity () with
        | Ok box -> box
        | Error e -> invalid_arg (Errno.message e)
      in
      fail_errno "bench acl" (Box.set_acl box ~dir:workdir (Acl.for_owner identity));
      (* Warm the box's ACL cache with one throwaway call, then account
         a single instance of the bench call. *)
      let warm = Box.spawn_main box ~main:(loop_main Stat ~iters:1) ~args:[ "warm" ] in
      Kernel.run kernel;
      ignore (Kernel.exit_code kernel warm);
      let stats = Kernel.stats kernel in
      let cs0 = stats.Kernel.context_switches
      and ppw0 = stats.Kernel.peek_poke_words
      and dg0 = stats.Kernel.delegated
      and chb0 = stats.Kernel.channel_bytes in
      let pid = Box.spawn_main box ~main:(loop_main call ~iters:1) ~args:[ "one" ] in
      Kernel.run kernel;
      ignore (Kernel.exit_code kernel pid);
      {
        tr_call = call_name call;
        tr_context_switches = stats.Kernel.context_switches - cs0;
        tr_peek_poke_words = stats.Kernel.peek_poke_words - ppw0;
        tr_delegated = stats.Kernel.delegated - dg0;
        tr_channel_bytes = stats.Kernel.channel_bytes - chb0;
      })
    bench_calls
