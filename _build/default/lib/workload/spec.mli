(** Workload models for the Figure 5(b) applications.

    Each application is modelled by its system-call mix — counts of
    large-block reads and writes, small metadata operations, child
    process creations — plus user-mode compute time.  The mixes follow
    the paper's characterization of these workloads (reference [39]:
    large-block sequential I/O for the scientific codes; a metadata
    storm with many child compilers for [make]), and the {e unmodified}
    totals are sized to land near the paper's reported runtimes.  The
    boxed overheads are then {e measured}, not asserted.

    All counts scale linearly with [scale], so quick runs (scale 0.1)
    report the same percentages as full-size ones. *)

type counts = {
  reads_8k : int;  (** 8 KiB [pread]s of a staged data file. *)
  writes_8k : int;  (** 8 KiB appends to an output file. *)
  metadata : int;  (** [stat] / open-close metadata operations. *)
  small_ios : int;  (** 64-byte reads (control records). *)
  spawns : int;  (** Child processes (compilers for [make]). *)
  compute_ms : float;  (** Total user-mode CPU, milliseconds. *)
}

type t = {
  w_name : string;
  w_description : string;
  w_paper_runtime_s : float;
      (** The unmodified runtime bar in Fig. 5(b), seconds. *)
  w_paper_overhead_pct : float;
      (** The boxed slowdown the paper reports, percent. *)
  w_counts : scale:float -> counts;
}

val total_syscalls : counts -> int
(** All calls except compute chunks (for reporting). *)

val scaled : int -> scale:float -> int
(** [scaled n ~scale] with a floor of 1 when [n > 0]. *)
