lib/workload/runner.mli: Idbox_kernel Spec
