lib/workload/apps.mli: Spec
