lib/workload/microbench.ml: Idbox Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs Int64 List Printf String
