lib/workload/runner.ml: Apps Idbox Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs Int64 List Printf Spec String
