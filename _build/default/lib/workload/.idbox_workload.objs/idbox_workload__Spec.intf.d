lib/workload/spec.mli:
