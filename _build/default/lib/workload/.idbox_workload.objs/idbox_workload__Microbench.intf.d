lib/workload/microbench.mli: Idbox_kernel
