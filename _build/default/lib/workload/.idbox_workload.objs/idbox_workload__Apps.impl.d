lib/workload/apps.ml: List Spec String
