lib/workload/spec.ml:
