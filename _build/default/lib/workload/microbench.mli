(** System-call microbenchmarks: Figure 5(a) and the Figure 4 trap
    accounting.

    Each Fig. 5(a) row measures one call in a tight loop on a cached
    file — unmodified and inside an identity box — and reports simulated
    microseconds per call.  The Fig. 4 table runs one call of each type
    inside a box and reports the interposition work it triggered:
    context switches, PEEK/POKE words, delegated supervisor calls, and
    bytes copied through the I/O channel. *)

type row = {
  mb_call : string;  (** "getpid", "stat", "open/close", "read 8KB", ... *)
  mb_direct_us : float;
  mb_boxed_us : float;
  mb_slowdown : float;  (** boxed / direct. *)
}

val fig5a : ?iters:int -> unit -> row list
(** Default 2000 iterations per call (the simulation is deterministic,
    so this is about amortizing loop edges, not noise). *)

type trap_row = {
  tr_call : string;
  tr_context_switches : int;
  tr_peek_poke_words : int;
  tr_delegated : int;  (** Supervisor-made system calls. *)
  tr_channel_bytes : int;
}

val fig4 : unit -> trap_row list
(** Per-call interposition accounting for a representative call set. *)

val boxed_read_us :
  ?cost:Idbox_kernel.Cost.t ->
  ?small_io_threshold:int ->
  bytes:int ->
  unit ->
  float
(** Boxed per-call latency of a [bytes]-sized read under a custom cost
    model and channel threshold — the ablation knob for the I/O-channel
    copy cost and the PEEK/POKE cutoff. *)
