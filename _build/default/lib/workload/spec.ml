type counts = {
  reads_8k : int;
  writes_8k : int;
  metadata : int;
  small_ios : int;
  spawns : int;
  compute_ms : float;
}

type t = {
  w_name : string;
  w_description : string;
  w_paper_runtime_s : float;
  w_paper_overhead_pct : float;
  w_counts : scale:float -> counts;
}

let total_syscalls c =
  c.reads_8k + c.writes_8k + c.metadata + c.small_ios + c.spawns

let scaled n ~scale =
  if n = 0 then 0 else max 1 (int_of_float (float_of_int n *. scale))
