(** The Figure 5(b) application models.

    Five scientific applications plus a software build, with system-call
    mixes following the paper's workload characterization: the science
    codes move data in large blocks (AMANDA and CMS simulate detectors,
    BLAST scans a genomic database repeatedly, HF writes heavily, IBIS
    is compute-dominated), while [make] is a storm of small metadata
    operations and child compilers. *)

val amanda : Spec.t
(** Gamma-ray telescope simulation: read-heavy, ~1150 s, paper +1.1 %. *)

val blast : Spec.t
(** Genomic database search: the most read-intensive, ~1050 s, +5.2 %. *)

val cms : Spec.t
(** High-energy physics detector simulation: ~900 s, +2.1 %. *)

val hf : Spec.t
(** Nucleic/electronic interaction simulation: write-heavy, ~400 s, +6.5 %. *)

val ibis : Spec.t
(** Climate simulation: compute-dominated, ~800 s, +0.7 %. *)

val make_build : Spec.t
(** A software build: ~616 k top-level metadata calls plus 1300 child
    compilers, ~40 s, +35 %. *)

val all : Spec.t list
(** In the paper's Figure 5(b) order. *)

val find : string -> Spec.t option
