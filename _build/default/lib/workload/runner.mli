(** Run workload models unmodified, inside an identity box, or under the
    in-kernel box, and measure their simulated runtimes.

    Each measurement uses a fresh host so clocks, caches, and process
    tables never leak between runs.  Staging (data files, the child
    compiler executable, ACLs) happens before the measured window; the
    runtime is the simulated-clock delta around the application run. *)

type mode =
  | Direct  (** No interposition. *)
  | Boxed  (** Inside a ptrace-style identity box ({!Idbox.Box}). *)
  | Kboxed  (** Under the in-kernel box ({!Idbox.Kbox}), Fig. 6. *)

type measurement = {
  m_app : string;
  m_mode : mode;
  m_runtime_s : float;  (** Simulated seconds. *)
  m_syscalls : int;  (** Calls serviced during the run. *)
  m_trapped : int;  (** Calls that stopped at a supervisor. *)
  m_exit_code : int;
}

type comparison = {
  c_app : string;
  c_direct_s : float;
  c_boxed_s : float;
  c_overhead_pct : float;  (** Measured boxed overhead. *)
  c_paper_pct : float;  (** The paper's Fig. 5(b) number. *)
}

val mode_name : mode -> string

val run : ?cost:Idbox_kernel.Cost.t -> Spec.t -> mode -> scale:float -> measurement
(** Raises [Invalid_argument] if staging fails or the workload exits
    nonzero (a workload bug, not a measurement).  [cost] overrides the
    calibrated cost model (ablation sweeps). *)

val compare_spec : Spec.t -> scale:float -> comparison
(** Direct vs boxed for one application. *)

val fig5b : ?scale:float -> unit -> comparison list
(** The full Figure 5(b) row set (default scale 0.1: same percentages,
    one-tenth the simulated work). *)

val fig6_ablation : ?scale:float -> ?apps:Spec.t list -> unit -> (string * float * float) list
(** [(app, boxed overhead %, in-kernel overhead %)] — what moving
    identity boxing into the OS saves. *)
