let app ~name ~description ~runtime_s ~overhead_pct ~reads ~writes ~metadata
    ~small ~spawns ~compute_ms =
  {
    Spec.w_name = name;
    w_description = description;
    w_paper_runtime_s = runtime_s;
    w_paper_overhead_pct = overhead_pct;
    w_counts =
      (fun ~scale ->
        {
          Spec.reads_8k = Spec.scaled reads ~scale;
          writes_8k = Spec.scaled writes ~scale;
          metadata = Spec.scaled metadata ~scale;
          small_ios = Spec.scaled small ~scale;
          spawns = Spec.scaled spawns ~scale;
          compute_ms = compute_ms *. scale;
        });
  }

let amanda =
  app ~name:"amanda" ~description:"gamma-ray telescope simulation"
    ~runtime_s:1150. ~overhead_pct:1.1 ~reads:800_000 ~writes:60_000
    ~metadata:150_000 ~small:20_000 ~spawns:0 ~compute_ms:1_146_000.

let blast =
  app ~name:"blast" ~description:"genomic database search" ~runtime_s:1050.
    ~overhead_pct:5.2 ~reads:3_500_000 ~writes:20_000 ~metadata:600_000
    ~small:100_000 ~spawns:0 ~compute_ms:1_036_000.

let cms =
  app ~name:"cms" ~description:"high-energy physics detector simulation"
    ~runtime_s:900. ~overhead_pct:2.1 ~reads:1_200_000 ~writes:100_000
    ~metadata:220_000 ~small:30_000 ~spawns:0 ~compute_ms:894_000.

let hf =
  app ~name:"hf" ~description:"nucleic and electronic interaction simulation"
    ~runtime_s:400. ~overhead_pct:6.5 ~reads:150_000 ~writes:1_000_000
    ~metadata:600_000 ~small:50_000 ~spawns:0 ~compute_ms:393_000.

let ibis =
  app ~name:"ibis" ~description:"climate simulation" ~runtime_s:800.
    ~overhead_pct:0.7 ~reads:400_000 ~writes:50_000 ~metadata:40_000
    ~small:10_000 ~spawns:0 ~compute_ms:798_000.

let make_build =
  app ~name:"make" ~description:"software build (parrot itself)"
    ~runtime_s:40. ~overhead_pct:35.0 ~reads:30_000 ~writes:20_000
    ~metadata:616_000 ~small:100_000 ~spawns:1300 ~compute_ms:18_000.

let all = [ amanda; blast; cms; hf; ibis; make_build ]

let find name =
  List.find_opt (fun spec -> String.equal spec.Spec.w_name name) all
