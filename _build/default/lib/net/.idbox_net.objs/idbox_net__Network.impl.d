lib/net/network.ml: Hashtbl Idbox_kernel Idbox_vfs Int64 List Option String
