lib/net/network.mli: Idbox_kernel Idbox_vfs
