module Clock = Idbox_kernel.Clock
module Errno = Idbox_vfs.Errno

type endpoint_stats = {
  mutable calls : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

type endpoint = {
  handler : string -> string;
  ep_stats : endpoint_stats;
}

type t = {
  nw_clock : Clock.t;
  endpoints : (string, endpoint) Hashtbl.t;
  latency_ns : int64;
  ns_per_byte : float;
  mutable messages : int;
  mutable bytes : int;
}

let create ~clock ?(latency_us = 100.) ?(bandwidth_mbps = 100.) () =
  {
    nw_clock = clock;
    endpoints = Hashtbl.create 8;
    latency_ns = Clock.of_micros latency_us;
    (* bits/s -> ns/byte *)
    ns_per_byte = 8e3 /. bandwidth_mbps;
    messages = 0;
    bytes = 0;
  }

let clock t = t.nw_clock

let listen t ~addr handler =
  Hashtbl.replace t.endpoints addr
    { handler; ep_stats = { calls = 0; bytes_in = 0; bytes_out = 0 } }

let unlisten t ~addr = Hashtbl.remove t.endpoints addr

let addresses t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.endpoints []
  |> List.sort String.compare

let charge_transfer t nbytes =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + nbytes;
  Clock.advance t.nw_clock
    (Int64.add t.latency_ns
       (Int64.of_float (float_of_int nbytes *. t.ns_per_byte)))

let call t ~addr payload =
  match Hashtbl.find_opt t.endpoints addr with
  | None -> Error Errno.ECONNREFUSED
  | Some ep ->
    charge_transfer t (String.length payload);
    ep.ep_stats.calls <- ep.ep_stats.calls + 1;
    ep.ep_stats.bytes_in <- ep.ep_stats.bytes_in + String.length payload;
    let response = ep.handler payload in
    charge_transfer t (String.length response);
    ep.ep_stats.bytes_out <- ep.ep_stats.bytes_out + String.length response;
    Ok response

let stats t ~addr =
  Option.map (fun ep -> ep.ep_stats) (Hashtbl.find_opt t.endpoints addr)

let total_messages t = t.messages

let total_bytes t = t.bytes
