(** The simulated network fabric connecting Chirp clients, servers, and
    the catalog.

    An in-memory message-passing network with an explicit latency and
    bandwidth model: every request/response pair charges two one-way
    trips to the shared world clock.  Endpoints are named by
    ["host:port"] strings; handlers are host-level closures (a server's
    dispatch loop).  Wire payloads are opaque strings — protocol
    libraries do their own framing, so serialization bugs are real
    bugs here, not type errors papered over. *)

type t

type endpoint_stats = {
  mutable calls : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

val create :
  clock:Idbox_kernel.Clock.t ->
  ?latency_us:float ->
  ?bandwidth_mbps:float ->
  unit ->
  t
(** Default latency 100 µs one-way, bandwidth 100 Mbit/s — a 2005-era
    campus LAN. *)

val clock : t -> Idbox_kernel.Clock.t

val listen : t -> addr:string -> (string -> string) -> unit
(** Register a request handler at an address (replacing any previous
    listener). *)

val unlisten : t -> addr:string -> unit

val addresses : t -> string list
(** Listening addresses, sorted. *)

val call : t -> addr:string -> string -> (string, Idbox_vfs.Errno.t) result
(** Synchronous RPC: charges request transfer, runs the handler, charges
    response transfer.  [ECONNREFUSED] when nobody listens. *)

val stats : t -> addr:string -> endpoint_stats option

val total_messages : t -> int
val total_bytes : t -> int
