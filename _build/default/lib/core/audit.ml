module Errno = Idbox_vfs.Errno

type verdict =
  | Allowed
  | Denied of Errno.t

type event = {
  ev_seq : int;
  ev_time : int64;
  ev_pid : int;
  ev_identity : string;
  ev_op : string;
  ev_path : string;
  ev_path2 : string option;
  ev_verdict : verdict;
}

type t = {
  mutable log : event list;  (* reverse order *)
  mutable next_seq : int;
}

let create () = { log = []; next_seq = 0 }

let record t ~time ~pid ~identity ~op ~path ?path2 verdict =
  let ev =
    {
      ev_seq = t.next_seq;
      ev_time = time;
      ev_pid = pid;
      ev_identity = identity;
      ev_op = op;
      ev_path = path;
      ev_path2 = path2;
      ev_verdict = verdict;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.log <- ev :: t.log

let events t = List.rev t.log

let length t = t.next_seq

let clear t =
  t.log <- [];
  t.next_seq <- 0

let denied t =
  List.filter (fun ev -> match ev.ev_verdict with Denied _ -> true | Allowed -> false)
    (events t)

let touched_paths t =
  List.filter_map
    (fun ev ->
      match ev.ev_verdict with
      | Allowed when ev.ev_path <> "" -> Some ev.ev_path
      | Allowed | Denied _ -> None)
    (events t)
  |> List.sort_uniq String.compare

let verdict_to_string = function
  | Allowed -> "allowed"
  | Denied e -> "denied " ^ Errno.to_string e

let pp_event ppf ev =
  Format.fprintf ppf "#%d t=%Ldns pid=%d %s %s %s%s -> %s" ev.ev_seq ev.ev_time
    ev.ev_pid ev.ev_identity ev.ev_op ev.ev_path
    (match ev.ev_path2 with Some p -> " -> " ^ p | None -> "")
    (verdict_to_string ev.ev_verdict)

let pp ppf t =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) (events t)
