module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

type t = {
  r_describe : string;
  r_stat : string -> (Fs.stat, Errno.t) result;
  r_read : string -> (string, Errno.t) result;
  r_write : string -> string -> (unit, Errno.t) result;
  r_mkdir : string -> (unit, Errno.t) result;
  r_unlink : string -> (unit, Errno.t) result;
  r_rmdir : string -> (unit, Errno.t) result;
  r_readdir : string -> (string list, Errno.t) result;
  r_rename : string -> string -> (unit, Errno.t) result;
  r_getacl : string -> (string, Errno.t) result;
  r_setacl : string -> string -> (unit, Errno.t) result;
}

let not_supported ~describe =
  let no _ = Error Errno.ENOSYS in
  let no2 _ _ = Error Errno.ENOSYS in
  {
    r_describe = describe;
    r_stat = no;
    r_read = no;
    r_write = no2;
    r_mkdir = no;
    r_unlink = no;
    r_rmdir = no;
    r_readdir = no;
    r_rename = no2;
    r_getacl = no;
    r_setacl = no2;
  }

let of_local_fs fs ~uid =
  {
    r_describe = "loopback local filesystem";
    r_stat = (fun p -> Fs.stat fs ~uid p);
    r_read = (fun p -> Fs.read_file fs ~uid p);
    r_write = (fun p contents -> Fs.write_file fs ~uid p contents);
    r_mkdir = (fun p -> Result.map (fun _ -> ()) (Fs.mkdir fs ~uid ~mode:0o755 p));
    r_unlink = (fun p -> Fs.unlink fs ~uid p);
    r_rmdir = (fun p -> Fs.rmdir fs ~uid p);
    r_readdir = (fun p -> Fs.readdir fs ~uid p);
    r_rename = (fun src dst -> Fs.rename fs ~uid ~src ~dst);
    r_getacl = (fun _ -> Error Errno.ENOSYS);
    r_setacl = (fun _ _ -> Error Errno.ENOSYS);
  }
