(** The forensic audit trail (paper §9): "the identity box could be used
    for forensic purposes, recording the objects accessed and the
    activities taken by the untrusted user."

    A box with auditing enabled records one event per trapped system
    call that names an object: what was attempted, by which pid under
    which identity, on which path(s), and whether the box allowed it —
    including the errno it injected when it did not.  The trail is
    supervisor-side state: the contained program cannot see or alter
    it. *)

type verdict =
  | Allowed
  | Denied of Idbox_vfs.Errno.t

type event = {
  ev_seq : int;  (** Monotonic sequence number. *)
  ev_time : int64;  (** Simulated nanoseconds at the entry stop. *)
  ev_pid : int;
  ev_identity : string;
  ev_op : string;  (** Syscall name ("open", "unlink", ...). *)
  ev_path : string;  (** Primary object path ("" for pathless calls). *)
  ev_path2 : string option;  (** Secondary path (rename dst, link target). *)
  ev_verdict : verdict;
}

type t
(** A trail: an append-only event log. *)

val create : unit -> t
val record :
  t ->
  time:int64 ->
  pid:int ->
  identity:string ->
  op:string ->
  path:string ->
  ?path2:string ->
  verdict ->
  unit

val events : t -> event list
(** In order of occurrence. *)

val length : t -> int
val clear : t -> unit

val denied : t -> event list
(** Only the refused actions — the forensically interesting ones. *)

val touched_paths : t -> string list
(** Distinct object paths that appear in allowed events, sorted: "the
    objects accessed ... by the untrusted user". *)

val verdict_to_string : verdict -> string
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
(** The whole trail, one line per event. *)
