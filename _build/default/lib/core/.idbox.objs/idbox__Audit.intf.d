lib/core/audit.mli: Format Idbox_vfs
