lib/core/box.mli: Audit Enforce Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs Remote
