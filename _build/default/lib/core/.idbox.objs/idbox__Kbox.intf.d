lib/core/kbox.mli: Enforce Idbox_identity Idbox_kernel Idbox_vfs
