lib/core/enforce.ml: Hashtbl Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs Int64 List String
