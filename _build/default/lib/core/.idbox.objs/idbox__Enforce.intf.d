lib/core/enforce.mli: Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs
