lib/core/remote.ml: Idbox_vfs Result
