lib/core/remote.mli: Idbox_vfs
