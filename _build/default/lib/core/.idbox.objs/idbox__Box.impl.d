lib/core/box.ml: Audit Buffer Enforce Hashtbl Idbox_acl Idbox_identity Idbox_kernel Idbox_ptrace Idbox_vfs List Logs Printf Remote String
