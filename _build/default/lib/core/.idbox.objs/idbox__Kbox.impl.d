lib/core/kbox.ml: Enforce Hashtbl Idbox_acl Idbox_identity Idbox_kernel Idbox_vfs List Option Printf String
