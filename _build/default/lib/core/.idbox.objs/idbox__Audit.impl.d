lib/core/audit.ml: Format Idbox_vfs List String
