(** Remote filesystem drivers: how an identity box extends the namespace
    of its tracees to external services.

    Parrot attaches "filesystem-like services" under distinguished path
    prefixes (the paper's example: GSI-FTP under [/gsiftp], Chirp under
    [/chirp]).  A driver is a record of whole-file operations against
    the remote namespace; the box maps trapped system calls under a
    mount prefix onto driver calls.  Whole-file granularity matches the
    staging behaviour of grid data services and keeps the client side
    simple; drivers with richer protocols can still stream internally.

    The identity box performs {e no ACL checks} on mounted paths: the
    remote service is its own security domain and enforces its own ACLs
    against the identity it authenticated (which is the whole point of
    consistent global identity — the same principal name works on both
    sides). *)

type 'a r := ('a, Idbox_vfs.Errno.t) result

type t = {
  r_describe : string;  (** Human-readable driver description. *)
  r_stat : string -> Idbox_vfs.Fs.stat r;
  r_read : string -> string r;  (** Whole-file fetch. *)
  r_write : string -> string -> unit r;  (** Whole-file store. *)
  r_mkdir : string -> unit r;
  r_unlink : string -> unit r;
  r_rmdir : string -> unit r;
  r_readdir : string -> string list r;
  r_rename : string -> string -> unit r;
  r_getacl : string -> string r;
  r_setacl : string -> string -> unit r;
}

val not_supported : describe:string -> t
(** A driver whose every operation fails [ENOSYS]; override the fields
    a service supports. *)

val of_local_fs :
  Idbox_vfs.Fs.t -> uid:int -> t
(** A driver backed by a local filesystem acting as [uid] — useful for
    tests and for loop-back mounts. *)
