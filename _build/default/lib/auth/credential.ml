type t =
  | Gsi of Ca.certificate
  | Krb of Kerberos.ticket
  | Unix_account of string
  | Host of string

let method_name = function
  | Gsi _ -> "globus"
  | Krb _ -> "kerberos"
  | Unix_account _ -> "unix"
  | Host _ -> "hostname"

let describe = function
  | Gsi cert ->
    Printf.sprintf "GSI certificate for %s (issuer %s, serial %d)"
      (Idbox_identity.Subject.to_string cert.Ca.subject)
      cert.Ca.issuer cert.Ca.serial
  | Krb ticket ->
    Printf.sprintf "Kerberos ticket for %s@%s" ticket.Kerberos.user
      ticket.Kerberos.realm
  | Unix_account name -> Printf.sprintf "Unix account %s" name
  | Host host -> Printf.sprintf "hostname %s" host
