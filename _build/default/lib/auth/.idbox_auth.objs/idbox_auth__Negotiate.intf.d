lib/auth/negotiate.mli: Ca Credential Idbox_identity Kerberos
