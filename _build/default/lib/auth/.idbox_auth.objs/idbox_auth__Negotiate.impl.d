lib/auth/negotiate.ml: Ca Credential Idbox_identity Kerberos List Printf String
