lib/auth/credential.ml: Ca Idbox_identity Kerberos Printf
