lib/auth/ca.mli: Idbox_identity
