lib/auth/credential.mli: Ca Kerberos
