lib/auth/kerberos.mli: Idbox_identity
