lib/auth/ca.ml: Digest Hashtbl Idbox_identity Printf String
