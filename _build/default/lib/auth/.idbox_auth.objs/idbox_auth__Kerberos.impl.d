lib/auth/kerberos.ml: Digest Hashtbl Idbox_identity Int64 Printf String
