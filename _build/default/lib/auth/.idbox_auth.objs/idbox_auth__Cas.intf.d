lib/auth/cas.mli: Idbox_identity
