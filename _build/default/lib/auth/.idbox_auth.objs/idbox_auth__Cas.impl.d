lib/auth/cas.ml: Digest Hashtbl Idbox_identity Int64 List Printf String
