(** Unified client credentials, one constructor per authentication
    method a Chirp server supports (paper §4). *)

type t =
  | Gsi of Ca.certificate  (** A GSI certificate (possession implied). *)
  | Krb of Kerberos.ticket  (** A Kerberos ticket. *)
  | Unix_account of string  (** A local account name, asserted. *)
  | Host of string  (** The client's (reverse-DNS) hostname. *)

val method_name : t -> string
(** The wire token for the method: ["globus"], ["kerberos"], ["unix"],
    ["hostname"]. *)

val describe : t -> string
(** Human-readable description for logs. *)
