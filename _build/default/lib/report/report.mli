(** Experiment reports: regenerate every table and figure of the paper
    and print it in a paper-shaped textual form.

    Each [fig*] function runs the experiment from scratch (fresh
    simulated hosts) and prints rows comparing measured values with the
    paper's published ones where the paper gives numbers, or with its
    qualitative claim where it gives bars.  [all] prints everything in
    paper order — this is what [bench/main.exe] and EXPERIMENTS.md are
    built from. *)

val fig1 : unit -> unit
(** The identity-mapping property matrix, derived by probing. *)

val fig2 : unit -> unit
(** The interactive-session semantics, checked step by step. *)

val fig3 : unit -> unit
(** The distributed Chirp scenario with per-step outcomes. *)

val fig4 : unit -> unit
(** Per-syscall interposition accounting (context switches, PEEK/POKE
    words, delegated calls, channel bytes). *)

val fig5a : ?iters:int -> unit -> unit
(** System-call latency, unmodified vs boxed. *)

val fig5b : ?scale:float -> unit -> unit
(** Application runtimes and overheads vs the paper's percentages. *)

val fig6 : ?scale:float -> unit -> unit
(** The hierarchical-namespace tree and the in-kernel ablation. *)

val ablations : ?scale:float -> unit -> unit
(** Design-choice sweeps: I/O-channel copy cost (mmap hypothetical),
    context-switch price, small-I/O threshold, ACL length. *)

val all : ?scale:float -> unit -> unit
(** Everything, in paper order. *)
