lib/report/report.mli:
