lib/report/report.ml: Format Idbox Idbox_accounts Idbox_acl Idbox_auth Idbox_chirp Idbox_identity Idbox_kernel Idbox_net Idbox_vfs Idbox_workload Int64 List Option Printf Result String
