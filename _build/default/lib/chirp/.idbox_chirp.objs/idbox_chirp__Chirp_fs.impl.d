lib/chirp/chirp_fs.ml: Catalog Client List String
