lib/chirp/wire.mli:
