lib/chirp/server.mli: Idbox_acl Idbox_auth Idbox_kernel Idbox_net Idbox_vfs
