lib/chirp/client.mli: Idbox Idbox_auth Idbox_net Idbox_vfs Protocol
