lib/chirp/protocol.mli: Idbox_auth Idbox_vfs
