lib/chirp/protocol.ml: Idbox_auth Idbox_identity Idbox_vfs Int64 List Printf Wire
