lib/chirp/catalog.ml: Hashtbl Idbox_kernel Idbox_net Idbox_vfs Int64 List String Wire
