lib/chirp/server.ml: Digest Hashtbl Idbox Idbox_acl Idbox_auth Idbox_identity Idbox_kernel Idbox_net Idbox_vfs List Printf Protocol String
