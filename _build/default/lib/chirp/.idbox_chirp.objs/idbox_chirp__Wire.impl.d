lib/chirp/wire.ml: Buffer List Printf String
