lib/chirp/client.ml: Idbox Idbox_net Idbox_vfs Printf Protocol Result
