lib/chirp/chirp_fs.mli: Client Idbox Idbox_auth Idbox_net
