lib/chirp/catalog.mli: Idbox_net
