let encode fields =
  let buf = Buffer.create 64 in
  List.iter
    (fun field ->
      Buffer.add_string buf (string_of_int (String.length field));
      Buffer.add_char buf ':';
      Buffer.add_string buf field)
    fields;
  Buffer.contents buf

let decode s =
  let n = String.length s in
  let rec fields i acc =
    if i >= n then Ok (List.rev acc)
    else
      match String.index_from_opt s i ':' with
      | None -> Error "missing ':' after field length"
      | Some j ->
        let len_text = String.sub s i (j - i) in
        (match int_of_string_opt len_text with
         | None -> Error (Printf.sprintf "bad field length %S" len_text)
         | Some len when len < 0 -> Error "negative field length"
         | Some len ->
           if j + 1 + len > n then Error "truncated field"
           else fields (j + 1 + len) (String.sub s (j + 1) len :: acc))
  in
  fields 0 []

let encode_int = string_of_int

let decode_int s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad integer %S" s)
