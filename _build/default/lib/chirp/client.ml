module Network = Idbox_net.Network
module Errno = Idbox_vfs.Errno
module Path = Idbox_vfs.Path
module Inode = Idbox_vfs.Inode
module Fs = Idbox_vfs.Fs

type t = {
  cl_net : Network.t;
  cl_addr : string;
  token : string;
  cl_principal : string;
  cl_method : string;
}

let principal t = t.cl_principal
let auth_method t = t.cl_method
let addr t = t.cl_addr

let connect net ~addr ~credentials =
  match Network.call net ~addr (Protocol.encode_request (Protocol.Auth credentials)) with
  | Error e -> Error ("connect: " ^ Errno.message e)
  | Ok payload ->
    (match Protocol.decode_response payload with
     | Error msg -> Error ("connect: bad response: " ^ msg)
     | Ok (Protocol.R_auth { token; principal; method_ }) ->
       Ok { cl_net = net; cl_addr = addr; token; cl_principal = principal;
            cl_method = method_ }
     | Ok (Protocol.R_error (_, msg)) -> Error msg
     | Ok _ -> Error "connect: unexpected response")

let call t op =
  match
    Network.call t.cl_net ~addr:t.cl_addr
      (Protocol.encode_request (Protocol.Op { token = t.token; op }))
  with
  | Error e -> Error e
  | Ok payload ->
    (match Protocol.decode_response payload with
     | Error _ -> Error Errno.EINVAL
     | Ok (Protocol.R_error (e, _)) -> Error e
     | Ok r -> Ok r)

let expect_ok = function
  | Ok Protocol.R_ok -> Ok ()
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let mkdir t path = expect_ok (call t (Protocol.Mkdir path))
let rmdir t path = expect_ok (call t (Protocol.Rmdir path))
let unlink t path = expect_ok (call t (Protocol.Unlink path))

let put t ~path ~data = expect_ok (call t (Protocol.Put { path; data }))

let get t path =
  match call t (Protocol.Get path) with
  | Ok (Protocol.R_data data) -> Ok data
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let stat t path =
  match call t (Protocol.Stat path) with
  | Ok (Protocol.R_stat st) -> Ok st
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let readdir t path =
  match call t (Protocol.Readdir path) with
  | Ok (Protocol.R_names names) -> Ok names
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let getacl t path =
  match call t (Protocol.Getacl path) with
  | Ok (Protocol.R_str s) -> Ok s
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let setacl t ~path ~entry = expect_ok (call t (Protocol.Setacl { path; entry }))

let rename t ~src ~dst = expect_ok (call t (Protocol.Rename { src; dst }))

let exec t ?cwd ~path ~args () =
  let cwd = match cwd with Some c -> c | None -> Path.dirname path in
  match call t (Protocol.Exec { path; args; cwd }) with
  | Ok (Protocol.R_exit code) -> Ok code
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let checksum t path =
  match call t (Protocol.Checksum path) with
  | Ok (Protocol.R_str s) -> Ok s
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let whoami t =
  match call t Protocol.Whoami with
  | Ok (Protocol.R_str s) -> Ok s
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let stat_of_wire (ws : Protocol.wire_stat) =
  {
    Fs.st_ino = 0;
    st_kind =
      (match ws.Protocol.ws_kind with
       | "dir" -> Inode.Directory
       | "link" -> Inode.Symlink
       | _ -> Inode.Regular);
    st_mode = 0o644;
    st_uid = 0;
    st_nlink = 1;
    st_size = ws.Protocol.ws_size;
    st_mtime = ws.Protocol.ws_mtime;
    st_ctime = ws.Protocol.ws_mtime;
  }

let to_remote t =
  {
    Idbox.Remote.r_describe = Printf.sprintf "chirp server %s as %s" t.cl_addr t.cl_principal;
    r_stat = (fun p -> Result.map stat_of_wire (stat t p));
    r_read = (fun p -> get t p);
    r_write = (fun p data -> put t ~path:p ~data);
    r_mkdir = (fun p -> mkdir t p);
    r_unlink = (fun p -> unlink t p);
    r_rmdir = (fun p -> rmdir t p);
    r_readdir = (fun p -> readdir t p);
    r_rename = (fun src dst -> rename t ~src ~dst);
    r_getacl = (fun p -> getacl t p);
    r_setacl = (fun p entry -> setacl t ~path:p ~entry);
  }
