(** The Chirp catalog: servers report themselves; clients discover the
    set of available servers (paper §4).  A deliberately simple
    register/list service over the simulated network. *)

type entry = {
  name : string;  (** The server's self-chosen name. *)
  server_addr : string;  (** Where to connect. *)
  owner : string;  (** Deploying principal, informational. *)
  registered_at : int64;  (** Simulated time of (latest) registration. *)
}

type t

val create : Idbox_net.Network.t -> addr:string -> t
(** Start a catalog service listening at [addr]. *)

val addr : t -> string

val entries : t -> entry list
(** Current registrations, sorted by name (direct inspection). *)

val shutdown : t -> unit

(** {1 Client side} *)

val register :
  Idbox_net.Network.t ->
  catalog:string ->
  name:string ->
  server_addr:string ->
  owner:string ->
  (unit, string) result
(** What a server does at startup (and would repeat periodically). *)

val list :
  Idbox_net.Network.t -> catalog:string -> (entry list, string) result
(** What an interested party does to discover servers. *)
