(** The Chirp server: a personal file server for grid computing
    (paper §4).

    A server is deployed {e by an ordinary user} on a host: it exports a
    directory of that host's filesystem, authenticates clients by any
    negotiated method, and enforces per-directory ACLs against the
    negotiated principal — a fully virtual user space in which local
    accounts never appear.  The [exec] extension runs a staged program
    in an identity box labelled with the caller's principal, which is
    the paper's Figure 3 demonstration.

    The server object plugs into the simulated {!Idbox_net.Network} as a
    request handler; its own filesystem work runs as the deploying
    user's uid on the host kernel. *)

type t

val create :
  kernel:Idbox_kernel.Kernel.t ->
  net:Idbox_net.Network.t ->
  addr:string ->
  owner_uid:int ->
  export:string ->
  acceptor:Idbox_auth.Negotiate.acceptor ->
  ?root_acl:Idbox_acl.Acl.t ->
  unit ->
  (t, Idbox_vfs.Errno.t) result
(** Create the export directory (if missing), install [root_acl] on it
    when given, and start listening on [addr]. *)

val addr : t -> string
val export : t -> string
val owner_uid : t -> int

val sessions : t -> (string * string) list
(** [(principal, method)] for every authenticated session. *)

val exec_count : t -> int
(** Remote executions served (for experiment accounting). *)

val shutdown : t -> unit
(** Stop listening. *)

val handle : t -> string -> string
(** The raw request handler (exposed for direct-dispatch tests). *)
