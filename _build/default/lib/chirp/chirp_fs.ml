let mount_point ~addr =
  let host =
    match String.index_opt addr ':' with
    | Some i -> String.sub addr 0 i
    | None -> addr
  in
  "/chirp/" ^ host

let mount client =
  (mount_point ~addr:(Client.addr client), Client.to_remote client)

let mounts_from_catalog net ~catalog ~credentials =
  match Catalog.list net ~catalog with
  | Error m -> Error ("catalog: " ^ m)
  | Ok entries ->
    Ok
      (List.filter_map
         (fun (entry : Catalog.entry) ->
           match
             Client.connect net ~addr:entry.Catalog.server_addr ~credentials
           with
           | Ok client -> Some (mount client)
           | Error _ -> None)
         entries)
