(** The Chirp client: typed access to a remote server over the simulated
    network, plus the adapter that lets identity boxes mount a server
    under [/chirp/...] (paper §4: "files on a Chirp server appear as
    ordinary files in the path /chirp/server/path"). *)

type t
(** An authenticated session. *)

type 'a r := ('a, Idbox_vfs.Errno.t) result

val connect :
  Idbox_net.Network.t ->
  addr:string ->
  credentials:Idbox_auth.Credential.t list ->
  (t, string) result
(** Negotiate authentication (client preference order) and open a
    session. *)

val principal : t -> string
(** The negotiated principal, as the server knows us. *)

val auth_method : t -> string

val addr : t -> string

val mkdir : t -> string -> unit r
val rmdir : t -> string -> unit r
val unlink : t -> string -> unit r
val put : t -> path:string -> data:string -> unit r
val get : t -> string -> string r
val stat : t -> string -> Protocol.wire_stat r
val readdir : t -> string -> string list r
val getacl : t -> string -> string r
val setacl : t -> path:string -> entry:string -> unit r
val rename : t -> src:string -> dst:string -> unit r

val exec : t -> ?cwd:string -> path:string -> args:string list -> unit -> int r
(** The paper's remote-execution extension: run a staged program inside
    an identity box labelled with this session's principal; returns the
    exit code.  [cwd] defaults to the program's directory. *)

val checksum : t -> string -> string r
(** Server-side MD5 (hex) of a remote file: verify a transfer without a
    second copy of the data on the wire. *)

val whoami : t -> string r

val to_remote : t -> Idbox.Remote.t
(** A {!Idbox.Remote} driver backed by this session, for mounting into
    an identity box. *)
