(** The [/chirp] namespace: make Chirp servers appear as ordinary
    directories inside identity boxes (paper §4: "files on a Chirp
    server appear as ordinary files in the path /chirp/server/path").

    These helpers produce the [mounts] argument of {!Idbox.Box.create}:
    one driver per server, mounted under [/chirp/<host>].  Combined with
    the catalog, a box can be given the {e whole discovered grid} as a
    filesystem in one call. *)

val mount_point : addr:string -> string
(** ["/chirp/<host>"] — the port is dropped, as in the paper's paths. *)

val mount : Client.t -> string * Idbox.Remote.t
(** A single session as a mount pair. *)

val mounts_from_catalog :
  Idbox_net.Network.t ->
  catalog:string ->
  credentials:Idbox_auth.Credential.t list ->
  ((string * Idbox.Remote.t) list, string) result
(** Discover every registered server and open a session with each using
    the given credentials; servers that refuse the credentials are
    skipped (a grid user sees the servers that admit them).  Errors only
    if the catalog itself is unreachable. *)
