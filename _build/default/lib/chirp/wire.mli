(** Netstring-style field framing for the Chirp wire protocol.

    A message is a sequence of length-prefixed fields:
    ["<len>:<bytes>"] concatenated.  Fields are opaque byte strings, so
    payloads (file data, ACL text) need no escaping.  Decoding is total:
    malformed input yields [Error], never an exception — a network peer
    is untrusted input. *)

val encode : string list -> string

val decode : string -> (string list, string) result
(** Errors on truncated lengths, missing separators, or trailing
    garbage. *)

val encode_int : int -> string
val decode_int : string -> (int, string) result
