module Network = Idbox_net.Network
module Clock = Idbox_kernel.Clock

type entry = {
  name : string;
  server_addr : string;
  owner : string;
  registered_at : int64;
}

type t = {
  ct_net : Network.t;
  ct_addr : string;
  table : (string, entry) Hashtbl.t;
}

let addr t = t.ct_addr

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> String.compare a.name b.name)

let handle t payload =
  match Wire.decode payload with
  | Ok [ "register"; name; server_addr; owner ] ->
    Hashtbl.replace t.table name
      { name; server_addr; owner;
        registered_at = Clock.now (Network.clock t.ct_net) };
    Wire.encode [ "ok" ]
  | Ok [ "list" ] ->
    let fields =
      List.concat_map
        (fun e ->
          [ e.name; e.server_addr; e.owner; Int64.to_string e.registered_at ])
        (entries t)
    in
    Wire.encode ("ok" :: fields)
  | Ok _ | Error _ -> Wire.encode [ "error"; "bad catalog request" ]

let create net ~addr =
  let t = { ct_net = net; ct_addr = addr; table = Hashtbl.create 8 } in
  Network.listen net ~addr (fun payload -> handle t payload);
  t

let shutdown t = Network.unlisten t.ct_net ~addr:t.ct_addr

let register net ~catalog ~name ~server_addr ~owner =
  match Network.call net ~addr:catalog (Wire.encode [ "register"; name; server_addr; owner ]) with
  | Error e -> Error (Idbox_vfs.Errno.message e)
  | Ok payload ->
    (match Wire.decode payload with
     | Ok [ "ok" ] -> Ok ()
     | Ok ("error" :: msg :: _) -> Error msg
     | Ok _ | Error _ -> Error "bad catalog response")

let list net ~catalog =
  match Network.call net ~addr:catalog (Wire.encode [ "list" ]) with
  | Error e -> Error (Idbox_vfs.Errno.message e)
  | Ok payload ->
    (match Wire.decode payload with
     | Ok ("ok" :: fields) ->
       let rec parse acc = function
         | [] -> Ok (List.rev acc)
         | name :: server_addr :: owner :: stamp :: rest ->
           (match Int64.of_string_opt stamp with
            | Some registered_at ->
              parse ({ name; server_addr; owner; registered_at } :: acc) rest
            | None -> Error "bad catalog timestamp")
         | _ -> Error "truncated catalog entry"
       in
       parse [] fields
     | Ok ("error" :: msg :: _) -> Error msg
     | Ok _ | Error _ -> Error "bad catalog response")
