(* Certified delegation chains: minting, attenuation algebra, every
   structural failure mode, the wire roundtrip, the generation-validated
   chain memo in Enforce, and the tentpole scenario end to end — node B
   submits delegated work to node C through the Router under Alice's
   attenuated identity, with every hop in the audit ring, and a
   revocation kills the chain cluster-wide. *)

module Kernel = Idbox_kernel.Kernel
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Program = Idbox_kernel.Program
module Libc = Idbox_kernel.Libc
module Ca = Idbox_auth.Ca
module Delegation = Idbox_auth.Delegation
module Enforce = Idbox.Enforce
module Audit = Idbox.Audit
module Server = Idbox_chirp.Server
module Router = Idbox_cluster.Router
module World = Idbox_cluster.World
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let okm ctx = function Ok v -> v | Error m -> Alcotest.failf "%s: %s" ctx m

let rights = Rights.of_string_exn

let alice = "globus:/O=Grid/CN=Alice"
let bob = "globus:/O=Grid/CN=Bob"
let carol = "globus:/O=Grid/CN=Carol"

let mint ca ?(now = 0L) ?(ttl_ns = 1_000L) ?(hops = 4) ?epoch ?(prefix = "/")
    ~delegator ~delegatee r =
  Delegation.mint ca ~delegator ~delegatee ~rights:(rights r) ~prefix ~now
    ~ttl_ns ~hops ?epoch ()

let validate ?(trusted_name = "Grid CA") ~trusted ?revocations ?(now = 0L)
    ~holder chain =
  ignore trusted_name;
  let revocations =
    match revocations with Some r -> r | None -> Delegation.Revocations.create ()
  in
  Delegation.validate ~trusted ~revocations ~now ~holder chain

let check_failure ctx want = function
  | Ok _ -> Alcotest.failf "%s: chain admitted" ctx
  | Error f ->
    Alcotest.(check string) ctx
      (Delegation.failure_name want)
      (Delegation.failure_name f)

(* ---- attenuation algebra -------------------------------------------- *)

let single_hop () =
  let ca = Ca.create ~name:"Grid CA" in
  let tok = mint ca ~prefix:"/data" ~delegator:alice ~delegatee:bob "rwl" in
  let s =
    match validate ~trusted:[ ca ] ~holder:bob [ tok ] with
    | Ok s -> s
    | Error f -> Alcotest.failf "single hop: %s" (Delegation.failure_name f)
  in
  Alcotest.(check string) "root is the delegator" alice s.Delegation.sum_root;
  Alcotest.(check string) "holder" bob s.Delegation.sum_holder;
  Alcotest.(check bool) "grant is the hop's mask" true
    (Rights.equal (rights "rwl") s.Delegation.sum_grant);
  Alcotest.(check string) "prefix" "/data" s.Delegation.sum_prefix;
  Alcotest.(check int) "hops" 1 s.Delegation.sum_hops

let two_hop_attenuation () =
  let ca = Ca.create ~name:"Grid CA" in
  let h1 = mint ca ~prefix:"/data" ~delegator:alice ~delegatee:bob "rwl" in
  let h2 =
    mint ca ~prefix:"/data/sub" ~ttl_ns:500L ~delegator:bob ~delegatee:carol
      "rx"
  in
  let s =
    match validate ~trusted:[ ca ] ~holder:carol [ h1; h2 ] with
    | Ok s -> s
    | Error f -> Alcotest.failf "two hop: %s" (Delegation.failure_name f)
  in
  Alcotest.(check string) "root stays the first delegator" alice
    s.Delegation.sum_root;
  (* rwl ∩ rx = r: every hop attenuates, none can widen. *)
  Alcotest.(check bool) "grant is the intersection" true
    (Rights.equal (rights "r") s.Delegation.sum_grant);
  Alcotest.(check string) "narrowest prefix wins" "/data/sub"
    s.Delegation.sum_prefix;
  Alcotest.(check bool) "earliest expiry wins" true
    (Int64.equal 500L s.Delegation.sum_expires)

(* ---- every refusal, fail-closed ------------------------------------- *)

let refusals () =
  let ca = Ca.create ~name:"Grid CA" in
  let other = Ca.create ~name:"Rogue CA" in
  let h1 = mint ca ~prefix:"/data" ~delegator:alice ~delegatee:bob "rwl" in
  let h2 = mint ca ~prefix:"/data" ~delegator:bob ~delegatee:carol "rl" in
  check_failure "empty" Delegation.F_empty
    (validate ~trusted:[ ca ] ~holder:bob []);
  (* Expiry is inclusive at the boundary instant and dead one tick
     after — the Expiry rule shared with Cas and Kerberos. *)
  (match validate ~trusted:[ ca ] ~now:1_000L ~holder:bob [ h1 ] with
   | Ok _ -> ()
   | Error f ->
     Alcotest.failf "valid at now = expiry: %s" (Delegation.failure_name f));
  check_failure "expired" Delegation.F_expired
    (validate ~trusted:[ ca ] ~now:1_001L ~holder:bob [ h1 ]);
  check_failure "forged stamp" Delegation.F_forged
    (validate ~trusted:[ ca ] ~holder:bob
       [ { h1 with Delegation.dg_rights = rights "rwlaxd" } ]);
  check_failure "untrusted issuer" Delegation.F_forged
    (validate ~trusted:[ other ] ~holder:bob [ h1 ]);
  check_failure "broken link" Delegation.F_broken
    (validate ~trusted:[ ca ] ~holder:carol
       [ h1; mint ca ~prefix:"/data" ~delegator:carol ~delegatee:carol "r" ]);
  check_failure "holder mismatch" Delegation.F_broken
    (validate ~trusted:[ ca ] ~holder:alice [ h1 ]);
  check_failure "cycle" Delegation.F_cycle
    (validate ~trusted:[ ca ] ~holder:alice
       [ h1; mint ca ~prefix:"/data" ~delegator:bob ~delegatee:alice "r" ]);
  check_failure "over hop" Delegation.F_over_hop
    (validate ~trusted:[ ca ] ~holder:carol
       [ mint ca ~prefix:"/data" ~hops:1 ~delegator:alice ~delegatee:bob "rwl";
         h2 ]);
  check_failure "widened scope" Delegation.F_widened
    (validate ~trusted:[ ca ] ~holder:carol
       [ h1; mint ca ~prefix:"/other" ~delegator:bob ~delegatee:carol "r" ]);
  let rev = Delegation.Revocations.create () in
  Alcotest.(check int) "first revocation epoch" 1
    (Delegation.Revocations.revoke rev alice);
  check_failure "revoked" Delegation.F_revoked
    (validate ~trusted:[ ca ] ~revocations:rev ~holder:bob [ h1 ]);
  (* Re-minting under the current epoch resurrects the delegator. *)
  (match
     validate ~trusted:[ ca ] ~revocations:rev ~holder:bob
       [ mint ca ~prefix:"/data" ~epoch:1 ~delegator:alice ~delegatee:bob "rwl" ]
   with
   | Ok _ -> ()
   | Error f ->
     Alcotest.failf "re-mint under current epoch: %s"
       (Delegation.failure_name f))

let revocations_merge_monotone () =
  let a = Delegation.Revocations.create () in
  let b = Delegation.Revocations.create () in
  ignore (Delegation.Revocations.revoke a alice);
  ignore (Delegation.Revocations.revoke a alice);
  ignore (Delegation.Revocations.revoke b bob);
  Alcotest.(check bool) "merge grows" true
    (Delegation.Revocations.merge b (Delegation.Revocations.entries a));
  Alcotest.(check bool) "re-merge is a no-op" false
    (Delegation.Revocations.merge b (Delegation.Revocations.entries a));
  Alcotest.(check int) "pointwise max" 2 (Delegation.Revocations.epoch b alice);
  Alcotest.(check int) "own entries survive" 1
    (Delegation.Revocations.epoch b bob);
  (* Merging backwards never lowers an epoch. *)
  Alcotest.(check bool) "stale merge is a no-op" false
    (Delegation.Revocations.merge b [ (alice, 1) ]);
  Alcotest.(check int) "epoch unchanged" 2
    (Delegation.Revocations.epoch b alice)

let wire_roundtrip () =
  let ca = Ca.create ~name:"Grid CA" in
  let tok =
    mint ca ~prefix:"/data/sub" ~now:7L ~ttl_ns:400L ~hops:2 ~epoch:3
      ~delegator:alice ~delegatee:bob "rwl"
  in
  (match Delegation.token_of_fields (Delegation.token_fields tok) with
   | Error m -> Alcotest.failf "roundtrip: %s" m
   | Ok back ->
     Alcotest.(check bool) "token survives the wire" true (tok = back));
  (match Delegation.token_of_fields [ "garbage" ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "garbage decoded")

(* ---- the Enforce chain memo ----------------------------------------- *)

let counter k name = Metrics.counter_value_of (Kernel.metrics k) name

let enforce_memo () =
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  let e = Enforce.create k ~supervisor:sup () in
  let ca = Ca.create ~name:"Grid CA" in
  let rev = Delegation.Revocations.create () in
  let chain = [ mint ca ~prefix:"/data" ~delegator:alice ~delegatee:bob "rwl" ] in
  let admit ~now =
    Enforce.admit_chain e ~trusted:[ ca ] ~revocations:rev ~now ~holder:bob
      chain
  in
  (match admit ~now:0L with
   | Ok _ -> ()
   | Error f -> Alcotest.failf "cold admit: %s" (Delegation.failure_name f));
  Alcotest.(check int) "cold validation is a miss" 1
    (counter k "enforce.chain.miss");
  (match admit ~now:1L with
   | Ok _ -> ()
   | Error f -> Alcotest.failf "warm admit: %s" (Delegation.failure_name f));
  Alcotest.(check int) "second admit hits the memo" 1
    (counter k "enforce.chain.hit");
  (* The memo never outlives the summary's expiry... *)
  check_failure "memo expires with the chain" Delegation.F_expired
    (admit ~now:2_000L);
  (* ...and a revocation-generation bump forces revalidation, which now
     rejects — rejections are never cached, so this repeats. *)
  ignore (Delegation.Revocations.revoke rev alice);
  check_failure "revocation invalidates the memo" Delegation.F_revoked
    (admit ~now:1L);
  check_failure "rejections are not cached" Delegation.F_revoked
    (admit ~now:1L);
  Alcotest.(check int) "both revoked admits revalidated" 3
    (counter k "enforce.chain.miss");
  Alcotest.(check int) "reject counter split by reason" 2
    (counter k "auth.delegation.reject.revoked")

let delegated_verdict_attenuates () =
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  let e = Enforce.create k ~supervisor:sup () in
  ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 "/data/sub");
  ok "acl"
    (Enforce.write_acl e ~dir:"/data"
       (Acl.of_entries
          [ Entry.make ~pattern:"globus:/O=Grid/*" (rights "rwl") ]));
  let id = Principal.of_string alice in
  let check ~grant ~prefix ~path right =
    Enforce.check_delegated e ~identity:id ~grant:(rights grant) ~prefix ~path
      right
  in
  ok "granted right inside scope passes to the ACL"
    (check ~grant:"rl" ~prefix:"/data" ~path:"/data/sub" Right.Read);
  (match check ~grant:"l" ~prefix:"/data" ~path:"/data/sub" Right.Read with
   | Error Errno.EACCES -> ()
   | _ -> Alcotest.fail "right outside the grant admitted");
  (match check ~grant:"rl" ~prefix:"/data/sub" ~path:"/data" Right.Read with
   | Error Errno.EACCES -> ()
   | _ -> Alcotest.fail "path outside the scope admitted");
  (* The delegator's own ACL verdict still binds: Write is in the grant
     but not in Alice's ACL entry for Admin-level rights. *)
  (match check ~grant:"a" ~prefix:"/data" ~path:"/data/sub" Right.Admin with
   | Error Errno.EACCES -> ()
   | _ -> Alcotest.fail "delegation exceeded the delegator's own rights")

(* ---- the tentpole: A -> B -> C across a 3-node world ---------------- *)

let three_node_world () =
  let w = World.create () in
  List.iter
    (fun h -> okm "add_node" (World.add_node w ~host:h))
    [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ];
  World.settle w;
  w

let connect w cn =
  match World.connect w ~credentials:[ World.issue w cn ] with
  | Ok r -> r
  | Error m -> Alcotest.fail m

let delegated_exec_across_nodes () =
  Kernel.with_fresh_programs (fun () ->
      let w = three_node_world () in
      Program.register "sim" (fun _ ->
          match
            Libc.write_file "out.dat" ~contents:("by " ^ Libc.get_user_name ())
          with
          | Ok () -> 0
          | Error _ -> 1);
      let ra = connect w "Alice" in
      ok "mkdir" (Router.mkdir ra "/work");
      ok "stage" (Router.put ra ~path:"/work/sim.exe" ~data:(Program.marker "sim"));
      (* Alice delegates to Bob, Bob extends to Carol: exec+read+list
         under /work only. *)
      let chain =
        [
          World.delegate w ~delegator:"Alice" ~delegatee:"Bob"
            ~rights:(rights "rxl") ~prefix:"/work" ();
          World.delegate w ~delegator:"Bob" ~delegatee:"Carol"
            ~rights:(rights "rx") ~prefix:"/work" ();
        ]
      in
      let rc = connect w "Carol" in
      Alcotest.(check int) "delegated exec exits clean" 0
        (ok "exec_delegated"
           (Router.exec_delegated rc ~chain ~path:"/work/sim.exe"
              ~args:[ "sim.exe" ] ()));
      (* The program ran under the ROOT delegator's identity: consistent
         global identity survives two delegation hops. *)
      Alcotest.(check string) "boxed output names Alice"
        ("by " ^ alice)
        (ok "out" (Router.get ra "/work/out.dat"));
      (* Carol's own authority was never widened: outside the chain she
         still has no rights over Alice's directory. *)
      (match Router.get rc "/work/out.dat" with
       | Error Errno.EACCES -> ()
       | Ok _ -> Alcotest.fail "delegatee read without the chain"
       | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
      (* Every hop is in the serving primary's audit ring. *)
      (match Router.node_for rc "/work" with
       | None -> Alcotest.fail "no primary for /work"
       | Some primary ->
         let audit = Server.audit (World.server w primary) in
         let hops =
           List.filter
             (fun ev -> String.equal ev.Audit.ev_op "delegate")
             (Audit.events audit)
         in
         (* One record per hop per validated chain presentation (the
            second presentation hit the Enforce memo on the same server,
            still audited). *)
         Alcotest.(check bool) "per-hop audit records" true
           (List.length hops >= 2);
         Alcotest.(check bool) "first hop names Alice -> Bob" true
           (List.exists
              (fun ev ->
                String.equal ev.Audit.ev_identity alice
                && ev.Audit.ev_path2 = Some bob)
              hops);
         Alcotest.(check bool) "second hop names Bob -> Carol" true
           (List.exists
              (fun ev ->
                String.equal ev.Audit.ev_identity bob
                && ev.Audit.ev_path2 = Some carol)
              hops);
         Alcotest.(check bool) "inner verdict audited" true
           (List.exists
              (fun ev ->
                String.equal ev.Audit.ev_op "delegated.exec"
                && String.equal ev.Audit.ev_identity alice
                && ev.Audit.ev_verdict = Audit.Allowed)
              (Audit.events audit)));
      Alcotest.(check bool) "delegated execs counted" true
        (counter (World.kernel w) "chirp.delegated_exec" > 0))

let revocation_is_cluster_wide () =
  Kernel.with_fresh_programs (fun () ->
      let w = three_node_world () in
      Program.register "sim" (fun _ -> 0);
      let ra = connect w "Alice" in
      ok "mkdir" (Router.mkdir ra "/work");
      ok "stage" (Router.put ra ~path:"/work/sim.exe" ~data:(Program.marker "sim"));
      let chain =
        [
          World.delegate w ~delegator:"Alice" ~delegatee:"Carol"
            ~rights:(rights "rxl") ~prefix:"/work" ();
        ]
      in
      let rc = connect w "Carol" in
      Alcotest.(check int) "chain works before revocation" 0
        (ok "exec_delegated"
           (Router.exec_delegated rc ~chain ~path:"/work/sim.exe"
              ~args:[ "sim.exe" ] ()));
      (* Alice revokes herself; the epoch bump is root-key state and
         fans to every member. *)
      Alcotest.(check int) "revocation epoch" 1 (ok "revoke" (Router.revoke ra alice));
      List.iter
        (fun name ->
          Alcotest.(check int)
            (name ^ " heard the revocation")
            1
            (Delegation.Revocations.epoch
               (Server.revocations (World.server w name))
               alice))
        (World.members w);
      (match
         Router.exec_delegated rc ~chain ~path:"/work/sim.exe"
           ~args:[ "sim.exe" ] ()
       with
       | Error Errno.EACCES -> ()
       | Ok _ -> Alcotest.fail "revoked chain executed"
       | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
      Alcotest.(check int) "epoch readable through the router" 1
        (ok "epoch" (Router.delegation_epoch rc alice));
      (* A fresh grant under the current epoch works again. *)
      let chain2 =
        [
          World.delegate w ~delegator:"Alice" ~delegatee:"Carol"
            ~rights:(rights "rxl") ~prefix:"/work" ~epoch:1 ();
        ]
      in
      Alcotest.(check int) "re-minted chain executes" 0
        (ok "exec_delegated"
           (Router.exec_delegated rc ~chain:chain2 ~path:"/work/sim.exe"
              ~args:[ "sim.exe" ] ())))

let suite =
  [
    Alcotest.test_case "single hop attenuates to its mask" `Quick single_hop;
    Alcotest.test_case "two hops intersect rights, narrow scope" `Quick
      two_hop_attenuation;
    Alcotest.test_case "every structural defect fails closed" `Quick refusals;
    Alcotest.test_case "revocation epochs merge by pointwise max" `Quick
      revocations_merge_monotone;
    Alcotest.test_case "token survives the wire" `Quick wire_roundtrip;
    Alcotest.test_case "chain memo: hit, expire, revoke" `Quick enforce_memo;
    Alcotest.test_case "delegated verdicts never widen" `Quick
      delegated_verdict_attenuates;
    Alcotest.test_case "A->B->C delegated exec across 3 nodes" `Quick
      delegated_exec_across_nodes;
    Alcotest.test_case "revocation is cluster-wide" `Quick
      revocation_is_cluster_wide;
  ]
