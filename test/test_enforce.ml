module Kernel = Idbox_kernel.Kernel
module Enforce = Idbox.Enforce
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let fred = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"
let jane = Principal.of_string "globus:/O=UnivNowhere/CN=Jane"

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let fresh () =
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  (k, Enforce.create k ~supervisor:sup ())

let check_reads_acl_files () =
  let k, e = fresh () in
  ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 "/d");
  ok "acl"
    (Enforce.write_acl e ~dir:"/d"
       (Acl.of_entries [ Entry.make ~pattern:"globus:/O=UnivNowhere/*" (Rights.of_string_exn "rl") ]));
  (match Enforce.check_in_dir e ~identity:fred ~dir:"/d" Right.Read with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "fred denied");
  (match Enforce.check_in_dir e ~identity:fred ~dir:"/d" Right.Write with
   | Error Errno.EACCES -> ()
   | Ok () | Error _ -> Alcotest.fail "fred write allowed")

let nobody_fallback () =
  let k, e = fresh () in
  let fs = Kernel.fs k in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/open");
  ok "pub" (Fs.write_file fs ~uid:0 ~mode:0o644 "/open/pub" "x");
  ok "priv" (Fs.write_file fs ~uid:0 ~mode:0o600 "/open/priv" "x");
  (* No ACL: world-readable objects stay readable, 0600 stays private,
     and writes into a root-owned 755 dir are denied. *)
  (match Enforce.check_object e ~identity:fred ~path:"/open/pub" Right.Read with
   | Ok () -> () | Error _ -> Alcotest.fail "pub denied");
  (match Enforce.check_object e ~identity:fred ~path:"/open/priv" Right.Read with
   | Error Errno.EACCES -> () | Ok () | Error _ -> Alcotest.fail "priv allowed");
  (match Enforce.check_object e ~identity:fred ~path:"/open/new" Right.Write with
   | Error Errno.EACCES -> () | Ok () | Error _ -> Alcotest.fail "write allowed");
  (* Admin is never granted by fallback. *)
  (match Enforce.check_in_dir e ~identity:fred ~dir:"/open" Right.Admin with
   | Error Errno.EACCES -> () | Ok () | Error _ -> Alcotest.fail "admin via fallback")

let corrupt_acl_fails_closed () =
  let k, e = fresh () in
  let fs = Kernel.fs k in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/d");
  ok "junk" (Fs.write_file fs ~uid:0 ("/d/" ^ Acl.filename) "not an acl line at all");
  (match Enforce.check_in_dir e ~identity:fred ~dir:"/d" Right.Read with
   | Error Errno.EACCES -> ()
   | Ok () | Error _ -> Alcotest.fail "corrupt ACL granted access")

let governing_dir_follows_symlinks () =
  let k, e = fresh () in
  let fs = Kernel.fs k in
  ok "m1" (Fs.mkdir_p fs ~uid:0 "/a");
  ok "m2" (Fs.mkdir_p fs ~uid:0 "/b");
  ok "f" (Fs.write_file fs ~uid:0 "/b/target" "x");
  ok "ln" (Fs.symlink fs ~uid:0 ~target:"/b/target" "/a/alias");
  Alcotest.(check string) "governing dir is target's" "/b"
    (Enforce.governing_dir e "/a/alias");
  Alcotest.(check string) "plain file unchanged" "/b"
    (Enforce.governing_dir e "/b/target");
  (* Chains resolve through several hops. *)
  ok "ln2" (Fs.symlink fs ~uid:0 ~target:"/a/alias" "/a/alias2");
  Alcotest.(check string) "two hops" "/b" (Enforce.governing_dir e "/a/alias2")

let cache_coherent_across_engines () =
  let k, e1 = fresh () in
  let sup2 = Kernel.make_view k ~uid:0 () in
  let e2 = Enforce.create k ~supervisor:sup2 () in
  ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 "/d");
  ok "acl1"
    (Enforce.write_acl e1 ~dir:"/d"
       (Acl.of_entries [ Entry.make ~pattern:(Principal.to_string fred) (Rights.of_string_exn "rl") ]));
  (* e2 reads (and caches) the first version. *)
  (match Enforce.check_in_dir e2 ~identity:jane ~dir:"/d" Right.Read with
   | Error Errno.EACCES -> ()
   | Ok () | Error _ -> Alcotest.fail "jane allowed early");
  (* e1 grants jane; e2 must observe it despite its cache. *)
  ok "acl2"
    (Enforce.write_acl e1 ~dir:"/d"
       (Acl.of_entries
          [
            Entry.make ~pattern:(Principal.to_string fred) (Rights.of_string_exn "rl");
            Entry.make ~pattern:(Principal.to_string jane) (Rights.of_string_exn "r");
          ]));
  (match Enforce.check_in_dir e2 ~identity:jane ~dir:"/d" Right.Read with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "stale cache in second engine")

let plan_mkdir_reserve_precedence () =
  let k, e = fresh () in
  ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 "/d");
  (* Both write and reserve present: reserve wins (fresh namespace). *)
  ok "acl"
    (Enforce.write_acl e ~dir:"/d"
       (Acl.of_entries
          [
            Entry.make ~pattern:"globus:/O=UnivNowhere/*"
              ~reserve:(Rights.of_string_exn "rwl")
              (Rights.of_string_exn "rwl");
          ]));
  (match Enforce.plan_mkdir e ~identity:fred ~parent:"/d" with
   | Ok (Enforce.Fresh_acl acl) ->
     Alcotest.(check bool) "owner entry" true (Acl.check acl fred Right.Write);
     Alcotest.(check bool) "not jane" false (Acl.check acl jane Right.Read)
   | Ok (Enforce.Inherit_acl _) -> Alcotest.fail "inherited despite reserve"
   | Error e -> Alcotest.fail (Errno.to_string e));
  (* Write only: inherit. *)
  ok "acl2"
    (Enforce.write_acl e ~dir:"/d"
       (Acl.of_entries
          [ Entry.make ~pattern:"globus:/O=UnivNowhere/*" (Rights.of_string_exn "rwl") ]));
  (match Enforce.plan_mkdir e ~identity:fred ~parent:"/d" with
   | Ok (Enforce.Inherit_acl (Some _)) -> ()
   | Ok _ -> Alcotest.fail "expected inherited acl"
   | Error e -> Alcotest.fail (Errno.to_string e));
  (* Nothing: denied. *)
  (match Enforce.plan_mkdir e ~identity:(Principal.of_string "unix:eve") ~parent:"/d" with
   | Error Errno.EACCES -> ()
   | Ok _ -> Alcotest.fail "eve allowed"
   | Error e -> Alcotest.fail (Errno.to_string e))

let in_kernel_mode_cheaper () =
  let k = Kernel.create () in
  let e_user = Enforce.create k ~supervisor:(Kernel.make_view k ~uid:0 ()) () in
  ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 "/d");
  ok "acl"
    (Enforce.write_acl e_user ~dir:"/d"
       (Acl.of_entries [ Entry.make ~pattern:"*" (Rights.of_string_exn "rl") ]));
  let cost_of e =
    let t0 = Kernel.now k in
    ignore (Enforce.check_in_dir e ~identity:fred ~dir:"/d" Right.Read);
    Int64.sub (Kernel.now k) t0
  in
  (* Bytecode pinned off: this figure isolates the interpreter's
     delegated-vs-direct I/O gap, which the compiled program skips. *)
  let user_cost =
    cost_of
      (Enforce.create ~bytecode:false k ~supervisor:(Kernel.make_view k ~uid:0 ()) ())
  in
  let kernel_cost =
    cost_of
      (Enforce.create ~in_kernel:true ~bytecode:false k
         ~supervisor:(Kernel.make_view k ~uid:0 ()) ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "in-kernel (%Ldns) < user (%Ldns)" kernel_cost user_cost)
    true
    (Int64.compare kernel_cost user_cost < 0)

let large_acl_read () =
  (* A multi-chunk ACL file exercises the Buffer-based slurp in
     [read_acl_file]; every entry must survive the round trip. *)
  let k, e = fresh () in
  ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 "/big");
  let n = 2000 in
  let entries =
    List.init n (fun i ->
        Entry.make
          ~pattern:(Printf.sprintf "globus:/O=UnivNowhere/CN=user%04d" i)
          (Rights.of_string_exn "rl"))
  in
  ok "acl" (Enforce.write_acl e ~dir:"/big" (Acl.of_entries entries));
  let user i = Principal.of_string (Printf.sprintf "globus:/O=UnivNowhere/CN=user%04d" i) in
  (match Enforce.check_in_dir e ~identity:(user 0) ~dir:"/big" Right.Read with
   | Ok () -> () | Error _ -> Alcotest.fail "first entry lost");
  (match Enforce.check_in_dir e ~identity:(user (n - 1)) ~dir:"/big" Right.Read with
   | Ok () -> () | Error _ -> Alcotest.fail "last entry lost");
  (match Enforce.check_in_dir e ~identity:jane ~dir:"/big" Right.Read with
   | Error Errno.EACCES -> ()
   | Ok () | Error _ -> Alcotest.fail "unlisted identity allowed")

let cache_counters () =
  let module Metrics = Idbox_kernel.Metrics in
  (* Bytecode pinned off: this test counts the decision/ACL-cache tier,
     which the compiled program would answer ahead of. *)
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  let e = Enforce.create ~bytecode:false k ~supervisor:sup () in
  let value name = Metrics.counter_value_of (Kernel.metrics k) name in
  ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 "/d");
  ok "acl"
    (Enforce.write_acl e ~dir:"/d"
       (Acl.of_entries [ Entry.make ~pattern:"globus:/O=UnivNowhere/*" (Rights.of_string_exn "rl") ]));
  (* write_acl primes the cache with the freshly written ACL; drop that
     so the first check below really goes to disk. *)
  Enforce.invalidate e ~dir:"/d";
  let misses0 = value "acl.cache.miss" and hits0 = value "acl.cache.hit" in
  let dec_hits0 = value "enforce.decision.hit" in
  ignore (Enforce.check_in_dir e ~identity:fred ~dir:"/d" Right.Read);
  Alcotest.(check int) "first check misses" (misses0 + 1) (value "acl.cache.miss");
  (* Repeating fred's exact check is served by the decision cache (it
     never reaches the ACL layer); a different principal misses the
     decision cache and hits the cached ACL. *)
  ignore (Enforce.check_in_dir e ~identity:fred ~dir:"/d" Right.Read);
  Alcotest.(check int) "repeat check hits decisions" (dec_hits0 + 1)
    (value "enforce.decision.hit");
  ignore (Enforce.check_in_dir e ~identity:jane ~dir:"/d" Right.Read);
  Alcotest.(check int) "new principal hits acl cache" (hits0 + 1)
    (value "acl.cache.hit");
  Alcotest.(check int) "no further misses" (misses0 + 1) (value "acl.cache.miss");
  (* Invalidation is counted, drops the cached decisions too, and forces
     the next check back to disk. *)
  let inval0 = value "acl.cache.invalidate" in
  Enforce.invalidate e ~dir:"/d";
  Alcotest.(check int) "invalidation counted" (inval0 + 1) (value "acl.cache.invalidate");
  ignore (Enforce.check_in_dir e ~identity:fred ~dir:"/d" Right.Read);
  Alcotest.(check int) "post-invalidate miss" (misses0 + 2) (value "acl.cache.miss")

let suite =
  [
    Alcotest.test_case "check reads acl files" `Quick check_reads_acl_files;
    Alcotest.test_case "nobody fallback" `Quick nobody_fallback;
    Alcotest.test_case "corrupt acl fails closed" `Quick corrupt_acl_fails_closed;
    Alcotest.test_case "governing dir follows symlinks" `Quick governing_dir_follows_symlinks;
    Alcotest.test_case "cache coherent across engines" `Quick cache_coherent_across_engines;
    Alcotest.test_case "plan_mkdir precedence" `Quick plan_mkdir_reserve_precedence;
    Alcotest.test_case "in-kernel mode cheaper" `Quick in_kernel_mode_cheaper;
    Alcotest.test_case "large acl read" `Quick large_acl_read;
    Alcotest.test_case "cache hit/miss counters" `Quick cache_counters;
  ]
