module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Clock = Idbox_kernel.Clock
module Network = Idbox_net.Network
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Catalog = Idbox_chirp.Catalog
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

let errno = Alcotest.testable Errno.pp Errno.equal

type world = {
  net : Network.t;
  server : Server.t;
  ca : Ca.t;
  kernel : Kernel.t;
}

(* A host running a Chirp server whose root ACL gives UnivNowhere users
   the reserve right, plus read/list to anyone at nowhere.edu. *)
let make_world () =
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let kernel = Kernel.create ~clock () in
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"UnivNowhere CA" in
  let root_acl =
    Acl.of_entries
      [
        Entry.make ~pattern:"globus:/O=UnivNowhere/*"
          ~reserve:(Rights.of_string_exn "rwlaxd")
          (Rights.of_string_exn "rl");
        Entry.make ~pattern:"hostname:*.nowhere.edu" (Rights.of_string_exn "rl");
      ]
  in
  let acceptor =
    Negotiate.acceptor ~trusted_cas:[ ca ]
      ~host_ok:(fun h -> Idbox_identity.Wildcard.literal_matches "*.nowhere.edu" h)
      ()
  in
  let server =
    match
      Server.create ~kernel ~net ~addr:"alpha.grid.edu:9094"
        ~owner_uid:owner.Account.uid ~export:"/tmp/export" ~acceptor ~root_acl ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  { net; server; ca; kernel }

let connect_fred w =
  let cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
  match
    Client.connect w.net ~addr:"alpha.grid.edu:9094"
      ~credentials:[ Credential.Gsi cert ]
  with
  | Ok c -> c
  | Error m -> Alcotest.fail m

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let figure3_full_scenario () =
  Kernel.with_fresh_programs (fun () ->
      let w = make_world () in
      Program.register "sim" (fun _ ->
          Libc.compute 10_000_000L;
          match
            Libc.write_file "out.dat"
              ~contents:("by " ^ Libc.get_user_name ())
          with
          | Ok () -> 0
          | Error _ -> 1);
      let c = connect_fred w in
      Alcotest.(check string) "principal" "globus:/O=UnivNowhere/CN=Fred"
        (Client.principal c);
      Alcotest.(check string) "method" "globus" (Client.auth_method c);
      Alcotest.(check string) "whoami" "globus:/O=UnivNowhere/CN=Fred"
        (ok "whoami" (Client.whoami c));
      (* 1. mkdir /work under the reserve right. *)
      ok "mkdir" (Client.mkdir c "/work");
      (* 2. put sim.exe *)
      ok "put" (Client.put c ~path:"/work/sim.exe" ~data:(Program.marker "sim"));
      (* 3. exec sim.exe in an identity box under Fred's name. *)
      Alcotest.(check int) "exit code" 0
        (ok "exec" (Client.exec c ~path:"/work/sim.exe" ~args:[ "sim.exe" ] ()));
      Alcotest.(check int) "one exec served" 1 (Server.exec_count w.server);
      (* 4. get out.dat — written by the boxed process under Fred's
         identity. *)
      Alcotest.(check string) "output" "by globus:/O=UnivNowhere/CN=Fred"
        (ok "get" (Client.get c "/work/out.dat"));
      (* 5. clean up. *)
      ok "unlink out" (Client.unlink c "/work/out.dat");
      ok "unlink exe" (Client.unlink c "/work/sim.exe");
      ok "rmdir" (Client.rmdir c "/work"))

let reserve_mints_private_namespace () =
  let w = make_world () in
  let c = connect_fred w in
  ok "mkdir" (Client.mkdir c "/mine");
  (* The fresh directory's ACL names Fred alone. *)
  let acl = ok "getacl" (Client.getacl c "/mine") in
  Alcotest.(check bool) "fred owns" true
    (String.length acl > 0
    && String.sub acl 0 (String.length "globus:/O=UnivNowhere/CN=Fred")
       = "globus:/O=UnivNowhere/CN=Fred");
  (* Jane (same org) cannot read into it until granted. *)
  let jane_cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=Jane") in
  let jane =
    match
      Client.connect w.net ~addr:"alpha.grid.edu:9094"
        ~credentials:[ Credential.Gsi jane_cert ]
    with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  ok "fred puts" (Client.put c ~path:"/mine/data" ~data:"private");
  (match Client.get jane "/mine/data" with
   | Error Errno.EACCES -> ()
   | Ok _ -> Alcotest.fail "jane read fred's data"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  (* Fred grants Jane read+list via setacl (he holds a there). *)
  ok "grant" (Client.setacl c ~path:"/mine" ~entry:"globus:/O=UnivNowhere/CN=Jane rl");
  Alcotest.(check string) "jane reads after grant" "private"
    (ok "jane get" (Client.get jane "/mine/data"))

let hostname_users_read_only () =
  let w = make_world () in
  let laptop =
    match
      Client.connect w.net ~addr:"alpha.grid.edu:9094"
        ~credentials:[ Credential.Host "laptop.cs.nowhere.edu" ]
    with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string) "hostname principal" "hostname:laptop.cs.nowhere.edu"
    (Client.principal laptop);
  (* rl only: list works, mkdir/put do not. *)
  ignore (ok "readdir" (Client.readdir laptop "/"));
  (match Client.mkdir laptop "/lhome" with
   | Error Errno.EACCES -> ()
   | Ok () -> Alcotest.fail "hostname user created directory"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  (match Client.put laptop ~path:"/f" ~data:"x" with
   | Error Errno.EACCES -> ()
   | Ok () -> Alcotest.fail "hostname user wrote"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e))

let untrusted_ca_rejected () =
  let w = make_world () in
  let rogue = Ca.create ~name:"Rogue CA" in
  let cert = Ca.issue rogue (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
  match
    Client.connect w.net ~addr:"alpha.grid.edu:9094"
      ~credentials:[ Credential.Gsi cert ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rogue CA accepted"

let bogus_token_rejected () =
  let w = make_world () in
  let payload =
    Idbox_chirp.Protocol.encode_request
      (Idbox_chirp.Protocol.Op
         { token = "forged"; req_id = ""; op = Idbox_chirp.Protocol.Whoami })
  in
  match Network.call w.net ~addr:"alpha.grid.edu:9094" payload with
  | Error e -> Alcotest.fail (Errno.to_string e)
  | Ok response ->
    (match Idbox_chirp.Protocol.decode_response response with
     | Ok (Idbox_chirp.Protocol.R_error (Errno.ESTALE, _)) -> ()
     | Ok _ -> Alcotest.fail "forged token worked"
     | Error m -> Alcotest.fail m)

let path_escape_blocked () =
  let w = make_world () in
  let c = connect_fred w in
  (* Climbing out of the export subtree is refused outright. *)
  match Client.get c "/../etc/passwd" with
  | Error Errno.EACCES -> ()
  | Ok _ -> Alcotest.fail "escaped the export root"
  | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e)

let exec_requires_x_right () =
  Kernel.with_fresh_programs (fun () ->
      let w = make_world () in
      Program.register "tool" (fun _ -> 0);
      let c = connect_fred w in
      ok "mkdir" (Client.mkdir c "/w");
      ok "put" (Client.put c ~path:"/w/t.exe" ~data:(Program.marker "tool"));
      (* Fred holds x in his reserved dir: allowed. *)
      Alcotest.(check int) "fred execs" 0
        (ok "exec" (Client.exec c ~path:"/w/t.exe" ~args:[ "t" ] ()));
      (* Jane holds nothing there: denied. *)
      let jane_cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=Jane") in
      let jane =
        match
          Client.connect w.net ~addr:"alpha.grid.edu:9094"
            ~credentials:[ Credential.Gsi jane_cert ]
        with
        | Ok c -> c
        | Error m -> Alcotest.fail m
      in
      match Client.exec jane ~path:"/w/t.exe" ~args:[ "t" ] () with
      | Error Errno.EACCES -> ()
      | Ok _ -> Alcotest.fail "jane executed without x"
      | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e))

let rename_and_stat () =
  let w = make_world () in
  let c = connect_fred w in
  ok "mkdir" (Client.mkdir c "/r");
  ok "put" (Client.put c ~path:"/r/a" ~data:"abc");
  let st = ok "stat" (Client.stat c "/r/a") in
  Alcotest.(check string) "kind" "file" st.Idbox_chirp.Protocol.ws_kind;
  Alcotest.(check int) "size" 3 st.Idbox_chirp.Protocol.ws_size;
  ok "rename" (Client.rename c ~src:"/r/a" ~dst:"/r/b");
  (match Client.stat c "/r/a" with
   | Error Errno.ENOENT -> ()
   | Ok _ -> Alcotest.fail "src still there"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  Alcotest.(check (list string)) "listing" [ "b" ] (ok "readdir" (Client.readdir c "/r"))

let acl_file_invisible_remotely () =
  let w = make_world () in
  let c = connect_fred w in
  ok "mkdir" (Client.mkdir c "/v");
  ok "put" (Client.put c ~path:"/v/f" ~data:"x");
  let names = ok "readdir" (Client.readdir c "/v") in
  Alcotest.(check (list string)) "no acl file" [ "f" ] names;
  (match Client.get c "/v/.__acl" with
   | Error Errno.EACCES -> ()
   | Ok _ -> Alcotest.fail "read acl file remotely"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  (match Client.put c ~path:"/v/.__acl" ~data:"unix:eve rwlxad" with
   | Error Errno.EACCES -> ()
   | Ok () -> Alcotest.fail "overwrote acl file remotely"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e))

let checksum_integrity () =
  let w = make_world () in
  let c = connect_fred w in
  ok "mkdir" (Client.mkdir c "/sum");
  let data = String.init 10_000 (fun i -> Char.chr (i mod 251)) in
  ok "put" (Client.put c ~path:"/sum/blob" ~data);
  let remote_sum = ok "checksum" (Client.checksum c "/sum/blob") in
  Alcotest.(check string) "matches local md5" (Digest.to_hex (Digest.string data))
    remote_sum;
  (* Still subject to ACLs: a read-only-less user cannot checksum. *)
  (match Client.checksum c "/sum/.__acl" with
   | Error Errno.EACCES -> ()
   | Ok _ -> Alcotest.fail "checksummed the acl file"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  (match Client.checksum c "/sum/missing" with
   | Error Errno.ENOENT -> ()
   | Ok _ -> Alcotest.fail "checksummed a missing file"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e))

let sessions_tracked () =
  let w = make_world () in
  let _fred = connect_fred w in
  let laptop =
    Client.connect w.net ~addr:"alpha.grid.edu:9094"
      ~credentials:[ Credential.Host "laptop.cs.nowhere.edu" ]
  in
  (match laptop with Ok _ -> () | Error m -> Alcotest.fail m);
  let sessions = Server.sessions w.server in
  Alcotest.(check int) "two sessions" 2 (List.length sessions);
  Alcotest.(check bool) "fred present" true
    (List.exists
       (fun (p, m) ->
         String.equal p "globus:/O=UnivNowhere/CN=Fred" && String.equal m "globus")
       sessions)

let catalog_register_list () =
  let w = make_world () in
  let catalog = Catalog.create w.net ~addr:"catalog.grid.edu:9097" in
  (match
     Catalog.register w.net ~catalog:"catalog.grid.edu:9097" ~name:"alpha"
       ~server_addr:"alpha.grid.edu:9094" ~owner:"unix:chirpuser"
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (match Catalog.list w.net ~catalog:"catalog.grid.edu:9097" with
   | Ok [ entry ] ->
     Alcotest.(check string) "name" "alpha" entry.Catalog.name;
     Alcotest.(check string) "addr" "alpha.grid.edu:9094" entry.Catalog.server_addr;
     (* The discovered address actually serves. *)
     let cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
     (match
        Client.connect w.net ~addr:entry.Catalog.server_addr
          ~credentials:[ Credential.Gsi cert ]
      with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)
   | Ok entries -> Alcotest.failf "%d entries" (List.length entries)
   | Error m -> Alcotest.fail m);
  Catalog.shutdown catalog

let shutdown_stops_serving () =
  let w = make_world () in
  Server.shutdown w.server;
  let cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
  match
    Client.connect w.net ~addr:"alpha.grid.edu:9094"
      ~credentials:[ Credential.Gsi cert ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "server still serving"

let remote_mount_through_box () =
  (* A boxed process on one host reads a Chirp server transparently via
     /chirp (paper §4). *)
  Kernel.with_fresh_programs (fun () ->
      let w = make_world () in
      let c = connect_fred w in
      ok "mkdir" (Client.mkdir c "/pub");
      ok "put" (Client.put c ~path:"/pub/input.dat" ~data:"grid data");
      (* The client host, with a box mounting the server. *)
      let client_kernel = Kernel.create ~clock:(Network.clock w.net) () in
      let laptop_user =
        match Account.add (Kernel.accounts client_kernel) "fred" with
        | Ok e -> e
        | Error m -> Alcotest.fail m
      in
      let box =
        match
          Idbox.Box.create client_kernel ~supervisor_uid:laptop_user.Account.uid
            ~identity:(Idbox_identity.Principal.of_string "globus:/O=UnivNowhere/CN=Fred")
            ~mounts:[ ("/chirp/alpha.grid.edu", Client.to_remote c) ]
            ()
        with
        | Ok b -> b
        | Error e -> Alcotest.fail (Errno.to_string e)
      in
      let pid =
        Idbox.Box.spawn_main box
          ~main:(fun _ ->
            (* Ordinary file operations, remote bits. *)
            (match Libc.read_file "/chirp/alpha.grid.edu/pub/input.dat" with
             | Ok "grid data" -> ()
             | Ok _ | Error _ -> Libc.exit 1);
            (match Libc.write_file "/chirp/alpha.grid.edu/pub/result.dat"
                     ~contents:"computed" with
             | Ok () -> ()
             | Error _ -> Libc.exit 2);
            0)
          ~args:[ "gridjob" ]
      in
      Kernel.run client_kernel;
      Alcotest.(check (option int)) "boxed grid job" (Some 0)
        (Kernel.exit_code client_kernel pid);
      (* The write arrived on the server. *)
      Alcotest.(check string) "server has result" "computed"
        (ok "get" (Client.get c "/pub/result.dat")))

let acl_management_through_mount () =
  (* A boxed process administers its remote ACLs with ordinary setacl /
     getacl calls routed through the /chirp mount — consistent global
     identity end to end: the same principal name works in the box, on
     the wire, and in the server's ACL files. *)
  let w = make_world () in
  let c = connect_fred w in
  ok "mkdir" (Client.mkdir c "/proj");
  ok "put" (Client.put c ~path:"/proj/data" ~data:"shared bits");
  let client_kernel = Kernel.create ~clock:(Network.clock w.net) () in
  let user =
    match Kernel.add_user client_kernel "fred" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  let box =
    match
      Idbox.Box.create client_kernel ~supervisor_uid:user.Account.uid
        ~identity:(Idbox_identity.Principal.of_string "globus:/O=UnivNowhere/CN=Fred")
        ~mounts:[ ("/chirp/alpha", Client.to_remote c) ]
        ()
    with
    | Ok b -> b
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  let pid =
    Idbox.Box.spawn_main box
      ~main:(fun _ ->
        (* Read the remote ACL. *)
        (match Libc.getacl "/chirp/alpha/proj" with
         | Ok text ->
           if String.length text = 0 then Libc.exit 1
         | Error _ -> Libc.exit 2);
        (* Grant Jane read+list, remotely, from inside the box. *)
        (match
           Libc.setacl ~path:"/chirp/alpha/proj"
             ~entry:"globus:/O=UnivNowhere/CN=Jane rl"
         with
         | Ok () -> ()
         | Error _ -> Libc.exit 3);
        (* Rename within the mount. *)
        (match
           Libc.rename ~src:"/chirp/alpha/proj/data" ~dst:"/chirp/alpha/proj/data.v2"
         with
         | Ok () -> ()
         | Error _ -> Libc.exit 4);
        0)
      ~args:[ "admin" ]
  in
  Kernel.run client_kernel;
  Alcotest.(check (option int)) "boxed remote admin" (Some 0)
    (Kernel.exit_code client_kernel pid);
  (* Jane can now read via her own session, under her own name. *)
  let jane_cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=Jane") in
  let jane =
    match
      Client.connect w.net ~addr:"alpha.grid.edu:9094"
        ~credentials:[ Credential.Gsi jane_cert ]
    with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string) "jane reads renamed file" "shared bits"
    (ok "jane get" (Client.get jane "/proj/data.v2"))

let box_spawn_from_path () =
  (* Box.spawn (the Chirp exec path): executes a staged program file,
     honouring the execute right. *)
  Kernel.with_fresh_programs (fun () ->
      let k = Kernel.create () in
      let sup = match Kernel.add_user k "dthain" with Ok e -> e | Error m -> Alcotest.fail m in
      Program.register "tool" (fun _ -> 5);
      (match
         Idbox_vfs.Fs.write_file (Kernel.fs k) ~uid:0 ~mode:0o755 "/bin/tool.exe"
           (Program.marker "tool")
       with
       | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
      let box =
        match
          Idbox.Box.create k ~supervisor_uid:sup.Account.uid
            ~identity:(Idbox_identity.Principal.of_string "Visitor") ()
        with
        | Ok b -> b
        | Error e -> Alcotest.fail (Errno.to_string e)
      in
      (* /bin/tool.exe is 0755 with no ACL: the nobody fallback grants x. *)
      (match Idbox.Box.spawn box ~path:"/bin/tool.exe" ~args:[ "tool" ] () with
       | Ok pid ->
         Kernel.run k;
         Alcotest.(check (option int)) "ran boxed" (Some 5) (Kernel.exit_code k pid)
       | Error e -> Alcotest.failf "spawn: %s" (Errno.to_string e));
      (* Make it supervisor-private: the visitor's nobody fallback loses
         execute, while the supervising account keeps it. *)
      (match
         Idbox_vfs.Fs.chown (Kernel.fs k) ~uid:0 ~owner:sup.Account.uid
           "/bin/tool.exe"
       with
       | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
      (match Idbox_vfs.Fs.chmod (Kernel.fs k) ~uid:0 ~mode:0o700 "/bin/tool.exe" with
       | Ok () -> () | Error e -> Alcotest.fail (Errno.to_string e));
      (match Idbox.Box.spawn box ~path:"/bin/tool.exe" ~args:[ "tool" ] () with
       | Error Errno.EACCES -> ()
       | Ok _ -> Alcotest.fail "executed without x"
       | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
      (* The supervisor may still run it by opting out of the check. *)
      (match
         Idbox.Box.spawn box ~check_exec:false ~path:"/bin/tool.exe"
           ~args:[ "tool" ] ()
       with
       | Ok pid ->
         Kernel.run k;
         Alcotest.(check (option int)) "supervisor override" (Some 5)
           (Kernel.exit_code k pid)
       | Error e -> Alcotest.failf "override failed: %s" (Errno.to_string e)))

(* A mixed batch is one round trip, runs in order, and reports each
   member's own verdict — including a mid-batch failure that does not
   stop the rest. *)
let batch_one_round_trip () =
  let w = make_world () in
  let c = connect_fred w in
  ok "mkdir" (Client.mkdir c "/fred");
  let open Idbox_chirp.Protocol in
  let m0 = Network.total_messages w.net in
  let rs =
    ok "batch"
      (Client.batch c
         [
           Put { path = "/fred/a"; data = "alpha" };
           Get "/fred/a";
           Get "/fred/missing";
           Put { path = "/fred/b"; data = "beta" };
           Readdir "/fred";
         ])
  in
  Alcotest.(check int) "one request, one response" 2
    (Network.total_messages w.net - m0);
  (match rs with
   | [ R_ok; R_data "alpha"; R_error (Errno.ENOENT, _); R_ok; R_names names ]
     ->
     Alcotest.(check (list string)) "later members still ran" [ "a"; "b" ]
       (List.sort String.compare names)
   | _ -> Alcotest.failf "unexpected member results (%d)" (List.length rs));
  (* Nested batches are refused client-side before touching the wire. *)
  (match Client.batch c [ Batch [ Whoami ] ] with
   | Error e -> Alcotest.(check errno) "nested rejected" Errno.EINVAL e
   | Ok _ -> Alcotest.fail "nested batch accepted");
  Alcotest.(check (list Alcotest.string)) "empty batch is free" []
    (List.map (fun _ -> "") (ok "empty" (Client.batch c [])))

(* Attribute leases: a repeated stat inside the lease window costs no
   messages; any mutation through the client flushes, so the next stat
   sees the new world. *)
let lease_serves_and_flushes () =
  let w = make_world () in
  let c = connect_fred w in
  ok "mkdir" (Client.mkdir c "/fred");
  ok "put" (Client.put c ~path:"/fred/a" ~data:"alpha");
  let st1 = ok "stat" (Client.stat c "/fred/a") in
  let m0 = Network.total_messages w.net in
  let st2 = ok "stat again" (Client.stat c "/fred/a") in
  Alcotest.(check int) "leased stat costs no messages" 0
    (Network.total_messages w.net - m0);
  Alcotest.(check int) "same size" st1.Idbox_chirp.Protocol.ws_size
    st2.Idbox_chirp.Protocol.ws_size;
  ok "grow" (Client.put c ~path:"/fred/a" ~data:"alpha-and-more");
  let st3 = ok "stat after write" (Client.stat c "/fred/a") in
  Alcotest.(check int) "mutation flushed the lease" 14
    st3.Idbox_chirp.Protocol.ws_size;
  (* The lease also expires on its own clock. *)
  let _ = ok "stat" (Client.stat c "/fred/a") in
  Clock.advance (Network.clock w.net) 3_000_000_000L;
  let m1 = Network.total_messages w.net in
  let _ = ok "stat expired" (Client.stat c "/fred/a") in
  Alcotest.(check int) "expired lease goes to the wire" 2
    (Network.total_messages w.net - m1)

let suite =
  [
    Alcotest.test_case "figure 3 full scenario" `Quick figure3_full_scenario;
    Alcotest.test_case "acl management through mount" `Quick acl_management_through_mount;
    Alcotest.test_case "box spawn from path" `Quick box_spawn_from_path;
    Alcotest.test_case "reserve namespace + grant" `Quick reserve_mints_private_namespace;
    Alcotest.test_case "hostname users read-only" `Quick hostname_users_read_only;
    Alcotest.test_case "untrusted CA rejected" `Quick untrusted_ca_rejected;
    Alcotest.test_case "bogus token rejected" `Quick bogus_token_rejected;
    Alcotest.test_case "path escape blocked" `Quick path_escape_blocked;
    Alcotest.test_case "exec requires x" `Quick exec_requires_x_right;
    Alcotest.test_case "rename and stat" `Quick rename_and_stat;
    Alcotest.test_case "acl file invisible" `Quick acl_file_invisible_remotely;
    Alcotest.test_case "checksum integrity" `Quick checksum_integrity;
    Alcotest.test_case "sessions tracked" `Quick sessions_tracked;
    Alcotest.test_case "catalog" `Quick catalog_register_list;
    Alcotest.test_case "shutdown" `Quick shutdown_stops_serving;
    Alcotest.test_case "remote mount through box" `Quick remote_mount_through_box;
    Alcotest.test_case "batch one round trip" `Quick batch_one_round_trip;
    Alcotest.test_case "lease serves and flushes" `Quick lease_serves_and_flushes;
  ]
