(* Property suite for the generation-validated enforcement caches
   (ISSUE 4): a long-lived cached engine and a long-lived cache-disabled
   engine watch the same kernel while the namespace is mutated at
   random — files written and unlinked, objects renamed, a symlink
   retargeted, ACLs rewritten both through the engine and through raw
   fd-path writes to [.__acl].  After every mutation, every
   (path, principal, right) verdict must be byte-identical across the
   two engines: the caches may only ever change the cost of an answer,
   never the answer.  Seeded and deterministic. *)

module Kernel = Idbox_kernel.Kernel
module Metrics = Idbox_kernel.Metrics
module Enforce = Idbox.Enforce
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let seeds = [ 1; 7; 42; 2005; 90210 ]

let fred = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"
let jane = Principal.of_string "globus:/O=UnivNowhere/CN=Jane"
let alice = Principal.of_string "kerberos:alice@NOWHERE.EDU"
let identities = [ fred; jane; alice ]
let rights = [ Right.Read; Right.Write; Right.List; Right.Admin; Right.Delete ]

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let dirs = [ "/w/a"; "/w/b"; "/w/c" ]

(* The probe set deliberately includes objects that may or may not
   exist at any moment, the symlink, and the directories themselves. *)
let probes =
  ("/w/ln" :: dirs)
  @ List.concat_map
      (fun d -> List.init 3 (fun i -> Printf.sprintf "%s/f%d" d i))
      dirs

let patterns =
  [ "globus:/O=UnivNowhere/CN=Fred"; "globus:/O=UnivNowhere/*"; "kerberos:*" ]

let random_acl st =
  let n = 1 + Random.State.int st 3 in
  let all = "rwlxad" in
  Acl.of_entries
    (List.init n (fun i ->
         let pattern = List.nth patterns ((i + Random.State.int st 3) mod 3) in
         let k = 1 + Random.State.int st (String.length all - 1) in
         Entry.make ~pattern (Rights.of_string_exn (String.sub all 0 k))))

let setup () =
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  (* Bytecode pinned off on both: this suite proves the decision-cache
     tier coherent on its own (test_policy_compile covers the compiled
     tier with the same harness shape). *)
  let cached = Enforce.create ~bytecode:false k ~supervisor:sup () in
  let uncached = Enforce.create ~caching:false k ~supervisor:sup () in
  List.iter
    (fun d ->
      ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 d);
      ok "seed file" (Fs.write_file (Kernel.fs k) ~uid:0 (d ^ "/f0") "seed"))
    dirs;
  ok "acl a"
    (Enforce.write_acl cached ~dir:"/w/a"
       (Acl.of_entries
          [ Entry.make ~pattern:"globus:/O=UnivNowhere/*"
              (Rights.of_string_exn "rwl") ]));
  ok "symlink" (Fs.symlink (Kernel.fs k) ~uid:0 ~target:"/w/a/f0" "/w/ln");
  (k, cached, uncached)

let verdict e identity path right =
  match Enforce.check_object e ~identity ~path right with
  | Ok () -> "ok"
  | Error e -> Errno.to_string e

let compare_engines cached uncached ~seed ~step =
  List.iter
    (fun path ->
      List.iter
        (fun identity ->
          List.iter
            (fun right ->
              let want = verdict uncached identity path right in
              let got = verdict cached identity path right in
              if not (String.equal want got) then
                Alcotest.failf
                  "seed %d step %d: %s %s %c: uncached=%s cached=%s" seed step
                  (Principal.to_string identity)
                  path (Right.to_char right) want got)
            rights)
        identities)
    probes

let mutate st k cached =
  let fs = Kernel.fs k in
  let dir () = List.nth dirs (Random.State.int st 3) in
  let file () = Printf.sprintf "%s/f%d" (dir ()) (Random.State.int st 3) in
  match Random.State.int st 7 with
  | 0 -> ignore (Fs.write_file fs ~uid:0 (file ()) "data")
  | 1 -> ignore (Fs.unlink fs ~uid:0 (file ()))
  | 2 -> ignore (Fs.rename fs ~uid:0 ~src:(file ()) ~dst:(file ()))
  | 3 ->
    (* Retarget the symlink: the governing directory of /w/ln moves. *)
    ignore (Fs.unlink fs ~uid:0 "/w/ln");
    ignore (Fs.symlink fs ~uid:0 ~target:(file ()) "/w/ln")
  | 4 ->
    (* ACL rewrite through the engine (primes + invalidates). *)
    ignore (Enforce.write_acl cached ~dir:(dir ()) (random_acl st))
  | 5 ->
    (* ACL rewrite behind the engine's back, through the raw fd write
       path — exactly what the .__acl open-for-write watch catches. *)
    let d = dir () in
    ignore
      (Fs.write_file fs ~uid:0
         (d ^ "/" ^ Enforce.acl_filename)
         (Acl.to_string (random_acl st)))
  | _ ->
    let mode = if Random.State.bool st then 0o755 else 0o700 in
    ignore (Fs.chmod fs ~uid:0 ~mode (file ()))

let coherent_under_mutation () =
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let k, cached, uncached = setup () in
      compare_engines cached uncached ~seed ~step:(-1);
      for step = 0 to 59 do
        mutate st k cached;
        compare_engines cached uncached ~seed ~step
      done;
      let value name = Metrics.counter_value_of (Kernel.metrics k) name in
      if value "enforce.decision.hit" = 0 then
        Alcotest.failf "seed %d: decision cache never hit" seed;
      if value "enforce.name.hit" = 0 then
        Alcotest.failf "seed %d: name cache never hit" seed;
      if value "acl.cache.hit" = 0 then
        Alcotest.failf "seed %d: ACL cache never hit" seed)
    seeds

(* The perf contract itself: a warm decision-cache hit makes zero
   delegated syscalls — the whole point of generation validation. *)
let warm_hit_is_free () =
  let k, cached, _ = setup () in
  ignore (Enforce.check_object cached ~identity:fred ~path:"/w/a/f0" Right.Read);
  let value name = Metrics.counter_value_of (Kernel.metrics k) name in
  let d0 = (Kernel.stats k).Kernel.delegated in
  let hits0 = value "enforce.decision.hit" in
  (match Enforce.check_object cached ~identity:fred ~path:"/w/a/f0" Right.Read with
   | Ok () -> ()
   | Error e -> Alcotest.failf "warm check: %s" (Errno.to_string e));
  Alcotest.(check int)
    "zero delegated syscalls on the warm hit" 0
    ((Kernel.stats k).Kernel.delegated - d0);
  Alcotest.(check int) "decision cache hit" (hits0 + 1)
    (value "enforce.decision.hit")

let suite =
  [
    Alcotest.test_case "cached = uncached under random mutation" `Quick
      coherent_under_mutation;
    Alcotest.test_case "warm hit: zero delegated syscalls" `Quick
      warm_hit_is_free;
  ]
