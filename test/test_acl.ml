module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal

let fred = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"
let jane = Principal.of_string "globus:/O=UnivNowhere/CN=Jane"
let eve = Principal.of_string "globus:/O=Elsewhere/CN=Eve"

(* --- Rights ---------------------------------------------------------- *)

let rights_parse_print () =
  Alcotest.(check string) "canonical order" "rwlxad"
    (Rights.to_string (Rights.of_string_exn "daxlwr"));
  Alcotest.(check string) "empty is dash" "-" (Rights.to_string Rights.empty);
  Alcotest.(check bool) "dash parses empty" true
    (Rights.is_empty (Rights.of_string_exn "-"));
  (match Rights.of_string "rwz" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown right accepted")

let rights_set_operations () =
  let rl = Rights.of_string_exn "rl" and rwl = Rights.of_string_exn "rwl" in
  Alcotest.(check bool) "subset" true (Rights.subset rl rwl);
  Alcotest.(check bool) "not subset" false (Rights.subset rwl rl);
  Alcotest.(check bool) "mem" true (Rights.mem Right.Write rwl);
  Alcotest.(check bool) "union" true
    (Rights.equal (Rights.union rl (Rights.singleton Right.Write)) rwl);
  Alcotest.(check bool) "inter" true (Rights.equal (Rights.inter rl rwl) rl);
  Alcotest.(check int) "cardinal" 3 (Rights.cardinal rwl);
  Alcotest.(check bool) "remove" false
    (Rights.mem Right.Read (Rights.remove Right.Read rl))

let prop_rights_roundtrip =
  let rights_gen =
    QCheck.map Rights.of_list
      (QCheck.list_of_size (QCheck.Gen.int_range 0 6)
         (QCheck.oneofl Right.all))
  in
  QCheck.Test.make ~name:"rights to_string/of_string roundtrip" ~count:200
    rights_gen (fun r ->
      Rights.equal r (Rights.of_string_exn (Rights.to_string r)))

let prop_union_monotone =
  let rights_gen =
    QCheck.map Rights.of_list
      (QCheck.list_of_size (QCheck.Gen.int_range 0 6)
         (QCheck.oneofl Right.all))
  in
  QCheck.Test.make ~name:"a subset (union a b)" ~count:200
    (QCheck.pair rights_gen rights_gen)
    (fun (a, b) -> Rights.subset a (Rights.union a b))

(* --- Entries --------------------------------------------------------- *)

let entry_parse_plain () =
  let e = Result.get_ok (Entry.of_line "/O=UnivNowhere/CN=Fred   rwlax") in
  Alcotest.(check bool) "rights" true
    (Rights.equal e.Entry.rights (Rights.of_string_exn "rwlax"));
  Alcotest.(check bool) "no reserve" true (e.Entry.reserve = None)

let entry_parse_reserve () =
  (* The paper's reserve form: v(rwlax). *)
  let e = Result.get_ok (Entry.of_line "globus:/O=UnivNowhere/* v(rwlax)") in
  Alcotest.(check bool) "no direct rights" true (Rights.is_empty e.Entry.rights);
  (match e.Entry.reserve with
   | Some g ->
     Alcotest.(check string) "grant" "rwlxa" (Rights.to_string g)
   | None -> Alcotest.fail "reserve missing")

let entry_parse_mixed () =
  (* Direct rights combined with a reserve grant. *)
  let e = Result.get_ok (Entry.of_line "hostname:*.nowhere.edu rlxv(rwl)") in
  Alcotest.(check string) "direct" "rlx" (Rights.to_string e.Entry.rights);
  (match e.Entry.reserve with
   | Some g -> Alcotest.(check string) "grant" "rwl" (Rights.to_string g)
   | None -> Alcotest.fail "reserve missing")

let entry_roundtrip () =
  List.iter
    (fun line ->
      let e = Result.get_ok (Entry.of_line line) in
      let e' = Result.get_ok (Entry.of_line (Entry.to_line e)) in
      Alcotest.(check bool) line true (Entry.equal e e'))
    [
      "/O=UnivNowhere/CN=Fred rwlax";
      "globus:/O=UnivNowhere/* v(rwlxad)";
      "hostname:*.nowhere.edu rlxv(rwl)";
      "* rl";
    ]

let entry_malformed () =
  List.iter
    (fun line ->
      match Entry.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" line)
    [ ""; "onlypattern"; "a b c"; "p rz" ]

(* --- ACLs ------------------------------------------------------------ *)

let paper_example_acl () =
  (* The ACL from paper §3: Fred has everything, the organization reads
     and lists. *)
  let acl =
    Acl.of_string_exn
      "/O=UnivNowhere/CN=Fred rwlxa\n/O=UnivNowhere/* rl\n"
  in
  let fred_dn = Principal.of_string "/O=UnivNowhere/CN=Fred" in
  let jane_dn = Principal.of_string "/O=UnivNowhere/CN=Jane" in
  let eve_dn = Principal.of_string "/O=Elsewhere/CN=Eve" in
  Alcotest.(check bool) "fred writes" true (Acl.check acl fred_dn Right.Write);
  Alcotest.(check bool) "jane reads" true (Acl.check acl jane_dn Right.Read);
  Alcotest.(check bool) "jane cannot write" false (Acl.check acl jane_dn Right.Write);
  Alcotest.(check bool) "eve nothing" false (Acl.check acl eve_dn Right.Read)

let union_of_matching_entries () =
  (* Rights compose across entries: a specific grant plus an org-wide
     wildcard. *)
  let acl =
    Acl.of_entries
      [
        Entry.make ~pattern:"globus:/O=UnivNowhere/*" (Rights.of_string_exn "rl");
        Entry.make ~pattern:"globus:/O=UnivNowhere/CN=Fred"
          (Rights.of_string_exn "wx");
      ]
  in
  Alcotest.(check string) "union" "rwlx" (Rights.to_string (Acl.rights_of acl fred));
  Alcotest.(check string) "jane only org" "rl"
    (Rights.to_string (Acl.rights_of acl jane))

let reserve_union () =
  let acl =
    Acl.of_string_exn
      "globus:/O=UnivNowhere/* v(rl)\nglobus:*CN=Fred v(wx)\n"
  in
  (match Acl.reserve_for acl fred with
   | Some g -> Alcotest.(check string) "merged grant" "rwlx" (Rights.to_string g)
   | None -> Alcotest.fail "no reserve");
  (match Acl.reserve_for acl eve with
   | None -> ()
   | Some _ -> Alcotest.fail "eve should have no reserve")

let set_entry_replaces () =
  let acl = Acl.of_string_exn "unix:alice rl\n" in
  let acl' =
    Acl.set_entry acl (Entry.make ~pattern:"unix:alice" (Rights.of_string_exn "rwl"))
  in
  Alcotest.(check int) "still one entry" 1 (List.length (Acl.entries acl'));
  Alcotest.(check string) "updated" "rwl"
    (Rights.to_string (Acl.rights_of acl' (Principal.of_string "unix:alice")))

let grant_accumulates () =
  let acl = Acl.grant Acl.empty ~pattern:"unix:bob" (Rights.of_string_exn "r") in
  let acl = Acl.grant acl ~pattern:"unix:bob" (Rights.of_string_exn "w") in
  Alcotest.(check string) "accumulated" "rw"
    (Rights.to_string (Acl.rights_of acl (Principal.of_string "unix:bob")))

let remove_pattern () =
  let acl = Acl.of_string_exn "unix:alice rl\nunix:bob rw\n" in
  let acl' = Acl.remove_pattern acl "unix:alice" in
  Alcotest.(check int) "one left" 1 (List.length (Acl.entries acl'));
  Alcotest.(check bool) "alice gone" false
    (Acl.check acl' (Principal.of_string "unix:alice") Right.Read)

let comments_and_blanks () =
  let acl = Acl.of_string_exn "# a comment\n\nunix:alice rl\n   \n" in
  Alcotest.(check int) "one entry" 1 (List.length (Acl.entries acl))

let for_owner_full () =
  let acl = Acl.for_owner fred in
  List.iter
    (fun r ->
      Alcotest.(check bool) (Right.describe r) true (Acl.check acl fred r))
    Right.all;
  Alcotest.(check bool) "not others" false (Acl.check acl jane Right.Read)

let empty_denies_everything () =
  List.iter
    (fun r ->
      Alcotest.(check bool) (Right.describe r) false (Acl.check Acl.empty fred r))
    Right.all

let prop_acl_roundtrip =
  let entry_gen =
    QCheck.Gen.(
      map2
        (fun pat rights -> Entry.make ~pattern:pat (Rights.of_list rights))
        (oneofl
           [ "unix:alice"; "globus:/O=X/*"; "*"; "kerberos:*@realm"; "host?" ])
        (list_size (int_range 1 6) (oneofl Right.all)))
  in
  QCheck.Test.make ~name:"acl to_string/of_string roundtrip" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 0 5) entry_gen))
    (fun entries ->
      let acl = Acl.of_entries entries in
      match Acl.of_string (Acl.to_string acl) with
      | Ok acl' -> Acl.equal acl acl'
      | Error _ -> false)

(* The matcher memo is bounded: a stream of distinct principals far
   past [memo_capacity] triggers capacity flushes (counted), and a
   flushed principal's next probe still answers identically. *)
let memo_capped_and_coherent () =
  let acl =
    Acl.of_string_exn
      "globus:/O=UnivNowhere/* rl\nglobus:/O=UnivNowhere/CN=Fred wxad\n"
  in
  let who i =
    Principal.of_string (Printf.sprintf "globus:/O=UnivNowhere/CN=user%05d" i)
  in
  let ev0 = Acl.memo_evictions () in
  let n = (2 * Acl.memo_capacity) + 7 in
  for i = 0 to n - 1 do
    ignore (Acl.rights_of acl (who i))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct principals forced a flush" n)
    true
    (Acl.memo_evictions () > ev0);
  (* Early principals were flushed; their recomputed rights must not
     have changed, and fred's literal entry still unions in. *)
  Alcotest.(check string) "flushed principal recomputes identically" "rl"
    (Rights.to_string (Acl.rights_of acl (who 0)));
  Alcotest.(check string) "literal + wildcard union survives" "rwlxad"
    (Rights.to_string (Acl.rights_of acl fred))

let prop_check_is_union =
  let right_gen = QCheck.oneofl Idbox_acl.Right.all in
  QCheck.Test.make ~name:"check = mem of rights_of" ~count:100
    (QCheck.pair right_gen (QCheck.oneofl [ fred; jane; eve ]))
    (fun (r, who) ->
      let acl =
        Acl.of_string_exn
          "globus:/O=UnivNowhere/* rl\nglobus:/O=UnivNowhere/CN=Fred wxad\n"
      in
      Acl.check acl who r = Rights.mem r (Acl.rights_of acl who))

let suite =
  [
    Alcotest.test_case "rights parse/print" `Quick rights_parse_print;
    Alcotest.test_case "rights set operations" `Quick rights_set_operations;
    QCheck_alcotest.to_alcotest prop_rights_roundtrip;
    QCheck_alcotest.to_alcotest prop_union_monotone;
    Alcotest.test_case "entry plain" `Quick entry_parse_plain;
    Alcotest.test_case "entry reserve" `Quick entry_parse_reserve;
    Alcotest.test_case "entry mixed" `Quick entry_parse_mixed;
    Alcotest.test_case "entry roundtrip" `Quick entry_roundtrip;
    Alcotest.test_case "entry malformed" `Quick entry_malformed;
    Alcotest.test_case "paper example acl" `Quick paper_example_acl;
    Alcotest.test_case "union of matching entries" `Quick union_of_matching_entries;
    Alcotest.test_case "reserve union" `Quick reserve_union;
    Alcotest.test_case "set_entry replaces" `Quick set_entry_replaces;
    Alcotest.test_case "grant accumulates" `Quick grant_accumulates;
    Alcotest.test_case "remove pattern" `Quick remove_pattern;
    Alcotest.test_case "comments and blanks" `Quick comments_and_blanks;
    Alcotest.test_case "for_owner full" `Quick for_owner_full;
    Alcotest.test_case "empty denies" `Quick empty_denies_everything;
    Alcotest.test_case "matcher memo capped" `Quick memo_capped_and_coherent;
    QCheck_alcotest.to_alcotest prop_acl_roundtrip;
    QCheck_alcotest.to_alcotest prop_check_is_union;
  ]
