(* Chaos suite: the whole Chirp stack under a seeded fault plan.  The
   faults are deterministic (splitmix64 stream + simulated clock), so
   every test here replays exactly — including the two-run
   byte-identical determinism check at the bottom. *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Trace = Idbox_kernel.Trace
module Network = Idbox_net.Network
module Fault = Idbox_net.Fault
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Wire = Idbox_chirp.Wire
module Protocol = Idbox_chirp.Protocol
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Catalog = Idbox_chirp.Catalog
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

type world = {
  net : Network.t;
  server : Server.t;
  ca : Ca.t;
  kernel : Kernel.t;
  clock : Clock.t;
}

let server_addr = "alpha.grid.edu:9094"

(* Like the chirp suite's world, but the network shares the kernel's
   metrics registry and trace ring so fault counters and spans land in
   one deterministic export. *)
let make_world ?max_sessions ?session_idle_ns ?max_parked ?event_driven
    ?flush_interval_ns () =
  let clock = Clock.create () in
  let kernel = Kernel.create ~clock () in
  let net =
    Network.create ~clock ~metrics:(Kernel.metrics kernel)
      ~trace:(Kernel.trace_ring kernel) ()
  in
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"UnivNowhere CA" in
  let root_acl =
    Acl.of_entries
      [
        Entry.make ~pattern:"globus:/O=UnivNowhere/*"
          ~reserve:(Rights.of_string_exn "rwlaxd")
          (Rights.of_string_exn "rl");
        Entry.make ~pattern:"hostname:*.nowhere.edu" (Rights.of_string_exn "rl");
      ]
  in
  let acceptor =
    Negotiate.acceptor ~trusted_cas:[ ca ]
      ~host_ok:(fun h ->
        Idbox_identity.Wildcard.literal_matches "*.nowhere.edu" h)
      ()
  in
  let server =
    match
      Server.create ~kernel ~net ~addr:server_addr ~owner_uid:owner.Account.uid
        ~export:"/tmp/export" ~acceptor ~root_acl ?max_sessions
        ?session_idle_ns ?max_parked ?event_driven ?flush_interval_ns ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  { net; server; ca; kernel; clock }

(* A policy generous enough to ride out a 10% drop rate; still bounded. *)
let chaos_policy =
  { Client.default_policy with max_attempts = 8; retry_budget = 500 }

let connect_fred ?(name = "Fred") w =
  let cert = Ca.issue w.ca (Subject.of_string_exn ("/O=UnivNowhere/CN=" ^ name)) in
  match
    Client.connect ~policy:chaos_policy w.net ~addr:server_addr
      ~credentials:[ Credential.Gsi cert ]
  with
  | Ok c -> c
  | Error m -> Alcotest.fail m

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let counter w name = Metrics.counter_value_of (Kernel.metrics w.kernel) name

(* --- the acceptance scenario ----------------------------------------- *)

(* 10% drops everywhere plus a mid-run partition: every workload step
   still completes, and the retry layer is demonstrably doing work. *)
let workload_completes_under_drops () =
  Kernel.with_fresh_programs (fun () ->
      let w = make_world () in
      Program.register "sim" (fun _ ->
          match Libc.write_file "out.dat" ~contents:("by " ^ Libc.get_user_name ()) with
          | Ok () -> 0
          | Error _ -> 1);
      Network.set_fault_plan w.net
        (Fault.plan ~seed:2005L
           ~default_profile:(Fault.profile ~drop:0.1 ())
           ~partitions:
             [ { Fault.from_ns = 40_000_000_000L; until_ns = 44_000_000_000L;
                 between = ("client", "alpha.grid.edu") } ]
           ());
      let c = connect_fred w in
      ok "mkdir" (Client.mkdir c "/work");
      ok "put exe" (Client.put c ~path:"/work/sim.exe" ~data:(Program.marker "sim"));
      for i = 1 to 12 do
        let path = Printf.sprintf "/work/d%d" i in
        let data = Printf.sprintf "payload-%d" i in
        ok "put" (Client.put c ~path ~data);
        Alcotest.(check string) path data (ok "get" (Client.get c path))
      done;
      Alcotest.(check int) "exec exit" 0
        (ok "exec" (Client.exec c ~path:"/work/sim.exe" ~args:[ "sim.exe" ] ()));
      Alcotest.(check string) "boxed output" "by globus:/O=UnivNowhere/CN=Fred"
        (ok "get out" (Client.get c "/work/out.dat"));
      (* Step into the partition window: the next put has to wait the
         partition out, one timed-out attempt at a time, then lands. *)
      let into_window = Int64.sub 40_000_000_000L (Clock.now w.clock) in
      if into_window > 0L then Clock.advance w.clock into_window;
      ok "put through partition" (Client.put c ~path:"/work/late" ~data:"late");
      Alcotest.(check string) "late read" "late" (ok "get late" (Client.get c "/work/late"));
      (* The partition window really was crossed... *)
      Alcotest.(check bool) "partition hit" true (counter w "net.partition" > 0);
      (* ...and drops really happened, absorbed by retries. *)
      Alcotest.(check bool) "drops injected" true (counter w "net.drop" > 0);
      Alcotest.(check bool) "retries spent" true (Client.retries c > 0);
      (* Security invariant survives the chaos: the ACL still denies. *)
      (match Client.setacl c ~path:"/" ~entry:"globus:/O=Evil/* rwlaxd" with
       | Error Errno.EACCES -> ()
       | Ok () -> Alcotest.fail "root ACL writable under faults"
       | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e)))

(* Retried non-idempotent operations execute exactly once: every exec
   call lands one execution, however many wire attempts it took. *)
let exec_exactly_once_under_loss () =
  Kernel.with_fresh_programs (fun () ->
      let w = make_world () in
      let runs = ref 0 in
      Program.register "bump" (fun _ -> incr runs; 0);
      Network.set_fault_plan w.net
        (Fault.plan ~seed:7L ~default_profile:(Fault.profile ~drop:0.25 ()) ());
      let c = connect_fred w in
      ok "mkdir" (Client.mkdir c "/work");
      ok "put" (Client.put c ~path:"/work/bump.exe" ~data:(Program.marker "bump"));
      for _ = 1 to 5 do
        Alcotest.(check int) "exit" 0
          (ok "exec" (Client.exec c ~path:"/work/bump.exe" ~args:[ "bump.exe" ] ()))
      done;
      Alcotest.(check int) "server-side execs" 5 (Server.exec_count w.server);
      Alcotest.(check int) "program runs" 5 !runs;
      Alcotest.(check bool) "retries happened" true (Client.retries c > 0))

(* Direct-dispatch dedup check: the same request ID twice returns the
   stored response without a second execution — including across a
   server restart (the journal is simulated stable storage). *)
let dedup_replays_same_request_id () =
  Kernel.with_fresh_programs (fun () ->
      let w = make_world () in
      let runs = ref 0 in
      Program.register "bump" (fun _ -> incr runs; 0);
      let c = connect_fred w in
      ok "mkdir" (Client.mkdir c "/work");
      ok "put" (Client.put c ~path:"/work/bump.exe" ~data:(Program.marker "bump"));
      (* Authenticate at the wire level to forge our own retry. *)
      let cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
      let auth =
        Server.handle w.server
          (Protocol.encode_request (Protocol.Auth [ Credential.Gsi cert ]))
      in
      let token =
        match Protocol.decode_response auth with
        | Ok (Protocol.R_auth { token; _ }) -> token
        | _ -> Alcotest.fail "auth failed"
      in
      let req =
        Protocol.encode_request
          (Protocol.Op
             { token; req_id = "fred#42";
               op = Protocol.Exec
                      { path = "/work/bump.exe"; args = [ "bump.exe" ];
                        cwd = "/work" } })
      in
      let r1 = Server.handle w.server req in
      (* Same logical request again: replayed from the journal. *)
      let r2 = Server.handle w.server req in
      Alcotest.(check string) "replayed byte-identical" r1 r2;
      (* Across a restart the session dies but the journal survives: a
         re-authenticated retry of the same req_id still must not
         re-execute. *)
      Server.crash w.server;
      Server.restart w.server;
      let auth2 =
        Server.handle w.server
          (Protocol.encode_request (Protocol.Auth [ Credential.Gsi cert ]))
      in
      let token2 =
        match Protocol.decode_response auth2 with
        | Ok (Protocol.R_auth { token; _ }) -> token
        | _ -> Alcotest.fail "reauth failed"
      in
      let req2 =
        Protocol.encode_request
          (Protocol.Op
             { token = token2; req_id = "fred#42";
               op = Protocol.Exec
                      { path = "/work/bump.exe"; args = [ "bump.exe" ];
                        cwd = "/work" } })
      in
      let r3 = Server.handle w.server req2 in
      Alcotest.(check string) "replayed across restart" r1 r3;
      Alcotest.(check int) "ran once" 1 !runs;
      Alcotest.(check int) "dedup hits counted" 2 (counter w "chirp.dedup_hit"))

(* The dedup journal is bounded by age: entries past the window are
   evicted (and counted), so the journal cannot grow without bound —
   at the price that a retry arriving after the window re-executes. *)
let dedup_journal_evicts_by_age () =
  Kernel.with_fresh_programs (fun () ->
      let w = make_world () in
      let c = connect_fred w in
      ok "mkdir" (Client.mkdir c "/work");
      (* Dispatch rid'd operations at the wire level so we control the
         request IDs. *)
      let cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
      let token =
        match
          Protocol.decode_response
            (Server.handle w.server
               (Protocol.encode_request (Protocol.Auth [ Credential.Gsi cert ])))
        with
        | Ok (Protocol.R_auth { token; _ }) -> token
        | _ -> Alcotest.fail "auth failed"
      in
      let put rid path =
        ignore
          (Server.handle w.server
             (Protocol.encode_request
                (Protocol.Op
                   { token; req_id = rid; op = Protocol.Put { path; data = "x" } })))
      in
      let journalled = Server.dedup_size w.server in
      for i = 1 to 5 do
        put (Printf.sprintf "fred#%d" i) (Printf.sprintf "/work/e%d" i)
      done;
      Alcotest.(check int) "journal grew" (journalled + 5)
        (Server.dedup_size w.server);
      (* Within the window the same rid replays without re-executing. *)
      put "fred#1" "/work/e1";
      Alcotest.(check int) "replay journalled, not re-added" (journalled + 5)
        (Server.dedup_size w.server);
      Alcotest.(check bool) "replay hit" true (counter w "chirp.dedup_hit" > 0);
      (* Age everything past the 60 s window; the sweep on the next
         dispatch evicts every stale entry. *)
      Clock.advance w.clock 61_000_000_000L;
      put "fred#99" "/work/late";
      Alcotest.(check int) "journal bounded by age" 1 (Server.dedup_size w.server);
      Alcotest.(check int) "evictions counted" (journalled + 5)
        (counter w "chirp.dedup_evictions");
      (* An evicted rid no longer replays: the same id now executes
         fresh — the documented window semantics. *)
      put "fred#1" "/work/fresh";
      Alcotest.(check string) "evicted rid re-executed" "x"
        (ok "get fresh" (Client.get c "/work/fresh")))

(* A server restart loses sessions; the client re-authenticates behind
   the caller's back and the principal provably cannot change. *)
let restart_reauth_keeps_identity () =
  let w = make_world () in
  let c = connect_fred w in
  ok "mkdir" (Client.mkdir c "/mine");
  ok "put" (Client.put c ~path:"/mine/f" ~data:"before");
  let principal_before = Client.principal c in
  Server.crash w.server;
  Server.restart w.server;
  Alcotest.(check string) "read after restart" "before"
    (ok "get" (Client.get c "/mine/f"));
  Alcotest.(check string) "same principal" principal_before (Client.principal c);
  Alcotest.(check bool) "reauth happened" true (counter w "chirp.reauth" > 0);
  Alcotest.(check int) "no identity drift" 0 (counter w "chirp.reauth.mismatch")

(* Graceful degradation: the session table sheds load at the cap, and
   idle sessions (e.g. whose owners timed out mid-handshake) expire. *)
let session_cap_sheds_then_recovers () =
  let w = make_world ~max_sessions:2 ~session_idle_ns:5_000_000_000L () in
  let _c1 = connect_fred ~name:"A" w in
  let _c2 = connect_fred ~name:"B" w in
  Alcotest.(check int) "table full" 2 (Server.session_count w.server);
  let cert = Ca.issue w.ca (Subject.of_string_exn "/O=UnivNowhere/CN=C") in
  (match
     Client.connect w.net ~addr:server_addr ~credentials:[ Credential.Gsi cert ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "third session admitted over the cap");
  Alcotest.(check bool) "shed counted" true (counter w "chirp.session.reject" > 0);
  (* Both sessions go idle past the expiry window; a newcomer gets in. *)
  Clock.advance w.clock 6_000_000_000L;
  (match
     Client.connect w.net ~addr:server_addr ~credentials:[ Credential.Gsi cert ]
   with
  | Ok c -> Alcotest.(check string) "principal" "globus:/O=UnivNowhere/CN=C" (Client.principal c)
  | Error m -> Alcotest.failf "post-expiry connect: %s" m);
  Alcotest.(check bool) "expiry counted" true (counter w "chirp.session.expired" > 0)

(* Catalog liveness: a partition makes a server's entry go stale and
   vanish from discovery; the first heartbeat after the heal brings it
   back. *)
let catalog_eviction_and_heartbeat_recovery () =
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let catalog = Catalog.create ~staleness_ns:5_000_000_000L net ~addr:"cat.grid.edu:9097" in
  let hb =
    Catalog.heartbeat ~src:"alpha.grid.edu" ~interval_ns:2_000_000_000L net
      ~catalog:"cat.grid.edu:9097" ~name:"alpha" ~server_addr:server_addr
      ~owner:"chirpuser"
  in
  Alcotest.(check int) "registered" 1 (List.length (Catalog.entries catalog));
  Network.set_fault_plan net
    (Fault.plan
       ~partitions:
         [ { Fault.from_ns = 1_000_000_000L; until_ns = 30_000_000_000L;
             between = ("alpha.grid.edu", "cat.grid.edu") } ]
       ());
  (* Heartbeats due during the partition are lost. *)
  Clock.advance clock 2_000_000_000L;
  Alcotest.(check bool) "tick fails inside partition" false (Catalog.tick hb);
  Alcotest.(check bool) "miss recorded" true (Catalog.heartbeats_missed hb > 0);
  (* Staleness passes: the catalog stops advertising the server. *)
  Clock.advance clock 4_000_000_000L;
  Alcotest.(check int) "evicted" 0 (List.length (Catalog.entries catalog));
  (* Partition heals; the next tick re-registers immediately. *)
  Clock.advance clock 25_000_000_000L;
  Alcotest.(check bool) "tick succeeds after heal" true (Catalog.tick hb);
  match Catalog.entries catalog with
  | [ e ] -> Alcotest.(check string) "same name" "alpha" e.Catalog.name
  | l -> Alcotest.failf "expected 1 entry after heal, got %d" (List.length l)

(* The acceptance bar for determinism: two runs of the same seeded
   chaotic workload produce byte-identical traces and metrics. *)
let deterministic_chaos_run () =
  let run () =
    Kernel.with_fresh_programs (fun () ->
        let w = make_world () in
        Program.register "sim" (fun _ ->
            match Libc.write_file "out.dat" ~contents:"det" with
            | Ok () -> 0
            | Error _ -> 1);
        Network.set_fault_plan w.net
          (Fault.plan ~seed:4242L
             ~default_profile:
               (Fault.profile ~drop:0.1 ~reset:0.02 ~corrupt:0.02
                  ~truncate:0.02 ~jitter:0.1 ())
             ());
        let c = connect_fred w in
        ok "mkdir" (Client.mkdir c "/work");
        ok "put" (Client.put c ~path:"/work/sim.exe" ~data:(Program.marker "sim"));
        for i = 1 to 8 do
          let path = Printf.sprintf "/work/f%d" i in
          ok "put" (Client.put c ~path ~data:(String.make 48 'z'));
          ignore (Client.get c path)
        done;
        ignore (Client.exec c ~path:"/work/sim.exe" ~args:[ "sim.exe" ] ());
        ( Trace.to_json (Kernel.trace_ring w.kernel),
          Metrics.to_json (Kernel.metrics w.kernel),
          Clock.now w.clock ))
  in
  let t1, m1, c1 = run () in
  let t2, m2, c2 = run () in
  Alcotest.(check string) "trace byte-identical" t1 t2;
  Alcotest.(check string) "metrics byte-identical" m1 m2;
  Alcotest.(check int64) "clock identical" c1 c2

(* Satellite: decoders stay total under exactly the damage the network
   can inflict.  No exception, and a damaged checksummed envelope is
   never accepted as a different message. *)
let decoders_total_under_mangling () =
  let rng = Fault.rng 99L in
  let victims =
    [
      Wire.encode [ "register"; "alpha"; server_addr; "chirpuser" ];
      Protocol.encode_request
        (Protocol.Op
           { token = "tok"; req_id = "tok#1";
             op = Protocol.Put { path = "/work/f"; data = String.make 64 'q' } });
      Protocol.encode_response (Protocol.R_data (String.make 128 'd'));
      Protocol.encode_response Protocol.R_ok;
    ]
  in
  for _ = 1 to 400 do
    List.iter
      (fun original ->
        let damaged = Fault.mangle rng original in
        (* Totality: decoding damage may fail, never raise. *)
        (match Wire.decode damaged with Ok _ | Error _ -> ());
        (match Protocol.decode_request damaged with Ok _ | Error _ -> ());
        match Protocol.decode_response damaged with
        | Error _ -> ()
        | Ok _ ->
          (* The envelope checksum lets damage through only if the
             mangling happened to be the identity. *)
          if not (String.equal damaged original) then
            Alcotest.failf "damaged envelope accepted (%d bytes)"
              (String.length damaged))
      victims
  done

(* Under heavy corruption a read-only principal never slips a write
   through: every put fails, with EACCES or a transport error, never
   success. *)
let acl_holds_under_corruption () =
  let w = make_world () in
  Network.set_fault_plan w.net
    (Fault.plan ~seed:13L
       ~default_profile:(Fault.profile ~drop:0.1 ~corrupt:0.15 ~truncate:0.1 ())
       ());
  let laptop =
    match
      Client.connect ~policy:chaos_policy w.net ~addr:server_addr
        ~credentials:[ Credential.Host "laptop.cs.nowhere.edu" ]
    with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  for i = 1 to 20 do
    match Client.put laptop ~path:(Printf.sprintf "/w%d" i) ~data:"x" with
    | Ok () -> Alcotest.fail "read-only principal wrote under chaos"
    | Error _ -> ()
  done;
  (* And reads still eventually succeed despite the damage. *)
  ignore (ok "readdir" (Client.readdir laptop "/"))

(* --- the cluster acceptance scenario --------------------------------- *)

module World = Idbox_cluster.World
module Router = Idbox_cluster.Router
module Ring = Idbox_cluster.Ring
module Replica = Idbox_cluster.Replica

let transient_errno = function
  | Errno.ETIMEDOUT | Errno.ECONNRESET | Errno.ECONNREFUSED
  | Errno.EHOSTUNREACH ->
    true
  | _ -> false

let vstr = function Ok () -> "ok" | Error e -> Errno.to_string e
let gstr = function Ok v -> v | Error e -> Errno.to_string e

(* The shared workload script, run identically against the chaotic
   3-node cluster and the calm single-server oracle.  Transient
   transport verdicts are retried (time moves, membership reconverges);
   the *final* verdict of every step goes into the transcript.  On a
   calm network the retry path never fires, so the oracle runs the
   same code. *)
let cluster_steps w alice visitor =
  let buf = ref [] in
  let record fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
  let settled r op =
    let rec go n =
      match op () with
      | Error e when transient_errno e && n < 12 ->
        Clock.advance (World.clock w) 2_000_000_000L;
        World.tick w;
        Router.sync r;
        go (n + 1)
      | v -> v
    in
    go 0
  in
  for i = 0 to 23 do
    Clock.advance (World.clock w) 2_000_000_000L;
    World.tick w;
    let dir = Printf.sprintf "/d%d" (i mod 6) in
    let v = Printf.sprintf "v%d" i in
    record "%02d put %s %s" i dir
      (vstr (settled alice (fun () -> Router.put alice ~path:(dir ^ "/f") ~data:v)));
    record "%02d get %s %s" i dir
      (gstr (settled alice (fun () -> Router.get alice (dir ^ "/f"))));
    record "%02d intrude %s %s" i dir
      (vstr
         (settled visitor (fun () ->
              Router.put visitor ~path:(dir ^ "/intruder") ~data:"evil")))
  done;
  (* Converge: ride out any still-open partition until every world
     member is back in the routers' view. *)
  let want = List.length (World.members w) in
  let rec heal n =
    Router.sync alice;
    if List.length (Router.nodes alice) < want && n < 80 then begin
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      heal (n + 1)
    end
  in
  heal 0;
  Router.sync visitor;
  Alcotest.(check int) "view reconverged" want (List.length (Router.nodes alice));
  (* Every shard answers the last value written to it — nothing was
     lost to the partition, the ejection or the re-admission. *)
  for j = 0 to 5 do
    let dir = Printf.sprintf "/d%d" j in
    record "final %s %s" dir
      (gstr (settled alice (fun () -> Router.get alice (dir ^ "/f"))))
  done;
  String.concat "\n" (List.rev !buf)

let cluster_world hosts ?staleness_ns ?heartbeat_interval_ns ?trace () =
  let w = World.create ?staleness_ns ?heartbeat_interval_ns ?trace () in
  List.iter
    (fun h ->
      match World.add_node w ~host:h with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    hosts;
  World.settle w;
  let policy =
    { Client.default_policy with max_attempts = 12; retry_budget = 100_000 }
  in
  let connect credentials =
    match World.connect ~policy w ~credentials with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let alice = connect [ World.issue w "Alice" ] in
  let visitor = connect [ Credential.Host "visitor.grid.edu" ] in
  for j = 0 to 5 do
    ok "mkdir" (Router.mkdir alice (Printf.sprintf "/d%d" j))
  done;
  (w, alice, visitor)

(* 3-node ring at 10% drop, with a mid-run partition isolating one
   replica (from clients, peers and the catalog at once): its lease
   goes stale and it is ejected, the workload rides over on the
   survivors, and the heal re-admits it with its ranges migrated
   back. *)
let cluster_chaos_run () =
  let trace = Trace.ring ~capacity:8192 () in
  let w, alice, visitor =
    cluster_world
      [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ]
      ~staleness_ns:8_000_000_000L ~heartbeat_interval_ns:2_000_000_000L ~trace
      ()
  in
  Network.set_fault_plan (World.net w)
    (Fault.plan ~seed:2005L
       ~default_profile:(Fault.profile ~drop:0.1 ())
       ~partitions:
         (List.map
            (fun peer ->
              { Fault.from_ns = 20_000_000_000L; until_ns = 90_000_000_000L;
                between = ("gamma.grid.edu", peer) })
            [ "client"; "alpha.grid.edu"; "beta.grid.edu"; "catalog.grid.edu" ])
       ());
  let transcript = cluster_steps w alice visitor in
  let c name = Metrics.counter_value_of (Network.metrics (World.net w)) name in
  Alcotest.(check bool) "partition hit" true (c "net.partition" > 0);
  Alcotest.(check bool) "drops injected" true (c "net.drop" > 0);
  Alcotest.(check bool) "isolated node ejected" true
    (c "cluster.member.leave" > 0);
  (* (Hedged-read failover has its own dedicated test in the cluster
     suite; here the ejection usually reroutes before a read needs to
     hedge.) *)
  Alcotest.(check bool) "writes replicated" true (c "cluster.replicate" > 0);
  ( transcript,
    Metrics.to_json (Network.metrics (World.net w)),
    Trace.to_json trace,
    Clock.now (World.clock w) )

let cluster_oracle_transcript () =
  let w, alice, visitor = cluster_world [ "alpha.grid.edu" ] () in
  cluster_steps w alice visitor

(* Tentpole scenario: split-brain divergence, then anti-entropy
   convergence.  Gamma is partitioned from the clients, its peers and
   the catalog; the majority keeps writing through the router while a
   second client (on an unpartitioned host) keeps writing directly to
   gamma, so both sides of the split accept acknowledged mutations for
   the same keys.  After the heal, rebalance migrates the majority's
   data back, and the repair loop (digest exchange + exact installs)
   must converge every member — owners and stale non-owners alike — to
   byte-identical per-key digests and identical ACL verdicts, for two
   runs of the same seed. *)
let partition_heal_repair_converges () =
  let seed =
    match Sys.getenv_opt "IDBOX_CHAOS_SEED" with
    | Some s -> (try Int64.of_string s with _ -> 2005L)
    | None -> 2005L
  in
  let run () =
    let w, alice, _visitor =
      cluster_world
        [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ]
        ~staleness_ns:8_000_000_000L ~heartbeat_interval_ns:2_000_000_000L ()
    in
    Network.set_fault_plan (World.net w)
      (Fault.plan ~seed
         ~partitions:
           (List.map
              (fun peer ->
                { Fault.from_ns = 20_000_000_000L;
                  until_ns = 90_000_000_000L;
                  between = ("gamma.grid.edu", peer) })
              [ "client"; "alpha.grid.edu"; "beta.grid.edu"; "catalog.grid.edu" ])
         ());
    let settled r op =
      let rec go n =
        match op () with
        | Error e when transient_errno e && n < 12 ->
          Clock.advance (World.clock w) 2_000_000_000L;
          World.tick w;
          Router.sync r;
          go (n + 1)
        | v -> v
      in
      go 0
    in
    (* Calm prelude: every key fully replicated before the split. *)
    for i = 0 to 9 do
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      let dir = Printf.sprintf "/d%d" (i mod 6) in
      ok "pre put"
        (settled alice (fun () ->
             Router.put alice ~path:(dir ^ "/f")
               ~data:(Printf.sprintf "pre-%d" i)))
    done;
    (* The split is open (clock is past 20 s).  A client on an
       unpartitioned host still reaches gamma directly and gets its
       writes acknowledged — the minority side of the brain. *)
    let gamma_direct =
      match
        Client.connect ~src:"minority.grid.edu" ~policy:chaos_policy
          (World.net w) ~addr:"gamma.grid.edu:9094"
          ~credentials:[ World.issue w "Alice" ]
      with
      | Ok c -> c
      | Error m -> Alcotest.fail m
    in
    (* Keys gamma replicates (its ring is the stale full one): it holds
       those dirs — and Alice's reserved ACL in them — so overlapping
       minority writes are acknowledged there. *)
    let gamma_ring = Replica.ring (World.replica w "gamma") in
    let gamma_dirs =
      List.filter
        (fun j ->
          List.mem "gamma"
            (Ring.successors gamma_ring
               (Printf.sprintf "d%d" j)
               (World.replicas w)))
        [ 0; 1; 2; 3; 4; 5 ]
    in
    Alcotest.(check bool) "gamma replicates some keys" true (gamma_dirs <> []);
    (* And a key that exists only on the minority side: created on
       gamma during the split, acknowledged there, known nowhere else. *)
    ok "island mkdir" (Client.mkdir gamma_direct "/island");
    for i = 10 to 19 do
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      let dir = Printf.sprintf "/d%d" (i mod 6) in
      ok "major put"
        (settled alice (fun () ->
             Router.put alice ~path:(dir ^ "/f")
               ~data:(Printf.sprintf "major-%d" i)));
      let gdir =
        Printf.sprintf "/d%d"
          (List.nth gamma_dirs (i mod List.length gamma_dirs))
      in
      ok "minor put overlap"
        (Client.put gamma_direct ~path:(gdir ^ "/f")
           ~data:(Printf.sprintf "minor-%d" i));
      ok "minor put extra"
        (Client.put gamma_direct
           ~path:(gdir ^ "/minority")
           ~data:(Printf.sprintf "stray-%d" i));
      ok "minor island put"
        (Client.put gamma_direct
           ~path:(Printf.sprintf "/island/i%d" i)
           ~data:(Printf.sprintf "island-%d" i))
    done;
    (* Ride out the partition; reconverge the router's view. *)
    let rec heal n =
      Router.sync alice;
      if List.length (Router.nodes alice) < 3 && n < 80 then begin
        Clock.advance (World.clock w) 2_000_000_000L;
        World.tick w;
        heal (n + 1)
      end
    in
    heal 0;
    Alcotest.(check int) "view reconverged" 3 (List.length (Router.nodes alice));
    (* Let the heal-triggered sweeps fire (one tick after each node
       observes the membership change), then force sweeps so handoff
       hints from non-owners get processed to completion. *)
    for _ = 1 to 4 do
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      Router.sync alice
    done;
    for _ = 1 to 3 do
      World.repair_sweep w;
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w
    done;
    (* Convergence: for every key, every member that holds a copy —
       owner or stray — reports the same digest, and every ring owner
       of the key does hold one (island included: its primary adopted
       the minority's acknowledged creation). *)
    let members = World.members w in
    let ring = Replica.ring (World.replica w "alpha") in
    let buf = ref [] in
    let record fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
    List.iter
      (fun key ->
        let digest_of name =
          match Server.subtree_digest (World.server w name) key with
          | Ok d -> Some d
          | Error _ -> None
        in
        let holders =
          List.filter_map
            (fun n -> Option.map (fun d -> (n, d)) (digest_of n))
            members
        in
        let owners = Ring.successors ring key (World.replicas w) in
        List.iter
          (fun o ->
            Alcotest.(check bool)
              (Printf.sprintf "owner %s holds %s" o key)
              true (List.mem_assoc o holders))
          owners;
        match holders with
        | [] -> Alcotest.failf "no member holds %s" key
        | (first, d) :: rest ->
          List.iter
            (fun (n, d') ->
              Alcotest.(check string)
                (Printf.sprintf "%s digest: %s = %s" key first n)
                d d')
            rest;
          record "%s %s holders=%s" key d
            (String.concat "," (List.map fst holders)))
      [ "d0"; "d1"; "d2"; "d3"; "d4"; "d5"; "island" ];
    (* ACL verdicts are part of convergence: every owner of a key
       reports the same ACL text for it and denies the read-only
       visitor identically (the probe put is refused, so it mutates
       nothing). *)
    List.iter
      (fun key ->
        let probes =
          List.map
            (fun name ->
              let addr = name ^ ".grid.edu:9094" in
              let direct creds =
                match
                  Client.connect ~src:"probe.grid.edu" ~policy:chaos_policy
                    (World.net w) ~addr ~credentials:creds
                with
                | Ok c -> c
                | Error m -> Alcotest.failf "probe connect %s: %s" name m
              in
              let a = direct [ World.issue w "Alice" ] in
              let v = direct [ Credential.Host "probe.grid.edu" ] in
              let acl = gstr (Client.getacl a ("/" ^ key)) in
              let deny =
                vstr (Client.put v ~path:("/" ^ key ^ "/intruder") ~data:"evil")
              in
              record "%s@%s acl %s intrude %s" key name acl deny;
              (name, acl, deny))
            (Ring.successors ring key (World.replicas w))
        in
        match probes with
        | [] -> Alcotest.failf "no owners for %s" key
        | (first, acl0, deny0) :: rest ->
          List.iter
            (fun (name, acl, deny) ->
              Alcotest.(check string)
                (Printf.sprintf "%s ACL text: %s = %s" key first name)
                acl0 acl;
              Alcotest.(check string)
                (Printf.sprintf "%s denial: %s = %s" key first name)
                deny0 deny)
            rest)
      [ "d0"; "island" ];
    let c name = Metrics.counter_value_of (Network.metrics (World.net w)) name in
    Alcotest.(check bool) "forward failures noted" true
      (c "cluster.repair.pending" > 0);
    Alcotest.(check bool) "divergence detected" true
      (c "cluster.repair.diverged" > 0);
    Alcotest.(check bool) "repairs pushed" true (c "cluster.repair.push" > 0);
    ( String.concat "\n" (List.rev !buf),
      Metrics.to_json (Network.metrics (World.net w)),
      Clock.now (World.clock w) )
  in
  let t1, m1, c1 = run () in
  let t2, m2, c2 = run () in
  Alcotest.(check string) "two seeded runs: digests + verdicts" t1 t2;
  Alcotest.(check string) "two seeded runs: metrics byte-identical" m1 m2;
  Alcotest.(check int64) "two seeded runs: clock" c1 c2

(* --- control-plane chaos (ISSUE 7) ----------------------------------- *)

(* A deliberate scale-down racing a partition: gamma is cut off from
   clients, peers and the catalog, and *while the partition is open*
   delta is scaled out cleanly.  Writes keep landing on the survivors;
   after the heal, rebalance and repair re-establish the replication
   factor, and every mutation that was ever acknowledged is still
   readable.  Two runs of the same seed are byte-identical. *)
let scale_down_during_partition () =
  let seed =
    match Sys.getenv_opt "IDBOX_CHAOS_SEED" with
    | Some s -> (try Int64.of_string s with _ -> 424242L)
    | None -> 424242L
  in
  let run () =
    let w, alice, _visitor =
      cluster_world
        [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu";
          "delta.grid.edu" ]
        ~staleness_ns:8_000_000_000L ~heartbeat_interval_ns:2_000_000_000L ()
    in
    Network.set_fault_plan (World.net w)
      (Fault.plan ~seed
         ~default_profile:(Fault.profile ~drop:0.05 ())
         ~partitions:
           (List.map
              (fun peer ->
                { Fault.from_ns = 20_000_000_000L; until_ns = 70_000_000_000L;
                  between = ("gamma.grid.edu", peer) })
              [ "client"; "alpha.grid.edu"; "beta.grid.edu"; "delta.grid.edu";
                "catalog.grid.edu" ])
         ());
    let buf = ref [] in
    let record fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
    let acked : (string, string) Hashtbl.t = Hashtbl.create 16 in
    let settled op =
      let rec go n =
        match op () with
        | Error e when transient_errno e && n < 12 ->
          Clock.advance (World.clock w) 2_000_000_000L;
          World.tick w;
          Router.sync alice;
          go (n + 1)
        | v -> v
      in
      go 0
    in
    let put path data =
      match settled (fun () -> Router.put alice ~path ~data) with
      | Ok () ->
        Hashtbl.replace acked path data;
        record "put %s %s ok" path data
      | Error e -> record "put %s %s %s" path data (Errno.to_string e)
    in
    (* Calm prelude: every key written (and replicated) before the split. *)
    for i = 0 to 9 do
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      put (Printf.sprintf "/d%d/f" (i mod 6)) (Printf.sprintf "pre-%d" i)
    done;
    (* The partition is open.  Keep writing through it; halfway in,
       scale delta out while gamma is still unreachable. *)
    for i = 10 to 19 do
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      if i = 14 then begin
        (match World.remove_node w "delta" with
         | Ok () -> ()
         | Error m -> Alcotest.failf "remove delta: %s" m);
        World.settle w;
        record "scale-down delta members=%s"
          (String.concat "," (World.members w))
      end;
      put (Printf.sprintf "/d%d/f" (i mod 6)) (Printf.sprintf "storm-%d" i)
    done;
    (* Ride out the partition until the routers see the final membership
       (alpha, beta and a re-admitted gamma — delta stays gone). *)
    let survivors = [ "alpha"; "beta"; "gamma" ] in
    let rec heal n =
      Router.sync alice;
      if Router.nodes alice <> survivors && n < 80 then begin
        Clock.advance (World.clock w) 2_000_000_000L;
        World.tick w;
        heal (n + 1)
      end
    in
    heal 0;
    Alcotest.(check (list string)) "view reconverged on the survivors"
      survivors (Router.nodes alice);
    Alcotest.(check (list string)) "delta stayed out"
      [ "alpha"; "beta"; "gamma" ] (World.members w);
    for _ = 1 to 4 do
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      Router.sync alice
    done;
    for _ = 1 to 3 do
      World.repair_sweep w;
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w
    done;
    (* Zero lost acked mutations: every acknowledged write is readable
       with its last acknowledged value. *)
    let paths =
      List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) acked [])
    in
    List.iter
      (fun path ->
        let want = Hashtbl.find acked path in
        (match settled (fun () -> Router.get alice path) with
         | Ok got ->
           Alcotest.(check string)
             (Printf.sprintf "acked mutation survives: %s" path)
             want got
         | Error e ->
           Alcotest.failf "acked mutation lost: %s (%s)" path
             (Errno.to_string e));
        record "final %s %s" path want)
      paths;
    let c name = Metrics.counter_value_of (Network.metrics (World.net w)) name in
    Alcotest.(check bool) "partition hit" true (c "net.partition" > 0);
    (* The deregister is itself a droppable message; when it is lost the
       stopped heartbeat ages the lease out instead (a second ejection on
       top of gamma's).  Either way delta's lease must end. *)
    Alcotest.(check bool) "scale-down ended delta's lease" true
      (c "catalog.deregister" >= 1 || c "cluster.member.leave" >= 2);
    Alcotest.(check bool) "isolated node was ejected" true
      (c "cluster.member.leave" > 0);
    Alcotest.(check bool) "writes kept replicating" true
      (c "cluster.replicate" > 0);
    ( String.concat "\n" (List.rev !buf),
      Metrics.to_json (Network.metrics (World.net w)),
      Clock.now (World.clock w) )
  in
  let t1, m1, c1 = run () in
  let t2, m2, c2 = run () in
  Alcotest.(check string) "two seeded runs: transcript" t1 t2;
  Alcotest.(check string) "two seeded runs: metrics byte-identical" m1 m2;
  Alcotest.(check int64) "two seeded runs: clock" c1 c2

(* A node that flaps faster than the membership layer can notice: the
   breakers absorb it.  Each bounce trips gamma's breaker open (reads
   fail over, further sweeps short-circuit), and each recovery is
   probed half-open and re-closed — with zero membership churn and no
   acknowledged write lost. *)
let flapping_node_absorbed_by_breakers () =
  let run () =
    let w, alice, _visitor =
      cluster_world
        [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ]
        ~staleness_ns:8_000_000_000L ~heartbeat_interval_ns:2_000_000_000L ()
    in
    let buf = ref [] in
    let record fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
    let acked : (string, string) Hashtbl.t = Hashtbl.create 16 in
    let settled op =
      let rec go n =
        match op () with
        | Error e when transient_errno e && n < 12 ->
          Clock.advance (World.clock w) 2_000_000_000L;
          World.tick w;
          Router.sync alice;
          go (n + 1)
        | v -> v
      in
      go 0
    in
    let put path data =
      (match settled (fun () -> Router.put alice ~path ~data) with
       | Ok () -> Hashtbl.replace acked path data
       | Error e -> Alcotest.failf "put %s: %s" path (Errno.to_string e));
      record "put %s %s" path data
    in
    let get path =
      record "get %s %s" path
        (gstr (settled (fun () -> Router.get alice path)))
    in
    for j = 0 to 5 do
      put (Printf.sprintf "/d%d/f" j) (Printf.sprintf "seed-%d" j)
    done;
    (* A dir gamma owns (its sweeps feed gamma's breaker) and one it
       does not (writes keep landing while gamma is down).  The sharding
       is name-hashed, so probe dir names until both primaries appear;
       dirs beyond the pre-created six are made on demand. *)
    let dir_matching pred =
      let rec go j =
        if j > 40 then Alcotest.fail "no dir with a matching primary"
        else
          let d = Printf.sprintf "/d%d" j in
          match Router.node_for alice d with
          | Some n when pred n ->
            if j > 5 then begin
              (match settled (fun () -> Router.mkdir alice d) with
               | Ok () -> ()
               | Error e -> Alcotest.failf "mkdir %s: %s" d (Errno.to_string e));
              put (d ^ "/f") (Printf.sprintf "seed-%d" j)
            end;
            d ^ "/f"
          | _ -> go (j + 1)
      in
      go 0
    in
    let gdir = dir_matching (String.equal "gamma")
    and sdir = dir_matching (fun n -> not (String.equal n "gamma")) in
    for round = 1 to 3 do
      World.crash w "gamma";
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      (* Three failed sweeps trip the breaker; the fourth short-circuits
         straight to the surviving replica. *)
      for _ = 1 to 4 do
        get gdir
      done;
      put sdir (Printf.sprintf "flap-%d" round);
      World.restart w "gamma";
      Clock.advance (World.clock w) 2_000_000_000L;
      World.tick w;
      (* The next sweep is granted as the half-open probe; its success
         re-closes the breaker. *)
      get gdir;
      get gdir;
      put gdir (Printf.sprintf "healed-%d" round)
    done;
    let c name = Metrics.counter_value_of (Network.metrics (World.net w)) name in
    Alcotest.(check bool) "breaker opened each bounce" true
      (c "cluster.breaker.open" >= 3);
    Alcotest.(check bool) "breaker re-closed each recovery" true
      (c "cluster.breaker.close" >= 3);
    Alcotest.(check bool) "open breaker short-circuited sweeps" true
      (c "cluster.breaker.skip" >= 3);
    Alcotest.(check int) "no membership churn" 0 (c "cluster.member.leave");
    Hashtbl.fold (fun p v acc -> (p, v) :: acc) acked []
    |> List.sort compare
    |> List.iter (fun (path, want) ->
           Alcotest.(check string)
             (Printf.sprintf "acked mutation survives: %s" path)
             want
             (gstr (settled (fun () -> Router.get alice path))));
    ( String.concat "\n" (List.rev !buf),
      Metrics.to_json (Network.metrics (World.net w)),
      Clock.now (World.clock w) )
  in
  let t1, m1, c1 = run () in
  let t2, m2, c2 = run () in
  Alcotest.(check string) "two runs: transcript" t1 t2;
  Alcotest.(check string) "two runs: metrics byte-identical" m1 m2;
  Alcotest.(check int64) "two runs: clock" c1 c2

(* Thundering herd against a freshly restarted server: a stampede of
   simultaneous retries overruns the parked-mutation bound, brownout
   sheds the excess with retry-after hints, well-behaved clients wait
   the hint out and land on the drained queue — nothing acknowledged is
   lost and the server never collapses. *)
let thundering_herd_recovery () =
  let run () =
    let w =
      make_world ~event_driven:true ~max_parked:8
        ~flush_interval_ns:500_000_000L ()
    in
    let c = connect_fred w in
    let buf = ref [] in
    let record fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
    ok "mkdir" (Client.mkdir c "/work");
    for i = 1 to 4 do
      ok "pre put"
        (Client.put c
           ~path:(Printf.sprintf "/work/pre%d" i)
           ~data:(Printf.sprintf "pre-%d" i))
    done;
    (* The crash that provokes the herd; recovery replays the WAL. *)
    Server.crash w.server;
    Clock.advance w.clock 3_000_000_000L;
    Server.restart w.server;
    (* First retrier re-authenticates its session... *)
    ok "reauth put" (Client.put c ~path:"/work/reauth" ~data:"back");
    record "reauth ok";
    (* ...and the herd arrives at once: 12 in-flight mutations against a
       parked bound of 8 (brownout at 6). *)
    let submit op =
      Network.submit w.net ~src:"client" ~timeout_ns:2_000_000_000L
        ~addr:server_addr (Client.prepare c op)
    in
    let toks =
      List.init 12 (fun i ->
          submit (Protocol.Put { path = Printf.sprintf "/work/h%d" i;
                                 data = "herd" }))
    in
    let pump pred =
      let rec go guard =
        if pred () then ()
        else if guard = 0 then Alcotest.fail "pump: no progress"
        else if Network.step w.net then go (guard - 1)
        else Alcotest.fail "pump: network idle before condition held"
      in
      go 100_000
    in
    pump (fun () -> counter w "chirp.shed.mutation" >= 6);
    Alcotest.(check bool) "the stampede browned the server out" true
      (Server.brownout w.server);
    (* Reads are still served mid-stampede. *)
    let rd = submit (Protocol.Readdir "/work") in
    pump (fun () -> Network.poll rd <> None);
    (match Network.poll rd with
     | Some (Ok text) ->
       (match Client.interpret text with
        | Ok (Protocol.R_names _) -> record "mid-herd readdir ok"
        | Ok _ -> Alcotest.fail "readdir: unexpected response"
        | Error e ->
          Alcotest.failf "readdir shed under herd: %s" (Errno.to_string e))
     | _ -> Alcotest.fail "readdir got no reply");
    (* Well-behaved herd members are shed now, wait the hint out (which
       spans the flush tick draining the parked queue) and land on the
       retry — counted distinctly from transport-fault retries. *)
    for i = 1 to 6 do
      ok "retry put"
        (Client.put c
           ~path:(Printf.sprintf "/work/r%d" i)
           ~data:(Printf.sprintf "retried-%d" i))
    done;
    pump (fun () -> List.for_all (fun t -> Network.poll t <> None) toks);
    let served, shed =
      List.partition
        (fun t ->
          match Network.poll t with
          | Some (Ok text) ->
            (match Client.interpret text with Ok _ -> true | Error _ -> false)
          | _ -> false)
        toks
    in
    record "herd served=%d shed=%d" (List.length served) (List.length shed);
    Alcotest.(check bool) "some of the herd was admitted" true
      (List.length served >= 1);
    Alcotest.(check bool) "the excess was shed, not dropped" true
      (List.length shed >= 1);
    Alcotest.(check bool) "shed retries counted distinctly" true
      (counter w "chirp.retry.shed" >= 1);
    Alcotest.(check bool) "brownout entered under the herd" true
      (counter w "chirp.brownout.enter" >= 1);
    Alcotest.(check bool) "brownout exited after the drain" true
      (counter w "chirp.brownout.exit" >= 1);
    Alcotest.(check bool) "server recovered" false (Server.brownout w.server);
    (* Nothing acknowledged was lost: pre-crash state survived the WAL
       replay, and every retried mutation is readable. *)
    for i = 1 to 4 do
      Alcotest.(check string) "pre-crash data survived"
        (Printf.sprintf "pre-%d" i)
        (ok "get" (Client.get c (Printf.sprintf "/work/pre%d" i)))
    done;
    for i = 1 to 6 do
      Alcotest.(check string) "retried mutation landed"
        (Printf.sprintf "retried-%d" i)
        (ok "get" (Client.get c (Printf.sprintf "/work/r%d" i)))
    done;
    record "recovered";
    ( String.concat "\n" (List.rev !buf),
      Metrics.to_json (Kernel.metrics w.kernel),
      Clock.now w.clock )
  in
  let t1, m1, c1 = run () in
  let t2, m2, c2 = run () in
  Alcotest.(check string) "two runs: transcript" t1 t2;
  Alcotest.(check string) "two runs: metrics byte-identical" m1 m2;
  Alcotest.(check int64) "two runs: clock" c1 c2

let cluster_chaos_matches_oracle () =
  let t1, m1, tr1, c1 = cluster_chaos_run () in
  let t2, m2, tr2, c2 = cluster_chaos_run () in
  Alcotest.(check string) "two seeded runs: transcript" t1 t2;
  Alcotest.(check string) "two seeded runs: metrics byte-identical" m1 m2;
  Alcotest.(check string) "two seeded runs: trace byte-identical" tr1 tr2;
  Alcotest.(check int64) "two seeded runs: clock" c1 c2;
  Alcotest.(check string) "verdicts match the single-server oracle"
    (cluster_oracle_transcript ()) t1

let suite =
  [
    Alcotest.test_case "workload completes at 10% drop + partition" `Quick
      workload_completes_under_drops;
    Alcotest.test_case "exec exactly-once under loss" `Quick
      exec_exactly_once_under_loss;
    Alcotest.test_case "dedup replays across restart" `Quick
      dedup_replays_same_request_id;
    Alcotest.test_case "dedup journal evicts by age" `Quick
      dedup_journal_evicts_by_age;
    Alcotest.test_case "restart reauth keeps identity" `Quick
      restart_reauth_keeps_identity;
    Alcotest.test_case "session cap sheds then recovers" `Quick
      session_cap_sheds_then_recovers;
    Alcotest.test_case "catalog eviction + heartbeat recovery" `Quick
      catalog_eviction_and_heartbeat_recovery;
    Alcotest.test_case "two seeded runs byte-identical" `Quick
      deterministic_chaos_run;
    Alcotest.test_case "decoders total under mangling" `Quick
      decoders_total_under_mangling;
    Alcotest.test_case "acl holds under corruption" `Quick
      acl_holds_under_corruption;
    Alcotest.test_case "3-node cluster chaos matches oracle, twice" `Quick
      cluster_chaos_matches_oracle;
    Alcotest.test_case "partition-heal repair converges, twice" `Quick
      partition_heal_repair_converges;
    Alcotest.test_case "scale-down races a partition, twice" `Quick
      scale_down_during_partition;
    Alcotest.test_case "flapping node absorbed by breakers" `Quick
      flapping_node_absorbed_by_breakers;
    Alcotest.test_case "thundering herd sheds then recovers" `Quick
      thundering_herd_recovery;
  ]
