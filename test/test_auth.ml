module Ca = Idbox_auth.Ca
module Kerberos = Idbox_auth.Kerberos
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Subject = Idbox_identity.Subject
module Principal = Idbox_identity.Principal

let fred_subject = Subject.of_string_exn "/O=UnivNowhere/CN=Fred"

let ca_issue_verify () =
  let ca = Ca.create ~name:"UnivNowhere CA" in
  let cert = Ca.issue ca fred_subject in
  Alcotest.(check bool) "verifies" true (Ca.verify ca cert);
  Alcotest.(check string) "principal" "globus:/O=UnivNowhere/CN=Fred"
    (Principal.to_string (Ca.certificate_principal cert))

let tampered_certificate_rejected () =
  let ca = Ca.create ~name:"CA" in
  let cert = Ca.issue ca fred_subject in
  let forged =
    { cert with Ca.subject = Subject.of_string_exn "/O=UnivNowhere/CN=Root" }
  in
  Alcotest.(check bool) "tampered subject" false (Ca.verify ca forged);
  let wrong_issuer = { cert with Ca.issuer = "Other CA" } in
  Alcotest.(check bool) "wrong issuer" false (Ca.verify ca wrong_issuer)

let foreign_ca_rejected () =
  let ca = Ca.create ~name:"CA" and rogue = Ca.create ~name:"CA" in
  (* Same display name, different secret: still rejected. *)
  let cert = Ca.issue rogue fred_subject in
  Alcotest.(check bool) "foreign signature" false (Ca.verify ca cert)

let revocation () =
  let ca = Ca.create ~name:"CA" in
  let cert = Ca.issue ca fred_subject in
  Alcotest.(check bool) "not revoked" false (Ca.is_revoked ca cert);
  Ca.revoke ca cert;
  Alcotest.(check bool) "revoked" true (Ca.is_revoked ca cert);
  (* Negotiation refuses revoked certificates even though they verify. *)
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  match Negotiate.verify acceptor ~now:0L (Credential.Gsi cert) with
  | Error (Negotiate.Invalid_credential _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "revoked certificate accepted"

let kerberos_login_verify () =
  let realm = Kerberos.create ~realm:"NOWHERE.EDU" in
  Kerberos.add_user realm "fred" ~password:"hunter2";
  (match Kerberos.login realm ~user:"fred" ~password:"wrong" ~now:0L with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad password accepted");
  (match Kerberos.login realm ~user:"nobody" ~password:"x" ~now:0L with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown user accepted");
  let ticket =
    match Kerberos.login realm ~user:"fred" ~password:"hunter2" ~now:0L with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "fresh ticket ok" true (Kerberos.verify realm ticket ~now:0L);
  Alcotest.(check string) "principal" "kerberos:fred@NOWHERE.EDU"
    (Principal.to_string (Kerberos.ticket_principal ticket))

let kerberos_expiry_and_forgery () =
  let realm = Kerberos.create ~realm:"R" in
  Kerberos.add_user realm "u" ~password:"p";
  let ticket =
    match Kerberos.login realm ~user:"u" ~password:"p" ~now:0L with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  (* The Expiry boundary rule: valid at exactly now = expires_at,
     invalid one nanosecond later — the same rule as Cas assertions
     and delegation tokens. *)
  Alcotest.(check bool) "valid at the boundary instant" true
    (Kerberos.verify realm ticket ~now:ticket.Kerberos.expires_at);
  Alcotest.(check bool) "dead one ns past the boundary" false
    (Kerberos.verify realm ticket ~now:(Int64.add ticket.Kerberos.expires_at 1L));
  (* 10 hours later it has expired. *)
  let eleven_hours = Int64.mul 39_600L 1_000_000_000L in
  Alcotest.(check bool) "expired" false (Kerberos.verify realm ticket ~now:eleven_hours);
  (* A forged expiry breaks the stamp. *)
  let forged = { ticket with Kerberos.expires_at = Int64.add eleven_hours 1L } in
  Alcotest.(check bool) "forged expiry" false (Kerberos.verify realm forged ~now:eleven_hours);
  (* Another realm's ticket is meaningless here. *)
  let other = Kerberos.create ~realm:"R" in
  Kerberos.add_user other "u" ~password:"p";
  let foreign =
    match Kerberos.login other ~user:"u" ~password:"p" ~now:0L with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "foreign realm" false (Kerberos.verify realm foreign ~now:0L)

let negotiation_prefers_client_order () =
  let ca = Ca.create ~name:"CA" in
  let realm = Kerberos.create ~realm:"R" in
  Kerberos.add_user realm "fred" ~password:"p";
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] ~realm () in
  let cert = Ca.issue ca fred_subject in
  let ticket =
    match Kerberos.login realm ~user:"fred" ~password:"p" ~now:0L with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  (* Kerberos offered first wins even though GSI would also work. *)
  (match
     Negotiate.negotiate acceptor ~now:0L
       [ Credential.Krb ticket; Credential.Gsi cert ]
   with
   | Ok (principal, method_, attempts) ->
     Alcotest.(check string) "method" "kerberos" method_;
     Alcotest.(check int) "first try" 1 attempts;
     Alcotest.(check bool) "krb principal" true
       (String.equal (Principal.to_string principal) "kerberos:fred@R")
   | Error m -> Alcotest.fail m);
  (* An unsupported method falls through to the next credential. *)
  (match
     Negotiate.negotiate acceptor ~now:0L
       [ Credential.Host "laptop.nowhere.edu"; Credential.Gsi cert ]
   with
   | Ok (_, method_, attempts) ->
     Alcotest.(check string) "fell through" "globus" method_;
     Alcotest.(check int) "second try" 2 attempts
   | Error m -> Alcotest.fail m)

let negotiation_failure_reports_all () =
  let acceptor = Negotiate.acceptor ~unix_ok:(fun n -> String.equal n "alice") () in
  (match Negotiate.negotiate acceptor ~now:0L [ Credential.Unix_account "bob" ] with
   | Error msg ->
     Alcotest.(check bool) "mentions rejection" true
       (String.length msg > 0)
   | Ok _ -> Alcotest.fail "bob accepted");
  (match Negotiate.negotiate acceptor ~now:0L [] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty offer accepted")

let hostname_and_unix_validators () =
  let acceptor =
    Negotiate.acceptor
      ~unix_ok:(fun n -> String.equal n "dthain")
      ~host_ok:(fun h ->
        Idbox_identity.Wildcard.literal_matches "*.nowhere.edu" h)
      ()
  in
  Alcotest.(check (list string)) "methods" [ "unix"; "hostname" ]
    (Negotiate.methods acceptor);
  (match Negotiate.verify acceptor ~now:0L (Credential.Host "laptop.cs.nowhere.edu") with
   | Ok p ->
     Alcotest.(check string) "host principal" "hostname:laptop.cs.nowhere.edu"
       (Principal.to_string p)
   | Error _ -> Alcotest.fail "host rejected");
  (match Negotiate.verify acceptor ~now:0L (Credential.Host "evil.org") with
   | Error (Negotiate.Invalid_credential _) -> ()
   | Ok _ | Error _ -> Alcotest.fail "evil host accepted");
  (match Negotiate.verify acceptor ~now:0L (Credential.Unix_account "dthain") with
   | Ok p ->
     Alcotest.(check string) "unix principal" "unix:dthain" (Principal.to_string p)
   | Error _ -> Alcotest.fail "dthain rejected")

let suite =
  [
    Alcotest.test_case "ca issue/verify" `Quick ca_issue_verify;
    Alcotest.test_case "tampered certificate" `Quick tampered_certificate_rejected;
    Alcotest.test_case "foreign ca" `Quick foreign_ca_rejected;
    Alcotest.test_case "revocation" `Quick revocation;
    Alcotest.test_case "kerberos login/verify" `Quick kerberos_login_verify;
    Alcotest.test_case "kerberos expiry/forgery" `Quick kerberos_expiry_and_forgery;
    Alcotest.test_case "negotiation order" `Quick negotiation_prefers_client_order;
    Alcotest.test_case "negotiation failure" `Quick negotiation_failure_reports_all;
    Alcotest.test_case "hostname/unix validators" `Quick hostname_and_unix_validators;
  ]
