(* The aggregated test binary: one alcotest run, one suite per module. *)

let () =
  Alcotest.run "idbox"
    [
      ("wildcard", Test_wildcard.suite);
      ("principal", Test_principal.suite);
      ("subject", Test_subject.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("acl", Test_acl.suite);
      ("path", Test_path.suite);
      ("vfs", Test_vfs.suite);
      ("vfs-props", Test_vfs_props.suite);
      ("kernel", Test_kernel.suite);
      ("metrics", Test_metrics.suite);
      ("kernel-units", Test_kernel_units.suite);
      ("pipe", Test_pipe.suite);
      ("libc", Test_libc.suite);
      ("box", Test_box.suite);
      ("security", Test_security.suite);
      ("auth", Test_auth.suite);
      ("net", Test_net.suite);
      ("chaos", Test_chaos.suite);
      ("wal", Test_wal.suite);
      ("protocol", Test_protocol.suite);
      ("chirp", Test_chirp.suite);
      ("enforce", Test_enforce.suite);
      ("ptrace", Test_ptrace.suite);
      ("kbox", Test_kbox.suite);
      ("accounts", Test_accounts.suite);
      ("workload", Test_workload.suite);
      ("audit", Test_audit.suite);
      ("fuzz", Test_fuzz.suite);
      ("cas", Test_cas.suite);
      ("chirp_fs", Test_chirp_fs.suite);
      ("apps", Test_apps.suite);
      ("remote", Test_remote.suite);
      ("world", Test_world.suite);
      ("ring", Test_ring.suite);
      ("cluster", Test_cluster.suite);
      ("enforce-cache", Test_enforce_cache.suite);
      ("policy-compile", Test_policy_compile.suite);
      ("delegation", Test_delegation.suite);
      ("delegation-props", Test_delegation_props.suite);
      ("delegation-chaos", Test_delegation_chaos.suite);
      ("async", Test_async.suite);
      ("control", Test_control.suite);
    ]
