module Cas = Idbox_auth.Cas
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Principal = Idbox_identity.Principal
module Subject = Idbox_identity.Subject

let fred = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"
let jane = Principal.of_string "globus:/O=UnivNowhere/CN=Jane"

let membership_basics () =
  let cas = Cas.create ~name:"cms-cas" in
  Cas.add_member cas ~community:"cms" fred;
  Cas.add_member cas ~community:"cms" jane;
  Cas.add_member cas ~community:"atlas" jane;
  Alcotest.(check bool) "fred in cms" true (Cas.is_member cas ~community:"cms" fred);
  Alcotest.(check bool) "fred not atlas" false
    (Cas.is_member cas ~community:"atlas" fred);
  Alcotest.(check (list string)) "communities" [ "atlas"; "cms" ]
    (Cas.communities cas);
  Alcotest.(check int) "cms members" 2 (List.length (Cas.members cas ~community:"cms"));
  Cas.remove_member cas ~community:"cms" fred;
  Alcotest.(check bool) "removed" false (Cas.is_member cas ~community:"cms" fred)

let assertions_and_expiry () =
  let cas = Cas.create ~name:"c" in
  Cas.add_member cas ~community:"cms" fred;
  (match Cas.issue cas ~community:"cms" ~holder:jane ~now:0L with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "non-member got an assertion");
  let assertion =
    match Cas.issue cas ~community:"cms" ~holder:fred ~now:0L with
    | Ok a -> a
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "fresh ok" true (Cas.verify cas assertion ~now:1L);
  (* The Expiry boundary rule: valid at exactly now = expires,
     invalid one nanosecond later. *)
  Alcotest.(check bool) "valid at the boundary instant" true
    (Cas.verify cas assertion ~now:assertion.Cas.as_expires);
  Alcotest.(check bool) "dead one ns past the boundary" false
    (Cas.verify cas assertion ~now:(Int64.add assertion.Cas.as_expires 1L));
  (* Expired after an hour. *)
  let later = Int64.mul 7200L 1_000_000_000L in
  Alcotest.(check bool) "expired" false (Cas.verify cas assertion ~now:later);
  (* Tampered holder breaks the stamp. *)
  let forged = { assertion with Cas.as_holder = Principal.to_string jane } in
  Alcotest.(check bool) "forged" false (Cas.verify cas forged ~now:1L);
  (* Revocation invalidates even a live assertion. *)
  Cas.remove_member cas ~community:"cms" fred;
  Alcotest.(check bool) "revoked member" false (Cas.verify cas assertion ~now:1L)

let admission_policy_in_negotiation () =
  let ca = Ca.create ~name:"CA" in
  let cas = Cas.create ~name:"cas" in
  Cas.add_member cas ~community:"cms" fred;
  let acceptor =
    Negotiate.acceptor ~trusted_cas:[ ca ]
      ~admit:(Cas.admit cas ~communities:[ "cms" ] ~now:0L)
      ()
  in
  let fred_cert = Ca.issue ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
  let jane_cert = Ca.issue ca (Subject.of_string_exn "/O=UnivNowhere/CN=Jane") in
  (* Fred: valid certificate AND community member -> admitted under his
     own global name. *)
  (match Negotiate.verify acceptor ~now:0L (Credential.Gsi fred_cert) with
   | Ok p ->
     Alcotest.(check string) "own name kept" "globus:/O=UnivNowhere/CN=Fred"
       (Principal.to_string p)
   | Error r -> Alcotest.fail (Negotiate.rejection_to_string r));
  (* Jane: valid certificate, not a member -> admission denied. *)
  (match Negotiate.verify acceptor ~now:0L (Credential.Gsi jane_cert) with
   | Error (Negotiate.Invalid_credential why) ->
     Alcotest.(check bool) "mentions admission" true
       (String.length why > 0)
   | Ok _ -> Alcotest.fail "non-member admitted"
   | Error r -> Alcotest.fail (Negotiate.rejection_to_string r))

let admission_with_chirp_server () =
  (* End to end: a Chirp server admitting exactly one community, no
     per-user configuration anywhere. *)
  let module Kernel = Idbox_kernel.Kernel in
  let module Network = Idbox_net.Network in
  let clock = Idbox_kernel.Clock.create () in
  let net = Network.create ~clock () in
  let kernel = Kernel.create ~clock () in
  let owner =
    match Kernel.add_user kernel "srv" with Ok e -> e | Error m -> Alcotest.fail m
  in
  let ca = Ca.create ~name:"CA" in
  let cas = Cas.create ~name:"cas" in
  Cas.add_member cas ~community:"plasma" fred;
  let acceptor =
    Negotiate.acceptor ~trusted_cas:[ ca ]
      ~admit:(Cas.admit cas ~communities:[ "plasma" ] ~now:0L)
      ()
  in
  let _server =
    match
      Idbox_chirp.Server.create ~kernel ~net ~addr:"s:1"
        ~owner_uid:owner.Idbox_kernel.Account.uid ~export:"/home/srv/export"
        ~acceptor ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Idbox_vfs.Errno.message e)
  in
  let connect subject =
    Idbox_chirp.Client.connect net ~addr:"s:1"
      ~credentials:[ Credential.Gsi (Ca.issue ca (Subject.of_string_exn subject)) ]
  in
  (match connect "/O=UnivNowhere/CN=Fred" with
   | Ok c ->
     Alcotest.(check string) "fred's own name" "globus:/O=UnivNowhere/CN=Fred"
       (Idbox_chirp.Client.principal c)
   | Error m -> Alcotest.fail m);
  (match connect "/O=UnivNowhere/CN=Jane" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "jane admitted without membership");
  (* Membership change takes effect immediately, no server restart. *)
  Cas.add_member cas ~community:"plasma" jane;
  (match connect "/O=UnivNowhere/CN=Jane" with
   | Ok _ -> ()
   | Error m -> Alcotest.fail ("jane still rejected: " ^ m))

let suite =
  [
    Alcotest.test_case "membership basics" `Quick membership_basics;
    Alcotest.test_case "assertions and expiry" `Quick assertions_and_expiry;
    Alcotest.test_case "admission in negotiation" `Quick admission_policy_in_negotiation;
    Alcotest.test_case "admission with chirp server" `Quick admission_with_chirp_server;
  ]
