(* The cluster layer end to end: identity-aware routing over the
   consistent-hash ring, write-through-primary replication carrying the
   caller's principal, hedged read failover, lease-driven ejection and
   re-admission, rebalance locality, and the cluster-wide
   consistency-of-identity invariant. *)

module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Network = Idbox_net.Network
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Ring = Idbox_cluster.Ring
module Replica = Idbox_cluster.Replica
module Router = Idbox_cluster.Router
module World = Idbox_cluster.World
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let contains ~sub s =
  let n = String.length sub in
  let rec find i =
    i + n <= String.length s
    && (String.equal (String.sub s i n) sub || find (i + 1))
  in
  find 0

let counter w name =
  Metrics.counter_value_of (Network.metrics (World.net w)) name

let three_node_world ?staleness_ns ?heartbeat_interval_ns () =
  let w = World.create ?staleness_ns ?heartbeat_interval_ns () in
  List.iter
    (fun h ->
      match World.add_node w ~host:h with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ];
  World.settle w;
  w

let connect_alice w =
  match World.connect w ~credentials:[ World.issue w "Alice" ] with
  | Ok r -> r
  | Error m -> Alcotest.fail m

(* One namespace over three servers: paths route by prefix, and each
   mutation lands on its shard's primary *and* replica — with the
   caller's own principal in the replica's ACL, so identity survives
   replication.  Non-owners hold nothing: the namespace really is
   sharded, not mirrored. *)
let routing_shards_and_replicates () =
  let w = three_node_world () in
  let r = connect_alice w in
  Alcotest.(check int) "all shards admitted" 3 (List.length (Router.nodes r));
  let dirs = List.init 6 (fun i -> Printf.sprintf "/d%d" i) in
  List.iter
    (fun d ->
      ok "mkdir" (Router.mkdir r d);
      ok "put" (Router.put r ~path:(d ^ "/f") ~data:("data" ^ d)))
    dirs;
  List.iter
    (fun d ->
      Alcotest.(check string) ("read " ^ d) ("data" ^ d)
        (ok "get" (Router.get r (d ^ "/f"))))
    dirs;
  (* More than one shard took primary traffic. *)
  let primaries =
    List.sort_uniq compare
      (List.map (fun d -> Option.get (Router.node_for r d)) dirs)
  in
  Alcotest.(check bool) "load spread over shards" true
    (List.length primaries > 1);
  (* Each dir exists exactly on its replica set, with Alice's name in
     the replicated ACL. *)
  let ring = Ring.create (World.members w) in
  List.iter
    (fun d ->
      let key = Replica.shard_key d in
      let owners = Ring.successors ring key 2 in
      List.iter
        (fun name ->
          let snap =
            ok ("snapshot " ^ name)
              (Server.snapshot_subtree (World.server w name) d)
          in
          if List.mem name owners then begin
            Alcotest.(check bool) (d ^ " present on " ^ name) true
              (List.length snap >= 2);
            (match snap with
             | Server.Snap_dir { acl; _ } :: _ ->
               Alcotest.(check bool) "replicated ACL names the caller" true
                 (contains ~sub:"CN=Alice" acl)
             | _ -> Alcotest.fail "snapshot should lead with the directory")
          end
          else
            Alcotest.(check int) (d ^ " absent on non-owner " ^ name) 0
              (List.length snap))
        (World.members w))
    dirs;
  Alcotest.(check bool) "replication fan-out counted" true
    (counter w "cluster.replicate" > 0);
  Alcotest.(check bool) "routing counted" true (counter w "cluster.route" > 0)

(* Crash a shard's primary: reads hedge over to the replica and still
   answer; the failover is counted. *)
let reads_fail_over_on_crash () =
  let w = three_node_world () in
  let r = connect_alice w in
  ok "mkdir" (Router.mkdir r "/data");
  ok "put" (Router.put r ~path:"/data/f" ~data:"precious");
  let victim = Option.get (Router.node_for r "/data") in
  World.crash w victim;
  Alcotest.(check string) "read survives primary crash" "precious"
    (ok "get" (Router.get r "/data/f"));
  Alcotest.(check bool) "failover counted" true (Router.failovers r > 0);
  Alcotest.(check bool) "failover metric" true (counter w "cluster.failover" > 0)

(* The paper's consistency-of-identity invariant, cluster-wide: if one
   shard negotiates a different principal for the same credentials, the
   router refuses service rather than act under two names. *)
let identity_mismatch_refused () =
  let w = World.create () in
  (match World.add_node w ~host:"alpha.grid.edu" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (* beta does not trust the CA: it will fall back to the hostname
     credential and negotiate a different principal. *)
  let hostname_only =
    Negotiate.acceptor
      ~host_ok:(fun h -> Idbox_identity.Wildcard.literal_matches "*.grid.edu" h)
      ()
  in
  (match World.add_node ~acceptor:hostname_only w ~host:"beta.grid.edu" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  World.settle w;
  match
    World.connect w
      ~credentials:[ World.issue w "Alice"; Credential.Host "visitor.grid.edu" ]
  with
  | Ok _ -> Alcotest.fail "router proceeded with two principals"
  | Error m ->
    Alcotest.(check bool) "explains the refusal" true
      (contains ~sub:"identity differs" m);
    Alcotest.(check bool) "mismatch counted" true
      (counter w "cluster.identity.mismatch" > 0)

(* A node whose lease goes stale is ejected; its first heartbeat after
   restart re-admits it.  Reads keep working throughout. *)
let ejection_and_readmission () =
  let w =
    three_node_world ~staleness_ns:8_000_000_000L
      ~heartbeat_interval_ns:2_000_000_000L ()
  in
  let r = connect_alice w in
  ok "mkdir" (Router.mkdir r "/keep");
  ok "put" (Router.put r ~path:"/keep/f" ~data:"v1");
  let victim = Option.get (Router.node_for r "/keep") in
  World.crash w victim;
  Clock.advance (World.clock w) 10_000_000_000L;
  World.tick w;
  Router.sync r;
  Alcotest.(check int) "ejected" 2 (List.length (Router.nodes r));
  Alcotest.(check bool) "leave counted" true (counter w "cluster.member.leave" > 0);
  Alcotest.(check string) "read after ejection" "v1"
    (ok "get" (Router.get r "/keep/f"));
  World.restart w victim;
  Clock.advance (World.clock w) 2_000_000_000L;
  World.tick w;
  Router.sync r;
  Alcotest.(check int) "re-admitted" 3 (List.length (Router.nodes r));
  Alcotest.(check string) "read after re-admission" "v1"
    (ok "get" (Router.get r "/keep/f"))

(* Rebalance locality: a join migrates exactly the ranges the new ring
   assigns to the newcomer (plus its root-ACL sync) and nothing else —
   prefixes it did not gain never appear on it. *)
let join_migrates_only_affected_ranges () =
  let w = three_node_world () in
  let r = connect_alice w in
  let dirs = List.init 6 (fun i -> Printf.sprintf "/d%d" i) in
  List.iter
    (fun d ->
      ok "mkdir" (Router.mkdir r d);
      ok "put" (Router.put r ~path:(d ^ "/f") ~data:("data" ^ d)))
    dirs;
  let before = Ring.create (World.members w) in
  (match World.add_node w ~host:"delta.grid.edu" with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  World.settle w;
  Router.sync r;
  let after = Ring.create (World.members w) in
  Alcotest.(check int) "four members" 4 (List.length (Router.nodes r));
  (* Exactly the gained (prefix, node) pairs migrate, plus one root-ACL
     sync to the newcomer. *)
  let gained_total =
    List.fold_left
      (fun acc d ->
        let key = Replica.shard_key d in
        let old_owners = Ring.successors before key 2 in
        let new_owners = Ring.successors after key 2 in
        acc
        + List.length
            (List.filter (fun n -> not (List.mem n old_owners)) new_owners))
      0 dirs
  in
  Alcotest.(check int) "migrations = gained ranges + root sync"
    (gained_total + 1) (counter w "cluster.migrate");
  Alcotest.(check int) "no range lost" 0 (counter w "cluster.migrate.lost");
  (* Data is where the new ring says, readable through the router... *)
  List.iter
    (fun d ->
      Alcotest.(check string) ("read " ^ d) ("data" ^ d)
        (ok "get" (Router.get r (d ^ "/f"))))
    dirs;
  (* ...and the newcomer holds exactly what it gained. *)
  List.iter
    (fun d ->
      let key = Replica.shard_key d in
      let new_owners = Ring.successors after key 2 in
      let snap =
        ok "snapshot delta" (Server.snapshot_subtree (World.server w "delta") d)
      in
      if List.mem "delta" new_owners then
        Alcotest.(check bool) (d ^ " migrated to delta") true
          (List.length snap >= 2)
      else
        Alcotest.(check int) (d ^ " not migrated to delta") 0
          (List.length snap))
    dirs

(* ACL semantics are one and the same on every shard: a read-only
   visitor is denied writes wherever they land, and cross-shard renames
   answer EXDEV rather than silently copying. *)
let acl_and_exdev_semantics () =
  let w = three_node_world () in
  let alice = connect_alice w in
  ok "mkdir" (Router.mkdir alice "/pub");
  let visitor =
    match
      World.connect w ~credentials:[ Credential.Host "visitor.grid.edu" ]
    with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string) "visitor principal" "hostname:visitor.grid.edu"
    (Router.principal visitor);
  (match Router.put visitor ~path:"/pub/evil" ~data:"x" with
   | Error Errno.EACCES -> ()
   | Ok () -> Alcotest.fail "read-only visitor wrote through the router"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  ignore (ok "visitor readdir" (Router.readdir visitor "/"));
  (* Renames: same shard fine, cross-shard EXDEV. *)
  ok "put" (Router.put alice ~path:"/pub/a" ~data:"v");
  ok "rename same shard" (Router.rename alice ~src:"/pub/a" ~dst:"/pub/b");
  (match Router.rename alice ~src:"/pub/b" ~dst:"/elsewhere/b" with
   | Error Errno.EXDEV -> ()
   | Ok () -> Alcotest.fail "cross-shard rename succeeded"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  Alcotest.(check bool) "exdev counted" true (counter w "cluster.exdev" > 0)

let suite =
  [
    Alcotest.test_case "routing shards and replicates with identity" `Quick
      routing_shards_and_replicates;
    Alcotest.test_case "reads fail over on crash" `Quick reads_fail_over_on_crash;
    Alcotest.test_case "identity mismatch across shards refused" `Quick
      identity_mismatch_refused;
    Alcotest.test_case "lease ejection and re-admission" `Quick
      ejection_and_readmission;
    Alcotest.test_case "join migrates only affected ranges" `Quick
      join_migrates_only_affected_ranges;
    Alcotest.test_case "one ACL semantics everywhere + EXDEV" `Quick
      acl_and_exdev_semantics;
  ]
