module Wire = Idbox_chirp.Wire
module Protocol = Idbox_chirp.Protocol
module Credential = Idbox_auth.Credential
module Ca = Idbox_auth.Ca
module Kerberos = Idbox_auth.Kerberos
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

(* --- wire framing ----------------------------------------------------- *)

let wire_roundtrip_cases () =
  List.iter
    (fun fields ->
      match Wire.decode (Wire.encode fields) with
      | Ok decoded ->
        Alcotest.(check (list string)) "roundtrip" fields decoded
      | Error m -> Alcotest.fail m)
    [
      [];
      [ "" ];
      [ "a" ];
      [ "put"; "/work/sim.exe"; "binary\000data:with:colons\n" ];
      [ "x"; ""; "y" ];
    ]

let wire_rejects_garbage () =
  List.iter
    (fun text ->
      match Wire.decode text with
      | Error _ -> ()
      | Ok fields ->
        (* A decode may only succeed if re-encoding gives the input back. *)
        if not (String.equal (Wire.encode fields) text) then
          Alcotest.failf "%S decoded loosely" text)
    [ "5:ab"; "x:ab"; "3ab"; "-1:"; "2:ab3:c" ]

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip on arbitrary fields" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 6)
       (QCheck.string_of_size (QCheck.Gen.int_range 0 40)))
    (fun fields ->
      match Wire.decode (Wire.encode fields) with
      | Ok decoded -> decoded = fields
      | Error _ -> false)

(* --- protocol messages ------------------------------------------------ *)

let ops =
  [
    Protocol.Mkdir "/work";
    Protocol.Rmdir "/work";
    Protocol.Unlink "/work/f";
    Protocol.Put { path = "/work/sim.exe"; data = "exe\000bits" };
    Protocol.Get "/work/out.dat";
    Protocol.Stat "/work";
    Protocol.Readdir "/";
    Protocol.Getacl "/work";
    Protocol.Setacl { path = "/work"; entry = "globus:/O=X/* rl" };
    Protocol.Rename { src = "/a"; dst = "/b" };
    Protocol.Exec { path = "/work/sim.exe"; args = [ "sim.exe"; "-n"; "5" ]; cwd = "/work" };
    Protocol.Checksum "/work/blob";
    Protocol.Whoami;
  ]

let request_roundtrip () =
  List.iter
    (fun op ->
      let req_id = if Protocol.idempotent op then "" else "tok123#1" in
      let req = Protocol.Op { token = "tok123"; req_id; op } in
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok (Protocol.Op { token; req_id = rid; op = op' }) ->
        Alcotest.(check string) "token" "tok123" token;
        Alcotest.(check string) "req_id" req_id rid;
        Alcotest.(check bool) (Protocol.operation_name op) true (op = op')
      | Ok (Protocol.Auth _) -> Alcotest.fail "became auth"
      | Error m -> Alcotest.fail m)
    ops

let auth_roundtrip_all_credentials () =
  let ca = Ca.create ~name:"CA" in
  let cert = Ca.issue ca (Subject.of_string_exn "/O=X/CN=F") in
  let realm = Kerberos.create ~realm:"R" in
  Kerberos.add_user realm "u" ~password:"p";
  let ticket =
    match Kerberos.login realm ~user:"u" ~password:"p" ~now:5L with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let creds =
    [
      Credential.Gsi cert;
      Credential.Krb ticket;
      Credential.Unix_account "dthain";
      Credential.Host "laptop.nowhere.edu";
    ]
  in
  match Protocol.decode_request (Protocol.encode_request (Protocol.Auth creds)) with
  | Ok (Protocol.Auth decoded) ->
    Alcotest.(check int) "count" 4 (List.length decoded);
    (* The decoded GSI certificate still verifies against the CA. *)
    (match List.hd decoded with
     | Credential.Gsi cert' ->
       Alcotest.(check bool) "signature survives wire" true (Ca.verify ca cert')
     | _ -> Alcotest.fail "first credential changed kind");
    (* The decoded ticket still verifies against the realm. *)
    (match List.nth decoded 1 with
     | Credential.Krb t' ->
       Alcotest.(check bool) "stamp survives wire" true (Kerberos.verify realm t' ~now:5L)
     | _ -> Alcotest.fail "second credential changed kind")
  | Ok _ -> Alcotest.fail "became op"
  | Error m -> Alcotest.fail m

let response_roundtrip () =
  let responses =
    [
      Protocol.R_ok;
      Protocol.R_error (Errno.EACCES, "denied");
      Protocol.R_auth { token = "t"; principal = "globus:/O=X/CN=F"; method_ = "globus" };
      Protocol.R_data "bulk\000payload";
      Protocol.R_stat { Protocol.ws_kind = "file"; ws_size = 42; ws_mtime = 7L };
      Protocol.R_names [ "a"; "b"; "c" ];
      Protocol.R_names [];
      Protocol.R_exit 3;
      Protocol.R_str "globus:/O=X/CN=F";
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_response (Protocol.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error m -> Alcotest.fail m)
    responses

let batch_roundtrip () =
  let members =
    [
      Protocol.Get "/work/blob";
      Protocol.Put { path = "/work/out"; data = "x" };
      Protocol.Stat "/work";
      Protocol.Whoami;
    ]
  in
  let op = Protocol.Batch members in
  Alcotest.(check bool) "mixed batch is not idempotent" false
    (Protocol.idempotent op);
  Alcotest.(check bool) "read-only batch is idempotent" true
    (Protocol.idempotent
       (Protocol.Batch [ Protocol.Get "/a"; Protocol.Stat "/b" ]));
  Alcotest.(check string) "routes by first member" "/work/blob"
    (Protocol.operation_path op);
  let req = Protocol.Op { token = "tok"; req_id = "tok#1"; op } in
  (match Protocol.decode_request (Protocol.encode_request req) with
   | Ok (Protocol.Op { op = Protocol.Batch members'; _ }) ->
     Alcotest.(check bool) "members survive the wire" true (members = members')
   | Ok _ -> Alcotest.fail "decoded to something else"
   | Error m -> Alcotest.fail m);
  let r =
    Protocol.R_batch
      [
        Protocol.R_data "bulk";
        Protocol.R_ok;
        Protocol.R_error (Errno.EACCES, "denied");
        Protocol.R_str "who";
      ]
  in
  match Protocol.decode_response (Protocol.encode_response r) with
  | Ok r' -> Alcotest.(check bool) "response roundtrip" true (r = r')
  | Error m -> Alcotest.fail m

let nested_batch_rejected () =
  let nested = Protocol.Batch [ Protocol.Batch [ Protocol.Get "/a" ] ] in
  let req = Protocol.Op { token = "tok"; req_id = ""; op = nested } in
  (match Protocol.decode_request (Protocol.encode_request req) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "nested batch request accepted");
  let r = Protocol.R_batch [ Protocol.R_batch [ Protocol.R_ok ] ] in
  match Protocol.decode_response (Protocol.encode_response r) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested batch response accepted"

let delegated_roundtrip_and_guards () =
  let ca = Ca.create ~name:"Grid CA" in
  let tok =
    Idbox_auth.Delegation.mint ca ~delegator:"globus:/O=Grid/CN=A"
      ~delegatee:"globus:/O=Grid/CN=B"
      ~rights:(Idbox_acl.Rights.of_string_exn "rx")
      ~prefix:"/work" ~now:3L ~ttl_ns:100L ~hops:2 ()
  in
  let op =
    Protocol.Delegated
      { chain = [ tok ]; op = Protocol.Exec { path = "/work/sim.exe";
                                              args = [ "sim.exe" ];
                                              cwd = "/work" } }
  in
  Alcotest.(check bool) "delegated exec is not idempotent" false
    (Protocol.idempotent op);
  Alcotest.(check bool) "delegated read is idempotent" true
    (Protocol.idempotent
       (Protocol.Delegated { chain = [ tok ]; op = Protocol.Whoami }));
  Alcotest.(check string) "routes by the inner operation" "/work/sim.exe"
    (Protocol.operation_path op);
  let req = Protocol.Op { token = "tok"; req_id = "tok#1"; op } in
  (match Protocol.decode_request (Protocol.encode_request req) with
   | Ok (Protocol.Op { op = Protocol.Delegated { chain; op = inner }; _ }) ->
     Alcotest.(check bool) "chain survives the wire" true (chain = [ tok ]);
     Alcotest.(check bool) "inner op survives the wire" true
       (inner = Protocol.Exec { path = "/work/sim.exe"; args = [ "sim.exe" ];
                                cwd = "/work" })
   | Ok _ -> Alcotest.fail "decoded to something else"
   | Error m -> Alcotest.fail m);
  (* Structural guards, enforced at decode: no delegation inside a
     batch, no batch inside a delegation, no nested delegation. *)
  List.iter
    (fun (ctx, bad) ->
      match
        Protocol.decode_request
          (Protocol.encode_request
             (Protocol.Op { token = "tok"; req_id = ""; op = bad }))
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" ctx)
    [
      ("delegated inside a batch",
       Protocol.Batch
         [ Protocol.Delegated { chain = [ tok ]; op = Protocol.Whoami } ]);
      ("batch inside a delegated",
       Protocol.Delegated
         { chain = [ tok ]; op = Protocol.Batch [ Protocol.Whoami ] });
      ("nested delegation",
       Protocol.Delegated
         { chain = [ tok ];
           op = Protocol.Delegated { chain = [ tok ]; op = Protocol.Whoami } });
    ];
  (* Revoke routes by the root key and replicates; Epoch is a read. *)
  Alcotest.(check string) "revoke routes by the root key" "/"
    (Protocol.operation_path (Protocol.Revoke "globus:/O=Grid/CN=A"));
  Alcotest.(check bool) "revoke is not idempotent" false
    (Protocol.idempotent (Protocol.Revoke "globus:/O=Grid/CN=A"));
  Alcotest.(check bool) "epoch is idempotent" true
    (Protocol.idempotent (Protocol.Epoch "globus:/O=Grid/CN=A"));
  match
    Protocol.decode_request
      (Protocol.encode_request
         (Protocol.Op { token = "t"; req_id = "t#2";
                        op = Protocol.Revoke "globus:/O=Grid/CN=A" }))
  with
  | Ok (Protocol.Op { op = Protocol.Revoke who; _ }) ->
    Alcotest.(check string) "revoke roundtrip" "globus:/O=Grid/CN=A" who
  | Ok _ -> Alcotest.fail "revoke decoded to something else"
  | Error m -> Alcotest.fail m

let malformed_messages_rejected () =
  List.iter
    (fun text ->
      match Protocol.decode_request text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "request %S accepted" text)
    [ ""; "4:oops"; Wire.encode [ "op" ]; Wire.encode [ "op"; "tok"; "zap" ] ];
  List.iter
    (fun text ->
      match Protocol.decode_response text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "response %S accepted" text)
    [ ""; Wire.encode [ "error"; "EWAT"; "m" ]; Wire.encode [ "exit"; "NaN" ] ]

let suite =
  [
    Alcotest.test_case "wire roundtrip" `Quick wire_roundtrip_cases;
    Alcotest.test_case "wire rejects garbage" `Quick wire_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    Alcotest.test_case "request roundtrip" `Quick request_roundtrip;
    Alcotest.test_case "auth roundtrip" `Quick auth_roundtrip_all_credentials;
    Alcotest.test_case "response roundtrip" `Quick response_roundtrip;
    Alcotest.test_case "malformed rejected" `Quick malformed_messages_rejected;
    Alcotest.test_case "batch roundtrip" `Quick batch_roundtrip;
    Alcotest.test_case "nested batch rejected" `Quick nested_batch_rejected;
    Alcotest.test_case "delegated roundtrip and structural guards" `Quick
      delegated_roundtrip_and_guards;
  ]
