(* WAL suite: the stable-storage device under seeded crash damage, and
   the server-level durability contract built on it — an acknowledged
   mutation survives any crash, and a torn tail is never applied. *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Network = Idbox_net.Network
module Fault = Idbox_net.Fault
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Wal = Idbox_chirp.Wal
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

(* --- device-level ----------------------------------------------------- *)

let roundtrip () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ "alpha"; "beta"; "gamma" ];
  Wal.sync w;
  Alcotest.(check int) "records" 3 (Wal.records w);
  let r = Wal.recover w in
  Alcotest.(check (list string)) "payloads" [ "alpha"; "beta"; "gamma" ]
    r.Wal.rc_records;
  Alcotest.(check int) "nothing torn" 0 r.Wal.rc_torn_bytes;
  Alcotest.(check bool) "no checkpoint" true (r.Wal.rc_checkpoint = None);
  (* The device continues from the valid prefix. *)
  Wal.append w "delta";
  Wal.sync w;
  Alcotest.(check (list string)) "extended"
    [ "alpha"; "beta"; "gamma"; "delta" ]
    (Wal.recover w).Wal.rc_records

let checkpoint_truncates () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ "a"; "b" ];
  Wal.sync w;
  Wal.checkpoint w "IMAGE";
  Alcotest.(check int) "log truncated" 0 (Wal.records w);
  Alcotest.(check int) "appends keep counting" 2 (Wal.appends w);
  Wal.append w "c";
  Wal.sync w;
  let r = Wal.recover w in
  (match r.Wal.rc_checkpoint with
  | Some img -> Alcotest.(check string) "image" "IMAGE" img
  | None -> Alcotest.fail "checkpoint lost");
  Alcotest.(check (list string)) "post-checkpoint records" [ "c" ]
    r.Wal.rc_records

(* Synced prefix [a; b], unsynced tail [c; d]: whatever the damage does,
   recovery returns a prefix of the appended sequence that includes at
   least the synced records, byte-identical. *)
let crash_respects_sync_barrier () =
  List.iter
    (fun seed ->
      let profile =
        Fault.storage_profile ~torn_write:0.7 ~lose_tail:0.7 ~flip:0.5 ()
      in
      let w = Wal.create ~seed ~profile () in
      let appended = [ "rec-a"; "rec-b"; "rec-c"; "rec-d" ] in
      List.iter (Wal.append w) [ "rec-a"; "rec-b" ];
      Wal.sync w;
      List.iter (Wal.append w) [ "rec-c"; "rec-d" ];
      Wal.crash w;
      let r = Wal.recover w in
      let got = r.Wal.rc_records in
      let n = List.length got in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: synced records survive" seed)
        true (n >= 2);
      List.iteri
        (fun i payload ->
          Alcotest.(check string)
            (Printf.sprintf "seed %Ld: record %d is a clean prefix" seed i)
            (List.nth appended i) payload)
        got)
    [ 1L; 2L; 3L; 7L; 42L; 1337L ]

(* A fully synced log can still grow a torn fragment of an in-flight
   write; recovery discards it by checksum and loses nothing. *)
let phantom_fragment_discarded () =
  let profile = Fault.storage_profile ~torn_write:1.0 () in
  let w = Wal.create ~seed:5L ~profile () in
  List.iter (Wal.append w) [ "x"; "y" ];
  Wal.sync w;
  let clean_bytes = Wal.log_bytes w in
  Wal.crash w;
  Alcotest.(check bool) "fragment appended" true (Wal.log_bytes w > clean_bytes);
  let r = Wal.recover w in
  Alcotest.(check (list string)) "data intact" [ "x"; "y" ] r.Wal.rc_records;
  Alcotest.(check bool) "tear detected" true (r.Wal.rc_torn_bytes > 0);
  Alcotest.(check int) "counted once" 1 r.Wal.rc_torn_records;
  Alcotest.(check int) "log truncated back" clean_bytes (Wal.log_bytes w)

(* Bit corruption in the unsynced suffix: the checksum rejects the
   damaged record, and parsing stops there rather than resynchronising
   onto garbage. *)
let corrupt_record_rejected () =
  List.iter
    (fun seed ->
      let profile = Fault.storage_profile ~flip:1.0 () in
      let w = Wal.create ~seed ~profile () in
      Wal.append w "durable";
      Wal.sync w;
      Wal.append w (String.make 64 'q');
      Wal.crash w;
      let r = Wal.recover w in
      (match r.Wal.rc_records with
      | "durable" :: rest ->
        List.iter
          (fun p ->
            Alcotest.(check string)
              (Printf.sprintf "seed %Ld: accepted record is genuine" seed)
              (String.make 64 'q') p)
          rest
      | _ -> Alcotest.failf "seed %Ld: synced record lost" seed);
      (* Either the record survived intact (flip hit only its future) or
         it was discarded whole — never accepted damaged. *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: prefix of appends" seed)
        true
        (List.length r.Wal.rc_records <= 2))
    [ 11L; 12L; 13L ]

(* Determinism: the same seed produces byte-identical damage and
   byte-identical recovery, twice. *)
let crash_is_deterministic () =
  let run () =
    let profile =
      Fault.storage_profile ~torn_write:0.5 ~lose_tail:0.5 ~flip:0.5 ()
    in
    let w = Wal.create ~seed:77L ~profile () in
    for i = 1 to 10 do
      Wal.append w (Printf.sprintf "record-%d-%s" i (String.make 32 'p'));
      if i mod 3 = 0 then Wal.sync w
    done;
    Wal.crash w;
    let r = Wal.recover w in
    (String.concat "|" r.Wal.rc_records, r.Wal.rc_torn_bytes, Wal.log_bytes w)
  in
  let a1, t1, b1 = run () in
  let a2, t2, b2 = run () in
  Alcotest.(check string) "records identical" a1 a2;
  Alcotest.(check int) "torn bytes identical" t1 t2;
  Alcotest.(check int) "log bytes identical" b1 b2

(* --- server-level ----------------------------------------------------- *)

let server_addr = "wal.nowhere.edu:9094"

let make_server ?wal ?checkpoint_every () =
  let clock = Clock.create () in
  let kernel = Kernel.create ~clock () in
  let net =
    Network.create ~clock ~metrics:(Kernel.metrics kernel)
      ~trace:(Kernel.trace_ring kernel) ()
  in
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"UnivNowhere CA" in
  let root_acl =
    Acl.of_entries
      [
        Entry.make ~pattern:"globus:/O=UnivNowhere/*"
          ~reserve:(Rights.of_string_exn "rwlaxd")
          (Rights.of_string_exn "rl");
      ]
  in
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  let server =
    match
      Server.create ~kernel ~net ~addr:server_addr ~owner_uid:owner.Account.uid
        ~export:"/tmp/export" ~acceptor ~root_acl ?wal ?checkpoint_every ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  (server, net, kernel, ca)

let connect net ca =
  let cert = Ca.issue ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
  match
    Client.connect net ~addr:server_addr ~credentials:[ Credential.Gsi cert ]
  with
  | Ok c -> c
  | Error m -> Alcotest.fail m

(* The durability acceptance property, across seeds: every mutation the
   server ACKNOWLEDGED before the crash reads back after recovery, and
   nothing that was never written appears.  The storage profile is
   hostile (tears, lost tails, bit flips), but damage is confined to
   unacknowledged state by the sync-before-reply rule. *)
let acked_mutations_survive_crash () =
  List.iter
    (fun seed ->
      let profile =
        Fault.storage_profile ~torn_write:0.8 ~lose_tail:0.8 ~flip:0.5 ()
      in
      let wal = Wal.create ~seed ~profile () in
      let server, net, kernel, ca = make_server ~wal () in
      let c = connect net ca in
      ok "mkdir" (Client.mkdir c "/work");
      for i = 1 to 6 do
        ok "put"
          (Client.put c
             ~path:(Printf.sprintf "/work/f%d" i)
             ~data:(Printf.sprintf "payload-%d-%Ld" i seed))
      done;
      Server.crash server;
      Server.restart server;
      let c = connect net ca in
      for i = 1 to 6 do
        Alcotest.(check string)
          (Printf.sprintf "seed %Ld: f%d survives" seed i)
          (Printf.sprintf "payload-%d-%Ld" i seed)
          (ok "get" (Client.get c (Printf.sprintf "/work/f%d" i)))
      done;
      Alcotest.(check (list string))
        (Printf.sprintf "seed %Ld: no phantom files" seed)
        [ "f1"; "f2"; "f3"; "f4"; "f5"; "f6" ]
        (List.sort String.compare (ok "readdir" (Client.readdir c "/work")));
      let m name = Metrics.counter_value_of (Kernel.metrics kernel) name in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: recovery accounted" seed)
        true
        (m "chirp.recovery.checkpoint_loads" > 0
        && m "chirp.recovery.replayed" >= 0))
    [ 2005L; 2006L; 2007L ]

(* Checkpoints bound replay: force a checkpoint, then only the records
   logged after it replay on recovery. *)
let checkpoint_bounds_replay () =
  let server, net, kernel, ca = make_server ~checkpoint_every:10_000 () in
  let c = connect net ca in
  ok "mkdir" (Client.mkdir c "/work");
  for i = 1 to 8 do
    ok "put" (Client.put c ~path:(Printf.sprintf "/work/a%d" i) ~data:"x")
  done;
  ok "checkpoint" (Server.checkpoint_now server);
  Alcotest.(check int) "log truncated" 0 (Server.wal_records server);
  for i = 1 to 3 do
    ok "put" (Client.put c ~path:(Printf.sprintf "/work/b%d" i) ~data:"y")
  done;
  Server.crash server;
  Server.restart server;
  let m name = Metrics.counter_value_of (Kernel.metrics kernel) name in
  (* Three puts after the checkpoint: one "op" + one "done" record each.
     The eight pre-checkpoint puts come back from the image alone. *)
  Alcotest.(check int) "replayed only the tail" 3 (m "chirp.recovery.replayed");
  let c = connect net ca in
  Alcotest.(check string) "image data" "x" (ok "get" (Client.get c "/work/a8"));
  Alcotest.(check string) "replayed data" "y" (ok "get" (Client.get c "/work/b3"))

(* Un-synced state really dies: a file written behind the WAL's back
   (directly into the export, never logged) does not survive a crash —
   the restart-semantics fix this suite exists to pin down. *)
let unlogged_state_dies () =
  let server, net, kernel, ca = make_server () in
  let c = connect net ca in
  ok "mkdir" (Client.mkdir c "/work");
  ok "put" (Client.put c ~path:"/work/logged" ~data:"stays");
  (* Sneak a file into the export behind the server's back: no WAL
     record, no checkpoint — exactly the state the old restart let
     survive by fiat. *)
  ok "sneak"
    (Idbox_vfs.Fs.write_file (Kernel.fs kernel)
       ~uid:(Server.owner_uid server) "/tmp/export/work/sneak" "dies");
  Alcotest.(check (list string)) "sneak visible before crash"
    [ "logged"; "sneak" ]
    (List.sort String.compare (ok "readdir" (Client.readdir c "/work")));
  Server.crash server;
  Server.restart server;
  let c = connect net ca in
  Alcotest.(check string) "logged file survives" "stays"
    (ok "get" (Client.get c "/work/logged"));
  Alcotest.(check (list string)) "nothing else" [ "logged" ]
    (List.sort String.compare (ok "readdir" (Client.readdir c "/work")))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick roundtrip;
    Alcotest.test_case "checkpoint truncates" `Quick checkpoint_truncates;
    Alcotest.test_case "crash respects sync barrier" `Quick
      crash_respects_sync_barrier;
    Alcotest.test_case "phantom fragment discarded" `Quick
      phantom_fragment_discarded;
    Alcotest.test_case "corrupt record rejected" `Quick corrupt_record_rejected;
    Alcotest.test_case "crash is deterministic" `Quick crash_is_deterministic;
    Alcotest.test_case "acked mutations survive crash (3 seeds)" `Quick
      acked_mutations_survive_crash;
    Alcotest.test_case "checkpoint bounds replay" `Quick checkpoint_bounds_replay;
    Alcotest.test_case "unlogged state dies" `Quick unlogged_state_dies;
  ]
