(* Property suite for the chain-attenuation algebra (same shape as the
   enforcement-cache storm): under a seeded random storm of ACL
   rewrites, file churn, revocations and re-mints, two invariants must
   hold at every step —

   1. {e attenuation}: a delegated verdict never exceeds the root
      delegator's own verdict.  If a delegated check admits
      (path, right), then the delegator's direct check admits it too,
      the right is inside the chain's intersected grant, and the path
      is inside the chain's narrowest scope.

   2. {e memo transparency}: a cached engine and a cache-disabled
      engine watching the same kernel and the same revocation store
      return byte-identical chain verdicts and delegated verdicts —
      the chain memo may only change the cost of an answer, never the
      answer.

   Seeded and deterministic. *)

module Kernel = Idbox_kernel.Kernel
module Enforce = Idbox.Enforce
module Ca = Idbox_auth.Ca
module Delegation = Idbox_auth.Delegation
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let seeds = [ 1; 7; 42; 2005; 90210 ]
let steps = 40

let alice = "globus:/O=Grid/CN=Alice"
let bob = "globus:/O=Grid/CN=Bob"
let carol = "globus:/O=Grid/CN=Carol"

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let dirs = [ "/d/a"; "/d/b"; "/d/c" ]
let prefixes = [ "/"; "/d"; "/d/a"; "/d/b" ]
let masks = [ "r"; "rl"; "rwl"; "rx"; "rxl"; "rwlxad"; "-" ]
let rights_all = [ Right.Read; Right.Write; Right.List; Right.Execute;
                   Right.Admin; Right.Delete ]

let probes =
  dirs @ List.concat_map (fun d -> [ d ^ "/f0"; d ^ "/f1" ]) dirs

let patterns =
  [ "globus:/O=Grid/CN=Alice"; "globus:/O=Grid/*"; "globus:*" ]

let pick st l = List.nth l (Random.State.int st (List.length l))

let random_acl st =
  let n = 1 + Random.State.int st 3 in
  Acl.of_entries
    (List.init n (fun _ ->
         Entry.make ~pattern:(pick st patterns)
           (Rights.of_string_exn (pick st masks))))

(* A random 1- or 2-hop chain rooted at Alice.  Epochs are usually the
   delegator's current one (a live chain) and sometimes stale (a chain
   that must die on a revoked delegator). *)
let random_chain st ca rev ~now =
  let epoch_for st who =
    let cur = Delegation.Revocations.epoch rev who in
    if Random.State.int st 4 = 0 then max 0 (cur - 1) else cur
  in
  let hop ~delegator ~delegatee =
    Delegation.mint ca ~delegator ~delegatee
      ~rights:(Rights.of_string_exn (pick st masks))
      ~prefix:(pick st prefixes) ~now
      ~ttl_ns:(Int64.of_int (1 + Random.State.int st 2_000))
      ~hops:(1 + Random.State.int st 3)
      ~epoch:(epoch_for st delegator) ()
  in
  if Random.State.bool st then
    ([ hop ~delegator:alice ~delegatee:carol ], carol)
  else ([ hop ~delegator:alice ~delegatee:bob;
          hop ~delegator:bob ~delegatee:carol ], carol)

let verdict = function Ok () -> "ok" | Error e -> Errno.to_string e

let chain_verdict = function
  | Ok (s : Delegation.summary) ->
    Printf.sprintf "ok:%s:%s:%s:%Ld" s.Delegation.sum_root
      (Rights.to_string s.Delegation.sum_grant)
      s.Delegation.sum_prefix s.Delegation.sum_expires
  | Error f -> Delegation.failure_name f

let storm seed =
  let st = Random.State.make [| seed |] in
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  let cached = Enforce.create k ~supervisor:sup () in
  let uncached = Enforce.create ~caching:false k ~supervisor:sup () in
  let ca = Ca.create ~name:"Grid CA" in
  let rev = Delegation.Revocations.create () in
  List.iter
    (fun d ->
      ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 d);
      ok "seed" (Fs.write_file (Kernel.fs k) ~uid:0 (d ^ "/f0") "seed"))
    dirs;
  for step = 1 to steps do
    (* One random mutation per step: ACL rewrite, file churn, or a
       revocation (which also bumps the memo generation). *)
    (match Random.State.int st 4 with
     | 0 ->
       ok "acl" (Enforce.write_acl cached ~dir:(pick st dirs) (random_acl st))
     | 1 ->
       let f = pick st dirs ^ "/f1" in
       if Random.State.bool st then
         ok "write" (Fs.write_file (Kernel.fs k) ~uid:0 f "x")
       else ignore (Fs.unlink (Kernel.fs k) ~uid:0 f)
     | 2 -> ignore (Delegation.Revocations.revoke rev (pick st [ alice; bob ]))
     | _ -> ());
    let now = Int64.of_int (step * 100) in
    let chain, holder = random_chain st ca rev ~now in
    let admit e =
      Enforce.admit_chain e ~trusted:[ ca ] ~revocations:rev ~now ~holder chain
    in
    let rc = admit cached in
    let ru = admit uncached in
    if not (String.equal (chain_verdict rc) (chain_verdict ru)) then
      Alcotest.failf "seed %d step %d: chain verdict cached=%s uncached=%s"
        seed step (chain_verdict rc) (chain_verdict ru);
    match rc with
    | Error _ -> ()
    | Ok s ->
      let root = Principal.of_string s.Delegation.sum_root in
      List.iter
        (fun path ->
          List.iter
            (fun right ->
              let delegated e =
                Enforce.check_delegated e ~identity:root
                  ~grant:s.Delegation.sum_grant
                  ~prefix:s.Delegation.sum_prefix ~path right
              in
              let dc = delegated cached in
              let du = delegated uncached in
              if not (String.equal (verdict dc) (verdict du)) then
                Alcotest.failf
                  "seed %d step %d: %s: delegated cached=%s uncached=%s" seed
                  step path (verdict dc) (verdict du);
              if dc = Ok () then begin
                (* Attenuation: the delegated allow implies the
                   delegator's own allow, a granted right, and an
                   in-scope path. *)
                (match
                   Enforce.check_object uncached ~identity:root ~path right
                 with
                 | Ok () -> ()
                 | Error e ->
                   Alcotest.failf
                     "seed %d step %d: %s: delegated verdict exceeds \
                      delegator's own (%s)"
                     seed step path (Errno.to_string e));
                if not (Rights.mem right s.Delegation.sum_grant) then
                  Alcotest.failf "seed %d step %d: %s: right outside grant"
                    seed step path;
                if
                  not
                    (Delegation.scope_contains
                       ~prefix:s.Delegation.sum_prefix path)
                then
                  Alcotest.failf "seed %d step %d: %s: path outside scope"
                    seed step path
              end)
            rights_all)
        probes
  done

let storms () = List.iter storm seeds

let suite =
  [
    Alcotest.test_case "attenuation + memo transparency under storms" `Quick
      storms;
  ]
