(* Filesystem semantics: the substrate every security argument rests on. *)

module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode
module Perm = Idbox_vfs.Perm
module Errno = Idbox_vfs.Errno

let errno = Alcotest.testable Errno.pp Errno.equal

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let expect_err ctx expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" ctx (Errno.to_string expected)
  | Error e -> Alcotest.check errno ctx expected e

let fresh () = Fs.create ()

(* --- permissions (Perm) ---------------------------------------------- *)

let perm_owner_other () =
  Alcotest.(check bool) "owner read 600" true
    (Perm.check ~uid:7 ~owner:7 ~mode:0o600 Perm.R);
  Alcotest.(check bool) "other read 600" false
    (Perm.check ~uid:8 ~owner:7 ~mode:0o600 Perm.R);
  Alcotest.(check bool) "other read 644" true
    (Perm.check ~uid:8 ~owner:7 ~mode:0o644 Perm.R);
  Alcotest.(check bool) "other write 644" false
    (Perm.check ~uid:8 ~owner:7 ~mode:0o644 Perm.W);
  Alcotest.(check bool) "root writes anything" true
    (Perm.check ~uid:0 ~owner:7 ~mode:0o000 Perm.W);
  Alcotest.(check bool) "root exec needs some x" false
    (Perm.check ~uid:0 ~owner:7 ~mode:0o644 Perm.X);
  Alcotest.(check bool) "root exec with x" true
    (Perm.check ~uid:0 ~owner:7 ~mode:0o755 Perm.X)

let perm_render () =
  Alcotest.(check string) "644" "rw-r--r--" (Perm.to_string ~mode:0o644);
  Alcotest.(check string) "755" "rwxr-xr-x" (Perm.to_string ~mode:0o755);
  Alcotest.(check string) "000" "---------" (Perm.to_string ~mode:0o000)

(* --- errno ------------------------------------------------------------ *)

let errno_roundtrip () =
  List.iter
    (fun e ->
      match Errno.of_string (Errno.to_string e) with
      | Some e' -> Alcotest.check errno (Errno.to_string e) e e'
      | None -> Alcotest.failf "%s did not roundtrip" (Errno.to_string e))
    Errno.all

(* --- basic file operations ------------------------------------------- *)

let create_write_read () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/data");
  ok "write" (Fs.write_file fs ~uid:0 "/data/f" "hello");
  Alcotest.(check string) "read back" "hello" (ok "read" (Fs.read_file fs ~uid:0 "/data/f"));
  let st = ok "stat" (Fs.stat fs ~uid:0 "/data/f") in
  Alcotest.(check int) "size" 5 st.Fs.st_size;
  Alcotest.(check bool) "regular" true (st.Fs.st_kind = Inode.Regular)

let open_flags_semantics () =
  let fs = fresh () in
  ok "seed" (Fs.write_file fs ~uid:0 "/f" "content");
  (* excl fails on existing *)
  let excl = { Fs.wronly_create with excl = true } in
  expect_err "excl" Errno.EEXIST (Fs.open_file fs ~uid:0 ~flags:excl ~mode:0o644 "/f");
  (* trunc empties *)
  ignore (ok "trunc" (Fs.open_file fs ~uid:0 ~flags:Fs.wronly_create ~mode:0o644 "/f"));
  Alcotest.(check string) "truncated" "" (ok "read" (Fs.read_file fs ~uid:0 "/f"));
  (* neither read nor write is invalid *)
  let neither = { Fs.rdonly with rd = false } in
  expect_err "neither" Errno.EINVAL (Fs.open_file fs ~uid:0 ~flags:neither ~mode:0 "/f");
  (* opening a directory fails EISDIR *)
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/d");
  expect_err "dir" Errno.EISDIR (Fs.open_file fs ~uid:0 ~flags:Fs.rdonly ~mode:0 "/d")

let missing_paths () =
  let fs = fresh () in
  expect_err "read missing" Errno.ENOENT (Fs.read_file fs ~uid:0 "/nope");
  expect_err "traverse file" Errno.ENOTDIR
    (let _ = ok "seed" (Fs.write_file fs ~uid:0 "/f" "x") in
     Fs.read_file fs ~uid:0 "/f/inside");
  expect_err "mkdir under missing" Errno.ENOENT
    (Result.map (fun _ -> ()) (Fs.mkdir fs ~uid:0 ~mode:0o755 "/a/b/c"))

let permission_enforcement () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/secret");
  ok "chmod" (Fs.chmod fs ~uid:0 ~mode:0o700 "/secret");
  ok "write" (Fs.write_file fs ~uid:0 "/secret/f" "hidden");
  (* Non-owner cannot traverse a 700 directory. *)
  expect_err "traverse denied" Errno.EACCES (Fs.read_file fs ~uid:1000 "/secret/f");
  (* Non-owner cannot read a 600 file even in an open directory. *)
  ok "write2" (Fs.write_file fs ~uid:0 ~mode:0o600 "/visible" "x");
  expect_err "read denied" Errno.EACCES (Fs.read_file fs ~uid:1000 "/visible");
  (* Nor write into a 755 directory they don't own. *)
  expect_err "create denied" Errno.EACCES
    (Fs.write_file fs ~uid:1000 "/newfile" "x")

let unlink_and_rmdir () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/d/sub");
  ok "write" (Fs.write_file fs ~uid:0 "/d/f" "x");
  expect_err "rmdir nonempty" Errno.ENOTEMPTY (Fs.rmdir fs ~uid:0 "/d");
  expect_err "rmdir file" Errno.ENOTDIR (Fs.rmdir fs ~uid:0 "/d/f");
  expect_err "unlink dir" Errno.EISDIR (Fs.unlink fs ~uid:0 "/d/sub");
  ok "unlink" (Fs.unlink fs ~uid:0 "/d/f");
  ok "rmdir sub" (Fs.rmdir fs ~uid:0 "/d/sub");
  ok "rmdir" (Fs.rmdir fs ~uid:0 "/d");
  expect_err "gone" Errno.ENOENT (Fs.stat fs ~uid:0 "/d")

let rename_semantics () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/a");
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/b");
  ok "write" (Fs.write_file fs ~uid:0 "/a/f" "payload");
  ok "rename" (Fs.rename fs ~uid:0 ~src:"/a/f" ~dst:"/b/g");
  expect_err "src gone" Errno.ENOENT (Fs.stat fs ~uid:0 "/a/f");
  Alcotest.(check string) "moved" "payload" (ok "read" (Fs.read_file fs ~uid:0 "/b/g"));
  (* Replacing an existing file drops the old inode's link. *)
  ok "write2" (Fs.write_file fs ~uid:0 "/b/h" "old");
  ok "rename2" (Fs.rename fs ~uid:0 ~src:"/b/g" ~dst:"/b/h");
  Alcotest.(check string) "replaced" "payload" (ok "read" (Fs.read_file fs ~uid:0 "/b/h"));
  (* Directory over non-empty directory refused. *)
  ok "m1" (Fs.mkdir_p fs ~uid:0 "/d1");
  ok "m2" (Fs.mkdir_p fs ~uid:0 "/d2/inner");
  expect_err "dir over nonempty" Errno.ENOTEMPTY
    (Fs.rename fs ~uid:0 ~src:"/d1" ~dst:"/d2");
  (* File over directory refused. *)
  expect_err "file over dir" Errno.EISDIR (Fs.rename fs ~uid:0 ~src:"/b/h" ~dst:"/d1");
  (* A directory cannot be moved into its own subtree (found by the
     random-op invariant fuzzer: it used to detach an unreachable
     cycle). *)
  ok "deep" (Fs.mkdir_p fs ~uid:0 "/m/inner");
  expect_err "dir into itself" Errno.EINVAL
    (Fs.rename fs ~uid:0 ~src:"/m" ~dst:"/m/sub");
  expect_err "dir into own child" Errno.EINVAL
    (Fs.rename fs ~uid:0 ~src:"/m" ~dst:"/m/inner/sub");
  (* Moving a directory sideways still works. *)
  ok "sideways" (Fs.rename fs ~uid:0 ~src:"/m/inner" ~dst:"/m2")

let hard_links () =
  let fs = fresh () in
  ok "write" (Fs.write_file fs ~uid:0 "/orig" "shared");
  ok "link" (Fs.link fs ~uid:0 ~target:"/orig" "/alias");
  let st = ok "stat" (Fs.stat fs ~uid:0 "/alias") in
  Alcotest.(check int) "nlink" 2 st.Fs.st_nlink;
  (* Same inode: writes through one name are visible through the other. *)
  ok "rewrite" (Fs.write_file fs ~uid:0 "/orig" "changed");
  Alcotest.(check string) "aliased" "changed" (ok "read" (Fs.read_file fs ~uid:0 "/alias"));
  ok "unlink orig" (Fs.unlink fs ~uid:0 "/orig");
  Alcotest.(check string) "survives" "changed" (ok "read" (Fs.read_file fs ~uid:0 "/alias"));
  let st = ok "stat2" (Fs.stat fs ~uid:0 "/alias") in
  Alcotest.(check int) "nlink back to 1" 1 st.Fs.st_nlink;
  (* Directories cannot be hard-linked. *)
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/d");
  expect_err "dir link" Errno.EPERM (Fs.link fs ~uid:0 ~target:"/d" "/dlink")

let symlinks () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/real");
  ok "write" (Fs.write_file fs ~uid:0 "/real/f" "via link");
  ok "symlink" (Fs.symlink fs ~uid:0 ~target:"/real/f" "/ln");
  Alcotest.(check string) "follow" "via link" (ok "read" (Fs.read_file fs ~uid:0 "/ln"));
  Alcotest.(check string) "readlink" "/real/f" (ok "readlink" (Fs.readlink fs ~uid:0 "/ln"));
  (* lstat sees the link, stat sees the target. *)
  let l = ok "lstat" (Fs.lstat fs ~uid:0 "/ln") in
  Alcotest.(check bool) "lstat kind" true (l.Fs.st_kind = Inode.Symlink);
  let s = ok "stat" (Fs.stat fs ~uid:0 "/ln") in
  Alcotest.(check bool) "stat kind" true (s.Fs.st_kind = Inode.Regular);
  (* Relative targets resolve against the link's directory. *)
  ok "rel" (Fs.symlink fs ~uid:0 ~target:"f" "/real/rel");
  Alcotest.(check string) "relative" "via link"
    (ok "read" (Fs.read_file fs ~uid:0 "/real/rel"));
  (* Dangling symlink: ENOENT on follow, EINVAL readlink on regular. *)
  ok "dangle" (Fs.symlink fs ~uid:0 ~target:"/missing" "/dangle");
  expect_err "dangling" Errno.ENOENT (Fs.read_file fs ~uid:0 "/dangle");
  expect_err "readlink regular" Errno.EINVAL (Fs.readlink fs ~uid:0 "/real/f")

let symlink_loops () =
  let fs = fresh () in
  ok "l1" (Fs.symlink fs ~uid:0 ~target:"/l2" "/l1");
  ok "l2" (Fs.symlink fs ~uid:0 ~target:"/l1" "/l2");
  expect_err "loop" Errno.ELOOP (Fs.read_file fs ~uid:0 "/l1")

let symlink_dotdot_target () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/a/b");
  ok "write" (Fs.write_file fs ~uid:0 "/a/sibling" "up");
  ok "ln" (Fs.symlink fs ~uid:0 ~target:"../sibling" "/a/b/up");
  Alcotest.(check string) "dotdot in target" "up"
    (ok "read" (Fs.read_file fs ~uid:0 "/a/b/up"))

let create_through_dangling_symlink () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/t");
  ok "ln" (Fs.symlink fs ~uid:0 ~target:"/t/real" "/t/alias");
  ok "create" (Fs.write_file fs ~uid:0 "/t/alias" "created");
  Alcotest.(check string) "landed at target" "created"
    (ok "read" (Fs.read_file fs ~uid:0 "/t/real"))

(* O_CREAT|O_EXCL on a symlink must fail EEXIST even when the link
   dangles — following it would let a visitor-planted link redirect a
   "fresh" file to a target of the attacker's choosing. *)
let excl_create_on_dangling_symlink () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/t");
  ok "ln" (Fs.symlink fs ~uid:0 ~target:"/t/real" "/t/alias");
  let excl = { Fs.wronly_create with Fs.excl = true } in
  expect_err "excl on dangling link" Errno.EEXIST
    (Fs.open_file fs ~uid:0 ~flags:excl ~mode:0o644 "/t/alias");
  expect_err "nothing created at target" Errno.ENOENT
    (Fs.stat fs ~uid:0 "/t/real");
  (* Without excl, creation still follows the link (POSIX). *)
  ignore
    (ok "non-excl creates at target"
       (Fs.open_file fs ~uid:0 ~flags:Fs.wronly_create ~mode:0o644 "/t/alias"));
  ignore (ok "target exists now" (Fs.stat fs ~uid:0 "/t/real"));
  (* A resolvable symlink is EEXIST under excl too. *)
  expect_err "excl on live link" Errno.EEXIST
    (Fs.open_file fs ~uid:0 ~flags:excl ~mode:0o644 "/t/alias")

(* Without write permission on the parent, unlink/rmdir must say EACCES
   — not reveal via ENOENT/ENOTEMPTY whether the name exists or the
   directory has contents. *)
let errno_ordering_probe () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/locked");
  ok "chmod" (Fs.chmod fs ~uid:0 ~mode:0o755 "/locked");
  ok "write" (Fs.write_file fs ~uid:0 "/locked/present" "x");
  ok "sub" (Fs.mkdir_p fs ~uid:0 "/locked/full/inner");
  (* uid 1000 can list /locked but not write it. *)
  expect_err "unlink existing" Errno.EACCES
    (Fs.unlink fs ~uid:1000 "/locked/present");
  expect_err "unlink missing" Errno.EACCES
    (Fs.unlink fs ~uid:1000 "/locked/absent");
  expect_err "rmdir nonempty" Errno.EACCES
    (Fs.rmdir fs ~uid:1000 "/locked/full");
  expect_err "rmdir missing" Errno.EACCES
    (Fs.rmdir fs ~uid:1000 "/locked/absent");
  (* With write permission the real errnos come back. *)
  expect_err "root sees ENOENT" Errno.ENOENT
    (Fs.unlink fs ~uid:0 "/locked/absent");
  expect_err "root sees ENOTEMPTY" Errno.ENOTEMPTY
    (Fs.rmdir fs ~uid:0 "/locked/full")

(* Every resolver shares one expansion budget, [Fs.symlink_limit]: a
   chain one hop under it resolves; at the limit it is ELOOP — also on
   the O_CREAT dangling-link path, which used to cap at 8. *)
let shared_eloop_limit () =
  let fs = fresh () in
  let chain n =
    (* /c0 -> /c1 -> ... -> /c(n-1) -> /end *)
    ok "end" (Fs.write_file fs ~uid:0 "/end" "deep");
    for i = n - 1 downto 0 do
      let target = if i = n - 1 then "/end" else Printf.sprintf "/c%d" (i + 1) in
      ok "ln" (Fs.symlink fs ~uid:0 ~target (Printf.sprintf "/c%d" i))
    done
  in
  chain Fs.symlink_limit;
  Alcotest.(check string) "exactly the budget resolves" "deep"
    (ok "read" (Fs.read_file fs ~uid:0 "/c0"));
  ok "one more hop" (Fs.symlink fs ~uid:0 ~target:"/c0" "/over");
  expect_err "one past the budget" Errno.ELOOP (Fs.read_file fs ~uid:0 "/over");
  (* The O_CREAT path obeys the same budget: a 10-deep dangling chain
     (beyond the old hardcoded 8) still creates at the final target. *)
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/t");
  for i = 9 downto 0 do
    let target =
      if i = 9 then "/t/real" else Printf.sprintf "/t/d%d" (i + 1)
    in
    ok "ln" (Fs.symlink fs ~uid:0 ~target (Printf.sprintf "/t/d%d" i))
  done;
  ok "create through 10 hops" (Fs.write_file fs ~uid:0 "/t/d0" "made it");
  Alcotest.(check string) "landed" "made it"
    (ok "read" (Fs.read_file fs ~uid:0 "/t/real"))

let readdir_sorted () =
  let fs = fresh () in
  ok "mkdir" (Fs.mkdir_p fs ~uid:0 "/d");
  List.iter (fun n -> ok "w" (Fs.write_file fs ~uid:0 ("/d/" ^ n) "x")) [ "c"; "a"; "b" ];
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    (ok "readdir" (Fs.readdir fs ~uid:0 "/d"))

let chmod_chown_rules () =
  let fs = fresh () in
  ok "write" (Fs.write_file fs ~uid:0 "/f" "x");
  ok "chown" (Fs.chown fs ~uid:0 ~owner:1000 "/f");
  (* The owner may chmod; others may not; only root may chown. *)
  ok "owner chmod" (Fs.chmod fs ~uid:1000 ~mode:0o600 "/f");
  expect_err "other chmod" Errno.EPERM (Fs.chmod fs ~uid:2000 ~mode:0o666 "/f");
  expect_err "owner chown" Errno.EPERM (Fs.chown fs ~uid:1000 ~owner:2000 "/f")

let mkdir_p_idempotent () =
  let fs = fresh () in
  ok "first" (Fs.mkdir_p fs ~uid:0 "/x/y/z");
  ok "again" (Fs.mkdir_p fs ~uid:0 "/x/y/z");
  Alcotest.(check bool) "exists" true (Fs.exists fs ~uid:0 "/x/y/z")

(* --- inode-level properties ------------------------------------------ *)

let inode_offset_io () =
  let ino = Inode.make_file ~ino:1 ~uid:0 ~mode:0o644 ~now:0L in
  ignore (Inode.write ino ~off:0 (Bytes.of_string "hello world"));
  Alcotest.(check string) "middle" "world"
    (Bytes.to_string (Inode.read ino ~off:6 ~len:5));
  Alcotest.(check string) "past eof" "" (Bytes.to_string (Inode.read ino ~off:100 ~len:5));
  (* Sparse write zero-fills the gap. *)
  ignore (Inode.write ino ~off:15 (Bytes.of_string "end"));
  Alcotest.(check int) "size" 18 (Inode.size ino);
  Alcotest.(check string) "gap zeros" "\000\000\000\000"
    (Bytes.to_string (Inode.read ino ~off:11 ~len:4));
  Inode.truncate ino ~len:5;
  Alcotest.(check string) "truncated" "hello" (Inode.contents ino);
  Inode.truncate ino ~len:8;
  Alcotest.(check string) "zero extended" "hello\000\000\000" (Inode.contents ino)

let prop_inode_write_read =
  QCheck.Test.make ~name:"inode read-after-write" ~count:200
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.int_range 0 200))
       (QCheck.int_range 0 64))
    (fun (data, off) ->
      let ino = Inode.make_file ~ino:1 ~uid:0 ~mode:0o644 ~now:0L in
      ignore (Inode.write ino ~off (Bytes.of_string data));
      String.equal
        (Bytes.to_string (Inode.read ino ~off ~len:(String.length data)))
        data)

let prop_fs_write_read_roundtrip =
  QCheck.Test.make ~name:"fs whole-file roundtrip" ~count:100
    (QCheck.string_of_size (QCheck.Gen.int_range 0 500))
    (fun data ->
      let fs = fresh () in
      match Fs.write_file fs ~uid:0 "/f" data with
      | Error _ -> false
      | Ok () ->
        (match Fs.read_file fs ~uid:0 "/f" with
         | Ok read -> String.equal read data
         | Error _ -> false))

let suite =
  [
    Alcotest.test_case "perm owner/other" `Quick perm_owner_other;
    Alcotest.test_case "perm render" `Quick perm_render;
    Alcotest.test_case "errno roundtrip" `Quick errno_roundtrip;
    Alcotest.test_case "create/write/read" `Quick create_write_read;
    Alcotest.test_case "open flags" `Quick open_flags_semantics;
    Alcotest.test_case "missing paths" `Quick missing_paths;
    Alcotest.test_case "permission enforcement" `Quick permission_enforcement;
    Alcotest.test_case "unlink/rmdir" `Quick unlink_and_rmdir;
    Alcotest.test_case "rename" `Quick rename_semantics;
    Alcotest.test_case "hard links" `Quick hard_links;
    Alcotest.test_case "symlinks" `Quick symlinks;
    Alcotest.test_case "symlink loops" `Quick symlink_loops;
    Alcotest.test_case "symlink ..-target" `Quick symlink_dotdot_target;
    Alcotest.test_case "create through dangling link" `Quick create_through_dangling_symlink;
    Alcotest.test_case "excl create on dangling link" `Quick excl_create_on_dangling_symlink;
    Alcotest.test_case "EACCES before existence probe" `Quick errno_ordering_probe;
    Alcotest.test_case "shared ELOOP limit" `Quick shared_eloop_limit;
    Alcotest.test_case "readdir sorted" `Quick readdir_sorted;
    Alcotest.test_case "chmod/chown rules" `Quick chmod_chown_rules;
    Alcotest.test_case "mkdir_p idempotent" `Quick mkdir_p_idempotent;
    Alcotest.test_case "inode offset io" `Quick inode_offset_io;
    QCheck_alcotest.to_alcotest prop_inode_write_read;
    QCheck_alcotest.to_alcotest prop_fs_write_read_roundtrip;
  ]
