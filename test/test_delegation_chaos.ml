(* Delegation under chaos: every hostile chain shape — expired, forged,
   cyclic, over-length, revoked mid-flight — is refused fail-closed
   through a lossy network, and a revocation racing a partition heals
   by epoch gossip.  Every scenario is seeded ([IDBOX_CHAOS_SEED]) and
   replays byte-identically. *)

module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Network = Idbox_net.Network
module Fault = Idbox_net.Fault
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Delegation = Idbox_auth.Delegation
module Protocol = Idbox_chirp.Protocol
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Audit = Idbox.Audit
module Repair = Idbox_cluster.Repair
module Router = Idbox_cluster.Router
module World = Idbox_cluster.World
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let okm ctx = function Ok v -> v | Error m -> Alcotest.failf "%s: %s" ctx m

let seed () =
  match Sys.getenv_opt "IDBOX_CHAOS_SEED" with
  | Some s -> (try Int64.of_string s with _ -> 2005L)
  | None -> 2005L

let alice = "globus:/O=Grid/CN=Alice"
let bob = "globus:/O=Grid/CN=Bob"
let carol = "globus:/O=Grid/CN=Carol"

let rights = Rights.of_string_exn

(* ---- every hostile chain, through a lossy wire ---------------------- *)

(* One server, 10% drops: the legitimate chain works through retries,
   and each of the five hostile shapes dies with EACCES and its own
   reject counter.  Run twice under the same seed, the whole transcript
   — metrics registry and audit trail — is byte-identical. *)
let hostile_chains_run () =
  let clock = Clock.create () in
  let kernel = Kernel.create ~clock () in
  let net =
    Network.create ~clock ~metrics:(Kernel.metrics kernel)
      ~trace:(Kernel.trace_ring kernel) ()
  in
  Network.set_fault_plan net
    (Fault.plan ~seed:(seed ())
       ~default_profile:(Fault.profile ~drop:0.1 ())
       ());
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"Grid CA" in
  let server =
    ok "server"
      (Server.create ~kernel ~net ~addr:"alpha.grid.edu:9094"
         ~owner_uid:owner.Account.uid ~export:"/tmp/chirp_chaos"
         ~acceptor:(Negotiate.acceptor ~trusted_cas:[ ca ] ())
         ~root_acl:
           (Acl.of_entries
              [
                Entry.make ~pattern:"globus:/O=Grid/*"
                  ~reserve:(rights "rwlaxd") (rights "rwlx");
              ])
         ())
  in
  let connect cn =
    okm ("connect " ^ cn)
      (Client.connect ~src:(String.lowercase_ascii cn) net
         ~addr:"alpha.grid.edu:9094"
         ~credentials:
           [ Credential.Gsi (Ca.issue ca (Subject.of_string_exn ("/O=Grid/CN=" ^ cn))) ])
  in
  let ca_client = connect "Alice" in
  let carol_client = connect "Carol" in
  ok "put" (Client.put ca_client ~path:"/f" ~data:"payload");
  let mint ?(ttl_ns = 60_000_000_000L) ?(hops = 4) ?epoch ~delegator ~delegatee
      r =
    Delegation.mint ca ~delegator ~delegatee ~rights:(rights r) ~prefix:"/"
      ~now:(Clock.now clock) ~ttl_ns ~hops ?epoch ()
  in
  let refused ctx c chain =
    match Client.get_delegated c ~chain "/f" with
    | Error Errno.EACCES -> ()
    | Ok _ -> Alcotest.failf "%s: hostile chain admitted" ctx
    | Error e -> Alcotest.failf "%s: unexpected %s" ctx (Errno.to_string e)
  in
  (* The control: a legitimate chain reads through the drops. *)
  let good = [ mint ~delegator:alice ~delegatee:carol "rl" ] in
  Alcotest.(check string) "legitimate chain reads" "payload"
    (ok "delegated get" (Client.get_delegated carol_client ~chain:good "/f"));
  refused "expired" carol_client
    [ mint ~ttl_ns:(-1L) ~delegator:alice ~delegatee:carol "rl" ];
  refused "forged" carol_client
    [
      { (mint ~delegator:alice ~delegatee:carol "r") with
        Delegation.dg_rights = rights "rwlaxd" };
    ];
  refused "cyclic" ca_client
    [ mint ~delegator:alice ~delegatee:bob "rl";
      mint ~delegator:bob ~delegatee:alice "rl" ];
  refused "over-length" carol_client
    [ mint ~hops:1 ~delegator:alice ~delegatee:bob "rl";
      mint ~delegator:bob ~delegatee:carol "rl" ];
  (* Revoked mid-flight: the chain was alive moments ago. *)
  Alcotest.(check int) "self-revocation" 1
    (ok "revoke" (Client.revoke ca_client alice));
  refused "revoked mid-flight" carol_client good;
  List.iter
    (fun reason ->
      Alcotest.(check bool)
        ("reject counter " ^ reason)
        true
        (Metrics.counter_value_of (Kernel.metrics kernel)
           ("auth.delegation.reject." ^ reason)
         > 0))
    [ "expired"; "forged"; "cycle"; "over_hop"; "revoked" ];
  (* The refusals are in the forensic trail, denied as the holder. *)
  Alcotest.(check bool) "denials audited" true
    (List.exists
       (fun ev ->
         String.equal ev.Audit.ev_op "delegated"
         && ev.Audit.ev_verdict <> Audit.Allowed)
       (Audit.events (Server.audit server)));
  ( Metrics.to_json (Kernel.metrics kernel),
    Audit.to_json (Server.audit server) )

let hostile_chains_fail_closed () =
  let m1, a1 = hostile_chains_run () in
  let m2, a2 = hostile_chains_run () in
  Alcotest.(check string) "metrics byte-identical across reruns" m1 m2;
  Alcotest.(check string) "audit byte-identical across reruns" a1 a2

(* ---- revocation racing a partition ---------------------------------- *)

(* Three nodes; the revocation fan-out races a partition that cuts one
   member off.  The cut member keeps honouring the stale chain — the
   documented inconsistency window — until the heal, when one epoch
   gossip round closes it.  Fail-closed: the race can only ever
   under-revoke temporarily, never widen a grant. *)
let revocation_race_run () =
  let w = World.create () in
  List.iter
    (fun h -> okm "add_node" (World.add_node w ~host:h))
    [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ];
  World.settle w;
  let ra =
    match World.connect w ~credentials:[ World.issue w "Alice" ] with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  (* The victim is any member that is NOT the root-key primary, so the
     revocation always lands somewhere and the victim always misses it. *)
  let root_primary = Option.get (Router.node_for ra "/") in
  let victim =
    List.find
      (fun n -> not (String.equal n root_primary))
      (World.members w)
  in
  let victim_addr = victim ^ ".grid.edu:9094" in
  Network.set_fault_plan (World.net w)
    (Fault.plan ~seed:(seed ())
       ~partitions:
         (List.filter_map
            (fun peer ->
              if String.equal peer victim then None
              else
                Some
                  {
                    Fault.from_ns = 10_000_000_000L;
                    until_ns = 30_000_000_000L;
                    between = (victim ^ ".grid.edu", peer ^ ".grid.edu");
                  })
            (World.members w))
       ());
  let chain =
    [ World.delegate w ~delegator:"Alice" ~delegatee:"Carol"
        ~rights:(rights "rl") ~prefix:"/" () ]
  in
  let cg =
    okm "carol connect"
      (Client.connect ~src:"carol" (World.net w) ~addr:victim_addr
         ~credentials:[ World.issue w "Carol" ])
  in
  (* A delegated probe against the victim, bypassing the router: does
     this member still honour the chain? *)
  let probe () =
    let payload =
      Client.prepare cg (Protocol.Delegated { chain; op = Protocol.Whoami })
    in
    match
      Network.call (World.net w) ~src:"carol" ~timeout_ns:1_000_000_000L
        ~addr:victim_addr payload
    with
    | Error e -> Error e
    | Ok reply ->
      (match Client.interpret reply with
       | Ok (Protocol.R_str who) -> Ok who
       | Ok _ -> Error Errno.EINVAL
       | Error e -> Error e)
  in
  Alcotest.(check string) "chain honoured before the race" alice
    (ok "probe" (probe ()));
  let epoch_on name =
    Delegation.Revocations.epoch
      (Server.revocations (World.server w name))
      alice
  in
  (* Step into the partition window and revoke: the fan-out reaches
     everyone except the victim. *)
  Clock.advance (World.clock w) 15_000_000_000L;
  Alcotest.(check int) "revocation accepted" 1 (ok "revoke" (Router.revoke ra alice));
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " epoch during the partition")
        (if String.equal name victim then 0 else 1)
        (epoch_on name))
    (World.members w);
  (* The inconsistency window, made visible: the cut member still
     honours the revoked chain. *)
  Alcotest.(check string) "victim honours the stale chain" alice
    (ok "stale probe" (probe ()));
  (* Heal, then one gossip round from the victim pulls the epoch. *)
  Clock.advance (World.clock w) 20_000_000_000L;
  World.tick w;
  Repair.gossip_epochs (World.repair w victim);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " epoch after the heal") 1 (epoch_on name))
    (World.members w);
  (match probe () with
   | Error Errno.EACCES -> ()
   | Ok _ -> Alcotest.fail "victim honoured a revoked chain after the heal"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  Alcotest.(check bool) "gossip counted" true
    (Metrics.counter_value_of
       (Network.metrics (World.net w))
       "cluster.revocation.gossip"
     > 0);
  Alcotest.(check bool) "merge counted" true
    (Metrics.counter_value_of
       (Kernel.metrics (World.kernel w))
       "chirp.revocation.merge"
     > 0);
  Printf.sprintf "victim=%s primary=%s %s|%s" victim root_primary
    (Metrics.to_json (Kernel.metrics (World.kernel w)))
    (Metrics.to_json (Network.metrics (World.net w)))

let revocation_races_partition () =
  let t1 = revocation_race_run () in
  let t2 = revocation_race_run () in
  Alcotest.(check string) "race transcript byte-identical" t1 t2

let suite =
  [
    Alcotest.test_case "hostile chains fail closed under loss" `Quick
      hostile_chains_fail_closed;
    Alcotest.test_case "revocation races a partition, gossip heals" `Quick
      revocation_races_partition;
  ]
