(* Property suite for the cluster's consistent-hash ring (ISSUE 3):
   deterministic lookups, exactly one live owner per key, and the
   structural locality guarantee — a join moves keys only onto the new
   node, a leave moves only the removed node's keys, and either moves
   about K/N of them, never more than K/N plus slack.  Run across
   several seeds with seeded key populations. *)

module Ring = Idbox_cluster.Ring

let seeds = [ 1; 7; 42; 2005; 90210 ]

let node_names n = List.init n (fun i -> Printf.sprintf "node%02d" i)

(* A seeded key population: deterministic per seed, different across
   seeds. *)
let keys seed k =
  let st = Random.State.make [| seed |] in
  List.init k (fun _ -> Printf.sprintf "key%06d" (Random.State.int st 1_000_000))

let lookup_exn ring key =
  match Ring.lookup ring key with
  | Some n -> n
  | None -> Alcotest.failf "no owner for %s" key

(* Same members, any construction order, a rebuilt ring — identical
   placement everywhere.  This is what lets every cluster node compute
   routing locally from the membership list alone. *)
let lookups_deterministic () =
  List.iter
    (fun seed ->
      let names = node_names 5 in
      let r1 = Ring.create names in
      let r2 = Ring.create (List.rev names) in
      let r3 = Ring.create names in
      List.iter
        (fun key ->
          let o1 = lookup_exn r1 key in
          Alcotest.(check string) "order-independent" o1 (lookup_exn r2 key);
          Alcotest.(check string) "rebuild-stable" o1 (lookup_exn r3 key);
          Alcotest.(check (list string))
            "replica set stable"
            (Ring.successors r1 key 3)
            (Ring.successors r2 key 3))
        (keys seed 500))
    seeds

(* Every key maps to exactly one live member, and its replica set is
   distinct members of the ring, primary first. *)
let exactly_one_live_owner () =
  List.iter
    (fun seed ->
      let names = node_names 7 in
      let ring = Ring.create names in
      List.iter
        (fun key ->
          let owner = lookup_exn ring key in
          Alcotest.(check bool) "owner is a member" true (List.mem owner names);
          let reps = Ring.successors ring key 3 in
          Alcotest.(check int) "replica set size" 3 (List.length reps);
          Alcotest.(check int) "replicas distinct" 3
            (List.length (List.sort_uniq String.compare reps));
          Alcotest.(check string) "primary heads the set" owner (List.hd reps);
          List.iter
            (fun r ->
              Alcotest.(check bool) "replica is a member" true (List.mem r names))
            reps)
        (keys seed 500))
    seeds

(* Join locality: every key that moves, moves onto the new node, and
   no more than ~K/N + slack keys move at all. *)
let join_moves_only_onto_new_node () =
  List.iter
    (fun seed ->
      let k = 2000 in
      let names = node_names 5 in
      let before = Ring.create names in
      let after = Ring.add before "newcomer" in
      let moved = ref 0 in
      List.iter
        (fun key ->
          let o1 = lookup_exn before key in
          let o2 = lookup_exn after key in
          if not (String.equal o1 o2) then begin
            incr moved;
            Alcotest.(check string) "moved keys land on the newcomer"
              "newcomer" o2
          end)
        (keys seed k);
      (* Fair share for 1 of 6 nodes is k/6 = 333; allow generous
         statistical slack but catch a broken ring that reshuffles
         half the keyspace. *)
      Alcotest.(check bool) "some keys moved" true (!moved > 0);
      Alcotest.(check bool)
        (Printf.sprintf "moved %d <= K/N + slack (seed %d)" !moved seed)
        true
        (!moved <= (k / 5) + 100))
    seeds

(* Leave locality: only keys the removed node owned move, and all of
   its keys find a new live owner. *)
let leave_moves_only_departed_keys () =
  List.iter
    (fun seed ->
      let k = 2000 in
      let names = node_names 5 in
      let victim = "node02" in
      let before = Ring.create names in
      let after = Ring.remove before victim in
      let moved = ref 0 in
      List.iter
        (fun key ->
          let o1 = lookup_exn before key in
          let o2 = lookup_exn after key in
          if String.equal o1 victim then begin
            incr moved;
            Alcotest.(check bool) "rehomed off the victim" false
              (String.equal o2 victim)
          end
          else
            Alcotest.(check string) "unaffected keys stay put" o1 o2)
        (keys seed k);
      Alcotest.(check bool) "victim owned some keys" true (!moved > 0);
      Alcotest.(check bool)
        (Printf.sprintf "moved %d <= K/N + slack (seed %d)" !moved seed)
        true
        (!moved <= (k / 5) + 100))
    seeds

(* The same locality holds for whole replica sets — the property the
   rebalance migration relies on to move only affected ranges. *)
let replica_sets_change_only_around_newcomer () =
  List.iter
    (fun seed ->
      let before = Ring.create (node_names 5) in
      let after = Ring.add before "newcomer" in
      List.iter
        (fun key ->
          if not (Ring.owners_equal before after key 2) then begin
            let now = Ring.successors after key 2 in
            let old = Ring.successors before key 2 in
            let gained =
              List.filter (fun n -> not (List.mem n old)) now
            in
            List.iter
              (fun n ->
                Alcotest.(check string) "only the newcomer is gained"
                  "newcomer" n)
              gained
          end)
        (keys seed 1000))
    seeds

let empty_and_degenerate_rings () =
  let empty = Ring.create [] in
  Alcotest.(check bool) "empty ring" true (Ring.is_empty empty);
  (match Ring.lookup empty "anything" with
   | None -> ()
   | Some n -> Alcotest.failf "owner %s on an empty ring" n);
  Alcotest.(check (list string)) "no successors" []
    (Ring.successors empty "anything" 3);
  let solo = Ring.create [ "only" ] in
  Alcotest.(check (list string)) "solo replica set clamps" [ "only" ]
    (Ring.successors solo "k" 5);
  let dup = Ring.create [ "a"; "a"; "b" ] in
  Alcotest.(check (list string)) "duplicates collapse" [ "a"; "b" ]
    (Ring.nodes dup)

let suite =
  [
    Alcotest.test_case "lookups deterministic across builds" `Quick
      lookups_deterministic;
    Alcotest.test_case "every key has exactly one live owner" `Quick
      exactly_one_live_owner;
    Alcotest.test_case "join moves only onto the new node" `Quick
      join_moves_only_onto_new_node;
    Alcotest.test_case "leave moves only the departed keys" `Quick
      leave_moves_only_departed_keys;
    Alcotest.test_case "replica sets change only around newcomer" `Quick
      replica_sets_change_only_around_newcomer;
    Alcotest.test_case "empty and degenerate rings" `Quick
      empty_and_degenerate_rings;
  ]
