module Network = Idbox_net.Network
module Fault = Idbox_net.Fault
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Errno = Idbox_vfs.Errno

let fresh ?latency_us ?bandwidth_mbps () =
  let clock = Clock.create () in
  (clock, Network.create ~clock ?latency_us ?bandwidth_mbps ())

let echo payload = "echo:" ^ payload

let call_roundtrip () =
  let _, net = fresh () in
  Network.listen net ~addr:"host:1" echo;
  (match Network.call net ~addr:"host:1" "hello" with
   | Ok "echo:hello" -> ()
   | Ok other -> Alcotest.failf "got %S" other
   | Error e -> Alcotest.fail (Errno.to_string e))

let connection_refused () =
  let _, net = fresh () in
  match Network.call net ~addr:"nobody:9" "x" with
  | Error Errno.ECONNREFUSED -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected ECONNREFUSED"

let unlisten_stops_service () =
  let _, net = fresh () in
  Network.listen net ~addr:"a:1" echo;
  Network.unlisten net ~addr:"a:1";
  match Network.call net ~addr:"a:1" "x" with
  | Error Errno.ECONNREFUSED -> ()
  | Ok _ | Error _ -> Alcotest.fail "unlisten ignored"

let latency_charged_per_direction () =
  let clock, net = fresh ~latency_us:100. ~bandwidth_mbps:100. () in
  Network.listen net ~addr:"a:1" (fun _ -> "");
  let t0 = Clock.now clock in
  ignore (Network.call net ~addr:"a:1" "");
  let elapsed = Int64.sub (Clock.now clock) t0 in
  (* Two empty transfers: exactly two latencies. *)
  Alcotest.(check int64) "2x latency" 200_000L elapsed

let bandwidth_charged_per_byte () =
  let clock, net = fresh ~latency_us:0. ~bandwidth_mbps:8. () in
  (* 8 Mbit/s = 1 byte per microsecond. *)
  Network.listen net ~addr:"a:1" (fun _ -> "");
  let t0 = Clock.now clock in
  ignore (Network.call net ~addr:"a:1" (String.make 1000 'x'));
  let elapsed = Int64.sub (Clock.now clock) t0 in
  Alcotest.(check int64) "1000 bytes = 1ms" 1_000_000L elapsed

let stats_accumulate () =
  let _, net = fresh () in
  Network.listen net ~addr:"a:1" echo;
  ignore (Network.call net ~addr:"a:1" "12345");
  ignore (Network.call net ~addr:"a:1" "1");
  (match Network.stats net ~addr:"a:1" with
   | Some s ->
     Alcotest.(check int) "calls" 2 s.Network.calls;
     Alcotest.(check int) "bytes in" 6 s.Network.bytes_in;
     Alcotest.(check int) "bytes out" 16 s.Network.bytes_out
   | None -> Alcotest.fail "no stats");
  Alcotest.(check int) "messages" 4 (Network.total_messages net);
  Alcotest.(check int) "total bytes" 22 (Network.total_bytes net)

let addresses_sorted () =
  let _, net = fresh () in
  Network.listen net ~addr:"b:2" echo;
  Network.listen net ~addr:"a:1" echo;
  Alcotest.(check (list string)) "sorted" [ "a:1"; "b:2" ] (Network.addresses net)

(* A handler that raises must not take the caller down with it: the
   network contains the exception, charges the exchange, and reports a
   wire-level reset. *)
let raising_handler_becomes_reset () =
  let clock, net = fresh ~latency_us:100. ~bandwidth_mbps:100. () in
  Network.listen net ~addr:"a:1" (fun _ -> failwith "handler bug");
  let t0 = Clock.now clock in
  (match Network.call net ~addr:"a:1" "boom" with
   | Error Errno.ECONNRESET -> ()
   | Ok _ -> Alcotest.fail "raising handler returned a response"
   | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  Alcotest.(check bool) "time charged" true (Clock.now clock > t0);
  Alcotest.(check int) "net.reset counted" 1
    (Metrics.counter_value_of (Network.metrics net) "net.reset");
  (* The fabric survives: the next call to a healthy endpoint works. *)
  Network.listen net ~addr:"b:1" echo;
  match Network.call net ~addr:"b:1" "hi" with
  | Ok "echo:hi" -> ()
  | _ -> Alcotest.fail "fabric broken after handler crash"

let lossy_run net =
  Network.listen net ~addr:"a:1" echo;
  List.init 60 (fun i ->
      match Network.call net ~addr:"a:1" (string_of_int i) with
      | Ok _ -> true
      | Error _ -> false)

let drops_deterministic_from_seed () =
  let mk () =
    let _, net = fresh () in
    Network.set_fault_plan net
      (Fault.plan ~seed:42L ~default_profile:(Fault.profile ~drop:0.3 ()) ());
    net
  in
  let net1 = mk () and net2 = mk () in
  let r1 = lossy_run net1 and r2 = lossy_run net2 in
  Alcotest.(check (list bool)) "same seed, same fate" r1 r2;
  Alcotest.(check bool) "some drops" true (List.mem false r1);
  Alcotest.(check bool) "some successes" true (List.mem true r1);
  Alcotest.(check int) "drops counted" (List.length (List.filter not r1))
    (Metrics.counter_value_of (Network.metrics net1) "net.drop");
  (* The per-endpoint counter mirrors the global one. *)
  Alcotest.(check int) "per-endpoint drops"
    (Metrics.counter_value_of (Network.metrics net1) "net.drop")
    (Metrics.counter_value_of (Network.metrics net1) "net.drop.a:1")

let crash_then_restart () =
  let _, net = fresh () in
  Network.listen net ~addr:"a:1" echo;
  Network.crash net ~addr:"a:1";
  Alcotest.(check bool) "down" false (Network.is_up net ~addr:"a:1");
  (match Network.call net ~addr:"a:1" "x" with
   | Error Errno.ECONNREFUSED -> ()
   | _ -> Alcotest.fail "crashed endpoint answered");
  Network.restart net ~addr:"a:1";
  Alcotest.(check bool) "up" true (Network.is_up net ~addr:"a:1");
  match Network.call net ~addr:"a:1" "x" with
  | Ok "echo:x" -> ()
  | _ -> Alcotest.fail "restarted endpoint dead"

let partition_cuts_then_heals () =
  let clock, net = fresh () in
  Network.listen net ~addr:"a:1" echo;
  Network.set_fault_plan net
    (Fault.plan
       ~partitions:
         [ { Fault.from_ns = 0L; until_ns = 10_000_000_000L;
             between = ("client", "a") } ]
       ());
  (match Network.call net ~addr:"a:1" "x" with
   | Error Errno.ETIMEDOUT -> ()
   | _ -> Alcotest.fail "partitioned call went through");
  (* An unrelated destination is reachable during the partition. *)
  Network.listen net ~addr:"other:1" echo;
  (match Network.call net ~addr:"other:1" "x" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "bystander cut: %s" (Errno.to_string e));
  Clock.advance clock 10_000_000_000L;
  match Network.call net ~addr:"a:1" "x" with
  | Ok "echo:x" -> ()
  | _ -> Alcotest.fail "healed partition still cut"

let suite =
  [
    Alcotest.test_case "call roundtrip" `Quick call_roundtrip;
    Alcotest.test_case "connection refused" `Quick connection_refused;
    Alcotest.test_case "unlisten" `Quick unlisten_stops_service;
    Alcotest.test_case "latency per direction" `Quick latency_charged_per_direction;
    Alcotest.test_case "bandwidth per byte" `Quick bandwidth_charged_per_byte;
    Alcotest.test_case "stats accumulate" `Quick stats_accumulate;
    Alcotest.test_case "addresses sorted" `Quick addresses_sorted;
    Alcotest.test_case "raising handler resets" `Quick raising_handler_becomes_reset;
    Alcotest.test_case "drops deterministic" `Quick drops_deterministic_from_seed;
    Alcotest.test_case "crash and restart" `Quick crash_then_restart;
    Alcotest.test_case "partition heals" `Quick partition_cuts_then_heals;
  ]
