(* Property suite for the compiled-policy bytecode (ISSUE 9): a
   bytecode-enabled engine, a decision-cache engine with bytecode
   pinned off, and a cache-disabled engine all watch the same kernel
   while the namespace is mutated at random — the same storm shape as
   test_enforce_cache (files written and unlinked, renames, a symlink
   retargeted, ACLs rewritten through the engine and behind its back),
   plus delegated checks whose backing chain is revoked mid-storm.
   After every mutation, every (path, principal, right) verdict must be
   byte-identical across the three engines: the compiled program may
   only ever change the cost of an answer, never the answer.  And the
   fail-closed contract: a program the verifier rejects is never
   installed — the engine keeps answering through the interpreter.
   Seeded and deterministic. *)

module Kernel = Idbox_kernel.Kernel
module Metrics = Idbox_kernel.Metrics
module Policy = Idbox_kernel.Policy
module Enforce = Idbox.Enforce
module Ca = Idbox_auth.Ca
module Delegation = Idbox_auth.Delegation
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

(* CI reruns the storm under extra seeds via the same knob the chaos
   suites honour. *)
let seeds =
  let base = [ 1; 7; 42; 2005; 90210 ] in
  match Sys.getenv_opt "IDBOX_CHAOS_SEED" with
  | Some s -> ( try (int_of_string s mod 1_000_000) :: base with _ -> base)
  | None -> base

let fred = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"
let jane = Principal.of_string "globus:/O=UnivNowhere/CN=Jane"
let alice = Principal.of_string "kerberos:alice@NOWHERE.EDU"
let identities = [ fred; jane; alice ]
let rights = [ Right.Read; Right.Write; Right.List; Right.Admin; Right.Delete ]

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let dirs = [ "/w/a"; "/w/b"; "/w/c" ]

(* Objects that may or may not exist at any moment, the symlink, and
   the directories themselves. *)
let probes =
  ("/w/ln" :: dirs)
  @ List.concat_map
      (fun d -> List.init 3 (fun i -> Printf.sprintf "%s/f%d" d i))
      dirs

let patterns =
  [ "globus:/O=UnivNowhere/CN=Fred"; "globus:/O=UnivNowhere/*"; "kerberos:*" ]

let random_acl st =
  let n = 1 + Random.State.int st 3 in
  let all = "rwlxad" in
  Acl.of_entries
    (List.init n (fun i ->
         let pattern = List.nth patterns ((i + Random.State.int st 3) mod 3) in
         let k = 1 + Random.State.int st (String.length all - 1) in
         Entry.make ~pattern (Rights.of_string_exn (String.sub all 0 k))))

let setup () =
  let k = Kernel.create () in
  let sup = Kernel.make_view k ~uid:0 () in
  let bytecode = Enforce.create ~bytecode:true k ~supervisor:sup () in
  let cached = Enforce.create ~bytecode:false k ~supervisor:sup () in
  let uncached = Enforce.create ~caching:false k ~supervisor:sup () in
  List.iter
    (fun d ->
      ok "mkdir" (Fs.mkdir_p (Kernel.fs k) ~uid:0 d);
      ok "seed file" (Fs.write_file (Kernel.fs k) ~uid:0 (d ^ "/f0") "seed"))
    dirs;
  ok "acl a"
    (Enforce.write_acl bytecode ~dir:"/w/a"
       (Acl.of_entries
          [ Entry.make ~pattern:"globus:/O=UnivNowhere/CN=Fred"
              (Rights.of_string_exn "rwl");
            Entry.make ~pattern:"kerberos:*" (Rights.of_string_exn "rl") ]));
  ok "symlink" (Fs.symlink (Kernel.fs k) ~uid:0 ~target:"/w/a/f0" "/w/ln");
  (k, bytecode, cached, uncached)

let verdict e identity path right =
  match Enforce.check_object e ~identity ~path right with
  | Ok () -> "ok"
  | Error e -> Errno.to_string e

let delegated_verdict e identity path right =
  match
    Enforce.check_delegated e ~identity ~grant:(Rights.of_string_exn "rl")
      ~prefix:"/w" ~path right
  with
  | Ok () -> "ok"
  | Error e -> Errno.to_string e

let compare_engines (bytecode, cached, uncached) ~seed ~step =
  List.iter
    (fun path ->
      List.iter
        (fun identity ->
          List.iter
            (fun right ->
              let want = verdict uncached identity path right in
              let via_cache = verdict cached identity path right in
              let via_bc = verdict bytecode identity path right in
              if not (String.equal want via_cache && String.equal want via_bc)
              then
                Alcotest.failf
                  "seed %d step %d: %s %s %c: uncached=%s cached=%s \
                   bytecode=%s"
                  seed step
                  (Principal.to_string identity)
                  path (Right.to_char right) want via_cache via_bc;
              (* The delegated composition: the chain-grant intersection
                 must narrow every tier identically. *)
              let dwant = delegated_verdict uncached identity path right in
              let dbc = delegated_verdict bytecode identity path right in
              if not (String.equal dwant dbc) then
                Alcotest.failf
                  "seed %d step %d: delegated %s %s %c: uncached=%s \
                   bytecode=%s"
                  seed step
                  (Principal.to_string identity)
                  path (Right.to_char right) dwant dbc)
            rights)
        identities)
    probes

let mutate st k engine =
  let fs = Kernel.fs k in
  let dir () = List.nth dirs (Random.State.int st 3) in
  let file () = Printf.sprintf "%s/f%d" (dir ()) (Random.State.int st 3) in
  match Random.State.int st 7 with
  | 0 -> ignore (Fs.write_file fs ~uid:0 (file ()) "data")
  | 1 -> ignore (Fs.unlink fs ~uid:0 (file ()))
  | 2 -> ignore (Fs.rename fs ~uid:0 ~src:(file ()) ~dst:(file ()))
  | 3 ->
    ignore (Fs.unlink fs ~uid:0 "/w/ln");
    ignore (Fs.symlink fs ~uid:0 ~target:(file ()) "/w/ln")
  | 4 -> ignore (Enforce.write_acl engine ~dir:(dir ()) (random_acl st))
  | 5 ->
    let d = dir () in
    ignore
      (Fs.write_file fs ~uid:0
         (d ^ "/" ^ Enforce.acl_filename)
         (Acl.to_string (random_acl st)))
  | _ ->
    let mode = if Random.State.bool st then 0o755 else 0o700 in
    ignore (Fs.chmod fs ~uid:0 ~mode (file ()))

(* The tentpole property: under the mutation storm — ACL edits through
   and behind the engine, renames, symlink retargeting — the bytecode
   engine answers byte-identically to both interpreter tiers at every
   step, and actually uses its program (hits > 0, at least one
   recompile beyond the initial one). *)
let equivalence_under_storm () =
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let ((k, bytecode, cached, uncached) as env) = setup () in
      ignore env;
      compare_engines (bytecode, cached, uncached) ~seed ~step:(-1);
      for step = 0 to 59 do
        mutate st k bytecode;
        compare_engines (bytecode, cached, uncached) ~seed ~step
      done;
      let value name = Metrics.counter_value_of (Kernel.metrics k) name in
      if value "kernel.bytecode.hit" = 0 then
        Alcotest.failf "seed %d: bytecode never answered" seed;
      if value "kernel.bytecode.recompile" < 2 then
        Alcotest.failf "seed %d: no recompile under mutation" seed;
      if value "kernel.bytecode.stale" = 0 then
        Alcotest.failf "seed %d: staleness never observed" seed)
    seeds

(* Chain revocation mid-storm: an admitted delegation chain must die on
   every engine the moment its root is revoked, regardless of which
   tier serves the plain ACL verdicts around it. *)
let revocation_mid_storm () =
  let seed = List.hd seeds in
  let st = Random.State.make [| seed |] in
  let k, bytecode, cached, uncached = setup () in
  let ca = Ca.create ~name:"Storm CA" in
  let rev = Delegation.Revocations.create () in
  let holder = "globus:/O=UnivNowhere/CN=Jane" in
  let chain =
    [ Delegation.mint ca ~delegator:"globus:/O=UnivNowhere/CN=Fred"
        ~delegatee:holder
        ~rights:(Rights.of_string_exn "rl")
        ~prefix:"/w" ~now:0L ~ttl_ns:1_000_000_000L ~hops:4 () ]
  in
  let admit e =
    Enforce.admit_chain e ~trusted:[ ca ] ~revocations:rev
      ~now:(Kernel.now k) ~holder chain
  in
  let engines = [ bytecode; cached; uncached ] in
  List.iter
    (fun e ->
      match admit e with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "pre-storm admit: %s" (Delegation.failure_name f))
    engines;
  for step = 0 to 19 do
    mutate st k bytecode;
    compare_engines (bytecode, cached, uncached) ~seed ~step
  done;
  ignore (Delegation.Revocations.revoke rev "globus:/O=UnivNowhere/CN=Fred");
  List.iter
    (fun e ->
      match admit e with
      | Ok _ -> Alcotest.fail "revoked chain admitted"
      | Error _ -> ())
    engines;
  for step = 20 to 39 do
    mutate st k bytecode;
    compare_engines (bytecode, cached, uncached) ~seed ~step
  done

(* Fail closed: a tampered program must be rejected by the verifier and
   never installed — and every verdict keeps coming, byte-identical,
   from the interpreter. *)
let verifier_rejects_fail_closed () =
  let k, bytecode, cached, uncached = setup () in
  ignore cached;
  (match Enforce.check_object bytecode ~identity:fred ~path:"/w/a/f0" Right.Read with
   | Ok () -> ()
   | Error e -> Alcotest.failf "healthy check: %s" (Errno.to_string e));
  (match Enforce.bytecode_program bytecode with
   | Some _ -> ()
   | None -> Alcotest.fail "healthy engine holds no program");
  (* Corrupt every fresh compile into a structurally invalid program:
     an oversized code segment the bounds verifier must reject. *)
  Enforce.set_bytecode_tamper bytecode
    (Some
       (fun p ->
         { p with
           Policy.p_code =
             Array.make (Policy.max_code + Policy.instr_width) 0 }));
  let value name = Metrics.counter_value_of (Kernel.metrics k) name in
  let rejects0 = value "kernel.bytecode.reject" in
  List.iter
    (fun path ->
      List.iter
        (fun identity ->
          List.iter
            (fun right ->
              let want = verdict uncached identity path right in
              let got = verdict bytecode identity path right in
              if not (String.equal want got) then
                Alcotest.failf "fail-closed: %s %s %c: uncached=%s got=%s"
                  (Principal.to_string identity)
                  path (Right.to_char right) want got)
            rights)
        identities)
    probes;
  if value "kernel.bytecode.reject" <= rejects0 then
    Alcotest.fail "verifier never rejected the tampered program";
  (match Enforce.bytecode_program bytecode with
   | None -> ()
   | Some _ -> Alcotest.fail "tampered program was installed");
  (match Kernel.policy k with
   | None -> ()
   | Some _ -> Alcotest.fail "tampered program reached the kernel slot");
  (* Clearing the tamper hook recovers on the next check. *)
  Enforce.set_bytecode_tamper bytecode None;
  (match Enforce.check_object bytecode ~identity:fred ~path:"/w/a/f0" Right.Read with
   | Ok () -> ()
   | Error e -> Alcotest.failf "recovered check: %s" (Errno.to_string e));
  (match Enforce.bytecode_program bytecode with
   | Some _ -> ()
   | None -> Alcotest.fail "engine did not recover a program")

(* The perf contract: a warm bytecode hit makes zero delegated syscalls
   and charges less than a decision-cache hit would. *)
let warm_hit_is_cheap () =
  let k, bytecode, _, _ = setup () in
  ignore (Enforce.check_object bytecode ~identity:fred ~path:"/w/a/f0" Right.Read);
  let value name = Metrics.counter_value_of (Kernel.metrics k) name in
  let d0 = (Kernel.stats k).Kernel.delegated in
  let hits0 = value "kernel.bytecode.hit" in
  let t0 = Kernel.now k in
  (match Enforce.check_object bytecode ~identity:fred ~path:"/w/a/f0" Right.Read with
   | Ok () -> ()
   | Error e -> Alcotest.failf "warm check: %s" (Errno.to_string e));
  let elapsed = Int64.sub (Kernel.now k) t0 in
  Alcotest.(check int)
    "zero delegated syscalls on the warm hit" 0
    ((Kernel.stats k).Kernel.delegated - d0);
  Alcotest.(check int) "bytecode hit" (hits0 + 1) (value "kernel.bytecode.hit");
  let cost = Kernel.cost k in
  if Int64.compare elapsed cost.Idbox_kernel.Cost.gen_check_ns >= 0 then
    Alcotest.failf "warm bytecode check cost %Ldns, not below one gen check"
      elapsed

let suite =
  [
    Alcotest.test_case "bytecode = interpreter under mutation storm" `Quick
      equivalence_under_storm;
    Alcotest.test_case "chain revocation mid-storm" `Quick revocation_mid_storm;
    Alcotest.test_case "verifier rejection fails closed" `Quick
      verifier_rejects_fail_closed;
    Alcotest.test_case "warm hit: zero delegated, below gen-check" `Quick
      warm_hit_is_cheap;
  ]
