(* The self-healing control plane (ISSUE 7): the circuit-breaker state
   machine (trip, short-circuit, half-open probe, re-close, re-open);
   health scoring with EWMA smoothing and dual-threshold hysteresis;
   server admission control (brownout sheds mutations with a
   retry-after hint while reads keep flowing); the client treating shed
   responses as retryable; and the autoscaler's full cycle — grow under
   pressure, hold through cooldown, clamp at both envelope edges,
   shrink the lowest-scoring member, and re-admit a previously removed
   host. *)

module Clock = Idbox_kernel.Clock
module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Metrics = Idbox_kernel.Metrics
module Network = Idbox_net.Network
module Breaker = Idbox_net.Breaker
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Protocol = Idbox_chirp.Protocol
module Catalog = Idbox_chirp.Catalog
module Health = Idbox_cluster.Health
module Autoscaler = Idbox_cluster.Autoscaler
module World = Idbox_cluster.World
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let ok_s ctx = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" ctx m

(* --- retry-after hints on the wire ----------------------------------- *)

let shed_hint_round_trip () =
  let msg = Protocol.shed_message ~retry_after_ns:100_000L "brownout" in
  Alcotest.(check (option int64))
    "hint survives the message" (Some 100_000L)
    (Protocol.retry_after_of_message msg);
  Alcotest.(check bool)
    "reason survives too" true
    (String.length msg >= 8 && String.equal (String.sub msg 0 8) "brownout");
  Alcotest.(check (option int64))
    "no hint in a plain message" None
    (Protocol.retry_after_of_message "session table full");
  Alcotest.(check (option int64))
    "garbage after the tag is not a hint" None
    (Protocol.retry_after_of_message "x; retry_after_ns=abc")

(* --- the breaker state machine --------------------------------------- *)

let breaker_state_machine () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let transitions = ref [] in
  let b =
    Breaker.create ~threshold:3 ~reset_ns:1_000_000L ~prefix:"t.breaker"
      ~on_transition:(fun subject st ->
        transitions := (subject ^ ":" ^ Breaker.state_name st) :: !transitions)
      ~clock ~metrics "beta"
  in
  let count name = Metrics.counter_value_of metrics ("t.breaker." ^ name) in
  (* Closed: failures below threshold do not trip, a success resets the
     consecutive count. *)
  Alcotest.(check bool) "closed allows" true (Breaker.allow b);
  Breaker.failure ~errno:Errno.ETIMEDOUT b;
  Breaker.failure ~errno:Errno.ETIMEDOUT b;
  Breaker.success b;
  Breaker.failure ~errno:Errno.ETIMEDOUT b;
  Breaker.failure ~errno:Errno.ETIMEDOUT b;
  Alcotest.(check bool) "still closed after reset" true (Breaker.allow b);
  (* Third consecutive failure trips it open. *)
  Breaker.failure ~errno:Errno.ECONNRESET b;
  Alcotest.(check int) "tripped once" 1 (Breaker.trips b);
  Alcotest.(check bool) "open short-circuits" false (Breaker.allow b);
  Alcotest.(check bool) "and again" false (Breaker.allow b);
  Alcotest.(check int) "short circuits counted" 2 (count "short_circuit");
  Alcotest.(check string) "last errno surfaces" "ECONNRESET"
    (Errno.to_string (Breaker.last_errno b));
  (* One ns short of the reset window: still short-circuiting. *)
  Clock.advance clock 999_999L;
  Alcotest.(check bool) "window not yet elapsed" false (Breaker.allow b);
  (* Window elapsed: half-open, and the first probe is granted to this
     very request; the budget (1) is then spent. *)
  Clock.advance clock 1L;
  Alcotest.(check bool) "half-open grants the probe" true (Breaker.allow b);
  Alcotest.(check bool) "probe budget spent" false (Breaker.allow b);
  (* The probe fails: straight back to open with a fresh window. *)
  Breaker.failure ~errno:Errno.ETIMEDOUT b;
  Alcotest.(check int) "re-tripped" 2 (Breaker.trips b);
  Alcotest.(check bool) "open again" false (Breaker.allow b);
  (* Next window's probe succeeds: closed, history forgotten. *)
  Clock.advance clock 1_000_000L;
  Alcotest.(check bool) "second probe granted" true (Breaker.allow b);
  Breaker.success b;
  Alcotest.(check bool) "closed again" true (Breaker.allow b);
  Breaker.failure ~errno:Errno.ETIMEDOUT b;
  Breaker.failure ~errno:Errno.ETIMEDOUT b;
  Alcotest.(check bool) "history was forgotten" true (Breaker.allow b);
  Alcotest.(check int) "opens counted" 2 (count "open");
  Alcotest.(check int) "closes counted" 1 (count "close");
  Alcotest.(check int) "probes counted" 2 (count "probe");
  Alcotest.(check bool) "transitions observed" true
    (List.mem "beta:half_open" !transitions && List.mem "beta:open" !transitions
     && List.mem "beta:closed" !transitions)

(* --- health scoring: hysteresis and smoothing ------------------------ *)

(* Weight-1 EWMA makes the smoothed score equal the raw score, so each
   observation steers the level directly and the dual thresholds can be
   probed edge by edge. *)
let health_hysteresis () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let h =
    Health.create
      ~config:{ Health.default_config with Health.ewma_weight = 1 }
      ~clock ~metrics ()
  in
  (* Craft samples by raw score: queue charges pct*35/100, brownout a
     flat 25, errors up to 30. *)
  let feed ?(q = 0) ?(err = 0) ?(brown = false) () =
    Health.observe h ~name:"n1"
      {
        Health.idle_sample with
        Health.s_queue_pct = q;
        Health.s_error_pct = err;
        Health.s_brownout = brown;
      }
  in
  let lvl () = Health.level h "n1" in
  Alcotest.(check int) "idle scores 100" 100 (feed ());
  Alcotest.(check bool) "healthy" true (lvl () = Health.Healthy);
  (* 65 is below healthy_enter (70) but above healthy_exit (60):
     a healthy node stays healthy. *)
  Alcotest.(check int) "score 65" 65 (feed ~q:100 ());
  Alcotest.(check bool) "still healthy at 65" true (lvl () = Health.Healthy);
  (* 59 crosses the exit edge. *)
  Alcotest.(check int) "score 59" 59 (feed ~q:100 ~err:20 ());
  Alcotest.(check bool) "degraded below 60" true (lvl () = Health.Degraded);
  (* Recovery to 65 is not enough to re-enter healthy. *)
  ignore (feed ~q:100 ());
  Alcotest.(check bool) "65 does not re-enter" true (lvl () = Health.Degraded);
  ignore (feed ~q:80 ());  (* 72 >= 70 *)
  Alcotest.(check bool) "72 re-enters healthy" true (lvl () = Health.Healthy);
  (* Down to 40: degraded but not yet unhealthy (>= 35). *)
  ignore (feed ~q:100 ~brown:true ());
  Alcotest.(check bool) "40 is degraded" true (lvl () = Health.Degraded);
  ignore (feed ~q:100 ~brown:true ~err:34 ());  (* 30 < 35 *)
  Alcotest.(check bool) "30 is unhealthy" true (lvl () = Health.Unhealthy);
  (* 40 is above unhealthy_enter but below unhealthy_exit (45):
     stays unhealthy. *)
  ignore (feed ~q:100 ~brown:true ());
  Alcotest.(check bool) "40 stays unhealthy" true (lvl () = Health.Unhealthy);
  ignore (feed ~q:100 ~err:50 ());  (* 50 >= 45 *)
  Alcotest.(check bool) "50 leaves unhealthy" true (lvl () = Health.Degraded);
  Alcotest.(check bool) "level changes were counted" true
    (Metrics.counter_value_of metrics "cluster.health.down" >= 2
     && Metrics.counter_value_of metrics "cluster.health.up" >= 2)

let health_ewma_smoothing () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let h = Health.create ~clock ~metrics () in
  ignore (Health.observe h ~name:"n1" Health.idle_sample);
  (* One terrible sample (raw 10) against a healthy history moves the
     default weight-4 EWMA only to (100*3 + 10)/4 = 77: still healthy,
     no flap. *)
  let awful =
    {
      Health.idle_sample with
      Health.s_queue_pct = 100;
      Health.s_brownout = true;
      Health.s_error_pct = 100;
    }
  in
  Alcotest.(check int) "one bad sample smooths to 77" 77
    (Health.observe h ~name:"n1" awful);
  Alcotest.(check bool) "still healthy" true
    (Health.level h "n1" = Health.Healthy);
  (* A lease-exhausted heartbeat floors the raw score to 0 outright. *)
  let gone = { Health.idle_sample with Health.s_hb_age_pct = 100 } in
  ignore (Health.observe h ~name:"n1" gone);
  ignore (Health.observe h ~name:"n2" gone);
  Alcotest.(check int) "first sample seeds directly" 0 (Health.score h "n2");
  Alcotest.(check bool) "dead node is unhealthy at once" true
    (Health.level h "n2" = Health.Unhealthy);
  Alcotest.(check int) "aggregate averages known nodes"
    ((Health.score h "n1" + Health.score h "n2") / 2)
    (Health.aggregate h);
  Health.forget h "n2";
  Alcotest.(check int) "forget drops the node" 0 (Health.samples h "n2");
  Alcotest.(check bool) "unknown node reads healthy" true
    (Health.level h "n2" = Health.Healthy)

(* --- server admission control ---------------------------------------- *)

let addr = "alpha.grid.edu:9094"

type sworld = {
  sw_net : Network.t;
  sw_server : Server.t;
  sw_ca : Ca.t;
  sw_metrics : Metrics.t;  (* the network's: client-side counters *)
  sw_kmetrics : Metrics.t;  (* the kernel's: server-side counters *)
}

let make_server ?max_parked ?flush_interval_ns () =
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let kernel = Kernel.create ~clock () in
  let owner = ok_s "account" (Account.add (Kernel.accounts kernel) "chirpuser") in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"UnivNowhere CA" in
  let root_acl =
    Acl.of_entries
      [ Entry.make ~pattern:"globus:/O=UnivNowhere/*"
          (Rights.of_string_exn "rwlaxd") ]
  in
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  let server =
    ok "server"
      (Server.create ~kernel ~net ~addr ~owner_uid:owner.Account.uid
         ~export:"/tmp/export" ~acceptor ~root_acl ?max_parked
         ~event_driven:true ?flush_interval_ns ())
  in
  { sw_net = net; sw_server = server; sw_ca = ca;
    sw_metrics = Network.metrics net; sw_kmetrics = Kernel.metrics kernel }

let connect_fred sw =
  let cert =
    Ca.issue sw.sw_ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred")
  in
  ok_s "connect"
    (Client.connect sw.sw_net ~addr ~credentials:[ Credential.Gsi cert ])

let pump_until sw pred =
  let rec go guard =
    if pred () then ()
    else if guard = 0 then Alcotest.fail "pump: no progress"
    else if Network.step sw.sw_net then go (guard - 1)
    else begin
      List.iter
        (fun ctr ->
          let v = Metrics.counter_value ctr in
          if v > 0 then
            Printf.eprintf "  %s = %d\n" (Metrics.counter_name ctr) v)
        (Metrics.counters sw.sw_metrics);
      Printf.eprintf "  parked=%d brownout=%b\n"
        (Server.parked_ops sw.sw_server)
        (Server.brownout sw.sw_server);
      Alcotest.fail "pump: network idle before condition held"
    end
  in
  go 100_000

(* Flood an event-driven server past its queue watermarks: mutations
   beyond the brownout threshold are shed with EAGAIN and a retry-after
   hint, reads are served throughout, and draining the queue at the
   group-commit tick exits brownout. *)
let brownout_sheds_mutations_serves_reads () =
  let sw = make_server ~max_parked:8 ~flush_interval_ns:500_000_000L () in
  let c = connect_fred sw in
  let count name = Metrics.counter_value_of sw.sw_kmetrics name in
  let submit op =
    Network.submit sw.sw_net ~src:"client" ~timeout_ns:2_000_000_000L ~addr
      (Client.prepare c op)
  in
  let toks =
    List.init 12 (fun i ->
        submit (Protocol.Put { path = Printf.sprintf "/f%d" i; data = "x" }))
  in
  (* Deliver the flood (the flush tick is far away at 500 ms). *)
  pump_until sw (fun () -> count "chirp.shed.mutation" >= 6);
  Alcotest.(check int) "queue filled to the brownout watermark" 6
    (Server.parked_ops sw.sw_server);
  Alcotest.(check bool) "server is in brownout" true
    (Server.brownout sw.sw_server);
  Alcotest.(check int) "entered brownout once" 1 (count "chirp.brownout.enter");
  (* A read while browned out: served, not shed. *)
  let rd = submit (Protocol.Readdir "/") in
  pump_until sw (fun () -> Network.poll rd <> None);
  (match Network.poll rd with
   | Some (Ok text) ->
     (match Client.interpret text with
      | Ok (Protocol.R_names _) -> ()
      | Ok _ -> Alcotest.fail "readdir: unexpected response"
      | Error e -> Alcotest.failf "readdir shed or failed: %s" (Errno.to_string e))
   | _ -> Alcotest.fail "readdir got no reply");
  (* Shed responses carry EAGAIN and the retry-after hint
     (2 x flush interval). *)
  let sheds =
    List.filter_map
      (fun tok ->
        match Network.poll tok with
        | Some (Ok text) ->
          (match Protocol.decode_response text with
           | Ok (Protocol.R_error (Errno.EAGAIN, msg)) -> Some msg
           | _ -> None)
        | _ -> None)
      toks
  in
  Alcotest.(check int) "six mutations shed" 6 (List.length sheds);
  List.iter
    (fun msg ->
      Alcotest.(check (option int64))
        "shed response hints retry-after" (Some 1_000_000_000L)
        (Protocol.retry_after_of_message msg))
    sheds;
  (* The flush tick drains the parked six and brownout ends. *)
  pump_until sw (fun () ->
      List.for_all (fun tok -> Network.poll tok <> None) toks);
  Alcotest.(check int) "queue drained" 0 (Server.parked_ops sw.sw_server);
  Alcotest.(check bool) "brownout exited" false (Server.brownout sw.sw_server);
  Alcotest.(check int) "exit counted" 1 (count "chirp.brownout.exit");
  let served =
    List.filter
      (fun tok ->
        match Network.poll tok with
        | Some (Ok text) ->
          (match Client.interpret text with Ok _ -> true | Error _ -> false)
        | _ -> false)
      toks
  in
  Alcotest.(check int) "the parked six were acknowledged" 6
    (List.length served)

(* The client treats a shed response as retryable: it waits out the
   hint and the retry lands after the drain — counted separately from
   transport-fault retries. *)
let client_retries_shed () =
  let sw = make_server ~max_parked:8 ~flush_interval_ns:500_000_000L () in
  let c = connect_fred sw in
  let scount name = Metrics.counter_value_of sw.sw_kmetrics name in
  let count name = Metrics.counter_value_of sw.sw_metrics name in
  (* Fill the queue to the watermark with raw submissions. *)
  let toks =
    List.init 7 (fun i ->
        Network.submit sw.sw_net ~src:"flood" ~timeout_ns:2_000_000_000L ~addr
          (Client.prepare c
             (Protocol.Put { path = Printf.sprintf "/f%d" i; data = "x" })))
  in
  pump_until sw (fun () -> scount "chirp.shed.mutation" >= 1);
  Alcotest.(check bool) "browned out" true (Server.brownout sw.sw_server);
  (* A well-behaved client call through the shed-and-retry path. *)
  ok "put" (Client.put c ~path:"/r" ~data:"retried");
  Alcotest.(check bool) "shed retries counted distinctly" true
    (count "chirp.retry.shed" >= 1);
  Alcotest.(check string) "the retried mutation landed" "retried"
    (ok "get" (Client.get c "/r"));
  ignore toks

(* --- the autoscaler -------------------------------------------------- *)

(* Drive the loop with a synthetic pressure signal so every decision is
   deterministic: grow under sustained pressure, hold through cooldown,
   clamp at the max envelope, shrink the lowest-scoring member once
   healthy again, clamp at the min envelope, and re-admit a previously
   removed host (reusing its account). *)
let autoscaler_scales_with_hysteresis () =
  let w = World.create () in
  ok_s "alpha" (World.add_node w ~host:"alpha.grid.edu");
  World.settle w;
  let pressure = ref 100 in
  let a =
    Autoscaler.create
      ~sample:(fun _ ->
        {
          Health.idle_sample with
          Health.s_queue_pct = !pressure;
          Health.s_brownout = !pressure > 75;
        })
      ~min_nodes:2 ~max_nodes:3 ~interval_ns:5_000_000_000L
      ~cooldown_ns:30_000_000_000L
      ~hosts:
        [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu";
          "delta.grid.edu" ]
      w
  in
  let clock = World.clock w in
  let counter name =
    Metrics.counter_value_of (Network.metrics (World.net w)) name
  in
  let tick () =
    World.tick w;
    Autoscaler.tick a
  in
  let step_tick ns =
    Clock.advance clock ns;
    tick ()
  in
  (* t=0: one hurting node -> grow, deterministically to the first free
     pool host. *)
  (match tick () with
   | Some (Autoscaler.Grow "beta.grid.edu") -> ()
   | d ->
     Alcotest.failf "expected grow beta, got %s"
       (match d with Some d -> Autoscaler.decision_name d | None -> "none"));
  Alcotest.(check (list string)) "beta admitted" [ "alpha"; "beta" ]
    (World.members w);
  (* Still hurting 5 s later, but the grow is cooling down. *)
  (match step_tick 5_000_000_000L with
   | Some (Autoscaler.Hold "cooldown") -> ()
   | _ -> Alcotest.fail "expected a cooldown hold");
  Alcotest.(check bool) "cooldown hold counted" true
    (counter "cluster.scale.hold" >= 1);
  (* Cooldown over: grow again. *)
  (match step_tick 25_000_000_000L with
   | Some (Autoscaler.Grow "gamma.grid.edu") -> ()
   | _ -> Alcotest.fail "expected grow gamma");
  (* Hurting at the envelope edge: clamp, not a fourth node. *)
  (match step_tick 30_000_000_000L with
   | Some (Autoscaler.Hold "at max envelope") -> ()
   | _ -> Alcotest.fail "expected the max-envelope clamp");
  Alcotest.(check bool) "clamp counted" true
    (counter "cluster.scale.clamp" >= 1);
  Alcotest.(check int) "grew twice" 2 (Autoscaler.grows a);
  (* The storm passes: scores recover through the EWMA until the
     aggregate crosses shrink_above, then the lowest-scoring member
     (tie broken by name) is removed. *)
  pressure := 0;
  let rec until_shrink guard =
    if guard = 0 then Alcotest.fail "no shrink within 20 intervals"
    else
      match step_tick 5_000_000_000L with
      | Some (Autoscaler.Shrink name) -> name
      | _ -> until_shrink (guard - 1)
  in
  Alcotest.(check string) "alpha shrunk first" "alpha" (until_shrink 20);
  Alcotest.(check (list string)) "alpha gone" [ "beta"; "gamma" ]
    (World.members w);
  Alcotest.(check bool) "departure deregistered the lease" true
    (counter "catalog.deregister" >= 1);
  Alcotest.(check bool) "alpha no longer advertised" true
    (not
       (List.exists
          (fun e -> String.equal e.Catalog.name "alpha")
          (Catalog.entries (World.catalog w))));
  (* Fully healthy but at the min envelope: never below. *)
  (match step_tick 5_000_000_000L with
   | Some (Autoscaler.Hold "at min envelope") -> ()
   | _ -> Alcotest.fail "expected the min-envelope clamp");
  (* Pressure returns: the freed pool slot (alpha) is re-admitted,
     reusing its old account. *)
  pressure := 100;
  let rec until_grow guard =
    if guard = 0 then Alcotest.fail "no regrow within 20 intervals"
    else
      match step_tick 5_000_000_000L with
      | Some (Autoscaler.Grow host) -> host
      | _ -> until_grow (guard - 1)
  in
  Alcotest.(check string) "alpha re-admitted" "alpha.grid.edu" (until_grow 20);
  Alcotest.(check (list string)) "three members again"
    [ "alpha"; "beta"; "gamma" ] (World.members w);
  Alcotest.(check int) "decision history is complete"
    (Autoscaler.grows a + Autoscaler.shrinks a)
    (List.length
       (List.filter
          (function Autoscaler.Hold _ -> false | _ -> true)
          (Autoscaler.decisions a)))

let suite =
  [
    Alcotest.test_case "retry-after hints round-trip" `Quick
      shed_hint_round_trip;
    Alcotest.test_case "breaker state machine" `Quick breaker_state_machine;
    Alcotest.test_case "health dual-threshold hysteresis" `Quick
      health_hysteresis;
    Alcotest.test_case "health EWMA smoothing + aggregate" `Quick
      health_ewma_smoothing;
    Alcotest.test_case "brownout sheds mutations, serves reads" `Quick
      brownout_sheds_mutations_serves_reads;
    Alcotest.test_case "client retries shed mutations" `Quick
      client_retries_shed;
    Alcotest.test_case "autoscaler hysteresis and envelope" `Quick
      autoscaler_scales_with_hysteresis;
  ]
