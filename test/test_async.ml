(* Event-driven dispatch (ISSUE 6): the sysent table's shape and
   single-completion sysmsg discipline; seeded equivalence between the
   blocking and event-driven Chirp servers (byte-identical requests and
   responses, identical WAL modulo done-record timestamps, identical
   chirp counters modulo async bookkeeping and group-commit syncs);
   the session-slot churn regression (a session expiring or crashing
   mid-batch releases its slot exactly once); and hedged-read late
   replies (the losing leg's straggler is discarded, never counted as
   a result, and balances the in-flight gauge exactly once). *)

module Clock = Idbox_kernel.Clock
module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Metrics = Idbox_kernel.Metrics
module Sysent = Idbox_kernel.Sysent
module Syscall = Idbox_kernel.Syscall
module Network = Idbox_net.Network
module Fault = Idbox_net.Fault
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Protocol = Idbox_chirp.Protocol
module Wal = Idbox_chirp.Wal
module Wire = Idbox_chirp.Wire
module Router = Idbox_cluster.Router
module Cworld = Idbox_cluster.World
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

(* CI reruns the equivalence sweep under extra seeds via the same knob
   the chaos suite honours. *)
let seeds =
  let base = [ 1; 7; 42; 2005; 90210 ] in
  match Sys.getenv_opt "IDBOX_CHAOS_SEED" with
  | Some s -> ( try (int_of_string s mod 1_000_000) :: base with _ -> base)
  | None -> base

let ok ctx = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" ctx (Errno.to_string e)

let ok_s ctx = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" ctx m

(* --- the sysent table ------------------------------------------------ *)

let sysent_table_shape () =
  let k = Kernel.create () in
  let rows = Kernel.sysent_summary k in
  Alcotest.(check int) "one entry per syscall" Syscall.count
    (List.length rows);
  List.iteri
    (fun i (number, name, narg, has_enforce) ->
      Alcotest.(check int) (name ^ " numbered by its slot") i number;
      let proto =
        List.find (fun p -> Syscall.number p = number) Syscall.prototypes
      in
      Alcotest.(check string) "prototype name" (Syscall.name proto) name;
      Alcotest.(check int)
        (name ^ " carries its register arity")
        (Syscall.register_args proto)
        narg;
      (* Every call that traps carries an enforcement pre-check; only
         compute (pure CPU burn, no kernel object touched) has none. *)
      Alcotest.(check bool)
        (name ^ " enforce hook")
        (not (String.equal name "compute"))
        has_enforce)
    rows

let sysent_rejects_misnumbered () =
  let make i =
    Sysent.entry
      ~number:(if i = 1 then 5 else i)
      ~name:"x" ~narg:0
      (fun _ctx _req -> 0)
  in
  match Sysent.table ~count:2 make with
  | _ -> Alcotest.fail "misnumbered sysent accepted"
  | exception Invalid_argument _ -> ()

let sysmsg_completes_once () =
  let e = Sysent.entry ~number:0 ~name:"open" ~narg:2 (fun _ctx _req -> 7) in
  let msg = Sysent.msg ~pid:1 ~at:0L e in
  Alcotest.(check bool) "fresh message pending" true (Sysent.is_pending msg);
  Alcotest.(check bool) "first completion wins" true (Sysent.complete msg 7);
  Alcotest.(check bool) "late wakeup refused" false (Sysent.complete msg 9);
  Alcotest.(check bool) "no longer pending" false (Sysent.is_pending msg);
  Alcotest.(check (option int)) "outcome is the first" (Some 7)
    (Sysent.outcome msg)

(* --- a single-server world, blocking or event-driven ----------------- *)

type world = {
  w_clock : Clock.t;
  w_kernel : Kernel.t;
  w_net : Network.t;
  w_server : Server.t;
  w_wal : Wal.t;
  w_ca : Ca.t;
}

let addr = "alpha.grid.edu:9094"

let make_world ?(event_driven = false) ?max_sessions ?session_idle_ns
    ?flush_interval_ns () =
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let kernel = Kernel.create ~clock () in
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"UnivNowhere CA" in
  let root_acl =
    Acl.of_entries
      [
        Entry.make ~pattern:"globus:/O=UnivNowhere/*"
          (Rights.of_string_exn "rwlaxd");
      ]
  in
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  let wal = Wal.create () in
  let server =
    ok "server"
      (Server.create ~kernel ~net ~addr ~owner_uid:owner.Account.uid
         ~export:"/tmp/export" ~acceptor ~root_acl ~wal ?max_sessions
         ?session_idle_ns ~event_driven ?flush_interval_ns ())
  in
  {
    w_clock = clock;
    w_kernel = kernel;
    w_net = net;
    w_server = server;
    w_wal = wal;
    w_ca = ca;
  }

let connect w =
  let cert = Ca.issue w.w_ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
  ok_s "connect"
    (Client.connect w.w_net ~addr ~credentials:[ Credential.Gsi cert ])

(* --- seeded sync-vs-async equivalence -------------------------------- *)

(* A seeded random op stream over a small path population: mutations,
   reads, errors (missing files, renames over nothing) — everything the
   two serving paths must answer identically.  Stat is excluded: its
   mtime is admission-time-dependent and the async server answers a
   batch's worth of mutations later than the blocking one. *)
let op_paths = [| "/a"; "/b"; "/d/x"; "/d/y"; "/d/z" |]

let gen_ops st n =
  List.init n (fun _ ->
      let p = op_paths.(Random.State.int st (Array.length op_paths)) in
      let q = op_paths.(Random.State.int st (Array.length op_paths)) in
      match Random.State.int st 8 with
      | 0 -> `Put (p, Printf.sprintf "data-%d" (Random.State.int st 1000))
      | 1 -> `Get p
      | 2 -> `Readdir "/d"
      | 3 -> `Unlink p
      | 4 -> `Rename (p, q)
      | 5 -> `Checksum p
      | 6 -> `Whoami
      | _ -> `Getacl "/")

let show to_s = function
  | Ok v -> "ok:" ^ to_s v
  | Error e -> Errno.to_string e

let apply c = function
  | `Put (p, d) -> show (fun () -> "") (Client.put c ~path:p ~data:d)
  | `Get p -> show Fun.id (Client.get c p)
  | `Readdir p -> show (String.concat ",") (Client.readdir c p)
  | `Unlink p -> show (fun () -> "") (Client.unlink c p)
  | `Rename (src, dst) -> show (fun () -> "") (Client.rename c ~src ~dst)
  | `Checksum p -> show Fun.id (Client.checksum c p)
  | `Whoami -> show Fun.id (Client.whoami c)
  | `Getacl p -> show Fun.id (Client.getacl c p)

(* The WAL modulo done-record admission timestamps: the async server
   answers later than it admits, so absolute times drift between the
   two worlds, but every op record and every done record's identity and
   response bytes must match exactly, in the same order. *)
let normalized_wal wal =
  let rc = Wal.recover wal in
  List.map
    (fun r ->
      match Wire.decode r with
      | Ok [ "done"; rid; _ts; resp ] -> Wire.encode [ "done"; rid; "-"; resp ]
      | _ -> r)
    rc.Wal.rc_records

let has_prefix p s =
  String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p

(* Every chirp counter except the async bookkeeping (which only the
   event-driven server has) and the WAL sync count (group commit exists
   to change it). *)
let chirp_counters kernel =
  Metrics.counters (Kernel.metrics kernel)
  |> List.filter_map (fun c ->
         let n = Metrics.counter_name c in
         if
           has_prefix "chirp." n
           && (not (has_prefix "chirp.async." n))
           && not (has_prefix "chirp.wal.sync" n)
         then Some (n, Metrics.counter_value c)
         else None)

let equivalence () =
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let ops = gen_ops st 120 in
      let a = make_world () in
      let b = make_world ~event_driven:true () in
      Alcotest.(check bool) "blocking mode" false (Server.event_driven a.w_server);
      Alcotest.(check bool) "event-driven mode" true (Server.event_driven b.w_server);
      let ca = connect a and cb = connect b in
      ok "mkdir sync" (Client.mkdir ca "/d");
      ok "mkdir async" (Client.mkdir cb "/d");
      List.iteri
        (fun i op ->
          let ra = apply ca op and rb = apply cb op in
          if not (String.equal ra rb) then
            Alcotest.failf "seed %d step %d: sync=%S async=%S" seed i ra rb)
        ops;
      (* A mutation batch parks and executes as one unit; its member
         results must match the blocking server's member-by-member. *)
      let batch =
        [
          Protocol.Put { path = "/bz"; data = "z" };
          Protocol.Get "/bz";
          Protocol.Unlink "/bz";
        ]
      in
      let rba = Client.batch ca batch and rbb = Client.batch cb batch in
      if rba <> rbb then Alcotest.failf "seed %d: batch results diverge" seed;
      Network.pump a.w_net;
      Network.pump b.w_net;
      Alcotest.(check int) "nothing left parked" 0 (Server.parked_ops b.w_server);
      let wa = normalized_wal a.w_wal and wb = normalized_wal b.w_wal in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same WAL length" seed)
        (List.length wa) (List.length wb);
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: WAL identical modulo timestamps" seed)
        wa wb;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "seed %d: chirp counters identical" seed)
        (chirp_counters a.w_kernel)
        (chirp_counters b.w_kernel))
    seeds

(* The wire bytes themselves: identical prepared requests must draw
   byte-identical responses from both serving paths (tokens are
   digests of address, counter and principal — both worlds negotiate
   the same ones). *)
let raw_byte_equivalence () =
  let a = make_world () in
  let b = make_world ~event_driven:true () in
  let ca = connect a and cb = connect b in
  let exchange w payload =
    match Network.call w.w_net ~addr payload with
    | Ok r -> r
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  List.iter
    (fun op ->
      let pa = Client.prepare ca op and pb = Client.prepare cb op in
      Alcotest.(check string) "request bytes" pa pb;
      Alcotest.(check string) "response bytes" (exchange a pa) (exchange b pb))
    [
      Protocol.Mkdir "/d";
      Protocol.Put { path = "/d/f"; data = "hello" };
      Protocol.Get "/d/f";
      Protocol.Readdir "/d";
      Protocol.Checksum "/d/f";
      Protocol.Whoami;
      Protocol.Get "/missing";
      Protocol.Unlink "/d/f";
    ]

(* --- session-slot accounting under churn (the regression) ------------ *)

let counter_of w name = Metrics.counter_value_of (Kernel.metrics w.w_kernel) name

let step_until w cond =
  let rec go budget =
    if cond () then ()
    else if budget = 0 || not (Network.step w.w_net) then
      Alcotest.fail "event queue drained before condition held"
    else go (budget - 1)
  in
  go 10_000

let slot_churn () =
  (* Two slots, a 1 ms idle window, and a flush tick far enough out
     that sessions can expire while their mutation is still parked. *)
  let w =
    make_world ~event_driven:true ~max_sessions:2 ~session_idle_ns:1_000_000L
      ~flush_interval_ns:50_000_000L ()
  in
  let a = connect w in
  Alcotest.(check int) "one live session" 1 (Server.session_count w.w_server);
  (* Park a mutation: deliver it, but run nothing past the delivery. *)
  let tok =
    Network.submit w.w_net ~addr
      (Client.prepare a (Protocol.Put { path = "/late"; data = "survives" }))
  in
  step_until w (fun () -> Server.parked_ops w.w_server = 1);
  (* Expire the session mid-park: the next auth sweeps it, frees the
     slot exactly once, and the parked op must still execute and answer
     under the principal it was admitted with. *)
  Clock.advance_to w.w_clock (Int64.add (Clock.now w.w_clock) 2_000_000L);
  let c = connect w in
  Alcotest.(check bool) "expiry swept" true (counter_of w "chirp.session.expired" >= 1);
  Alcotest.(check int) "slot released exactly once" 1
    (Server.session_count w.w_server);
  Network.pump w.w_net;
  Alcotest.(check int) "batch flushed" 0 (Server.parked_ops w.w_server);
  (match Network.poll tok with
  | Some (Ok text) -> (
    match Client.interpret text with
    | Ok _ -> ()
    | Error e ->
      Alcotest.failf "parked op failed after expiry: %s" (Errno.to_string e))
  | Some (Error e) ->
    Alcotest.failf "parked op lost: %s" (Errno.to_string e)
  | None -> Alcotest.fail "parked op never completed");
  Alcotest.(check string) "orphaned mutation is durable" "survives"
    (ok "get" (Client.get c "/late"));
  (* Crash mid-park: the parked op is volatile (never acknowledged),
     the stale flush tick is a no-op, and the table resets cleanly. *)
  let tok2 =
    Network.submit w.w_net ~addr
      (Client.prepare c (Protocol.Put { path = "/lost"; data = "gone" }))
  in
  step_until w (fun () -> Server.parked_ops w.w_server = 1);
  Server.crash w.w_server;
  Alcotest.(check int) "crash clears the park" 0 (Server.parked_ops w.w_server);
  Network.pump w.w_net;
  (match Network.poll tok2 with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "crashed server acknowledged a parked op"
  | None -> Alcotest.fail "timeout never fired");
  Server.restart w.w_server;
  (* Churn: every reconnect sweeps the expired table; the cap holds and
     fresh auths always find a slot. *)
  for _ = 1 to 10 do
    Clock.advance_to w.w_clock (Int64.add (Clock.now w.w_clock) 2_000_000L);
    let d = connect w in
    Alcotest.(check bool) "cap holds" true (Server.session_count w.w_server <= 2);
    ignore (ok "whoami" (Client.whoami d))
  done;
  Alcotest.(check string) "recovery kept the durable put" "survives"
    (ok "get after restart" (Client.get (connect w) "/late"))

(* --- hedged-read late replies (the regression) ----------------------- *)

let hedge_late_reply () =
  List.iter
    (fun seed ->
      let w = Cworld.create () in
      List.iter
        (fun h -> ok_s "add_node" (Cworld.add_node w ~host:h))
        [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ];
      Cworld.settle w;
      let r =
        ok_s "router"
          (Cworld.connect w ~hedge_ns:200_000L
             ~credentials:[ Cworld.issue w "Alice" ])
      in
      ok "mkdir" (Router.mkdir r "/h");
      ok "put" (Router.put r ~path:"/h/hot" ~data:"payload");
      Network.pump (Cworld.net w);
      let primary = Option.get (Router.node_for r "/h/hot") in
      (* Delay — never drop — everything to the primary: its replies
         straggle in long after the hedge has won. *)
      Network.set_fault_plan (Cworld.net w)
        (Fault.plan ~seed:(Int64.of_int seed)
           ~per_endpoint:
             [
               ( primary ^ ".grid.edu:9094",
                 Fault.profile ~jitter:1.0 ~max_jitter_ns:50_000_000L () );
             ]
           ());
      let m name = Metrics.counter_value_of (Network.metrics (Cworld.net w)) name in
      let launched0 = m "cluster.hedge.launched" in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: hedged read is correct" seed)
        "payload" (ok "get" (Router.get r "/h/hot"));
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: hedge launched" seed)
        true
        (m "cluster.hedge.launched" > launched0);
      (* The loser's delayed reply: drain it, then reap.  It must be
         discarded as late — never surfaced as a result — and the
         in-flight gauge must return to zero, not go negative via a
         double decrement. *)
      Network.pump (Cworld.net w);
      Router.reap r;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: straggler discarded as late" seed)
        true
        (m "cluster.hedge.late" >= 1);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: in-flight gauge balanced" seed)
        0 (Router.inflight r);
      (* The answer a straggler carried never leaks into a later read. *)
      Network.clear_fault_plan (Cworld.net w);
      Alcotest.(check string)
        (Printf.sprintf "seed %d: subsequent read unpolluted" seed)
        "payload" (ok "get2" (Router.get r "/h/hot"));
      Network.pump (Cworld.net w);
      Router.reap r;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: still balanced" seed)
        0 (Router.inflight r))
    [ 3; 11; 27 ]

let suite =
  [
    Alcotest.test_case "sysent table shape" `Quick sysent_table_shape;
    Alcotest.test_case "sysent rejects misnumbered entries" `Quick
      sysent_rejects_misnumbered;
    Alcotest.test_case "sysmsg completes exactly once" `Quick
      sysmsg_completes_once;
    Alcotest.test_case "sync/async equivalence (5 seeds)" `Quick equivalence;
    Alcotest.test_case "sync/async byte-identical wire exchanges" `Quick
      raw_byte_equivalence;
    Alcotest.test_case "session slots survive churn" `Quick slot_churn;
    Alcotest.test_case "hedged-read stragglers discarded" `Quick
      hedge_late_reply;
  ]
