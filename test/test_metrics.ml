(* The metrics registry and trace ring: histogram percentiles, ring
   wraparound, counter saturation, and the JSON renders. *)

module Metrics = Idbox_kernel.Metrics
module Trace = Idbox_kernel.Trace

(* --- counters -------------------------------------------------------- *)

let counter_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a" in
  Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "42" 42 (Metrics.counter_value c);
  Alcotest.(check int) "by name" 42 (Metrics.counter_value_of m "a");
  Alcotest.(check int) "unknown name" 0 (Metrics.counter_value_of m "zzz");
  (* Get-or-create returns the same handle. *)
  Metrics.incr (Metrics.counter m "a");
  Alcotest.(check int) "shared" 43 (Metrics.counter_value c)

let counter_saturates () =
  let m = Metrics.create () in
  let c = Metrics.counter m "sat" in
  Metrics.add c max_int;
  Metrics.incr c;
  Alcotest.(check int) "pinned at max_int" max_int (Metrics.counter_value c);
  Metrics.add c max_int;
  Alcotest.(check int) "still pinned" max_int (Metrics.counter_value c);
  (* Negative and zero deltas are ignored, not subtracted. *)
  let d = Metrics.counter m "mono" in
  Metrics.add d 5;
  Metrics.add d (-3);
  Metrics.add d 0;
  Alcotest.(check int) "monotonic" 5 (Metrics.counter_value d)

(* --- histograms ------------------------------------------------------ *)

let histogram_basics () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  Alcotest.(check int) "empty count" 0 (Metrics.count h);
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Metrics.percentile h 50.0);
  List.iter (Metrics.observe h) [ 100; 200; 300 ];
  Alcotest.(check int) "count" 3 (Metrics.count h);
  Alcotest.(check int) "sum" 600 (Metrics.sum_ns h);
  Alcotest.(check int) "max" 300 (Metrics.max_ns h);
  Alcotest.(check (float 0.01)) "mean" 200.0 (Metrics.mean_ns h);
  Metrics.observe h (-7);
  Alcotest.(check int) "negative clamps to 0" 4 (Metrics.count h);
  Alcotest.(check int) "sum unchanged" 600 (Metrics.sum_ns h)

let histogram_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "p" in
  (* 90 fast samples in [128,256) and 10 slow in [65536,131072): p50
     must land in the fast bucket, p95/p99 in the slow one.  Log-scale
     buckets report the geometric centre 1.5 * 2^i. *)
  for _ = 1 to 90 do
    Metrics.observe h 130
  done;
  for _ = 1 to 10 do
    Metrics.observe h 70_000
  done;
  Alcotest.(check (float 0.01)) "p50 in fast bucket" (1.5 *. 128.0)
    (Metrics.percentile h 50.0);
  Alcotest.(check (float 0.01)) "p90 still fast" (1.5 *. 128.0)
    (Metrics.percentile h 90.0);
  Alcotest.(check (float 0.01)) "p95 slow" (1.5 *. 65536.0)
    (Metrics.percentile h 95.0);
  Alcotest.(check (float 0.01)) "p99 slow" (1.5 *. 65536.0)
    (Metrics.percentile h 99.0);
  (* Out-of-range p clamps rather than raising. *)
  Alcotest.(check (float 0.01)) "p>100 = max bucket" (1.5 *. 65536.0)
    (Metrics.percentile h 250.0)

let histogram_tiny_values () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "tiny" in
  Metrics.observe h 0;
  Metrics.observe h 1;
  Alcotest.(check (float 0.01)) "bucket 0 reports 1.0" 1.0
    (Metrics.percentile h 99.0);
  Metrics.observe_ns h 2L;
  Alcotest.(check int) "int64 entry point" 3 (Metrics.count h)

let histogram_edges () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "edge" in
  (* An empty histogram renders a stable, finite JSON object — no NaN
     percentiles, no division by a zero count. *)
  Alcotest.(check string) "empty histogram JSON"
    "{\"count\":0,\"sum_ns\":0,\"max_ns\":0,\"mean_ns\":0.0,\"p50_ns\":0.0,\"p95_ns\":0.0,\"p99_ns\":0.0}"
    (Metrics.histogram_json h);
  (* A zero-duration sample lands in bucket 0, inside the table. *)
  Metrics.observe_ns h 0L;
  Alcotest.(check (float 0.01)) "zero duration in bucket 0" 1.0
    (Metrics.percentile h 99.0);
  (* A negative int64 clamps to 0 instead of indexing below the table. *)
  Metrics.observe_ns h (-5L);
  Alcotest.(check int) "negative counted, clamped" 2 (Metrics.count h);
  Alcotest.(check int) "sum untouched by clamp" 0 (Metrics.sum_ns h);
  (* A duration beyond the int range saturates into the top bucket —
     it must not wrap negative and land silently in bucket 0. *)
  Metrics.observe_ns h Int64.max_int;
  Alcotest.(check int) "saturates at max_int" max_int (Metrics.max_ns h);
  let p = Metrics.percentile h 99.9 in
  Alcotest.(check bool) "tail lands in a defined bucket" true
    (p > 1.0 && Float.is_finite p);
  Alcotest.(check bool) "render survives extremes" true
    (String.length (Metrics.histogram_json h) > 0)

(* --- registry + JSON ------------------------------------------------- *)

let registry_json () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "b.count") 2;
  Metrics.add (Metrics.counter m "a.count") 1;
  Metrics.observe (Metrics.histogram m "lat") 100;
  let json = Metrics.to_json m in
  (* Keys come out sorted, so the render is deterministic. *)
  Alcotest.(check string)
    "deterministic render"
    "{\"counters\":{\"a.count\":1,\"b.count\":2},\"histograms\":{\"lat\":{\"count\":1,\"sum_ns\":100,\"max_ns\":100,\"mean_ns\":100.0,\"p50_ns\":96.0,\"p95_ns\":96.0,\"p99_ns\":96.0}}}"
    json;
  Metrics.reset m;
  Alcotest.(check string) "reset empties"
    "{\"counters\":{},\"histograms\":{}}" (Metrics.to_json m)

let json_escaping () =
  Alcotest.(check string) "quotes and control chars" "a\\\"b\\\\c\\n\\u0001"
    (Metrics.escape_json "a\"b\\c\n\001")

(* --- trace ring ------------------------------------------------------ *)

let emit ring i =
  Trace.span ring ~time:(Int64.of_int (i * 10)) ~pid:i ~identity:"unix:alice"
    ~syscall:"open" ~verdict:"ok" ~cost_ns:5L

let ring_wraparound () =
  let ring = Trace.ring ~capacity:4 () in
  Alcotest.(check int) "empty length" 0 (Trace.length ring);
  for i = 0 to 9 do
    emit ring i
  done;
  Alcotest.(check int) "total counts all" 10 (Trace.total ring);
  Alcotest.(check int) "length capped" 4 (Trace.length ring);
  Alcotest.(check int) "dropped" 6 (Trace.dropped ring);
  (* Oldest-first iteration yields the last [capacity] spans. *)
  let seqs = List.map (fun s -> s.Trace.sp_seq) (Trace.to_list ring) in
  Alcotest.(check (list int)) "oldest retained first" [ 6; 7; 8; 9 ] seqs

let ring_before_wrap () =
  let ring = Trace.ring ~capacity:8 () in
  for i = 0 to 2 do
    emit ring i
  done;
  let seqs = List.map (fun s -> s.Trace.sp_seq) (Trace.to_list ring) in
  Alcotest.(check (list int)) "insertion order" [ 0; 1; 2 ] seqs;
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ring);
  Trace.reset ring;
  Alcotest.(check int) "reset" 0 (Trace.total ring)

let ring_sinks () =
  let ring = Trace.ring ~capacity:2 () in
  let seen = ref [] in
  Trace.add_sink ring (fun s -> seen := s.Trace.sp_seq :: !seen);
  for i = 0 to 4 do
    emit ring i
  done;
  (* The sink observed every span, including overwritten ones. *)
  Alcotest.(check (list int)) "sink sees all" [ 0; 1; 2; 3; 4 ]
    (List.rev !seen);
  Trace.clear_sinks ring;
  emit ring 5;
  Alcotest.(check (list int)) "cleared" [ 0; 1; 2; 3; 4 ] (List.rev !seen)

let ring_json () =
  let ring = Trace.ring ~capacity:2 () in
  Trace.span ring ~time:7L ~pid:3 ~identity:"g:\"x\"" ~syscall:"open"
    ~verdict:"EACCES" ~cost_ns:11L;
  Alcotest.(check string) "span json"
    "{\"capacity\":2,\"total\":1,\"dropped\":0,\"spans\":[{\"seq\":0,\"time_ns\":7,\"pid\":3,\"identity\":\"g:\\\"x\\\"\",\"syscall\":\"open\",\"verdict\":\"EACCES\",\"cost_ns\":11}]}"
    (Trace.to_json ring)

(* --- kernel integration ---------------------------------------------- *)

let kernel_records () =
  let module Kernel = Idbox_kernel.Kernel in
  let module Libc = Idbox_kernel.Libc in
  let kernel = Kernel.create () in
  ignore
    (Kernel.spawn_main kernel
       ~main:(fun _ ->
         (match Libc.write_file "/tmp/f" ~contents:"x" with
          | Ok () -> ()
          | Error _ -> ());
         ignore (Libc.read_file "/tmp/f");
         ignore (Libc.read_file "/no/such/file");
         0)
       ~args:[] ());
  Kernel.run kernel;
  let m = Kernel.metrics kernel in
  Alcotest.(check int) "two opens counted, one failed" 3
    (Metrics.counter_value_of m "syscall.open");
  let h = Option.get (Metrics.find_histogram m "syscall.open.ns") in
  Alcotest.(check int) "open latencies observed" 3 (Metrics.count h);
  Alcotest.(check bool) "simulated time charged" true (Metrics.sum_ns h > 0);
  (* Each completed call leaves a span; the failed open carries its
     errno as the verdict. *)
  let ring = Kernel.trace_ring kernel in
  let enoent =
    List.filter
      (fun s -> String.equal s.Trace.sp_verdict "ENOENT")
      (Trace.to_list ring)
  in
  Alcotest.(check int) "failed open traced" 1 (List.length enoent);
  Alcotest.(check bool) "spans retained" true (Trace.length ring > 0)

(* The `idbox stats` export is the operator's one window into the
   counter registry: its workload must touch — and its JSON dump must
   therefore carry — every counter family the instrumented layers
   define, including the delegation subsystem's. *)
let stats_dump_covers_delegation () =
  let kernel = Idbox_report.Report.metrics_workload () in
  let json = Idbox_report.Report.metrics_json kernel in
  let contains needle =
    let nh = String.length json and nn = String.length needle in
    let rec go i =
      i + nn <= nh
      && (String.equal (String.sub json i nn) needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun family ->
      Alcotest.(check bool) ("dump carries " ^ family) true
        (contains ("\"" ^ family ^ "\"")))
    [
      "auth.delegation.mint";
      "auth.delegation.ok";
      "auth.delegation.reject.expired";
      "auth.delegation.reject.revoked";
      "enforce.chain.hit";
      "enforce.chain.miss";
      "chirp.delegated_exec";
      "chirp.revocation.apply";
      "chirp.rpc.delegated";
      "chirp.rpc.revoke";
      "kernel.bytecode.hit";
      "kernel.bytecode.stale";
      "kernel.bytecode.fallback";
      "kernel.bytecode.recompile";
      "kernel.bytecode.reject";
    ]

(* The warm check path must be allocation- and lookup-free in the
   registry: every counter it touches was interned at create time, so a
   steady-state check performs zero by-name registry lookups (the
   [Metrics.lookups] probe counts [counter]/[histogram]/[find_*]
   calls). *)
let warm_check_zero_registry_lookups () =
  let module Kernel = Idbox_kernel.Kernel in
  let module Enforce = Idbox.Enforce in
  let module Fs = Idbox_vfs.Fs in
  let module Acl = Idbox_acl.Acl in
  let module Entry = Idbox_acl.Entry in
  let module Rights = Idbox_acl.Rights in
  let module Right = Idbox_acl.Right in
  let kernel = Kernel.create () in
  let sup = Kernel.make_view kernel ~uid:0 () in
  let e = Enforce.create kernel ~supervisor:sup () in
  (match Fs.mkdir_p (Kernel.fs kernel) ~uid:0 "/d" with
   | Ok () -> ()
   | Error err -> Alcotest.fail (Idbox_vfs.Errno.message err));
  (match
     Enforce.write_acl e ~dir:"/d"
       (Idbox_acl.Acl.of_entries
          [ Entry.make ~pattern:"globus:/O=UnivNowhere/CN=Fred"
              (Rights.of_string_exn "rl") ])
   with
   | Ok () -> ()
   | Error err -> Alcotest.fail (Idbox_vfs.Errno.message err));
  let fred = Idbox_identity.Principal.of_string "globus:/O=UnivNowhere/CN=Fred" in
  let check () =
    ignore (Enforce.check_object e ~identity:fred ~path:"/d/blob" Right.Read)
  in
  check ();  (* prime: compile + first answers *)
  let m = Kernel.metrics kernel in
  let l0 = Metrics.lookups m in
  for _ = 1 to 100 do
    check ()
  done;
  Alcotest.(check int) "zero registry lookups across 100 warm checks" 0
    (Metrics.lookups m - l0)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick counter_basics;
    Alcotest.test_case "counter saturates at max_int" `Quick counter_saturates;
    Alcotest.test_case "histogram basics" `Quick histogram_basics;
    Alcotest.test_case "histogram percentiles" `Quick histogram_percentiles;
    Alcotest.test_case "histogram tiny values" `Quick histogram_tiny_values;
    Alcotest.test_case "histogram edge samples" `Quick histogram_edges;
    Alcotest.test_case "registry JSON deterministic" `Quick registry_json;
    Alcotest.test_case "JSON escaping" `Quick json_escaping;
    Alcotest.test_case "ring wraparound" `Quick ring_wraparound;
    Alcotest.test_case "ring before wrap" `Quick ring_before_wrap;
    Alcotest.test_case "ring sinks see every span" `Quick ring_sinks;
    Alcotest.test_case "ring JSON" `Quick ring_json;
    Alcotest.test_case "kernel records syscall metrics" `Quick kernel_records;
    Alcotest.test_case "warm check: zero registry lookups" `Quick
      warm_check_zero_registry_lookups;
    Alcotest.test_case "stats dump covers the delegation counters" `Quick
      stats_dump_covers_delegation;
  ]
