(* The benchmark harness: regenerate every table and figure of the
   paper, then run a Bechamel micro-suite timing the harness itself.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig5b      # one figure
     dune exec bench/main.exe -- --full  # full-size Fig. 5(b) runs
     dune exec bench/main.exe bechamel   # only the Bechamel suite
     dune exec bench/main.exe cluster    # cluster scaling block only
     dune exec bench/main.exe -- --json  # deterministic JSON report

   Simulated results are deterministic; Bechamel times the real cost of
   regenerating each artifact on the host. *)

(* A directory with a large ACL, returned with its enforcement engine.
   The staged benchmark invalidates the cache and re-checks, forcing a
   full ACL-file read each run — the case the Buffer-based
   [read_acl_file] fixed from quadratic to linear host time. *)
let large_acl_fixture n =
  let module Kernel = Idbox_kernel.Kernel in
  let module Enforce = Idbox.Enforce in
  let module Acl = Idbox_acl.Acl in
  let module Entry = Idbox_acl.Entry in
  let module Rights = Idbox_acl.Rights in
  let kernel = Kernel.create () in
  let sup = Kernel.make_view kernel ~uid:0 () in
  let enforce = Enforce.create kernel ~supervisor:sup () in
  let dir = "/bigacl" in
  (match Idbox_vfs.Fs.mkdir_p (Kernel.fs kernel) ~uid:0 dir with
   | Ok () -> ()
   | Error e -> failwith (Idbox_vfs.Errno.message e));
  let entries =
    List.init n (fun i ->
        Entry.make
          ~pattern:(Printf.sprintf "globus:/O=UnivNowhere/CN=user%04d" i)
          (Rights.of_string_exn "rwl"))
  in
  (match Enforce.write_acl enforce ~dir (Acl.of_entries entries) with
   | Ok () -> ()
   | Error e -> failwith (Idbox_vfs.Errno.message e));
  let who = Idbox_identity.Principal.of_string "globus:/O=UnivNowhere/CN=user0000" in
  fun () ->
    Enforce.invalidate enforce ~dir;
    ignore (Enforce.check_in_dir enforce ~identity:who ~dir Idbox_acl.Right.Read)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline "Bechamel - host-time cost of regenerating each artifact";
  print_endline (String.make 78 '=');
  (* One Test.make per table/figure.  Small iteration counts: these
     measure harness cost, not simulated results (which are exact). *)
  let tests =
    [
      Test.make ~name:"fig1_probe_matrix"
        (Staged.stage (fun () -> ignore (Idbox_accounts.Probe.rows ())));
      Test.make ~name:"fig4_trap_accounting"
        (Staged.stage (fun () -> ignore (Idbox_workload.Microbench.fig4 ())));
      Test.make ~name:"fig5a_syscall_latency"
        (Staged.stage (fun () ->
             ignore (Idbox_workload.Microbench.fig5a ~iters:100 ())));
      Test.make ~name:"fig5b_app_runtimes"
        (Staged.stage (fun () ->
             ignore (Idbox_workload.Runner.fig5b ~scale:0.002 ())));
      Test.make ~name:"fig6_kernel_ablation"
        (Staged.stage (fun () ->
             ignore
               (Idbox_workload.Runner.fig6_ablation ~scale:0.002
                  ~apps:[ Idbox_workload.Apps.ibis ] ())));
      Test.make ~name:"large_acl_read"
        (Staged.stage (large_acl_fixture 2000));
    ]
  in
  let test = Test.make_grouped ~name:"idbox" ~fmt:"%s/%s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  Printf.printf "%-38s %18s\n" "artifact" "host time/run";
  print_endline (String.make 58 '-');
  Hashtbl.iter
    (fun _instance table ->
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, ols) ->
             match Bechamel.Analyze.OLS.estimates ols with
             | Some (est :: _) ->
               let pretty =
                 if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
                 else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                 else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                 else Printf.sprintf "%.0f ns" est
               in
               Printf.printf "%-38s %18s\n" name pretty
             | Some [] | None -> Printf.printf "%-38s %18s\n" name "(n/a)"))
    results

(* Retry overhead under packet loss: the same Chirp read workload at
   0%, 1% and 10% drop rates, reporting simulated per-call latency
   percentiles and the retries spent.  Deterministic (seeded faults,
   simulated clock), so these figures are exact, not sampled. *)
type resilience_row = {
  rr_drop : float;
  rr_p50_ms : float;
  rr_p95_ms : float;
  rr_retries : int;
  rr_drops : int;
}

let resilience_rows () =
  let module Kernel = Idbox_kernel.Kernel in
  let module Account = Idbox_kernel.Account in
  let module Clock = Idbox_kernel.Clock in
  let module Metrics = Idbox_kernel.Metrics in
  let module Network = Idbox_net.Network in
  let module Fault = Idbox_net.Fault in
  let module Ca = Idbox_auth.Ca in
  let module Credential = Idbox_auth.Credential in
  let module Negotiate = Idbox_auth.Negotiate in
  let module Server = Idbox_chirp.Server in
  let module Client = Idbox_chirp.Client in
  let module Subject = Idbox_identity.Subject in
  let calls = 400 in
  let run drop =
    let clock = Clock.create () in
    let kernel = Kernel.create ~clock () in
    let net = Network.create ~clock () in
    let owner =
      match Account.add (Kernel.accounts kernel) "chirpuser" with
      | Ok e -> e
      | Error m -> failwith m
    in
    Kernel.refresh_passwd kernel;
    let ca = Ca.create ~name:"Bench CA" in
    let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
    let root_acl =
      Idbox_acl.Acl.of_entries
        [
          Idbox_acl.Entry.make ~pattern:"globus:/O=Bench/*"
            (Idbox_acl.Rights.of_string_exn "rwl");
        ]
    in
    (match
       Server.create ~kernel ~net ~addr:"bench.grid.edu:9094"
         ~owner_uid:owner.Account.uid ~export:"/tmp/bench" ~acceptor ~root_acl ()
     with
    | Ok _ -> ()
    | Error e -> failwith (Idbox_vfs.Errno.message e));
    Network.set_fault_plan net
      (Fault.plan ~seed:1L ~default_profile:(Fault.profile ~drop ()) ());
    let cert = Ca.issue ca (Subject.of_string_exn "/O=Bench/CN=Reader") in
    let policy =
      { Client.default_policy with max_attempts = 12; retry_budget = 100_000 }
    in
    let c =
      match
        Client.connect ~policy net ~addr:"bench.grid.edu:9094"
          ~credentials:[ Credential.Gsi cert ]
      with
      | Ok c -> c
      | Error m -> failwith m
    in
    (match Client.put c ~path:"/blob" ~data:(String.make 1024 'b') with
     | Ok () -> ()
     | Error e -> failwith (Idbox_vfs.Errno.message e));
    let latencies =
      Array.init calls (fun _ ->
          let t0 = Clock.now clock in
          (match Client.get c "/blob" with
           | Ok _ -> ()
           | Error e -> failwith (Idbox_vfs.Errno.message e));
          Int64.to_float (Int64.sub (Clock.now clock) t0))
    in
    Array.sort compare latencies;
    let pct p =
      latencies.(min (calls - 1) (int_of_float (float_of_int calls *. p)))
    in
    let drops = Metrics.counter_value_of (Network.metrics net) "net.drop" in
    {
      rr_drop = drop;
      rr_p50_ms = pct 0.50 /. 1e6;
      rr_p95_ms = pct 0.95 /. 1e6;
      rr_retries = Client.retries c;
      rr_drops = drops;
    }
  in
  List.map run [ 0.0; 0.01; 0.10 ]

let resilience_block () =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline "Resilience - Chirp retry overhead vs. network drop rate";
  print_endline (String.make 78 '=');
  Printf.printf "%7s %14s %14s %9s %9s\n" "drop" "p50 (ms)" "p95 (ms)"
    "retries" "drops";
  print_endline (String.make 58 '-');
  List.iter
    (fun r ->
      Printf.printf "%6.0f%% %14.3f %14.3f %9d %9d\n" (r.rr_drop *. 100.)
        r.rr_p50_ms r.rr_p95_ms r.rr_retries r.rr_drops)
    (resilience_rows ())

(* Cluster scaling: the same read-heavy workload against 1, 3 and 9
   sharded+replicated Chirp servers behind the identity-aware router,
   calm and at 10% drop.  Aggregate throughput is a capacity figure:
   total operations divided by the busiest node's service time (the
   makespan bottleneck) — sharding divides the bottleneck, so N=3 must
   clear 2x the single-server figure (the acceptance criterion).
   Deterministic: simulated clock, seeded faults, MD5 ring. *)
type cluster_row = {
  cr_nodes : int;
  cr_drop : float;
  cr_ops : int;
  cr_p50_ms : float;
  cr_p95_ms : float;
  cr_tput_kops : float;  (* kops per second of bottleneck busy time *)
  cr_speedup : float;  (* vs the 1-node run at the same drop rate *)
  cr_failovers : int;
  cr_drops : int;
}

let cluster_run ~nodes ~drop =
  let module Clock = Idbox_kernel.Clock in
  let module Metrics = Idbox_kernel.Metrics in
  let module Network = Idbox_net.Network in
  let module Fault = Idbox_net.Fault in
  let module Client = Idbox_chirp.Client in
  let module World = Idbox_cluster.World in
  let module Router = Idbox_cluster.Router in
  let okv ctx = function
    | Ok v -> v
    | Error e -> failwith (ctx ^ ": " ^ Idbox_vfs.Errno.message e)
  in
  let w = World.create () in
  let hosts = List.init nodes (fun i -> Printf.sprintf "n%d.grid.edu" (i + 1)) in
  List.iter
    (fun h ->
      match World.add_node w ~host:h with
      | Ok () -> ()
      | Error m -> failwith m)
    hosts;
  World.settle w;
  let policy =
    { Client.default_policy with max_attempts = 12; retry_budget = 1_000_000 }
  in
  let r =
    match World.connect ~policy w ~credentials:[ World.issue w "Bench" ] with
    | Ok r -> r
    | Error m -> failwith m
  in
  (* Populate on a calm network; measure under fire. *)
  let dirs = List.init 24 (fun i -> Printf.sprintf "/d%02d" i) in
  List.iter
    (fun d ->
      okv "mkdir" (Router.mkdir r d);
      okv "put" (Router.put r ~path:(d ^ "/blob") ~data:(String.make 1024 'x')))
    dirs;
  let net = World.net w in
  let clock = World.clock w in
  let busy_of h =
    Int64.add
      (Network.busy_ns net ~addr:(h ^ ":9094"))
      (Network.busy_ns net ~addr:(h ^ ":9094#repl"))
  in
  let base = List.map busy_of hosts in
  let drops0 = Metrics.counter_value_of (Network.metrics net) "net.drop" in
  Network.set_fault_plan net
    (Fault.plan ~seed:7L ~default_profile:(Fault.profile ~drop ()) ());
  let ops = 480 in
  let latencies =
    Array.init ops (fun i ->
        let d = List.nth dirs (i mod 24) in
        let t0 = Clock.now clock in
        (if i mod 10 = 5 then
           okv "put" (Router.put r ~path:(d ^ "/blob")
                        ~data:(Printf.sprintf "%04d%s" i (String.make 1020 'y')))
         else ignore (okv "get" (Router.get r (d ^ "/blob"))));
        Int64.to_float (Int64.sub (Clock.now clock) t0))
  in
  Array.sort compare latencies;
  let pct p =
    latencies.(min (ops - 1) (int_of_float (float_of_int ops *. p)))
  in
  let bottleneck =
    List.fold_left2
      (fun acc h b -> max acc (Int64.to_float (Int64.sub (busy_of h) b)))
      0. hosts base
  in
  let drops =
    Metrics.counter_value_of (Network.metrics net) "net.drop" - drops0
  in
  {
    cr_nodes = nodes;
    cr_drop = drop;
    cr_ops = ops;
    cr_p50_ms = pct 0.50 /. 1e6;
    cr_p95_ms = pct 0.95 /. 1e6;
    cr_tput_kops = float_of_int ops /. (bottleneck /. 1e9) /. 1e3;
    cr_speedup = 1.0;
    cr_failovers = Router.failovers r;
    cr_drops = drops;
  }

let cluster_rows () =
  let raw =
    List.concat_map
      (fun drop -> List.map (fun n -> cluster_run ~nodes:n ~drop) [ 1; 3; 9 ])
      [ 0.0; 0.10 ]
  in
  List.map
    (fun row ->
      let base =
        List.find (fun r -> r.cr_nodes = 1 && r.cr_drop = row.cr_drop) raw
      in
      { row with cr_speedup = row.cr_tput_kops /. base.cr_tput_kops })
    raw

let cluster_block () =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline
    "Cluster - aggregate throughput vs. shard count (read-heavy, R=2)";
  print_endline (String.make 78 '=');
  Printf.printf "%5s %6s %10s %10s %12s %8s %9s %7s\n" "nodes" "drop"
    "p50 (ms)" "p95 (ms)" "kops/s" "speedup" "failover" "drops";
  print_endline (String.make 74 '-');
  List.iter
    (fun r ->
      Printf.printf "%5d %5.0f%% %10.3f %10.3f %12.1f %7.2fx %9d %7d\n"
        r.cr_nodes (r.cr_drop *. 100.) r.cr_p50_ms r.cr_p95_ms r.cr_tput_kops
        r.cr_speedup r.cr_failovers r.cr_drops)
    (cluster_rows ())

(* Recovery: crash-restart MTTR as a function of WAL length (with and
   without a checkpoint right before the crash), and anti-entropy
   repair convergence as a function of how far a partitioned replica
   drifted.  Both figures run on the simulated clock with seeded
   faults, so they are exact and byte-identical across runs. *)
type replay_row = {
  rv_ops : int;  (* acknowledged mutations before the crash *)
  rv_ckpt : bool;  (* checkpoint taken just before the crash *)
  rv_wal_records : int;  (* records pending replay at crash time *)
  rv_replayed : int;
  rv_torn : int;  (* torn/corrupt records discarded on recovery *)
  rv_mttr_ms : float;  (* simulated restart (checkpoint load + replay) *)
}

type repair_row = {
  rp_divergence : int;  (* shard keys mutated while a replica was cut off *)
  rp_pushes : int;  (* authoritative subtrees shipped to converge *)
  rp_converge_ms : float;  (* heal -> identical digests on every holder *)
  rp_p95_calm_ms : float;  (* client read p95 before the partition *)
  rp_p95_repair_ms : float;  (* client read p95 during background repair *)
}

type recovery_report = {
  rec_replay : replay_row list;
  rec_repair : repair_row list;
}

let replay_run ~ops ~ckpt =
  let module Kernel = Idbox_kernel.Kernel in
  let module Account = Idbox_kernel.Account in
  let module Clock = Idbox_kernel.Clock in
  let module Metrics = Idbox_kernel.Metrics in
  let module Network = Idbox_net.Network in
  let module Fault = Idbox_net.Fault in
  let module Ca = Idbox_auth.Ca in
  let module Credential = Idbox_auth.Credential in
  let module Negotiate = Idbox_auth.Negotiate in
  let module Wal = Idbox_chirp.Wal in
  let module Server = Idbox_chirp.Server in
  let module Client = Idbox_chirp.Client in
  let module Subject = Idbox_identity.Subject in
  let clock = Clock.create () in
  let kernel = Kernel.create ~clock () in
  let net = Network.create ~clock () in
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> failwith m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"Bench CA" in
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  let root_acl =
    Idbox_acl.Acl.of_entries
      [
        Idbox_acl.Entry.make ~pattern:"globus:/O=Bench/*"
          (Idbox_acl.Rights.of_string_exn "rwl");
      ]
  in
  (* A torn in-flight write on every crash: recovery must discard it by
     checksum without losing any acknowledged mutation. *)
  let wal =
    Wal.create ~seed:5L
      ~profile:(Fault.storage_profile ~torn_write:1.0 ()) ()
  in
  let server =
    match
      Server.create ~kernel ~net ~addr:"bench.grid.edu:9094"
        ~owner_uid:owner.Account.uid ~export:"/tmp/bench" ~acceptor ~root_acl
        ~wal ~checkpoint_every:1_000_000 ()
    with
    | Ok s -> s
    | Error e -> failwith (Idbox_vfs.Errno.message e)
  in
  let cert = Ca.issue ca (Subject.of_string_exn "/O=Bench/CN=Writer") in
  let c =
    match
      Client.connect net ~addr:"bench.grid.edu:9094"
        ~credentials:[ Credential.Gsi cert ]
    with
    | Ok c -> c
    | Error m -> failwith m
  in
  for i = 0 to ops - 1 do
    match
      Client.put c ~path:(Printf.sprintf "/w%04d" i)
        ~data:(Printf.sprintf "payload-%04d" i)
    with
    | Ok () -> ()
    | Error e -> failwith (Idbox_vfs.Errno.message e)
  done;
  if ckpt then (
    match Server.checkpoint_now server with
    | Ok () -> ()
    | Error e -> failwith (Idbox_vfs.Errno.message e));
  let wal_records = Server.wal_records server in
  let m name = Metrics.counter_value_of (Kernel.metrics kernel) name in
  let replayed0 = m "chirp.recovery.replayed" in
  let torn0 = m "chirp.recovery.torn" in
  Server.crash server;
  let t0 = Clock.now clock in
  Server.restart server;
  let mttr_ns = Int64.to_float (Int64.sub (Clock.now clock) t0) in
  {
    rv_ops = ops;
    rv_ckpt = ckpt;
    rv_wal_records = wal_records;
    rv_replayed = m "chirp.recovery.replayed" - replayed0;
    rv_torn = m "chirp.recovery.torn" - torn0;
    rv_mttr_ms = mttr_ns /. 1e6;
  }

let repair_run ~divergence =
  let module Clock = Idbox_kernel.Clock in
  let module Metrics = Idbox_kernel.Metrics in
  let module Network = Idbox_net.Network in
  let module Fault = Idbox_net.Fault in
  let module Client = Idbox_chirp.Client in
  let module Server = Idbox_chirp.Server in
  let module World = Idbox_cluster.World in
  let module Router = Idbox_cluster.Router in
  let okv ctx = function
    | Ok v -> v
    | Error e -> failwith (ctx ^ ": " ^ Idbox_vfs.Errno.message e)
  in
  let w = World.create () in
  List.iter
    (fun h ->
      match World.add_node w ~host:h with
      | Ok () -> ()
      | Error m -> failwith m)
    [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ];
  World.settle w;
  let policy =
    { Client.default_policy with max_attempts = 12; retry_budget = 1_000_000 }
  in
  let r =
    match World.connect ~policy w ~credentials:[ World.issue w "Bench" ] with
    | Ok r -> r
    | Error m -> failwith m
  in
  let clock = World.clock w in
  let net = World.net w in
  (* Divergence size = distinct shard keys mutated behind the cut:
     repair work (digest checks, subtree pushes) is per key, so this is
     the axis convergence cost scales on. *)
  let dirs = List.init divergence (fun i -> Printf.sprintf "/r%02d" i) in
  let ndirs = List.length dirs in
  List.iter (fun d -> okv "mkdir" (Router.mkdir r d)) dirs;
  let put_round tag =
    List.iteri
      (fun di d ->
        for i = 0 to 3 do
          okv "put"
            (Router.put r
               ~path:(Printf.sprintf "%s/f%d" d i)
               ~data:(Printf.sprintf "%s-%02d-%d-%s" tag di i (String.make 200 'r')))
        done)
      dirs
  in
  put_round "base";
  let pct latencies p =
    let a = Array.of_list latencies in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (float_of_int n *. p)))
  in
  let read_latency i =
    let d = List.nth dirs (i mod ndirs) in
    let t0 = Clock.now clock in
    ignore (okv "get" (Router.get r (Printf.sprintf "%s/f%d" d (i mod 4))));
    Int64.to_float (Int64.sub (Clock.now clock) t0)
  in
  let calm = List.init 40 read_latency in
  (* Cut gamma off from its peers (client and catalog still reach it:
     membership stays stable, so divergence persists until anti-entropy
     finds it — no ejection, no rebalance safety net). *)
  let from_ns = Clock.now clock in
  let until_ns = Int64.add from_ns 30_000_000_000L in
  Network.set_fault_plan net
    (Fault.plan ~seed:11L
       ~partitions:
         [
           { Fault.from_ns; until_ns; between = ("gamma.grid.edu", "alpha.grid.edu") };
           { Fault.from_ns; until_ns; between = ("gamma.grid.edu", "beta.grid.edu") };
         ]
       ());
  put_round "diverged";
  (* Tick out the rest of the partition window: heartbeats stay alive
     (the catalog is reachable from everyone), so membership never
     churns, and in-partition repair attempts fail and re-note their
     keys.  Then heal: pending-set entries from the failed forwards
     make the first post-heal anti-entropy pass repair every diverged
     key, so convergence time is the simulated cost of shipping the
     authoritative subtrees. *)
  while
    Int64.compare (Int64.add (Clock.now clock) 1_000_000_000L) until_ns < 0
  do
    Clock.advance clock 1_000_000_000L;
    World.tick w
  done;
  (* Ticks can overshoot the window (a sweep's failed calls burn
     simulated timeouts), so only advance if the heal is still ahead. *)
  let rest = Int64.sub until_ns (Clock.now clock) in
  if Int64.compare rest 0L > 0 then Clock.advance clock rest;
  let t_heal = Clock.now clock in
  let pushes0 =
    Metrics.counter_value_of (Network.metrics net) "cluster.repair.push"
  in
  let converged () =
    List.for_all
      (fun d ->
        let key = String.sub d 1 (String.length d - 1) in
        let digests =
          List.filter_map
            (fun name ->
              match Server.subtree_digest (World.server w name) key with
              | Ok dg -> Some dg
              | Error _ -> None)
            (World.members w)
        in
        List.length digests >= World.replicas w
        && List.for_all (String.equal (List.hd digests)) digests)
      dirs
  in
  let converged_at = ref None in
  let during = ref [] in
  for step = 0 to 39 do
    Clock.advance clock 1_000_000_000L;
    World.tick w;
    if !converged_at = None && converged () then
      converged_at := Some (Clock.now clock);
    during := read_latency step :: !during
  done;
  (match !converged_at with
   | Some _ -> ()
   | None -> failwith "repair bench: replicas did not converge");
  let converge_ms =
    match !converged_at with
    | Some t -> Int64.to_float (Int64.sub t t_heal) /. 1e6
    | None -> -1.
  in
  {
    rp_divergence = divergence;
    rp_pushes =
      Metrics.counter_value_of (Network.metrics net) "cluster.repair.push"
      - pushes0;
    rp_converge_ms = converge_ms;
    rp_p95_calm_ms = pct calm 0.95 /. 1e6;
    rp_p95_repair_ms = pct !during 0.95 /. 1e6;
  }

let recovery_report () =
  {
    rec_replay =
      [
        replay_run ~ops:32 ~ckpt:false;
        replay_run ~ops:128 ~ckpt:false;
        replay_run ~ops:512 ~ckpt:false;
        replay_run ~ops:512 ~ckpt:true;
      ];
    rec_repair =
      List.map (fun d -> repair_run ~divergence:d) [ 2; 8; 32 ];
  }

let recovery_block () =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline
    "Recovery - WAL replay MTTR and anti-entropy repair convergence";
  print_endline (String.make 78 '=');
  let r = recovery_report () in
  Printf.printf "%6s %6s %12s %10s %6s %12s\n" "ops" "ckpt" "wal records"
    "replayed" "torn" "mttr (ms)";
  print_endline (String.make 58 '-');
  List.iter
    (fun row ->
      Printf.printf "%6d %6s %12d %10d %6d %12.3f\n" row.rv_ops
        (if row.rv_ckpt then "yes" else "no")
        row.rv_wal_records row.rv_replayed row.rv_torn row.rv_mttr_ms)
    r.rec_replay;
  print_newline ();
  Printf.printf "%10s %8s %14s %14s %14s\n" "divergence" "pushes"
    "converge (ms)" "p95 calm (ms)" "p95 repair(ms)";
  print_endline (String.make 66 '-');
  List.iter
    (fun row ->
      Printf.printf "%10d %8d %14.3f %14.3f %14.3f\n" row.rp_divergence
        row.rp_pushes row.rp_converge_ms row.rp_p95_calm_ms
        row.rp_p95_repair_ms)
    r.rec_repair

(* The cache ablation: the same warm ACL-heavy workload through three
   engine tiers — compiled-policy bytecode (perfect-hash decision
   program consulted at syscall entry), the generation-validated
   decision caches with bytecode pinned off, and caching off entirely
   (the pre-cache behaviour, and what the paper's Parrot pays: a
   revalidation lstat per check).  All phases are measured warm — one
   priming pass first — so the figure isolates steady-state cost, the
   cached tiers must clock {e zero} delegated syscalls, and the verdict
   transcripts of all three tiers must be byte-identical.  Plus the
   batched-RPC figure: 64 reads as 64 round trips vs. one [Batch]
   envelope.  All simulated and seeded: byte-identical across runs. *)
type cache_mode_row = {
  cm_mode : string;
  cm_checks : int;
  cm_ns_per_check : float;
  cm_total_ms : float;
  cm_delegated : int;  (* delegated syscalls during the measured phase *)
}

type cache_report = {
  cb_modes : cache_mode_row list;
  cb_speedup : float;  (* uncached simulated time / decision-cached *)
  cb_bc_speedup : float;  (* decision-cached simulated time / bytecode *)
  cb_verdicts_identical : bool;  (* transcripts equal across all tiers *)
  cb_acl_hits : int;
  cb_dec_hits : int;
  cb_name_hits : int;
  cb_bc_hits : int;
  cb_bc_stale : int;
  cb_bc_fallback : int;
  cb_bc_recompile : int;
  cb_lease_hits : int;
  cb_ops : int;
  cb_seq_msgs : int;
  cb_seq_ms : float;
  cb_batch_msgs : int;
  cb_batch_ms : float;
}

let cache_enforce_run ~mode =
  let module Kernel = Idbox_kernel.Kernel in
  let module Clock = Idbox_kernel.Clock in
  let module Metrics = Idbox_kernel.Metrics in
  let module Enforce = Idbox.Enforce in
  let module Acl = Idbox_acl.Acl in
  let module Entry = Idbox_acl.Entry in
  let module Rights = Idbox_acl.Rights in
  let module Right = Idbox_acl.Right in
  let kernel = Kernel.create () in
  let sup = Kernel.make_view kernel ~uid:0 () in
  let caching, bytecode =
    match mode with
    | `Bytecode -> (true, true)
    | `Cached -> (true, false)
    | `Uncached -> (false, false)
  in
  let enforce = Enforce.create ~caching ~bytecode kernel ~supervisor:sup () in
  let dirs = List.init 8 (fun i -> Printf.sprintf "/proj/d%d" i) in
  List.iter
    (fun dir ->
      (match Idbox_vfs.Fs.mkdir_p (Kernel.fs kernel) ~uid:0 dir with
       | Ok () -> ()
       | Error e -> failwith (Idbox_vfs.Errno.message e));
      let acl =
        Acl.of_entries
          (Entry.make ~pattern:"kerberos:*@BENCH.EDU"
             (Rights.of_string_exn "rl")
           :: List.init 4 (fun k ->
                  Entry.make
                    ~pattern:(Printf.sprintf "globus:/O=Bench/CN=user%d" k)
                    (Rights.of_string_exn "rwl")))
      in
      match Enforce.write_acl enforce ~dir acl with
      | Ok () -> ()
      | Error e -> failwith (Idbox_vfs.Errno.message e))
    dirs;
  let identities =
    List.map Idbox_identity.Principal.of_string
      [
        "globus:/O=Bench/CN=user0";
        "globus:/O=Bench/CN=user1";
        "globus:/O=Bench/CN=user2";
        "kerberos:alice@BENCH.EDU";
      ]
  in
  let rights = [ Right.Read; Right.Write; Right.List ] in
  let transcript = Buffer.create 512 in
  let pass ~record () =
    List.iter
      (fun dir ->
        List.iter
          (fun identity ->
            List.iter
              (fun right ->
                let v =
                  Enforce.check_object enforce ~identity
                    ~path:(dir ^ "/blob") right
                in
                if record then
                  Buffer.add_char transcript
                    (match v with Ok () -> 'A' | Error _ -> 'D'))
              rights)
          identities)
      dirs
  in
  pass ~record:false ();  (* prime every cache: the figure is the warm path *)
  let clock = Kernel.clock kernel in
  let rounds = 50 in
  let t0 = Clock.now clock in
  let d0 = (Kernel.stats kernel).Kernel.delegated in
  for _ = 1 to rounds do
    pass ~record:false ()
  done;
  let total_ns = Int64.to_float (Int64.sub (Clock.now clock) t0) in
  let checks = rounds * List.length dirs * List.length identities
               * List.length rights in
  (* One untimed recording pass: the verdict transcript the tiers must
     agree on, byte for byte. *)
  pass ~record:true ();
  let value name = Metrics.counter_value_of (Kernel.metrics kernel) name in
  ( {
      cm_mode =
        (match mode with
         | `Bytecode -> "bytecode"
         | `Cached -> "cached"
         | `Uncached -> "uncached");
      cm_checks = checks;
      cm_ns_per_check = total_ns /. float_of_int checks;
      cm_total_ms = total_ns /. 1e6;
      cm_delegated = (Kernel.stats kernel).Kernel.delegated - d0;
    },
    (value "acl.cache.hit", value "enforce.decision.hit",
     value "enforce.name.hit"),
    (value "kernel.bytecode.hit", value "kernel.bytecode.stale",
     value "kernel.bytecode.fallback", value "kernel.bytecode.recompile"),
    Buffer.contents transcript )

let cache_batch_run () =
  let module Kernel = Idbox_kernel.Kernel in
  let module Account = Idbox_kernel.Account in
  let module Clock = Idbox_kernel.Clock in
  let module Metrics = Idbox_kernel.Metrics in
  let module Network = Idbox_net.Network in
  let module Ca = Idbox_auth.Ca in
  let module Credential = Idbox_auth.Credential in
  let module Negotiate = Idbox_auth.Negotiate in
  let module Server = Idbox_chirp.Server in
  let module Client = Idbox_chirp.Client in
  let module Protocol = Idbox_chirp.Protocol in
  let module Subject = Idbox_identity.Subject in
  let clock = Clock.create () in
  let kernel = Kernel.create ~clock () in
  let net = Network.create ~clock () in
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> failwith m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"Bench CA" in
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  let root_acl =
    Idbox_acl.Acl.of_entries
      [
        Idbox_acl.Entry.make ~pattern:"globus:/O=Bench/*"
          (Idbox_acl.Rights.of_string_exn "rwl");
      ]
  in
  (match
     Server.create ~kernel ~net ~addr:"bench.grid.edu:9094"
       ~owner_uid:owner.Account.uid ~export:"/tmp/bench" ~acceptor ~root_acl ()
   with
  | Ok _ -> ()
  | Error e -> failwith (Idbox_vfs.Errno.message e));
  let cert = Ca.issue ca (Subject.of_string_exn "/O=Bench/CN=Reader") in
  let c =
    match
      Client.connect net ~addr:"bench.grid.edu:9094"
        ~credentials:[ Credential.Gsi cert ]
    with
    | Ok c -> c
    | Error m -> failwith m
  in
  let ops = 64 in
  let paths = List.init ops (fun i -> Printf.sprintf "/blob%02d" i) in
  List.iter
    (fun path ->
      match Client.put c ~path ~data:(String.make 256 'b') with
      | Ok () -> ()
      | Error e -> failwith (Idbox_vfs.Errno.message e))
    paths;
  (* Sequential: one round trip per read. *)
  let m0 = Network.total_messages net in
  let t0 = Clock.now clock in
  List.iter
    (fun path ->
      match Client.get c path with
      | Ok _ -> ()
      | Error e -> failwith (Idbox_vfs.Errno.message e))
    paths;
  let seq_msgs = Network.total_messages net - m0 in
  let seq_ms = Int64.to_float (Int64.sub (Clock.now clock) t0) /. 1e6 in
  (* Batched: the same reads in one envelope. *)
  let m1 = Network.total_messages net in
  let t1 = Clock.now clock in
  (match Client.batch c (List.map (fun p -> Protocol.Get p) paths) with
   | Ok rs when List.length rs = ops -> ()
   | Ok _ -> failwith "batch: wrong arity"
   | Error e -> failwith (Idbox_vfs.Errno.message e));
  let batch_msgs = Network.total_messages net - m1 in
  let batch_ms = Int64.to_float (Int64.sub (Clock.now clock) t1) /. 1e6 in
  (* And a lease hit: the second stat is served without a round trip. *)
  (match (Client.stat c "/blob00", Client.stat c "/blob00") with
   | Ok _, Ok _ -> ()
   | _ -> failwith "stat");
  let lease_hits =
    Metrics.counter_value_of (Network.metrics net) "chirp.lease.hit"
  in
  (ops, seq_msgs, seq_ms, batch_msgs, batch_ms, lease_hits)

let cache_report () =
  let bytecode, _, (bc_hits, bc_stale, bc_fallback, bc_recompile), bc_tx =
    cache_enforce_run ~mode:`Bytecode
  in
  let cached, (acl_hits, dec_hits, name_hits), _, cached_tx =
    cache_enforce_run ~mode:`Cached
  in
  let uncached, _, _, uncached_tx = cache_enforce_run ~mode:`Uncached in
  let ops, seq_msgs, seq_ms, batch_msgs, batch_ms, lease_hits =
    cache_batch_run ()
  in
  {
    cb_modes = [ bytecode; cached; uncached ];
    cb_speedup = uncached.cm_total_ms /. cached.cm_total_ms;
    cb_bc_speedup = cached.cm_total_ms /. bytecode.cm_total_ms;
    cb_verdicts_identical =
      String.equal bc_tx cached_tx && String.equal cached_tx uncached_tx
      && String.length bc_tx > 0;
    cb_acl_hits = acl_hits;
    cb_dec_hits = dec_hits;
    cb_name_hits = name_hits;
    cb_bc_hits = bc_hits;
    cb_bc_stale = bc_stale;
    cb_bc_fallback = bc_fallback;
    cb_bc_recompile = bc_recompile;
    cb_lease_hits = lease_hits;
    cb_ops = ops;
    cb_seq_msgs = seq_msgs;
    cb_seq_ms = seq_ms;
    cb_batch_msgs = batch_msgs;
    cb_batch_ms = batch_ms;
  }

let cache_block () =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline
    "Cache - compiled policy bytecode, generation caches, batched Chirp RPC";
  print_endline (String.make 78 '=');
  let r = cache_report () in
  Printf.printf "%10s %8s %14s %12s %10s\n" "mode" "checks" "ns/check"
    "total (ms)" "delegated";
  print_endline (String.make 58 '-');
  List.iter
    (fun m ->
      Printf.printf "%10s %8d %14.1f %12.3f %10d\n" m.cm_mode m.cm_checks
        m.cm_ns_per_check m.cm_total_ms m.cm_delegated)
    r.cb_modes;
  Printf.printf
    "warm speedup: cache vs uncached %.2fx, bytecode vs cache %.2fx   \
     verdicts identical: %b\n"
    r.cb_speedup r.cb_bc_speedup r.cb_verdicts_identical;
  Printf.printf
    "hits: acl %d, decision %d, name %d, lease %d   bytecode: hit %d, \
     stale %d, fallback %d, recompile %d\n"
    r.cb_acl_hits r.cb_dec_hits r.cb_name_hits r.cb_lease_hits r.cb_bc_hits
    r.cb_bc_stale r.cb_bc_fallback r.cb_bc_recompile;
  Printf.printf
    "batch rpc: %d reads  sequential %d msgs %.3f ms   batched %d msgs %.3f \
     ms  (%.0fx fewer messages)\n"
    r.cb_ops r.cb_seq_msgs r.cb_seq_ms r.cb_batch_msgs r.cb_batch_ms
    (float_of_int r.cb_seq_msgs /. float_of_int (max 1 r.cb_batch_msgs))

(* The cache figure as one JSON object — embedded in the full report
   and printed standalone by [bench cache --json] (the committed
   BENCH_cache.json, asserted by CI's bytecode-speedup smoke). *)
let cache_json_object () =
  let b = Buffer.create 1024 in
  let add = Buffer.add_string b in
  let cr = cache_report () in
  add "{\"enforce\":[";
  List.iteri
    (fun i m ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "{\"mode\":%S,\"checks\":%d,\"ns_per_check\":%.1f,\
            \"total_ms\":%.3f,\"delegated\":%d}"
           m.cm_mode m.cm_checks m.cm_ns_per_check m.cm_total_ms
           m.cm_delegated))
    cr.cb_modes;
  add
    (Printf.sprintf
       "],\"speedup\":%.2f,\"bytecode_speedup\":%.2f,\
        \"verdicts_identical\":%b,\"counters\":{\"acl_cache_hit\":%d,\
        \"decision_hit\":%d,\"name_hit\":%d,\"lease_hit\":%d,\
        \"bytecode_hit\":%d,\"bytecode_stale\":%d,\"bytecode_fallback\":%d,\
        \"bytecode_recompile\":%d},\
        \"batch\":{\"ops\":%d,\"seq_msgs\":%d,\"seq_ms\":%.3f,\
        \"batch_msgs\":%d,\"batch_ms\":%.3f}}"
       cr.cb_speedup cr.cb_bc_speedup cr.cb_verdicts_identical cr.cb_acl_hits
       cr.cb_dec_hits cr.cb_name_hits cr.cb_lease_hits cr.cb_bc_hits
       cr.cb_bc_stale cr.cb_bc_fallback cr.cb_bc_recompile cr.cb_ops
       cr.cb_seq_msgs cr.cb_seq_ms cr.cb_batch_msgs cr.cb_batch_ms);
  Buffer.contents b

let cache_json () =
  print_endline
    (Printf.sprintf "{\"schema\":\"idbox-bench-cache/1\",\n \"cache\":%s}"
       (cache_json_object ()))

(* The machine-readable block for BENCH_*.json trajectory tracking:
   run the representative boxed workload, print one JSON object. *)
(* Concurrent sessions: N authenticated clients all issue one small
   read at the same instant T0.  The blocking server serializes whole
   round trips — client k's exchange cannot even start until k-1's
   response has left — so latency grows linearly in N on both
   percentiles.  The event-driven server accepts every request as an
   event: the wire legs of all N exchanges overlap and only the
   per-request service time serializes on the node, so the makespan
   drops from N*(RTT+s) to RTT+N*s.  Setup (authentication) is
   untimed; the measured window is submission to last completion.
   Fully simulated and deterministic. *)
type sessions_row = {
  sn_sessions : int;
  sn_sync_kops : float;  (* completed sessions per simulated second, k *)
  sn_sync_p50_us : float;
  sn_sync_p95_us : float;
  sn_async_kops : float;
  sn_async_p50_us : float;
  sn_async_p95_us : float;
}

let sessions_run ~event_driven ~n =
  let module Kernel = Idbox_kernel.Kernel in
  let module Account = Idbox_kernel.Account in
  let module Clock = Idbox_kernel.Clock in
  let module Network = Idbox_net.Network in
  let module Ca = Idbox_auth.Ca in
  let module Credential = Idbox_auth.Credential in
  let module Negotiate = Idbox_auth.Negotiate in
  let module Server = Idbox_chirp.Server in
  let module Client = Idbox_chirp.Client in
  let module Protocol = Idbox_chirp.Protocol in
  let module Subject = Idbox_identity.Subject in
  let clock = Clock.create () in
  let kernel = Kernel.create ~clock () in
  let net = Network.create ~clock () in
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> failwith m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"Bench CA" in
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  let root_acl =
    Idbox_acl.Acl.of_entries
      [
        Idbox_acl.Entry.make ~pattern:"globus:/O=Bench/*"
          (Idbox_acl.Rights.of_string_exn "rwl");
      ]
  in
  (match
     Server.create ~kernel ~net ~addr:"bench.grid.edu:9094"
       ~owner_uid:owner.Account.uid ~export:"/tmp/bench" ~acceptor ~root_acl
       ~max_sessions:4096 ~event_driven ()
   with
  | Ok _ -> ()
  | Error e -> failwith (Idbox_vfs.Errno.message e));
  let connect k =
    let cert =
      Ca.issue ca (Subject.of_string_exn (Printf.sprintf "/O=Bench/CN=S%d" k))
    in
    match
      Client.connect
        ~src:(Printf.sprintf "host%d" k)
        net ~addr:"bench.grid.edu:9094"
        ~credentials:[ Credential.Gsi cert ]
    with
    | Ok c -> c
    | Error m -> failwith m
  in
  let seeder = connect (-1) in
  (match Client.put seeder ~path:"/blob" ~data:(String.make 256 'b') with
   | Ok () -> ()
   | Error e -> failwith (Idbox_vfs.Errno.message e));
  let clients = Array.init n connect in
  let payloads =
    Array.map (fun c -> Client.prepare c (Protocol.Get "/blob")) clients
  in
  let t0 = Clock.now clock in
  let latencies =
    if not event_driven then
      (* The blocking server: exchanges serialize end to end, so the
         k-th client's completion time already includes every earlier
         round trip — exactly what N simultaneous arrivals see. *)
      Array.map
        (fun payload ->
          match Network.call net ~addr:"bench.grid.edu:9094" payload with
          | Ok _ -> Int64.to_float (Int64.sub (Clock.now clock) t0)
          | Error e -> failwith (Idbox_vfs.Errno.message e))
        payloads
    else begin
      (* The event-driven server: all N exchanges are in flight before
         the first event runs. *)
      let tokens =
        Array.map
          (fun payload -> Network.submit net ~addr:"bench.grid.edu:9094" payload)
          payloads
      in
      Network.pump net;
      Array.map
        (fun tok ->
          match (Network.poll tok, Network.completed_at tok) with
          | Some (Ok _), Some at -> Int64.to_float (Int64.sub at t0)
          | Some (Error e), _ -> failwith (Idbox_vfs.Errno.message e)
          | _ -> failwith "sessions: exchange never completed")
        tokens
    end
  in
  let makespan_ns = Array.fold_left max 0.0 latencies in
  Array.sort compare latencies;
  let pct p = latencies.(min (n - 1) (int_of_float (float_of_int n *. p))) in
  ( float_of_int n /. (makespan_ns /. 1e9) /. 1e3,
    pct 0.50 /. 1e3,
    pct 0.95 /. 1e3 )

let sessions_rows () =
  List.map
    (fun n ->
      let sync_kops, sync_p50, sync_p95 =
        sessions_run ~event_driven:false ~n
      in
      let async_kops, async_p50, async_p95 =
        sessions_run ~event_driven:true ~n
      in
      {
        sn_sessions = n;
        sn_sync_kops = sync_kops;
        sn_sync_p50_us = sync_p50;
        sn_sync_p95_us = sync_p95;
        sn_async_kops = async_kops;
        sn_async_p50_us = async_p50;
        sn_async_p95_us = async_p95;
      })
    [ 8; 64; 256; 1024 ]

let sessions_block () =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline
    "Sessions - blocking vs event-driven server, N simultaneous arrivals";
  print_endline (String.make 78 '=');
  Printf.printf "%9s %12s %11s %11s %12s %11s %11s\n" "sessions" "sync kops"
    "p50 (us)" "p95 (us)" "async kops" "p50 (us)" "p95 (us)";
  print_endline (String.make 78 '-');
  List.iter
    (fun r ->
      Printf.printf "%9d %12.2f %11.1f %11.1f %12.2f %11.1f %11.1f\n"
        r.sn_sessions r.sn_sync_kops r.sn_sync_p50_us r.sn_sync_p95_us
        r.sn_async_kops r.sn_async_p50_us r.sn_async_p95_us)
    (sessions_rows ())

(* Elasticity: the control plane absorbing membership change under
   load, and graceful degradation under overload.

   Absorb: a cluster under a steady probe load has a node added (or
   removed); the figure is how much simulated time passes until reads
   are back under a fixed SLO *and* every shard is replicated at full
   factor with byte-identical digests on its owners.

   Goodput: one event-driven server whose batch tick drains a bounded
   number of operations (its engineered service rate) is offered 2x
   that rate.  With admission control (a small parked bound => brownout
   sheds the excess with retry-after hints) the queue stays short and
   every acknowledged mutation lands within the SLO.  Without it (a
   practically unbounded queue) every mutation is accepted, the backlog
   grows linearly, acks drift past the SLO and then past the client
   timeout — the server keeps doing work nobody is waiting for
   (counted as late replies).  Goodput is acknowledged-within-SLO
   operations per simulated second.  All simulated, all seeded:
   byte-identical across runs. *)
type elastic_absorb_row = {
  el_event : string;  (* "add" | "remove" *)
  el_nodes : string;  (* "3->4" *)
  el_p95_calm_ms : float;
  el_p95_absorb_ms : float;  (* read p95 over the absorption window *)
  el_absorb_ms : float;  (* time to SLO + full replication factor *)
}

type elastic_goodput_row = {
  eg_mode : string;  (* "shed" | "unshed" *)
  eg_offered : int;
  eg_acked : int;
  eg_in_slo : int;
  eg_shed : int;
  eg_timeout : int;
  eg_late : int;  (* acks after the client gave up: wasted work *)
  eg_goodput_ops : float;  (* in-SLO acks per simulated second *)
  eg_p95_ms : float;  (* over acknowledged mutations *)
}

let elastic_slo_ms = 5.0

let elastic_absorb_run ~event =
  let module Clock = Idbox_kernel.Clock in
  let module Client = Idbox_chirp.Client in
  let module Server = Idbox_chirp.Server in
  let module World = Idbox_cluster.World in
  let module Router = Idbox_cluster.Router in
  let module Replica = Idbox_cluster.Replica in
  let module Ring = Idbox_cluster.Ring in
  let okv ctx = function
    | Ok v -> v
    | Error e -> failwith (ctx ^ ": " ^ Idbox_vfs.Errno.message e)
  in
  let w = World.create () in
  let nodes = match event with "add" -> 3 | _ -> 4 in
  let hosts = List.init 4 (fun i -> Printf.sprintf "n%d.grid.edu" (i + 1)) in
  List.iteri
    (fun i h ->
      if i < nodes then
        match World.add_node w ~host:h with
        | Ok () -> ()
        | Error m -> failwith m)
    hosts;
  World.settle w;
  let policy =
    { Client.default_policy with Client.max_attempts = 8; retry_budget = 200 }
  in
  let r =
    match World.connect ~policy w ~credentials:[ World.issue w "Bench" ] with
    | Ok r -> r
    | Error m -> failwith m
  in
  let clock = World.clock w in
  let dirs = List.init 24 (fun i -> Printf.sprintf "/e%02d" i) in
  List.iter
    (fun d ->
      okv "mkdir" (Router.mkdir r d);
      okv "seed" (Router.put r ~path:(d ^ "/f") ~data:("seed" ^ d)))
    dirs;
  okv "mkdir churn" (Router.mkdir r "/churn");
  let read_round () =
    List.filteri (fun i _ -> i mod 3 = 0) dirs
    |> List.map (fun d ->
           let t0 = Clock.now clock in
           ignore (okv "get" (Router.get r (d ^ "/f")));
           Int64.to_float (Int64.sub (Clock.now clock) t0))
  in
  let pct latencies p =
    let a = Array.of_list latencies in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (float_of_int n *. p)))
  in
  let calm = List.concat (List.init 5 (fun _ -> read_round ())) in
  let p95_calm_ms = pct calm 0.95 /. 1e6 in
  (* The membership event, mid-load. *)
  (match event with
   | "add" ->
     (match World.add_node w ~host:(List.nth hosts 3) with
      | Ok () -> ()
      | Error m -> failwith m)
   | _ ->
     (match World.remove_node w "n4" with
      | Ok () -> ()
      | Error m -> failwith m));
  World.settle w;
  let t0 = Clock.now clock in
  let want = List.length (World.members w) in
  let converged () =
    let ring = Replica.ring (World.replica w (List.hd (World.members w))) in
    List.for_all
      (fun d ->
        let key = String.sub d 1 (String.length d - 1) in
        let holders =
          List.filter_map
            (fun name ->
              match Server.subtree_digest (World.server w name) key with
              | Ok dg -> Some (name, dg)
              | Error _ -> None)
            (World.members w)
        in
        let owners =
          Ring.successors ring key (min (World.replicas w) want)
        in
        List.for_all (fun o -> List.mem_assoc o holders) owners
        && (match holders with
            | [] -> false
            | (_, d0) :: rest ->
              List.for_all (fun (_, dg) -> String.equal d0 dg) rest))
      dirs
  in
  let during = ref [] in
  let absorbed_at = ref None in
  let step = ref 0 in
  while !absorbed_at = None && !step < 120 do
    incr step;
    Clock.advance clock 1_000_000_000L;
    World.tick w;
    Router.sync r;
    (* Keep load on the cluster while it reshapes: reads over the
       tracked shards, one write to a churn shard outside the digest
       check. *)
    okv "churn"
      (Router.put r ~path:"/churn/f" ~data:(Printf.sprintf "c%d" !step));
    let round = read_round () in
    during := round @ !during;
    let p95_ms = pct round 0.95 /. 1e6 in
    if
      List.length (Router.nodes r) = want
      && p95_ms <= elastic_slo_ms
      && converged ()
    then absorbed_at := Some (Clock.now clock)
  done;
  (match !absorbed_at with
   | Some _ -> ()
   | None -> failwith ("elastic absorb (" ^ event ^ "): never converged"));
  {
    el_event = event;
    el_nodes = Printf.sprintf "%d->%d" nodes want;
    el_p95_calm_ms = p95_calm_ms;
    el_p95_absorb_ms = pct !during 0.95 /. 1e6;
    el_absorb_ms =
      (match !absorbed_at with
       | Some t -> Int64.to_float (Int64.sub t t0) /. 1e6
       | None -> -1.);
  }

let elastic_goodput_run ~shed =
  let module Kernel = Idbox_kernel.Kernel in
  let module Account = Idbox_kernel.Account in
  let module Clock = Idbox_kernel.Clock in
  let module Metrics = Idbox_kernel.Metrics in
  let module Network = Idbox_net.Network in
  let module Ca = Idbox_auth.Ca in
  let module Credential = Idbox_auth.Credential in
  let module Negotiate = Idbox_auth.Negotiate in
  let module Server = Idbox_chirp.Server in
  let module Client = Idbox_chirp.Client in
  let module Protocol = Idbox_chirp.Protocol in
  let module Subject = Idbox_identity.Subject in
  let clock = Clock.create () in
  let kernel = Kernel.create ~clock () in
  let net = Network.create ~clock () in
  let owner =
    match Account.add (Kernel.accounts kernel) "chirpuser" with
    | Ok e -> e
    | Error m -> failwith m
  in
  Kernel.refresh_passwd kernel;
  let ca = Ca.create ~name:"Bench CA" in
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  let root_acl =
    Idbox_acl.Acl.of_entries
      [
        Idbox_acl.Entry.make ~pattern:"globus:/O=Bench/*"
          (Idbox_acl.Rights.of_string_exn "rwl");
      ]
  in
  (* Service rate: 8 ops per 50 ms tick (160 ops/s).  Offered: 16 ops
     per tick interval (320 ops/s) — a sustained 2x overload. *)
  let flush_ns = 50_000_000L in
  let drain = 8 in
  let per_round = 16 in
  let rounds = 40 in
  (match
     Server.create ~kernel ~net ~addr:"bench.grid.edu:9094"
       ~owner_uid:owner.Account.uid ~export:"/tmp/bench_elastic" ~acceptor
       ~root_acl ~event_driven:true ~flush_interval_ns:flush_ns
       ~flush_batch_limit:drain
       ~max_parked:(if shed then 2 * drain else 1_000_000)
       ()
   with
  | Ok _ -> ()
  | Error e -> failwith (Idbox_vfs.Errno.message e));
  let cert = Ca.issue ca (Subject.of_string_exn "/O=Bench/CN=Writer") in
  let c =
    match
      Client.connect net ~addr:"bench.grid.edu:9094"
        ~credentials:[ Credential.Gsi cert ]
    with
    | Ok c -> c
    | Error m -> failwith m
  in
  let t0 = Clock.now clock in
  let slo_ns = Int64.of_float (elastic_slo_ms *. 1e6 *. 40.) in
  (* 200 ms: 4 drain ticks *)
  let timeout_ns = 1_000_000_000L in
  let submissions = ref [] in
  for round = 0 to rounds - 1 do
    let round_end =
      Int64.add t0 (Int64.mul (Int64.of_int (round + 1)) flush_ns)
    in
    for k = 0 to per_round - 1 do
      let path = Printf.sprintf "/g%d_%d" round k in
      let tok =
        Network.submit net ~timeout_ns ~addr:"bench.grid.edu:9094"
          (Client.prepare c (Protocol.Put { path; data = "x" }))
      in
      submissions := (tok, Clock.now clock) :: !submissions
    done;
    (* Run the simulation up to the end of this offered-load interval. *)
    Network.at net round_end (fun () -> ());
    while
      Int64.compare (Clock.now clock) round_end < 0 && Network.step net
    do
      ()
    done
  done;
  (* Drain: let every in-flight exchange finish or time out. *)
  while Network.step net do
    ()
  done;
  let offered = rounds * per_round in
  let acked = ref 0 in
  let in_slo = ref 0 in
  let shed_n = ref 0 in
  let timeouts = ref 0 in
  let ack_lat = ref [] in
  List.iter
    (fun (tok, at) ->
      match Network.poll tok with
      | Some (Ok text) ->
        (match Client.interpret text with
         | Ok _ ->
           incr acked;
           (match Network.completed_at tok with
            | Some done_at ->
              let lat = Int64.sub done_at at in
              ack_lat := Int64.to_float lat :: !ack_lat;
              if Int64.compare lat slo_ns <= 0 then incr in_slo
            | None -> ())
         | Error Idbox_vfs.Errno.EAGAIN -> incr shed_n
         | Error _ -> ())
      | Some (Error Idbox_vfs.Errno.ETIMEDOUT) -> incr timeouts
      | Some (Error _) | None -> ())
    !submissions;
  let makespan_s = Int64.to_float (Int64.sub (Clock.now clock) t0) /. 1e9 in
  let p95 =
    match !ack_lat with
    | [] -> 0.
    | l ->
      let a = Array.of_list l in
      Array.sort compare a;
      a.(min (Array.length a - 1)
           (int_of_float (float_of_int (Array.length a) *. 0.95)))
  in
  {
    eg_mode = (if shed then "shed" else "unshed");
    eg_offered = offered;
    eg_acked = !acked;
    eg_in_slo = !in_slo;
    eg_shed = !shed_n;
    eg_timeout = !timeouts;
    eg_late =
      Metrics.counter_value_of (Network.metrics net)
        "net.late_reply.bench.grid.edu:9094";
    eg_goodput_ops = float_of_int !in_slo /. makespan_s;
    eg_p95_ms = p95 /. 1e6;
  }

let elastic_absorb_rows () =
  [ elastic_absorb_run ~event:"add"; elastic_absorb_run ~event:"remove" ]

let elastic_goodput_rows () =
  [ elastic_goodput_run ~shed:true; elastic_goodput_run ~shed:false ]

let elastic_block () =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline
    "Elasticity - absorbing membership change under load; goodput under \
     overload";
  print_endline (String.make 78 '=');
  Printf.printf "%8s %8s %14s %15s %13s\n" "event" "nodes" "p95 calm (ms)"
    "p95 absorb(ms)" "absorb (ms)";
  print_endline (String.make 62 '-');
  List.iter
    (fun row ->
      Printf.printf "%8s %8s %14.3f %15.3f %13.1f\n" row.el_event row.el_nodes
        row.el_p95_calm_ms row.el_p95_absorb_ms row.el_absorb_ms)
    (elastic_absorb_rows ());
  print_newline ();
  Printf.printf "%7s %8s %7s %7s %6s %8s %6s %13s %9s\n" "mode" "offered"
    "acked" "in-SLO" "shed" "timeout" "late" "goodput ops/s" "p95 (ms)";
  print_endline (String.make 78 '-');
  List.iter
    (fun row ->
      Printf.printf "%7s %8d %7d %7d %6d %8d %6d %13.1f %9.1f\n" row.eg_mode
        row.eg_offered row.eg_acked row.eg_in_slo row.eg_shed row.eg_timeout
        row.eg_late row.eg_goodput_ops row.eg_p95_ms)
    (elastic_goodput_rows ())

(* Delegation: the cost of certified chains.  (a) Chain-validation
   ns/hop, cold (one chain_hop_ns charge per hop) vs warm through the
   generation-validated memo (one gen_check_ns, independent of length).
   (b) Delegated vs direct exec throughput on a 3-node cluster: the
   same program run by its owner directly and by a two-hop delegatee
   under attenuated identity.  Fully simulated and deterministic. *)
type deleg_chain_row = {
  dc_hops : int;
  dc_cold_ns : float;  (* whole-chain cold validation *)
  dc_cold_ns_per_hop : float;
  dc_warm_ns : float;  (* per warm validation: one generation check *)
  dc_warm_speedup : float;
}

type deleg_report = {
  dl_chain : deleg_chain_row list;
  dl_ops : int;
  dl_direct_ms : float;
  dl_direct_kops : float;  (* execs per simulated second, k *)
  dl_deleg_ms : float;
  dl_deleg_kops : float;
  dl_overhead : float;  (* delegated time / direct time *)
}

let delegation_chain_rows () =
  let module Kernel = Idbox_kernel.Kernel in
  let module Clock = Idbox_kernel.Clock in
  let module Enforce = Idbox.Enforce in
  let module Ca = Idbox_auth.Ca in
  let module Delegation = Idbox_auth.Delegation in
  let kernel = Kernel.create () in
  let sup = Kernel.make_view kernel ~uid:0 () in
  let enforce = Enforce.create kernel ~supervisor:sup () in
  let clock = Kernel.clock kernel in
  let ca = Ca.create ~name:"Bench CA" in
  let revocations = Delegation.Revocations.create () in
  let principal i = Printf.sprintf "globus:/O=Bench/CN=hop%02d" i in
  let chain_of hops =
    List.init hops (fun i ->
        Delegation.mint ca ~delegator:(principal i)
          ~delegatee:(principal (i + 1))
          ~rights:(Idbox_acl.Rights.of_string_exn "rwl")
          ~prefix:"/" ~now:0L ~ttl_ns:3_600_000_000_000L ~hops:16 ())
  in
  List.map
    (fun hops ->
      let chain = chain_of hops in
      let holder = principal hops in
      let admit () =
        match
          Enforce.admit_chain enforce ~trusted:[ ca ] ~revocations
            ~now:(Clock.now clock) ~holder chain
        with
        | Ok _ -> ()
        | Error f -> failwith (Delegation.failure_message f)
      in
      let t0 = Clock.now clock in
      admit ();
      let cold_ns = Int64.to_float (Int64.sub (Clock.now clock) t0) in
      let warm_rounds = 100 in
      let t1 = Clock.now clock in
      for _ = 1 to warm_rounds do
        admit ()
      done;
      let warm_ns =
        Int64.to_float (Int64.sub (Clock.now clock) t1)
        /. float_of_int warm_rounds
      in
      {
        dc_hops = hops;
        dc_cold_ns = cold_ns;
        dc_cold_ns_per_hop = cold_ns /. float_of_int hops;
        dc_warm_ns = warm_ns;
        dc_warm_speedup = cold_ns /. warm_ns;
      })
    [ 1; 2; 4; 8 ]

let delegation_exec_run () =
  let module Kernel = Idbox_kernel.Kernel in
  let module Clock = Idbox_kernel.Clock in
  let module Program = Idbox_kernel.Program in
  let module World = Idbox_cluster.World in
  let module Router = Idbox_cluster.Router in
  Kernel.with_fresh_programs (fun () ->
      let w = World.create () in
      List.iter
        (fun h ->
          match World.add_node w ~host:h with
          | Ok _ -> ()
          | Error m -> failwith m)
        [ "a.grid.edu"; "b.grid.edu"; "c.grid.edu" ];
      World.settle w;
      Program.register "noop" (fun _ -> 0);
      let connect cn =
        match World.connect w ~credentials:[ World.issue w cn ] with
        | Ok r -> r
        | Error m -> failwith m
      in
      let ra = connect "Alice" in
      (match Router.mkdir ra "/work" with
       | Ok () -> ()
       | Error e -> failwith (Idbox_vfs.Errno.message e));
      (match
         Router.put ra ~path:"/work/noop.exe" ~data:(Program.marker "noop")
       with
       | Ok () -> ()
       | Error e -> failwith (Idbox_vfs.Errno.message e));
      let rights = Idbox_acl.Rights.of_string_exn in
      let chain =
        [
          World.delegate w ~delegator:"Alice" ~delegatee:"Bob"
            ~rights:(rights "rxl") ~prefix:"/work" ();
          World.delegate w ~delegator:"Bob" ~delegatee:"Carol"
            ~rights:(rights "rx") ~prefix:"/work" ();
        ]
      in
      let rc = connect "Carol" in
      let clock = World.clock w in
      let ops = 64 in
      let run label f =
        let t0 = Clock.now clock in
        for _ = 1 to ops do
          match f () with
          | Ok 0 -> ()
          | Ok n -> failwith (Printf.sprintf "%s: exit %d" label n)
          | Error e -> failwith (label ^ ": " ^ Idbox_vfs.Errno.message e)
        done;
        Int64.to_float (Int64.sub (Clock.now clock) t0) /. 1e6
      in
      let direct_ms =
        run "direct" (fun () ->
            Router.exec ra ~path:"/work/noop.exe" ~args:[ "noop.exe" ] ())
      in
      let deleg_ms =
        run "delegated" (fun () ->
            Router.exec_delegated rc ~chain ~path:"/work/noop.exe"
              ~args:[ "noop.exe" ] ())
      in
      (ops, direct_ms, deleg_ms))

let delegation_report () =
  let chain = delegation_chain_rows () in
  let ops, direct_ms, deleg_ms = delegation_exec_run () in
  let kops ms = float_of_int ops /. ms in
  {
    dl_chain = chain;
    dl_ops = ops;
    dl_direct_ms = direct_ms;
    dl_direct_kops = kops direct_ms;
    dl_deleg_ms = deleg_ms;
    dl_deleg_kops = kops deleg_ms;
    dl_overhead = deleg_ms /. direct_ms;
  }

let delegation_block () =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline
    "Delegation - chain-validation memo + delegated vs direct exec";
  print_endline (String.make 78 '=');
  let r = delegation_report () in
  Printf.printf "%6s %12s %14s %14s %13s\n" "hops" "cold (ns)" "cold ns/hop"
    "warm (ns)" "warm speedup";
  print_endline (String.make 62 '-');
  List.iter
    (fun row ->
      Printf.printf "%6d %12.0f %14.0f %14.0f %12.1fx\n" row.dc_hops
        row.dc_cold_ns row.dc_cold_ns_per_hop row.dc_warm_ns
        row.dc_warm_speedup)
    r.dl_chain;
  Printf.printf
    "exec: %d ops  direct %.3f ms (%.2f kops/s)   2-hop delegated %.3f ms \
     (%.2f kops/s)  overhead %.2fx\n"
    r.dl_ops r.dl_direct_ms r.dl_direct_kops r.dl_deleg_ms r.dl_deleg_kops
    r.dl_overhead

let metrics_block () =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline "Metrics - kernel-wide registry after the representative workload";
  print_endline (String.make 78 '=');
  let kernel = Idbox_report.Report.metrics_workload () in
  print_endline (Idbox_report.Report.metrics_json kernel)

(* The deterministic machine-readable report (schema idbox-bench/7):
   every simulated figure — resilience, cluster scaling, recovery,
   concurrent sessions, delegation, the metrics registry — and nothing host-timed
   (Bechamel stays human-only), so two runs on any machines are
   byte-identical. *)
let json_report () =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add "{\"schema\":\"idbox-bench/7\",\n \"resilience\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",\n   ";
      add
        (Printf.sprintf
           "{\"drop\":%.2f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"retries\":%d,\
            \"drops\":%d}"
           r.rr_drop r.rr_p50_ms r.rr_p95_ms r.rr_retries r.rr_drops))
    (resilience_rows ());
  add "],\n \"cluster_scaling\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",\n   ";
      add
        (Printf.sprintf
           "{\"nodes\":%d,\"drop\":%.2f,\"ops\":%d,\"p50_ms\":%.3f,\
            \"p95_ms\":%.3f,\"kops_per_s\":%.1f,\"speedup\":%.2f,\
            \"failovers\":%d,\"drops\":%d}"
           r.cr_nodes r.cr_drop r.cr_ops r.cr_p50_ms r.cr_p95_ms
           r.cr_tput_kops r.cr_speedup r.cr_failovers r.cr_drops))
    (cluster_rows ());
  add "],\n \"recovery\":";
  let rr = recovery_report () in
  add "{\"replay\":[";
  List.iteri
    (fun i row ->
      if i > 0 then add ",\n   ";
      add
        (Printf.sprintf
           "{\"ops\":%d,\"checkpoint\":%b,\"wal_records\":%d,\
            \"replayed\":%d,\"torn\":%d,\"mttr_ms\":%.3f}"
           row.rv_ops row.rv_ckpt row.rv_wal_records row.rv_replayed
           row.rv_torn row.rv_mttr_ms))
    rr.rec_replay;
  add "],\n  \"repair\":[";
  List.iteri
    (fun i row ->
      if i > 0 then add ",\n   ";
      add
        (Printf.sprintf
           "{\"divergence\":%d,\"pushes\":%d,\"converge_ms\":%.3f,\
            \"p95_calm_ms\":%.3f,\"p95_repair_ms\":%.3f}"
           row.rp_divergence row.rp_pushes row.rp_converge_ms
           row.rp_p95_calm_ms row.rp_p95_repair_ms))
    rr.rec_repair;
  add "]}";
  add ",\n \"cache\":";
  add (cache_json_object ());
  add ",\n \"sessions\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",\n   ";
      add
        (Printf.sprintf
           "{\"sessions\":%d,\"sync_kops\":%.3f,\"sync_p50_us\":%.1f,\
            \"sync_p95_us\":%.1f,\"async_kops\":%.3f,\"async_p50_us\":%.1f,\
            \"async_p95_us\":%.1f}"
           r.sn_sessions r.sn_sync_kops r.sn_sync_p50_us r.sn_sync_p95_us
           r.sn_async_kops r.sn_async_p50_us r.sn_async_p95_us))
    (sessions_rows ());
  add "],\n \"elastic\":{\"slo_ms\":";
  add (Printf.sprintf "%.1f" elastic_slo_ms);
  add ",\"absorb\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",\n   ";
      add
        (Printf.sprintf
           "{\"event\":%S,\"nodes\":%S,\"p95_calm_ms\":%.3f,\
            \"p95_absorb_ms\":%.3f,\"absorb_ms\":%.1f}"
           r.el_event r.el_nodes r.el_p95_calm_ms r.el_p95_absorb_ms
           r.el_absorb_ms))
    (elastic_absorb_rows ());
  add "],\"goodput\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",\n   ";
      add
        (Printf.sprintf
           "{\"mode\":%S,\"offered\":%d,\"acked\":%d,\"in_slo\":%d,\
            \"shed\":%d,\"timeout\":%d,\"late\":%d,\"goodput_ops\":%.1f,\
            \"p95_ms\":%.1f}"
           r.eg_mode r.eg_offered r.eg_acked r.eg_in_slo r.eg_shed
           r.eg_timeout r.eg_late r.eg_goodput_ops r.eg_p95_ms))
    (elastic_goodput_rows ());
  add "]},\n \"delegation\":{\"chain\":[";
  let dr = delegation_report () in
  List.iteri
    (fun i row ->
      if i > 0 then add ",\n   ";
      add
        (Printf.sprintf
           "{\"hops\":%d,\"cold_ns\":%.0f,\"cold_ns_per_hop\":%.0f,\
            \"warm_ns\":%.0f,\"warm_speedup\":%.1f}"
           row.dc_hops row.dc_cold_ns row.dc_cold_ns_per_hop row.dc_warm_ns
           row.dc_warm_speedup))
    dr.dl_chain;
  add
    (Printf.sprintf
       "],\"exec\":{\"ops\":%d,\"direct_ms\":%.3f,\"direct_kops\":%.3f,\
        \"delegated_ms\":%.3f,\"delegated_kops\":%.3f,\"overhead\":%.2f}}"
       dr.dl_ops dr.dl_direct_ms dr.dl_direct_kops dr.dl_deleg_ms
       dr.dl_deleg_kops dr.dl_overhead);
  add ",\n \"metrics\":";
  add
    (Idbox_report.Report.metrics_json (Idbox_report.Report.metrics_workload ()));
  add "}";
  print_endline (Buffer.contents b)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let json = List.mem "--json" args in
  let scale = if full then 1.0 else 0.1 in
  let figures = List.filter (fun a -> a <> "--full" && a <> "--json") args in
  match figures with
  | [] when json -> json_report ()
  | [] ->
    Idbox_report.Report.all ~scale ();
    bechamel_suite ();
    resilience_block ();
    cluster_block ();
    recovery_block ();
    cache_block ();
    sessions_block ();
    elastic_block ();
    delegation_block ();
    metrics_block ()
  | names ->
    List.iter
      (fun name ->
        match name with
        | "fig1" -> Idbox_report.Report.fig1 ()
        | "fig2" -> Idbox_report.Report.fig2 ()
        | "fig3" -> Idbox_report.Report.fig3 ()
        | "fig4" -> Idbox_report.Report.fig4 ()
        | "fig5a" -> Idbox_report.Report.fig5a ()
        | "fig5b" -> Idbox_report.Report.fig5b ~scale ()
        | "fig6" -> Idbox_report.Report.fig6 ()
        | "ablation" | "ablations" -> Idbox_report.Report.ablations ()
        | "bechamel" -> bechamel_suite ()
        | "resilience" -> resilience_block ()
        | "cluster" | "scaling" -> cluster_block ()
        | "recovery" -> recovery_block ()
        | "cache" | "caches" -> if json then cache_json () else cache_block ()
        | "sessions" -> sessions_block ()
        | "elastic" -> elastic_block ()
        | "delegation" -> delegation_block ()
        | "metrics" -> metrics_block ()
        | other ->
          Printf.eprintf
            "unknown artifact %S (try fig1 fig2 fig3 fig4 fig5a fig5b fig6 \
             ablation bechamel resilience cluster recovery cache sessions \
             elastic delegation metrics)\n"
            other;
          exit 2)
      names
