(** The identity-aware cluster router: the {!Idbox_chirp.Client} API
    over a sharded, replicated set of Chirp servers.

    The router discovers servers from the catalog, authenticates to
    {e each} shard with the caller's own kept credentials, and routes
    every call by its path's shard key over a consistent-hash ring.
    The paper's consistency-of-identity invariant is enforced
    cluster-wide: if two shards negotiate {e different} principals for
    the same credentials, the router refuses to proceed ([EPERM],
    counted as [cluster.identity.mismatch]) — one global identity, or
    no service.  Reads fail over between a shard's replicas on
    transport faults (hedged, counted as [cluster.failover]); writes go
    to the primary, whose server-side hook fans them out (see
    {!Replica}).  When a primary is unreachable, the router re-reads
    the catalog, rebalances the affected ranges, and retries once on
    the new ring ([cluster.route.retry]).

    A hedged read that succeeds only after failing over also sends the
    key's primary an untrusted repair {e hint}
    ([cluster.read_repair.hint]): some copy of that key is unreachable
    or behind, so the primary schedules a digest check of its replicas
    (see {!Repair}).  The hint carries no data — the primary verifies
    divergence itself — so the router never becomes a write path.

    Every routing decision is counted ([cluster.route],
    [cluster.route.<node>]) and spanned in the trace ring when one is
    attached.  The consistent-hash lookup itself is served from a route
    cache keyed by shard key and validated against the membership
    generation — flushed whole on any epoch change or rebalance
    ([cluster.route.cache.hit] / [.miss] / [.flush]); metrics and spans
    fire identically either way. *)

type t

type 'a r := ('a, Idbox_vfs.Errno.t) result

val connect :
  ?src:string ->
  ?policy:Idbox_chirp.Client.retry_policy ->
  ?replicas:int ->
  ?vnodes:int ->
  ?hedge_ns:int64 ->
  ?trace:Idbox_kernel.Trace.ring ->
  Idbox_net.Network.t ->
  catalog:string ->
  credentials:Idbox_auth.Credential.t list ->
  (t, string) result
(** Discover the membership from [catalog], authenticate to every
    member, and verify the negotiated principal is identical
    everywhere.  Fails when the catalog is unreachable, no servers are
    advertised, or the identity invariant does not hold.  [replicas]
    (default 2) and [vnodes] (default 64) must match the values the
    nodes were attached with.

    [hedge_ns], when given, turns reads into {e concurrently} hedged
    exchanges: the prepared request ({!Idbox_chirp.Client.prepare})
    goes to the key's primary immediately, and if no answer has
    arrived [hedge_ns] later the identical read launches on the next
    replica ([cluster.hedge.launched]) — first success wins.  The
    losing leg is abandoned, never cancelled: its reply is discarded
    when it straggles in ([cluster.hedge.late]) and balances the
    in-flight gauge exactly once.  Anything the hedged path cannot
    settle — no negotiated session yet, a stale token — falls back to
    the serial failover sweep.  Without [hedge_ns] reads fail over
    serially, as before. *)

val principal : t -> string
(** The single cluster-wide principal, verified across all shards. *)

val nodes : t -> string list
(** Current ring members, sorted. *)

val node_for : t -> string -> string option
(** The node name a path currently routes to (its primary). *)

val sync : t -> unit
(** Re-read the catalog; on membership change, rebuild the ring and
    migrate only the affected key ranges (see {!Replica.rebalance}).
    Cheap when nothing changed.  Callers drive this at their own
    cadence — the simulated world has no background threads. *)

val routes : t -> int
(** Routing decisions made so far. *)

val failovers : t -> int
(** Hedged read failovers so far. *)

val inflight : t -> int
(** Hedge legs currently in flight (including abandoned losers whose
    replies have not yet been reaped).  Returns to [0] once the world
    quiesces and {!reap} has observed every straggler. *)

val reap : t -> unit
(** Observe abandoned hedge legs that have completed since: their
    replies are discarded ([cluster.hedge.late]) and the in-flight
    gauge balanced.  Runs implicitly at the head of every read; tests
    call it after pumping the network to assert quiescence. *)

(** {1 The Chirp client API, routed} *)

val mkdir : t -> string -> unit r
val rmdir : t -> string -> unit r
val unlink : t -> string -> unit r
val put : t -> path:string -> data:string -> unit r
val get : t -> string -> string r
val stat : t -> string -> Idbox_chirp.Protocol.wire_stat r
val readdir : t -> string -> string list r
val getacl : t -> string -> string r
val setacl : t -> path:string -> entry:string -> unit r

val rename : t -> src:string -> dst:string -> unit r
(** Within one shard only: a cross-shard rename answers [EXDEV], as a
    cross-device rename would on Unix. *)

val exec : t -> ?cwd:string -> path:string -> args:string list -> unit -> int r
(** Routed by the program's path; [cwd] (default the program's
    directory) must shard with it, else [EXDEV]. *)

val exec_delegated :
  t ->
  chain:Idbox_auth.Delegation.chain ->
  ?cwd:string ->
  path:string ->
  args:string list ->
  unit ->
  int r
(** {!exec} under a delegation chain: routed like [exec], validated by
    the primary, and replicated with the chain inside the operation so
    every owner revalidates against its own revocation view.  This is
    how node B submits delegated work to node C — the router picks the
    shard, the chain carries the authority.
    Counter: [cluster.delegated_exec]. *)

val revoke : t -> string -> int r
(** Bump the named delegator's revocation epoch cluster-wide.  Routed
    to the root-key primary and fanned to every member by the
    server-side replication hook (root-key state, like the export
    root's ACL); members cut off by a partition converge later via
    {!Repair.gossip_epochs}.  Returns the primary's new epoch. *)

val delegation_epoch : t -> string -> int r
(** The root-key primary's current revocation epoch for the named
    delegator. *)

val checksum : t -> string -> string r
val whoami : t -> string r
