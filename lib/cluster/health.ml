module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Trace = Idbox_kernel.Trace
module Server = Idbox_chirp.Server

type level = Healthy | Degraded | Unhealthy

let level_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Unhealthy -> "unhealthy"

type sample = {
  s_queue_pct : int;
  s_session_pct : int;
  s_brownout : bool;
  s_error_pct : int;
  s_hb_age_pct : int;
  s_p95_slo_pct : int;
}

let idle_sample =
  {
    s_queue_pct = 0;
    s_session_pct = 0;
    s_brownout = false;
    s_error_pct = 0;
    s_hb_age_pct = 0;
    s_p95_slo_pct = 0;
  }

(* A sample straight off a server's own gauges: queue and session-table
   fullness plus the brownout flag.  Error rate, heartbeat age and
   latency are the watcher's to supply — they live in different places
   (metric deltas, the membership view, a bench's own histogram). *)
let sample_server ?(error_pct = 0) ?(hb_age_pct = 0) ?(p95_slo_pct = 0) server
    =
  {
    s_queue_pct =
      (Server.parked_ops server * 100) / max 1 (Server.max_parked server);
    s_session_pct =
      (Server.session_count server * 100) / max 1 (Server.max_sessions server);
    s_brownout = Server.brownout server;
    s_error_pct = error_pct;
    s_hb_age_pct = hb_age_pct;
    s_p95_slo_pct = p95_slo_pct;
  }

type config = {
  ewma_weight : int;
  healthy_enter : int;
  healthy_exit : int;
  unhealthy_enter : int;
  unhealthy_exit : int;
}

let default_config =
  {
    ewma_weight = 4;
    healthy_enter = 70;
    healthy_exit = 60;
    unhealthy_enter = 35;
    unhealthy_exit = 45;
  }

type node = {
  mutable nd_score : int;  (* EWMA-smoothed, 0..100 *)
  mutable nd_level : level;
  mutable nd_samples : int;
}

type t = {
  h_config : config;
  h_metrics : Metrics.t;
  h_clock : Clock.t;
  h_trace : Trace.ring option;
  h_nodes : (string, node) Hashtbl.t;
}

let create ?(config = default_config) ?trace ~clock ~metrics () =
  {
    h_config = config;
    h_metrics = metrics;
    h_clock = clock;
    h_trace = trace;
    h_nodes = Hashtbl.create 8;
  }

let metric t name = Metrics.incr (Metrics.counter t.h_metrics name)

let span t ~name ~verdict =
  match t.h_trace with
  | None -> ()
  | Some ring ->
    Trace.span ring ~time:(Clock.now t.h_clock) ~pid:0 ~identity:name
      ~syscall:"cluster.health" ~verdict ~cost_ns:0L

let clamp lo hi v = max lo (min hi v)

(* The raw (un-smoothed) score of one sample: start from 100 and charge
   each pressure signal its own bounded penalty, so no single noisy
   signal can swing the node across both thresholds alone — the queue
   and error penalties dominate (they are what shedding responds to),
   liveness and latency shade the rest. *)
let raw_score s =
  if s.s_hb_age_pct >= 100 then 0  (* lease exhausted: the node is gone *)
  else begin
    let queue = s.s_queue_pct * 35 / 100 in
    let sessions = clamp 0 15 ((s.s_session_pct - 50) * 15 / 50) in
    let brown = if s.s_brownout then 25 else 0 in
    let errors = clamp 0 30 (s.s_error_pct * 30 / 100) in
    let hb = s.s_hb_age_pct * 20 / 100 in
    let lat = clamp 0 25 ((s.s_p95_slo_pct - 100) * 25 / 200) in
    clamp 0 100 (100 - queue - sessions - brown - errors - hb - lat)
  end

(* Dual-threshold hysteresis: a level is left only through the {e far}
   edge of its band (fall below [healthy_exit] to stop being healthy,
   climb to [healthy_enter] to become healthy again), so a score
   oscillating around one threshold cannot flap the level. *)
let reclassify c level score =
  match level with
  | Healthy -> if score < c.healthy_exit then Degraded else Healthy
  | Degraded ->
    if score >= c.healthy_enter then Healthy
    else if score < c.unhealthy_enter then Unhealthy
    else Degraded
  | Unhealthy -> if score >= c.unhealthy_exit then Degraded else Unhealthy

let observe t ~name sample =
  metric t "cluster.health.sample";
  let raw = raw_score sample in
  let nd =
    match Hashtbl.find_opt t.h_nodes name with
    | Some nd -> nd
    | None ->
      (* A node starts where its first sample puts it — no warm-up
         grace that would hide a node born into overload. *)
      let nd =
        { nd_score = raw;
          nd_level = reclassify t.h_config Healthy raw;
          nd_samples = 0 }
      in
      Hashtbl.replace t.h_nodes name nd;
      nd
  in
  let w = max 1 t.h_config.ewma_weight in
  nd.nd_score <- ((nd.nd_score * (w - 1)) + raw) / w;
  nd.nd_samples <- nd.nd_samples + 1;
  let next = reclassify t.h_config nd.nd_level nd.nd_score in
  if next <> nd.nd_level then begin
    metric t
      (if next > nd.nd_level then "cluster.health.down"
       else "cluster.health.up");
    span t ~name
      ~verdict:
        (Printf.sprintf "%s->%s score=%d" (level_name nd.nd_level)
           (level_name next) nd.nd_score);
    nd.nd_level <- next
  end;
  nd.nd_score

let score t name =
  match Hashtbl.find_opt t.h_nodes name with
  | Some nd -> nd.nd_score
  | None -> 100

let samples t name =
  match Hashtbl.find_opt t.h_nodes name with
  | Some nd -> nd.nd_samples
  | None -> 0

let level t name =
  match Hashtbl.find_opt t.h_nodes name with
  | Some nd -> nd.nd_level
  | None -> Healthy

let forget t name = Hashtbl.remove t.h_nodes name

let nodes t =
  Hashtbl.fold (fun name nd acc -> (name, nd.nd_score, nd.nd_level) :: acc)
    t.h_nodes []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* Aggregate cluster health: the mean smoothed score over known nodes
   (100 when none are known yet — an empty cluster is not an emergency,
   it is the autoscaler's min-envelope's business). *)
let aggregate t =
  let n, sum =
    Hashtbl.fold (fun _ nd (n, sum) -> (n + 1, sum + nd.nd_score)) t.h_nodes
      (0, 0)
  in
  if n = 0 then 100 else sum / n
