type t = {
  rg_vnodes : int;
  rg_nodes : string list;  (* sorted, unique *)
  points : (int64 * string) array;  (* sorted by (unsigned hash, name) *)
}

(* First 8 bytes of the MD5, big-endian, treated as an unsigned 64-bit
   position on the circle.  Deterministic across runs and processes —
   [Hashtbl.hash] would be too, but MD5 mixes far better over the short
   similar strings (node names, path prefixes) we hash. *)
let key_hash s =
  let d = Digest.string s in
  let b = Bytes.of_string d in
  Bytes.get_int64_be b 0

let compare_points (h1, n1) (h2, n2) =
  match Int64.unsigned_compare h1 h2 with
  | 0 -> String.compare n1 n2
  | c -> c

let build vnodes names =
  let nodes = List.sort_uniq String.compare names in
  let points =
    Array.of_list
      (List.concat_map
         (fun node ->
           List.init vnodes (fun i ->
               (key_hash (Printf.sprintf "%s#%d" node i), node)))
         nodes)
  in
  Array.sort compare_points points;
  { rg_vnodes = vnodes; rg_nodes = nodes; points }

let create ?(vnodes = 64) names = build (max 1 vnodes) names

let nodes t = t.rg_nodes
let vnodes t = t.rg_vnodes
let is_empty t = t.rg_nodes = []

let add t node =
  if List.mem node t.rg_nodes then t
  else build t.rg_vnodes (node :: t.rg_nodes)

let remove t node =
  if List.mem node t.rg_nodes then
    build t.rg_vnodes (List.filter (fun n -> not (String.equal n node)) t.rg_nodes)
  else t

(* Index of the first point at or clockwise from [h], wrapping. *)
let first_at_or_after t h =
  let n = Array.length t.points in
  let rec bsearch lo hi =
    (* invariant: points.(lo-1) < h <= points.(hi), hi may be n *)
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      let mh, _ = t.points.(mid) in
      if Int64.unsigned_compare mh h < 0 then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  let i = bsearch 0 n in
  if i = n then 0 else i

let lookup t key =
  if is_empty t then None
  else
    let i = first_at_or_after t (key_hash key) in
    Some (snd t.points.(i))

let successors t key n =
  if is_empty t || n <= 0 then []
  else begin
    let len = Array.length t.points in
    let start = first_at_or_after t (key_hash key) in
    let want = min n (List.length t.rg_nodes) in
    let rec collect i seen acc =
      if List.length acc >= want || i >= len then List.rev acc
      else
        let _, node = t.points.((start + i) mod len) in
        if List.mem node seen then collect (i + 1) seen acc
        else collect (i + 1) (node :: seen) (node :: acc)
    in
    collect 0 [] []
  end

let owners_equal a b key n =
  List.equal String.equal (successors a key n) (successors b key n)
