(** The replication layer: write-through-primary fan-out and rebalance
    migration over a server-to-server channel.

    Every cluster node gets a {e replication endpoint} (its public
    address suffixed ["#repl"] — same host, so partitions cut both
    channels together).  The channel is cluster infrastructure: peers
    are assumed mutually authenticated (in this simulation, by
    construction), and operations carry the {e original caller's}
    principal so replicas re-run the same ACL checks the primary ran —
    identity consistency is preserved through replication, not bypassed
    by it.

    Writes go through the primary: {!attach} installs a
    {!Idbox_chirp.Server.set_mutation_hook} that forwards each fresh,
    successful mutation to the other owners of its shard key (per the
    node's own catalog-derived ring).  Mutations under the root key
    (["/"], e.g. a root ACL change) fan out to {e every} member, since
    every node anchors its ACL inheritance at its own export root.

    The channel speaks five verbs: [apply] (forwarded mutation),
    [snapshot] / [install] (rebalance migration), and the anti-entropy
    pair [digest] (report the node's {e self-computed} subtree digest
    for a prefix) and [repair] (install the primary's authoritative
    subtree {e exactly}, deletions included) — plus the untrusted
    [hint], which merely schedules a digest check.

    Rebalance moves only affected ranges: {!rebalance} compares the
    replica sets of each known prefix under the old and new rings and
    ships subtree snapshots only to nodes that {e gained} a prefix,
    pulling from any reachable old owner (hedged via
    {!Idbox_net.Network.call_any}). *)

type node
(** A server attached to the cluster's replication fabric. *)

val repl_addr : string -> string
(** The replication endpoint address for a public server address. *)

val encode_entry : Idbox_chirp.Server.snapshot_entry -> string
(** Wire form of one snapshot entry (shared by rebalance and repair). *)

val decode_entries :
  string list -> (Idbox_chirp.Server.snapshot_entry list, string) result
(** Decode a shipped snapshot; fails on the first malformed entry. *)

val shard_key : string -> string
(** The namespace prefix a path shards on: its first component, or
    ["/"] for the root itself. *)

val attach :
  net:Idbox_net.Network.t ->
  server:Idbox_chirp.Server.t ->
  name:string ->
  catalog:string ->
  ?replicas:int ->
  ?vnodes:int ->
  ?refresh_interval_ns:int64 ->
  ?fwd_timeout_ns:int64 ->
  ?pending_cap:int ->
  ?trace:Idbox_kernel.Trace.ring ->
  unit ->
  node
(** Join [server] to the replication fabric as cluster member [name]:
    listen on the replication endpoint and start forwarding mutations.
    [replicas] (default 2) is the replica-set size R; [vnodes] (default
    64) must match the routers'.  The node re-reads the catalog at most
    every [refresh_interval_ns] (default 5 s) to track membership;
    forwards and the node's own catalog polls use the short
    [fwd_timeout_ns] (default 50 ms, an intra-cluster LAN budget) so a
    partitioned peer or catalog costs bounded time per mutation.
    [pending_cap] (default 64) bounds the pending-repair set. *)

val detach : node -> unit
(** Stop forwarding and close the replication endpoint. *)

val name : node -> string
val ring : node -> Ring.t
val server : node -> Idbox_chirp.Server.t
val membership : node -> Membership.t
val src : node -> string
val net : node -> Idbox_net.Network.t
val replicas : node -> int
val fwd_timeout_ns : node -> int64

(** {1 The pending-repair set}

    Shard keys known or suspected to be diverged somewhere, so
    anti-entropy can check them {e before} its sweep cadence comes
    around.  Fed by two sources: a failed forward records the failing
    member and errno; an untrusted ["hint"] (e.g. from a router that
    saw a hedged read fail over) records the key alone.  Bounded at
    [pending_cap] — under a long partition every forward fails, and the
    cadence sweep covers every key regardless; overflow just loses
    priority, counted as [cluster.repair.pending.drop]. *)

val note_pending : node -> key:string -> peer:string -> errno:string -> unit
(** Record a suspect [(key, peer)] pair ([peer = ""] when unknown).
    Re-noting an already-pending pair updates it in place. *)

val take_pending : node -> (string * string * string) list
(** Drain the set: [(key, peer, errno)] in sorted order, emptying it. *)

val pending_count : node -> int

val tick : node -> unit
(** Refresh the node's membership view if its refresh interval has
    elapsed (cheap no-op otherwise).  Worlds call this once per
    workload step, alongside the heartbeat tick. *)

val refresh_now : node -> unit
(** Force a membership refresh regardless of the interval — used when
    the cluster is assembled node by node and every ring must see the
    final membership before traffic starts. *)

(** {1 Rebalance migration} *)

val rebalance :
  Idbox_net.Network.t ->
  ?src:string ->
  ?timeout_ns:int64 ->
  before:Ring.t ->
  after:Ring.t ->
  old_view:(string * string) list ->
  new_view:(string * string) list ->
  replicas:int ->
  prefixes:string list ->
  unit ->
  int
(** Migrate the affected key ranges for a membership change: for each
    prefix whose replica set changed between [before] and [after],
    snapshot the subtree from a reachable old owner and install it on
    each node that gained the prefix (counted as [cluster.migrate];
    unreachable-source ranges count [cluster.migrate.lost]).  Newly
    joined members additionally receive the current root ACL, so a
    node that missed a root ACL change while ejected re-admits with
    consistent policy.  Returns the number of migrations performed.
    Prefixes whose owners did not change are untouched — the
    consistent-hashing locality guarantee, asserted by the property
    suite. *)
