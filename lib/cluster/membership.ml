module Network = Idbox_net.Network
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Catalog = Idbox_chirp.Catalog

type liveness = Alive | Suspect | Dead

let liveness_name = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"

type node_health = {
  nh_name : string;
  nh_addr : string;
  nh_heartbeat_age_ns : int64;
  nh_lease_left_ns : int64;
  nh_liveness : liveness;
}

type t = {
  mb_net : Network.t;
  mb_catalog : string;
  mb_src : string;
  mb_timeout_ns : int64 option;
  mb_staleness_ns : int64;
  mutable mb_view : (string * string) list;  (* (name, addr), sorted by name *)
  mutable mb_entries : Catalog.entry list;  (* full entries, last refresh *)
  mutable mb_generation : int;
}

let create ?(src = "client") ?timeout_ns
    ?(staleness_ns = 300_000_000_000L) net ~catalog =
  { mb_net = net; mb_catalog = catalog; mb_src = src;
    mb_timeout_ns = timeout_ns; mb_staleness_ns = staleness_ns;
    mb_view = []; mb_entries = []; mb_generation = 0 }

let view t = t.mb_view
let names t = List.map fst t.mb_view
let addr_of t name = List.assoc_opt name t.mb_view
let generation t = t.mb_generation

(* Per-node liveness, judged from the last refresh snapshot against the
   current clock: heartbeat ages keep growing between refreshes, so a
   node that died since we last looked drifts from alive through
   suspect to dead without another catalog round trip.  [Suspect]
   starts at half the lease: one more missed heartbeat is survivable,
   several are not. *)
let health t =
  let now = Clock.now (Network.clock t.mb_net) in
  List.map
    (fun (e : Catalog.entry) ->
      let age = Int64.max 0L (Int64.sub now e.Catalog.last_heartbeat) in
      let left = Int64.sub t.mb_staleness_ns age in
      let liveness =
        if Int64.compare left 0L <= 0 then Dead
        else if Int64.compare age (Int64.div t.mb_staleness_ns 2L) >= 0 then
          Suspect
        else Alive
      in
      {
        nh_name = e.Catalog.name;
        nh_addr = e.Catalog.server_addr;
        nh_heartbeat_age_ns = age;
        nh_lease_left_ns = Int64.max 0L left;
        nh_liveness = liveness;
      })
    t.mb_entries

let health_of t name =
  List.find_opt (fun nh -> String.equal nh.nh_name name) (health t)

let metric t name =
  Metrics.incr (Metrics.counter (Network.metrics t.mb_net) name)

let refresh t =
  match
    Catalog.list ~src:t.mb_src ?timeout_ns:t.mb_timeout_ns t.mb_net
      ~catalog:t.mb_catalog
  with
  | Error e -> Error e
  | Ok entries ->
    let fresh =
      List.map (fun e -> (e.Catalog.name, e.Catalog.server_addr)) entries
      |> List.sort compare
    in
    t.mb_entries <-
      List.sort
        (fun (a : Catalog.entry) b -> String.compare a.Catalog.name b.Catalog.name)
        entries;
    if List.equal ( = ) fresh t.mb_view then Ok false
    else begin
      let old_names = List.map fst t.mb_view in
      let new_names = List.map fst fresh in
      List.iter
        (fun n ->
          if not (List.mem n old_names) then metric t "cluster.member.join")
        new_names;
      List.iter
        (fun n ->
          if not (List.mem n new_names) then metric t "cluster.member.leave")
        old_names;
      t.mb_view <- fresh;
      t.mb_generation <- t.mb_generation + 1;
      Ok true
    end
