module Network = Idbox_net.Network
module Metrics = Idbox_kernel.Metrics
module Catalog = Idbox_chirp.Catalog

type t = {
  mb_net : Network.t;
  mb_catalog : string;
  mb_src : string;
  mb_timeout_ns : int64 option;
  mutable mb_view : (string * string) list;  (* (name, addr), sorted by name *)
  mutable mb_generation : int;
}

let create ?(src = "client") ?timeout_ns net ~catalog =
  { mb_net = net; mb_catalog = catalog; mb_src = src;
    mb_timeout_ns = timeout_ns; mb_view = []; mb_generation = 0 }

let view t = t.mb_view
let names t = List.map fst t.mb_view
let addr_of t name = List.assoc_opt name t.mb_view
let generation t = t.mb_generation

let metric t name =
  Metrics.incr (Metrics.counter (Network.metrics t.mb_net) name)

let refresh t =
  match
    Catalog.list ~src:t.mb_src ?timeout_ns:t.mb_timeout_ns t.mb_net
      ~catalog:t.mb_catalog
  with
  | Error e -> Error e
  | Ok entries ->
    let fresh =
      List.map (fun e -> (e.Catalog.name, e.Catalog.server_addr)) entries
      |> List.sort compare
    in
    if List.equal ( = ) fresh t.mb_view then Ok false
    else begin
      let old_names = List.map fst t.mb_view in
      let new_names = List.map fst fresh in
      List.iter
        (fun n ->
          if not (List.mem n old_names) then metric t "cluster.member.join")
        new_names;
      List.iter
        (fun n ->
          if not (List.mem n new_names) then metric t "cluster.member.leave")
        old_names;
      t.mb_view <- fresh;
      t.mb_generation <- t.mb_generation + 1;
      Ok true
    end
