(** A ready-made N-node cluster world for tests, benchmarks and the
    CLI demo: one simulated clock/network/kernel, a catalog, a shared
    CA, and any number of Chirp servers on distinct hosts, each
    heartbeating its catalog lease and attached to the replication
    fabric ({!Replica.attach}).

    The world owns no threads: call {!tick} once per workload step to
    drive heartbeats and lazy membership refreshes, and {!settle} after
    assembling (or changing) the member set so every node's ring sees
    the final membership before traffic starts. *)

type t

val create :
  ?staleness_ns:int64 ->
  ?heartbeat_interval_ns:int64 ->
  ?refresh_interval_ns:int64 ->
  ?repair_interval_ns:int64 ->
  ?replicas:int ->
  ?vnodes:int ->
  ?root_acl:Idbox_acl.Acl.t ->
  ?trace:Idbox_kernel.Trace.ring ->
  unit ->
  t
(** A fresh world with a catalog at [catalog.grid.edu:9097] and no
    members yet.  The default [root_acl] gives [globus:/O=Grid/*] the
    reserve right plus read/list, and read/list to [hostname:*.grid.edu]. *)

val net : t -> Idbox_net.Network.t
val kernel : t -> Idbox_kernel.Kernel.t
val clock : t -> Idbox_kernel.Clock.t
val ca : t -> Idbox_auth.Ca.t
val catalog_addr : t -> string

val catalog : t -> Idbox_chirp.Catalog.t
(** The world's catalog service (e.g. to inspect live entries). *)

val replicas : t -> int

val add_node :
  ?acceptor:Idbox_auth.Negotiate.acceptor ->
  t ->
  host:string ->
  (unit, string) result
(** Start a server on [host] (e.g. ["alpha.grid.edu"]; member name is
    the first label, public address [host:9094], export
    [/tmp/chirp_<name>]), register it with the catalog, and attach it to the
    replication fabric.  [acceptor] overrides the world's default
    (trust the world CA; accept [hostname:*.grid.edu]) — e.g. to build
    a shard that negotiates a {e different} principal and trip the
    router's identity check. *)

val remove_node : t -> string -> (unit, string) result
(** Scale a member out, cleanly: deregister its catalog lease (so the
    next refresh drops it from every view) and remove it from the
    member set.  Unlike {!crash}, its server keeps listening as a
    zombie so in-flight requests complete while routers converge; a
    later {!add_node} of the same host replaces it.  When the catalog
    is unreachable the departure degrades to a crash-like exit (the
    lease ages out). *)

val settle : t -> unit
(** Force every member's membership refresh — call once after the last
    {!add_node} (and after any deliberate membership change the test
    wants the nodes to see immediately). *)

val tick : t -> unit
(** One cooperative step: each beating member ticks its heartbeat, each
    member's replication node refreshes its view if due, and each live
    member's anti-entropy loop runs ({!Repair.tick} — pending checks
    every step, full sweeps on the [repair_interval_ns] cadence and
    one step after an observed membership change). *)

val members : t -> string list
(** Member names, sorted. *)

val server : t -> string -> Idbox_chirp.Server.t
(** A member's server, by name.  Raises [Not_found] for unknown names. *)

val replica : t -> string -> Replica.node
val repair : t -> string -> Repair.t

val repair_sweep : t -> unit
(** Force a full anti-entropy sweep on every live member now — how
    tests make convergence synchronous instead of waiting out the
    cadence. *)

val crash : t -> string -> unit
(** Crash a member's server {e and} stop its heartbeat: the lease ages
    out and the catalog ejects it. *)

val restart : t -> string -> unit
(** Restart after {!crash}; the next {!tick} re-registers the lease. *)

val issue : t -> string -> Idbox_auth.Credential.t
(** A GSI credential for [/O=Grid/CN=<name>], signed by the world CA. *)

val principal_of : string -> string
(** The principal string a CN negotiates to: ["globus:/O=Grid/CN=<cn>"]
    — the form delegation tokens name principals in. *)

val delegate :
  ?ttl_ns:int64 ->
  ?hops:int ->
  ?epoch:int ->
  t ->
  delegator:string ->
  delegatee:string ->
  rights:Idbox_acl.Rights.t ->
  prefix:string ->
  unit ->
  Idbox_auth.Delegation.token
(** Mint one delegation hop, CN to CN, attested by the world CA and
    stamped at the world clock's current time ([ttl_ns] default 1 h,
    [hops] default 4).  [epoch] must be the delegator's current
    revocation epoch if they have ever revoked ({!Router.revoke});
    defaults to 0.  Counter: [auth.delegation.mint]. *)

val connect :
  ?src:string ->
  ?policy:Idbox_chirp.Client.retry_policy ->
  ?hedge_ns:int64 ->
  t ->
  credentials:Idbox_auth.Credential.t list ->
  (Router.t, string) result
(** {!Router.connect} against this world's catalog, with the world's
    replica count, vnode count and trace ring.  [hedge_ns] enables
    concurrently hedged reads (see {!Router.connect}). *)
