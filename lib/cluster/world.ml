module Clock = Idbox_kernel.Clock
module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Trace = Idbox_kernel.Trace
module Network = Idbox_net.Network
module Ca = Idbox_auth.Ca
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Catalog = Idbox_chirp.Catalog
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Rights = Idbox_acl.Rights
module Subject = Idbox_identity.Subject
module Wildcard = Idbox_identity.Wildcard
module Errno = Idbox_vfs.Errno

type member = {
  m_name : string;
  m_host : string;
  m_server : Server.t;
  m_replica : Replica.node;
  m_repair : Repair.t;
  m_heartbeat : Catalog.heartbeat;
  mutable m_beating : bool;
}

type t = {
  w_clock : Clock.t;
  w_net : Network.t;
  w_kernel : Kernel.t;
  w_ca : Ca.t;
  w_catalog : Catalog.t;
  w_root_acl : Acl.t;
  w_replicas : int;
  w_vnodes : int;
  w_hb_interval_ns : int64;
  w_refresh_ns : int64;
  w_repair_ns : int64;
  w_trace : Trace.ring option;
  mutable w_members : member list;
}

let catalog_address = "catalog.grid.edu:9097"

let default_root_acl =
  Acl.of_entries
    [
      Entry.make ~pattern:"globus:/O=Grid/*"
        ~reserve:(Rights.of_string_exn "rwlaxd")
        (Rights.of_string_exn "rl");
      Entry.make ~pattern:"hostname:*.grid.edu" (Rights.of_string_exn "rl");
    ]

let create ?staleness_ns ?(heartbeat_interval_ns = 60_000_000_000L)
    ?(refresh_interval_ns = 5_000_000_000L)
    ?(repair_interval_ns = 30_000_000_000L) ?(replicas = 2) ?(vnodes = 64)
    ?(root_acl = default_root_acl) ?trace () =
  let clock = Clock.create () in
  let net = Network.create ~clock () in
  let kernel = Kernel.create ~clock () in
  let catalog = Catalog.create ?staleness_ns net ~addr:catalog_address in
  {
    w_clock = clock;
    w_net = net;
    w_kernel = kernel;
    w_ca = Ca.create ~name:"Grid CA";
    w_catalog = catalog;
    w_root_acl = root_acl;
    w_replicas = max 1 replicas;
    w_vnodes = vnodes;
    w_hb_interval_ns = heartbeat_interval_ns;
    w_refresh_ns = refresh_interval_ns;
    w_repair_ns = repair_interval_ns;
    w_trace = trace;
    w_members = [];
  }

let net t = t.w_net
let kernel t = t.w_kernel
let clock t = t.w_clock
let ca t = t.w_ca
let catalog_addr t = Catalog.addr t.w_catalog
let catalog t = t.w_catalog
let replicas t = t.w_replicas

let default_acceptor t =
  Negotiate.acceptor ~trusted_cas:[ t.w_ca ]
    ~host_ok:(fun h -> Wildcard.literal_matches "*.grid.edu" h)
    ()

let short_name host =
  match String.index_opt host '.' with
  | Some i -> String.sub host 0 i
  | None -> host

let add_node ?acceptor t ~host =
  let name = short_name host in
  if List.exists (fun m -> String.equal m.m_name name) t.w_members then
    Error (Printf.sprintf "world: member %s already exists" name)
  else
    let addr = host ^ ":9094" in
    let acceptor =
      match acceptor with Some a -> a | None -> default_acceptor t
    in
    (* A host that was scaled down and re-added still owns its old
       account — reuse it rather than refusing the node. *)
    let account =
      match Account.add (Kernel.accounts t.w_kernel) ("chirp_" ^ name) with
      | Ok owner -> Ok owner
      | Error _ as e ->
        (match Account.find (Kernel.accounts t.w_kernel) ("chirp_" ^ name) with
         | Some owner -> Ok owner
         | None -> e)
    in
    match account with
    | Error m -> Error m
    | Ok owner ->
      Kernel.refresh_passwd t.w_kernel;
      (match
         Server.create ~kernel:t.w_kernel ~net:t.w_net ~addr
           ~owner_uid:owner.Account.uid ~export:("/tmp/chirp_" ^ name) ~acceptor
           ~root_acl:t.w_root_acl ()
       with
       | Error e -> Error (Errno.to_string e)
       | Ok server ->
         let heartbeat =
           Catalog.heartbeat ~src:host ~interval_ns:t.w_hb_interval_ns t.w_net
             ~catalog:catalog_address ~name ~server_addr:addr
             ~owner:("chirp:" ^ name)
         in
         let replica =
           Replica.attach ~net:t.w_net ~server ~name ~catalog:catalog_address
             ~replicas:t.w_replicas ~vnodes:t.w_vnodes
             ~refresh_interval_ns:t.w_refresh_ns ?trace:t.w_trace ()
         in
         let m =
           {
             m_name = name;
             m_host = host;
             m_server = server;
             m_replica = replica;
             m_repair = Repair.attach ~interval_ns:t.w_repair_ns replica;
             m_heartbeat = heartbeat;
             m_beating = true;
           }
         in
         t.w_members <-
           List.sort (fun a b -> String.compare a.m_name b.m_name)
             (m :: t.w_members);
         Ok ())

(* Scale-down, as opposed to {!crash}: the node announces its departure
   (deregister drops the lease now instead of letting it age out) and
   leaves the member set, but its server keeps listening as a zombie so
   requests already in flight toward it complete while routers converge
   on the new membership.  A later [add_node] of the same host replaces
   the zombie's endpoint.  If the catalog is unreachable the departure
   degrades to a crash-like exit: the lease ages out instead. *)
let remove_node t name =
  match List.find_opt (fun m -> String.equal m.m_name name) t.w_members with
  | None -> Error (Printf.sprintf "world: no member %s" name)
  | Some m ->
    m.m_beating <- false;
    (match
       Catalog.deregister ~src:m.m_host t.w_net ~catalog:catalog_address ~name
     with
     | Ok () -> ()
     | Error _ -> ());
    t.w_members <-
      List.filter (fun x -> not (String.equal x.m_name name)) t.w_members;
    Ok ()

let settle t =
  List.iter (fun m -> Replica.refresh_now m.m_replica) t.w_members

let tick t =
  List.iter
    (fun m ->
      if m.m_beating then ignore (Catalog.tick m.m_heartbeat);
      Replica.tick m.m_replica;
      (* Anti-entropy rides the same cooperative step, but only on live
         members: a crashed server neither checks nor answers. *)
      if m.m_beating then Repair.tick m.m_repair)
    t.w_members

let members t = List.map (fun m -> m.m_name) t.w_members

let find t name =
  match List.find_opt (fun m -> String.equal m.m_name name) t.w_members with
  | Some m -> m
  | None -> raise Not_found

let server t name = (find t name).m_server
let replica t name = (find t name).m_replica
let repair t name = (find t name).m_repair

let repair_sweep t =
  List.iter (fun m -> if m.m_beating then Repair.sweep m.m_repair) t.w_members

let crash t name =
  let m = find t name in
  Server.crash m.m_server;
  m.m_beating <- false

let restart t name =
  let m = find t name in
  Server.restart m.m_server;
  m.m_beating <- true

let issue t cn =
  Credential.Gsi (Ca.issue t.w_ca (Subject.of_string_exn ("/O=Grid/CN=" ^ cn)))

let principal_of cn = "globus:/O=Grid/CN=" ^ cn

let delegate ?(ttl_ns = 3_600_000_000_000L) ?(hops = 4) ?epoch t ~delegator
    ~delegatee ~rights ~prefix () =
  Idbox_kernel.Metrics.incr
    (Idbox_kernel.Metrics.counter
       (Kernel.metrics t.w_kernel)
       "auth.delegation.mint");
  Idbox_auth.Delegation.mint t.w_ca ~delegator:(principal_of delegator)
    ~delegatee:(principal_of delegatee) ~rights ~prefix
    ~now:(Clock.now t.w_clock) ~ttl_ns ~hops ?epoch ()

let connect ?src ?policy ?hedge_ns t ~credentials =
  Router.connect ?src ?policy ~replicas:t.w_replicas ~vnodes:t.w_vnodes
    ?hedge_ns ?trace:t.w_trace t.w_net ~catalog:catalog_address ~credentials
