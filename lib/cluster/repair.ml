module Network = Idbox_net.Network
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Server = Idbox_chirp.Server
module Wire = Idbox_chirp.Wire
module Errno = Idbox_vfs.Errno

type t = {
  rp_node : Replica.node;
  rp_interval_ns : int64;
  mutable rp_last_sweep : int64;
  mutable rp_last_gen : int;
  mutable rp_heal_pending : bool;  (* membership changed; sweep next tick *)
}

let attach ?(interval_ns = 30_000_000_000L) node =
  {
    rp_node = node;
    rp_interval_ns = Int64.max 1L interval_ns;
    rp_last_sweep = Clock.now (Network.clock (Replica.net node));
    rp_last_gen = Membership.generation (Replica.membership node);
    rp_heal_pending = false;
  }

let metric t m =
  Metrics.incr (Metrics.counter (Network.metrics (Replica.net t.rp_node)) m)

let call t ~addr payload =
  Network.call (Replica.net t.rp_node)
    ~src:(Replica.src t.rp_node)
    ~timeout_ns:(Replica.fwd_timeout_ns t.rp_node)
    ~addr:(Replica.repl_addr addr) payload

(* The replica set responsible for a key under the node's current ring.
   Root-key state (the export root's ACL) lives on every member, like
   root-key mutations fan out to every member. *)
let owners t key =
  let ring = Replica.ring t.rp_node in
  if String.equal key "/" then Ring.nodes ring
  else Ring.successors ring key (Replica.replicas t.rp_node)

let primary_of t key =
  if String.equal key "/" then Ring.lookup (Replica.ring t.rp_node) "/"
  else match owners t key with [] -> None | p :: _ -> Some p

(* The digest the primary compares against, computed locally.  For the
   root key only the ACL text counts: every node legitimately holds a
   different set of top-level directories (its own shards), so child
   names must not enter the comparison. *)
let local_digest t key =
  let server = Replica.server t.rp_node in
  if String.equal key "/" then
    match Server.snapshot_subtree ~recurse:false server "/" with
    | Ok (Server.Snap_dir { acl; _ } :: _) ->
      Ok (Digest.to_hex (Digest.string acl))
    | Ok _ -> Ok ""
    | Error e -> Error e
  else Server.subtree_digest server key

(* Ship this node's authoritative copy of [key] to [addr].  Root
   repairs use the additive [install] verb (the ACL alone); everything
   else uses [repair], which also deletes divergent extras. *)
let push t ~key ~peer ~addr =
  let is_root = String.equal key "/" in
  let server = Replica.server t.rp_node in
  match Server.snapshot_subtree ~recurse:(not is_root) server key with
  | Error _ -> metric t "cluster.repair.fail"
  | Ok entries ->
    let blobs = List.map Replica.encode_entry entries in
    let payload =
      if is_root then Wire.encode ("install" :: blobs)
      else Wire.encode ("repair" :: key :: blobs)
    in
    (match call t ~addr payload with
     | Ok reply when (match Wire.decode reply with
                      | Ok [ "ok" ] -> true
                      | _ -> false) ->
       metric t "cluster.repair.push"
     | Ok _ ->
       metric t "cluster.repair.fail";
       Replica.note_pending t.rp_node ~key ~peer ~errno:"EIO"
     | Error e ->
       metric t "cluster.repair.fail";
       Replica.note_pending t.rp_node ~key ~peer ~errno:(Errno.to_string e))

(* The primary holds no copy of [key] at all, but some peer does — the
   key was created on the other side of a partition (acknowledged
   there, never replicated here).  Adopt the first reachable peer's
   snapshot as our own, then repair normally: the data becomes
   authoritative by arriving at the primary, not by staying where it
   was stranded.  Without tombstones this can also resurrect a shard
   root deleted while a stale copy survived elsewhere — the documented
   price (DESIGN §9 failure table). *)
let adopt t key peers =
  List.exists
    (fun peer ->
      match Membership.addr_of (Replica.membership t.rp_node) peer with
      | None -> false
      | Some addr ->
        (match call t ~addr (Wire.encode [ "snapshot"; key; "all" ]) with
         | Ok reply ->
           (match Wire.decode reply with
            | Ok ("ok" :: (_ :: _ as blobs)) ->
              (match Replica.decode_entries blobs with
               | Error _ -> false
               | Ok entries ->
                 (match
                    Server.install_snapshot (Replica.server t.rp_node) entries
                  with
                  | Ok () ->
                    metric t "cluster.repair.adopt";
                    true
                  | Error _ -> false))
            | Ok _ | Error _ -> false)
         | Error _ -> false))
    peers

(* As the key's primary, compare digests with each owner (plus any
   specifically suspected members) and push where they differ.  Each
   side computes its own digest — nothing shipped is trusted as a
   description of remote state, only compared. *)
let rec repair_key ?(adopted = false) t key ~extra =
  let self = Replica.name t.rp_node in
  let peers =
    List.sort_uniq String.compare
      (List.filter (fun n -> not (String.equal n self)) (owners t key @ extra))
  in
  if peers <> [] then
    match local_digest t key with
    | Error Errno.ENOENT when (not adopted) && not (String.equal key "/") ->
      if adopt t key peers then repair_key ~adopted:true t key ~extra
      else metric t "cluster.repair.fail"
    | Error _ -> metric t "cluster.repair.fail"
    | Ok mine ->
      let depth = if String.equal key "/" then "acl" else "all" in
      List.iter
        (fun peer ->
          match Membership.addr_of (Replica.membership t.rp_node) peer with
          | None -> ()
          | Some addr ->
            metric t "cluster.repair.check";
            (match call t ~addr (Wire.encode [ "digest"; key; depth ]) with
             | Ok reply ->
               (match Wire.decode reply with
                | Ok [ "ok"; theirs ] when String.equal theirs mine ->
                  metric t "cluster.repair.clean"
                | Ok [ "ok"; _ ] ->
                  metric t "cluster.repair.diverged";
                  push t ~key ~peer ~addr
                | Ok _ | Error _ ->
                  metric t "cluster.repair.fail";
                  Replica.note_pending t.rp_node ~key ~peer ~errno:"EIO")
             | Error e ->
               metric t "cluster.repair.fail";
               Replica.note_pending t.rp_node ~key ~peer
                 ~errno:(Errno.to_string e)))
        peers

(* Not the primary for this key: hand the work to whoever is, naming
   ourselves so the primary's check includes this copy even if the ring
   no longer lists us as an owner. *)
let handoff t ~key ~primary =
  match Membership.addr_of (Replica.membership t.rp_node) primary with
  | None -> ()
  | Some addr ->
    metric t "cluster.repair.handoff";
    ignore
      (call t ~addr (Wire.encode [ "hint"; key; Replica.name t.rp_node ]))

let dispatch t key ~extra =
  match primary_of t key with
  | None -> ()
  | Some p when String.equal p (Replica.name t.rp_node) ->
    repair_key t key ~extra
  | Some p -> handoff t ~key ~primary:p

(* Revocation-epoch gossip: exchange (delegator, epoch) entries with
   every other member.  Merges are pointwise max — monotone — so the
   exchange is idempotent and order-free; [Revoke] fan-out covers the
   connected case, this sweep heals whatever a partition dropped.  The
   reply carries the peer's entries back, so one successful exchange
   converges the pair in a single round trip. *)
let gossip_epochs t =
  let self = Replica.name t.rp_node in
  let server = Replica.server t.rp_node in
  let flatten entries =
    List.concat_map (fun (d, e) -> [ d; string_of_int e ]) entries
  in
  let rec pairs acc = function
    | delegator :: epoch :: rest ->
      (match int_of_string_opt epoch with
       | Some e -> pairs ((delegator, e) :: acc) rest
       | None -> acc)
    | _ -> acc
  in
  List.iter
    (fun peer ->
      if not (String.equal peer self) then
        match Membership.addr_of (Replica.membership t.rp_node) peer with
        | None -> ()
        | Some addr ->
          metric t "cluster.revocation.gossip";
          (match
             call t ~addr
               (Wire.encode ("epochs" :: flatten (Server.epoch_entries server)))
           with
           | Ok reply ->
             (match Wire.decode reply with
              | Ok ("ok" :: fields) ->
                ignore (Server.merge_epochs server (pairs [] fields))
              | Ok _ | Error _ -> metric t "cluster.repair.fail")
           | Error _ -> metric t "cluster.repair.fail"))
    (Ring.nodes (Replica.ring t.rp_node))

let sweep t =
  metric t "cluster.repair.sweep";
  (* Only nodes that know of a revocation push epochs on the sweep: a
     node with an empty store has nothing to offer, and anything it is
     missing will be pushed to it by a peer that does know.  The
     zero-revocation steady state therefore costs no gossip traffic. *)
  if Server.epoch_entries (Replica.server t.rp_node) <> [] then
    gossip_epochs t;
  let keys =
    match Server.shard_roots (Replica.server t.rp_node) with
    | Ok ks -> ks
    | Error _ -> []
  in
  List.iter (fun key -> dispatch t key ~extra:[]) ("/" :: keys)

let tick t =
  let node = t.rp_node in
  let now = Clock.now (Network.clock (Replica.net node)) in
  let gen = Membership.generation (Replica.membership node) in
  if gen <> t.rp_last_gen then begin
    (* Membership just changed (a heal or a join): hold fire for one
       tick so the routers' rebalance migrates fresh data onto
       re-admitted members before any primary pushes its copy — a
       re-admitted primary pushing immediately could overwrite writes
       acknowledged by the interim primary while it was out. *)
    t.rp_last_gen <- gen;
    t.rp_heal_pending <- true
  end
  else begin
    let pending = Replica.take_pending node in
    List.iter (fun (key, peer, _errno) ->
        dispatch t key ~extra:(if String.equal peer "" then [] else [ peer ]))
      (List.sort_uniq compare (List.map (fun (k, p, _) -> (k, p, "")) pending));
    if t.rp_heal_pending || Int64.sub now t.rp_last_sweep >= t.rp_interval_ns
    then begin
      t.rp_heal_pending <- false;
      t.rp_last_sweep <- now;
      sweep t
    end
  end
