module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Trace = Idbox_kernel.Trace
module Network = Idbox_net.Network

type decision = Grow of string | Shrink of string | Hold of string

let decision_name = function
  | Grow host -> "grow:" ^ host
  | Shrink name -> "shrink:" ^ name
  | Hold why -> "hold:" ^ why

type t = {
  a_world : World.t;
  a_health : Health.t;
  a_sample : string -> Health.sample;
  a_hosts : string list;
  a_min : int;
  a_max : int;
  a_interval_ns : int64;
  a_cooldown_ns : int64;
  a_grow_below : int;
  a_shrink_above : int;
  a_trace : Trace.ring option;
  mutable a_next_due : int64;
  mutable a_cooldown_until : int64;
  mutable a_history : decision list;  (* newest first *)
  mutable a_grows : int;
  mutable a_shrinks : int;
}

let short_name host =
  match String.index_opt host '.' with
  | Some i -> String.sub host 0 i
  | None -> host

let create ?health_config ?trace ?sample ?(min_nodes = 1) ?max_nodes
    ?(interval_ns = 5_000_000_000L) ?(cooldown_ns = 30_000_000_000L)
    ?(grow_below = 55) ?(shrink_above = 85) ~hosts world =
  let clock = World.clock world in
  let metrics = Network.metrics (World.net world) in
  let health =
    Health.create ?config:health_config ?trace ~clock ~metrics ()
  in
  let sample =
    match sample with
    | Some f -> f
    | None -> fun name -> Health.sample_server (World.server world name)
  in
  {
    a_world = world;
    a_health = health;
    a_sample = sample;
    a_hosts = hosts;
    a_min = max 1 min_nodes;
    a_max =
      (match max_nodes with
       | Some m -> max (max 1 min_nodes) m
       | None -> max (max 1 min_nodes) (List.length hosts));
    a_interval_ns = Int64.max 1L interval_ns;
    a_cooldown_ns = Int64.max 0L cooldown_ns;
    a_grow_below = grow_below;
    a_shrink_above = shrink_above;
    a_trace = trace;
    a_next_due = Clock.now clock;
    a_cooldown_until = 0L;
    a_history = [];
    a_grows = 0;
    a_shrinks = 0;
  }

let health t = t.a_health
let decisions t = List.rev t.a_history
let grows t = t.a_grows
let shrinks t = t.a_shrinks

let metric t name =
  Metrics.incr (Metrics.counter (Network.metrics (World.net t.a_world)) name)

let span t ~node ~verdict =
  match t.a_trace with
  | None -> ()
  | Some ring ->
    Trace.span ring ~time:(Clock.now (World.clock t.a_world)) ~pid:0
      ~identity:node ~syscall:"cluster.scale" ~verdict ~cost_ns:0L

(* The first pool host whose member name is not already in the world:
   the pool is ordered, so growth is deterministic. *)
let free_host t members =
  List.find_opt (fun h -> not (List.mem (short_name h) members)) t.a_hosts

(* The member with the lowest smoothed score, ties broken by name —
   shrinking always removes the node contributing least. *)
let victim t members =
  List.map (fun name -> (Health.score t.a_health name, name)) members
  |> List.sort compare
  |> function [] -> None | (_, name) :: _ -> Some name

let grow t now host =
  match World.add_node t.a_world ~host with
  | Error e ->
    metric t "cluster.scale.error";
    Hold ("add failed: " ^ e)
  | Ok () ->
    World.settle t.a_world;
    metric t "cluster.scale.up";
    span t ~node:(short_name host) ~verdict:"up";
    t.a_cooldown_until <- Int64.add now t.a_cooldown_ns;
    t.a_grows <- t.a_grows + 1;
    Grow host

let shrink t now name =
  match World.remove_node t.a_world name with
  | Error e ->
    metric t "cluster.scale.error";
    Hold ("remove failed: " ^ e)
  | Ok () ->
    Health.forget t.a_health name;
    World.settle t.a_world;
    metric t "cluster.scale.down";
    span t ~node:name ~verdict:"down";
    t.a_cooldown_until <- Int64.add now t.a_cooldown_ns;
    t.a_shrinks <- t.a_shrinks + 1;
    Shrink name

let tick t =
  let now = Clock.now (World.clock t.a_world) in
  if Int64.compare now t.a_next_due < 0 then None
  else begin
    t.a_next_due <- Int64.add now t.a_interval_ns;
    let members = World.members t.a_world in
    List.iter
      (fun name ->
        ignore (Health.observe t.a_health ~name (t.a_sample name)))
      members;
    (* Departed nodes must not drag the aggregate around forever. *)
    List.iter
      (fun (name, _, _) ->
        if not (List.mem name members) then Health.forget t.a_health name)
      (Health.nodes t.a_health);
    let agg = Health.aggregate t.a_health in
    let n = List.length members in
    let cooling = Int64.compare now t.a_cooldown_until < 0 in
    let d =
      if agg < t.a_grow_below then begin
        (* The cluster is hurting: add capacity — unless a recent
           action is still settling (cooldown), the envelope forbids
           it, or the host pool is dry. *)
        if cooling then begin
          metric t "cluster.scale.hold";
          Hold "cooldown"
        end
        else if n >= t.a_max then begin
          metric t "cluster.scale.clamp";
          Hold "at max envelope"
        end
        else
          match free_host t members with
          | None ->
            metric t "cluster.scale.clamp";
            Hold "host pool exhausted"
          | Some host -> grow t now host
      end
      else if agg > t.a_shrink_above then begin
        (* Comfortably healthy: give capacity back, lowest score
           first, never below the min envelope. *)
        if n <= t.a_min then begin
          metric t "cluster.scale.clamp";
          Hold "at min envelope"
        end
        else if cooling then begin
          metric t "cluster.scale.hold";
          Hold "cooldown"
        end
        else
          match victim t members with
          | None -> Hold "no members"
          | Some name -> shrink t now name
      end
      else Hold "steady"
    in
    t.a_history <- d :: t.a_history;
    Some d
  end
