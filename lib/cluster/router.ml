module Network = Idbox_net.Network
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Trace = Idbox_kernel.Trace
module Client = Idbox_chirp.Client
module Protocol = Idbox_chirp.Protocol
module Wire = Idbox_chirp.Wire
module Errno = Idbox_vfs.Errno
module Path = Idbox_vfs.Path
module Breaker = Idbox_net.Breaker

(* One hedged leg in flight.  [fl_counted] guards the in-flight gauge:
   a leg is decremented exactly once, whether it is observed winning,
   losing, or straggling in long after the read returned — a late
   reply must never double-decrement.  [fl_fed] likewise guards the
   node's circuit breaker: a leg feeds it exactly one verdict, however
   many times the flight is polled. *)
type flight = {
  fl_tok : Network.token;
  fl_node : string;
  mutable fl_counted : bool;
  mutable fl_fed : bool;
}

type t = {
  rt_net : Network.t;
  rt_src : string;
  rt_policy : Client.retry_policy;
  rt_creds : Idbox_auth.Credential.t list;
  rt_membership : Membership.t;
  rt_replicas : int;
  rt_vnodes : int;
  rt_hedge_ns : int64 option;  (* None: serial failover reads *)
  rt_trace : Trace.ring option;
  rt_conns : (string, Client.t) Hashtbl.t;  (* keyed by node name *)
  mutable rt_ring : Ring.t;
  mutable rt_view : (string * string) list;
  mutable rt_principal : string;
  mutable rt_prefixes : string list;  (* shard keys touched, for rebalance *)
  mutable rt_routes : int;
  mutable rt_failovers : int;
  (* Hedged-read accounting.  The gauge is a plain field, not a
     Metrics counter: counters saturate and cannot decrement. *)
  mutable rt_inflight : int;
  mutable rt_outstanding : flight list;  (* abandoned losers, un-reaped *)
  (* Route cache: shard key -> owner list, valid for one membership
     epoch.  Only the consistent-hash computation is cached — per-route
     metrics and trace spans still fire on every call, so transcripts
     are byte-identical with the cache on. *)
  rt_route_cache : (string, string list) Hashtbl.t;
  mutable rt_route_epoch : int;
  (* Per-node circuit breakers (transport faults only) and shed marks
     (a node recently answering EAGAIN): both steer hedges and sweeps
     away from known-bad or overloaded replicas. *)
  rt_breakers : (string, Breaker.t) Hashtbl.t;
  rt_shed_until : (string, int64) Hashtbl.t;
}

let principal t = t.rt_principal
let nodes t = Ring.nodes t.rt_ring
let routes t = t.rt_routes
let failovers t = t.rt_failovers
let inflight t = t.rt_inflight

let metric t name =
  Metrics.incr (Metrics.counter (Network.metrics t.rt_net) name)

let settle t fl =
  if not fl.fl_counted then begin
    fl.fl_counted <- true;
    t.rt_inflight <- t.rt_inflight - 1
  end

let span t ~syscall ~verdict =
  match t.rt_trace with
  | None -> ()
  | Some ring ->
    Trace.span ring ~time:(Clock.now (Network.clock t.rt_net)) ~pid:0
      ~identity:t.rt_principal ~syscall ~verdict ~cost_ns:0L

(* Transport-level failures that justify trying another replica — the
   same set the Chirp client treats as retryable, minus EAGAIN (a live
   server shedding load is an answer, not an absence). *)
let transient = function
  | Errno.ETIMEDOUT | Errno.ECONNRESET | Errno.ECONNREFUSED
  | Errno.EHOSTUNREACH -> true
  | _ -> false

let breaker_for t name =
  match Hashtbl.find_opt t.rt_breakers name with
  | Some b -> b
  | None ->
    let b =
      Breaker.create ~threshold:3 ~reset_ns:500_000_000L
        ~prefix:"cluster.breaker"
        ~on_transition:(fun subject state ->
          span t ~syscall:"cluster.breaker"
            ~verdict:(subject ^ ":" ^ Breaker.state_name state))
        ~clock:(Network.clock t.rt_net) ~metrics:(Network.metrics t.rt_net)
        name
    in
    Hashtbl.replace t.rt_breakers name b;
    b

(* A node that answered EAGAIN is alive but shedding: remember it for a
   quarter timeout so hedges stop piling extra load onto it (the server
   sheds hedged work first by never receiving it). *)
let note_shed t name =
  metric t "cluster.shed.observed";
  Hashtbl.replace t.rt_shed_until name
    (Int64.add
       (Clock.now (Network.clock t.rt_net))
       (Int64.div t.rt_policy.Client.timeout_ns 4L))

let shedding t name =
  match Hashtbl.find_opt t.rt_shed_until name with
  | Some until ->
    Int64.compare (Clock.now (Network.clock t.rt_net)) until < 0
  | None -> false

(* One breaker verdict per hedge leg ([fl_fed]): a transport fault
   feeds [failure]; any in-band reply — even an error verdict — proves
   liveness and feeds [success], with EAGAIN additionally marking the
   node as shedding. *)
let feed t fl r =
  if not fl.fl_fed then begin
    fl.fl_fed <- true;
    let br = breaker_for t fl.fl_node in
    match r with
    | Ok text ->
      Breaker.success br;
      (match Client.interpret text with
       | Error Errno.EAGAIN -> note_shed t fl.fl_node
       | _ -> ())
    | Error e ->
      if transient e then Breaker.failure ~errno:e br
      else Breaker.success br
  end

(* Observe abandoned hedge legs that have since completed: their reply
   is discarded — it already lost the race, so it must not surface as
   a fresh result — and the in-flight gauge comes down exactly once
   ([fl_counted]).  Runs at the head of every read and on demand. *)
let reap t =
  t.rt_outstanding <-
    List.filter
      (fun fl ->
        match Network.poll fl.fl_tok with
        | None -> true
        | Some r ->
          feed t fl r;
          metric t "cluster.hedge.late";
          settle t fl;
          false)
      t.rt_outstanding

let note_prefix t key =
  if not (List.mem key t.rt_prefixes) then
    t.rt_prefixes <- List.sort String.compare (key :: t.rt_prefixes)

let node_for t path =
  Ring.lookup t.rt_ring (Replica.shard_key path)

(* An authenticated session with one shard, opened on demand and
   cached.  The identity invariant is enforced here: a shard that
   negotiates a different principal for our credentials is refused —
   and the whole call fails, rather than quietly running one user's
   operation under another's name. *)
let conn_for t name =
  match Hashtbl.find_opt t.rt_conns name with
  | Some c -> Ok c
  | None ->
    (match List.assoc_opt name t.rt_view with
     | None -> Error (`Down Errno.EHOSTUNREACH)
     | Some addr ->
       (match
          Client.connect ~src:t.rt_src ~policy:t.rt_policy t.rt_net ~addr
            ~credentials:t.rt_creds
        with
        | Error _ -> Error (`Down Errno.EHOSTUNREACH)
        | Ok c ->
          if String.equal (Client.principal c) t.rt_principal then begin
            Hashtbl.replace t.rt_conns name c;
            Ok c
          end
          else begin
            metric t "cluster.identity.mismatch";
            span t ~syscall:"cluster.identity"
              ~verdict:(name ^ ":" ^ Client.principal c);
            Error `Mismatch
          end))

let flush_route_cache t =
  if Hashtbl.length t.rt_route_cache > 0 then begin
    metric t "cluster.route.cache.flush";
    Hashtbl.reset t.rt_route_cache
  end;
  t.rt_route_epoch <- Membership.generation t.rt_membership

let sync t =
  match Membership.refresh t.rt_membership with
  | Error _ -> ()  (* unreachable catalog is not evidence servers died *)
  | Ok false -> ()
  | Ok true ->
    let new_view = Membership.view t.rt_membership in
    let after =
      Ring.create ~vnodes:t.rt_vnodes (List.map fst new_view)
    in
    metric t "cluster.rebalance";
    let migrations =
      Replica.rebalance t.rt_net ~src:t.rt_src ~before:t.rt_ring ~after
        ~old_view:t.rt_view ~new_view ~replicas:t.rt_replicas
        ~prefixes:t.rt_prefixes ()
    in
    span t ~syscall:"cluster.rebalance"
      ~verdict:(Printf.sprintf "members=%d migrations=%d"
                  (List.length new_view) migrations);
    (* Sessions to departed nodes die with the view; a re-admitted node
       gets a fresh authentication (and a fresh identity check), a
       fresh breaker, and no lingering shed mark. *)
    Hashtbl.iter
      (fun name _ ->
        if not (List.mem_assoc name new_view) then begin
          Hashtbl.remove t.rt_conns name;
          Hashtbl.remove t.rt_breakers name;
          Hashtbl.remove t.rt_shed_until name
        end)
      (Hashtbl.copy t.rt_conns);
    t.rt_ring <- after;
    t.rt_view <- new_view;
    flush_route_cache t

let route t key =
  t.rt_routes <- t.rt_routes + 1;
  metric t "cluster.route";
  note_prefix t key;
  if Membership.generation t.rt_membership <> t.rt_route_epoch then
    flush_route_cache t;
  let owners =
    match Hashtbl.find_opt t.rt_route_cache key with
    | Some owners ->
      metric t "cluster.route.cache.hit";
      owners
    | None ->
      metric t "cluster.route.cache.miss";
      let owners = Ring.successors t.rt_ring key t.rt_replicas in
      Hashtbl.replace t.rt_route_cache key owners;
      owners
  in
  (match owners with
   | primary :: _ ->
     metric t ("cluster.route." ^ primary);
     span t ~syscall:"cluster.route" ~verdict:(key ^ "->" ^ primary)
   | [] -> ());
  owners

(* A concurrently hedged read: the prepared request goes to the
   primary at once; a timer [hedge_ns] ahead launches the identical
   read on the next replica if the primary has not answered.  First
   success wins.  The loser's exchange is abandoned, not cancelled —
   its reply, whenever it arrives, is discarded by {!reap}
   ([cluster.hedge.late]) and decrements the in-flight gauge exactly
   once.  Only idempotent operations reach here (prepared requests
   carry no request ID), so the duplicated execution is harmless.

   [`Win] carries the winning leg and its response; [`Give e] hands
   the errno to the caller ([ESTALE] falls back to the serial path,
   whose {!Client.call} re-authenticates). *)
let hedged t ~hedge_ns ~primary ~next ~op =
  match Hashtbl.find_opt t.rt_conns primary with
  | None -> `Unhedged  (* no live session: the serial path negotiates *)
  | Some _ when Breaker.state (breaker_for t primary) <> Breaker.Closed ->
    (* A tripped primary is the serial sweep's business — it knows how
       to skip, probe, and fail over; racing a hedge adds nothing. *)
    `Unhedged
  | Some cp ->
    reap t;
    let launch node c =
      t.rt_inflight <- t.rt_inflight + 1;
      {
        fl_tok =
          Network.submit t.rt_net ~src:t.rt_src
            ~timeout_ns:t.rt_policy.Client.timeout_ns ~addr:(Client.addr c)
            (Client.prepare c op);
        fl_node = node;
        fl_counted = false;
        fl_fed = false;
      }
    in
    (* The loser is still in flight when the winner returns: remember
       it so a later [reap] discards its reply and balances the
       gauge. *)
    let abandon fl =
      match Network.poll fl.fl_tok with
      | None -> t.rt_outstanding <- fl :: t.rt_outstanding
      | Some r ->
        feed t fl r;
        metric t "cluster.hedge.late";
        settle t fl
    in
    let pf = launch primary cp in
    let sf = ref None in
    let try_hedge () =
      if !sf = None then
        match Hashtbl.find_opt t.rt_conns next with
        | None -> ()
        | Some _
          when shedding t next
               || Breaker.state (breaker_for t next) <> Breaker.Closed ->
          (* Hedged work is shed first: never launch the extra leg at a
             node that is shedding or breaker-tripped. *)
          metric t "cluster.hedge.skip"
        | Some cs ->
          metric t "cluster.hedge.launched";
          sf := Some (launch next cs)
    in
    Network.at t.rt_net
      (Int64.add (Clock.now (Network.clock t.rt_net)) hedge_ns)
      (fun () -> if Network.poll pf.fl_tok = None then try_hedge ());
    let outcome fl =
      match Network.poll fl.fl_tok with
      | None -> None
      | Some r ->
        feed t fl r;
        (match r with
         | Ok text -> Some (Client.interpret text)
         | Error e -> Some (Error e))
    in
    let rec drive () =
      match outcome pf with
      | Some (Ok resp) ->
        settle t pf;
        (match !sf with Some fl -> abandon fl | None -> ());
        `Win (`Primary, resp)
      | Some (Error pe) when transient pe ->
        settle t pf;
        (* The primary is out: ride the hedge leg if one is flying,
           launch the failover leg if not. *)
        try_hedge ();
        (match !sf with
         | None -> `Give pe
         | Some fl ->
           (match outcome fl with
            | Some (Ok resp) ->
              settle t fl;
              `Win (`Secondary, resp)
            | Some (Error se) ->
              settle t fl;
              `Give se
            | None ->
              if Network.step t.rt_net then drive ()
              else begin
                settle t fl;
                `Give pe
              end))
      | Some (Error pe) ->
        (* An application verdict (or a stale session): final here —
           abandon any hedge leg rather than shop for another answer. *)
        settle t pf;
        (match !sf with Some fl -> abandon fl | None -> ());
        `Give pe
      | None ->
        (match !sf with
         | Some fl when not fl.fl_counted ->
           (match outcome fl with
            | Some (Ok resp) ->
              settle t fl;
              abandon pf;
              `Win (`Secondary, resp)
            | Some (Error _) ->
              (* The hedge lost its own race; keep riding the primary. *)
              settle t fl;
              if Network.step t.rt_net then drive ()
              else begin
                settle t pf;
                `Give Errno.ETIMEDOUT
              end
            | None ->
              if Network.step t.rt_net then drive ()
              else begin
                settle t pf;
                settle t fl;
                `Give Errno.ETIMEDOUT
              end)
         | _ ->
           if Network.step t.rt_net then drive ()
           else begin
             settle t pf;
             `Give Errno.ETIMEDOUT
           end)
    in
    drive ()

(* A read sweeps the replica set: primary first, hedged failover to the
   next replica on a transport fault.  An application verdict (EACCES,
   ENOENT...) from a live replica is final — replicas run the same ACL
   checks, so shopping for a different answer is both useless and
   wrong. *)
let read_on t path ?hedge f =
  let attempt () =
    let tried = ref false in
    let rec go last = function
      | [] ->
        (match last with
         | Some e -> Error e
         | None -> Error Errno.EHOSTUNREACH)
      | name :: rest ->
        let failover e =
          if rest = [] then Error e
          else begin
            t.rt_failovers <- t.rt_failovers + 1;
            metric t "cluster.failover";
            span t ~syscall:"cluster.failover"
              ~verdict:(name ^ ":" ^ Errno.to_string e);
            go (Some e) rest
          end
        in
        let br = breaker_for t name in
        if not (Breaker.allow br) then begin
          (* Short-circuit: skip the known-bad replica without spending
             a timeout on it, surfacing why it was abandoned. *)
          metric t "cluster.breaker.skip";
          failover (Breaker.last_errno br)
        end
        else
          (match conn_for t name with
           | Error `Mismatch -> Error Errno.EPERM
           | Error (`Down e) ->
             Breaker.failure ~errno:e br;
             failover e
           | Ok c ->
             tried := true;
             (match f c with
              | Error Errno.EAGAIN as r ->
                (* Shedding is an answer, not an absence. *)
                Breaker.success br;
                note_shed t name;
                r
              | Error e when transient e ->
                Breaker.failure ~errno:e br;
                failover e
              | r ->
                Breaker.success br;
                r))
    in
    (* If every owner was short-circuited by an open breaker, force one
       request at the primary anyway: breakers must never be able to
       brick a key, only to reorder who pays the timeouts. *)
    let forced owners r =
      match (r, owners) with
      | Error e, primary :: _ when transient e && not !tried ->
        metric t "cluster.breaker.forced";
        let br = breaker_for t primary in
        (match conn_for t primary with
         | Error `Mismatch -> Error Errno.EPERM
         | Error (`Down e2) ->
           Breaker.failure ~errno:e2 br;
           Error e2
         | Ok c ->
           (match f c with
            | Error e2 when transient e2 ->
              Breaker.failure ~errno:e2 br;
              Error e2
            | r2 ->
              Breaker.success br;
              r2))
      | _ -> r
    in
    let owners = route t (Replica.shard_key path) in
    (* Hedging is opt-in ([hedge_ns] at connect) and applies to reads
       that supplied their raw operation; anything it cannot settle —
       no session yet, a stale token needing re-authentication — falls
       back to the serial sweep below. *)
    let hedged_r =
      match (t.rt_hedge_ns, hedge, owners) with
      | Some hedge_ns, Some (op, of_resp), primary :: next :: _ ->
        (match hedged t ~hedge_ns ~primary ~next ~op with
         | `Unhedged -> None
         | `Win (`Primary, resp) -> Some (of_resp resp)
         | `Win (`Secondary, resp) ->
           t.rt_failovers <- t.rt_failovers + 1;
           metric t "cluster.failover";
           span t ~syscall:"cluster.failover" ~verdict:(primary ^ ":hedged");
           Some (of_resp resp)
         | `Give Errno.ESTALE -> None  (* the serial path re-authenticates *)
         | `Give e -> Some (Error e))
      | _ -> None
    in
    match hedged_r with
    | Some r -> r
    | None -> forced owners (go None owners)
  in
  let failovers_before = t.rt_failovers in
  let r =
    match attempt () with
    | Error e when transient e ->
      (* Every replica out of reach: the membership may have moved under
         us.  Re-read the catalog, rebalance, try the new ring once. *)
      metric t "cluster.route.retry";
      sync t;
      attempt ()
    | r -> r
  in
  (match r with
   | Ok _ when t.rt_failovers > failovers_before ->
     (* Read repair, hedged-read flavour: a later replica answered
        after an earlier owner failed, so some copy of this key is
        unreachable or behind.  Nudge the key's primary with an
        untrusted hint — it schedules a digest check the primary
        performs itself, so a wrong guess costs one comparison. *)
     let key = Replica.shard_key path in
     (match Ring.lookup t.rt_ring key with
      | None -> ()
      | Some primary ->
        (match List.assoc_opt primary t.rt_view with
         | None -> ()
         | Some addr ->
           metric t "cluster.read_repair.hint";
           span t ~syscall:"cluster.read_repair" ~verdict:key;
           ignore
             (Network.call t.rt_net ~src:t.rt_src
                ~addr:(Replica.repl_addr addr)
                (Wire.encode [ "hint"; key ]))))
   | _ -> ());
  r

(* A write goes through the primary alone; the primary's server-side
   hook fans it out to the other owners (Replica.forward). *)
let write_on t path f =
  let attempt () =
    match route t (Replica.shard_key path) with
    | [] -> Error Errno.EHOSTUNREACH
    | primary :: _ ->
      (* Writes never skip the primary — there is no other correct
         destination — but they still feed its breaker, so the read
         side learns from write-path faults too. *)
      let br = breaker_for t primary in
      (match conn_for t primary with
       | Error `Mismatch -> Error Errno.EPERM
       | Error (`Down e) ->
         Breaker.failure ~errno:e br;
         Error e
       | Ok c ->
         (match f c with
          | Error Errno.EAGAIN as r ->
            Breaker.success br;
            note_shed t primary;
            r
          | Error e when transient e ->
            Breaker.failure ~errno:e br;
            Error e
          | r ->
            Breaker.success br;
            r))
  in
  match attempt () with
  | Error e when transient e ->
    metric t "cluster.route.retry";
    sync t;
    attempt ()
  | r -> r

let connect ?(src = "client") ?(policy = Client.default_policy) ?(replicas = 2)
    ?(vnodes = 64) ?hedge_ns ?trace net ~catalog ~credentials =
  let membership = Membership.create ~src net ~catalog in
  match Membership.refresh membership with
  | Error e -> Error ("cluster: catalog unreachable: " ^ e)
  | Ok _ ->
    let view = Membership.view membership in
    if view = [] then Error "cluster: no servers advertised"
    else begin
      let t =
        {
          rt_net = net;
          rt_src = src;
          rt_policy = policy;
          rt_creds = credentials;
          rt_membership = membership;
          rt_replicas = max 1 replicas;
          rt_vnodes = vnodes;
          rt_hedge_ns = hedge_ns;
          rt_trace = trace;
          rt_conns = Hashtbl.create 8;
          rt_ring = Ring.create ~vnodes (List.map fst view);
          rt_view = view;
          rt_principal = "";
          rt_prefixes = [];
          rt_routes = 0;
          rt_failovers = 0;
          rt_inflight = 0;
          rt_outstanding = [];
          rt_route_cache = Hashtbl.create 32;
          rt_route_epoch = Membership.generation membership;
          rt_breakers = Hashtbl.create 8;
          rt_shed_until = Hashtbl.create 8;
        }
      in
      (* Authenticate to every shard up front and require one
         principal everywhere: the paper's consistency-of-identity
         invariant, now a cluster admission check. *)
      let rec admit = function
        | [] -> Ok t
        | (name, addr) :: rest ->
          (match
             Client.connect ~src ~policy net ~addr ~credentials
           with
           | Error m -> Error (Printf.sprintf "cluster: shard %s: %s" name m)
           | Ok c ->
             if String.equal t.rt_principal "" then begin
               t.rt_principal <- Client.principal c;
               Hashtbl.replace t.rt_conns name c;
               admit rest
             end
             else if String.equal (Client.principal c) t.rt_principal then begin
               Hashtbl.replace t.rt_conns name c;
               admit rest
             end
             else begin
               metric t "cluster.identity.mismatch";
               Error
                 (Printf.sprintf
                    "cluster: identity differs across shards: %s negotiated \
                     %S, others %S — refusing to proceed"
                    name (Client.principal c) t.rt_principal)
             end)
      in
      admit view
    end

(* {1 The routed client API} *)

let mkdir t path = write_on t path (fun c -> Client.mkdir c path)
let rmdir t path = write_on t path (fun c -> Client.rmdir c path)
let unlink t path = write_on t path (fun c -> Client.unlink c path)
let put t ~path ~data = write_on t path (fun c -> Client.put c ~path ~data)

let of_data = function
  | Protocol.R_data d -> Ok d
  | _ -> Error Errno.EINVAL

let of_stat = function
  | Protocol.R_stat st -> Ok st
  | _ -> Error Errno.EINVAL

let of_names = function
  | Protocol.R_names names -> Ok names
  | _ -> Error Errno.EINVAL

let of_str = function
  | Protocol.R_str s -> Ok s
  | _ -> Error Errno.EINVAL

let get t path =
  read_on t path
    ~hedge:(Protocol.Get path, of_data)
    (fun c -> Client.get c path)

let stat t path =
  read_on t path
    ~hedge:(Protocol.Stat path, of_stat)
    (fun c -> Client.stat c path)

let readdir t path =
  read_on t path
    ~hedge:(Protocol.Readdir path, of_names)
    (fun c -> Client.readdir c path)

let getacl t path =
  read_on t path
    ~hedge:(Protocol.Getacl path, of_str)
    (fun c -> Client.getacl c path)

let setacl t ~path ~entry =
  write_on t path (fun c -> Client.setacl c ~path ~entry)

let rename t ~src ~dst =
  if String.equal (Replica.shard_key src) (Replica.shard_key dst) then
    write_on t src (fun c -> Client.rename c ~src ~dst)
  else begin
    (* Shards are disjoint namespaces on (generally) different servers:
       a cross-shard rename is a cross-device rename. *)
    metric t "cluster.exdev";
    Error Errno.EXDEV
  end

let exec t ?cwd ~path ~args () =
  let cwd = match cwd with Some c -> c | None -> Path.dirname path in
  let cwd_key = Replica.shard_key cwd in
  if
    String.equal cwd_key (Replica.shard_key path)
    || String.equal cwd_key "/"  (* the root exists on every shard *)
  then write_on t path (fun c -> Client.exec c ~cwd ~path ~args ())
  else begin
    metric t "cluster.exdev";
    Error Errno.EXDEV
  end

(* Delegated exec rides the write path like [exec]: the chain travels
   inside the operation, the primary validates it, and the server-side
   mutation hook forwards the whole delegated op to the other owners —
   each replica revalidates the chain against its own revocation view,
   so a replica that already heard a [Revoke] refuses the replay. *)
let exec_delegated t ~chain ?cwd ~path ~args () =
  let cwd = match cwd with Some c -> c | None -> Path.dirname path in
  let cwd_key = Replica.shard_key cwd in
  if
    String.equal cwd_key (Replica.shard_key path)
    || String.equal cwd_key "/"
  then begin
    metric t "cluster.delegated_exec";
    write_on t path (fun c ->
        Client.exec_delegated c ~chain ~cwd ~path ~args ())
  end
  else begin
    metric t "cluster.exdev";
    Error Errno.EXDEV
  end

(* Revocation is root-key state, like the export root's ACL: the write
   goes to the root primary and the server-side hook fans it to every
   member.  Partitioned members catch up by epoch gossip. *)
let revoke t who = write_on t "/" (fun c -> Client.revoke c who)

let delegation_epoch t who =
  read_on t "/" (fun c -> Client.delegation_epoch c who)

let checksum t path =
  read_on t path
    ~hedge:(Protocol.Checksum path, of_str)
    (fun c -> Client.checksum c path)

let whoami t =
  read_on t "/" ~hedge:(Protocol.Whoami, of_str) (fun c -> Client.whoami c)
