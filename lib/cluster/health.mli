(** Per-node health scoring for the control plane.

    Each node's pressure signals — mutation-queue depth, session-table
    fullness, brownout, error rate, heartbeat age, tail latency over
    SLO — are folded into one 0..100 score (100 = idle and healthy),
    smoothed with an integer EWMA, and classified into a level with
    dual-threshold hysteresis so a node oscillating around one boundary
    cannot flap between levels.  The {!Autoscaler} consumes the
    aggregate; the router and operators read per-node levels.

    Everything is deterministic and driven by the simulated clock:
    sampling is explicit ({!observe}), never background. *)

type level =
  | Healthy  (** Full member: takes reads, writes, hedges. *)
  | Degraded  (** Under pressure: avoid hedging onto it. *)
  | Unhealthy  (** Shedding or near-dead: candidate for replacement. *)

val level_name : level -> string

type sample = {
  s_queue_pct : int;  (** Parked-mutation queue fullness, 0..100. *)
  s_session_pct : int;  (** Session-table fullness, 0..100. *)
  s_brownout : bool;  (** Server currently shedding mutations. *)
  s_error_pct : int;  (** Errors+timeouts as % of recent requests. *)
  s_hb_age_pct : int;  (** Heartbeat age as % of the lease window. *)
  s_p95_slo_pct : int;  (** p95 latency as % of SLO (100 = at SLO). *)
}

val idle_sample : sample
(** All-quiet: scores 100.  Use as a base for record updates. *)

val sample_server :
  ?error_pct:int ->
  ?hb_age_pct:int ->
  ?p95_slo_pct:int ->
  Idbox_chirp.Server.t ->
  sample
(** A sample straight off a server's own gauges (queue, sessions,
    brownout).  Error rate, heartbeat age and latency live elsewhere
    (metric deltas, the membership view, the caller's histogram) and
    default to 0 — pass them when known. *)

type config = {
  ewma_weight : int;  (** EWMA divisor; 4 ≈ half-life of ~3 samples. *)
  healthy_enter : int;  (** Score to (re)gain [Healthy]. *)
  healthy_exit : int;  (** Score below which [Healthy] is lost. *)
  unhealthy_enter : int;  (** Score below which [Unhealthy] begins. *)
  unhealthy_exit : int;  (** Score to leave [Unhealthy]. *)
}

val default_config : config
(** EWMA weight 4; healthy 70/60, unhealthy 35/45. *)

type t

val create :
  ?config:config ->
  ?trace:Idbox_kernel.Trace.ring ->
  clock:Idbox_kernel.Clock.t ->
  metrics:Idbox_kernel.Metrics.t ->
  unit ->
  t
(** An empty scorer.  Level transitions emit [cluster.health.up] /
    [cluster.health.down] counters and, when [trace] is given,
    [cluster.health] spans. *)

val observe : t -> name:string -> sample -> int
(** Fold one sample into [name]'s smoothed score and return it.  A
    first sample seeds the score directly (no warm-up grace). *)

val score : t -> string -> int
(** Current smoothed score (100 for an unknown node). *)

val level : t -> string -> level
(** Current level ([Healthy] for an unknown node). *)

val samples : t -> string -> int
(** How many samples have been folded in for [name]. *)

val forget : t -> string -> unit
(** Drop a node's state (after scale-down) so a later node reusing the
    name starts fresh. *)

val nodes : t -> (string * int * level) list
(** All known nodes as [(name, score, level)], sorted by name. *)

val aggregate : t -> int
(** Mean smoothed score across known nodes; 100 when none are known
    (an empty cluster is the autoscaler's min-envelope's business, not
    a health emergency). *)
