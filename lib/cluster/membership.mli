(** The cluster's membership view, driven by catalog leases.

    Nothing here invents liveness: the catalog already treats
    registrations as leases (a server heartbeats or is evicted after
    its staleness window), so membership is exactly "what the catalog
    currently advertises".  A node cut off by a partition stops
    heartbeating, ages out of the catalog, and drops from this view —
    ejected.  Its first heartbeat after the partition heals re-registers
    it, and the next {!refresh} re-admits it.

    [refresh] is explicit (the simulated world has no background
    threads): callers refresh at their own cadence and learn whether
    the view changed, which is the router's cue to rebalance. *)

type t

val create :
  ?src:string -> ?timeout_ns:int64 -> Idbox_net.Network.t -> catalog:string -> t
(** A view of the servers advertised by the catalog at [catalog].
    [src] (default ["client"]) names the observing host for partition
    matching; [timeout_ns] bounds each catalog read (cluster nodes
    refreshing from inside a request handler pass a short one).  The
    view starts empty; call {!refresh}. *)

val refresh : t -> (bool, string) result
(** Re-read the catalog.  [Ok true] when the membership changed
    (join or leave — counted as [cluster.member.join] /
    [cluster.member.leave]), [Ok false] when it is unchanged, [Error]
    when the catalog is unreachable — in which case the previous view
    is kept: an unreachable catalog is not evidence the servers died. *)

val view : t -> (string * string) list
(** Current members as [(name, addr)], sorted by name. *)

val names : t -> string list

val addr_of : t -> string -> string option
(** The advertised address of a member, by name. *)

val generation : t -> int
(** Bumped on every change-observing {!refresh} (starts at 0). *)
