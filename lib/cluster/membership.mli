(** The cluster's membership view, driven by catalog leases.

    Nothing here invents liveness: the catalog already treats
    registrations as leases (a server heartbeats or is evicted after
    its staleness window), so membership is exactly "what the catalog
    currently advertises".  A node cut off by a partition stops
    heartbeating, ages out of the catalog, and drops from this view —
    ejected.  Its first heartbeat after the partition heals re-registers
    it, and the next {!refresh} re-admits it.

    [refresh] is explicit (the simulated world has no background
    threads): callers refresh at their own cadence and learn whether
    the view changed, which is the router's cue to rebalance. *)

type t

type liveness = Alive | Suspect | Dead

val liveness_name : liveness -> string

type node_health = {
  nh_name : string;
  nh_addr : string;
  nh_heartbeat_age_ns : int64;  (** Since the node's last heartbeat. *)
  nh_lease_left_ns : int64;  (** Until the catalog would evict it. *)
  nh_liveness : liveness;
}

val create :
  ?src:string ->
  ?timeout_ns:int64 ->
  ?staleness_ns:int64 ->
  Idbox_net.Network.t ->
  catalog:string ->
  t
(** A view of the servers advertised by the catalog at [catalog].
    [src] (default ["client"]) names the observing host for partition
    matching; [timeout_ns] bounds each catalog read (cluster nodes
    refreshing from inside a request handler pass a short one);
    [staleness_ns] (default 300 s) must match the catalog's lease
    window — it is how {!health} converts heartbeat age into remaining
    lease.  The view starts empty; call {!refresh}. *)

val refresh : t -> (bool, string) result
(** Re-read the catalog.  [Ok true] when the membership changed
    (join or leave — counted as [cluster.member.join] /
    [cluster.member.leave]), [Ok false] when it is unchanged, [Error]
    when the catalog is unreachable — in which case the previous view
    is kept: an unreachable catalog is not evidence the servers died. *)

val view : t -> (string * string) list
(** Current members as [(name, addr)], sorted by name. *)

val names : t -> string list

val addr_of : t -> string -> string option
(** The advertised address of a member, by name. *)

val generation : t -> int
(** Bumped on every change-observing {!refresh} (starts at 0). *)

val health : t -> node_health list
(** Per-node liveness, judged from the {e last refresh} snapshot
    against the current clock: each node's heartbeat age and remaining
    lease keep aging between refreshes, so a node that died since we
    last looked drifts from [Alive] through [Suspect] (past half the
    lease) to [Dead] (lease exhausted) without another catalog round
    trip.  Sorted by name. *)

val health_of : t -> string -> node_health option
(** One member's health, by name. *)
