(** A consistent-hash ring over node names, with virtual nodes.

    Keys (namespace prefixes) and nodes hash onto the same 64-bit
    circle; a key belongs to the first node point at or clockwise from
    its hash.  Each node contributes [vnodes] points, smoothing the
    load split.  Hashing is MD5-based, so placement is deterministic
    across runs and processes — a property the cluster's byte-identical
    chaos replays rely on.

    The structural guarantee of consistent hashing, which the property
    suite pins down: adding a node moves keys only {e onto} the new
    node; removing a node moves only the keys it owned.  Everything
    else stays put, so rebalancing touches only the affected ranges. *)

type t

val create : ?vnodes:int -> string list -> t
(** A ring over the given node names (duplicates collapsed).
    [vnodes] defaults to 64 points per node. *)

val nodes : t -> string list
(** Member names, sorted. *)

val vnodes : t -> int

val is_empty : t -> bool

val add : t -> string -> t
(** The ring with one more node (no-op when already present). *)

val remove : t -> string -> t
(** The ring without a node (no-op when absent). *)

val key_hash : string -> int64
(** The position a key occupies on the circle (exposed for tests). *)

val lookup : t -> string -> string option
(** The node owning a key; [None] on an empty ring. *)

val successors : t -> string -> int -> string list
(** [successors t key n]: the first [min n (nodes t)] {e distinct}
    nodes clockwise from the key's position — the key's replica set,
    primary first. *)

val owners_equal : t -> t -> string -> int -> bool
(** Do two rings assign the same replica set (same order) to a key? *)
