module Network = Idbox_net.Network
module Fault = Idbox_net.Fault
module Breaker = Idbox_net.Breaker
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Trace = Idbox_kernel.Trace
module Server = Idbox_chirp.Server
module Protocol = Idbox_chirp.Protocol
module Wire = Idbox_chirp.Wire
module Principal = Idbox_identity.Principal
module Path = Idbox_vfs.Path
module Errno = Idbox_vfs.Errno

let repl_addr addr = addr ^ "#repl"

let shard_key path =
  match Path.components path with [] -> "/" | c :: _ -> c

(* {1 Snapshot entries on the wire} *)

let encode_entry = function
  | Server.Snap_dir { path; acl } -> Wire.encode [ "dir"; path; acl ]
  | Server.Snap_file { path; data } -> Wire.encode [ "file"; path; data ]

let decode_entry blob =
  match Wire.decode blob with
  | Ok [ "dir"; path; acl ] -> Ok (Server.Snap_dir { path; acl })
  | Ok [ "file"; path; data ] -> Ok (Server.Snap_file { path; data })
  | Ok _ -> Error "bad snapshot entry"
  | Error e -> Error e

let decode_entries blobs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | blob :: rest ->
      (match decode_entry blob with
       | Ok e -> go (e :: acc) rest
       | Error e -> Error e)
  in
  go [] blobs

(* {1 The attached node} *)

(* A shard key known (or suspected) to be diverged on some peer: the
   anti-entropy pass checks these first, without waiting for its sweep
   cadence.  Fed by forward failures and by untrusted hints. *)
type pending = {
  pd_key : string;
  pd_peer : string;  (* member name, or "" when unknown (a hint) *)
  pd_errno : string;  (* why the forward failed, for the trace *)
}

type node = {
  nd_net : Network.t;
  nd_server : Server.t;
  nd_name : string;
  nd_addr : string;
  nd_src : string;  (* this node's host, for partition matching *)
  nd_membership : Membership.t;
  nd_replicas : int;
  nd_vnodes : int;
  nd_refresh_ns : int64;
  nd_fwd_timeout_ns : int64;
  nd_trace : Trace.ring option;
  nd_pending : (string, pending) Hashtbl.t;  (* keyed on key ^ "@" ^ peer *)
  nd_pending_cap : int;
  (* Per-peer circuit breakers on the forward path: a peer that keeps
     timing out is skipped (straight to the pending-repair set) instead
     of charging every mutation a forward timeout. *)
  nd_breakers : (string, Breaker.t) Hashtbl.t;
  mutable nd_ring : Ring.t;
  mutable nd_last_refresh : int64;
}

let name node = node.nd_name
let ring node = node.nd_ring
let server node = node.nd_server
let membership node = node.nd_membership
let src node = node.nd_src
let net node = node.nd_net
let replicas node = node.nd_replicas
let fwd_timeout_ns node = node.nd_fwd_timeout_ns

let metric node m =
  Metrics.incr (Metrics.counter (Network.metrics node.nd_net) m)

(* {1 The pending-repair set}

   Bounded: under a long partition every forward fails, and an
   unbounded set would just be a second queue to lose.  Dropping is
   safe — the cadence sweep covers every local shard key anyway; the
   pending set only buys priority. *)

let note_pending node ~key ~peer ~errno =
  let id = key ^ "@" ^ peer in
  if Hashtbl.mem node.nd_pending id then
    Hashtbl.replace node.nd_pending id { pd_key = key; pd_peer = peer; pd_errno = errno }
  else if Hashtbl.length node.nd_pending >= node.nd_pending_cap then
    metric node "cluster.repair.pending.drop"
  else begin
    Hashtbl.replace node.nd_pending id
      { pd_key = key; pd_peer = peer; pd_errno = errno };
    metric node "cluster.repair.pending"
  end

let pending_count node = Hashtbl.length node.nd_pending

(* Drain the set in deterministic (sorted) order. *)
let take_pending node =
  let all = Hashtbl.fold (fun _ p acc -> p :: acc) node.nd_pending [] in
  Hashtbl.reset node.nd_pending;
  List.sort
    (fun a b ->
      match String.compare a.pd_key b.pd_key with
      | 0 -> String.compare a.pd_peer b.pd_peer
      | c -> c)
    all
  |> List.map (fun p -> (p.pd_key, p.pd_peer, p.pd_errno))

let span node ~identity ~syscall ~verdict ~cost_ns =
  match node.nd_trace with
  | None -> ()
  | Some ring ->
    Trace.span ring ~time:(Clock.now (Network.clock node.nd_net)) ~pid:0
      ~identity ~syscall ~verdict ~cost_ns

let breaker_for node peer =
  match Hashtbl.find_opt node.nd_breakers peer with
  | Some b -> b
  | None ->
    let b =
      Breaker.create ~threshold:3 ~reset_ns:500_000_000L
        ~prefix:"cluster.breaker"
        ~on_transition:(fun subject state ->
          span node ~identity:node.nd_name ~syscall:"cluster.breaker"
            ~verdict:(subject ^ ":" ^ Breaker.state_name state) ~cost_ns:0L)
        ~clock:(Network.clock node.nd_net)
        ~metrics:(Network.metrics node.nd_net)
        peer
    in
    Hashtbl.replace node.nd_breakers peer b;
    b

(* Track membership lazily: at most one catalog read per refresh
   interval, so a hot write path does not double the catalog's load. *)
let maybe_refresh node =
  let now = Clock.now (Network.clock node.nd_net) in
  if
    Ring.is_empty node.nd_ring
    || Int64.sub now node.nd_last_refresh >= node.nd_refresh_ns
  then begin
    node.nd_last_refresh <- now;
    match Membership.refresh node.nd_membership with
    | Ok true ->
      node.nd_ring <-
        Ring.create ~vnodes:node.nd_vnodes (Membership.names node.nd_membership)
    | Ok false | Error _ -> ()
  end

let tick = maybe_refresh

let refresh_now node =
  node.nd_last_refresh <- Clock.now (Network.clock node.nd_net);
  match Membership.refresh node.nd_membership with
  | Ok true ->
    node.nd_ring <-
      Ring.create ~vnodes:node.nd_vnodes (Membership.names node.nd_membership)
  | Ok false | Error _ -> ()

(* Forward one fresh mutation to the other owners of its shard key.
   Root-key mutations (the root ACL) go to every member: each node
   anchors ACL inheritance at its own export root. *)
let forward node ~identity op =
  maybe_refresh node;
  let key = shard_key (Protocol.operation_path op) in
  let owners =
    if String.equal key "/" then Ring.nodes node.nd_ring
    else Ring.successors node.nd_ring key node.nd_replicas
  in
  let peers =
    List.filter (fun n -> not (String.equal n node.nd_name)) owners
  in
  let principal = Principal.to_string identity in
  let payload =
    Wire.encode [ "apply"; principal; Protocol.operation_to_wire op ]
  in
  (* Fan out concurrently: every peer's forward is submitted before any
     verdict is awaited, so the legs share the wire and the fan-out
     costs one round trip, not one per peer.  Awaiting pumps the single
     event loop, so all in-flight forwards progress together; verdicts
     are collected in submission order, keeping metrics and the pending
     set deterministic. *)
  let flights =
    List.filter_map
      (fun peer ->
        match Membership.addr_of node.nd_membership peer with
        | None -> None
        | Some addr ->
          if not (Breaker.allow (breaker_for node peer)) then begin
            (* Known-bad peer: skip the timeout, go straight to the
               pending-repair set — anti-entropy will make it whole
               once the breaker probes it back. *)
            metric node "cluster.replica.skip";
            note_pending node ~key ~peer ~errno:"short_circuit";
            span node ~identity:principal ~syscall:"cluster.replicate"
              ~verdict:(peer ^ ":short_circuit") ~cost_ns:0L;
            None
          end
          else begin
            metric node "cluster.replicate";
            let t0 = Clock.now (Network.clock node.nd_net) in
            Some
              ( peer,
                t0,
                Network.submit node.nd_net ~src:node.nd_src
                  ~timeout_ns:node.nd_fwd_timeout_ns ~addr:(repl_addr addr)
                  payload )
          end)
      peers
  in
  List.iter
    (fun (peer, t0, tok) ->
      let verdict =
        match Network.await node.nd_net tok with
        | Ok reply ->
          (* Any decoded reply — even a rejection — proves liveness. *)
          Breaker.success (breaker_for node peer);
          (match Wire.decode reply with
           | Ok [ "ok" ] -> "ok"
           | Ok ("error" :: e :: _) -> e
           | Ok _ | Error _ -> "EIO")
        | Error e ->
          Breaker.failure ~errno:e (breaker_for node peer);
          Errno.to_string e
      in
      if not (String.equal verdict "ok") then begin
        metric node "cluster.replica.fail";
        (* The peer missed (or rejected) this mutation: its copy of
           the key is now suspect.  Remember exactly which member and
           why, so anti-entropy checks this range first. *)
        note_pending node ~key ~peer ~errno:verdict
      end;
      span node ~identity:principal ~syscall:"cluster.replicate"
        ~verdict:(peer ^ ":" ^ verdict)
        ~cost_ns:(Int64.sub (Clock.now (Network.clock node.nd_net)) t0))
    flights

let handle node payload =
  match Wire.decode payload with
  | Ok [ "apply"; principal; opblob ] ->
    (match Protocol.operation_of_wire opblob with
     | Error _ -> Wire.encode [ "error"; "EINVAL" ]
     | Ok op ->
       (match
          Server.apply_replicated node.nd_server
            ~identity:(Principal.of_string principal) op
        with
        | Protocol.R_error (e, _) -> Wire.encode [ "error"; Errno.to_string e ]
        | _ -> Wire.encode [ "ok" ]))
  | Ok [ "snapshot"; prefix; depth ] ->
    let recurse = not (String.equal depth "dir") in
    (match Server.snapshot_subtree ~recurse node.nd_server prefix with
     | Error e -> Wire.encode [ "error"; Errno.to_string e ]
     | Ok entries -> Wire.encode ("ok" :: List.map encode_entry entries))
  | Ok ("install" :: blobs) ->
    (match decode_entries blobs with
     | Error _ -> Wire.encode [ "error"; "EINVAL" ]
     | Ok entries ->
       (match Server.install_snapshot node.nd_server entries with
        | Ok () -> Wire.encode [ "ok" ]
        | Error e -> Wire.encode [ "error"; Errno.to_string e ]))
  | Ok [ "digest"; prefix; "acl" ] ->
    (* ACL text alone — the root-key comparison, where child names
       legitimately differ between members (each holds its own shards). *)
    (match Server.snapshot_subtree ~recurse:false node.nd_server prefix with
     | Ok (Server.Snap_dir { acl; _ } :: _) ->
       Wire.encode [ "ok"; Digest.to_hex (Digest.string acl) ]
     | Ok _ -> Wire.encode [ "ok"; "" ]
     | Error e -> Wire.encode [ "error"; Errno.to_string e ])
  | Ok [ "digest"; prefix; depth ] ->
    (* The node computes (and vouches for) its own digest — a peer
       never has to trust shipped metadata about local state. *)
    let recurse = not (String.equal depth "dir") in
    (match Server.subtree_digest ~recurse node.nd_server prefix with
     | Ok d -> Wire.encode [ "ok"; d ]
     | Error Errno.ENOENT -> Wire.encode [ "ok"; "" ]  (* absent = empty *)
     | Error e -> Wire.encode [ "error"; Errno.to_string e ])
  | Ok ("hint" :: key :: rest) ->
    (* An untrusted nudge ("this key looked diverged from where I sat"):
       it only schedules a digest check the node performs itself, so a
       bogus hint costs one comparison, never an install.  An optional
       origin names a member to include in the check — how a non-owner
       stuck holding a key gets itself repaired. *)
    metric node "cluster.repair.hint";
    let peer = match rest with origin :: _ -> origin | [] -> "" in
    note_pending node ~key ~peer ~errno:"hint";
    Wire.encode [ "ok" ]
  | Ok ("epochs" :: fields) ->
    (* Bidirectional revocation gossip: max-merge the caller's
       (delegator, epoch) entries, reply with the local ones.  Both
       sides only grow, so one exchange converges the pair regardless
       of who initiated or how often it repeats. *)
    let rec pairs acc = function
      | delegator :: epoch :: rest ->
        (match int_of_string_opt epoch with
         | Some e -> pairs ((delegator, e) :: acc) rest
         | None -> acc)
      | _ -> acc
    in
    if Server.merge_epochs node.nd_server (pairs [] fields) then
      metric node "cluster.revocation.merge";
    Wire.encode
      ("ok"
      :: List.concat_map
           (fun (delegator, epoch) -> [ delegator; string_of_int epoch ])
           (Server.epoch_entries node.nd_server))
  | Ok ("repair" :: prefix :: blobs) ->
    (* Authoritative content from the shard's primary: make the local
       subtree exactly equal, deletions included. *)
    (match decode_entries blobs with
     | Error _ -> Wire.encode [ "error"; "EINVAL" ]
     | Ok entries ->
       (match Server.install_subtree_exact node.nd_server ~prefix entries with
        | Ok () -> Wire.encode [ "ok" ]
        | Error e -> Wire.encode [ "error"; Errno.to_string e ]))
  | Ok _ | Error _ -> Wire.encode [ "error"; "EINVAL" ]

let attach ~net ~server ~name ~catalog ?(replicas = 2) ?(vnodes = 64)
    ?(refresh_interval_ns = 5_000_000_000L) ?(fwd_timeout_ns = 50_000_000L)
    ?(pending_cap = 64) ?trace () =
  let addr = Server.addr server in
  let src = Fault.host_of addr in
  let node =
    {
      nd_net = net;
      nd_server = server;
      nd_name = name;
      nd_addr = addr;
      nd_src = src;
      nd_membership = Membership.create ~src ~timeout_ns:fwd_timeout_ns net ~catalog;
      nd_replicas = max 1 replicas;
      nd_vnodes = vnodes;
      nd_refresh_ns = refresh_interval_ns;
      nd_fwd_timeout_ns = fwd_timeout_ns;
      nd_trace = trace;
      nd_pending = Hashtbl.create 16;
      nd_pending_cap = max 1 pending_cap;
      nd_breakers = Hashtbl.create 8;
      nd_ring = Ring.create ~vnodes [];
      nd_last_refresh = Int64.min_int;
    }
  in
  Network.listen net ~addr:(repl_addr addr) (fun payload -> handle node payload);
  Server.set_mutation_hook server (fun ~identity op -> forward node ~identity op);
  maybe_refresh node;
  node

let detach node =
  Server.clear_mutation_hook node.nd_server;
  Network.unlisten node.nd_net ~addr:(repl_addr node.nd_addr)

(* {1 Rebalance migration} *)

let rebalance net ?(src = "client") ?timeout_ns ~before ~after ~old_view
    ~new_view ~replicas ~prefixes () =
  let metrics = Network.metrics net in
  let count m = Metrics.incr (Metrics.counter metrics m) in
  let addr_in view n = List.assoc_opt n view in
  (* Pull a snapshot of [prefix] from any reachable member of [sources]
     and install it on each of [targets]. *)
  let migrate ~prefix ~depth ~sources ~targets =
    match sources with
    | [] ->
      count "cluster.migrate.lost";
      0
    | _ ->
      let group = "migrate:" ^ prefix in
      Network.define_group net ~name:group
        ~addrs:(List.map repl_addr sources);
      let pulled =
        Network.call_any net ~src ?timeout_ns ~group
          (Wire.encode [ "snapshot"; prefix; depth ])
      in
      Network.drop_group net ~name:group;
      (match pulled with
       | Error _ | Ok (_, "") ->
         count "cluster.migrate.lost";
         0
       | Ok (_, reply) ->
         (match Wire.decode reply with
          | Ok ("ok" :: blobs) ->
            let payload = Wire.encode ("install" :: blobs) in
            List.fold_left
              (fun n target ->
                match
                  Network.call net ~src ?timeout_ns ~addr:(repl_addr target)
                    payload
                with
                | Ok _ ->
                  count "cluster.migrate";
                  n + 1
                | Error _ ->
                  count "cluster.migrate.lost";
                  n)
              0 targets
          | Ok _ | Error _ ->
            count "cluster.migrate.lost";
            0))
  in
  let moved_for prefix =
    let owners_before = Ring.successors before prefix replicas in
    let owners_after = Ring.successors after prefix replicas in
    let gained =
      List.filter (fun n -> not (List.mem n owners_before)) owners_after
    in
    if gained = [] then 0
    else
      let sources =
        List.filter_map (fun n -> addr_in old_view n) owners_before
      in
      let targets = List.filter_map (fun n -> addr_in new_view n) gained in
      migrate ~prefix ~depth:"all" ~sources ~targets
  in
  let prefix_moves =
    List.fold_left
      (fun n prefix ->
        if String.equal prefix "/" then n else n + moved_for prefix)
      0
      (List.sort_uniq String.compare prefixes)
  in
  (* Re-admitted or brand-new members missed any root ACL change made
     while they were out: sync the root directory's ACL alone. *)
  let joined =
    List.filter (fun (n, _) -> not (List.mem_assoc n old_view)) new_view
  in
  let root_moves =
    if joined = [] || old_view = [] then 0
    else
      migrate ~prefix:"/" ~depth:"dir"
        ~sources:(List.map snd old_view)
        ~targets:(List.map snd joined)
  in
  prefix_moves + root_moves
