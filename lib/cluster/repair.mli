(** Anti-entropy repair: background digest exchange and divergence
    repair for a replicated Chirp cluster.

    Forwarding keeps replicas converged only while every forward lands;
    a partition, a crash mid-replication, or a shed request leaves
    replicas silently diverged until the next overwrite.  This module
    closes the gap with the classic anti-entropy loop: the {e primary}
    of each shard key periodically compares Merkle-style subtree
    digests ({!Idbox_chirp.Server.subtree_digest}) with the key's other
    owners and, where they differ, ships its authoritative subtree with
    the exact-install verb — extras on the replica are deleted, so
    digests converge rather than merely growing.  Digest comparisons
    are cheap when nothing changed: each side memoizes per-directory
    digests under generation tokens, so a clean check costs a
    revalidation, not a re-hash.

    Three triggers feed the loop, checked on every {!tick}:

    - the node's bounded pending set ({!Replica.note_pending}) — keys a
      failed forward or an untrusted hint marked suspect, checked
      immediately rather than on cadence;
    - the sweep cadence ([interval_ns]) — every local shard key is
      checked, so divergence with no witness still heals;
    - a membership-generation change (a partition healed, a member
      joined) — a full sweep runs {e one tick later}, after the
      routers' rebalance has migrated fresh data onto re-admitted
      members, so a returning primary does not push its stale copy over
      writes acknowledged while it was out.

    Non-primaries never push: a node that finds itself holding a key it
    is not primary for hands the primary a hint naming itself
    ([cluster.repair.handoff]), and the primary's next check includes
    that copy.  The authority rule is the same one writes follow —
    write-through-primary — so repair cannot resurrect state the write
    path would have rejected.

    One asymmetric case: a primary that holds {e no} copy of a hinted
    key (it was created on the other side of a partition and never
    replicated) first {e adopts} a reachable peer's snapshot as its own
    ([cluster.repair.adopt]) and then repairs normally — acknowledged
    minority-side creations survive the heal by arriving at the
    primary.  Without tombstones, the same rule can resurrect a shard
    root deleted while a stale copy survived elsewhere; the DESIGN
    failure-mode table records this as the accepted cost.

    Repair preserves identity consistency: shipped subtrees carry ACL
    text, verdicts are re-derived from installed ACLs on each node, and
    digests cover ACLs, so policy converges along with data.

    Counters: [cluster.repair.{sweep,check,clean,diverged,push,fail,
    handoff,hint,pending,pending.drop}]. *)

type t

val attach : ?interval_ns:int64 -> Replica.node -> t
(** Attach the anti-entropy loop to a cluster node.  [interval_ns]
    (default 30 s) is the full-sweep cadence; pending keys are
    processed on every tick regardless. *)

val tick : t -> unit
(** Advance the loop: drain and check the pending set, and run a full
    sweep when the cadence has elapsed or a membership change was
    observed on the previous tick.  Worlds call this once per workload
    step, after {!Replica.tick}. *)

val sweep : t -> unit
(** Force a full sweep now (tests and the CLI use this to make
    convergence synchronous).  Includes a revocation-epoch gossip
    round ({!gossip_epochs}) when the local store is non-empty — a
    node that knows nothing has nothing to push, and anything it is
    missing reaches it through a knowing peer's sweep. *)

val gossip_epochs : t -> unit
(** Exchange revocation epochs ({!Idbox_chirp.Server.epoch_entries})
    with every other ring member and max-merge both directions — the
    anti-entropy path that makes a [Revoke] issued during a partition
    reach the minority side after the heal.  Runs as part of every
    {!sweep} whose local store is non-empty; exposed so chaos tests can
    heal revocation state without a full data sweep (the explicit call
    always exchanges, even with an empty store — the bidirectional
    merge is how a partitioned minority {e pulls} epochs it missed).
    Counters: [cluster.revocation.gossip] per peer contacted,
    [cluster.repair.fail] on unreachable peers. *)
