(** A deterministic, clock-driven autoscaler over a {!World}.

    Every [interval_ns] of simulated time, {!tick} samples each
    member's health into a {!Health} scorer and compares the aggregate
    against a hysteresis band: below [grow_below] it adds the next host
    from the (ordered) pool; above [shrink_above] it removes the member
    with the lowest score.  Between the two, it holds — and after any
    action it holds through a [cooldown_ns] window, so one storm's
    backlog cannot trigger a second node before the first has had any
    effect.  Growth and shrinkage are clamped to the
    [min_nodes]..[max_nodes] envelope.

    Everything is driven by the simulated clock, nothing by wall time:
    the same seed and workload produce the same decision history, which
    is what the chaos tests replay. *)

type decision =
  | Grow of string  (** The host that was added. *)
  | Shrink of string  (** The member that was removed. *)
  | Hold of string  (** Why nothing was done. *)

val decision_name : decision -> string

type t

val create :
  ?health_config:Health.config ->
  ?trace:Idbox_kernel.Trace.ring ->
  ?sample:(string -> Health.sample) ->
  ?min_nodes:int ->
  ?max_nodes:int ->
  ?interval_ns:int64 ->
  ?cooldown_ns:int64 ->
  ?grow_below:int ->
  ?shrink_above:int ->
  hosts:string list ->
  World.t ->
  t
(** An autoscaler for [world] drawing from the ordered host pool
    [hosts] (a host already in the world is skipped; growth picks the
    first free one, deterministically).  [sample] overrides how a
    member is measured — the default reads the server's own gauges via
    {!Health.sample_server}; benches pass their own to add latency and
    error signals.  Defaults: min 1, max [List.length hosts], interval
    5 s, cooldown 30 s, grow below 55, shrink above 85.  The first
    {!tick} is due immediately.

    Decisions are counted as [cluster.scale.up] / [cluster.scale.down]
    / [cluster.scale.hold] (cooldown) / [cluster.scale.clamp]
    (envelope or pool edge) / [cluster.scale.error], and emitted as
    [cluster.scale] trace spans when [trace] is given. *)

val tick : t -> decision option
(** Run the control loop if an interval has elapsed; [None] when not
    yet due.  A [Grow]/[Shrink] has already been applied to the world
    (including {!World.settle}) by the time it is returned. *)

val health : t -> Health.t
(** The scorer the loop feeds — for inspecting per-node scores. *)

val decisions : t -> decision list
(** Every decision taken, oldest first. *)

val grows : t -> int
val shrinks : t -> int
