module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Clock = Idbox_kernel.Clock
module Box = Idbox.Box
module Kbox = Idbox.Kbox
module Acl = Idbox_acl.Acl
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno
module Principal = Idbox_identity.Principal

type mode =
  | Direct
  | Boxed
  | Kboxed

type measurement = {
  m_app : string;
  m_mode : mode;
  m_runtime_s : float;
  m_syscalls : int;
  m_trapped : int;
  m_exit_code : int;
}

type comparison = {
  c_app : string;
  c_direct_s : float;
  c_boxed_s : float;
  c_overhead_pct : float;
  c_paper_pct : float;
}

let mode_name = function
  | Direct -> "direct"
  | Boxed -> "boxed"
  | Kboxed -> "in-kernel box"

let visiting_identity = Principal.of_string "globus:/O=UnivNowhere/CN=Fred"

let data_file = "data.bin"
let out_file = "out.bin"
let cc_file = "cc.exe"
let data_blocks = 128 (* 1 MiB staged data file *)

(* The child compiler: header searches, a source read, an object write,
   and some codegen CPU.  Its calls are part of the make workload. *)
let cc_main ~workdir : Program.main =
 fun _args ->
  let data = workdir ^ "/" ^ data_file in
  for _ = 1 to 24 do
    ignore (Libc.stat data)
  done;
  (match Libc.open_file data with
   | Ok fd ->
     ignore (Libc.pread fd ~off:0 ~len:4096);
     ignore (Libc.close fd)
   | Error _ -> ());
  (match
     Libc.open_file ~flags:{ Fs.wronly_create with trunc = false } (workdir ^ "/obj.tmp")
   with
   | Ok fd ->
     ignore (Libc.write fd (String.make 8192 'o'));
     ignore (Libc.close fd)
   | Error _ -> ());
  Libc.compute_us 15_000.;
  0

let workload_main (counts : Spec.counts) ~workdir : Program.main =
 fun _args ->
  let data = workdir ^ "/" ^ data_file in
  let out = workdir ^ "/" ^ out_file in
  let cc = workdir ^ "/" ^ cc_file in
  let block = String.make 8192 'w' in
  let rfd = Libc.check "open data" (Libc.open_file data) in
  let ofd =
    Libc.check "open out" (Libc.open_file ~flags:Fs.wronly_create out)
  in
  (* Interleave the mix in 100 slices so phases overlap as in a real
     run; simulated totals are what matter. *)
  let slices = 100 in
  let per total slice =
    (* Distribute [total] across slices without drift. *)
    (total * (slice + 1) / slices) - (total * slice / slices)
  in
  let woff = ref 0 in
  for slice = 0 to slices - 1 do
    for i = 1 to per counts.Spec.reads_8k slice do
      let blk = (slice + i) mod data_blocks in
      ignore (Libc.check "read8k" (Libc.pread rfd ~off:(blk * 8192) ~len:8192))
    done;
    for _ = 1 to per counts.Spec.writes_8k slice do
      ignore (Libc.check "write8k" (Libc.pwrite ofd ~off:!woff block));
      (* Cycle the output region so the staged file stays bounded. *)
      woff := (!woff + 8192) mod (8192 * 256)
    done;
    for i = 1 to per counts.Spec.metadata slice do
      if i land 1 = 0 then ignore (Libc.check "stat" (Libc.stat data))
      else begin
        let fd = Libc.check "open" (Libc.open_file data) in
        ignore (Libc.check "close" (Libc.close fd))
      end
    done;
    for _ = 1 to per counts.Spec.small_ios slice do
      ignore (Libc.check "smallread" (Libc.pread rfd ~off:0 ~len:64))
    done;
    for _ = 1 to per counts.Spec.spawns slice do
      let pid = Libc.check "spawn cc" (Libc.spawn cc ~args:[ "cc" ]) in
      ignore (Libc.check "wait cc" (Libc.waitpid pid))
    done;
    Libc.compute_us (counts.Spec.compute_ms *. 1000. /. float_of_int slices)
  done;
  ignore (Libc.close rfd);
  ignore (Libc.close ofd);
  0

let fail_errno ctx = function
  | Ok v -> v
  | Error e -> invalid_arg (ctx ^ ": " ^ Errno.message e)

let cc_program_name = "idbox-workload-cc"

let stage_workdir kernel ~owner_uid ~workdir =
  let fs = Kernel.fs kernel in
  fail_errno "stage mkdir" (Fs.mkdir_p fs ~uid:0 workdir);
  fail_errno "stage chown" (Fs.chown fs ~uid:0 ~owner:owner_uid workdir);
  fail_errno "stage data"
    (Fs.write_file fs ~uid:owner_uid (workdir ^ "/" ^ data_file)
       (String.make (data_blocks * 8192) 'd'));
  Program.register cc_program_name (cc_main ~workdir);
  fail_errno "stage cc"
    (Fs.write_file fs ~uid:owner_uid ~mode:0o755 (workdir ^ "/" ^ cc_file)
       (Program.marker cc_program_name))

let finish kernel spec mode pid ~t0 ~calls0 ~trapped0 =
  Kernel.run kernel;
  let stats = Kernel.stats kernel in
  let code =
    match Kernel.exit_code kernel pid with
    | Some code -> code
    | None -> invalid_arg (spec.Spec.w_name ^ ": workload never exited")
  in
  if code <> 0 then
    invalid_arg (Printf.sprintf "%s (%s): exited %d" spec.Spec.w_name
                   (mode_name mode) code);
  {
    m_app = spec.Spec.w_name;
    m_mode = mode;
    m_runtime_s = Clock.to_seconds (Int64.sub (Kernel.now kernel) t0);
    m_syscalls = stats.Kernel.syscalls - calls0;
    m_trapped = stats.Kernel.trapped - trapped0;
    m_exit_code = code;
  }

let run ?cost spec mode ~scale =
  let kernel = Kernel.create ?cost () in
  let operator =
    match Account.add (Kernel.accounts kernel) "operator" with
    | Ok e -> e
    | Error m -> invalid_arg m
  in
  Kernel.refresh_passwd kernel;
  let owner_uid = operator.Account.uid in
  let workdir = "/srv/workload" in
  stage_workdir kernel ~owner_uid ~workdir;
  let counts = spec.Spec.w_counts ~scale in
  let main = workload_main counts ~workdir in
  let stats = Kernel.stats kernel in
  match mode with
  | Direct ->
    let t0 = Kernel.now kernel in
    let calls0 = stats.Kernel.syscalls and trapped0 = stats.Kernel.trapped in
    let pid =
      Kernel.spawn_main kernel ~uid:owner_uid ~cwd:workdir ~main
        ~args:[ spec.Spec.w_name ] ()
    in
    finish kernel spec mode pid ~t0 ~calls0 ~trapped0
  | Boxed ->
    (* The figure apparatus replicates the paper's Parrot, which pays a
       revalidation lstat per check: generation caches stay off here so
       the calibrated overheads keep matching Fig. 4/5.  [bench cache]
       measures the cached engine against this baseline. *)
    let box =
      match Box.create kernel ~supervisor_uid:owner_uid ~identity:visiting_identity ~caching:false () with
      | Ok box -> box
      | Error e -> invalid_arg ("box create: " ^ Errno.message e)
    in
    fail_errno "workdir acl"
      (Box.set_acl box ~dir:workdir (Acl.for_owner visiting_identity));
    let t0 = Kernel.now kernel in
    let calls0 = stats.Kernel.syscalls and trapped0 = stats.Kernel.trapped in
    let pid = Box.spawn_main box ~main ~args:[ spec.Spec.w_name ] in
    Box.set_cwd box ~pid workdir;
    finish kernel spec mode pid ~t0 ~calls0 ~trapped0
  | Kboxed ->
    let kbox = Kbox.install kernel ~supervisor_uid:owner_uid ~caching:false () in
    fail_errno "workdir acl"
      (Idbox.Enforce.write_acl (Kbox.enforcer kbox) ~dir:workdir
         (Acl.for_owner visiting_identity));
    let t0 = Kernel.now kernel in
    let calls0 = stats.Kernel.syscalls and trapped0 = stats.Kernel.trapped in
    let pid =
      Kbox.spawn_main kbox ~identity:visiting_identity ~main
        ~args:[ spec.Spec.w_name ]
    in
    (match Kernel.process_view kernel pid with
     | Some view -> view.Idbox_kernel.View.cwd <- workdir
     | None -> ());
    finish kernel spec mode pid ~t0 ~calls0 ~trapped0

let compare_spec spec ~scale =
  let direct = run spec Direct ~scale in
  let boxed = run spec Boxed ~scale in
  {
    c_app = spec.Spec.w_name;
    c_direct_s = direct.m_runtime_s;
    c_boxed_s = boxed.m_runtime_s;
    c_overhead_pct =
      (boxed.m_runtime_s -. direct.m_runtime_s) /. direct.m_runtime_s *. 100.;
    c_paper_pct = spec.Spec.w_paper_overhead_pct;
  }

let fig5b ?(scale = 0.1) () = List.map (fun spec -> compare_spec spec ~scale) Apps.all

let fig6_ablation ?(scale = 0.1) ?(apps = Apps.all) () =
  List.map
    (fun spec ->
      let direct = run spec Direct ~scale in
      let boxed = run spec Boxed ~scale in
      let kboxed = run spec Kboxed ~scale in
      let pct m =
        (m.m_runtime_s -. direct.m_runtime_s) /. direct.m_runtime_s *. 100.
      in
      (spec.Spec.w_name, pct boxed, pct kboxed))
    apps
