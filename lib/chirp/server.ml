module Kernel = Idbox_kernel.Kernel
module View = Idbox_kernel.View
module Syscall = Idbox_kernel.Syscall
module Clock = Idbox_kernel.Clock
module Network = Idbox_net.Network
module Negotiate = Idbox_auth.Negotiate
module Delegation = Idbox_auth.Delegation
module Principal = Idbox_identity.Principal
module Acl = Idbox_acl.Acl
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Enforce = Idbox.Enforce
module Audit = Idbox.Audit
module Box = Idbox.Box
module Path = Idbox_vfs.Path
module Errno = Idbox_vfs.Errno
module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode

type session = {
  ss_principal : Principal.t;
  ss_method : string;
  mutable ss_last_used : int64;
}

(* A completed non-idempotent operation, remembered for the dedup
   window: a retry carrying the same request ID gets this response back
   instead of a second execution. *)
type done_op = {
  dd_at : int64;
  dd_response : string;  (* already encoded for the wire *)
}

(* A memoized per-directory digest, revalidated by the directory's
   (ino, generation) token: namespace changes, ACL writes and content
   writes all bump the directory generation, so a stale digest can
   never validate. *)
type digest_memo = {
  dg_token : int * int;
  dg_local : string;  (* digest over ACL text + direct children *)
  dg_subdirs : string list;  (* absolute child-directory paths, sorted *)
}

(* A mutation admitted by the event-driven server and parked until the
   next batch tick.  The principal is copied out of the session at
   admission: the operation was authorized then, so it executes even if
   the session expires (or is swept) while parked — and slot accounting
   stays with the session table alone, so a mid-batch expiry can never
   double-release.  [pk_extras] holds connections of retries that
   arrived (same request ID) while the original was still parked: they
   all receive the one response. *)
type parked = {
  pk_conn : Idbox_net.Network.conn;
  pk_principal : Principal.t;
  pk_op : Protocol.operation;
  pk_req_id : string;  (* "" when the client sent none *)
  pk_now : int64;  (* admission time: the dedup timestamp *)
  mutable pk_extras : Idbox_net.Network.conn list;
}

type t = {
  sv_kernel : Kernel.t;
  sv_net : Network.t;
  sv_addr : string;
  sv_owner : View.t;
  sv_export : string;
  acceptor : Negotiate.acceptor;
  enforce : Enforce.t;
  mutable sv_revocations : Delegation.Revocations.t;
  sv_audit : Audit.t;
  sessions : (string, session) Hashtbl.t;
  dedup : (string, done_op) Hashtbl.t;
  max_sessions : int;
  max_parked : int;  (* admission bound on the parked-mutation queue *)
  session_idle_ns : int64;
  dedup_window_ns : int64;
  boxes : (string, Box.t) Hashtbl.t;
  wal : Wal.t;
  checkpoint_every : int;
  digests : (string, digest_memo) Hashtbl.t;
  sv_event_driven : bool;
  sv_flush_ns : int64;  (* batch-tick delay after the first parked op *)
  sv_flush_limit : int;  (* max ops drained per batch tick (the drain rate) *)
  pending_q : parked Queue.t;
  parked_ids : (string, parked) Hashtbl.t;  (* req_id -> parked entry *)
  mutable flush_armed : bool;
  mutable sv_brownout : bool;  (* overload mode: shed mutations, serve reads *)
  mutable ops_since_ckpt : int;
  mutable execs : int;
  mutable token_counter : int;
  mutable mutation_hook :
    (identity:Principal.t -> Protocol.operation -> unit) option;
}

let addr t = t.sv_addr
let export t = t.sv_export
let revocations t = t.sv_revocations
let audit t = t.sv_audit
let owner_uid t = t.sv_owner.View.uid
let exec_count t = t.execs
let session_count t = Hashtbl.length t.sessions
let dedup_size t = Hashtbl.length t.dedup
let event_driven t = t.sv_event_driven
let parked_ops t = Queue.length t.pending_q
let brownout t = t.sv_brownout
let max_parked t = t.max_parked
let max_sessions t = t.max_sessions

let sessions t =
  Hashtbl.fold
    (fun _ s acc -> (Principal.to_string s.ss_principal, s.ss_method) :: acc)
    t.sessions []
  |> List.sort compare

let delegate t req = Kernel.delegate t.sv_kernel t.sv_owner req

let metric t name =
  Idbox_kernel.Metrics.incr
    (Idbox_kernel.Metrics.counter (Kernel.metrics t.sv_kernel) name)

let metric_add t name n =
  if n > 0 then
    Idbox_kernel.Metrics.add
      (Idbox_kernel.Metrics.counter (Kernel.metrics t.sv_kernel) name)
      n

let cost t = Kernel.cost t.sv_kernel
let charge t ns = Kernel.charge t.sv_kernel ns

(* {1 Write-ahead logging}

   Every mutation is appended (and synced) to the WAL before it
   executes; the dedup-journal entry for a request-ID-carrying mutation
   is appended before the response leaves.  [restart] rebuilds the
   whole server state from the checkpoint image plus these records —
   nothing else survives a crash. *)

let wal_record t fields =
  let record = Wire.encode fields in
  Wal.append t.wal record;
  t.ops_since_ckpt <- t.ops_since_ckpt + 1;
  metric t "chirp.wal.append";
  charge t
    (Int64.add (cost t).Idbox_kernel.Cost.wal_append_ns
       (Idbox_kernel.Cost.copy_bytes (cost t) (String.length record)))

let wal_sync t =
  Wal.sync t.wal;
  metric t "chirp.wal.sync";
  charge t (cost t).Idbox_kernel.Cost.wal_sync_ns

let rec contains_exec = function
  | Protocol.Exec _ -> true
  | Protocol.Batch ops -> List.exists contains_exec ops
  | Protocol.Delegated { op; _ } -> contains_exec op
  | _ -> false

(* Map a wire path into the export subtree, rejecting escapes.  Wire
   paths are absolute within the server's virtual namespace, so they are
   anchored under the export root (never substituted for it), and ".."
   may not climb out. *)
let map_path t wire_path =
  let abs =
    (* Ancestor symlinks (e.g. planted by a remotely exec'd job) are
       resolved before the prefix check, so a link pointing out of the
       export tree cannot smuggle operations outside it. *)
    Enforce.canonical_parents t.enforce
      (Path.normalize (t.sv_export ^ "/" ^ wire_path))
  in
  if Path.is_prefix ~prefix:t.sv_export abs then Ok abs else Error Errno.EACCES

let err e = Protocol.R_error (e, Errno.message e)

(* The authority an operation runs under.  A directly authenticated
   session holds its principal's full authority; a delegated operation
   runs as the chain's {e root} delegator, attenuated to the chain's
   intersected grant mask and narrowest path-prefix scope (absolute,
   export-anchored).  Every check below intersects the grant and scope
   with the principal's own ACL verdict, so a delegated caller can
   never do what the delegator could not. *)
type caller = {
  cl_id : Principal.t;
  cl_grant : Rights.t;
  cl_scope : string;  (* absolute prefix; the export root = unscoped *)
}

let caller_of t identity =
  { cl_id = identity; cl_grant = Rights.full; cl_scope = t.sv_export }

let in_scope caller abs = Delegation.scope_contains ~prefix:caller.cl_scope abs

let check t caller abs right k =
  match
    Enforce.check_delegated t.enforce ~identity:caller.cl_id
      ~grant:caller.cl_grant ~prefix:caller.cl_scope ~path:abs right
  with
  | Ok () -> k ()
  | Error e -> err e

let check_dir t caller dir right k =
  if not (Rights.mem right caller.cl_grant && in_scope caller dir) then
    err Errno.EACCES
  else
    match Enforce.check_in_dir t.enforce ~identity:caller.cl_id ~dir right with
    | Ok () -> k ()
    | Error e -> err e

let check_delete t caller dir k =
  if
    not
      ((Rights.mem Right.Delete caller.cl_grant
        || Rights.mem Right.Write caller.cl_grant)
       && in_scope caller dir)
  then err Errno.EACCES
  else
    match
      Enforce.check_in_dir t.enforce ~identity:caller.cl_id ~dir Right.Delete
    with
    | Ok () -> k ()
    | Error _ ->
      (match
         Enforce.check_in_dir t.enforce ~identity:caller.cl_id ~dir Right.Write
       with
       | Ok () -> k ()
       | Error e -> err e)

let is_acl_file abs = String.equal (Path.basename abs) Acl.filename

let box_for t identity =
  let key = Principal.to_string identity in
  match Hashtbl.find_opt t.boxes key with
  | Some box -> Ok box
  | None ->
    (match
       Box.create t.sv_kernel ~supervisor_uid:t.sv_owner.View.uid ~identity ()
     with
     | Ok box ->
       Hashtbl.replace t.boxes key box;
       Ok box
     | Error e -> Error e)

let wire_stat_of (st : Fs.stat) =
  {
    Protocol.ws_kind =
      (match st.Fs.st_kind with
       | Inode.Regular | Inode.Fifo -> "file"
       | Inode.Directory -> "dir"
       | Inode.Symlink -> "link");
    ws_size = st.Fs.st_size;
    ws_mtime = st.Fs.st_mtime;
  }

let rec serve_as t caller op =
  let open Protocol in
  metric t ("chirp.rpc." ^ Protocol.operation_name op);
  match op with
  | Batch ops ->
    (* The decoder already refuses nested batches on the wire; re-check
       here for directly constructed operations (replication applies). *)
    if
      List.exists
        (function Batch _ | Delegated _ -> true | _ -> false)
        ops
    then err Errno.EINVAL
    else
      (* In order, one envelope: each member is served exactly as if it
         had arrived alone (per-op metrics included), but the round trip
         and checksum are paid once. *)
      R_batch (List.map (fun op -> serve_as t caller op) ops)
  | Whoami -> R_str (Principal.to_string caller.cl_id)
  | Epoch who ->
    R_str (string_of_int (Delegation.Revocations.epoch t.sv_revocations who))
  | Revoke who ->
    (* Only the delegator retires their own chains: revocation is an
       assertion about tokens [who] minted, so only [who] may make it. *)
    if not (String.equal (Principal.to_string caller.cl_id) who) then
      err Errno.EACCES
    else begin
      let epoch = Delegation.Revocations.revoke t.sv_revocations who in
      metric t "chirp.revocation.apply";
      R_str (string_of_int epoch)
    end
  | Delegated { chain; op = inner } -> serve_delegated t caller chain inner
  | Mkdir wire_path ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       let parent = Path.dirname abs in
       (match Enforce.plan_mkdir t.enforce ~identity:caller.cl_id ~parent with
        | Error e -> err e
        | Ok plan ->
          (match delegate t (Syscall.Mkdir { path = abs; mode = 0o755 }) with
           | Error e -> err e
           | Ok _ ->
             let acl =
               match plan with
               | Enforce.Fresh_acl acl -> Some acl
               | Enforce.Inherit_acl inherited -> inherited
             in
             (match acl with
              | None -> R_ok
              | Some acl ->
                (match Enforce.write_acl t.enforce ~dir:abs acl with
                 | Ok () -> R_ok
                 | Error e -> err e)))))
  | Rmdir wire_path ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       if String.equal abs t.sv_export then err Errno.EACCES
       else
         (* Delete in the parent, or — for reserved namespaces the caller
            owns — delete inside the directory itself. *)
         let check_either k =
           match
             Enforce.check_in_dir t.enforce ~identity:caller.cl_id
               ~dir:(Path.dirname abs) Right.Delete
           with
           | Ok () -> k ()
           | Error _ ->
             (match
                Enforce.check_in_dir t.enforce ~identity:caller.cl_id
                  ~dir:(Path.dirname abs) Right.Write
              with
              | Ok () -> k ()
              | Error _ -> check_delete t caller abs k)
         in
         check_either (fun () ->
             match delegate t (Syscall.Readdir abs) with
             | Error e -> err e
             | Ok (Syscall.Names names) ->
               let real =
                 List.filter (fun n -> not (String.equal n Acl.filename)) names
               in
               if real <> [] then err Errno.ENOTEMPTY
               else begin
                 ignore (delegate t (Syscall.Unlink (Path.join abs Acl.filename)));
                 Enforce.invalidate t.enforce ~dir:abs;
                 match delegate t (Syscall.Rmdir abs) with
                 | Ok _ -> R_ok
                 | Error e -> err e
               end
             | Ok _ -> err Errno.EINVAL))
  | Unlink wire_path ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       if is_acl_file abs then err Errno.EACCES
       else
         check_delete t caller (Enforce.governing_dir t.enforce abs) (fun () ->
             match delegate t (Syscall.Unlink abs) with
             | Ok _ -> R_ok
             | Error e -> err e))
  | Put { path = wire_path; data } ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       if is_acl_file abs then err Errno.EACCES
       else
         check t caller abs Right.Write (fun () ->
             let flags = Fs.wronly_create in
             match delegate t (Syscall.Open { path = abs; flags; mode = 0o755 }) with
             | Error e -> err e
             | Ok (Syscall.Int fd) ->
               let res = delegate t (Syscall.Write { fd; data }) in
               ignore (delegate t (Syscall.Close fd));
               (match res with Ok _ -> R_ok | Error e -> err e)
             | Ok _ -> err Errno.EINVAL))
  | Get wire_path ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       if is_acl_file abs then err Errno.EACCES
       else
         check t caller abs Right.Read (fun () ->
             match delegate t (Syscall.Open { path = abs; flags = Fs.rdonly; mode = 0 }) with
             | Error e -> err e
             | Ok (Syscall.Int fd) ->
               let buf = Buffer.create 65536 in
               let rec slurp () =
                 match delegate t (Syscall.Read { fd; len = 65536 }) with
                 | Ok (Syscall.Data "") -> Ok (Buffer.contents buf)
                 | Ok (Syscall.Data chunk) ->
                   Buffer.add_string buf chunk;
                   slurp ()
                 | Ok _ -> Error Errno.EINVAL
                 | Error e -> Error e
               in
               let res = slurp () in
               ignore (delegate t (Syscall.Close fd));
               (match res with Ok data -> R_data data | Error e -> err e)
             | Ok _ -> err Errno.EINVAL))
  | Stat wire_path ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       check t caller abs Right.List (fun () ->
           match delegate t (Syscall.Stat abs) with
           | Ok (Syscall.Stat_v st) -> R_stat (wire_stat_of st)
           | Ok _ -> err Errno.EINVAL
           | Error e -> err e))
  | Readdir wire_path ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       check_dir t caller abs Right.List (fun () ->
           match delegate t (Syscall.Readdir abs) with
           | Ok (Syscall.Names names) ->
             R_names
               (List.filter (fun n -> not (String.equal n Acl.filename)) names)
           | Ok _ -> err Errno.EINVAL
           | Error e -> err e))
  | Getacl wire_path ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       let dir =
         match delegate t (Syscall.Stat abs) with
         | Ok (Syscall.Stat_v st) when st.Fs.st_kind = Inode.Directory -> abs
         | Ok _ | Error _ -> Enforce.governing_dir t.enforce abs
       in
       check_dir t caller dir Right.List (fun () ->
           match Enforce.dir_acl t.enforce dir with
           | Some acl -> R_str (Acl.to_string acl)
           | None -> R_str ""))
  | Setacl { path = wire_path; entry } ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       (match Idbox_acl.Entry.of_line entry with
        | Error _ -> err Errno.EINVAL
        | Ok parsed ->
          check_dir t caller abs Right.Admin (fun () ->
              let current =
                match Enforce.dir_acl t.enforce abs with
                | Some acl -> acl
                | None -> Acl.empty
              in
              match Enforce.write_acl t.enforce ~dir:abs (Acl.set_entry current parsed) with
              | Ok () -> R_ok
              | Error e -> err e)))
  | Rename { src; dst } ->
    (match (map_path t src, map_path t dst) with
     | Error e, _ | _, Error e -> err e
     | Ok asrc, Ok adst ->
       if is_acl_file asrc || is_acl_file adst then err Errno.EACCES
       else
         check_delete t caller (Path.dirname asrc) (fun () ->
             check_dir t caller (Path.dirname adst) Right.Write (fun () ->
                 match delegate t (Syscall.Rename { src = asrc; dst = adst }) with
                 | Ok _ -> R_ok
                 | Error e -> err e)))
  | Checksum wire_path ->
    (match map_path t wire_path with
     | Error e -> err e
     | Ok abs ->
       if is_acl_file abs then err Errno.EACCES
       else
         check t caller abs Right.Read (fun () ->
             (* The digest is computed server-side over the stored bytes:
                one metadata-sized reply instead of re-fetching the file. *)
             match Fs.read_file (Kernel.fs t.sv_kernel) ~uid:t.sv_owner.View.uid abs with
             | Ok data ->
               (* Charge the server's sequential read of the file. *)
               ignore
                 (Kernel.delegate t.sv_kernel t.sv_owner
                    (Syscall.Stat abs));
               R_str (Digest.to_hex (Digest.string data))
             | Error e -> err e))
  | Exec { path = wire_path; args; cwd } ->
    (match (map_path t wire_path, map_path t cwd) with
     | Error e, _ | _, Error e -> err e
     | Ok abs, Ok acwd ->
       (* The attenuation gate: a delegated caller must hold the execute
          right in the chain's grant and the program must sit inside the
          chain's scope.  The box's own ACL check (as the principal)
          still runs inside [Box.spawn]. *)
       if not (Rights.mem Right.Execute caller.cl_grant && in_scope caller abs)
       then err Errno.EACCES
       else
         (match box_for t caller.cl_id with
          | Error e -> err e
          | Ok box ->
            (match Box.spawn box ~check_exec:true ~path:abs ~args () with
             | Error e -> err e
             | Ok pid ->
               t.execs <- t.execs + 1;
               Box.set_cwd box ~pid acwd;
               (* Drive the host to completion: the remote process runs
                  inside the identity box on the server's machine. *)
               Kernel.run t.sv_kernel;
               (match Kernel.exit_code t.sv_kernel pid with
                | Some code -> R_exit code
                | None -> err Errno.EAGAIN))))

(* A delegated operation: validate the chain presented by the
   authenticated session principal (the holder), then run the inner
   operation as the chain's {e root} delegator under the attenuated
   grant and scope.  Only [Exec] and read-only operations are accepted:
   a delegated mutation would land in the WAL and re-validate its chain
   at {e replay} time — after the tokens may have expired — and
   diverge; exec records are checkpoint-truncated immediately, so they
   never replay at all. *)
and serve_delegated t caller chain inner =
  let open Protocol in
  let now = Kernel.now t.sv_kernel in
  let holder = Principal.to_string caller.cl_id in
  let inner_ok =
    match inner with
    | Exec _ | Get _ | Stat _ | Readdir _ | Getacl _ | Checksum _ | Whoami
    | Epoch _ -> true
    | Mkdir _ | Rmdir _ | Unlink _ | Put _ | Setacl _ | Rename _ | Revoke _
    | Batch _ | Delegated _ -> false
  in
  (* A caller already running under a chain cannot present another one:
     re-delegation happens by extending the chain, not by nesting. *)
  if (not inner_ok) || not (Rights.equal caller.cl_grant Rights.full) then
    err Errno.EINVAL
  else
    match
      Enforce.admit_chain t.enforce
        ~trusted:(Negotiate.trusted_cas t.acceptor)
        ~revocations:t.sv_revocations ~now ~holder chain
    with
    | Error failure ->
      Audit.record t.sv_audit ~time:now ~pid:0 ~identity:holder ~op:"delegated"
        ~path:(Protocol.operation_path inner)
        (Audit.Denied Errno.EACCES);
      Protocol.R_error (Errno.EACCES, Delegation.failure_message failure)
    | Ok s ->
      (match map_path t s.Delegation.sum_prefix with
       | Error e -> err e
       | Ok scope ->
         (* Every hop on the record: who handed authority to whom, over
            which scope — the per-hop forensic trail. *)
         List.iter
           (fun tok ->
             Audit.record t.sv_audit ~time:now ~pid:0
               ~identity:tok.Delegation.dg_delegator ~op:"delegate"
               ~path:tok.Delegation.dg_prefix
               ~path2:tok.Delegation.dg_delegatee Audit.Allowed)
           chain;
         let delegated =
           {
             cl_id = Principal.of_string s.Delegation.sum_root;
             cl_grant = s.Delegation.sum_grant;
             cl_scope = scope;
           }
         in
         let r = serve_as t delegated inner in
         (match (inner, r) with
          | Exec _, R_exit _ -> metric t "chirp.delegated_exec"
          | _ -> ());
         Audit.record t.sv_audit ~time:now ~pid:0 ~identity:s.Delegation.sum_root
           ~op:("delegated." ^ Protocol.operation_name inner)
           ~path:(Protocol.operation_path inner)
           (match r with
            | Protocol.R_error (e, _) -> Audit.Denied e
            | _ -> Audit.Allowed);
         r)

(* Direct (non-delegated) service: the session principal's own, full
   authority. *)
let serve_op t identity op = serve_as t (caller_of t identity) op

(* {1 Subtree snapshots}

   Used by replication (rebalance migration), by checkpoints, and by
   anti-entropy repair.  Paths in the result are wire paths (relative
   to the export root) so a receiving server can anchor them under its
   own export. *)

type snapshot_entry =
  | Snap_dir of { path : string; acl : string }
  | Snap_file of { path : string; data : string }

let snapshot_path = function
  | Snap_dir { path; _ } -> path
  | Snap_file { path; _ } -> path

(* Ship a subtree, ACLs included, as the deploying owner. *)
let snapshot_subtree ?(recurse = true) t wire_prefix =
  metric t "chirp.repl.snapshot";
  let to_wire abs =
    match Path.strip_prefix ~prefix:t.sv_export abs with
    | Some rel -> rel
    | None -> "/"
  in
  let rec walk abs acc =
    match delegate t (Syscall.Stat abs) with
    | Error Errno.ENOENT -> Ok acc  (* nothing under this prefix here *)
    | Error e -> Error e
    | Ok (Syscall.Stat_v st) when st.Fs.st_kind = Inode.Directory ->
      let acl =
        match Enforce.dir_acl t.enforce abs with
        | Some acl -> Acl.to_string acl
        | None -> ""
      in
      let acc = Snap_dir { path = to_wire abs; acl } :: acc in
      if not recurse then Ok acc
      else
        (match delegate t (Syscall.Readdir abs) with
       | Error e -> Error e
       | Ok (Syscall.Names names) ->
         List.fold_left
           (fun acc name ->
             match acc with
             | Error _ -> acc
             | Ok acc ->
               if String.equal name Acl.filename then Ok acc
               else walk (Path.join abs name) acc)
           (Ok acc)
           (List.sort String.compare names)
       | Ok _ -> Error Errno.EINVAL)
    | Ok (Syscall.Stat_v _) ->
      (match Fs.read_file (Kernel.fs t.sv_kernel) ~uid:t.sv_owner.View.uid abs with
       | Ok data -> Ok (Snap_file { path = to_wire abs; data } :: acc)
       | Error e -> Error e)
    | Ok _ -> Error Errno.EINVAL
  in
  match map_path t wire_prefix with
  | Error e -> Error e
  | Ok abs -> Result.map List.rev (walk abs [])

(* Install entries as the owner, without checkpointing — shared by the
   public snapshot install and by recovery (which must not truncate the
   log it is replaying). *)
let install_entries t entries =
  let uid = t.sv_owner.View.uid in
  let fs = Kernel.fs t.sv_kernel in
  let install entry =
    match map_path t (snapshot_path entry) with
    | Error e -> Error e
    | Ok abs ->
      (match entry with
       | Snap_dir { acl; _ } ->
         (match Fs.mkdir_p fs ~uid abs with
          | Error e -> Error e
          | Ok () ->
            if String.equal acl "" then Ok ()
            else
              (match Acl.of_string acl with
               | Error _ -> Error Errno.EINVAL
               | Ok parsed -> Enforce.write_acl t.enforce ~dir:abs parsed))
       | Snap_file { data; _ } ->
         Fs.write_file fs ~uid ~mode:0o755 abs data)
  in
  List.fold_left
    (fun acc entry -> match acc with Error _ -> acc | Ok () -> install entry)
    (Ok ()) entries

(* {1 Checkpoints}

   A checkpoint is one atomic image on the WAL device: the dedup
   journal plus a full subtree snapshot of the export.  Taking one
   truncates the log, bounding replay time. *)

let snap_encode = function
  | Snap_dir { path; acl } -> Wire.encode [ "d"; path; acl ]
  | Snap_file { path; data } -> Wire.encode [ "f"; path; data ]

let snap_decode blob =
  match Wire.decode blob with
  | Ok [ "d"; path; acl ] -> Some (Snap_dir { path; acl })
  | Ok [ "f"; path; data ] -> Some (Snap_file { path; data })
  | Ok _ | Error _ -> None

let dedup_image t =
  Hashtbl.fold
    (fun rid d acc -> (rid, d) :: acc)
    t.dedup []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.concat_map (fun (rid, d) ->
         [ rid; Int64.to_string d.dd_at; d.dd_response ])
  |> Wire.encode

(* Revocation epochs ride the checkpoint as a pseudo-entry: an old
   decoder's [snap_decode] returns [None] for it (so it is skipped
   harmlessly), while [restart] scans for it explicitly. *)
let revocation_image t =
  Wire.encode
    ("revocations"
    :: List.concat_map
         (fun (delegator, epoch) -> [ delegator; string_of_int epoch ])
         (Delegation.Revocations.entries t.sv_revocations))

let take_checkpoint t =
  match snapshot_subtree t "/" with
  | Error e -> Error e
  | Ok entries ->
    let blob =
      Wire.encode
        (dedup_image t :: revocation_image t :: List.map snap_encode entries)
    in
    Wal.checkpoint t.wal blob;
    t.ops_since_ckpt <- 0;
    metric t "chirp.checkpoint";
    charge t
      (Int64.mul
         (Int64.of_int (List.length entries))
         (cost t).Idbox_kernel.Cost.checkpoint_entry_ns);
    Ok ()

(* Checkpoint when the log is long enough — and always right after an
   exec: recovery replays the log through the serving path, and
   replaying an exec would run the program a second time.  Truncating
   the exec record away keeps remote execution exactly-once across a
   crash (the dedup journal inside the checkpoint still replays the
   recorded response to retries). *)
let maybe_checkpoint t op =
  if contains_exec op || t.ops_since_ckpt >= t.checkpoint_every then
    ignore (take_checkpoint t)

let fresh_token t principal =
  t.token_counter <- t.token_counter + 1;
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%d|%s" t.sv_addr t.token_counter
          (Principal.to_string principal)))

(* Expire sessions idle past the window — including half-authenticated
   leftovers whose auth response was lost in flight and that no client
   will ever speak for again. *)
let sweep_sessions t now =
  let dead =
    Hashtbl.fold
      (fun token s acc ->
        if Int64.sub now s.ss_last_used > t.session_idle_ns then token :: acc
        else acc)
      t.sessions []
  in
  List.iter
    (fun token ->
      metric t "chirp.session.expired";
      Hashtbl.remove t.sessions token)
    dead

(* The dedup journal is bounded by age: entries older than the dedup
   window can no longer match any live retry (clients give up long
   before), so each admission evicts them — a long-lived session's
   journal stays proportional to its recent write rate, not its
   lifetime. *)
let sweep_dedup t now =
  let dead =
    Hashtbl.fold
      (fun rid d acc ->
        if Int64.sub now d.dd_at > t.dedup_window_ns then rid :: acc else acc)
      t.dedup []
  in
  List.iter
    (fun rid ->
      metric t "chirp.dedup_evictions";
      Hashtbl.remove t.dedup rid)
    dead

(* {1 Admission control}

   The parked-mutation queue is bounded ([max_parked]), and overload is
   answered with a {e brownout} rather than silent queueing: when the
   queue climbs past the high watermark (3/4 of the bound) the server
   enters brownout and sheds every fresh mutation with [EAGAIN] plus a
   machine-readable retry-after hint; reads, auth, dedup replays and
   already-parked retries are still served — reads are admitted before
   mutations, always.  Brownout exits only once the queue has drained
   below the low watermark (1/4), so admission does not flap at the
   threshold.  Session-table-full sheds carry the same hint. *)

let queue_high t = t.max_parked * 3 / 4
let queue_low t = t.max_parked / 4

let update_brownout t =
  let q = Queue.length t.pending_q in
  if (not t.sv_brownout) && q >= queue_high t then begin
    t.sv_brownout <- true;
    metric t "chirp.brownout.enter"
  end
  else if t.sv_brownout && q <= queue_low t then begin
    t.sv_brownout <- false;
    metric t "chirp.brownout.exit"
  end

(* When may a shed client plausibly be admitted?  The batch tick drains
   the whole queue, so two ticks out the backlog that caused the shed is
   gone; session sheds wait on idle expiry, bounded at a second so
   clients keep probing. *)
let shed_retry_after t = Int64.mul t.sv_flush_ns 2L

let session_retry_after t =
  Int64.min (Int64.div t.session_idle_ns 8L) 1_000_000_000L

let shed_session_error t =
  metric t "chirp.session.reject";
  metric t "chirp.shed.session";
  Protocol.R_error
    ( Errno.EAGAIN,
      Protocol.shed_message ~retry_after_ns:(session_retry_after t)
        "session table full" )

(* Execute one operation under an identity: handler-crash containment
   plus the replication hook on fresh successful mutations.  WAL
   ordering is the caller's business — the sync path logs and syncs
   before calling; the event-driven path logs at park time and
   group-syncs at the batch tick. *)
let execute_op t identity op =
  (* A handler bug must not unwind into the network: degrade to a
     wire-level error and keep serving everyone else. *)
  let r =
    try serve_op t identity op
    with _ ->
      metric t "chirp.handler.crash";
      Protocol.R_error (Errno.EIO, "internal server error")
  in
  (* Replication hook: fresh successful mutations only — dedup replays
     never re-fire it, so a retried write replicates once.  The hook
     runs inside the request so the fan-out is deterministic, but its
     failures are its own: they must not change this client's answer. *)
  let fire op r =
    match r with
    | Protocol.R_error _ -> ()
    | _ when Protocol.idempotent op -> ()
    | _ ->
      (match t.mutation_hook with
       | None -> ()
       | Some hook ->
         (try hook ~identity op
          with _ -> metric t "chirp.repl.hook_crash"))
  in
  (match (op, r) with
   | Protocol.Batch ops, Protocol.R_batch rs
     when List.length ops = List.length rs ->
     (* Per member: replicas receive plain operations, exactly as for
        singles, and failed members do not replicate. *)
     List.iter2 fire ops rs
   | _ -> fire op r);
  r

let handle t payload =
  let respond r = Protocol.encode_response r in
  let now = Kernel.now t.sv_kernel in
  match Protocol.decode_request payload with
  | Error msg ->
    (* Either a garbled frame (checksum mismatch) or a malformed
       request: a wire-level reset tells a retrying client to re-send
       rather than interpret this as an application verdict. *)
    metric t "chirp.bad_request";
    respond (Protocol.R_error (Errno.ECONNRESET, "bad request: " ^ msg))
  | Ok (Protocol.Auth creds) ->
    sweep_sessions t now;
    if Hashtbl.length t.sessions >= t.max_sessions then
      respond (shed_session_error t)
    else
      (match Negotiate.negotiate t.acceptor ~now creds with
       | Error msg ->
         metric t "chirp.auth.fail";
         respond (Protocol.R_error (Errno.EACCES, msg))
       | Ok (principal, method_, _attempts) ->
         metric t "chirp.auth.ok";
         (* A fresh session is about to issue checks: make sure the
            compiled-policy program matches the current generation so
            its first operations already ride the bytecode fast path. *)
         Enforce.refresh_bytecode t.enforce;
         let token = fresh_token t principal in
         Hashtbl.replace t.sessions token
           { ss_principal = principal; ss_method = method_; ss_last_used = now };
         respond
           (Protocol.R_auth
              { token; principal = Principal.to_string principal; method_ }))
  | Ok (Protocol.Op { token; req_id; op }) ->
    (match Hashtbl.find_opt t.sessions token with
     | None -> respond (Protocol.R_error (Errno.ESTALE, "no such session"))
     | Some s when Int64.sub now s.ss_last_used > t.session_idle_ns ->
       metric t "chirp.session.expired";
       Hashtbl.remove t.sessions token;
       respond (Protocol.R_error (Errno.ESTALE, "session expired"))
     | Some s ->
       s.ss_last_used <- now;
       let mutating = not (Protocol.idempotent op) in
       let serve () =
         (* Write-ahead: a fresh mutation is logged and synced before
            it executes, so no acknowledged effect can be lost to a
            crash — recovery replays exactly this record. *)
         if mutating then begin
           wal_record t
             [ "op"; Principal.to_string s.ss_principal;
               Protocol.operation_to_wire op ];
           wal_sync t
         end;
         execute_op t s.ss_principal op
       in
       if String.equal req_id "" then begin
         let encoded = respond (serve ()) in
         if mutating then maybe_checkpoint t op;
         encoded
       end
       else begin
         sweep_dedup t now;
         match Hashtbl.find_opt t.dedup req_id with
         | Some d ->
           (* A retry of work already done: replay the recorded
              response, execute nothing. *)
           metric t "chirp.dedup_hit";
           d.dd_response
         | None ->
           let encoded = respond (serve ()) in
           Hashtbl.replace t.dedup req_id { dd_at = now; dd_response = encoded };
           if mutating then begin
             (* The dedup-journal entry is durable before the reply
                leaves: a crash between execution and reply cannot turn
                a client retry into a second execution. *)
             wal_record t [ "done"; req_id; Int64.to_string now; encoded ];
             wal_sync t;
             maybe_checkpoint t op
           end;
           encoded
       end)

(* {1 Event-driven serving}

   The same protocol over {!Network.listen_async}: requests are
   delivered as events, each carrying a connection the server answers
   with {!Network.respond}.  Reads (and every auth/error path) are
   answered at delivery.  Fresh mutations park: their WAL "op" record
   is appended immediately — arrival order {e is} log order — and a
   batch tick armed [sv_flush_ns] ahead performs one group-commit sync
   for everything parked, executes the batch FIFO, appends and syncs
   the "done" records, and only then lets any response leave.  The
   sync-before-ack ordering of the blocking server is preserved
   exactly; what changes is that one sync can cover many operations,
   and thousands of sessions can be in flight at once. *)

let rec flush_batch t =
  t.flush_armed <- false;
  if not (Queue.is_empty t.pending_q) then begin
    (* Drain at most [sv_flush_limit] operations — the server's
       engineered service rate.  A deeper backlog stays parked for
       later ticks, which is exactly what makes unbounded admission
       visible as latency (and what brownout exists to prevent). *)
    let rec take acc n =
      if n = 0 || Queue.is_empty t.pending_q then List.rev acc
      else take (Queue.pop t.pending_q :: acc) (n - 1)
    in
    let items = take [] t.sv_flush_limit in
    List.iter
      (fun pk ->
        if not (String.equal pk.pk_req_id "") then
          Hashtbl.remove t.parked_ids pk.pk_req_id)
      items;
    metric t "chirp.async.batch";
    metric_add t "chirp.async.batch_ops" (List.length items);
    (* Group commit: one sync makes every parked "op" record durable
       before any of them executes. *)
    wal_sync t;
    let served =
      List.map
        (fun pk ->
          let encoded =
            Protocol.encode_response (execute_op t pk.pk_principal pk.pk_op)
          in
          if not (String.equal pk.pk_req_id "") then begin
            Hashtbl.replace t.dedup pk.pk_req_id
              { dd_at = pk.pk_now; dd_response = encoded };
            wal_record t
              [ "done"; pk.pk_req_id; Int64.to_string pk.pk_now; encoded ]
          end;
          (pk, encoded))
        items
    in
    (* The dedup-journal entries are durable before any reply leaves: a
       crash between execution and reply cannot turn a client retry
       into a second execution. *)
    if List.exists (fun pk -> not (String.equal pk.pk_req_id "")) items then
      wal_sync t;
    List.iter
      (fun (pk, encoded) ->
        Network.respond t.sv_net pk.pk_conn encoded;
        List.iter
          (fun conn -> Network.respond t.sv_net conn encoded)
          (List.rev pk.pk_extras))
      served;
    if
      List.exists (fun pk -> contains_exec pk.pk_op) items
      || t.ops_since_ckpt >= t.checkpoint_every
    then ignore (take_checkpoint t);
    (* Backlog beyond the drain limit: schedule the next tick. *)
    if not (Queue.is_empty t.pending_q) then arm_flush t
  end;
  (* The drain is what ends a brownout: re-evaluate now rather than on
     the next (possibly shed) admission. *)
  update_brownout t

and arm_flush t =
  if not t.flush_armed then begin
    t.flush_armed <- true;
    Network.at t.sv_net
      (Int64.add (Kernel.now t.sv_kernel) t.sv_flush_ns)
      (fun () -> flush_batch t)
  end

let handle_async t conn payload =
  let respond_raw text = Network.respond t.sv_net conn text in
  let respond r = respond_raw (Protocol.encode_response r) in
  let now = Kernel.now t.sv_kernel in
  match Protocol.decode_request payload with
  | Error msg ->
    metric t "chirp.bad_request";
    respond (Protocol.R_error (Errno.ECONNRESET, "bad request: " ^ msg))
  | Ok (Protocol.Auth creds) ->
    sweep_sessions t now;
    if Hashtbl.length t.sessions >= t.max_sessions then
      respond (shed_session_error t)
    else
      (match Negotiate.negotiate t.acceptor ~now creds with
       | Error msg ->
         metric t "chirp.auth.fail";
         respond (Protocol.R_error (Errno.EACCES, msg))
       | Ok (principal, method_, _attempts) ->
         metric t "chirp.auth.ok";
         (* A fresh session is about to issue checks: make sure the
            compiled-policy program matches the current generation so
            its first operations already ride the bytecode fast path. *)
         Enforce.refresh_bytecode t.enforce;
         let token = fresh_token t principal in
         Hashtbl.replace t.sessions token
           { ss_principal = principal; ss_method = method_; ss_last_used = now };
         respond
           (Protocol.R_auth
              { token; principal = Principal.to_string principal; method_ }))
  | Ok (Protocol.Op { token; req_id; op }) ->
    (match Hashtbl.find_opt t.sessions token with
     | None -> respond (Protocol.R_error (Errno.ESTALE, "no such session"))
     | Some s when Int64.sub now s.ss_last_used > t.session_idle_ns ->
       metric t "chirp.session.expired";
       Hashtbl.remove t.sessions token;
       respond (Protocol.R_error (Errno.ESTALE, "session expired"))
     | Some s ->
       s.ss_last_used <- now;
       let mutating = not (Protocol.idempotent op) in
       let park () =
         (* Admission control: a full queue — or brownout, entered at
            the high watermark — sheds the mutation with a retry-after
            hint instead of queueing it to death.  Reads never reach
            here: they are admitted before mutations, always. *)
         update_brownout t;
         if t.sv_brownout || Queue.length t.pending_q >= t.max_parked then begin
           metric t "chirp.shed.mutation";
           respond
             (Protocol.R_error
                ( Errno.EAGAIN,
                  Protocol.shed_message
                    ~retry_after_ns:(shed_retry_after t)
                    (if Queue.length t.pending_q >= t.max_parked then
                       "mutation queue full"
                     else "brownout") ))
         end
         else begin
           (* Log now (arrival order is log order), sync at the tick. *)
           wal_record t
             [ "op"; Principal.to_string s.ss_principal;
               Protocol.operation_to_wire op ];
           let pk =
             {
               pk_conn = conn;
               pk_principal = s.ss_principal;
               pk_op = op;
               pk_req_id = req_id;
               pk_now = now;
               pk_extras = [];
             }
           in
           Queue.add pk t.pending_q;
           if not (String.equal req_id "") then
             Hashtbl.replace t.parked_ids req_id pk;
           metric t "chirp.async.parked";
           update_brownout t;
           arm_flush t
         end
       in
       if not mutating then begin
         (* Reads never park: serve at delivery, answer immediately. *)
         if String.equal req_id "" then respond (execute_op t s.ss_principal op)
         else begin
           sweep_dedup t now;
           match Hashtbl.find_opt t.dedup req_id with
           | Some d ->
             metric t "chirp.dedup_hit";
             respond_raw d.dd_response
           | None ->
             let encoded =
               Protocol.encode_response (execute_op t s.ss_principal op)
             in
             Hashtbl.replace t.dedup req_id { dd_at = now; dd_response = encoded };
             respond_raw encoded
         end
       end
       else if String.equal req_id "" then park ()
       else begin
         sweep_dedup t now;
         match Hashtbl.find_opt t.dedup req_id with
         | Some d ->
           (* A retry of work already done: replay the recorded
              response, execute nothing. *)
           metric t "chirp.dedup_hit";
           respond_raw d.dd_response
         | None ->
           (match Hashtbl.find_opt t.parked_ids req_id with
            | Some pk ->
              (* A retry racing its own original through the parked
                 batch: no second execution, no second log record —
                 both connections get the one response when the batch
                 flushes. *)
              metric t "chirp.async.coalesced";
              pk.pk_extras <- conn :: pk.pk_extras
            | None -> park ())
       end)

let create ~kernel ~net ~addr ~owner_uid ~export ~acceptor ?root_acl
    ?(max_sessions = 64) ?(max_parked = 256)
    ?(session_idle_ns = 600_000_000_000L)
    ?(dedup_window_ns = 60_000_000_000L) ?wal ?(checkpoint_every = 128)
    ?(event_driven = false) ?(flush_interval_ns = 50_000L)
    ?(flush_batch_limit = max_int) () =
  let sv_owner = Kernel.make_view kernel ~uid:owner_uid () in
  let sv_export = Path.normalize export in
  let t =
    {
      sv_kernel = kernel;
      sv_net = net;
      sv_addr = addr;
      sv_owner;
      sv_export;
      acceptor;
      enforce = Enforce.create kernel ~supervisor:sv_owner ();
      sv_revocations = Delegation.Revocations.create ();
      sv_audit = Audit.create ();
      sessions = Hashtbl.create 8;
      dedup = Hashtbl.create 8;
      max_sessions;
      max_parked = max 1 max_parked;
      session_idle_ns;
      dedup_window_ns;
      boxes = Hashtbl.create 8;
      wal = (match wal with Some w -> w | None -> Wal.create ());
      checkpoint_every = max 1 checkpoint_every;
      digests = Hashtbl.create 32;
      sv_event_driven = event_driven;
      sv_flush_ns = Int64.max 1L flush_interval_ns;
      sv_flush_limit = max 1 flush_batch_limit;
      pending_q = Queue.create ();
      parked_ids = Hashtbl.create 8;
      flush_armed = false;
      sv_brownout = false;
      ops_since_ckpt = 0;
      execs = 0;
      token_counter = 0;
      mutation_hook = None;
    }
  in
  match Fs.mkdir_p (Kernel.fs kernel) ~uid:owner_uid sv_export with
  | Error e -> Error e
  | Ok () ->
    let install_acl =
      match root_acl with
      | None -> Ok ()
      | Some acl -> Enforce.write_acl t.enforce ~dir:sv_export acl
    in
    (match install_acl with
     | Error e -> Error e
     | Ok () ->
       (* Checkpoint zero: the freshly installed root ACL (and whatever
          the export already held) is durable before the first request,
          so recovery always has an image to anchor replay on. *)
       (match take_checkpoint t with
        | Error e -> Error e
        | Ok () ->
          if event_driven then
            Network.listen_async net ~addr (fun conn payload ->
                handle_async t conn payload)
          else Network.listen net ~addr (fun payload -> handle t payload);
          Ok t))

let shutdown t = Network.unlisten t.sv_net ~addr:t.sv_addr

let crash t =
  metric t "chirp.crash";
  (* Parked mutations are volatile: never acknowledged, so a crash
     drops them (their un-synced log records tear with the device).
     Their sessions need no separate release — the session table is the
     only slot accounting there is, and it resets on restart. *)
  Queue.clear t.pending_q;
  Hashtbl.reset t.parked_ids;
  t.flush_armed <- false;
  t.sv_brownout <- false;
  (* The endpoint goes down and the stable-storage device takes its
     seeded crash damage — possibly a torn fragment of a write that was
     in flight (never acknowledged), never a synced byte. *)
  Wal.crash t.wal;
  Network.crash t.sv_net ~addr:t.sv_addr

(* Delete the export subtree as the owner: recovery rebuilds it from
   the checkpoint and the log, so anything still in memory that never
   reached stable storage must actually be gone. *)
let wipe_export t =
  let rec rm abs =
    match delegate t (Syscall.Stat abs) with
    | Error _ -> ()
    | Ok (Syscall.Stat_v st) when st.Fs.st_kind = Inode.Directory ->
      (match delegate t (Syscall.Readdir abs) with
       | Ok (Syscall.Names names) ->
         List.iter
           (fun name -> rm (Path.join abs name))
           (List.sort String.compare names);
         Enforce.invalidate t.enforce ~dir:abs;
         ignore (delegate t (Syscall.Rmdir abs))
       | Ok _ | Error _ -> ())
    | Ok _ -> ignore (delegate t (Syscall.Unlink abs))
  in
  match delegate t (Syscall.Readdir t.sv_export) with
  | Ok (Syscall.Names names) ->
    List.iter
      (fun name -> rm (Path.join t.sv_export name))
      (List.sort String.compare names);
    Enforce.invalidate t.enforce ~dir:t.sv_export
  | Ok _ | Error _ -> ()

(* Come back from a crash with only what stable storage holds: load the
   latest checkpoint image, then replay the WAL through the serving
   path — same principals, same ACL checks, same order.  The torn tail
   (if the crash tore an in-flight write) fails its checksum and is
   discarded: it was never acknowledged, so nobody is owed it.  Exec
   records never appear here ([maybe_checkpoint] truncates them away),
   so replay runs no program twice; a defensive skip covers the
   impossible case anyway. *)
let restart t =
  metric t "chirp.restart";
  Hashtbl.reset t.sessions;
  Hashtbl.reset t.dedup;
  Hashtbl.reset t.boxes;
  Hashtbl.reset t.digests;
  Queue.clear t.pending_q;
  Hashtbl.reset t.parked_ids;
  t.flush_armed <- false;
  t.sv_brownout <- false;
  let rc = Wal.recover t.wal in
  let c = cost t in
  wipe_export t;
  (* Rebuild the revocation store from stable storage alone: fresh
     epochs from the checkpoint image, then WAL replay re-applies any
     [Revoke] logged since.  The chain-verdict memo goes with the old
     store — its generation counter no longer means anything. *)
  t.sv_revocations <- Delegation.Revocations.create ();
  Enforce.drop_chains t.enforce;
  let restore_revocations blob =
    match Wire.decode blob with
    | Ok ("revocations" :: fields) ->
      let rec pairs acc = function
        | delegator :: epoch :: rest ->
          (match int_of_string_opt epoch with
           | Some e -> pairs ((delegator, e) :: acc) rest
           | None -> acc)
        | _ -> acc
      in
      ignore (Delegation.Revocations.merge t.sv_revocations (pairs [] fields));
      true
    | Ok _ | Error _ -> false
  in
  (match rc.Wal.rc_checkpoint with
   | None -> ()
   | Some blob ->
     metric t "chirp.recovery.checkpoint_loads";
     (match Wire.decode blob with
      | Ok (dedup_blob :: entry_blobs) ->
        let entry_blobs =
          List.filter (fun b -> not (restore_revocations b)) entry_blobs
        in
        let entries = List.filter_map snap_decode entry_blobs in
        charge t
          (Int64.mul
             (Int64.of_int (List.length entries))
             c.Idbox_kernel.Cost.checkpoint_entry_ns);
        ignore (install_entries t entries);
        (match Wire.decode dedup_blob with
         | Ok fields ->
           let rec restore = function
             | rid :: at :: resp :: rest ->
               (match Int64.of_string_opt at with
                | Some dd_at ->
                  Hashtbl.replace t.dedup rid { dd_at; dd_response = resp }
                | None -> ());
               restore rest
             | _ -> ()
           in
           restore fields
         | Error _ -> ())
      | Ok [] | Error _ -> ()));
  let replayed = ref 0 in
  List.iter
    (fun record ->
      charge t
        (Int64.add c.Idbox_kernel.Cost.wal_replay_ns
           (Idbox_kernel.Cost.copy_bytes c (String.length record)));
      match Wire.decode record with
      | Ok [ "op"; principal; opblob ] ->
        (match Protocol.operation_of_wire opblob with
         | Ok op when contains_exec op -> metric t "chirp.recovery.exec_skipped"
         | Ok op ->
           incr replayed;
           ignore
             (try serve_op t (Principal.of_string principal) op
              with _ -> err Errno.EIO)
         | Error _ -> ())
      | Ok [ "done"; rid; at; resp ] ->
        (match Int64.of_string_opt at with
         | Some dd_at ->
           Hashtbl.replace t.dedup rid { dd_at; dd_response = resp }
         | None -> ())
      | Ok _ | Error _ -> ())
    rc.Wal.rc_records;
  t.ops_since_ckpt <- List.length rc.Wal.rc_records;
  metric_add t "chirp.recovery.replayed" !replayed;
  metric_add t "chirp.recovery.torn" rc.Wal.rc_torn_records;
  Network.restart t.sv_net ~addr:t.sv_addr

let wal_records t = Wal.records t.wal
let wal_bytes t = Wal.log_bytes t.wal
let checkpoint_now t = take_checkpoint t

(* {1 Replication hooks}

   The cluster layer plugs in here.  The server stays ignorant of
   rings and membership: it reports fresh mutations to whatever hook
   is installed, and applies/ships subtrees on request over a channel
   the cluster authenticates by construction (peer servers, not
   clients). *)

let set_mutation_hook t hook = t.mutation_hook <- Some hook
let clear_mutation_hook t = t.mutation_hook <- None

(* Anti-entropy for revocation epochs: a peer's (delegator, epoch) list
   max-merges into the local store.  Merges are not WAL-logged (they are
   not client operations); a crash loses them only until the next gossip
   round, and monotonicity makes re-merging free.  Fail-closed either
   way: a lost merge can only under-revoke until the gossip heals it,
   never resurrect a chain the local store already killed. *)
let merge_epochs t entries =
  let changed = Delegation.Revocations.merge t.sv_revocations entries in
  if changed then metric t "chirp.revocation.merge";
  changed

let epoch_entries t = Delegation.Revocations.entries t.sv_revocations

(* Apply a mutation forwarded by a peer: same ACL enforcement path as a
   client request — the principal travelled with the operation, so a
   replica reaches the same verdict the primary did — but no hook
   re-fire (replicas do not re-forward). *)
let apply_replicated t ~identity op =
  metric t "chirp.repl.apply";
  (* A forwarded mutation is as durable here as a client's own: logged
     and synced before it executes, so a replica crash loses nothing it
     already applied. *)
  wal_record t
    [ "op"; Principal.to_string identity; Protocol.operation_to_wire op ];
  wal_sync t;
  let r =
    try serve_op t identity op
    with _ ->
      metric t "chirp.handler.crash";
      Protocol.R_error (Errno.EIO, "internal server error")
  in
  maybe_checkpoint t op;
  r

(* Install a shipped subtree as the owner: the ACL checks already
   happened where the data was written the first time.  The install is
   a bulk state change that the log does not describe, so it is made
   durable by checkpointing — which also truncates any now-superseded
   records. *)
let install_snapshot t entries =
  metric t "chirp.repl.install";
  match install_entries t entries with
  | Error e -> Error e
  | Ok () ->
    ignore (take_checkpoint t);
    Ok ()

(* Make the subtree under [prefix] exactly equal to [entries]: install
   everything shipped, delete everything else.  Plain installs are
   additive — good enough for rebalance, where the target starts empty,
   but anti-entropy must also remove divergent extras or digests never
   converge.  Deletion is safe because the entries come from the
   shard's primary, which has seen every acknowledged write. *)
let install_subtree_exact t ~prefix entries =
  metric t "chirp.repair.install";
  match snapshot_subtree t prefix with
  | Error e -> Error e
  | Ok current ->
    let keep = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace keep (snapshot_path e) ()) entries;
    (* Children precede parents in the reversed snapshot order, so a
       stale directory is empty by the time its rmdir runs. *)
    List.iter
      (fun entry ->
        let wire = snapshot_path entry in
        if not (Hashtbl.mem keep wire) then
          match map_path t wire with
          | Error _ -> ()
          | Ok abs ->
            (match entry with
             | Snap_dir _ ->
               ignore (delegate t (Syscall.Unlink (Path.join abs Acl.filename)));
               Enforce.invalidate t.enforce ~dir:abs;
               ignore (delegate t (Syscall.Rmdir abs))
             | Snap_file _ -> ignore (delegate t (Syscall.Unlink abs))))
      (List.rev current);
    (match install_entries t entries with
     | Error e -> Error e
     | Ok () ->
       ignore (take_checkpoint t);
       Ok ())

(* {1 Anti-entropy digests}

   Per-directory Merkle-style digests over names, kinds, file-content
   hashes and ACL text.  The {e local} digest of a directory covers its
   ACL and direct children only, and is memoized under the directory's
   (ino, generation) token — PR 4's generation counters make the memo
   sound, because namespace changes, ACL writes and content writes all
   bump it.  Subtree digests fold children's subtree digests into the
   local one, so any divergence anywhere below differs at the root.
   Generations themselves are node-local counters and are never part of
   the digest: replicas compare {e content}, not history. *)

let local_digest t abs =
  match Fs.dir_token (Kernel.fs t.sv_kernel) abs with
  | None -> Error Errno.ENOENT
  | Some token ->
    (match Hashtbl.find_opt t.digests abs with
     | Some m when m.dg_token = token ->
       metric t "chirp.digest.hit";
       charge t (cost t).Idbox_kernel.Cost.gen_check_ns;
       Ok m
     | _ ->
       metric t "chirp.digest.miss";
       (match delegate t (Syscall.Readdir abs) with
        | Error e -> Error e
        | Ok (Syscall.Names names) ->
          let names =
            List.sort String.compare
              (List.filter (fun n -> not (String.equal n Acl.filename)) names)
          in
          let acl =
            match Enforce.dir_acl t.enforce abs with
            | Some acl -> Acl.to_string acl
            | None -> ""
          in
          let rec fold fields subdirs = function
            | [] -> Ok (List.rev fields, List.rev subdirs)
            | name :: rest ->
              let child = Path.join abs name in
              (match delegate t (Syscall.Stat child) with
               | Error _ -> fold fields subdirs rest
               | Ok (Syscall.Stat_v st) when st.Fs.st_kind = Inode.Directory ->
                 fold (("d:" ^ name) :: fields) (child :: subdirs) rest
               | Ok (Syscall.Stat_v _) ->
                 (match
                    Fs.read_file (Kernel.fs t.sv_kernel)
                      ~uid:t.sv_owner.View.uid child
                  with
                  | Ok data ->
                    charge t
                      (Idbox_kernel.Cost.copy_bytes (cost t)
                         (String.length data));
                    fold
                      (("f:" ^ name ^ ":" ^ Digest.to_hex (Digest.string data))
                       :: fields)
                      subdirs rest
                  | Error _ -> fold fields subdirs rest)
               | Ok _ -> fold fields subdirs rest)
          in
          (match fold [] [] names with
           | Error e -> Error e
           | Ok (fields, subdirs) ->
             charge t (cost t).Idbox_kernel.Cost.digest_dir_ns;
             let m =
               {
                 dg_token = token;
                 dg_local =
                   Digest.to_hex (Digest.string (Wire.encode (acl :: fields)));
                 dg_subdirs = subdirs;
               }
             in
             Hashtbl.replace t.digests abs m;
             Ok m)
        | Ok _ -> Error Errno.EINVAL))

let rec subtree_digest_abs t abs =
  match delegate t (Syscall.Stat abs) with
  | Error e -> Error e
  | Ok (Syscall.Stat_v st) when st.Fs.st_kind = Inode.Directory ->
    (match local_digest t abs with
     | Error e -> Error e
     | Ok m ->
       let rec fold acc = function
         | [] -> Ok (List.rev acc)
         | child :: rest ->
           (match subtree_digest_abs t child with
            | Error e -> Error e
            | Ok d -> fold ((Path.basename child ^ ":" ^ d) :: acc) rest)
       in
       (match fold [] m.dg_subdirs with
        | Error e -> Error e
        | Ok children ->
          Ok
            (Digest.to_hex
               (Digest.string (Wire.encode (m.dg_local :: children))))))
  | Ok (Syscall.Stat_v _) ->
    (* A bare file at the prefix (a top-level file shards on its own
       name): its digest is its content hash. *)
    (match Fs.read_file (Kernel.fs t.sv_kernel) ~uid:t.sv_owner.View.uid abs with
     | Ok data -> Ok (Digest.to_hex (Digest.string data))
     | Error e -> Error e)
  | Ok _ -> Error Errno.EINVAL

let subtree_digest ?(recurse = true) t wire_prefix =
  match map_path t wire_prefix with
  | Error e -> Error e
  | Ok abs ->
    if recurse then subtree_digest_abs t abs
    else Result.map (fun m -> m.dg_local) (local_digest t abs)

let dir_digests t wire_prefix =
  match map_path t wire_prefix with
  | Error e -> Error e
  | Ok abs0 ->
    let to_wire abs =
      match Path.strip_prefix ~prefix:t.sv_export abs with
      | Some rel -> rel
      | None -> "/"
    in
    let rec walk abs acc =
      match subtree_digest_abs t abs with
      | Error _ -> acc
      | Ok d ->
        let acc = (to_wire abs, d) :: acc in
        (match local_digest t abs with
         | Error _ -> acc
         | Ok m -> List.fold_left (fun acc c -> walk c acc) acc m.dg_subdirs)
    in
    Ok (List.sort compare (walk abs0 []))

let shard_roots t =
  match delegate t (Syscall.Readdir t.sv_export) with
  | Ok (Syscall.Names names) ->
    Ok
      (List.sort String.compare
         (List.filter (fun n -> not (String.equal n Acl.filename)) names))
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e
