(** The Chirp catalog: servers report themselves; clients discover the
    set of available servers (paper §4).  A deliberately simple
    register/list service over the simulated network.

    Registrations are leases, not facts: a server must heartbeat (which
    is just a repeated registration) or it is evicted after
    [staleness_ns] and stops being advertised.  A server cut off by a
    partition therefore disappears from [list] and reappears on its
    first heartbeat after the partition heals. *)

type entry = {
  name : string;  (** The server's self-chosen name. *)
  server_addr : string;  (** Where to connect. *)
  owner : string;  (** Deploying principal, informational. *)
  registered_at : int64;  (** Simulated time of first registration. *)
  mutable last_heartbeat : int64;  (** Simulated time of latest check-in. *)
}

type t

val create : ?staleness_ns:int64 -> Idbox_net.Network.t -> addr:string -> t
(** Start a catalog service listening at [addr].  Entries older than
    [staleness_ns] (default 300 s) since their last heartbeat are
    evicted. *)

val addr : t -> string

val entries : t -> entry list
(** Current (non-stale) registrations, sorted by name. *)

val shutdown : t -> unit

(** {1 Client side} *)

val register :
  ?src:string ->
  Idbox_net.Network.t ->
  catalog:string ->
  name:string ->
  server_addr:string ->
  owner:string ->
  (unit, string) result
(** What a server does at startup; {!heartbeat} repeats it
    periodically.  Re-registering the same name at the same address
    refreshes the lease without resetting [registered_at]. *)

val deregister :
  ?src:string ->
  Idbox_net.Network.t ->
  catalog:string ->
  name:string ->
  (unit, string) result
(** A clean departure (scale-down): drop the lease now instead of
    letting it age out, so the next [list] no longer advertises the
    server (counted as [catalog.deregister]). *)

val list :
  ?src:string ->
  ?timeout_ns:int64 ->
  Idbox_net.Network.t ->
  catalog:string ->
  (entry list, string) result
(** What an interested party does to discover servers.  [timeout_ns]
    bounds the wait — cluster nodes polling from inside a request
    handler use a short one, so a lost catalog reply cannot stall the
    request a full client timeout. *)

(** {1 Heartbeat driver}

    The simulated world has no background threads, so heartbeating is a
    cooperative object: create one, then call {!tick} whenever the
    owning code gets control (e.g. once per workload step).  [tick]
    sends a heartbeat when one is due and is a cheap no-op otherwise. *)

type heartbeat

val heartbeat :
  ?src:string ->
  ?interval_ns:int64 ->
  Idbox_net.Network.t ->
  catalog:string ->
  name:string ->
  server_addr:string ->
  owner:string ->
  heartbeat
(** Register immediately (best-effort) and heartbeat every
    [interval_ns] (default 60 s) thereafter via {!tick}. *)

val tick : heartbeat -> bool
(** Send a heartbeat if one is due.  Returns [true] on a successful
    send; on failure the heartbeat stays due, so the next [tick]
    retries immediately — re-registration happens on the first tick
    after a partition heals. *)

val heartbeats_sent : heartbeat -> int
val heartbeats_missed : heartbeat -> int
