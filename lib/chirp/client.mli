(** The Chirp client: typed access to a remote server over the simulated
    network, plus the adapter that lets identity boxes mount a server
    under [/chirp/...] (paper §4: "files on a Chirp server appear as
    ordinary files in the path /chirp/server/path").

    The client survives an imperfect network.  Every call runs under a
    {!retry_policy}: a per-attempt timeout, bounded exponential backoff
    with deterministic jitter, and a per-session retry budget.
    Idempotent operations ([get], [stat], [readdir], [getacl],
    [checksum], [whoami]) are re-sent transparently; non-idempotent ones
    ([put], [mkdir], [rmdir], [unlink], [setacl], [rename], [exec])
    carry a client-generated request ID that the server deduplicates, so
    a retried [exec] still runs exactly once.  When the server forgets
    the session (restart or idle expiry, surfaced as [ESTALE]), the
    client re-authenticates with its original credentials and refuses to
    continue if the negotiated principal changed — reconnecting can
    never switch identities mid-session. *)

type t
(** An authenticated session. *)

type 'a r := ('a, Idbox_vfs.Errno.t) result

type retry_policy = {
  timeout_ns : int64;  (** Per-attempt wait before declaring a loss. *)
  max_attempts : int;  (** Total attempts per call, including the first. *)
  base_backoff_ns : int64;  (** First retry's backoff cap. *)
  max_backoff_ns : int64;  (** Ceiling for the doubling cap. *)
  retry_budget : int;
      (** Total retries the session may spend across all calls; once
          exhausted, calls fail on their first transport error
          (graceful degradation instead of unbounded re-sending). *)
  lease_ns : int64;
      (** How long a cached [stat]/[getacl] response may be served
          without a round trip (an NFS-style attribute lease).  The
          cache is flushed on every mutation attempted through this
          client and on re-authentication; [0L] (or negative) disables
          it.  Counters: [chirp.lease.hit] / [.miss] / [.invalidate]. *)
}

val default_policy : retry_policy
(** 1 s timeout, 4 attempts, 1 ms–100 ms backoff, budget 100,
    2 s attribute leases. *)

val connect :
  ?src:string ->
  ?policy:retry_policy ->
  Idbox_net.Network.t ->
  addr:string ->
  credentials:Idbox_auth.Credential.t list ->
  (t, string) result
(** Negotiate authentication (client preference order) and open a
    session.  [src] (default ["client"]) names the calling host for
    partition matching. *)

val principal : t -> string
(** The negotiated principal, as the server knows us.  Stable for the
    life of the session: re-authentication after a server restart
    asserts the same principal or fails. *)

val auth_method : t -> string

val addr : t -> string

val retries : t -> int
(** Retries spent so far (all calls). *)

val budget_left : t -> int
(** Remaining session retry budget. *)

val breaker : t -> Idbox_net.Breaker.t
(** This session's circuit breaker over its one server: tripped by
    consecutive transport failures (8, reset 800 ms), after which calls
    fail fast with the tripping errno instead of burning a timeout
    each; the retry backoff still runs, so the half-open probe is
    reached and a recovered server closes it.  Shed responses
    ([EAGAIN]) never feed it.  Counted under [chirp.breaker.*]. *)

val mkdir : t -> string -> unit r
val rmdir : t -> string -> unit r
val unlink : t -> string -> unit r
val put : t -> path:string -> data:string -> unit r
val get : t -> string -> string r
val stat : t -> string -> Protocol.wire_stat r
val readdir : t -> string -> string list r
val getacl : t -> string -> string r
val setacl : t -> path:string -> entry:string -> unit r
val rename : t -> src:string -> dst:string -> unit r

val exec : t -> ?cwd:string -> path:string -> args:string list -> unit -> int r
(** The paper's remote-execution extension: run a staged program inside
    an identity box labelled with this session's principal; returns the
    exit code.  [cwd] defaults to the program's directory.  Retried
    transparently on transport faults; the request ID guarantees the
    program still runs at most once. *)

val checksum : t -> string -> string r
(** Server-side MD5 (hex) of a remote file: verify a transfer without a
    second copy of the data on the wire. *)

val whoami : t -> string r

val exec_delegated :
  t ->
  chain:Idbox_auth.Delegation.chain ->
  ?cwd:string ->
  path:string ->
  args:string list ->
  unit ->
  int r
(** {!exec} under a delegation chain whose last delegatee is this
    session's principal: the server validates the chain and runs the
    program as the chain's {e root} delegator, attenuated to the
    chain's grant and scope.  Same retry/dedup guarantees as {!exec}. *)

val get_delegated : t -> chain:Idbox_auth.Delegation.chain -> string -> string r
(** {!get} under a delegation chain — delegated read access. *)

val revoke : t -> string -> int r
(** Revoke every chain through the named delegator (who must be this
    session's principal — revocation is self-service): bumps the
    delegator's revocation epoch on the server and returns the new
    epoch.  Tokens minted under lower epochs are dead everywhere the
    epoch reaches (replication fan-out now, gossip after partitions). *)

val delegation_epoch : t -> string -> int r
(** The server's current revocation epoch for the named delegator. *)

val batch : t -> Protocol.operation list -> Protocol.response list r
(** Run N operations in one round trip ({!Protocol.Batch}): one
    envelope, one checksum, one request ID — a retried mutation batch
    deduplicates as a unit.  Members execute in order server-side; each
    member's result (including per-member errors) comes back in request
    order.  [Ok []] for the empty list without touching the network;
    [EINVAL] on nested batches. *)

(** {1 Prepared exchanges}

    The raw halves of one exchange, for callers that drive the network
    themselves — the cluster router submits several prepared requests
    concurrently ({!Idbox_net.Network.submit}) to hedge a read across
    replicas.  Only idempotent operations belong here: they carry no
    request ID, so preparing is pure and sending the same bytes twice
    is harmless by construction. *)

val prepare : t -> Protocol.operation -> string
(** The wire payload of [op] under this session's token, with no
    request ID.  Pure: no network traffic, no client state change. *)

val interpret : string -> (Protocol.response, Idbox_vfs.Errno.t) result
(** Decode one response payload: a damaged frame becomes [EIO] (the
    retry layers treat it as a transport fault), a server [R_error]
    becomes its errno, anything else is the answer.  Performs no
    retries and no re-authentication — a caller seeing [ESTALE] falls
    back to {!val-call}-based paths, which do. *)

val to_remote : t -> Idbox.Remote.t
(** A {!Idbox.Remote} driver backed by this session, for mounting into
    an identity box. *)
