(** The Chirp server: a personal file server for grid computing
    (paper §4).

    A server is deployed {e by an ordinary user} on a host: it exports a
    directory of that host's filesystem, authenticates clients by any
    negotiated method, and enforces per-directory ACLs against the
    negotiated principal — a fully virtual user space in which local
    accounts never appear.  The [exec] extension runs a staged program
    in an identity box labelled with the caller's principal, which is
    the paper's Figure 3 demonstration.

    The server object plugs into the simulated {!Idbox_net.Network} as a
    request handler; its own filesystem work runs as the deploying
    user's uid on the host kernel. *)

type t

val create :
  kernel:Idbox_kernel.Kernel.t ->
  net:Idbox_net.Network.t ->
  addr:string ->
  owner_uid:int ->
  export:string ->
  acceptor:Idbox_auth.Negotiate.acceptor ->
  ?root_acl:Idbox_acl.Acl.t ->
  ?max_sessions:int ->
  ?session_idle_ns:int64 ->
  ?dedup_window_ns:int64 ->
  unit ->
  (t, Idbox_vfs.Errno.t) result
(** Create the export directory (if missing), install [root_acl] on it
    when given, and start listening on [addr].

    Degradation knobs: at most [max_sessions] (default 64) live
    sessions — further [Auth] requests are shed with [EAGAIN]; sessions
    idle longer than [session_idle_ns] (default 10 min) are expired
    (covering half-authenticated leftovers whose auth reply was lost);
    responses to request-ID-carrying operations are remembered for
    [dedup_window_ns] (default 60 s) so client retries are exactly-once. *)

val addr : t -> string
val export : t -> string
val owner_uid : t -> int

val sessions : t -> (string * string) list
(** [(principal, method)] for every authenticated session. *)

val session_count : t -> int

val exec_count : t -> int
(** Remote executions served (for experiment accounting). *)

val dedup_size : t -> int
(** Entries currently held in the dedup window. *)

val shutdown : t -> unit
(** Stop listening. *)

val crash : t -> unit
(** Simulate a crash: the endpoint goes down ([ECONNREFUSED] to
    callers) until {!restart}. *)

val restart : t -> unit
(** Come back up after {!crash}: the session table is lost (old tokens
    answer [ESTALE], forcing clients to re-authenticate) but the dedup
    journal survives, as on stable storage — a retry of an operation
    executed just before the crash still replays instead of re-running. *)

val handle : t -> string -> string
(** The raw request handler (exposed for direct-dispatch tests). *)
