(** The Chirp server: a personal file server for grid computing
    (paper §4).

    A server is deployed {e by an ordinary user} on a host: it exports a
    directory of that host's filesystem, authenticates clients by any
    negotiated method, and enforces per-directory ACLs against the
    negotiated principal — a fully virtual user space in which local
    accounts never appear.  The [exec] extension runs a staged program
    in an identity box labelled with the caller's principal, which is
    the paper's Figure 3 demonstration.

    The server object plugs into the simulated {!Idbox_net.Network} as a
    request handler; its own filesystem work runs as the deploying
    user's uid on the host kernel. *)

type t

val create :
  kernel:Idbox_kernel.Kernel.t ->
  net:Idbox_net.Network.t ->
  addr:string ->
  owner_uid:int ->
  export:string ->
  acceptor:Idbox_auth.Negotiate.acceptor ->
  ?root_acl:Idbox_acl.Acl.t ->
  ?max_sessions:int ->
  ?max_parked:int ->
  ?session_idle_ns:int64 ->
  ?dedup_window_ns:int64 ->
  ?wal:Wal.t ->
  ?checkpoint_every:int ->
  ?event_driven:bool ->
  ?flush_interval_ns:int64 ->
  ?flush_batch_limit:int ->
  unit ->
  (t, Idbox_vfs.Errno.t) result
(** Create the export directory (if missing), install [root_acl] on it
    when given, take a checkpoint of the (near-empty) export so recovery
    always has an image, and start listening on [addr].

    With [event_driven:true] (default [false]) the server registers an
    asynchronous endpoint ({!Idbox_net.Network.listen_async}) instead of
    a blocking handler: reads, auth and every error path are answered at
    delivery, while fresh mutations {e park} — the WAL ["op"] record is
    appended at admission (arrival order is log order) and a batch tick
    [flush_interval_ns] (default 50 µs) after the first parked operation
    group-commits: one sync covers every parked record, the batch
    executes FIFO, the ["done"] dedup records are appended and synced,
    and only then do responses leave.  Sync-before-ack, exactly-once
    dedup and in-order execution are preserved exactly; the difference
    is that one sync amortizes over the batch and thousands of sessions
    can be in flight at once.  A parked operation carries its principal
    from admission, so a session expiring mid-batch does not lose the
    response — and cannot double-release its slot, because the session
    table is the only slot accounting there is.  Counted in
    [chirp.async.{parked,batch,batch_ops,coalesced}].

    Degradation knobs: at most [max_sessions] (default 64) live
    sessions — further [Auth] requests are shed with [EAGAIN] and a
    retry-after hint ([chirp.shed.session]); sessions idle longer than
    [session_idle_ns] (default 10 min) are expired (covering
    half-authenticated leftovers whose auth reply was lost); responses
    to request-ID-carrying operations are remembered for
    [dedup_window_ns] (default 60 s) so client retries are exactly-once.

    Admission control (event-driven servers): the parked-mutation queue
    is bounded at [max_parked] (default 256).  Past 3/4 of the bound the
    server enters {e brownout} and sheds every fresh mutation with
    [EAGAIN] plus a [retry_after_ns] hint ([chirp.shed.mutation],
    [chirp.brownout.enter]); reads, dedup replays and parked retries are
    still served — reads are admitted before mutations.  Brownout exits
    once the queue drains below 1/4 ([chirp.brownout.exit]), so
    admission does not flap at the threshold.  [flush_batch_limit]
    (default unlimited) caps how many parked operations one batch tick
    executes — the server's engineered drain rate; a deeper backlog
    stays parked for later ticks, so sustained over-admission shows up
    as queueing delay rather than being serviced for free.

    Durability knobs: [wal] is the stable-storage device holding the
    write-ahead log and checkpoint image (default a calm device — pass
    one built with a {!Idbox_net.Fault.storage_profile} to inject crash
    damage); a checkpoint is taken every [checkpoint_every] (default
    128) logged records, and immediately after any [Exec] so program
    runs are never replayed. *)

val addr : t -> string
val export : t -> string
val owner_uid : t -> int

val revocations : t -> Idbox_auth.Delegation.Revocations.t
(** The per-delegator revocation-epoch store.  Grown by [Revoke]
    operations and by {!merge_epochs}; persisted inside checkpoints and
    rebuilt on {!restart} (checkpoint image plus replayed [Revoke]
    records). *)

val audit : t -> Idbox.Audit.t
(** The server's forensic trail.  Delegated operations record one event
    per chain hop ([op = "delegate"], the delegator handing authority
    toward the delegatee) plus one for the inner operation's verdict
    ([op = "delegated.<name>"]) — or a single denial when the chain is
    refused. *)

val sessions : t -> (string * string) list
(** [(principal, method)] for every authenticated session. *)

val session_count : t -> int

val exec_count : t -> int
(** Remote executions served (for experiment accounting). *)

val dedup_size : t -> int
(** Entries currently held in the dedup window. *)

val event_driven : t -> bool
(** Whether this server serves through the asynchronous endpoint. *)

val parked_ops : t -> int
(** Mutations parked and awaiting the next batch tick (always [0] on a
    blocking server). *)

val brownout : t -> bool
(** Whether the server is currently in brownout (shedding mutations). *)

val max_parked : t -> int
val max_sessions : t -> int

val shutdown : t -> unit
(** Stop listening. *)

val crash : t -> unit
(** Simulate a crash: the endpoint goes down ([ECONNREFUSED] to
    callers) until {!restart}, and the WAL device takes seeded crash
    damage per its storage profile.  Volatile state — sessions, the
    in-memory dedup table, identity boxes, every un-logged file — is
    gone; only the checkpoint image and the synced log prefix survive. *)

val restart : t -> unit
(** Come back up after {!crash} by {e recovering from stable storage}:
    the export is wiped, the latest checkpoint image is reinstalled, and
    the surviving WAL records are replayed in order (a torn or corrupt
    tail is discarded by checksum; it was never acknowledged).  The
    session table is lost (old tokens answer [ESTALE], forcing clients
    to re-authenticate), but the dedup journal is rebuilt from logged
    ["done"] records — a retry of an operation acknowledged just before
    the crash still replays instead of re-running.  Replay charges
    calibrated time ([wal_replay_ns] per record plus byte-copy cost), so
    recovery MTTR is measurable against log length.  Counted in
    [chirp.recovery.{replayed,torn,checkpoint_loads}]. *)

val wal_records : t -> int
(** Records currently in the WAL (since the last checkpoint). *)

val wal_bytes : t -> int
(** Byte length of the current WAL. *)

val checkpoint_now : t -> (unit, Idbox_vfs.Errno.t) result
(** Force a checkpoint (snapshot the export, truncate the log). *)

val handle : t -> string -> string
(** The raw request handler (exposed for direct-dispatch tests). *)

(** {1 Replication hooks}

    The attachment points for the cluster layer ({!Idbox_cluster}).
    The server knows nothing of rings or membership; it reports fresh
    mutations and can apply or ship state on a peer's behalf. *)

val set_mutation_hook :
  t -> (identity:Idbox_identity.Principal.t -> Protocol.operation -> unit) -> unit
(** Install the hook called after every {e fresh, successful}
    non-idempotent operation (dedup replays never re-fire it, so a
    retried write still replicates exactly once).  Hook exceptions are
    contained and counted ([chirp.repl.hook_crash]); they cannot change
    the client's answer. *)

val clear_mutation_hook : t -> unit

val merge_epochs : t -> (string * int) list -> bool
(** Max-merge a peer's (delegator, revocation epoch) entries into the
    local store; [true] iff anything grew ([chirp.revocation.merge]).
    The anti-entropy side of revocation: [Revoke] fan-out covers the
    connected case, gossip heals partitions.  Merges are monotone, so
    delivery order and duplication are harmless. *)

val epoch_entries : t -> (string * int) list
(** The local (delegator, epoch) entries, sorted — the payload of a
    gossip round. *)

val apply_replicated :
  t ->
  identity:Idbox_identity.Principal.t ->
  Protocol.operation ->
  Protocol.response
(** Apply a mutation forwarded by a peer server, under the principal
    that performed it at the primary.  Runs the exact client-serving
    path — same ACL checks, same verdicts — but never re-forwards. *)

type snapshot_entry =
  | Snap_dir of { path : string; acl : string }
      (** A directory (wire path) and its ACL text ([""] when none). *)
  | Snap_file of { path : string; data : string }

val snapshot_subtree :
  ?recurse:bool -> t -> string -> (snapshot_entry list, Idbox_vfs.Errno.t) result
(** The subtree under a wire path as the owner sees it — directories
    first (parents before children), ACLs included.  [Ok []] when the
    prefix does not exist here.  With [recurse:false] (default [true]),
    just the named entry — e.g. the root directory's ACL alone. *)

val install_snapshot :
  t -> snapshot_entry list -> (unit, Idbox_vfs.Errno.t) result
(** Install a shipped subtree as the owner (rebalance migration): ACL
    enforcement already happened where the data was first written.
    Made durable by an immediate checkpoint (the WAL does not describe
    bulk installs). *)

val install_subtree_exact :
  t -> prefix:string -> snapshot_entry list -> (unit, Idbox_vfs.Errno.t) result
(** Make the subtree under the wire path [prefix] exactly equal to
    [entries] — install everything shipped {e and delete everything
    else} (anti-entropy repair).  An empty [entries] deletes the
    subtree.  Checkpoints afterwards, like {!install_snapshot}. *)

(** {1 Anti-entropy digests}

    Merkle-style per-directory digests over ACL text, child names and
    kinds, and file-content hashes.  Two replicas hold the same subtree
    content if and only if their subtree digests match; node-local
    bookkeeping (inode numbers, generation counters, timestamps) is
    deliberately excluded.  Per-directory digests are memoized under the
    directory's [(ino, generation)] token, so an unchanged directory
    revalidates at [gen_check_ns] instead of re-hashing
    ([chirp.digest.hit] / [chirp.digest.miss]). *)

val subtree_digest :
  ?recurse:bool -> t -> string -> (string, Idbox_vfs.Errno.t) result
(** Digest of the subtree under a wire path.  With [recurse:false],
    just the directory's local digest (ACL + direct children), not its
    descendants.  [Error ENOENT] when the prefix does not exist here. *)

val dir_digests : t -> string -> ((string * string) list, Idbox_vfs.Errno.t) result
(** [(wire path, subtree digest)] for every directory under (and
    including) the given wire prefix, sorted by path — the
    byte-comparable summary the convergence tests assert on. *)

val shard_roots : t -> (string list, Idbox_vfs.Errno.t) result
(** The top-level entry names in the export (shard keys present on this
    server), sorted.  The anti-entropy sweep iterates these. *)
