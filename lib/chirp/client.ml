module Network = Idbox_net.Network
module Fault = Idbox_net.Fault
module Breaker = Idbox_net.Breaker
module Metrics = Idbox_kernel.Metrics
module Clock = Idbox_kernel.Clock
module Errno = Idbox_vfs.Errno
module Path = Idbox_vfs.Path
module Inode = Idbox_vfs.Inode
module Fs = Idbox_vfs.Fs

type retry_policy = {
  timeout_ns : int64;
  max_attempts : int;
  base_backoff_ns : int64;
  max_backoff_ns : int64;
  retry_budget : int;
  lease_ns : int64;
}

let default_policy =
  {
    timeout_ns = 1_000_000_000L;
    max_attempts = 4;
    base_backoff_ns = 1_000_000L;
    max_backoff_ns = 100_000_000L;
    retry_budget = 100;
    lease_ns = 2_000_000_000L;
  }

(* An NFS-style lease over attribute reads: a cached [Stat]/[Getacl]
   response served without a round trip while the lease holds.  Flushed
   wholesale on any mutation reply through this client and on reauth
   (the server restarted under us); bounded in between by [lease_ns]. *)
type lease = {
  le_at : int64;
  le_resp : Protocol.response;
}

type t = {
  cl_net : Network.t;
  cl_addr : string;
  cl_src : string;
  mutable cl_token : string;
  cl_id : string;  (* stable request-ID prefix, fixed at first auth *)
  cl_principal : string;
  cl_method : string;
  cl_creds : Idbox_auth.Credential.t list;
  cl_policy : retry_policy;
  cl_rng : Fault.rng;
  mutable cl_budget : int;
  mutable cl_retries : int;
  mutable cl_req_counter : int;
  cl_leases : (string, lease) Hashtbl.t;
  (* A circuit breaker over this client's one server: repeated
     transport failures trip it, and while it is open calls fail fast
     with the last seen errno instead of burning a timeout each.
     Shed responses (EAGAIN) never feed it — an answer is liveness. *)
  cl_breaker : Breaker.t;
}

let principal t = t.cl_principal
let auth_method t = t.cl_method
let addr t = t.cl_addr
let retries t = t.cl_retries
let budget_left t = t.cl_budget
let breaker t = t.cl_breaker

let metric_on net name = Metrics.incr (Metrics.counter (Network.metrics net) name)
let metric t name = metric_on t.cl_net name

let leases_on t = Int64.compare t.cl_policy.lease_ns 0L > 0

let lease_get t key =
  if not (leases_on t) then None
  else begin
    let now = Clock.now (Network.clock t.cl_net) in
    match Hashtbl.find_opt t.cl_leases key with
    | Some l when Int64.sub now l.le_at <= t.cl_policy.lease_ns ->
      metric t "chirp.lease.hit";
      Some l.le_resp
    | Some _ ->
      Hashtbl.remove t.cl_leases key;
      metric t "chirp.lease.miss";
      None
    | None ->
      metric t "chirp.lease.miss";
      None
  end

let lease_put t key resp =
  if leases_on t then
    Hashtbl.replace t.cl_leases key
      { le_at = Clock.now (Network.clock t.cl_net); le_resp = resp }

let flush_leases t =
  if Hashtbl.length t.cl_leases > 0 then begin
    metric t "chirp.lease.invalidate";
    Hashtbl.reset t.cl_leases
  end

(* Transport-level failures a retry can plausibly cure.  EAGAIN covers a
   server shedding load (session table full): back off and try again. *)
let transient = function
  | Errno.ETIMEDOUT | Errno.ECONNRESET | Errno.ECONNREFUSED
  | Errno.EHOSTUNREACH | Errno.EAGAIN -> true
  | _ -> false

(* Bounded exponential backoff with deterministic jitter: attempt [n]
   (1-based) sleeps in [cap/2, cap] where cap = min(base * 2^(n-1), max).
   The jitter draw comes from the client's seeded stream, so a given
   client replays the same backoff schedule every run. *)
let backoff_ns policy rng attempt =
  let rec grow cap n =
    if n <= 0 || cap >= policy.max_backoff_ns then cap
    else grow (Int64.mul cap 2L) (n - 1)
  in
  let cap = grow policy.base_backoff_ns (attempt - 1) in
  let cap = if cap > policy.max_backoff_ns then policy.max_backoff_ns else cap in
  let half = Int64.div cap 2L in
  Int64.add half (Int64.of_int (Fault.int_below rng (Int64.to_int half + 1)))

(* One authenticated exchange with transport retries (used by both
   [connect] and session re-establishment).  Auth retries are bounded by
   [max_attempts] alone: there is no session budget yet to spend. *)
let auth_exchange net ~src ~policy ~rng ~addr ~credentials =
  let payload = Protocol.encode_request (Protocol.Auth credentials) in
  let rec go attempt =
    let retry ?(shed = false) () =
      metric_on net (if shed then "chirp.retry.shed" else "chirp.retry");
      Clock.advance (Network.clock net) (backoff_ns policy rng attempt);
      go (attempt + 1)
    in
    match Network.call net ~src ~timeout_ns:policy.timeout_ns ~addr payload with
    | Error e when transient e && attempt < policy.max_attempts -> retry ()
    | Error e -> Error (`Transport e)
    | Ok text ->
      (match Protocol.decode_response text with
       | Error _ when attempt < policy.max_attempts -> retry ()
       | Error msg -> Error (`Decode msg)
       | Ok (Protocol.R_auth { token; principal; method_ }) ->
         Ok (token, principal, method_)
       | Ok (Protocol.R_error (Errno.EAGAIN, _))
         when attempt < policy.max_attempts ->
         (* The server shed us (session table full / brownout): a
            distinct kind of retry — the peer is alive, just busy. *)
         retry ~shed:true ()
       | Ok (Protocol.R_error (e, _))
         when transient e && attempt < policy.max_attempts -> retry ()
       | Ok (Protocol.R_error (_, msg)) -> Error (`Server msg)
       | Ok _ -> Error (`Decode "unexpected response"))
  in
  go 1

let connect ?(src = "client") ?(policy = default_policy) net ~addr ~credentials =
  let rng = Fault.rng (Int64.of_int (Hashtbl.hash (addr ^ "|" ^ src))) in
  match auth_exchange net ~src ~policy ~rng ~addr ~credentials with
  | Error (`Transport e) -> Error ("connect: " ^ Errno.message e)
  | Error (`Decode msg) -> Error ("connect: bad response: " ^ msg)
  | Error (`Server msg) -> Error msg
  | Ok (token, principal, method_) ->
    Ok
      {
        cl_net = net;
        cl_addr = addr;
        cl_src = src;
        cl_token = token;
        cl_id = token;
        cl_principal = principal;
        cl_method = method_;
        cl_creds = credentials;
        cl_policy = policy;
        cl_rng = rng;
        cl_budget = policy.retry_budget;
        cl_retries = 0;
        cl_req_counter = 0;
        cl_leases = Hashtbl.create 16;
        cl_breaker =
          Breaker.create ~threshold:8 ~reset_ns:800_000_000L
            ~prefix:"chirp.breaker" ~clock:(Network.clock net)
            ~metrics:(Network.metrics net) addr;
      }

(* The server forgot our session (restart, or idle expiry): negotiate a
   fresh one with the credentials we kept.  The new session MUST map to
   the same principal — a different answer means the server's identity
   mapping changed under us, and silently adopting it would let one
   user's retries run under another's name. *)
let reauth t =
  metric t "chirp.reauth";
  match
    auth_exchange t.cl_net ~src:t.cl_src ~policy:t.cl_policy ~rng:t.cl_rng
      ~addr:t.cl_addr ~credentials:t.cl_creds
  with
  | Error (`Transport e) -> Error e
  | Error (`Decode _) -> Error Errno.EIO
  | Error (`Server _) -> Error Errno.EACCES
  | Ok (token, principal, _method) ->
    if String.equal principal t.cl_principal then begin
      t.cl_token <- token;
      (* ESTALE means the server forgot us — likely a restart, after
         which any cached attribute may describe a lost world. *)
      flush_leases t;
      Ok ()
    end
    else begin
      metric t "chirp.reauth.mismatch";
      Error Errno.EPERM
    end

let call t op =
  let req_id =
    if Protocol.idempotent op then ""
    else begin
      t.cl_req_counter <- t.cl_req_counter + 1;
      Printf.sprintf "%s#%d" t.cl_id t.cl_req_counter
    end
  in
  let payload () =
    Protocol.encode_request (Protocol.Op { token = t.cl_token; req_id; op })
  in
  let rec go attempt reauthed =
    let retry ?hint ?(shed = false) e =
      if attempt < t.cl_policy.max_attempts && t.cl_budget > 0 then begin
        t.cl_budget <- t.cl_budget - 1;
        t.cl_retries <- t.cl_retries + 1;
        (* Shed retries are counted apart from timeout retries: they
           mean "the cluster is saturated", not "the network is bad". *)
        metric t (if shed then "chirp.retry.shed" else "chirp.retry");
        let pause = backoff_ns t.cl_policy t.cl_rng attempt in
        (* Honor the server's retry-after hint when it asks for longer
           than our own backoff would wait — bounded by the call
           timeout, so a bogus hint cannot park us forever. *)
        let pause =
          match hint with
          | Some h -> Int64.max pause (Int64.min h t.cl_policy.timeout_ns)
          | None -> pause
        in
        Clock.advance (Network.clock t.cl_net) pause;
        go (attempt + 1) reauthed
      end
      else begin
        metric t "chirp.giveup";
        Error e
      end
    in
    if not (Breaker.allow t.cl_breaker) then
      (* The breaker is open: fail fast with the errno that tripped it
         rather than burn a full timeout on a known-bad server.  The
         backoff between attempts still runs, so a long-enough retry
         schedule reaches the half-open probe. *)
      retry (Breaker.last_errno t.cl_breaker)
    else
      match
        Network.call t.cl_net ~src:t.cl_src ~timeout_ns:t.cl_policy.timeout_ns
          ~addr:t.cl_addr (payload ())
      with
      | Error e when transient e ->
        Breaker.failure ~errno:e t.cl_breaker;
        retry e
      | Error e -> Error e
      | Ok text ->
        (* Any reply — even an error verdict or a damaged frame — proves
           the server is alive and answering. *)
        Breaker.success t.cl_breaker;
        (match Protocol.decode_response text with
         | Error _ ->
           (* Damaged frame (truncation/corruption caught by the protocol
              checksum): indistinguishable from a lost reply, so retry. *)
           retry Errno.EIO
         | Ok (Protocol.R_error (Errno.ESTALE, _)) when not reauthed ->
           (match reauth t with
            | Ok () -> go attempt true
            | Error e -> Error e)
         | Ok (Protocol.R_error (Errno.EAGAIN, msg)) ->
           retry ?hint:(Protocol.retry_after_of_message msg) ~shed:true
             Errno.EAGAIN
         | Ok (Protocol.R_error (e, _)) when transient e -> retry e
         | Ok (Protocol.R_error (e, _)) -> Error e
         | Ok r -> Ok r)
  in
  let r = go 1 false in
  (* Any mutation attempt through this client invalidates its leases —
     even a failed one may have landed server-side (lost reply). *)
  if not (Protocol.idempotent op) then flush_leases t;
  r

(* {1 Prepared exchanges}

   The raw halves of one idempotent exchange, for callers that drive
   the network themselves (the cluster router's hedged reads issue
   several prepared requests concurrently via [Network.submit]).
   Idempotent operations carry no request ID, so preparing is pure:
   the same operation prepares to the same bytes, and sending it twice
   is harmless by construction. *)

let prepare t op =
  Protocol.encode_request (Protocol.Op { token = t.cl_token; req_id = ""; op })

let interpret text =
  match Protocol.decode_response text with
  | Error _ ->
    (* Damaged frame: indistinguishable from a lost reply. *)
    Error Errno.EIO
  | Ok (Protocol.R_error (e, _)) -> Error e
  | Ok r -> Ok r

let expect_ok = function
  | Ok Protocol.R_ok -> Ok ()
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let mkdir t path = expect_ok (call t (Protocol.Mkdir path))
let rmdir t path = expect_ok (call t (Protocol.Rmdir path))
let unlink t path = expect_ok (call t (Protocol.Unlink path))

let put t ~path ~data = expect_ok (call t (Protocol.Put { path; data }))

let get t path =
  match call t (Protocol.Get path) with
  | Ok (Protocol.R_data data) -> Ok data
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let stat t path =
  match lease_get t ("stat:" ^ path) with
  | Some (Protocol.R_stat st) -> Ok st
  | Some _ | None ->
    (match call t (Protocol.Stat path) with
     | Ok (Protocol.R_stat st) ->
       lease_put t ("stat:" ^ path) (Protocol.R_stat st);
       Ok st
     | Ok _ -> Error Errno.EINVAL
     | Error e -> Error e)

let readdir t path =
  match call t (Protocol.Readdir path) with
  | Ok (Protocol.R_names names) -> Ok names
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let getacl t path =
  match lease_get t ("acl:" ^ path) with
  | Some (Protocol.R_str s) -> Ok s
  | Some _ | None ->
    (match call t (Protocol.Getacl path) with
     | Ok (Protocol.R_str s) ->
       lease_put t ("acl:" ^ path) (Protocol.R_str s);
       Ok s
     | Ok _ -> Error Errno.EINVAL
     | Error e -> Error e)

let setacl t ~path ~entry = expect_ok (call t (Protocol.Setacl { path; entry }))

let rename t ~src ~dst = expect_ok (call t (Protocol.Rename { src; dst }))

let exec t ?cwd ~path ~args () =
  let cwd = match cwd with Some c -> c | None -> Path.dirname path in
  match call t (Protocol.Exec { path; args; cwd }) with
  | Ok (Protocol.R_exit code) -> Ok code
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let checksum t path =
  match call t (Protocol.Checksum path) with
  | Ok (Protocol.R_str s) -> Ok s
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let exec_delegated t ~chain ?cwd ~path ~args () =
  let cwd = match cwd with Some c -> c | None -> Path.dirname path in
  match
    call t
      (Protocol.Delegated { chain; op = Protocol.Exec { path; args; cwd } })
  with
  | Ok (Protocol.R_exit code) -> Ok code
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let get_delegated t ~chain path =
  match call t (Protocol.Delegated { chain; op = Protocol.Get path }) with
  | Ok (Protocol.R_data data) -> Ok data
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let epoch_of_r_str = function
  | Ok (Protocol.R_str s) ->
    (match int_of_string_opt s with
     | Some e -> Ok e
     | None -> Error Errno.EINVAL)
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let revoke t who = epoch_of_r_str (call t (Protocol.Revoke who))
let delegation_epoch t who = epoch_of_r_str (call t (Protocol.Epoch who))

let batch t ops =
  match ops with
  | [] -> Ok []
  | _ ->
    if List.exists (function Protocol.Batch _ -> true | _ -> false) ops then
      Error Errno.EINVAL
    else
      (match call t (Protocol.Batch ops) with
       | Ok (Protocol.R_batch rs) when List.length rs = List.length ops -> Ok rs
       | Ok _ -> Error Errno.EINVAL
       | Error e -> Error e)

let whoami t =
  match call t Protocol.Whoami with
  | Ok (Protocol.R_str s) -> Ok s
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let stat_of_wire (ws : Protocol.wire_stat) =
  {
    Fs.st_ino = 0;
    st_kind =
      (match ws.Protocol.ws_kind with
       | "dir" -> Inode.Directory
       | "link" -> Inode.Symlink
       | _ -> Inode.Regular);
    st_mode = 0o644;
    st_uid = 0;
    st_nlink = 1;
    st_size = ws.Protocol.ws_size;
    st_mtime = ws.Protocol.ws_mtime;
    st_ctime = ws.Protocol.ws_mtime;
  }

let to_remote t =
  {
    Idbox.Remote.r_describe = Printf.sprintf "chirp server %s as %s" t.cl_addr t.cl_principal;
    r_stat = (fun p -> Result.map stat_of_wire (stat t p));
    r_read = (fun p -> get t p);
    r_write = (fun p data -> put t ~path:p ~data);
    r_mkdir = (fun p -> mkdir t p);
    r_unlink = (fun p -> unlink t p);
    r_rmdir = (fun p -> rmdir t p);
    r_readdir = (fun p -> readdir t p);
    r_rename = (fun src dst -> rename t ~src ~dst);
    r_getacl = (fun p -> getacl t p);
    r_setacl = (fun p entry -> setacl t ~path:p ~entry);
  }
