module Credential = Idbox_auth.Credential
module Ca = Idbox_auth.Ca
module Kerberos = Idbox_auth.Kerberos
module Delegation = Idbox_auth.Delegation
module Subject = Idbox_identity.Subject
module Errno = Idbox_vfs.Errno

type operation =
  | Mkdir of string
  | Rmdir of string
  | Unlink of string
  | Put of { path : string; data : string }
  | Get of string
  | Stat of string
  | Readdir of string
  | Getacl of string
  | Setacl of { path : string; entry : string }
  | Rename of { src : string; dst : string }
  | Exec of { path : string; args : string list; cwd : string }
  | Checksum of string
  | Whoami
  | Batch of operation list
      (* N operations pipelined in one envelope: one checksum, one
         request ID, executed in order server-side.  Never nested. *)
  | Delegated of { chain : Delegation.token list; op : operation }
      (* [op] performed under the presented delegation chain: the server
         validates the chain against its trust anchors and runs [op] as
         the root delegator under the attenuated grant.  Never nests and
         never wraps a batch. *)
  | Revoke of string
      (* Bump the named delegator's revocation epoch.  Routes by ["/"]
         so the cluster fans it to every member, like ACL metadata. *)
  | Epoch of string
      (* Read the named delegator's current revocation epoch. *)

type request =
  | Auth of Credential.t list
  | Op of { token : string; req_id : string; op : operation }

type wire_stat = {
  ws_kind : string;
  ws_size : int;
  ws_mtime : int64;
}

type response =
  | R_ok
  | R_error of Errno.t * string
  | R_auth of { token : string; principal : string; method_ : string }
  | R_data of string
  | R_stat of wire_stat
  | R_names of string list
  | R_exit of int
  | R_str of string
  | R_batch of response list  (* member responses, in request order *)

(* Operations safe to re-send blindly: re-executing them cannot change
   server state beyond what the first execution did.  Everything else
   must carry a request ID so the server can deduplicate retries. *)
let rec idempotent = function
  | Get _ | Stat _ | Readdir _ | Getacl _ | Checksum _ | Whoami | Epoch _ ->
    true
  | Mkdir _ | Rmdir _ | Unlink _ | Put _ | Setacl _ | Rename _ | Exec _
  | Revoke _ -> false
  (* A batch is blindly re-sendable only when every member is. *)
  | Batch ops -> List.for_all idempotent ops
  (* A delegated operation is as re-sendable as the operation itself:
     chain validation has no server-side effect. *)
  | Delegated { op; _ } -> idempotent op

(* The path an operation is routed by: the object it names, or — for
   two-path operations — its primary (source) path.  [Whoami] has no
   path and routes to the root. *)
let rec operation_path = function
  | Mkdir p | Rmdir p | Unlink p | Get p | Stat p | Readdir p | Getacl p
  | Checksum p -> p
  | Put { path; _ } | Setacl { path; _ } | Exec { path; _ } -> path
  | Rename { src; _ } -> src
  | Whoami -> "/"
  | Batch (op :: _) -> operation_path op
  | Batch [] -> "/"
  | Delegated { op; _ } -> operation_path op
  (* Revocation epochs replicate everywhere: route by the root so the
     cluster's root-key rule fans the write to every member. *)
  | Revoke _ | Epoch _ -> "/"

let operation_name = function
  | Mkdir _ -> "mkdir"
  | Rmdir _ -> "rmdir"
  | Unlink _ -> "unlink"
  | Put _ -> "put"
  | Get _ -> "get"
  | Stat _ -> "stat"
  | Readdir _ -> "readdir"
  | Getacl _ -> "getacl"
  | Setacl _ -> "setacl"
  | Rename _ -> "rename"
  | Exec _ -> "exec"
  | Checksum _ -> "checksum"
  | Whoami -> "whoami"
  | Batch _ -> "batch"
  | Delegated _ -> "delegated"
  | Revoke _ -> "revoke"
  | Epoch _ -> "epoch"

(* --- credentials ---------------------------------------------------- *)

let encode_credential = function
  | Credential.Gsi cert ->
    [ "gsi";
      Subject.to_string cert.Ca.subject;
      cert.Ca.issuer;
      string_of_int cert.Ca.serial;
      cert.Ca.signature ]
  | Credential.Krb ticket ->
    [ "krb";
      ticket.Kerberos.user;
      ticket.Kerberos.realm;
      Int64.to_string ticket.Kerberos.issued_at;
      Int64.to_string ticket.Kerberos.expires_at;
      ticket.Kerberos.stamp ]
  | Credential.Unix_account name -> [ "unix"; name ]
  | Credential.Host host -> [ "host"; host ]

let decode_credential fields =
  match fields with
  | [ "gsi"; subject; issuer; serial; signature ] ->
    (match (Subject.of_string subject, int_of_string_opt serial) with
     | Ok subject, Some serial ->
       Ok (Credential.Gsi { Ca.subject; issuer; serial; signature })
     | Error e, _ -> Error ("bad certificate subject: " ^ e)
     | _, None -> Error "bad certificate serial")
  | [ "krb"; user; realm; issued; expires; stamp ] ->
    (match (Int64.of_string_opt issued, Int64.of_string_opt expires) with
     | Some issued_at, Some expires_at ->
       Ok (Credential.Krb { Kerberos.user; realm; issued_at; expires_at; stamp })
     | _ -> Error "bad ticket timestamps")
  | [ "unix"; name ] -> Ok (Credential.Unix_account name)
  | [ "host"; host ] -> Ok (Credential.Host host)
  | _ -> Error "unrecognized credential"

(* Every protocol message travels inside a checksummed envelope:
   [["q"|"r"; md5(body); body]].  The simulated network can flip or cut
   response bytes; without the envelope a corrupted [R_data] would be
   indistinguishable from a good one.  With it, damage surfaces as a
   decode error the caller can retry. *)
let seal tag body = Wire.encode [ tag; Digest.string body; body ]

let unseal tag text =
  match Wire.decode text with
  | Error e -> Error e
  | Ok [ t; sum; body ] when String.equal t tag ->
    if String.equal sum (Digest.string body) then Ok body
    else Error "checksum mismatch (frame damaged in flight)"
  | Ok _ -> Error "not a sealed frame"

let rec operation_fields = function
  | Mkdir p -> [ "mkdir"; p ]
  | Rmdir p -> [ "rmdir"; p ]
  | Unlink p -> [ "unlink"; p ]
  | Put { path; data } -> [ "put"; path; data ]
  | Get p -> [ "get"; p ]
  | Stat p -> [ "stat"; p ]
  | Readdir p -> [ "readdir"; p ]
  | Getacl p -> [ "getacl"; p ]
  | Setacl { path; entry } -> [ "setacl"; path; entry ]
  | Rename { src; dst } -> [ "rename"; src; dst ]
  | Exec { path; args; cwd } -> "exec" :: path :: cwd :: args
  | Checksum p -> [ "checksum"; p ]
  | Whoami -> [ "whoami" ]
  | Batch ops -> "batch" :: List.map operation_to_wire ops
  | Delegated { chain; op } ->
    "delegated" :: operation_to_wire op
    :: List.map (fun tok -> Wire.encode (Delegation.token_fields tok)) chain
  | Revoke p -> [ "revoke"; p ]
  | Epoch p -> [ "epoch"; p ]

(* A single self-contained blob for one operation, used by the cluster
   replication channel to forward a mutation verbatim, and by [Batch] to
   keep the outer message a flat field list. *)
and operation_to_wire op = Wire.encode (operation_fields op)

(* Each credential is itself a wire-framed blob so the outer message
   stays a flat field list. *)
let encode_request req =
  let body =
    match req with
    | Auth creds ->
      Wire.encode
        ("auth" :: List.map (fun c -> Wire.encode (encode_credential c)) creds)
    | Op { token; req_id; op } ->
      Wire.encode ("op" :: token :: req_id :: operation_fields op)
  in
  seal "q" body

let rec decode_operation = function
  | [ "mkdir"; p ] -> Ok (Mkdir p)
  | [ "rmdir"; p ] -> Ok (Rmdir p)
  | [ "unlink"; p ] -> Ok (Unlink p)
  | [ "put"; path; data ] -> Ok (Put { path; data })
  | [ "get"; p ] -> Ok (Get p)
  | [ "stat"; p ] -> Ok (Stat p)
  | [ "readdir"; p ] -> Ok (Readdir p)
  | [ "getacl"; p ] -> Ok (Getacl p)
  | [ "setacl"; path; entry ] -> Ok (Setacl { path; entry })
  | [ "rename"; src; dst ] -> Ok (Rename { src; dst })
  | "exec" :: path :: cwd :: args -> Ok (Exec { path; args; cwd })
  | [ "checksum"; p ] -> Ok (Checksum p)
  | [ "whoami" ] -> Ok Whoami
  | "batch" :: blobs ->
    (* Nesting is rejected at decode time: a batch of batches would give
       retries and dedup ambiguous semantics. *)
    let rec members acc = function
      | [] -> Ok (Batch (List.rev acc))
      | blob :: rest ->
        (match operation_of_wire blob with
         | Ok (Batch _) -> Error "nested batch"
         | Ok (Delegated _) -> Error "delegated operation inside a batch"
         | Ok op -> members (op :: acc) rest
         | Error e -> Error e)
    in
    members [] blobs
  | "delegated" :: op_blob :: token_blobs ->
    (* One envelope, one chain, one operation.  Wrapping a batch or
       another delegated envelope would give the per-hop audit and
       dedup story ambiguous semantics — rejected at decode time. *)
    (match operation_of_wire op_blob with
     | Error e -> Error e
     | Ok (Batch _) -> Error "batch inside a delegated operation"
     | Ok (Delegated _) -> Error "nested delegated operation"
     | Ok op ->
       let rec tokens acc = function
         | [] -> Ok (Delegated { chain = List.rev acc; op })
         | blob :: rest ->
           (match Wire.decode blob with
            | Error e -> Error e
            | Ok fields ->
              (match Delegation.token_of_fields fields with
               | Ok tok -> tokens (tok :: acc) rest
               | Error e -> Error e))
       in
       tokens [] token_blobs)
  | [ "revoke"; p ] -> Ok (Revoke p)
  | [ "epoch"; p ] -> Ok (Epoch p)
  | op :: _ -> Error (Printf.sprintf "unknown operation %S" op)
  | [] -> Error "empty operation"

and operation_of_wire blob =
  match Wire.decode blob with
  | Error e -> Error e
  | Ok fields -> decode_operation fields

let decode_request text =
  match unseal "q" text with
  | Error e -> Error e
  | Ok body ->
    (match Wire.decode body with
     | Error e -> Error e
     | Ok ("auth" :: blobs) ->
       let rec decode_all acc = function
         | [] -> Ok (Auth (List.rev acc))
         | blob :: rest ->
           (match Wire.decode blob with
            | Error e -> Error e
            | Ok fields ->
              (match decode_credential fields with
               | Ok cred -> decode_all (cred :: acc) rest
               | Error e -> Error e))
       in
       decode_all [] blobs
     | Ok ("op" :: token :: req_id :: fields) ->
       (match decode_operation fields with
        | Ok op -> Ok (Op { token; req_id; op })
        | Error e -> Error e)
     | Ok _ -> Error "unrecognized request")

let rec response_body r =
  match r with
  | R_ok -> Wire.encode [ "ok" ]
  | R_error (errno, msg) -> Wire.encode [ "error"; Errno.to_string errno; msg ]
  | R_auth { token; principal; method_ } ->
    Wire.encode [ "auth"; token; principal; method_ ]
  | R_data data -> Wire.encode [ "data"; data ]
  | R_stat { ws_kind; ws_size; ws_mtime } ->
    Wire.encode
      [ "stat"; ws_kind; string_of_int ws_size; Int64.to_string ws_mtime ]
  | R_names names -> Wire.encode ("names" :: names)
  | R_exit code -> Wire.encode [ "exit"; string_of_int code ]
  | R_str s -> Wire.encode [ "str"; s ]
  | R_batch rs -> Wire.encode ("batch" :: List.map response_body rs)

(* One seal around the whole body: a batch pays a single checksum. *)
let encode_response r = seal "r" (response_body r)

let rec decode_response_body body =
  match Wire.decode body with
  | Error e -> Error e
  | Ok [ "ok" ] -> Ok R_ok
  | Ok [ "error"; errno; msg ] ->
    (match Errno.of_string errno with
     | Some e -> Ok (R_error (e, msg))
     | None -> Error (Printf.sprintf "unknown errno %S" errno))
  | Ok [ "auth"; token; principal; method_ ] ->
    Ok (R_auth { token; principal; method_ })
  | Ok [ "data"; data ] -> Ok (R_data data)
  | Ok [ "stat"; ws_kind; size; mtime ] ->
    (match (int_of_string_opt size, Int64.of_string_opt mtime) with
     | Some ws_size, Some ws_mtime -> Ok (R_stat { ws_kind; ws_size; ws_mtime })
     | _ -> Error "bad stat fields")
  | Ok ("names" :: names) -> Ok (R_names names)
  | Ok [ "exit"; code ] ->
    (match int_of_string_opt code with
     | Some code -> Ok (R_exit code)
     | None -> Error "bad exit code")
  | Ok [ "str"; s ] -> Ok (R_str s)
  | Ok ("batch" :: blobs) ->
    let rec members acc = function
      | [] -> Ok (R_batch (List.rev acc))
      | blob :: rest ->
        (match decode_response_body blob with
         | Ok (R_batch _) -> Error "nested batch response"
         | Ok r -> members (r :: acc) rest
         | Error e -> Error e)
    in
    members [] blobs
  | Ok _ -> Error "unrecognized response"

let decode_response text =
  match unseal "r" text with
  | Error e -> Error e
  | Ok body -> decode_response_body body

(* {1 Shed responses}

   An overloaded server answers EAGAIN with a machine-readable
   retry-after hint riding the error message, so a client can wait
   exactly as long as the server asked instead of guessing.  The hint
   is plain text inside the message — old clients see a human-readable
   reason and fall back to their own backoff. *)

let shed_message ~retry_after_ns reason =
  Printf.sprintf "%s; retry_after_ns=%Ld" reason retry_after_ns

let retry_after_of_message msg =
  let tag = "retry_after_ns=" in
  let tlen = String.length tag in
  let mlen = String.length msg in
  let rec find i =
    if i + tlen > mlen then None
    else if String.equal (String.sub msg i tlen) tag then Some (i + tlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while !stop < mlen && msg.[!stop] >= '0' && msg.[!stop] <= '9' do
      incr stop
    done;
    if !stop = start then None
    else Int64.of_string_opt (String.sub msg start (!stop - start))
