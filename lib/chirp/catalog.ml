module Network = Idbox_net.Network
module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics

type entry = {
  name : string;
  server_addr : string;
  owner : string;
  registered_at : int64;
  mutable last_heartbeat : int64;
}

type t = {
  ct_net : Network.t;
  ct_addr : string;
  ct_staleness_ns : int64;
  table : (string, entry) Hashtbl.t;
}

let addr t = t.ct_addr

let metric t name = Metrics.incr (Metrics.counter (Network.metrics t.ct_net) name)

(* Forget servers that have not checked in for [staleness_ns]: a server
   cut off by a partition (or simply gone) stops being advertised, and
   reappears on its next successful heartbeat. *)
let sweep t =
  let now = Clock.now (Network.clock t.ct_net) in
  let stale =
    Hashtbl.fold
      (fun name e acc ->
        if Int64.sub now e.last_heartbeat > t.ct_staleness_ns then name :: acc
        else acc)
      t.table []
  in
  List.iter
    (fun name ->
      Hashtbl.remove t.table name;
      metric t "catalog.evict")
    stale

let entries t =
  sweep t;
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> String.compare a.name b.name)

(* Registration and heartbeat share one path: a heartbeat IS a repeated
   registration.  Re-registering the same name for the same address
   refreshes the entry in place (keeping [registered_at], so discovery
   age is honest); a different address replaces the entry outright. *)
let upsert t ~name ~server_addr ~owner =
  let now = Clock.now (Network.clock t.ct_net) in
  match Hashtbl.find_opt t.table name with
  | Some e when String.equal e.server_addr server_addr ->
    e.last_heartbeat <- now;
    metric t "catalog.heartbeat"
  | _ ->
    Hashtbl.replace t.table name
      { name; server_addr; owner; registered_at = now; last_heartbeat = now }

let handle t payload =
  match Wire.decode payload with
  | Ok [ ("register" | "heartbeat"); name; server_addr; owner ] ->
    sweep t;
    upsert t ~name ~server_addr ~owner;
    Wire.encode [ "ok" ]
  | Ok [ "list" ] ->
    let fields =
      List.concat_map
        (fun e ->
          [ e.name; e.server_addr; e.owner; Int64.to_string e.registered_at;
            Int64.to_string e.last_heartbeat ])
        (entries t)
    in
    Wire.encode ("ok" :: fields)
  | Ok [ "deregister"; name ] ->
    (* A clean departure (scale-down): stop advertising now instead of
       waiting out the lease, so routers rebalance on their next sync. *)
    if Hashtbl.mem t.table name then begin
      Hashtbl.remove t.table name;
      metric t "catalog.deregister"
    end;
    Wire.encode [ "ok" ]
  | Ok _ | Error _ -> Wire.encode [ "error"; "bad catalog request" ]

let create ?(staleness_ns = 300_000_000_000L) net ~addr =
  let t =
    { ct_net = net; ct_addr = addr; ct_staleness_ns = staleness_ns;
      table = Hashtbl.create 8 }
  in
  Network.listen net ~addr (fun payload -> handle t payload);
  t

let shutdown t = Network.unlisten t.ct_net ~addr:t.ct_addr

let register ?(src = "client") net ~catalog ~name ~server_addr ~owner =
  match
    Network.call net ~src ~addr:catalog
      (Wire.encode [ "register"; name; server_addr; owner ])
  with
  | Error e -> Error (Idbox_vfs.Errno.message e)
  | Ok payload ->
    (match Wire.decode payload with
     | Ok [ "ok" ] -> Ok ()
     | Ok ("error" :: msg :: _) -> Error msg
     | Ok _ | Error _ -> Error "bad catalog response")

let deregister ?(src = "client") net ~catalog ~name =
  match
    Network.call net ~src ~addr:catalog (Wire.encode [ "deregister"; name ])
  with
  | Error e -> Error (Idbox_vfs.Errno.message e)
  | Ok payload ->
    (match Wire.decode payload with
     | Ok [ "ok" ] -> Ok ()
     | Ok ("error" :: msg :: _) -> Error msg
     | Ok _ | Error _ -> Error "bad catalog response")

let list ?(src = "client") ?timeout_ns net ~catalog =
  match
    Network.call net ~src ?timeout_ns ~addr:catalog (Wire.encode [ "list" ])
  with
  | Error e -> Error (Idbox_vfs.Errno.message e)
  | Ok payload ->
    (match Wire.decode payload with
     | Ok ("ok" :: fields) ->
       let rec parse acc = function
         | [] -> Ok (List.rev acc)
         | name :: server_addr :: owner :: stamp :: beat :: rest ->
           (match (Int64.of_string_opt stamp, Int64.of_string_opt beat) with
            | Some registered_at, Some last_heartbeat ->
              parse
                ({ name; server_addr; owner; registered_at; last_heartbeat }
                 :: acc)
                rest
            | _ -> Error "bad catalog timestamp")
         | _ -> Error "truncated catalog entry"
       in
       parse [] fields
     | Ok ("error" :: msg :: _) -> Error msg
     | Ok _ | Error _ -> Error "bad catalog response")

(* {1 Heartbeat driver} *)

type heartbeat = {
  hb_net : Network.t;
  hb_catalog : string;
  hb_src : string;
  hb_name : string;
  hb_server_addr : string;
  hb_owner : string;
  hb_interval_ns : int64;
  mutable hb_due : int64;
  mutable hb_sent : int;
  mutable hb_missed : int;
}

let send hb =
  match
    Network.call hb.hb_net ~src:hb.hb_src ~addr:hb.hb_catalog
      (Wire.encode
         [ "heartbeat"; hb.hb_name; hb.hb_server_addr; hb.hb_owner ])
  with
  | Ok _ ->
    hb.hb_sent <- hb.hb_sent + 1;
    true
  | Error _ ->
    hb.hb_missed <- hb.hb_missed + 1;
    false

let tick hb =
  let now = Clock.now (Network.clock hb.hb_net) in
  if now < hb.hb_due then false
  else begin
    let ok = send hb in
    (* On failure stay due: the next tick retries immediately, so the
       server re-registers as soon as a partition heals instead of
       waiting out a full interval. *)
    if ok then hb.hb_due <- Int64.add now hb.hb_interval_ns;
    ok
  end

let heartbeat ?(src = "client") ?(interval_ns = 60_000_000_000L) net ~catalog
    ~name ~server_addr ~owner =
  let hb =
    { hb_net = net; hb_catalog = catalog; hb_src = src; hb_name = name;
      hb_server_addr = server_addr; hb_owner = owner;
      hb_interval_ns = interval_ns; hb_due = Clock.now (Network.clock net);
      hb_sent = 0; hb_missed = 0 }
  in
  ignore (tick hb);
  hb

let heartbeats_sent hb = hb.hb_sent
let heartbeats_missed hb = hb.hb_missed
