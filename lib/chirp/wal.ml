module Fault = Idbox_net.Fault

(* Record framing: magic, payload length in hex (fixed width so the
   header parses without a delimiter scan), md5 of the payload, payload. *)
let magic = "IDBX"
let len_width = 8
let sum_width = 32
let header_len = String.length magic + len_width + sum_width

type t = {
  mutable dv_log : string;  (* the byte image of the record log *)
  mutable dv_synced : int;  (* bytes covered by the last sync *)
  mutable dv_ckpt : string option;
  mutable dv_records : int;  (* records in dv_log *)
  mutable dv_synced_records : int;
  mutable dv_appends : int;  (* lifetime appends, across checkpoints *)
  dv_rng : Fault.rng;
  dv_profile : Fault.storage_profile;
}

let create ?(seed = 0L) ?(profile = Fault.calm_storage) () =
  {
    dv_log = "";
    dv_synced = 0;
    dv_ckpt = None;
    dv_records = 0;
    dv_synced_records = 0;
    dv_appends = 0;
    dv_rng = Fault.rng seed;
    dv_profile = profile;
  }

let frame payload =
  Printf.sprintf "%s%08x%s%s" magic (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

let append t payload =
  t.dv_log <- t.dv_log ^ frame payload;
  t.dv_records <- t.dv_records + 1;
  t.dv_appends <- t.dv_appends + 1

let sync t =
  t.dv_synced <- String.length t.dv_log;
  t.dv_synced_records <- t.dv_records

let records t = t.dv_records
let synced_records t = t.dv_synced_records
let log_bytes t = String.length t.dv_log
let appends t = t.dv_appends

let checkpoint t blob =
  t.dv_ckpt <- Some blob;
  t.dv_log <- "";
  t.dv_synced <- 0;
  t.dv_records <- 0;
  t.dv_synced_records <- 0

let checkpoint_image t = t.dv_ckpt

(* The record boundaries within [s] starting at [from] — used to cut
   the unsynced suffix at a boundary (lost records) or inside a record
   (a torn write).  Boundaries are parsed from the framing alone; this
   runs on the pre-damage image, where framing is intact. *)
let boundaries s from =
  let n = String.length s in
  let rec go pos acc =
    if pos + header_len > n then List.rev acc
    else
      match int_of_string_opt ("0x" ^ String.sub s (pos + 4) len_width) with
      | None -> List.rev acc
      | Some len ->
        let next = pos + header_len + len in
        if next > n then List.rev acc else go next (next :: acc)
  in
  go from []

let crash t =
  let p = t.dv_profile in
  let n = String.length t.dv_log in
  if n > t.dv_synced then begin
    (* Unsynced suffix: lose whole records from the end... *)
    if Fault.chance t.dv_rng p.Fault.lose_tail then begin
      let cuts = t.dv_synced :: boundaries t.dv_log t.dv_synced in
      let keep = List.nth cuts (Fault.int_below t.dv_rng (List.length cuts)) in
      t.dv_log <- String.sub t.dv_log 0 keep
    end;
    (* ...tear the last surviving unsynced record mid-write... *)
    let n = String.length t.dv_log in
    if n > t.dv_synced && Fault.chance t.dv_rng p.Fault.torn_write then begin
      let cut =
        t.dv_synced + 1 + Fault.int_below t.dv_rng (n - t.dv_synced)
      in
      t.dv_log <- String.sub t.dv_log 0 (min cut n)
    end;
    (* ...and flip bytes in whatever unsynced bytes remain. *)
    let n = String.length t.dv_log in
    if n > t.dv_synced && Fault.chance t.dv_rng p.Fault.flip then begin
      let suffix = String.sub t.dv_log t.dv_synced (n - t.dv_synced) in
      t.dv_log <-
        String.sub t.dv_log 0 t.dv_synced ^ Fault.flip_bytes t.dv_rng suffix
    end
  end
  else if Fault.chance t.dv_rng p.Fault.torn_write then begin
    (* Fully synced log: the crash can still have interrupted a write
       that was in flight (never acknowledged) — a torn fragment of a
       phantom next record lands after the durable prefix. *)
    let junk_len = 1 + Fault.int_below t.dv_rng 48 in
    let junk =
      String.init junk_len (fun _ ->
          Char.chr (Int64.to_int (Int64.logand (Fault.bits t.dv_rng) 0xffL)))
    in
    t.dv_log <- t.dv_log ^ Printf.sprintf "%s%08x%s" magic (junk_len + 64) junk
  end;
  (* Whatever survived is what is on the platter now. *)
  t.dv_synced <- String.length t.dv_log

type recovery = {
  rc_checkpoint : string option;
  rc_records : string list;
  rc_torn_records : int;
  rc_torn_bytes : int;
}

let recover t =
  let s = t.dv_log in
  let n = String.length s in
  let rec go pos acc =
    if pos >= n then (pos, List.rev acc)
    else if pos + header_len > n then (pos, List.rev acc)
    else if not (String.equal (String.sub s pos 4) magic) then
      (pos, List.rev acc)
    else
      match int_of_string_opt ("0x" ^ String.sub s (pos + 4) len_width) with
      | None -> (pos, List.rev acc)
      | Some len ->
        let body = pos + header_len in
        if body + len > n then (pos, List.rev acc)
        else
          let sum = String.sub s (pos + 4 + len_width) sum_width in
          let payload = String.sub s body len in
          if String.equal sum (Digest.to_hex (Digest.string payload)) then
            go (body + len) (payload :: acc)
          else (pos, List.rev acc)
  in
  let valid_end, payloads = go 0 [] in
  let torn_bytes = n - valid_end in
  (* A torn tail is one interrupted write; count it as one discarded
     record (there is no framing left to count more precisely). *)
  let torn_records = if torn_bytes > 0 then 1 else 0 in
  t.dv_log <- String.sub s 0 valid_end;
  t.dv_synced <- valid_end;
  t.dv_records <- List.length payloads;
  t.dv_synced_records <- t.dv_records;
  {
    rc_checkpoint = t.dv_ckpt;
    rc_records = payloads;
    rc_torn_records = torn_records;
    rc_torn_bytes = torn_bytes;
  }
