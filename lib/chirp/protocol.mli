(** The Chirp protocol: typed requests and responses with an explicit
    wire encoding.

    The protocol "closely resembles the Unix I/O interface" (paper §4),
    extended with [getacl]/[setacl] for the virtual user space and the
    paper's new [exec] call for remote execution inside an identity
    box.  Sessions are token-based: [Auth] negotiates a principal and
    yields a token that stamps every subsequent operation. *)

type operation =
  | Mkdir of string
  | Rmdir of string
  | Unlink of string
  | Put of { path : string; data : string }
  | Get of string
  | Stat of string
  | Readdir of string
  | Getacl of string
  | Setacl of { path : string; entry : string }
  | Rename of { src : string; dst : string }
  | Exec of { path : string; args : string list; cwd : string }
  | Checksum of string
      (** MD5 of a remote file — end-to-end transfer integrity without
          fetching the data again. *)
  | Whoami
  | Batch of operation list
      (** N operations pipelined in one envelope: one checksum, one
          request ID (so a retried mutation batch deduplicates as a
          unit), executed in order server-side with per-member results
          in {!R_batch}.  Batches never nest — the decoder rejects a
          batch inside a batch. *)
  | Delegated of {
      chain : Idbox_auth.Delegation.token list;
      op : operation;
    }
      (** [op] performed under a delegation chain (root first).  The
          server validates the chain against its trust anchors with the
          authenticated session principal as holder, then runs [op] as
          the {e root delegator} under the chain's attenuated grant and
          scope, recording every hop in the audit ring.  Servers accept
          only [Exec] and read-only inner operations — a delegated
          mutation in the WAL would re-validate its chain at replay
          time, after the tokens may have expired, and diverge.  The
          decoder rejects nesting and batches in either direction. *)
  | Revoke of string
      (** Bump the named delegator's revocation epoch: every chain with
          a hop that delegator minted under a lower epoch dies
          cluster-wide.  Routes by ["/"], so the cluster replicates it
          to every member like ACL metadata. *)
  | Epoch of string
      (** Read the named delegator's current revocation epoch (as
          {!R_str}); routes by ["/"]. *)

type request =
  | Auth of Idbox_auth.Credential.t list
      (** Credentials in client preference order. *)
  | Op of { token : string; req_id : string; op : operation }
      (** [req_id] is a client-generated identifier for non-idempotent
          operations ([""] for idempotent ones): the server deduplicates
          retries carrying the same id within its dedup window, making
          retried writes and execs exactly-once.  See {!idempotent}. *)

type wire_stat = {
  ws_kind : string;  (** ["file"], ["dir"] or ["link"]. *)
  ws_size : int;
  ws_mtime : int64;
}

type response =
  | R_ok
  | R_error of Idbox_vfs.Errno.t * string
  | R_auth of { token : string; principal : string; method_ : string }
  | R_data of string
  | R_stat of wire_stat
  | R_names of string list
  | R_exit of int
  | R_str of string
  | R_batch of response list
      (** Member responses of a {!Batch}, in request order.  A member
          failure is its own [R_error]; later members still execute. *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
(** Messages travel in a checksummed envelope, so bytes flipped or cut
    by the (fault-injected) network surface as a decode [Error] — which
    retry layers treat as a transport fault — never as a silently wrong
    value. *)

val operation_name : operation -> string
(** For logging and per-op accounting. *)

val operation_path : operation -> string
(** The path the operation is routed by: the object it names (the
    source for [Rename]), or ["/"] for [Whoami].  A [Batch] routes by
    its first member — callers batch same-shard operations.  The
    cluster router shards on this. *)

val operation_to_wire : operation -> string
(** One operation as a self-contained blob (no token, no request ID) —
    the unit the cluster replication channel forwards. *)

val operation_of_wire : string -> (operation, string) result
(** Inverse of {!operation_to_wire}; total on damaged input. *)

val idempotent : operation -> bool
(** True for operations a client may re-send blindly on a lost reply
    ([get], [stat], [readdir], [getacl], [checksum], [whoami], and
    batches of only those); the rest need a request ID to retry
    safely. *)

val shed_message : retry_after_ns:int64 -> string -> string
(** The message an overloaded server sheds with: the human-readable
    [reason] plus a machine-readable [retry_after_ns=<n>] hint. *)

val retry_after_of_message : string -> int64 option
(** Extract the retry-after hint from a shed error message, if one is
    present — the client side of {!shed_message}. *)
