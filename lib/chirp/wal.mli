(** A write-ahead log on a simulated stable-storage device.

    The device holds two things: the {e latest checkpoint image} (an
    opaque blob, replaced atomically) and an {e append-only record log}
    of everything since that checkpoint.  Records are length-prefixed
    and checksummed:

    {v  "IDBX" <len:8 hex> <md5:32 hex> <payload bytes>  v}

    Appends are buffered; {!sync} makes every buffered record durable.
    The durability contract is the real one: a {!crash} may damage only
    bytes that were never synced — lose whole unsynced records from the
    end, tear the last one mid-record, flip bits in the unsynced suffix
    — plus, even on a fully synced log, append a torn fragment of a
    write that was in flight when the power died.  Damage is drawn from
    a seeded {!Idbox_net.Fault.storage_profile}, so crashes replay
    byte-identically.

    {!recover} parses the device from the start, stops at the first
    record whose framing or checksum fails (framing is lost beyond it),
    truncates the garbage, and reports what was discarded.  A synced
    record therefore always survives; a torn or corrupt tail is never
    returned as data. *)

type t

val create :
  ?seed:int64 -> ?profile:Idbox_net.Fault.storage_profile -> unit -> t
(** A fresh, empty device.  [profile] (default {!Idbox_net.Fault.calm_storage})
    governs crash damage; [seed] (default 0) seeds its random stream. *)

val append : t -> string -> unit
(** Append one record (buffered, {e not} yet durable). *)

val sync : t -> unit
(** Make every appended record durable: bytes at or before this point
    survive any {!crash}. *)

val records : t -> int
(** Records currently in the log (appended since the last checkpoint,
    synced or not). *)

val synced_records : t -> int
(** Records covered by the last {!sync}. *)

val log_bytes : t -> int
(** Size of the record log in bytes (excluding the checkpoint image). *)

val appends : t -> int
(** Total records ever appended (accounting; survives checkpoints). *)

val checkpoint : t -> string -> unit
(** Atomically replace the checkpoint image with [blob] and truncate
    the record log.  Modelled as atomic (write-temp + rename): a crash
    never observes half a checkpoint. *)

val checkpoint_image : t -> string option
(** The current checkpoint image, if any. *)

val crash : t -> unit
(** Apply seeded crash damage per the device's storage profile.  Only
    the unsynced suffix can lose or corrupt data; a fully synced log
    can at worst gain a torn fragment of an in-flight record, which
    {!recover} discards by checksum. *)

type recovery = {
  rc_checkpoint : string option;  (** Latest checkpoint image. *)
  rc_records : string list;
      (** Valid record payloads after that checkpoint, in append order. *)
  rc_torn_records : int;
      (** Records discarded because framing or checksum failed. *)
  rc_torn_bytes : int;  (** Bytes of garbage truncated from the tail. *)
}

val recover : t -> recovery
(** Parse the device, truncate any torn tail, and return the surviving
    state.  After recovery the device continues from the valid prefix:
    subsequent {!append}s extend the recovered log. *)
